package zenspec

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenPprofListing2 profiles the seed-pinned Listing 2 STL trial and
// compares the pprof protobuf export byte for byte against the checked-in
// golden file (refresh with -update-golden). It also asserts the paper's
// acceptance shape: the hottest site is the victim load at PC 0x400028 and
// its cycles include store-queue stall time.
func TestGoldenPprofListing2(t *testing.T) {
	p := NewProfiler()
	runListing2Trial(t, p)
	snap := p.Snapshot()

	top := snap.Top(1)
	if len(top) == 0 {
		t.Fatal("profile is empty")
	}
	if top[0].PC != 0x400028 || !strings.EqualFold(top[0].Op, "load") {
		t.Errorf("hottest site = %s@%#x, want the victim load at 0x400028", top[0].Op, top[0].PC)
	}
	if top[0].SQStall <= 0 {
		t.Errorf("victim load SQStall = %d, want > 0", top[0].SQStall)
	}
	if top[0].Replay <= 0 {
		t.Errorf("victim load Replay = %d, want > 0 (bypass rollback)", top[0].Replay)
	}
	if len(snap.Squashes) == 0 {
		t.Error("profile carries no squash table despite the STL rollback")
	}

	var got bytes.Buffer
	if err := snap.WritePprof(&got); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := snap.WritePprof(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), again.Bytes()) {
		t.Error("WritePprof is not byte-deterministic across calls")
	}

	golden := filepath.Join("testdata", "listing2_profile.pb.gz")
	if *updateGolden {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes, %d sites)", golden, got.Len(), len(snap.Samples))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("pprof profile differs from %s (%d bytes vs %d; rerun with -update-golden after intended changes)",
			golden, got.Len(), len(want))
	}
}

// TestProfileDeterministicAcrossWorkers asserts the suite profile fold is
// worker-count independent, with and without the default fault plan: the same
// seed produces byte-identical StableJSON (which embeds per-experiment
// profiles) and a byte-identical aggregated pprof export at 1, 2 and 8
// workers.
func TestProfileDeterministicAcrossWorkers(t *testing.T) {
	ids := []string{"table1", "fig4"}
	defaultPlan, err := ParseFaultPlan("default")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		plan FaultPlan
	}{
		{"clean", FaultPlan{}},
		{"default-faults", defaultPlan},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) (stable, pprofBytes []byte) {
				cfg := Config{Seed: 42, Parallelism: workers, Profile: true, Faults: tc.plan}
				suite, err := RunExperiments(cfg, true, ids)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range suite.Experiments {
					if r.Profile == nil {
						t.Fatalf("%s: no profile despite cfg.Profile", r.ID)
					}
					if len(r.Profile.Samples) == 0 {
						t.Fatalf("%s: profile is empty", r.ID)
					}
				}
				stable, err = suite.StableJSON()
				if err != nil {
					t.Fatal(err)
				}
				agg := suite.Profile()
				if agg == nil {
					t.Fatal("suite has no aggregated profile")
				}
				var buf bytes.Buffer
				if err := agg.WritePprof(&buf); err != nil {
					t.Fatal(err)
				}
				return stable, buf.Bytes()
			}
			baseJSON, basePprof := run(1)
			for _, workers := range []int{2, 8} {
				gotJSON, gotPprof := run(workers)
				if !bytes.Equal(gotJSON, baseJSON) {
					t.Errorf("StableJSON with profiling at %d workers differs from serial", workers)
				}
				if !bytes.Equal(gotPprof, basePprof) {
					t.Errorf("aggregated pprof at %d workers differs from serial", workers)
				}
			}
		})
	}
}
