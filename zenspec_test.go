package zenspec

import (
	"strings"
	"testing"
)

func TestPlatforms(t *testing.T) {
	ps := Platforms()
	if len(ps) != 4 {
		t.Fatalf("%d platforms, want TABLE III's 4", len(ps))
	}
	if p, ok := PlatformByName("epyc-7543"); !ok || p.SQSize != 48 {
		t.Error("epyc preset")
	}
	if p, ok := PlatformByName("ryzen7-7735hs"); !ok || p.SQSize != 64 {
		t.Error("zen3+ preset should have the 64-entry store queue")
	}
	if _, ok := PlatformByName("pentium"); ok {
		t.Error("unknown platform found")
	}
}

func TestFacadeLabPhi(t *testing.T) {
	l := NewLab(Config{Seed: 1})
	s := l.PlaceStld()
	obs := s.Phi(Seq(1, -1, 7))
	if len(obs) != 9 {
		t.Fatalf("phi length %d", len(obs))
	}
	if obs[1].TrueType.String() != "G" {
		t.Errorf("second execution %v, want G", obs[1].TrueType)
	}
}

func TestFacadeMachine(t *testing.T) {
	m := NewMachine(Config{Seed: 1, SSBD: true})
	if !m.CPU(0).Unit.SSBD() {
		t.Error("SSBD not applied")
	}
	p := m.NewProcess("x", DomainVM)
	if p.Domain != DomainVM {
		t.Error("domain")
	}
}

// TestPlatformMatrix runs the headline state-machine validation on every
// TABLE III platform: all four share one design.
func TestPlatformMatrix(t *testing.T) {
	for _, p := range Platforms() {
		res := Table1(Config{Platform: p, Seed: 3}, 6, 32)
		if res.MatchRate < 0.99 {
			t.Errorf("%s: state machine match rate %.3f", p.Name, res.MatchRate)
		}
	}
}

func TestMDUCharacterization(t *testing.T) {
	rows := MDUCharacterization()
	if len(rows) != 3 {
		t.Fatalf("TABLE IV rows: %d", len(rows))
	}
	if !strings.Contains(rows[2].Selection, "12-bit hash") {
		t.Error("AMD selection description")
	}
}

// TestEndToEndThroughFacade leaks a short secret via both attacks using only
// the public API.
func TestEndToEndThroughFacade(t *testing.T) {
	secret := []byte("zen3")
	if res := SpectreSTL(Config{Seed: 5}, secret, STLOptions{}); res.Accuracy != 1 {
		t.Errorf("facade spectre-stl accuracy %.2f (%q)", res.Accuracy, res.Leaked)
	}
	if res := SpectreCTL(Config{Seed: 5}, secret, CTLOptions{}); res.Accuracy != 1 {
		t.Errorf("facade spectre-ctl accuracy %.2f (%q)", res.Accuracy, res.Leaked)
	}
}

func TestFacadeIsolationAndOverhead(t *testing.T) {
	if !Isolation(Config{Seed: 42}).Vulnerability1() {
		t.Error("Vulnerability 1 not reproduced through the facade")
	}
	rows := SSBDOverhead(Config{Seed: 1}).Rows
	if len(rows) != 10 {
		t.Errorf("Fig 12 rows: %d", len(rows))
	}
}

func TestFacadeAssembleRun(t *testing.T) {
	code, err := Assemble(`
		movi rax, 40
		add  rax, rax, 2
		halt
	`, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if lines := Disassemble(code, 0x400000); len(lines) != 3 {
		t.Errorf("disassembly lines: %d", len(lines))
	}
	m := NewMachine(Config{Seed: 1})
	p := m.NewProcess("t", DomainUser)
	p.MapCode(0x400000, code)
	res := m.Run(p, 0x400000, 0)
	if res.Stop.String() != "halt" || p.Regs[0] != 42 {
		t.Errorf("stop %v rax %d", res.Stop, p.Regs[0])
	}
	if _, err := Assemble("bogus", 0); err == nil {
		t.Error("bad source should error")
	}
}

func TestFacadeInfer(t *testing.T) {
	p := Infer(Config{Seed: 42})
	if p.C0Init != 4 || p.C3Saturated != 15 || p.PSFPEvictionThreshold != 12 {
		t.Errorf("inferred %+v", p)
	}
}

func TestFacadeSMTAndAblation(t *testing.T) {
	if res := SMTMode(Config{Seed: 42}); !res.Duplicated() {
		t.Error("SMT duplication not reproduced through the facade")
	}
	points := PSFPSizeAblation(Config{Seed: 42}, []int{8, 12})
	if len(points) != 2 || points[1].Threshold != 12 {
		t.Errorf("ablation points %+v", points)
	}
}

func TestFacadeAddrLeak(t *testing.T) {
	res := AddrLeak(Config{Seed: 42}, 3)
	if res.Pages > 0 && res.Recovered != res.Pages {
		t.Errorf("addr leak %d/%d", res.Recovered, res.Pages)
	}
}

func TestFacadeInPlaceSTL(t *testing.T) {
	res := SpectreSTLInPlace(Config{Seed: 5}, []byte("ab"))
	if res.Accuracy != 1 {
		t.Errorf("in-place accuracy %.2f", res.Accuracy)
	}
	if res.VictimCalls <= 2 {
		t.Error("in-place must burn victim calls on training")
	}
}

// TestFacadeExperimentWrappers smoke-tests the remaining experiment entry
// points through the public API.
func TestFacadeExperimentWrappers(t *testing.T) {
	if testing.Short() {
		t.Skip("full wrapper sweep")
	}
	cfg := Config{Seed: 42}
	if res := Fig2(cfg); res.TimingAgree < 0.99 {
		t.Errorf("Fig2 agreement %.3f", res.TimingAgree)
	}
	if res := Table2(cfg); len(res.Rows) != 5 {
		t.Errorf("Table2 rows %d", len(res.Rows))
	}
	if res := Fig4(cfg, 2); res.StrideXORok != res.Pairs {
		t.Errorf("Fig4 %d/%d", res.StrideXORok, res.Pairs)
	}
	if res := Fig5(cfg, []int{11, 12}, 4); res.PSFP[1].Rate != 1 {
		t.Errorf("Fig5 psfp@12 %.2f", res.PSFP[1].Rate)
	}
	if res := Fig7(cfg, 3, 1); len(res.SSBPAttempts) == 0 {
		t.Error("Fig7 found nothing")
	}
	if res := SpectreCTLBrowser(Config{Seed: 5}, []byte("hi")); res.Bytes != 2 {
		t.Errorf("browser bytes %d", res.Bytes)
	}
	if res, err := SandboxEscape(Config{Seed: 5}, []byte{0x5e}); err != nil || res.Correct != 1 {
		t.Errorf("sandbox escape: %v %+v", err, res)
	}
}
