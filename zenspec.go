// Package zenspec is a full reproduction, as a Go library, of "Uncovering
// and Exploiting AMD Speculative Memory Access Predictors for Fun and
// Profit" (HPCA 2024).
//
// It provides a cycle-level out-of-order CPU simulator with the paper's
// reverse-engineered speculative memory access predictors (PSFP and SSBP), a
// small OS model with the paper's context-switch flush semantics, the
// reverse-engineering toolkit (timing-classified φ sequences, code sliding,
// eviction probing), the attacks (out-of-place Spectre-STL, Spectre-CTL and
// its browser variant, SSBP process fingerprinting), and the defense
// evaluation (SSBD, PSFD, and the Section VI-B mitigation sketches).
//
// The package is the public facade: experiment and attack entry points take
// a Config (platform preset plus mitigation knobs) and return self-printing
// result structs, one per table or figure in the paper. Lower-level access —
// building programs, placing store-load pairs at chosen instruction physical
// addresses, peeking at predictor counters — is available through Machine
// and Lab.
package zenspec

import (
	"context"
	"log/slog"
	"time"

	"zenspec/internal/asm"
	"zenspec/internal/attack"
	"zenspec/internal/fault"
	"zenspec/internal/gadget"
	"zenspec/internal/harness"
	"zenspec/internal/harness/suite"
	"zenspec/internal/kernel"
	"zenspec/internal/obs"
	"zenspec/internal/pipeline"
	"zenspec/internal/predict"
	"zenspec/internal/prof"
	"zenspec/internal/revng"
	"zenspec/internal/sandbox"
	"zenspec/internal/service"
	"zenspec/internal/speccheck"
	"zenspec/internal/workload"
)

// Platform identifies one of the paper's TABLE III test machines. All four
// share the same PSFP/SSBP design; the store-queue size follows the CPU
// family.
type Platform struct {
	Name      string
	CPU       string
	Microcode string
	Kernel    string
	SQSize    int
}

// platforms is the single authoritative TABLE III list; the first entry is
// the zero-Config default.
var platforms = []Platform{
	{Name: "ryzen9-5900x", CPU: "AMD Ryzen 9 5900X (Zen 3)", Microcode: "0xA201205", Kernel: "Linux 5.15.0-76-generic", SQSize: 48},
	{Name: "epyc-7543", CPU: "AMD EPYC 7543 (Zen 3)", Microcode: "0xA001173", Kernel: "Linux 6.1.0-rc4-snp-host", SQSize: 48},
	{Name: "ryzen5-5600g", CPU: "AMD Ryzen 5 5600G (Zen 3)", Microcode: "0xA50000D", Kernel: "Linux 5.15.0-76-generic", SQSize: 48},
	{Name: "ryzen7-7735hs", CPU: "AMD Ryzen 7 7735HS (Zen 3+)", Microcode: "0xA404102", Kernel: "Linux 5.4.0-153-generic", SQSize: 64},
}

// Platforms returns a copy of the TABLE III machines; mutating the returned
// slice does not affect the presets.
func Platforms() []Platform {
	out := make([]Platform, len(platforms))
	copy(out, platforms)
	return out
}

// PlatformByName finds a TABLE III preset; ok is false for unknown names.
func PlatformByName(name string) (Platform, bool) {
	for _, p := range platforms {
		if p.Name == name {
			return p, true
		}
	}
	return Platform{}, false
}

// Config selects the machine and its mitigation posture.
type Config struct {
	// Platform is a TABLE III preset; the zero value selects the Ryzen 9
	// 5900X.
	Platform Platform
	// SSBD enables Speculative Store Bypass Disable (SPEC_CTRL bit 2).
	SSBD bool
	// PSFD sets the Predictive Store Forwarding Disable bit — which the
	// paper found ineffective, and so is it here.
	PSFD bool
	// FlushSSBPOnSwitch, SaltPerDomain and RotateSalt are the Section VI-B
	// mitigation sketches.
	FlushSSBPOnSwitch bool
	SaltPerDomain     bool
	RotateSalt        bool
	// TimerQuantum and TimerJitter shape RDPRU (secure-timer mitigation and
	// the browser profile).
	TimerQuantum int64
	TimerJitter  int64
	// Seed makes every randomized structure reproducible.
	Seed int64
	// Faults is the deterministic fault-injection plan (see DefaultFaultPlan
	// and ParseFaultPlan): timer noise, predictor pollution, cache-line
	// eviction noise and injected trial failures. The zero plan injects
	// nothing; a faulted run is still byte-reproducible at any parallelism.
	Faults FaultPlan
	// Parallelism bounds the experiment harness's worker pool; 0 means
	// GOMAXPROCS. Results are byte-identical at any value — each trial runs
	// on its own Machine with an RNG derived from (Seed, experiment ID,
	// trial index) — so the knob trades wall clock only.
	Parallelism int
	// Observer, when non-nil, is subscribed to the event bus of every
	// Machine this Config boots (including the per-trial machines the
	// experiment harness creates). Observation is strictly read-only: an
	// attached observer never changes simulation results, and a nil observer
	// costs one branch per would-be event. Observers attached to parallel
	// experiment runs must tolerate concurrent HandleEvent calls
	// (MetricsObserver and TraceRecorder both do).
	Observer Observer
	// ObserverClasses restricts which event classes reach Observer; empty
	// means all classes.
	ObserverClasses []EventClass
	// Metrics attaches a fresh MetricsObserver to each harness experiment
	// (composed with Observer, if any) and surfaces its snapshot as the
	// report's "micro" section. The fold is commutative, so snapshots are
	// deterministic at any Parallelism.
	Metrics bool
	// Profile attaches a fresh Profiler to each harness experiment (composed
	// with Observer, if any) and surfaces its snapshot as the report's
	// "profile" section: per-PC cycle attribution with the Fig 2 top-down
	// stall breakdown. Like Metrics the fold is commutative, so profiles are
	// byte-identical at any Parallelism.
	Profile bool
	// Progress, when non-nil, is called by RunExperiments as the suite
	// advances — before each experiment with the finished count and the ID
	// about to run, and once at the end with done == total. It feeds the
	// live telemetry endpoint; leave nil when nothing is watching.
	Progress func(done, total int, id string)
	// Completed, when non-nil, receives every finished experiment report as
	// it lands. Accumulating these is how an interrupted run keeps its
	// partial results: AssembleExperiments turns the collected reports into
	// the suite report at any time, with skipped stubs for experiments that
	// never ran.
	Completed func(ExperimentReport)
}

// kernelConfig lowers the public Config onto the OS model.
func (c Config) kernelConfig() kernel.Config {
	sq := c.Platform.SQSize
	if sq == 0 {
		sq = 48
	}
	return kernel.Config{
		SSBD:              c.SSBD,
		PSFD:              c.PSFD,
		FlushSSBPOnSwitch: c.FlushSSBPOnSwitch,
		SaltPerDomain:     c.SaltPerDomain,
		RotateSalt:        c.RotateSalt,
		TimerQuantum:      c.TimerQuantum,
		TimerJitter:       c.TimerJitter,
		Seed:              c.Seed,
		Faults:            c.Faults,
		Parallelism:       c.Parallelism,
		Observer:          c.Observer,
		ObserverClasses:   c.ObserverClasses,
		Pipeline:          pipeline.Config{SQSize: sq},
	}
}

// FaultPlan is a deterministic fault-injection regime: seeded, serializable,
// and reproducible at any worker count. The zero value injects nothing.
type FaultPlan = fault.Plan

// DefaultFaultPlan returns the documented default fault intensity — the
// strongest plan at which the STL and CTL attacks still recover the full
// secret (see EXPERIMENTS.md's robustness section).
func DefaultFaultPlan() FaultPlan { return fault.Default() }

// ParseFaultPlan resolves a plan spec: "", "none" or "off" is the empty plan;
// "mild", "default" and "harsh" are presets; a '{...}' string is an inline
// JSON FaultPlan object.
func ParseFaultPlan(s string) (FaultPlan, error) { return fault.Parse(s) }

// Re-exported building blocks. Consumers name these through the facade; the
// implementations live in internal packages.
type (
	// Machine is a booted simulated machine: hardware threads with private
	// predictor units, shared caches and memory, and the OS model.
	Machine = kernel.Kernel
	// Process is a schedulable context with a private address space.
	Process = kernel.Process
	// Domain is a security domain (user, VM, kernel).
	Domain = kernel.Domain
	// Lab is the reverse-engineering fixture: timing-calibrated stld
	// placement and the φ notation.
	Lab = revng.Lab
	// Stld is a placed store-load microbenchmark instance.
	Stld = revng.Stld
	// Counters is the combined 5-counter predictor state of one pair.
	Counters = predict.Counters
	// ExecType is one of the Fig 2 execution types A–H.
	ExecType = predict.ExecType
	// AttackResult reports a leak attack run.
	AttackResult = attack.Result
)

// Security domains.
const (
	DomainUser   = kernel.DomainUser
	DomainVM     = kernel.DomainVM
	DomainKernel = kernel.DomainKernel
)

// RunResult reports one program run on a Machine.
type RunResult = pipeline.RunResult

// --- Observability ---

// Observer receives structured simulation events; see Config.Observer and
// Observe. ObserverFunc adapts a plain function.
type (
	// Event is the interface every typed event implements; switch on the
	// concrete type to consume one.
	Event        = obs.Event
	Observer     = obs.Observer
	ObserverFunc = obs.ObserverFunc
	// ObserverOptions filters a subscription made through Observe.
	ObserverOptions = obs.Options
	// EventClass partitions events into subscribable classes.
	EventClass = obs.Class
)

// Event classes, usable in Config.ObserverClasses and ObserverOptions.
const (
	ClassInst    = obs.ClassInst    // retired and transient instructions
	ClassSquash  = obs.ClassSquash  // pipeline squashes with window extent
	ClassForward = obs.ClassForward // store-to-load and PSF forwards
	ClassPredict = obs.ClassPredict // PSFP/SSBP queries, training, evictions
	ClassCache   = obs.ClassCache   // line fills, evictions, flushes
	ClassProbe   = obs.ClassProbe   // Flush+Reload probe verdicts
	ClassKernel  = obs.ClassKernel  // context switches, predictor flushes
	ClassFault   = obs.ClassFault   // injected faults
	ClassPMC     = obs.ClassPMC     // per-run Fig 2 PMC counter deltas
)

// Typed event structs delivered to observers. Every event implements
// obs.Event; switch on the concrete type to consume them.
type (
	InstEvent           = obs.InstEvent
	SquashEvent         = obs.SquashEvent
	ForwardEvent        = obs.ForwardEvent
	PredictEvent        = obs.PredictEvent
	PSFPTrainEvent      = obs.PSFPTrainEvent
	SSBPTransitionEvent = obs.SSBPTransitionEvent
	PredictorEvictEvent = obs.PredictorEvictEvent
	PredictorFlushEvent = obs.PredictorFlushEvent
	CacheEvent          = obs.CacheEvent
	ProbeEvent          = obs.ProbeEvent
	ContextSwitchEvent  = obs.ContextSwitchEvent
	FaultEvent          = obs.FaultEvent
	PMCEvent            = obs.PMCEvent
)

// MetricsObserver is a thread-safe counters-and-histograms registry that
// folds every event class; its Snapshot is deterministic at any worker
// count. NewMetricsObserver returns an empty one.
type MetricsObserver = obs.Metrics

// MetricsSnapshot is a point-in-time, JSON-stable metrics rendering.
type MetricsSnapshot = obs.MetricsSnapshot

// NewMetricsObserver returns an empty metrics registry.
func NewMetricsObserver() *MetricsObserver { return obs.NewMetrics() }

// Profiler is an Observer accumulating per-PC cycle attribution with the
// Fig 2 top-down stall breakdown (issue wait, execute, SQ-stall, rollback
// replay, retire wait) plus a per-site squash table. It is safe for
// concurrent HandleEvent calls and folds commutatively: one Profiler shared
// by parallel trials snapshots identically at any worker count.
type Profiler = prof.Profile

// ProfileSnapshot is a point-in-time, JSON-stable profile rendering. It
// exports to pprof protobuf (WritePprof, readable with `go tool pprof`),
// folded flamegraph text (WriteFlame), a terminal table (Text), and merges
// with other snapshots (Merge).
type ProfileSnapshot = prof.Snapshot

// ProfileSample is one profile site: a (PC, opcode) pair with its cycle
// breakdown.
type ProfileSample = prof.Sample

// NewProfiler returns an empty profiler; subscribe it with Observe (classes
// inst and squash) or set Config.Profile to let the harness manage one per
// experiment.
func NewProfiler() *Profiler { return prof.New() }

// ProfilerClasses returns the event classes a Profiler needs, for use in
// ObserverOptions or Config.ObserverClasses.
func ProfilerClasses() []EventClass { return prof.Classes() }

// DiffProfiles returns b − a per profile site: the signed cycle-attribution
// delta of two snapshots, e.g. a mitigated run against a vulnerable
// baseline. Sites identical in both snapshots are dropped.
func DiffProfiles(a, b *ProfileSnapshot) *ProfileSnapshot { return prof.Diff(a, b) }

// Telemetry serves a live view of a running suite over HTTP: Prometheus-text
// /metrics, JSON /progress, the current simulated-machine profile at
// /profile (pprof protobuf) and /profile.txt, and the host's own
// /debug/pprof. Wire sources with SetMetrics/SetProfile, drive progress via
// Config.Progress, and bind with Serve.
type Telemetry = prof.Telemetry

// NewTelemetry returns an empty telemetry hub.
func NewTelemetry() *Telemetry { return prof.NewTelemetry() }

// Observers composes observers into one that fans events out in order,
// skipping nils; it returns nil when every argument is nil. Use it to attach
// several observers through the single Config.Observer field.
func Observers(list ...Observer) Observer { return obs.Multi(list...) }

// TraceRecorder buffers events and renders them as a Chrome trace-event /
// Perfetto JSON document (load it at https://ui.perfetto.dev). It is safe
// for concurrent HandleEvent calls.
type TraceRecorder = obs.Recorder

// NewTraceRecorder returns an empty trace recorder.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// Observe subscribes o to a booted Machine's event bus and returns a cancel
// function. It is the post-boot equivalent of Config.Observer and replaces
// the deprecated Machine.CPU(i).Core.SetTracer deep-reach: one subscription
// sees all hardware threads, predictors, caches, the OS model and the fault
// injector, filtered by opts.Classes (empty means all).
func Observe(m *Machine, o Observer, opts ObserverOptions) (cancel func()) {
	return m.Observe(o, opts)
}

// NewMachine boots a machine.
func NewMachine(cfg Config) *Machine { return kernel.New(cfg.kernelConfig()) }

// Assemble parses assembly text into machine code linked at base. The
// syntax is one instruction per line with amd64 register names:
//
//	movi rax, 42
//	loop:
//	  sub rax, rax, 1
//	  jnz rax, loop
//	  halt
func Assemble(src string, base uint64) ([]byte, error) {
	b, err := asm.Parse(src)
	if err != nil {
		return nil, err
	}
	return b.Assemble(base)
}

// Disassemble renders machine code as text, one instruction per line.
func Disassemble(code []byte, base uint64) []string { return asm.Disassemble(code, base) }

// GadgetCandidate is one potential speculative store-bypass gadget found by
// ScanGadgets.
type GadgetCandidate = gadget.Candidate

// ScanGadgets statically scans machine code for the store→load→dependent
// load→transmitter shape the paper's attacks need (Listings 2 and 3).
func ScanGadgets(code []byte) []GadgetCandidate {
	return gadget.Scan(code, gadget.Options{})
}

// SpecFinding is one speculative-leak candidate (Spectre-STL or -CTL) found
// by the CFG-based analyzer, with its instruction-offset witness chain.
type SpecFinding = speccheck.Finding

// SpecCheckOptions tunes SpecCheck (window, stride, kind selection).
type SpecCheckOptions = speccheck.Options

// SpecValidation is the simulator verdict on one static finding.
type SpecValidation = speccheck.Validation

// SpecReport aggregates validations with a precision summary.
type SpecReport = speccheck.Report

// SpecCheck runs the CFG-based always-mispredict taint analysis over machine
// code: every conditional branch forks a bounded transient window, every
// store is assumed bypassable, and taint flows through registers and a finite
// abstract store. It subsumes ScanGadgets (which is its straight-line mode)
// and additionally reports Spectre-CTL shapes and gadgets reached across
// branches or through memory.
func SpecCheck(code []byte, opts SpecCheckOptions) []SpecFinding {
	return speccheck.Analyze(code, opts)
}

// SpecResult is a full analysis outcome: findings plus the count of sources
// whose exploration was truncated by the MaxStates budget (nonzero means the
// findings may be incomplete for branch-dense code).
type SpecResult = speccheck.Result

// SpecCheckAll is SpecCheck plus the truncation count.
func SpecCheckAll(code []byte, opts SpecCheckOptions) SpecResult {
	return speccheck.AnalyzeAll(code, opts)
}

// SpecCache is an incremental analyzer cache: analyses through it return
// byte-identical results to SpecCheckAll but skip every speculation source
// whose content-hashed dependency closure was analyzed before — across
// re-scans, edits, and relocations of shared gadget bytes.
type SpecCache = speccheck.Cache

// SpecCacheStats counts a SpecCache's hits, misses and explored states.
type SpecCacheStats = speccheck.CacheStats

// NewSpecCache returns an in-memory incremental analyzer cache.
func NewSpecCache() *SpecCache { return speccheck.NewCache() }

// OpenSpecCache returns an incremental cache persisted under dir, so warm
// scans survive process restarts.
func OpenSpecCache(dir string) (*SpecCache, error) { return speccheck.OpenCache(dir) }

// SpecCheckCached runs SpecCheckAll through cache (see SpecCache).
func SpecCheckCached(cache *SpecCache, code []byte, opts SpecCheckOptions) SpecResult {
	return cache.Analyze(code, opts)
}

// SpecValidate replays static findings through the pipeline simulator with
// mistrained predictors and classifies each as dynamically confirmed or a
// static over-approximation.
func SpecValidate(code []byte, findings []SpecFinding) SpecReport {
	return speccheck.ValidateAll(code, findings, speccheck.ValidateOptions{})
}

// NewLab boots a machine wrapped in the reverse-engineering fixture.
func NewLab(cfg Config) *Lab { return revng.NewLab(cfg.kernelConfig()) }

// Seq builds a φ input sequence: positive counts are non-aliasing (n) runs,
// negative counts aliasing (a) runs — Seq(7, -1) is the paper's "(7n, a)".
func Seq(counts ...int) []bool { return revng.Seq(counts...) }

// ParseSeq parses the paper's textual φ notation, e.g. "7n 1a 7n 1a".
func ParseSeq(s string) ([]bool, error) { return revng.ParseSeq(s) }

// --- Experiments: one entry point per table/figure ---

// Fig2 reproduces the execution-type timing/PMC analysis.
func Fig2(cfg Config) revng.Fig2Result { return revng.Fig2(cfg.kernelConfig()) }

// Table1 validates the TABLE I state machine on random sequences. All
// seeding derives from cfg.Seed through the harness's per-trial derivation.
func Table1(cfg Config, sequences, length int) revng.Table1Result {
	return revng.Table1(cfg.kernelConfig(), sequences, length)
}

// Table2 reproduces the counter-organization dependence matrix.
func Table2(cfg Config) revng.Table2Result { return revng.Table2(cfg.kernelConfig()) }

// Fig4 checks the stride-12 XOR property of mined colliding IPA pairs.
func Fig4(cfg Config, targets int) revng.Fig4Result {
	return revng.Fig4(cfg.kernelConfig(), targets)
}

// Fig5 measures the PSFP/SSBP eviction-rate curves.
func Fig5(cfg Config, sizes []int, trials int) revng.Fig5Result {
	return revng.Fig5(cfg.kernelConfig(), nil, sizes, trials)
}

// Fig7 measures collision-finding attempts (SSBP) and the PSFP distance
// dependence.
func Fig7(cfg Config, ssbpTrials, psfpTrials int) revng.Fig7Result {
	return revng.Fig7(cfg.kernelConfig(), ssbpTrials, psfpTrials)
}

// Isolation runs the Section IV-A cross-domain matrix (Vulnerability 1).
func Isolation(cfg Config) revng.IsolationResult { return revng.Isolation(cfg.kernelConfig()) }

// SMTMode runs the Section III-D3 SMT-vs-single-thread eviction comparison.
func SMTMode(cfg Config) revng.SMTModeResult { return revng.SMTMode(cfg.kernelConfig()) }

// Infer recovers the Section III design constants (C0 init, C4 limit, C3
// value, the PSF window, the PSFP capacity) from timing observations alone.
func Infer(cfg Config) revng.InferredParams { return revng.Infer(cfg.kernelConfig()) }

// AddrLeak runs the Section V-D physical-address-relation leak experiment.
func AddrLeak(cfg Config, pages int) revng.AddrLeakResult {
	return revng.AddrLeak(cfg.kernelConfig(), pages)
}

// TransientExec reproduces the Fig 8 transient-execution windows of both
// mispredictions (Section IV-C, Vulnerability 3).
func TransientExec(cfg Config) revng.TransientExecResult {
	return revng.TransientExec(cfg.kernelConfig())
}

// TransientUpdate reproduces the Fig 9 observation that predictor updates
// made inside transient windows survive the squash (Section IV-D,
// Vulnerability 4).
func TransientUpdate(cfg Config) revng.TransientUpdateResult {
	return revng.TransientUpdate(cfg.kernelConfig())
}

// PSFPSizeAblation sweeps the PSFP capacity against the Fig 5 eviction
// threshold (design-choice ablation).
func PSFPSizeAblation(cfg Config, sizes []int) []revng.AblationPoint {
	return revng.PSFPSizeAblation(cfg.kernelConfig(), sizes)
}

// MDUCharacterization returns TABLE IV (Intel/ARM/AMD designs).
func MDUCharacterization() []predict.Characterization { return predict.CharacterizationTable() }

// TransitionTable renders the implemented TABLE I state machine, generated
// from the live Update code so it can never drift from the implementation.
func TransitionTable() string { return predict.TransitionTable() }

// --- Attacks ---

// STLOptions configures SpectreSTL.
type STLOptions = attack.STLOptions

// CTLOptions configures SpectreCTL.
type CTLOptions = attack.CTLOptions

// FingerprintOptions configures Fingerprint.
type FingerprintOptions = attack.FingerprintOptions

// SpectreSTL runs the out-of-place Spectre-STL attack (Section V-B).
func SpectreSTL(cfg Config, secret []byte, opts STLOptions) AttackResult {
	return attack.SpectreSTL(cfg.kernelConfig(), secret, opts)
}

// SpectreSTLInPlace runs the classic in-place Spectre-STL baseline the
// paper improves on: training happens through repeated victim executions.
func SpectreSTLInPlace(cfg Config, secret []byte) AttackResult {
	return attack.SpectreSTLInPlace(cfg.kernelConfig(), secret)
}

// SpectreCTL runs the Spectre-CTL attack (Section V-C1).
func SpectreCTL(cfg Config, secret []byte, opts CTLOptions) AttackResult {
	return attack.SpectreCTL(cfg.kernelConfig(), secret, opts)
}

// SpectreCTLBrowser runs the browser-timer variant (Section V-C2).
func SpectreCTLBrowser(cfg Config, secret []byte) AttackResult {
	return attack.SpectreCTLBrowser(cfg.kernelConfig(), secret)
}

// Fingerprint runs the Fig 11 CNN-model fingerprinting experiment.
func Fingerprint(cfg Config, opts FingerprintOptions) (attack.FingerprintResult, error) {
	return attack.Fingerprint(cfg.kernelConfig(), opts)
}

// SandboxEscape runs the Section V-C2 browser model end to end: JIT-only
// code generation, bounds-masked linear memory, no CLFLUSH, a coarse
// quantized timer — and a leak of renderer memory through SSBP anyway.
func SandboxEscape(cfg Config, secret []byte) (sandbox.EscapeResult, error) {
	return sandbox.Escape(cfg.kernelConfig(), secret)
}

// --- Defense ---

// SSBDOverhead runs the Fig 12 performance study over the SPECrate-like
// kernels.
func SSBDOverhead(cfg Config) workload.SSBDOverheadResult {
	return workload.SSBDOverhead(cfg.kernelConfig(), workload.SpecKernels())
}

// --- Experiment registry ---

// Experiment is one registered DESIGN.md index row: ID, paper expectation,
// and a Run function producing a report with pass bands.
type Experiment = harness.Experiment

// ExperimentReport is one experiment's outcome.
type ExperimentReport = harness.Report

// ExperimentSuite is a consolidated run of registry experiments; it renders
// itself as text, JSON, or worker-count-independent StableJSON.
type ExperimentSuite = harness.SuiteReport

// ExperimentBench is a serial-vs-parallel timing comparison of the suite.
type ExperimentBench = harness.BenchReport

// ErrUnknownExperiment is wrapped into the error RunExperiments and
// BenchExperiments return when a selection names an experiment the registry
// does not have; test with errors.Is.
var ErrUnknownExperiment = harness.ErrUnknownExperiment

// Experiments lists the registered experiments in report order — one per
// row of DESIGN.md's per-experiment index.
func Experiments() []Experiment { return suite.Registry().All() }

// RunExperiments runs the selected registry entries (nil ids means all) at
// cfg's seed and parallelism. Quick selects reduced trial counts;
// cfg.Metrics adds a per-experiment "micro" metrics section to each report.
func RunExperiments(cfg Config, quick bool, ids []string) (ExperimentSuite, error) {
	return suite.Registry().Run(harness.Ctx{
		Config:    cfg.kernelConfig(),
		Quick:     quick,
		Metrics:   cfg.Metrics,
		Profile:   cfg.Profile,
		Progress:  cfg.Progress,
		Completed: cfg.Completed,
	}, ids)
}

// AssembleExperiments builds the suite report an uninterrupted RunExperiments
// over the same selection would have produced, from independently collected
// per-experiment reports (keyed by ID; see Config.Completed). Experiments of
// the selection missing from reports appear as stubs with status "skipped" —
// the partial-report shape an interrupted run emits; with every report
// present the result is byte-identical to RunExperiments'.
func AssembleExperiments(cfg Config, quick bool, ids []string, reports map[string]ExperimentReport) (ExperimentSuite, error) {
	return suite.Registry().Assemble(harness.Ctx{
		Config:  cfg.kernelConfig(),
		Quick:   quick,
		Metrics: cfg.Metrics,
		Profile: cfg.Profile,
	}, ids, reports)
}

// BenchExperiments runs the selected entries twice — serial, then at cfg's
// parallelism — and reports per-experiment wall times, the speedup, and
// whether both runs agreed byte for byte.
func BenchExperiments(cfg Config, quick bool, ids []string) (ExperimentBench, error) {
	return suite.Registry().Bench(harness.Ctx{Config: cfg.kernelConfig(), Quick: quick, Metrics: cfg.Metrics, Profile: cfg.Profile}, ids)
}

// --- Remote workers ---

// WorkerOptions tunes ServeWorker.
type WorkerOptions struct {
	// Name identifies the worker to the daemon (defaults to "worker").
	Name string
	// Parallelism is the per-shard trial-loop parallelism; 0 means 1. Reports
	// are byte-identical at any value.
	Parallelism int
	// Poll is how long each lease request waits server-side for work before
	// coming back empty; 0 means 2s.
	Poll time.Duration
	// Logger, when set, receives one structured record per lease event with
	// job/shard/lease/worker/attempt/trace fields. Nil means silent.
	Logger *slog.Logger
}

// ServeWorker connects to a zenspecd daemon at url (e.g.
// "http://127.0.0.1:8787"), pulls shard leases over the /v1 job API, and runs
// them on the full experiment registry until ctx is cancelled — the core of
// cmd/zenspec-worker, exported so programs can embed a worker. Daemon
// outages and restarts are ridden out with backoff; a worker killed
// mid-shard just stops heartbeating, and the daemon re-leases the shard to
// someone else with no effect on the job's final bytes.
func ServeWorker(ctx context.Context, url string, opts WorkerOptions) error {
	w := service.NewWorker(&service.Client{Base: url}, service.WorkerConfig{
		Name:        opts.Name,
		Registry:    suite.Registry(),
		Parallelism: opts.Parallelism,
		Poll:        opts.Poll,
		Logger:      opts.Logger,
	})
	return w.Run(ctx)
}
