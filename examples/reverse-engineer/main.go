// Reverse-engineer: rediscover the paper's findings from timing alone —
// validate the TABLE I state machine against the hardware (simulated here),
// measure the PSFP capacity through eviction sets (Fig 5), and find an
// out-of-place SSBP collision with code sliding (Fig 3/7).
package main

import (
	"fmt"

	"zenspec"
)

func main() {
	cfg := zenspec.Config{Seed: 42}

	fmt.Println("== 1. Does the TABLE I state machine model the hardware? ==")
	res := zenspec.Table1(cfg, 30, 48)
	fmt.Println(res)
	fmt.Println()

	fmt.Println("== 2. How big is PSFP? (eviction sets, Fig 5) ==")
	ev := zenspec.Fig5(cfg, []int{8, 10, 11, 12, 13, 16}, 10)
	fmt.Print(ev)
	fmt.Println("The sharp step between 11 and 12 is the paper's 12-entry")
	fmt.Println("fully-associative PSFP; SSBP shows only a gradual curve.")
	fmt.Println()

	fmt.Println("== 3. Finding an SSBP collision by code sliding (Fig 7) ==")
	fig7 := zenspec.Fig7(cfg, 6, 2)
	fmt.Print(fig7)
	fmt.Println()

	fmt.Println("== 4. The hash behind the collisions (Fig 4) ==")
	fmt.Println(zenspec.Fig4(cfg, 6))
	fmt.Println("Every colliding pair's address XOR folds to zero at a 12-bit")
	fmt.Println("stride: the selector is 12 XORs over the 48-bit IPA.")
	fmt.Println()

	fmt.Println("== 5. Recovering the design constants from timing alone ==")
	fmt.Print(zenspec.Infer(cfg))
	fmt.Println("These are the numbers in TABLE I and Fig 5, rediscovered the")
	fmt.Println("way the paper did: with nothing but a cycle counter.")
}
