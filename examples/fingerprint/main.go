// Fingerprint: identify which CNN model a victim process is running —
// without reading any of its memory — purely from the distribution of C3
// values its store-load behaviour leaves in SSBP (Fig 11).
package main

import (
	"fmt"
	"sort"

	"zenspec"
)

func main() {
	fmt.Println("Collecting SSBP fingerprints for six CNN models")
	fmt.Println("(each sample: victim timeslices interleaved with full entry scans)...")
	fmt.Println()

	res, err := zenspec.Fingerprint(zenspec.Config{}, zenspec.FingerprintOptions{
		ScanRange: 128, Rounds: 14, TrainSamples: 9, TestSamples: 4, Seed: 2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	var names []string
	for n := range res.MeanVectors {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("mean rate of observed C3 values per scan round (values 1..10):")
	fmt.Printf("%-11s", "model")
	for v := 1; v <= 10; v++ {
		fmt.Printf(" %5d", v)
	}
	fmt.Println()
	for _, n := range names {
		fmt.Printf("%-11s", n)
		for v := 1; v <= 10; v++ {
			fmt.Printf(" %5.2f", res.MeanVectors[n][v-1])
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("SVM accuracy on held-out samples: %.1f%% (the paper: >95.5%%)\n", 100*res.Accuracy)
	fmt.Println()
	fmt.Println("Each model's layer mix drains the predictor differently, so the")
	fmt.Println("residual counter values form a signature — readable by any process")
	fmt.Println("on the core, because SSBP survives context switches.")
}
