// Observe: attach the structured observer API to a machine and watch the
// predictors train event by event — the same φ(n, a, 7n) sequence as the
// quickstart example, but seen from inside the simulator instead of through
// timing. Also collects the run's microarchitectural metrics and writes a
// Perfetto trace to load at https://ui.perfetto.dev.
package main

import (
	"fmt"
	"log"
	"os"

	"zenspec"
)

func main() {
	// Observers can be attached at boot through Config.Observer, or — as
	// here — to an already-booted machine with zenspec.Observe. A metrics
	// registry folds every event class into named counters; the trace
	// recorder buffers events for Perfetto export.
	metrics := zenspec.NewMetricsObserver()
	recorder := zenspec.NewTraceRecorder()
	lab := zenspec.NewLab(zenspec.Config{Seed: 1, Observer: metrics})
	zenspec.Observe(lab.K, recorder, zenspec.ObserverOptions{})

	// A third observer prints predictor-training events as they happen,
	// filtered to the predict class so nothing else pays for the print.
	cancel := zenspec.Observe(lab.K, zenspec.ObserverFunc(func(e zenspec.Event) {
		switch ev := e.(type) {
		case zenspec.PSFPTrainEvent:
			fmt.Printf("  cycle %6d  psfp train type %s  C0=%d C1=%d C2=%d\n",
				ev.Cycle, ev.Type, ev.After.C0, ev.After.C1, ev.After.C2)
		case zenspec.SSBPTransitionEvent:
			if ev.StateBefore != ev.StateAfter {
				fmt.Printf("  cycle %6d  ssbp %s -> %s\n", ev.Cycle, ev.StateBefore, ev.StateAfter)
			}
		}
	}), zenspec.ObserverOptions{Classes: []zenspec.EventClass{zenspec.ClassPredict}})

	s := lab.PlaceStld()
	fmt.Println("φ(n, a, 7n) as predictor events:")
	for _, aliasing := range zenspec.Seq(1, -1, 7) {
		s.Run(aliasing)
	}
	cancel() // the print observer detaches; metrics and recorder stay on

	fmt.Println("\nmetrics after the sequence:")
	fmt.Print(metrics.Snapshot().Text())

	trace, err := recorder.Perfetto()
	if err != nil {
		log.Fatalf("observe: %v", err)
	}
	if err := os.WriteFile("observe-trace.json", trace, 0o644); err != nil {
		log.Fatalf("observe: %v", err)
	}
	fmt.Printf("\nwrote %d trace events to observe-trace.json (load at https://ui.perfetto.dev)\n",
		recorder.Len())
}
