// Quickstart: boot the simulated Zen 3 machine, place the paper's stld
// microbenchmark, and watch the speculative memory access predictors train —
// the φ(n,a,7n) = (H,G,4E,3H) sequence from Section III-B, observed through
// timing exactly as the paper measured it.
package main

import (
	"fmt"

	"zenspec"
)

func main() {
	// A lab is a booted machine plus a timing-calibrated measurement fixture.
	lab := zenspec.NewLab(zenspec.Config{Seed: 1})

	// Place a store-load microbenchmark: a store whose address generation is
	// delayed by a multiply chain, followed immediately by a load.
	s := lab.PlaceStld()
	fmt.Printf("stld placed: store IPA %#x, load IPA %#x (predictor hashes %#x/%#x)\n\n",
		s.StoreIPA, s.LoadIPA, s.StoreHash, s.LoadHash)

	// The paper's first reverse-engineering sequence: one non-aliasing pair,
	// one aliasing pair, then seven non-aliasing pairs.
	fmt.Println("φ(n, a, 7n):")
	fmt.Printf("%-5s %-6s %8s  %-9s %-4s\n", "step", "input", "cycles", "class", "type")
	for i, aliasing := range zenspec.Seq(1, -1, 7) {
		in := "n"
		if aliasing {
			in = "a"
		}
		ob := s.Run(aliasing)
		fmt.Printf("%-5d %-6s %8d  %-9s %-4s\n", i, in, ob.Cycles, ob.Class, ob.TrueType)
	}

	// The predictor state behind what we just measured.
	c := s.Counters()
	fmt.Printf("\ncounters after the sequence: C0=%d C1=%d C2=%d C3=%d C4=%d (state %s)\n",
		c.C0, c.C1, c.C2, c.C3, c.C4, c.State())
	fmt.Println("\nThe aliasing pair (step 1) mispredicted and rolled back (type G, slow);")
	fmt.Println("the rollback trained the predictor, so the next four non-aliasing pairs")
	fmt.Println("stalled needlessly (type E) until C0 drained back to zero (type H).")
}
