// Mitigations: what stops these attacks, and what it costs (Section VI).
// SSBD kills both attacks but taxes store-to-load-heavy code by >20%;
// PSFD — faithfully to the paper's measurement — changes nothing; the
// Section VI-B sketches each close one attack class.
package main

import (
	"fmt"
	"math/rand"

	"zenspec"
)

func main() {
	secret := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(secret)

	type row struct {
		name string
		cfg  zenspec.Config
	}
	fmt.Println("== Attack accuracy under each defense ==")
	fmt.Printf("%-38s %12s %12s\n", "configuration", "spectre-stl", "spectre-ctl")
	for _, r := range []row{
		{"baseline", zenspec.Config{Seed: 5}},
		{"SSBD", zenspec.Config{Seed: 5, SSBD: true}},
		{"PSFD (paper: ineffective)", zenspec.Config{Seed: 5, PSFD: true}},
		{"flush SSBP on context switch", zenspec.Config{Seed: 5, FlushSSBPOnSwitch: true}},
		{"secure timer (4096-cycle quantum)", zenspec.Config{Seed: 5, TimerQuantum: 4096}},
	} {
		stl := zenspec.SpectreSTL(r.cfg, secret, zenspec.STLOptions{})
		ctl := zenspec.SpectreCTL(r.cfg, secret, zenspec.CTLOptions{Sweeps: 1})
		fmt.Printf("%-38s %11.1f%% %11.1f%%\n", r.name, 100*stl.Accuracy, 100*ctl.Accuracy)
	}

	fmt.Println("\n== What SSBD costs (Fig 12) ==")
	fmt.Print(zenspec.SSBDOverhead(zenspec.Config{Seed: 1}))
	fmt.Println("\nThe only complete hardware mitigation serializes every load behind")
	fmt.Println("unresolved stores — which is why it is off by default in Linux.")
}
