// Spectre-CTL end to end: a victim process holds a secret string; the
// attacker — in a different process, with no shared memory and no cache
// channel — leaks it byte by byte through the SSBP covert channel
// (Section V-C). The same attack is then pointed at a kernel-domain victim.
package main

import (
	"fmt"

	"zenspec"
)

func main() {
	secret := []byte("SSBP leaks across processes!")

	fmt.Println("== Spectre-CTL against a user process ==")
	res := zenspec.SpectreCTL(zenspec.Config{Seed: 5}, secret, zenspec.CTLOptions{})
	fmt.Println(res)
	fmt.Printf("secret: %q\nleaked: %q\n\n", secret, res.Leaked)

	fmt.Println("== The same attack against a kernel thread ==")
	res = zenspec.SpectreCTL(zenspec.Config{Seed: 6}, secret[:12], zenspec.CTLOptions{
		VictimDomain: zenspec.DomainKernel,
	})
	fmt.Println(res)
	fmt.Printf("leaked: %q\n\n", res.Leaked)

	fmt.Println("== And from a browser-grade timer (Section V-C2) ==")
	res = zenspec.SpectreCTLBrowser(zenspec.Config{Seed: 5}, secret[:12])
	fmt.Println(res)
	fmt.Printf("leaked: %q\n\n", res.Leaked)

	fmt.Println("== Finally, from INSIDE the sandbox ==")
	fmt.Println("JIT-only code, bounds-masked memory, no CLFLUSH, 40-cycle timer:")
	esc, err := zenspec.SandboxEscape(zenspec.Config{Seed: 5}, secret[:4])
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(esc)
	fmt.Printf("leaked: %q\n", esc.Leaked)
}
