#!/bin/sh
# verify.sh — the repository's full local gate: formatting, vet, build, and
# the test suite under the race detector. CI and pre-commit both run this.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
# Static-analysis gate: staticcheck when available (CI installs it), with a
# visible skip locally so the gate never silently weakens.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "staticcheck not installed; skipping (go vet already ran)" >&2
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== speccheck summary-equivalence fuzz smoke =="
# Ten seconds of coverage-guided search for any divergence between the
# incremental summary engine and the whole-program analyzer.
go test -run=FuzzSummaryEquivalence -fuzz=FuzzSummaryEquivalence \
    -fuzztime 10s ./internal/speccheck

echo "== core microbenchmark smoke (allocation invariants) =="
# One short pass over the per-cycle hot-path benchmarks. The grep gates the
# zero-allocation invariants at the benchmark level too (the dedicated
# AllocsPerRun tests already ran under -race above): the steady-state
# pipeline step, both emit paths, and the Flush+Reload sweep must all report
# 0 allocs/op. benchstat renders the table when installed (CI installs it),
# with a visible skip locally.
bench_out=$(mktemp)
go test -run '^$' \
    -bench 'BenchmarkCoreStep|BenchmarkObsEmitFast|BenchmarkObsEmitDisabled|BenchmarkFlushReloadSweep' \
    -benchtime 100x -count 1 . | tee "$bench_out"
benches=$(grep -c '^Benchmark' "$bench_out")
zeroalloc=$(grep -c '	 *0 allocs/op' "$bench_out") || true
if [ "$benches" -ne 4 ] || [ "$zeroalloc" -ne 4 ]; then
    echo "core benchmarks must all report 0 allocs/op ($zeroalloc of $benches did)" >&2
    exit 1
fi
if command -v benchstat >/dev/null 2>&1; then
    benchstat "$bench_out"
else
    echo "benchstat not installed; raw go test -bench output above" >&2
fi
rm -f "$bench_out"

echo "== experiment suite smoke (quick, JSON) =="
suite_json=$(mktemp)
fault_json=$(mktemp)
trace_json=$(mktemp)
trap 'rm -f "$suite_json" "$fault_json" "$trace_json"' EXIT
go run ./cmd/experiments -quick -json > "$suite_json"
go run ./cmd/experiments -validate "$suite_json"

echo "== faulted suite smoke (quick, default plan, JSON) =="
# The degraded report (injected trial faults) must still validate: every
# experiment in band, failures accounted for as retries/recoveries.
go run ./cmd/experiments -quick -faults default \
    -only fault-stl,fault-ctl,fault-harness -json > "$fault_json"
go run ./cmd/experiments -validate "$fault_json"

echo "== observability smoke (trace + metrics on the STL attack) =="
# The trace must come back as a Chrome trace-event JSON document with at
# least one complete event; -validate-trace enforces both.
go run ./cmd/experiments -quick -only spectre-stl -metrics \
    -trace "$trace_json" -trace-classes squash,predict,fault,kernel > /dev/null
go run ./cmd/experiments -validate-trace "$trace_json"

echo "== profiler smoke (pprof export readable by go tool pprof) =="
# The cycle-attribution profile must export as pprof protobuf that the stock
# toolchain can open, plus non-empty folded flamegraph text.
prof_pb=$(mktemp)
prof_flame=$(mktemp)
trap 'rm -f "$suite_json" "$fault_json" "$trace_json" "$prof_pb" "$prof_flame"' EXIT
go run ./cmd/experiments -quick -only spectre-stl -profile \
    -profile-out "$prof_pb" -flame "$prof_flame" > /dev/null
go tool pprof -top -nodecount=5 "$prof_pb" > /dev/null
test -s "$prof_flame"

echo "== zenspecd service smoke (submit, byte-identical report, drain) =="
# Start the daemon (race-instrumented) on a random port, submit a quick
# subset through the cmd/experiments client, and require the fetched
# StableJSON report to be byte-identical to a direct local run of the same
# spec. Then SIGTERM the daemon and require a clean drain + checkpoint.
svc_tmp=$(mktemp -d)
svc_pid=
wrk_a_pid=
wrk_b_pid=
cleanup_svc() {
    [ -n "$svc_pid" ] && kill "$svc_pid" 2>/dev/null || true
    [ -n "$wrk_a_pid" ] && kill -9 "$wrk_a_pid" 2>/dev/null || true
    [ -n "$wrk_b_pid" ] && kill "$wrk_b_pid" 2>/dev/null || true
    rm -rf "$svc_tmp"
    rm -f "$suite_json" "$fault_json" "$trace_json" "$prof_pb" "$prof_flame"
}
trap cleanup_svc EXIT
go build -race -o "$svc_tmp/zenspecd" ./cmd/zenspecd
go build -o "$svc_tmp/experiments" ./cmd/experiments
go build -o "$svc_tmp/zenspec-worker" ./cmd/zenspec-worker
"$svc_tmp/zenspecd" -dir "$svc_tmp/state" -addr 127.0.0.1:0 -workers 2 \
    > "$svc_tmp/out" 2> "$svc_tmp/err" &
svc_pid=$!
svc_url=
i=0
while [ $i -lt 100 ]; do
    svc_url=$(sed -n 's/^zenspecd: listening on //p' "$svc_tmp/out")
    [ -n "$svc_url" ] && break
    kill -0 "$svc_pid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$svc_url" ]; then
    echo "zenspecd did not start:" >&2
    cat "$svc_tmp/out" "$svc_tmp/err" >&2
    exit 1
fi
"$svc_tmp/experiments" -submit "$svc_url" -quick -only fig2,table1 -stable \
    > "$svc_tmp/service.json"
"$svc_tmp/experiments" -quick -only fig2,table1 -stable > "$svc_tmp/direct.json"
cmp "$svc_tmp/service.json" "$svc_tmp/direct.json"
kill -TERM "$svc_pid"
wait "$svc_pid"
svc_pid=
grep -q "journal checkpointed" "$svc_tmp/err" || {
    echo "zenspecd did not checkpoint on SIGTERM:" >&2
    cat "$svc_tmp/err" >&2
    exit 1
}

echo "== distributed smoke (queue-only daemon, 2 pull workers, one SIGKILLed) =="
# The same spec again, but through the scale-out path: a queue-only daemon
# (-workers 0) cuts the job into trial-range shards (-split 4), two external
# zenspec-worker processes drain it over /v1 leases, and one worker is
# SIGKILLed mid-drain — its abandoned lease expires and the survivor reruns
# the shard. The merged StableJSON must still be byte-identical to the direct
# local run.
"$svc_tmp/zenspecd" -dir "$svc_tmp/dist-state" -addr 127.0.0.1:0 -workers 0 \
    -lease 2s > "$svc_tmp/dist-out" 2> "$svc_tmp/dist-err" &
svc_pid=$!
svc_url=
i=0
while [ $i -lt 100 ]; do
    svc_url=$(sed -n 's/^zenspecd: listening on //p' "$svc_tmp/dist-out")
    [ -n "$svc_url" ] && break
    kill -0 "$svc_pid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$svc_url" ]; then
    echo "queue-only zenspecd did not start:" >&2
    cat "$svc_tmp/dist-out" "$svc_tmp/dist-err" >&2
    exit 1
fi
"$svc_tmp/zenspec-worker" -url "$svc_url" -name doomed -poll 200ms \
    -log-format json > "$svc_tmp/wrk-a.log" 2>&1 &
wrk_a_pid=$!
"$svc_tmp/zenspec-worker" -url "$svc_url" -name survivor -poll 200ms \
    -log-format json > "$svc_tmp/wrk-b.log" 2>&1 &
wrk_b_pid=$!
"$svc_tmp/experiments" -submit "$svc_url" -quick -only fig2,table1 -split 4 \
    -stable > "$svc_tmp/dist.json" &
submit_pid=$!
# Let the workers lease shards, then SIGKILL one mid-drain: no Complete, no
# heartbeat — the daemon only learns from the lease expiring.
sleep 2
kill -9 "$wrk_a_pid" 2>/dev/null || true
wait "$wrk_a_pid" 2>/dev/null || true
wrk_a_pid=
grep -q "lease " "$svc_tmp/wrk-a.log" || {
    echo "SIGKILLed worker never claimed a lease; smoke did not exercise re-lease:" >&2
    cat "$svc_tmp/wrk-a.log" >&2
    exit 1
}
if ! wait "$submit_pid"; then
    echo "distributed submit failed:" >&2
    cat "$svc_tmp/dist-err" "$svc_tmp/wrk-b.log" >&2
    exit 1
fi
cmp "$svc_tmp/dist.json" "$svc_tmp/direct.json"

echo "== distributed observability smoke (metrics, stitched trace, JSON logs) =="
# After the drain the daemon's /metrics scrape must carry the service plane:
# per-experiment shard wall-clock histograms, lease counters, and — because
# the doomed worker was SIGKILLed after claiming a lease — at least one
# revocation.
curl -fsS "$svc_url/metrics" > "$svc_tmp/metrics"
grep -q '^zenspec_service_shard_wall_ms_bucket{exp=' "$svc_tmp/metrics" || {
    echo "metrics scrape missing per-experiment shard wall-clock histogram:" >&2
    cat "$svc_tmp/metrics" >&2
    exit 1
}
grep -q '^zenspec_service_leases_granted_total [1-9]' "$svc_tmp/metrics" || {
    echo "metrics scrape missing lease grant counter:" >&2
    cat "$svc_tmp/metrics" >&2
    exit 1
}
# The job's stitched daemon+worker trace must be Perfetto-loadable JSON with
# events from the daemon and both worker actors, re-leased shard included.
python3 - "$svc_url" <<'PYEOF'
import json, sys, urllib.request
base = sys.argv[1]
jobs = json.load(urllib.request.urlopen(base + "/v1/jobs"))["jobs"]
assert jobs, "daemon lists no jobs"
trace = json.load(urllib.request.urlopen(base + "/v1/jobs/" + jobs[0]["id"] + "/trace"))
evs = trace["traceEvents"]
assert evs, "trace has no events"
actors = {e["args"]["name"] for e in evs if e["ph"] == "M" and e["name"] == "process_name"}
assert "zenspecd" in actors, f"daemon actor missing from trace: {actors}"
assert any(a.startswith("worker:") for a in actors), f"no worker spans stitched in: {actors}"
shards = {s["id"] for s in jobs[0]["shards"]}
runs = {e["name"][4:] for e in evs if e["name"].startswith("run ")}
missing = shards - runs
assert not missing, f"trace missing run spans for shards: {missing}"
print(f"trace OK: {len(evs)} events, actors {sorted(actors)}")
PYEOF
# -log-format=json means every worker log line is an independently
# parseable JSON object.
python3 - "$svc_tmp/wrk-b.log" <<'PYEOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "survivor worker logged nothing"
for l in lines:
    json.loads(l)
print(f"worker JSON logs OK: {len(lines)} lines")
PYEOF
kill "$wrk_b_pid" 2>/dev/null || true
wait "$wrk_b_pid" 2>/dev/null || true
wrk_b_pid=
# Revocation path: with no workers left, claim a lease by hand over /v1 and
# never heartbeat. The monitor must revoke it within the 2s TTL and the
# revocation must land on the scrape.
python3 - "$svc_url" <<'PYEOF'
import json, sys, time, urllib.request
base = sys.argv[1]
def post(path, body):
    req = urllib.request.Request(base + path, json.dumps(body).encode(),
                                 {"Content-Type": "application/json"})
    with urllib.request.urlopen(req) as r:
        return json.loads(r.read()) if r.status != 204 else None
post("/v1/jobs", {"seed": 1, "quick": True, "only": ["fig2"]})
lease = post("/v1/leases", {"worker": "verify-zombie", "wait_ms": 2000})
assert lease and lease.get("token"), f"no lease granted: {lease}"
deadline = time.time() + 30
while time.time() < deadline:
    scrape = urllib.request.urlopen(base + "/metrics").read().decode()
    n = [l for l in scrape.splitlines()
         if l.startswith("zenspec_service_lease_revocations_total ")]
    if n and int(n[0].split()[1]) >= 1:
        print(f"revocation OK: {n[0]}")
        sys.exit(0)
    time.sleep(0.5)
sys.exit("abandoned lease was never revoked (revocation counter still 0)")
PYEOF
kill -TERM "$svc_pid"
wait "$svc_pid"
svc_pid=
grep -q "journal checkpointed" "$svc_tmp/dist-err" || {
    echo "queue-only zenspecd did not checkpoint on SIGTERM:" >&2
    cat "$svc_tmp/dist-err" >&2
    exit 1
}

echo "verify: OK"
