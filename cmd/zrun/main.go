// Command zrun assembles a text program and runs it on the simulated
// machine, printing the final registers, cycle count and any store-load
// speculation events — a workbench for building new gadgets.
//
// Usage:
//
//	zrun -file prog.s [-regs "rdi=0x10000,rsi=0x10000"] [-data 0x10000:16384] [-ssbd]
//	echo 'movi rax, 42
//	halt' | zrun
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"zenspec"
)

const entryVA = 0x400000

func main() {
	file := flag.String("file", "", "assembly source (default: stdin)")
	regSpec := flag.String("regs", "", "initial registers, e.g. \"rdi=0x10000,rsi=42\"")
	dataSpec := flag.String("data", "0x10000:65536", "data mapping addr:bytes, comma separated")
	seed := flag.Int64("seed", 1, "simulation seed")
	ssbd := flag.Bool("ssbd", false, "enable SSBD")
	trace := flag.Bool("trace", false, "print store-load speculation events")
	itrace := flag.Bool("itrace", false, "print the full instruction trace (architectural and transient)")
	traceOut := flag.String("trace-out", "", "write a Perfetto/Chrome trace of the run to this path (load at ui.perfetto.dev)")
	metrics := flag.Bool("metrics", false, "print the microarchitectural metrics of the run")
	disasm := flag.Bool("d", false, "print the disassembly before running")
	scan := flag.Bool("scan", false, "scan the program for speculative store-bypass gadgets")
	cpuprofile := flag.String("cpuprofile", "", "write a host CPU profile of this process to the given path")
	memprofile := flag.String("memprofile", "", "write a host heap profile of this process to the given path")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("zrun: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("zrun: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Printf("zrun: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("zrun: %v", err)
			}
		}()
	}

	var src []byte
	var err error
	if *file == "" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(*file)
	}
	if err != nil {
		log.Fatalf("zrun: %v", err)
	}
	code, err := zenspec.Assemble(string(src), entryVA)
	if err != nil {
		log.Fatalf("zrun: %v", err)
	}
	if *disasm {
		for _, line := range zenspec.Disassemble(code, entryVA) {
			fmt.Println(line)
		}
		fmt.Println()
	}
	if *scan {
		cands := zenspec.ScanGadgets(code)
		if len(cands) == 0 {
			fmt.Println("gadget scan: no speculative store-bypass candidates")
		}
		for _, c := range cands {
			fmt.Println("gadget scan:", c)
		}
		fmt.Println()
	}

	m := zenspec.NewMachine(zenspec.Config{Seed: *seed, SSBD: *ssbd})
	p := m.NewProcess("zrun", zenspec.DomainUser)
	p.MapCode(entryVA, code)
	for _, spec := range strings.Split(*dataSpec, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.SplitN(spec, ":", 2)
		addr, err := strconv.ParseUint(parts[0], 0, 64)
		if err != nil {
			log.Fatalf("zrun: bad data address %q", parts[0])
		}
		size := uint64(4096)
		if len(parts) == 2 {
			size, err = strconv.ParseUint(parts[1], 0, 64)
			if err != nil {
				log.Fatalf("zrun: bad data size %q", parts[1])
			}
		}
		p.MapData(addr, size)
	}
	if err := setRegs(p, *regSpec); err != nil {
		log.Fatalf("zrun: %v", err)
	}
	if *itrace {
		zenspec.Observe(m, zenspec.ObserverFunc(func(ev zenspec.Event) {
			e, ok := ev.(zenspec.InstEvent)
			if !ok {
				return
			}
			mark := " "
			if e.Transient {
				mark = "~" // wrong-path execution
			}
			fmt.Printf("%s %#08x  %-28s retired-by %d\n", mark, e.PC, e.Inst, e.RetiredBy)
		}), zenspec.ObserverOptions{Classes: []zenspec.EventClass{zenspec.ClassInst}})
	}
	var rec *zenspec.TraceRecorder
	if *traceOut != "" {
		rec = zenspec.NewTraceRecorder()
		zenspec.Observe(m, rec, zenspec.ObserverOptions{})
	}
	var mets *zenspec.MetricsObserver
	if *metrics {
		mets = zenspec.NewMetricsObserver()
		zenspec.Observe(m, mets, zenspec.ObserverOptions{})
	}

	res := m.Run(p, entryVA, 0)
	fmt.Printf("stop: %v", res.Stop)
	if res.Stop.String() == "fault" {
		fmt.Printf(" (%v at %#x, pc %#x)", res.Fault, res.FaultVA, res.FaultPC)
	}
	fmt.Printf("   cycles: %d   instructions: %d\n", res.Cycles, res.Insts)
	names := []string{"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
		"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"}
	for i, n := range names {
		fmt.Printf("%-4s %#18x", n, p.Regs[i])
		if i%2 == 1 {
			fmt.Println()
		} else {
			fmt.Print("   ")
		}
	}
	if *trace {
		fmt.Println("\nstore-load speculation events:")
		for _, ev := range res.Stlds {
			transient := ""
			if ev.Transient {
				transient = " (transient)"
			}
			fmt.Printf("  type %v: store IPA %#x, load IPA %#x, store VA %#x, load VA %#x%s\n",
				ev.Type, ev.StoreIPA, ev.LoadIPA, ev.StoreVA, ev.LoadVA, transient)
		}
	}
	if rec != nil {
		b, err := rec.Perfetto()
		if err != nil {
			log.Fatalf("zrun: %v", err)
		}
		if err := os.WriteFile(*traceOut, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("zrun: %v", err)
		}
		fmt.Printf("\nwrote %d trace events to %s (load at https://ui.perfetto.dev)\n", rec.Len(), *traceOut)
	}
	if mets != nil {
		fmt.Println("\nmetrics:")
		fmt.Print(mets.Snapshot().Text())
	}
}

func setRegs(p *zenspec.Process, spec string) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	idx := map[string]int{"rax": 0, "rcx": 1, "rdx": 2, "rbx": 3, "rsp": 4,
		"rbp": 5, "rsi": 6, "rdi": 7, "r8": 8, "r9": 9, "r10": 10, "r11": 11,
		"r12": 12, "r13": 13, "r14": 14, "r15": 15}
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad register assignment %q", kv)
		}
		i, ok := idx[strings.ToLower(parts[0])]
		if !ok {
			return fmt.Errorf("unknown register %q", parts[0])
		}
		v, err := strconv.ParseUint(parts[1], 0, 64)
		if err != nil {
			return fmt.Errorf("bad value %q", parts[1])
		}
		p.Regs[i] = v
	}
	return nil
}
