// Command experiments runs the complete per-experiment index of DESIGN.md —
// every table and figure of the paper — and prints a consolidated
// paper-vs-measured report (the source of EXPERIMENTS.md's numbers).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"zenspec"
)

func section(title string) {
	fmt.Printf("\n===== %s =====\n", title)
}

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	quick := flag.Bool("quick", false, "smaller trial counts")
	asJSON := flag.Bool("json", false, "emit a machine-readable JSON report instead of text")
	flag.Parse()
	cfg := zenspec.Config{Seed: *seed}
	start := time.Now()

	if *asJSON {
		emitJSON(cfg, *seed, *quick)
		return
	}

	trials, leakBytes, fpSamples := 20, 256, 10
	if *quick {
		trials, leakBytes, fpSamples = 8, 32, 6
	}

	section("TABLE III — platforms (all share one predictor design)")
	for _, p := range zenspec.Platforms() {
		res := zenspec.Table1(zenspec.Config{Platform: p, Seed: *seed}, 10, 48, *seed)
		fmt.Printf("%-14s %-28s SQ=%d  state-machine match %.2f%%\n",
			p.Name, p.CPU, p.SQSize, 100*res.MatchRate)
	}

	section("Fig 2 — execution types")
	fmt.Print(zenspec.Fig2(cfg))

	section("TABLE I — state machine validation (paper: >99.8%)")
	fmt.Println(zenspec.Table1(cfg, 50, 64, *seed))

	section("TABLE II — counter organization")
	fmt.Print(zenspec.Table2(cfg))

	section("Fig 4 — hash characteristics")
	fmt.Println(zenspec.Fig4(cfg, 8))

	section("Fig 5 — eviction rates (paper: PSFP step at 12; SSBP >50% @16, ~90% @32)")
	fmt.Print(zenspec.Fig5(cfg, []int{4, 8, 10, 11, 12, 16, 24, 32, 48}, trials))

	section("Fig 7 — collision finding (paper: SSBP ~2200 attempts; PSFP needs equal distance)")
	fmt.Print(zenspec.Fig7(cfg, trials, 4))

	section("Section IV-A — isolation matrix (Vulnerability 1)")
	fmt.Print(zenspec.Isolation(cfg))

	section("Section III-D3 — SMT vs single-thread mode")
	fmt.Println(zenspec.SMTMode(cfg))

	section("Section V-D — physical-address relation leak through the hash")
	fmt.Println(zenspec.AddrLeak(cfg, 5))

	section("TABLE IV — MDU characterization")
	for _, row := range zenspec.MDUCharacterization() {
		fmt.Printf("%-14s state machine: %-24s selection: %s\n", row.Design, row.StateMachineBits, row.Selection)
	}

	secret := make([]byte, leakBytes)
	rand.New(rand.NewSource(*seed)).Read(secret)

	section("Section V-B — out-of-place Spectre-STL (paper: 99.95%, 416 B/s)")
	fmt.Println(zenspec.SpectreSTL(cfg, secret, zenspec.STLOptions{}))

	section("Section V-C1 — Spectre-CTL (paper: 99.97%, 384 B/s)")
	fmt.Println(zenspec.SpectreCTL(cfg, secret, zenspec.CTLOptions{}))

	section("Section V-C2 — Spectre-CTL in the browser (paper: 81.1%, ~170 B/s)")
	fmt.Println(zenspec.SpectreCTLBrowser(cfg, secret))

	section("Fig 11 — CNN fingerprinting (paper: >95.5%)")
	fp, err := zenspec.Fingerprint(cfg, zenspec.FingerprintOptions{
		ScanRange: 128, Rounds: 14, TrainSamples: fpSamples, TestSamples: fpSamples / 2, Seed: *seed,
	})
	if err != nil {
		fmt.Println("fingerprint error:", err)
	} else {
		fmt.Print(fp)
	}

	section("Fig 12 — SSBD overhead (paper: >20% on perlbench and exchange2)")
	fmt.Print(zenspec.SSBDOverhead(zenspec.Config{Seed: 1}))

	section("Section VI — defenses")
	for _, row := range []struct {
		name string
		acc  float64
	}{
		{"spectre-stl under SSBD", zenspec.SpectreSTL(zenspec.Config{Seed: *seed, SSBD: true}, secret[:16], zenspec.STLOptions{}).Accuracy},
		{"spectre-stl under PSFD (paper: ineffective)", zenspec.SpectreSTL(zenspec.Config{Seed: *seed, PSFD: true}, secret[:16], zenspec.STLOptions{}).Accuracy},
		{"spectre-ctl under SSBD", zenspec.SpectreCTL(zenspec.Config{Seed: *seed, SSBD: true}, secret[:8], zenspec.CTLOptions{Sweeps: 1}).Accuracy},
		{"spectre-ctl with SSBP flush on switch", zenspec.SpectreCTL(zenspec.Config{Seed: *seed, FlushSSBPOnSwitch: true}, secret[:8], zenspec.CTLOptions{Sweeps: 1}).Accuracy},
		{"spectre-ctl with rotating selection salt", zenspec.SpectreCTL(zenspec.Config{Seed: *seed, RotateSalt: true}, secret[:8], zenspec.CTLOptions{Sweeps: 1, VictimDomain: zenspec.DomainKernel}).Accuracy},
		{"spectre-stl with 4096-cycle secure timer", zenspec.SpectreSTL(zenspec.Config{Seed: *seed, TimerQuantum: 4096}, secret[:16], zenspec.STLOptions{}).Accuracy},
	} {
		fmt.Printf("%-48s accuracy %.1f%%\n", row.name, 100*row.acc)
	}

	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}

// jsonReport is the machine-readable form of the per-experiment index.
type jsonReport struct {
	Seed             int64              `json:"seed"`
	StateMachineRate float64            `json:"table1_match_rate"`
	Fig5PSFP         map[string]float64 `json:"fig5_psfp_eviction"`
	Fig5SSBP         map[string]float64 `json:"fig5_ssbp_eviction"`
	Fig7SSBPMean     float64            `json:"fig7_ssbp_mean_attempts"`
	Vulnerability1   bool               `json:"vulnerability1"`
	SMTDuplicated    bool               `json:"smt_duplicated"`
	Inferred         map[string]int     `json:"inferred_constants"`
	STLAccuracy      float64            `json:"spectre_stl_accuracy"`
	CTLAccuracy      float64            `json:"spectre_ctl_accuracy"`
	BrowserAccuracy  float64            `json:"spectre_ctl_browser_accuracy"`
	Fig12Overheads   map[string]float64 `json:"fig12_overheads"`
	Defenses         map[string]float64 `json:"defense_attack_accuracy"`
}

func emitJSON(cfg zenspec.Config, seed int64, quick bool) {
	leakBytes := 64
	trials := 12
	if quick {
		leakBytes, trials = 16, 6
	}
	secret := make([]byte, leakBytes)
	rand.New(rand.NewSource(seed)).Read(secret)

	rep := jsonReport{
		Seed:           seed,
		Fig5PSFP:       map[string]float64{},
		Fig5SSBP:       map[string]float64{},
		Fig12Overheads: map[string]float64{},
		Defenses:       map[string]float64{},
		Inferred:       map[string]int{},
	}
	rep.StateMachineRate = zenspec.Table1(cfg, 30, 48, seed).MatchRate
	ev := zenspec.Fig5(cfg, []int{11, 12, 16, 32}, trials)
	for i := range ev.PSFP {
		key := fmt.Sprintf("%d", ev.PSFP[i].SetSize)
		rep.Fig5PSFP[key] = ev.PSFP[i].Rate
		rep.Fig5SSBP[key] = ev.SSBP[i].Rate
	}
	rep.Fig7SSBPMean = zenspec.Fig7(cfg, trials, 2).SSBPMean
	rep.Vulnerability1 = zenspec.Isolation(cfg).Vulnerability1()
	rep.SMTDuplicated = zenspec.SMTMode(cfg).Duplicated()
	inf := zenspec.Infer(cfg)
	rep.Inferred["c0_init"] = inf.C0Init
	rep.Inferred["c3_saturated"] = inf.C3Saturated
	rep.Inferred["c4_limit"] = inf.RollbacksToSaturate
	rep.Inferred["psf_window"] = inf.AliasRunsToPSF
	rep.Inferred["psfp_capacity"] = inf.PSFPEvictionThreshold
	rep.STLAccuracy = zenspec.SpectreSTL(cfg, secret, zenspec.STLOptions{}).Accuracy
	rep.CTLAccuracy = zenspec.SpectreCTL(cfg, secret, zenspec.CTLOptions{}).Accuracy
	rep.BrowserAccuracy = zenspec.SpectreCTLBrowser(cfg, secret).Accuracy
	for _, row := range zenspec.SSBDOverhead(zenspec.Config{Seed: 1}).Rows {
		rep.Fig12Overheads[row.Name] = row.OverheadFrac
	}
	rep.Defenses["ssbd_stl"] = zenspec.SpectreSTL(zenspec.Config{Seed: seed, SSBD: true}, secret[:8], zenspec.STLOptions{}).Accuracy
	rep.Defenses["psfd_stl"] = zenspec.SpectreSTL(zenspec.Config{Seed: seed, PSFD: true}, secret[:8], zenspec.STLOptions{}).Accuracy
	rep.Defenses["flush_ssbp_ctl"] = zenspec.SpectreCTL(zenspec.Config{Seed: seed, FlushSSBPOnSwitch: true}, secret[:8], zenspec.CTLOptions{Sweeps: 1}).Accuracy

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
