// Command experiments reproduces every table and figure of the paper through
// the harness registry: one descriptor per DESIGN.md index row, rendered as a
// consolidated text report or as JSON from the same metrics. The process exit
// code reports whether every experiment landed inside its paper band.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"zenspec"
	"zenspec/internal/service"
)

func main() { os.Exit(run()) }

// run is main's body returning the exit code instead of calling os.Exit, so
// the host-profiling defers (cpuprofile stop, heap snapshot) always fire.
func run() int {
	seed := flag.Int64("seed", 42, "simulation seed (results are deterministic per seed)")
	quick := flag.Bool("quick", false, "reduced trial counts and secret sizes")
	jsonOut := flag.Bool("json", false, "emit the suite report as JSON instead of text")
	stable := flag.Bool("stable", false, "emit the suite report as StableJSON (host-dependent fields zeroed; byte-comparable across runs and worker counts)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all; see -list)")
	faults := flag.String("faults", "", "fault-injection plan: none|mild|default|harsh or an inline JSON plan object")
	parallel := flag.Int("parallel", 0, "trial-runner workers; 0 means GOMAXPROCS (results are identical at any value)")
	benchJSON := flag.String("bench-json", "", "run serial then parallel, write a speedup report to this path, and exit")
	validate := flag.String("validate", "", "validate a suite JSON file written by -json: well-formed, bands consistent, all pass")
	metrics := flag.Bool("metrics", false, "collect per-experiment microarchitectural metrics into each report")
	profile := flag.Bool("profile", false, "collect per-experiment cycle-attribution profiles into each report")
	profileOut := flag.String("profile-out", "", "write the suite-aggregate profile as pprof protobuf to this path (implies -profile; read with `go tool pprof`)")
	flame := flag.String("flame", "", "write the suite-aggregate profile as folded flamegraph text to this path (implies -profile)")
	serve := flag.String("serve", "", "serve live telemetry on this address while the suite runs: /metrics (Prometheus), /progress, /profile (pprof), /debug/pprof (host)")
	cpuprofile := flag.String("cpuprofile", "", "write a host CPU profile of this process to the given path")
	memprofile := flag.String("memprofile", "", "write a host heap profile of this process to the given path")
	tracePath := flag.String("trace", "", "record a Perfetto/Chrome trace of the run to this path (forces -parallel 1; load at ui.perfetto.dev)")
	traceClasses := flag.String("trace-classes", "", "comma-separated event classes to trace: inst,squash,forward,predict,cache,probe,kernel,fault,pmc (default: all)")
	validateTrace := flag.String("validate-trace", "", "validate a trace file written by -trace: JSON with at least one complete event")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	submit := flag.String("submit", "", "submit the run as a job to a zenspecd service at this base URL (e.g. http://127.0.0.1:8787) instead of running locally")
	split := flag.Int("split", 0, "with -submit: cut each experiment's trial loop into this many range shards so multiple workers can drain one job (report bytes are identical at any split)")
	priority := flag.Int("priority", 0, "job priority when submitting with -submit (higher runs first)")
	deadline := flag.Duration("deadline", 0, "per-shard deadline when submitting with -submit (0 = none)")
	retries := flag.Int("retries", 0, "per-shard retry budget after deadline overruns when submitting with -submit")
	flag.Parse()

	if *list {
		for _, e := range zenspec.Experiments() {
			fmt.Printf("%-20s [%s] %s\n", e.ID, strings.Join(e.Tags, ","), e.Title)
		}
		return 0
	}

	if *validate != "" {
		return validateFile(*validate)
	}
	if *validateTrace != "" {
		return validateTraceFile(*validateTrace)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	plan, err := zenspec.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	if *profileOut != "" || *flame != "" {
		*profile = true
	}
	cfg := zenspec.Config{Seed: *seed, Parallelism: *parallel, Faults: plan, Metrics: *metrics, Profile: *profile}
	if *serve != "" {
		// Live telemetry: a session-wide metrics registry and profiler feed
		// the endpoint while the suite runs (both fold commutatively, so they
		// do not perturb determinism), and the harness progress callback
		// drives the gauges.
		tel := zenspec.NewTelemetry()
		liveMetrics := zenspec.NewMetricsObserver()
		liveProfile := zenspec.NewProfiler()
		tel.SetMetrics(liveMetrics)
		tel.SetProfile(liveProfile)
		cfg.Observer = zenspec.Observers(cfg.Observer, liveMetrics, liveProfile)
		cfg.Progress = tel.Progress
		addr, err := tel.Serve(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "experiments: telemetry on http://%s (/metrics /progress /profile /debug/pprof)\n", addr)
	}
	var rec *zenspec.TraceRecorder
	if *tracePath != "" {
		classes, err := parseClasses(*traceClasses)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		// One recorder across all trials: serialize them so the event stream
		// interleaves deterministically in trial order.
		rec = zenspec.NewTraceRecorder()
		cfg.Observer = rec
		cfg.ObserverClasses = classes
		cfg.Parallelism = 1
	}
	var ids []string
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}

	if *submit != "" {
		return submitJob(*submit, service.JobSpec{
			Seed: *seed, Quick: *quick, Only: ids, Faults: *faults,
			Metrics: *metrics, Profile: *profile, Split: *split,
			Priority: *priority, Deadline: *deadline, Retries: *retries,
		}, *stable, *jsonOut)
	}

	if *benchJSON != "" {
		bench, err := zenspec.BenchExperiments(cfg, *quick, ids)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		b, err := bench.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		if err := os.WriteFile(*benchJSON, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		fmt.Printf("bench: %d experiments, %d cores, %d workers: serial %.2fs, parallel %.2fs, speedup %.2fx, deterministic %v -> %s\n",
			len(bench.Experiments), bench.Cores, bench.Workers,
			bench.TotalSerialMS/1000, bench.TotalParallelMS/1000, bench.Speedup,
			bench.Deterministic, *benchJSON)
		if !bench.Deterministic {
			fmt.Fprintln(os.Stderr, "experiments: serial and parallel runs disagree")
			return 1
		}
		return 0
	}

	// Trap SIGINT/SIGTERM: an interrupted suite still writes a partial report
	// assembled from whatever experiments completed (the rest are marked
	// skipped), so a long run cut short is never a total loss.
	var (
		mu        sync.Mutex
		collected = make(map[string]zenspec.ExperimentReport)
	)
	prevCompleted := cfg.Completed
	cfg.Completed = func(r zenspec.ExperimentReport) {
		mu.Lock()
		collected[r.ID] = r
		mu.Unlock()
		if prevCompleted != nil {
			prevCompleted(r)
		}
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	type result struct {
		suite zenspec.ExperimentSuite
		err   error
	}
	done := make(chan result, 1)
	go func() {
		s, err := zenspec.RunExperiments(cfg, *quick, ids)
		done <- result{s, err}
	}()
	var suite zenspec.ExperimentSuite
	select {
	case sig := <-sigs:
		mu.Lock()
		partial := make(map[string]zenspec.ExperimentReport, len(collected))
		for id, r := range collected {
			partial[id] = r
		}
		mu.Unlock()
		suite, err = zenspec.AssembleExperiments(cfg, *quick, ids, partial)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "experiments: interrupted by %v after %d/%d experiments; emitting partial report\n",
			sig, len(partial), len(suite.Experiments))
		emit(suite, *stable, *jsonOut)
		return 1
	case r := <-done:
		suite, err = r.suite, r.err
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	if rec != nil {
		b, err := rec.Perfetto()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		if err := os.WriteFile(*tracePath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %d trace events to %s (load at https://ui.perfetto.dev)\n",
			rec.Len(), *tracePath)
	}
	if *profileOut != "" || *flame != "" {
		agg := suite.Profile()
		if agg == nil {
			fmt.Fprintln(os.Stderr, "experiments: no profile collected")
			return 2
		}
		if *profileOut != "" {
			f, err := os.Create(*profileOut)
			if err == nil {
				err = agg.WritePprof(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote profile of %d sites to %s (go tool pprof %s)\n",
				len(agg.Samples), *profileOut, *profileOut)
		}
		if *flame != "" {
			f, err := os.Create(*flame)
			if err == nil {
				err = agg.WriteFlame(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote folded flamegraph to %s\n", *flame)
		}
	}
	if code := emit(suite, *stable, *jsonOut); code != 0 {
		return code
	}
	if !suite.AllPass() {
		fmt.Fprintf(os.Stderr, "experiments: outside paper band: %s\n", strings.Join(suite.Failed(), ", "))
		return 1
	}
	return 0
}

// emit renders a suite report to stdout in the selected format and returns a
// non-zero exit code only on render failure (band verdicts are the caller's).
func emit(suite zenspec.ExperimentSuite, stable, jsonOut bool) int {
	switch {
	case stable:
		b, err := suite.StableJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		fmt.Println(string(b))
	case jsonOut:
		b, err := suite.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		fmt.Println(string(b))
	default:
		fmt.Print(suite.Text())
	}
	return 0
}

// submitJob runs the suite remotely: it submits the spec to a zenspecd
// service, waits for the job (SIGINT/SIGTERM abandon the wait but leave the
// job running server-side — it is journaled and survives both of us), then
// fetches and renders the merged report with the same formatting and exit
// semantics as a local run.
func submitJob(base string, spec service.JobSpec, stable, jsonOut bool) int {
	c := &service.Client{Base: strings.TrimRight(base, "/")}
	id, err := c.Submit(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "experiments: submitted %s to %s\n", id, c.Base)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if _, err := c.Wait(ctx, id, 200*time.Millisecond); err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "experiments: interrupted; job %s keeps running on the service (fetch later with GET %s/v1/jobs/%s/report)\n",
				id, c.Base, id)
			return 1
		}
		// A failed job is a job verdict, not a transport problem: exit 1 like a
		// local run that missed its band, not 2.
		if errors.Is(err, service.ErrJobFailed) {
			fmt.Fprintf(os.Stderr, "experiments: job %s: %v\n", id, err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	suite, err := c.Report(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	if code := emit(suite, stable, jsonOut); code != 0 {
		return code
	}
	if !suite.AllPass() {
		fmt.Fprintf(os.Stderr, "experiments: outside paper band: %s\n", strings.Join(suite.Failed(), ", "))
		return 1
	}
	return 0
}

// validateFile re-checks a suite report written by -json: the file must be
// valid JSON of the suite shape, every metric's stored pass flag must match
// its own band, every experiment's verdict must match its metrics, and the
// whole suite must pass. Returns the process exit code.
func validateFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		return 2
	}
	var suite zenspec.ExperimentSuite
	if err := json.Unmarshal(data, &suite); err != nil {
		fmt.Fprintln(os.Stderr, "validate: invalid JSON:", err)
		return 2
	}
	if len(suite.Experiments) == 0 {
		fmt.Fprintln(os.Stderr, "validate: no experiments in report")
		return 2
	}
	bad := 0
	for _, exp := range suite.Experiments {
		pass := true
		for _, m := range exp.Metrics {
			inBand := m.Value >= m.Min && m.Value <= m.Max
			if m.Pass != inBand {
				fmt.Fprintf(os.Stderr, "validate: %s/%s: stored pass=%v but value %g vs band [%g, %g]\n",
					exp.ID, m.Name, m.Pass, m.Value, m.Min, m.Max)
				bad++
			}
			pass = pass && inBand
		}
		if exp.Pass != pass {
			fmt.Fprintf(os.Stderr, "validate: %s: stored verdict %v inconsistent with metrics\n", exp.ID, exp.Pass)
			bad++
		}
		if !pass {
			fmt.Fprintf(os.Stderr, "validate: %s outside paper band\n", exp.ID)
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	fmt.Printf("validate: %d experiments, all in paper band (seed %d, quick %v)\n",
		len(suite.Experiments), suite.Seed, suite.Quick)
	return 0
}

// parseClasses resolves the -trace-classes spec; empty means all classes.
func parseClasses(spec string) ([]zenspec.EventClass, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	byName := map[string]zenspec.EventClass{
		"inst": zenspec.ClassInst, "squash": zenspec.ClassSquash,
		"forward": zenspec.ClassForward, "predict": zenspec.ClassPredict,
		"cache": zenspec.ClassCache, "probe": zenspec.ClassProbe,
		"kernel": zenspec.ClassKernel, "fault": zenspec.ClassFault,
		"pmc": zenspec.ClassPMC,
	}
	var out []zenspec.EventClass
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown event class %q", name)
		}
		out = append(out, c)
	}
	return out, nil
}

// validateTraceFile checks a Perfetto trace written by -trace: the file must
// parse as a Chrome trace-event JSON document and contain at least one
// complete ("X") event. Returns the process exit code.
func validateTraceFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate-trace:", err)
		return 2
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintln(os.Stderr, "validate-trace: invalid JSON:", err)
		return 2
	}
	complete := 0
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" {
			complete++
		}
	}
	if complete == 0 {
		fmt.Fprintf(os.Stderr, "validate-trace: %d events but no complete (\"X\") events\n", len(doc.TraceEvents))
		return 1
	}
	fmt.Printf("validate-trace: %d events, %d complete\n", len(doc.TraceEvents), complete)
	return 0
}
