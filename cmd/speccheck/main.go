// Command speccheck statically audits machine code (raw binary or assembly
// source) for speculative-leak gadgets with the CFG-based always-mispredict
// analyzer: Spectre-STL (store-bypass) and Spectre-CTL (mispredicted-branch)
// candidates, each with an instruction-offset witness chain. With -validate
// every finding is replayed through the pipeline simulator with mistrained
// predictors and classified as dynamically confirmed or a static
// over-approximation.
//
// Usage:
//
//	speccheck -bin prog.bin [-window 48] [-stride 1]
//	speccheck -asm prog.s -validate
//	cat prog.s | speccheck -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"zenspec"
	"zenspec/internal/speccheck"
)

func main() {
	binFile := flag.String("bin", "", "raw machine-code file to scan")
	asmFile := flag.String("asm", "", "assembly source to assemble and scan (default: stdin)")
	base := flag.Uint64("base", 0x400000, "virtual address the code is linked/mapped at")
	window := flag.Int("window", speccheck.DefaultWindow, "transient-window reach in instructions")
	stride := flag.Int("stride", 0, "scan stride in bytes; 1 slides over every byte offset (default: instruction size)")
	stl := flag.Bool("stl", false, "report only Spectre-STL (store-bypass) findings")
	ctl := flag.Bool("ctl", false, "report only Spectre-CTL (branch) findings")
	validate := flag.Bool("validate", false, "replay findings through the pipeline simulator and classify them")
	jsonOut := flag.Bool("json", false, "emit JSON instead of text")
	dumpCFG := flag.Bool("cfg", false, "dump the reconstructed control-flow graph and exit")
	flag.Parse()

	code := readCode(*binFile, *asmFile, *base)

	if *dumpCFG {
		fmt.Print(speccheck.BuildCFG(code, *base))
		return
	}

	opts := speccheck.Options{
		Window: *window,
		Base:   *base,
		Stride: *stride,
		STL:    *stl,
		CTL:    *ctl,
	}
	findings := speccheck.Analyze(code, opts)

	if *validate {
		report := speccheck.ValidateAll(code, findings, speccheck.ValidateOptions{Base: *base})
		if *jsonOut {
			emitJSON(report)
		} else {
			fmt.Print(report)
		}
		if report.Confirmed() > 0 {
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		if findings == nil {
			findings = []speccheck.Finding{}
		}
		emitJSON(findings)
	} else if len(findings) == 0 {
		fmt.Println("no speculative-leak candidates")
	} else {
		fmt.Printf("%d finding(s):\n", len(findings))
		for _, f := range findings {
			fmt.Println(" ", f)
		}
		fmt.Println("\nEach finding is a speculation source (a bypassable store or a")
		fmt.Println("mispredictable branch), the dependent-load chain a transient window")
		fmt.Println("can execute, and the transmitter that encodes the value into the")
		fmt.Println("cache. Run with -validate to replay them through the simulator.")
	}
	if len(findings) > 0 {
		os.Exit(1) // nonzero exit for CI-style gating
	}
}

func readCode(binFile, asmFile string, base uint64) []byte {
	if binFile != "" {
		b, err := os.ReadFile(binFile)
		if err != nil {
			log.Fatalf("speccheck: %v", err)
		}
		return b
	}
	var src []byte
	var err error
	if asmFile != "" {
		src, err = os.ReadFile(asmFile)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		log.Fatalf("speccheck: %v", err)
	}
	code, err := zenspec.Assemble(string(src), base)
	if err != nil {
		log.Fatalf("speccheck: %v", err)
	}
	return code
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatalf("speccheck: %v", err)
	}
}
