// Command speccheck statically audits machine code (raw binary or assembly
// source) for speculative-leak gadgets with the CFG-based always-mispredict
// analyzer: Spectre-STL (store-bypass) and Spectre-CTL (mispredicted-branch)
// candidates, each with an instruction-offset witness chain. With -validate
// every finding is replayed through the pipeline simulator with mistrained
// predictors and classified as dynamically confirmed or a static
// over-approximation. With -cache the analysis runs through a persistent
// incremental cache keyed by content-hashed per-source dependency closures,
// so re-scans after local edits only recompute what the edit can affect.
//
// Usage:
//
//	speccheck -bin prog.bin [-window 48] [-stride 1]
//	speccheck -asm prog.s -validate
//	speccheck -bin prog.bin -cache .speccheck-cache
//	cat prog.s | speccheck -json
//	speccheck -bench BENCH_speccheck.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"reflect"
	"time"

	"zenspec"
	"zenspec/internal/isa"
	"zenspec/internal/speccheck"
)

func main() {
	binFile := flag.String("bin", "", "raw machine-code file to scan")
	asmFile := flag.String("asm", "", "assembly source to assemble and scan (default: stdin)")
	base := flag.Uint64("base", 0x400000, "virtual address the code is linked/mapped at")
	window := flag.Int("window", speccheck.DefaultWindow, "transient-window reach in instructions")
	stride := flag.Int("stride", 0, "scan stride in bytes; 1 slides over every byte offset (default: instruction size)")
	stl := flag.Bool("stl", false, "report only Spectre-STL (store-bypass) findings")
	ctl := flag.Bool("ctl", false, "report only Spectre-CTL (branch) findings")
	validate := flag.Bool("validate", false, "replay findings through the pipeline simulator and classify them")
	jsonOut := flag.Bool("json", false, "emit JSON instead of text")
	dumpCFG := flag.Bool("cfg", false, "dump the reconstructed control-flow graph and exit")
	cacheDir := flag.String("cache", "", "directory for the persistent incremental analysis cache")
	bench := flag.String("bench", "", "run the cold/warm incremental-scan benchmark, write JSON to this file, and exit")
	flag.Parse()

	if *bench != "" {
		runBench(*bench, *cacheDir)
		return
	}

	code := readCode(*binFile, *asmFile, *base)

	if *dumpCFG {
		fmt.Print(speccheck.BuildCFG(code, *base))
		return
	}

	opts := speccheck.Options{
		Window: *window,
		Base:   *base,
		Stride: *stride,
		STL:    *stl,
		CTL:    *ctl,
	}
	res := analyze(code, opts, *cacheDir)
	findings := res.Findings

	if *validate {
		report := speccheck.ValidateAll(code, findings, speccheck.ValidateOptions{Base: *base})
		if *jsonOut {
			emitJSON(report)
		} else {
			fmt.Print(report)
		}
		if report.Confirmed() > 0 {
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		if res.Findings == nil {
			res.Findings = []speccheck.Finding{}
		}
		emitJSON(res)
	} else {
		if len(findings) == 0 {
			fmt.Println("no speculative-leak candidates")
		} else {
			fmt.Printf("%d finding(s):\n", len(findings))
			for _, f := range findings {
				fmt.Println(" ", f)
			}
			fmt.Println("\nEach finding is a speculation source (a bypassable store or a")
			fmt.Println("mispredictable branch), the dependent-load chain a transient window")
			fmt.Println("can execute, and the transmitter that encodes the value into the")
			fmt.Println("cache. Run with -validate to replay them through the simulator.")
		}
		if res.Truncated > 0 {
			fmt.Printf("warning: %d source(s) hit the state budget; findings may be incomplete (raise MaxStates)\n", res.Truncated)
		}
	}
	if len(findings) > 0 {
		os.Exit(1) // nonzero exit for CI-style gating
	}
}

// analyze runs the whole-program engine, or the incremental cache when a
// cache directory is configured.
func analyze(code []byte, opts speccheck.Options, cacheDir string) speccheck.Result {
	if cacheDir == "" {
		return speccheck.AnalyzeAll(code, opts)
	}
	c, err := speccheck.OpenCache(cacheDir)
	if err != nil {
		log.Fatalf("speccheck: %v", err)
	}
	return c.Analyze(code, opts)
}

// benchReport is the JSON shape of the -bench output (BENCH_speccheck.json).
type benchReport struct {
	Insts    int `json:"insts"`
	Seed     int `json:"seed"`
	Sources  int `json:"sources"`
	Findings int `json:"findings"`
	// Identical confirms the incremental engine reproduced the whole-program
	// engine's result exactly (the benchmark is void otherwise).
	Identical bool    `json:"identical"`
	BaseMS    float64 `json:"baseline_ms"`
	ColdMS    float64 `json:"cold_ms"`
	WarmMS    float64 `json:"warm_ms"`
	// WarmSpeedup is ColdMS / WarmMS, the headline incremental win.
	WarmSpeedup float64 `json:"warm_speedup"`
	// Edit rescan: one instruction NOPed out, then a full warm re-scan.
	EditMS         float64 `json:"edit_ms"`
	EditRecomputed int     `json:"edit_recomputed_sources"`
	WarmStates     int     `json:"warm_states_explored"`
}

// runBench measures the incremental cache on a generated large program: a
// whole-program baseline, a cold cache scan, a fully warm re-scan, and a
// re-scan after a one-instruction edit.
func runBench(outFile, cacheDir string) {
	const (
		seed  = 42
		insts = 100_000
	)
	code := speccheck.GenProgram(seed, insts)
	opts := speccheck.Options{}

	t0 := time.Now()
	want := speccheck.AnalyzeAll(code, opts)
	baseMS := msSince(t0)

	c, err := openBenchCache(cacheDir)
	if err != nil {
		log.Fatalf("speccheck: %v", err)
	}
	t1 := time.Now()
	cold := c.Analyze(code, opts)
	coldMS := msSince(t1)
	afterCold := c.Stats()

	t2 := time.Now()
	warm := c.Analyze(code, opts)
	warmMS := msSince(t2)
	afterWarm := c.Stats()

	// NOP out one mid-program instruction and re-scan: only sources whose
	// dependency closure covers the slot recompute.
	edited := append([]byte(nil), code...)
	isa.Inst{Op: isa.NOP}.Encode(edited[(insts/2)*isa.InstBytes:])
	t3 := time.Now()
	c.Analyze(edited, opts)
	editMS := msSince(t3)
	afterEdit := c.Stats()

	rep := benchReport{
		Insts:          insts,
		Seed:           seed,
		Sources:        afterCold.Sources,
		Findings:       len(want.Findings),
		Identical:      reflect.DeepEqual(want, cold) && reflect.DeepEqual(want, warm),
		BaseMS:         baseMS,
		ColdMS:         coldMS,
		WarmMS:         warmMS,
		WarmSpeedup:    coldMS / warmMS,
		EditMS:         editMS,
		EditRecomputed: afterEdit.SourceMisses - afterWarm.SourceMisses,
		WarmStates:     afterWarm.StatesExplored - afterCold.StatesExplored,
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("speccheck: %v", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(outFile, raw, 0o644); err != nil {
		log.Fatalf("speccheck: %v", err)
	}
	fmt.Printf("wrote %s: cold %.1fms, warm %.1fms (%.1fx), edit rescan %.1fms (%d sources recomputed), identical=%v\n",
		outFile, rep.ColdMS, rep.WarmMS, rep.WarmSpeedup, rep.EditMS, rep.EditRecomputed, rep.Identical)
}

// openBenchCache keeps the benchmark in memory unless a directory was asked
// for explicitly (disk timings measure the filesystem, not the analyzer).
func openBenchCache(dir string) (*speccheck.Cache, error) {
	if dir == "" {
		return speccheck.NewCache(), nil
	}
	return speccheck.OpenCache(dir)
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000.0
}

func readCode(binFile, asmFile string, base uint64) []byte {
	if binFile != "" {
		b, err := os.ReadFile(binFile)
		if err != nil {
			log.Fatalf("speccheck: %v", err)
		}
		return b
	}
	var src []byte
	var err error
	if asmFile != "" {
		src, err = os.ReadFile(asmFile)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		log.Fatalf("speccheck: %v", err)
	}
	code, err := zenspec.Assemble(string(src), base)
	if err != nil {
		log.Fatalf("speccheck: %v", err)
	}
	return code
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatalf("speccheck: %v", err)
	}
}
