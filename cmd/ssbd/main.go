// Command ssbd regenerates Fig 12: the performance cost of Speculative
// Store Bypass Disable across the SPECrate-like kernels, with ASCII bars.
package main

import (
	"flag"
	"fmt"
	"strings"

	"zenspec"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	res := zenspec.SSBDOverhead(zenspec.Config{Seed: *seed})
	fmt.Print(res)
	fmt.Println()
	fmt.Println("overhead (each # = 1%):")
	for _, row := range res.Rows {
		bars := int(row.OverheadFrac*100 + 0.5)
		if bars < 0 {
			bars = 0
		}
		fmt.Printf("%-12s %5.1f%% %s\n", row.Name, 100*row.OverheadFrac, strings.Repeat("#", bars))
	}
}
