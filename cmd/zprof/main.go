// Command zprof profiles a single assembly program on the simulated machine:
// it runs the program under the cycle-attribution profiler and prints the
// top-N program counters with their top-down stall breakdown (issue wait,
// execute, SQ-stall, rollback replay, retire wait) and disassembly context.
// The profile can also be exported as pprof protobuf (`go tool pprof`) or
// folded flamegraph text.
//
// Usage:
//
//	zprof -file gadget.s -regs "rdi=0x10000,rsi=0x10000" -runs 3
//	zprof -file gadget.s -pprof out.pb.gz && go tool pprof -top out.pb.gz
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"zenspec"
)

const entryVA = 0x400000

func main() {
	file := flag.String("file", "", "assembly source (default: stdin)")
	regSpec := flag.String("regs", "", "initial registers, e.g. \"rdi=0x10000,rsi=42\"")
	dataSpec := flag.String("data", "0x10000:65536", "data mapping addr:bytes, comma separated")
	seed := flag.Int64("seed", 1, "simulation seed")
	ssbd := flag.Bool("ssbd", false, "enable SSBD")
	runs := flag.Int("runs", 1, "number of runs to accumulate (training effects show up across runs)")
	top := flag.Int("top", 20, "rows in the breakdown table")
	pprofOut := flag.String("pprof", "", "write the profile as pprof protobuf to this path")
	flameOut := flag.String("flame", "", "write the profile as folded flamegraph text to this path")
	flag.Parse()

	var src []byte
	var err error
	if *file == "" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(*file)
	}
	if err != nil {
		log.Fatalf("zprof: %v", err)
	}
	code, err := zenspec.Assemble(string(src), entryVA)
	if err != nil {
		log.Fatalf("zprof: %v", err)
	}

	// Disassembly context for the breakdown table: PC → source text.
	disasm := map[uint64]string{}
	for i, line := range zenspec.Disassemble(code, entryVA) {
		disasm[entryVA+uint64(i*8)] = strings.TrimSpace(line)
	}

	m := zenspec.NewMachine(zenspec.Config{Seed: *seed, SSBD: *ssbd})
	p := m.NewProcess("zprof", zenspec.DomainUser)
	p.MapCode(entryVA, code)
	for _, spec := range strings.Split(*dataSpec, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.SplitN(spec, ":", 2)
		addr, err := strconv.ParseUint(parts[0], 0, 64)
		if err != nil {
			log.Fatalf("zprof: bad data address %q", parts[0])
		}
		size := uint64(4096)
		if len(parts) == 2 {
			size, err = strconv.ParseUint(parts[1], 0, 64)
			if err != nil {
				log.Fatalf("zprof: bad data size %q", parts[1])
			}
		}
		p.MapData(addr, size)
	}
	initRegs, err := parseRegs(*regSpec)
	if err != nil {
		log.Fatalf("zprof: %v", err)
	}

	prof := zenspec.NewProfiler()
	zenspec.Observe(m, prof, zenspec.ObserverOptions{Classes: zenspec.ProfilerClasses()})

	var cycles, insts uint64
	for r := 0; r < *runs; r++ {
		copy(p.Regs[:], initRegs[:])
		res := m.Run(p, entryVA, 0)
		if res.Stop.String() == "fault" {
			log.Fatalf("zprof: run %d faulted: %v at %#x (pc %#x)", r, res.Fault, res.FaultVA, res.FaultPC)
		}
		cycles += uint64(res.Cycles)
		insts += res.Insts
	}

	snap := prof.Snapshot()
	fmt.Printf("zprof: %d run(s), %d instructions, %d cycles; %d sites, %d attributed cycles\n\n",
		*runs, insts, cycles, len(snap.Samples), snap.TotalCycles)
	fmt.Printf("%10s %6s %8s %8s %8s %8s %8s  %-10s %s\n",
		"cycles", "count", "issue", "exec", "sq_stall", "replay", "retire", "pc", "instruction")
	for _, s := range snap.Top(*top) {
		ctx := disasm[s.PC]
		if ctx == "" {
			ctx = strings.ToLower(s.Op)
		}
		fmt.Printf("%10d %6d %8d %8d %8d %8d %8d  %#-10x %s\n",
			s.Cycles(), s.Count, s.Issue, s.Execute, s.SQStall, s.Replay, s.Retire, s.PC, ctx)
	}
	if len(snap.Squashes) > 0 {
		fmt.Println("\nsquashes:")
		for _, q := range snap.Squashes {
			ctx := disasm[q.PC]
			fmt.Printf("%10d× %-8s window=%d penalty=%d insts=%d  %#x  %s\n",
				q.Count, q.Kind, q.Window, q.Penalty, q.Insts, q.PC, ctx)
		}
	}

	if *pprofOut != "" {
		if err := writeTo(*pprofOut, snap.WritePprof); err != nil {
			log.Fatalf("zprof: %v", err)
		}
		fmt.Printf("\nwrote pprof profile to %s (go tool pprof -top %s)\n", *pprofOut, *pprofOut)
	}
	if *flameOut != "" {
		if err := writeTo(*flameOut, snap.WriteFlame); err != nil {
			log.Fatalf("zprof: %v", err)
		}
		fmt.Printf("wrote folded flamegraph to %s\n", *flameOut)
	}
}

func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseRegs(spec string) ([16]uint64, error) {
	var out [16]uint64
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	idx := map[string]int{"rax": 0, "rcx": 1, "rdx": 2, "rbx": 3, "rsp": 4,
		"rbp": 5, "rsi": 6, "rdi": 7, "r8": 8, "r9": 9, "r10": 10, "r11": 11,
		"r12": 12, "r13": 13, "r14": 14, "r15": 15}
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return out, fmt.Errorf("bad register assignment %q", kv)
		}
		i, ok := idx[strings.ToLower(parts[0])]
		if !ok {
			return out, fmt.Errorf("unknown register %q", parts[0])
		}
		v, err := strconv.ParseUint(parts[1], 0, 64)
		if err != nil {
			return out, fmt.Errorf("bad value %q", parts[1])
		}
		out[i] = v
	}
	return out, nil
}
