// Command gadgetscan statically audits machine code (raw binary or
// assembly source) for the speculative store-bypass gadget shape the
// paper's attacks need — Listings 2 and 3's store → load → dependent load →
// transmitter chain.
//
// Usage:
//
//	gadgetscan -bin prog.bin [-window 48]
//	gadgetscan -asm prog.s
//	cat prog.s | gadgetscan
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"zenspec"
)

func main() {
	binFile := flag.String("bin", "", "raw machine-code file to scan")
	asmFile := flag.String("asm", "", "assembly source to assemble and scan (default: stdin)")
	flag.Parse()

	var code []byte
	switch {
	case *binFile != "":
		b, err := os.ReadFile(*binFile)
		if err != nil {
			log.Fatalf("gadgetscan: %v", err)
		}
		code = b
	default:
		var src []byte
		var err error
		if *asmFile != "" {
			src, err = os.ReadFile(*asmFile)
		} else {
			src, err = io.ReadAll(os.Stdin)
		}
		if err != nil {
			log.Fatalf("gadgetscan: %v", err)
		}
		code, err = zenspec.Assemble(string(src), 0)
		if err != nil {
			log.Fatalf("gadgetscan: %v", err)
		}
	}

	cands := zenspec.ScanGadgets(code)
	if len(cands) == 0 {
		fmt.Println("no speculative store-bypass gadget candidates")
		return
	}
	fmt.Printf("%d candidate(s):\n", len(cands))
	for _, c := range cands {
		fmt.Println(" ", c)
	}
	fmt.Println("\nEach candidate is a store whose address may resolve late, a load")
	fmt.Println("that can bypass it under an SSBP misprediction, and a dependent")
	fmt.Println("chain that transmits the transient value — review whether the store")
	fmt.Println("address can be attacker-delayed and the first load's stale value")
	fmt.Println("attacker-planted (Listings 2 and 3 of the paper).")
	os.Exit(1) // nonzero exit for CI-style gating
}
