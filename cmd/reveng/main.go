// Command reveng regenerates the reverse-engineering results of Sections
// III and IV: Fig 2 (execution types), TABLE I (state-machine validation),
// TABLE II (counter organization), Fig 4 (hash characteristics), Fig 5
// (eviction curves), Fig 7 (collision finding) and the Section IV-A
// isolation matrix.
package main

import (
	"flag"
	"fmt"

	"zenspec"
)

func main() {
	fig2 := flag.Bool("fig2", false, "Fig 2: execution-type timing and PMC analysis")
	table1 := flag.Bool("table1", false, "TABLE I: state machine validation on random sequences")
	table2 := flag.Bool("table2", false, "TABLE II: counter organization")
	fig4 := flag.Bool("fig4", false, "Fig 4: colliding-pair hash characteristics")
	fig5 := flag.Bool("fig5", false, "Fig 5: eviction rate vs set size")
	fig7 := flag.Bool("fig7", false, "Fig 7: collision finding")
	isolation := flag.Bool("isolation", false, "Section IV-A: cross-domain isolation matrix")
	smt := flag.Bool("smt", false, "Section III-D3: SMT vs single-thread eviction thresholds")
	addrleak := flag.Bool("addrleak", false, "Section V-D: physical-address relation leak")
	infer := flag.Bool("infer", false, "recover the design constants from timing alone")
	all := flag.Bool("all", false, "run everything")
	seed := flag.Int64("seed", 42, "simulation seed")
	trials := flag.Int("trials", 20, "trials for statistical experiments")
	flag.Parse()

	cfg := zenspec.Config{Seed: *seed}
	any := false
	run := func(enabled bool, f func()) {
		if enabled || *all {
			any = true
			f()
			fmt.Println()
		}
	}
	run(*fig2, func() { fmt.Print(zenspec.Fig2(cfg)) })
	run(*table1, func() { fmt.Println(zenspec.Table1(cfg, 50, 64, *seed)) })
	run(*table2, func() { fmt.Print(zenspec.Table2(cfg)) })
	run(*fig4, func() { fmt.Println(zenspec.Fig4(cfg, 8)) })
	run(*fig5, func() {
		fmt.Print(zenspec.Fig5(cfg, []int{4, 8, 10, 11, 12, 16, 24, 32, 48}, *trials))
	})
	run(*fig7, func() { fmt.Print(zenspec.Fig7(cfg, 24, 6)) })
	run(*isolation, func() { fmt.Print(zenspec.Isolation(cfg)) })
	run(*smt, func() { fmt.Println(zenspec.SMTMode(cfg)) })
	run(*addrleak, func() { fmt.Println(zenspec.AddrLeak(cfg, 5)) })
	run(*infer, func() { fmt.Print(zenspec.Infer(cfg)) })
	run(*table1, func() {
		fmt.Println("\nTABLE I as implemented (generated from the state machine):")
		fmt.Print(zenspec.TransitionTable())
	})
	if !any {
		flag.Usage()
	}
}
