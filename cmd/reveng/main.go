// Command reveng regenerates the reverse-engineering results of Sections
// III–V from the harness registry: every experiment tagged "revng" — Fig 2
// (execution types), TABLE I (state-machine validation), TABLE II (counter
// organization), Fig 4 (hash characteristics), Fig 5 (eviction curves),
// Fig 7 (collision finding), the Section IV-A isolation matrix, the SMT
// probe, the address leak, the inferred design constants, and the ablations.
// Positional arguments select individual experiments by ID.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zenspec"
)

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	quick := flag.Bool("quick", false, "reduced trial counts")
	parallel := flag.Int("parallel", 0, "trial-runner workers; 0 means GOMAXPROCS (results are identical at any value)")
	list := flag.Bool("list", false, "list the reverse-engineering experiments and exit")
	table := flag.Bool("transition-table", false, "also print TABLE I as implemented (generated from the state machine)")
	flag.Parse()

	if *list {
		for _, e := range zenspec.Experiments() {
			if e.HasTag("revng") {
				fmt.Printf("%-16s %s\n", e.ID, e.Title)
			}
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range zenspec.Experiments() {
			if e.HasTag("revng") {
				ids = append(ids, e.ID)
			}
		}
	}

	cfg := zenspec.Config{Seed: *seed, Parallelism: *parallel}
	suite, err := zenspec.RunExperiments(cfg, *quick, ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reveng:", err)
		os.Exit(2)
	}
	fmt.Print(suite.Text())
	if *table {
		fmt.Println("\nTABLE I as implemented (generated from the state machine):")
		fmt.Print(zenspec.TransitionTable())
	}
	if !suite.AllPass() {
		fmt.Fprintf(os.Stderr, "reveng: outside paper band: %s\n", strings.Join(suite.Failed(), ", "))
		os.Exit(1)
	}
}
