// Command stldlab runs the paper's φ notation interactively: it executes a
// sequence of aliasing (a) and non-aliasing (n) store-load pairs on the
// simulated machine and prints each execution's cycles, timing class and
// ground-truth type, plus the final predictor counters.
//
// Usage:
//
//	stldlab -seq "7n 1a 7n 1a 7n 1a" [-seed 42] [-ssbd]
package main

import (
	"flag"
	"fmt"
	"log"

	"zenspec"
)

func main() {
	seq := flag.String("seq", "7n 1a 7n 1a 7n 1a 32n", "stld sequence, e.g. \"7n 1a\"")
	seed := flag.Int64("seed", 42, "simulation seed")
	ssbd := flag.Bool("ssbd", false, "enable Speculative Store Bypass Disable")
	flag.Parse()

	inputs, err := zenspec.ParseSeq(*seq)
	if err != nil {
		log.Fatalf("stldlab: %v", err)
	}
	l := zenspec.NewLab(zenspec.Config{Seed: *seed, SSBD: *ssbd})
	s := l.PlaceStld()
	fmt.Printf("stld placed: store IPA %#x (hash %#x), load IPA %#x (hash %#x)\n",
		s.StoreIPA, s.StoreHash, s.LoadIPA, s.LoadHash)
	fmt.Printf("%-5s %-6s %8s %-9s %-5s\n", "step", "input", "cycles", "class", "type")
	for i, aliasing := range inputs {
		in := "n"
		if aliasing {
			in = "a"
		}
		ob := s.Run(aliasing)
		fmt.Printf("%-5d %-6s %8d %-9s %-5s\n", i, in, ob.Cycles, ob.Class, ob.TrueType)
	}
	c := s.Counters()
	fmt.Printf("final counters: C0=%d C1=%d C2=%d C3=%d C4=%d (state %s)\n",
		c.C0, c.C1, c.C2, c.C3, c.C4, c.State())
}
