// Command zenspec-worker is a remote pull worker for zenspecd: point it at a
// daemon URL and it leases shards — whole experiments or trial ranges of a
// split job — over the /v1 job API, runs them against the full experiment
// registry, heartbeats while running, and pushes the partial reports back.
// Any number of workers can drain the same daemon; determinism guarantees
// the merged report is byte-identical however the shards land.
//
// The worker is built to be left running: daemon outages and restarts are
// ridden out with deterministic backoff, and a worker killed mid-shard
// simply stops heartbeating, so the daemon re-leases its shard elsewhere
// after the lease TTL with no effect on the job's final bytes.
//
// Lease events are logged to stderr with structured job/shard/lease/
// attempt/trace fields; -log-format=json makes every line machine-parseable
// and -log-level tunes verbosity.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zenspec"
	"zenspec/internal/svcobs"
)

func main() { os.Exit(run()) }

func run() int {
	url := flag.String("url", "http://127.0.0.1:8787", "base URL of the zenspecd daemon to pull leases from")
	name := flag.String("name", "", "worker name reported to the daemon (defaults to the hostname)")
	parallel := flag.Int("parallel", 1, "per-shard trial-loop parallelism (reports are identical at any value)")
	poll := flag.Duration("poll", 2*time.Second, "how long each lease request waits server-side for work")
	logFormat := flag.String("log-format", svcobs.FormatText, "log output format: text or json")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	flag.Parse()

	lg, err := svcobs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zenspec-worker:", err)
		return 2
	}

	n := *name
	if n == "" {
		if host, err := os.Hostname(); err == nil {
			n = host
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	lg.Info("pulling leases", "url", *url, "worker", n)
	if err := zenspec.ServeWorker(ctx, *url, zenspec.WorkerOptions{
		Name:        n,
		Parallelism: *parallel,
		Poll:        *poll,
		Logger:      lg,
	}); err != nil && ctx.Err() == nil {
		lg.Error("worker failed", "err", err)
		return 1
	}
	lg.Info("exiting", "worker", n)
	return 0
}
