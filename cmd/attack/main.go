// Command attack runs the Section V exploits: the out-of-place Spectre-STL
// attack, the Spectre-CTL attack (native and browser-timer variants), and
// the SSBP process-fingerprinting experiment of Fig 11.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"zenspec"
)

func main() {
	stl := flag.Bool("stl", false, "run out-of-place Spectre-STL (Section V-B)")
	inplace := flag.Bool("inplace", false, "run the in-place Spectre-STL baseline")
	sandboxEsc := flag.Bool("sandbox", false, "run the browser-sandbox escape (Section V-C2 model)")
	ctl := flag.Bool("ctl", false, "run Spectre-CTL (Section V-C1)")
	browser := flag.Bool("browser", false, "run Spectre-CTL with the browser timer (Section V-C2)")
	fingerprint := flag.Bool("fingerprint", false, "run CNN fingerprinting (Fig 11)")
	all := flag.Bool("all", false, "run everything")
	nBytes := flag.Int("bytes", 128, "random secret length for the leak attacks")
	secretStr := flag.String("secret", "", "leak this string instead of random bytes")
	seed := flag.Int64("seed", 5, "simulation seed")
	ssbd := flag.Bool("ssbd", false, "enable SSBD and watch the attacks fail")
	flag.Parse()

	cfg := zenspec.Config{Seed: *seed, SSBD: *ssbd}
	secret := []byte(*secretStr)
	if len(secret) == 0 {
		secret = make([]byte, *nBytes)
		rand.New(rand.NewSource(*seed)).Read(secret)
	}

	any := false
	run := func(enabled bool, f func()) {
		if enabled || *all {
			any = true
			f()
		}
	}
	run(*stl, func() {
		fmt.Println(zenspec.SpectreSTL(cfg, secret, zenspec.STLOptions{}))
	})
	run(*inplace, func() {
		fmt.Println(zenspec.SpectreSTLInPlace(cfg, secret))
	})
	run(*sandboxEsc, func() {
		n := len(secret)
		if n > 8 {
			n = 8 // the in-browser search is expensive; keep the demo short
		}
		res, err := zenspec.SandboxEscape(cfg, secret[:n])
		if err != nil {
			log.Fatalf("sandbox: %v", err)
		}
		fmt.Println(res)
	})
	run(*ctl, func() {
		fmt.Println(zenspec.SpectreCTL(cfg, secret, zenspec.CTLOptions{}))
	})
	run(*browser, func() {
		fmt.Println(zenspec.SpectreCTLBrowser(cfg, secret))
	})
	run(*fingerprint, func() {
		res, err := zenspec.Fingerprint(cfg, zenspec.FingerprintOptions{
			ScanRange: 256, Rounds: 12, TrainSamples: 10, TestSamples: 5, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("fingerprint: %v", err)
		}
		fmt.Print(res)
	})
	if !any {
		flag.Usage()
	}
}
