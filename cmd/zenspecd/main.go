// Command zenspecd is the crash-safe simulation service: a long-lived daemon
// exposing the experiment registry over a versioned HTTP JSON API (/v1).
// Submitted jobs are journaled to a checksummed, segmented write-ahead log
// before they run, cut into shards — one per experiment, or finer trial
// ranges when the job asks for a split — and drained by lease-pull workers:
// the in-process pool, remote zenspec-worker processes, or any mix. Completed
// partial reports persist idempotently, so a daemon killed at any point
// resumes every unfinished job at shard granularity on restart, and the
// resumed (or arbitrarily sharded) job's merged StableJSON report is
// byte-identical to an uninterrupted single-machine run's. SIGINT/SIGTERM
// drain in-flight shards, checkpoint the journal, and exit; kill -9 loses at
// most the shards in flight.
//
// The daemon's whole lifecycle is observable: every job carries a trace ID
// from submit to archive, /v1/jobs/{id}/trace serves the stitched Perfetto
// trace of a run (remote worker spans included), /metrics exposes the
// zenspec_service_* counter and histogram registry, and structured logs go
// to stderr with job/shard/lease/worker/attempt fields (-log-format=json
// for machine-parseable lines).
//
// See the README's "Service" section and EXPERIMENTS.md for the API and a
// kill-and-resume walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"zenspec/internal/harness/suite"
	"zenspec/internal/service"
	"zenspec/internal/svcobs"
)

func main() { os.Exit(run()) }

func run() int {
	dir := flag.String("dir", "zenspecd.state", "durable state directory (the job journal lives here)")
	addr := flag.String("addr", "127.0.0.1:8787", "HTTP listen address (\":0\" picks a free port)")
	workers := flag.Int("workers", -1, "in-process worker pool size; -1 means GOMAXPROCS, 0 means none (queue-only daemon for remote zenspec-worker fleets)")
	parallel := flag.Int("parallel", 1, "per-shard trial-loop parallelism (reports are identical at any value)")
	lease := flag.Duration("lease", 5*time.Second, "shard lease TTL; a worker silent this long is presumed dead and its shard re-queued")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "base deterministic retry backoff after a shard deadline overrun")
	maxBackoff := flag.Duration("max-backoff", 5*time.Second, "retry backoff cap")
	segBytes := flag.Int64("segment-bytes", 4<<20, "journal segment size; full segments seal and compact away at the next checkpoint")
	keepJobs := flag.Int("keep-jobs", 256, "terminal jobs retained before the oldest are archived out of memory and journal; -1 keeps all")
	drain := flag.Duration("drain", 10*time.Minute, "graceful-shutdown budget for in-flight shards before they are cancelled")
	logFormat := flag.String("log-format", svcobs.FormatText, "log output format: text or json")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	noObs := flag.Bool("no-obs", false, "disable tracing and service metrics (logging stays on; reports are byte-identical either way)")
	flag.Parse()

	lg, err := svcobs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zenspecd:", err)
		return 2
	}
	var hub *svcobs.Hub
	if !*noObs {
		hub = svcobs.New(lg)
	}

	w := *workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	kj := *keepJobs
	if kj < 0 {
		kj = -1
	}
	d, err := service.Open(service.Config{
		Dir:          *dir,
		Registry:     suite.Registry(),
		Workers:      w,
		Parallelism:  *parallel,
		Lease:        *lease,
		Backoff:      *backoff,
		MaxBackoff:   *maxBackoff,
		SegmentBytes: *segBytes,
		KeepJobs:     kj,
		Obs:          hub,
	})
	if err != nil {
		lg.Error("open failed", "dir", *dir, "err", err)
		return 2
	}
	resumed := 0
	for _, st := range d.Jobs() {
		if !st.Terminal() {
			resumed++
		}
	}
	if resumed > 0 {
		lg.Info("resuming unfinished jobs from the journal", "jobs", resumed)
	}

	srv := service.NewServer(d)
	bound, err := srv.Serve(*addr)
	if err != nil {
		lg.Error("listen failed", "addr", *addr, "err", err)
		return 2
	}
	// Parsed by tooling (verify.sh) — keep the format stable.
	fmt.Printf("zenspecd: listening on http://%s\n", bound)
	lg.Info("listening", "addr", bound, "workers", w)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()
	lg.Info("draining in-flight shards")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		lg.Error("shutdown failed", "err", err)
		return 1
	}
	lg.Info("journal checkpointed, exiting")
	return 0
}
