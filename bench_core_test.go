package zenspec

// Micro-benchmarks for the per-cycle hot paths: the steady-state pipeline
// step, the observability emit fast path, and a Flush+Reload probe sweep.
// Each reports allocations, and the paired tests pin the zero-allocation
// invariants with testing.AllocsPerRun so a regression fails `go test`
// itself, not just a benchstat comparison. verify.sh runs all three as its
// benchstat smoke.

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/cache"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/obs"
	"zenspec/internal/pipeline"
	"zenspec/internal/pmc"
	"zenspec/internal/predict"
	"zenspec/internal/sidechannel"
)

// stepEnv is a minimal single-core machine running a counted ALU loop: the
// steady-state instruction stream with no stores, loads or faults, so every
// fetch after the first Run hits the decoded-page cache and every record
// comes from the run-state pool.
type stepEnv struct {
	core  *pipeline.Core
	as    *mem.AddrSpace
	entry uint64
	insts uint64
}

func newStepEnv(tb testing.TB, iters int32) *stepEnv {
	tb.Helper()
	phys := mem.NewPhysical()
	ch := cache.New(cache.DefaultConfig())
	unit := predict.NewUnit(predict.Config{Seed: 1})
	core := pipeline.New(pipeline.DefaultConfig(), phys, ch, unit, &pmc.Counters{})
	as := mem.NewAddrSpace()

	code, err := asm.NewBuilder().
		Movi(isa.RCX, iters).
		Movi(isa.RDX, 1).
		Label("loop").
		Sub(isa.RCX, isa.RCX, isa.RDX).
		Xor(isa.RBX, isa.RCX, isa.RDX).
		Jnz(isa.RCX, "loop").
		Halt().
		Assemble(0x400000)
	if err != nil {
		tb.Fatalf("assemble: %v", err)
	}
	const base = 0x400000
	for off := uint64(0); off < uint64(len(code))+mem.PageSize-1; off += mem.PageSize {
		if _, ok := as.Lookup(base + off); !ok {
			as.Map(base+off, phys.AllocFrame(), mem.PermR|mem.PermX)
		}
	}
	for i := range code {
		pa, f := as.Translate(base+uint64(i), mem.AccessRead)
		if f != mem.FaultNone {
			tb.Fatalf("translate code+%d: %v", i, f)
		}
		phys.WriteBytes(pa, code[i:i+1])
	}
	e := &stepEnv{core: core, as: as, entry: base}
	// One warm-up Run fills the decoded-page cache, the run-state pool and
	// the TLBs; everything after is the steady state under measurement.
	var regs [isa.NumRegs]uint64
	res := e.core.Run(e.as, e.entry, &regs, 0)
	if res.Stop != pipeline.StopHalt {
		tb.Fatalf("warm-up stopped with %v, want halt", res.Stop)
	}
	e.insts = res.Insts
	return e
}

// BenchmarkCoreStep measures the steady-state per-instruction cost of the
// pipeline: decoded-page fetch hit, ALU execute, retire — no observers, no
// memory traffic.
func BenchmarkCoreStep(b *testing.B) {
	e := newStepEnv(b, 256)
	var regs [isa.NumRegs]uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.core.Run(e.as, e.entry, &regs, 0)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(e.insts), "ns/inst")
}

// TestCoreStepSteadyStateAllocFree pins the tentpole invariant: once a core
// has run a program once, re-running it allocates nothing — instruction
// records, run state and decoded pages are all recycled.
func TestCoreStepSteadyStateAllocFree(t *testing.T) {
	e := newStepEnv(t, 64)
	var regs [isa.NumRegs]uint64
	allocs := testing.AllocsPerRun(20, func() {
		e.core.Run(e.as, e.entry, &regs, 0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Run allocates %.1f objects per run, want 0", allocs)
	}
}

// countingInstObs counts instruction events through the boxing-free
// InstObserver fast path.
type countingInstObs struct{ n int }

func (c *countingInstObs) HandleEvent(e obs.Event)     { c.n++ }
func (c *countingInstObs) HandleInst(e *obs.InstEvent) { c.n++ }

// BenchmarkObsEmitFast measures EmitInst delivery to one InstObserver
// subscriber: the hot emit path a metrics-collecting run pays per
// instruction.
func BenchmarkObsEmitFast(b *testing.B) {
	bus := obs.NewBus()
	o := &countingInstObs{}
	bus.Subscribe(o, obs.Options{Classes: []obs.Class{obs.ClassInst}})
	ev := obs.InstEvent{CPU: 0, PC: 0x400000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Dispatch = int64(i)
		bus.EmitInst(&ev)
	}
	if o.n != b.N {
		b.Fatalf("observer saw %d events, want %d", o.n, b.N)
	}
}

// BenchmarkObsEmitDisabled measures the guarded emit site with no observer
// attached: one nil/mask test, nothing else.
func BenchmarkObsEmitDisabled(b *testing.B) {
	var bus *obs.Bus
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bus.On(obs.ClassInst) {
			sink++
		}
	}
	if sink != 0 {
		b.Fatal("nil bus reported a subscriber")
	}
}

// TestEmitNoObserverAllocFree pins the zero-alloc invariant for the
// no-observer emit path at both guard levels: a nil bus (unobserved machine)
// and a live bus whose subscribers don't want the class. Staging the event
// and calling EmitInst must not allocate either — the event is delivered by
// pointer, never boxed.
func TestEmitNoObserverAllocFree(t *testing.T) {
	var nilBus *obs.Bus
	allocs := testing.AllocsPerRun(100, func() {
		if nilBus.On(obs.ClassInst) {
			t.Fatal("nil bus on")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-bus guard allocates %.1f objects per run, want 0", allocs)
	}

	bus := obs.NewBus()
	bus.Subscribe(&countingInstObs{}, obs.Options{Classes: []obs.Class{obs.ClassCache}})
	allocs = testing.AllocsPerRun(100, func() {
		if bus.On(obs.ClassInst) {
			t.Fatal("unsubscribed class on")
		}
	})
	if allocs != 0 {
		t.Fatalf("masked-class guard allocates %.1f objects per run, want 0", allocs)
	}

	o := &countingInstObs{}
	bus.Subscribe(o, obs.Options{Classes: []obs.Class{obs.ClassInst}})
	// Staged outside the closure, as the pipeline stages its event in a
	// Core-owned buffer: the pointee's address escapes into the observer
	// call, so a per-emit local would be a per-emit heap allocation.
	var ev obs.InstEvent
	allocs = testing.AllocsPerRun(100, func() {
		ev = obs.InstEvent{CPU: 1, PC: 0x400000}
		bus.EmitInst(&ev)
	})
	if allocs != 0 {
		t.Fatalf("EmitInst allocates %.1f objects per run, want 0", allocs)
	}
}

// BenchmarkFlushReloadSweep measures one full probe-array sweep — FlushAll
// followed by Reload over 256 slots — the side-channel inner loop every
// secret-extraction trial repeats. The hits slice is arena-reused by
// Reload, so the steady state allocates nothing.
func BenchmarkFlushReloadSweep(b *testing.B) {
	k := kernel.New(kernel.Config{Seed: 1})
	p := k.NewProcess("fr", kernel.DomainUser)
	const probeVA = 0x2000000
	p.MapData(probeVA, 256*mem.PageSize)
	fr := sidechannel.New(k, p, 0, probeVA, 256, 0x400000)
	// Warm one sweep so calibration and buffer growth are out of the loop.
	fr.FlushAll()
	p.WarmLine(probeVA + 7*fr.Stride)
	fr.Reload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.FlushAll()
		p.WarmLine(probeVA + uint64(i%256)*fr.Stride)
		if hits := fr.Reload(); len(hits) != 1 {
			b.Fatalf("sweep %d: %d hits, want 1", i, len(hits))
		}
	}
}
