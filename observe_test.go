package zenspec

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files under testdata/")

// listing2Src is the paper's Listing 2 STL gadget: a store whose address
// generation is delayed by a multiply chain, the load that speculatively
// bypasses it, and the dependent transmit load.
const listing2Src = `
	movi r13, 0x10000      ; data base
	movi rax, 0x41         ; value the store writes
	movi rcx, 1
	imul rcx, rcx, r13     ; slow store-address chain
	store [rcx], rax       ; store (address resolves late)
	load rdx, [r13]        ; ld1: may bypass the store
	and  rdx, rdx, 0xff
	shl  r8, rdx, 6
	add  r8, r8, r13
	load r9, [r8]          ; ld2/transmit: address from ld1
	halt
`

// runListing2Trial boots a seed-pinned machine under a guaranteed-strike
// fault plan, attaches o, and runs the Listing 2 gadget three times (the
// first run mispredicts and trains; later runs replay against the trained,
// fault-perturbed predictor state).
func runListing2Trial(t *testing.T, o Observer) {
	t.Helper()
	plan, err := ParseFaultPlan(`{"seed":7,"psfp_evict_rate":1,"spurious_train_rate":1,"cache_evict_rate":1,"cache_evict_lines":2}`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{Seed: 42, Faults: plan, Observer: o})
	p := m.NewProcess("listing2", DomainUser)
	const entry = 0x400000
	code, err := Assemble(listing2Src, entry)
	if err != nil {
		t.Fatal(err)
	}
	p.MapCode(entry, code)
	p.MapData(0x10000, 65536)
	for run := 0; run < 3; run++ {
		res := m.Run(p, entry, 0)
		if res.Stop.String() != "halt" {
			t.Fatalf("run %d stopped with %v", run, res.Stop)
		}
	}
}

// TestGoldenPerfettoListing2 records the seed-pinned Listing 2 STL trial and
// compares the Perfetto export byte for byte against the checked-in golden
// file (refresh with -update-golden). It also asserts the trace carries the
// event kinds the observability layer promises: PSFP training, an SSBP
// counter transition, a squash with its window extent, and injected faults.
func TestGoldenPerfettoListing2(t *testing.T) {
	rec := NewTraceRecorder()
	runListing2Trial(t, rec)
	got, err := rec.Perfetto()
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	complete := 0
	kinds := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" {
			complete++
		}
		switch {
		case strings.HasPrefix(e.Name, "psfp-train:"):
			kinds["train"] = true
		case strings.HasPrefix(e.Name, "ssbp:"):
			kinds["ssbp"] = true
		case strings.HasPrefix(e.Name, "squash:"):
			kinds["squash"] = true
		case strings.HasPrefix(e.Name, "fault-"):
			kinds["fault"] = true
		}
	}
	if complete == 0 {
		t.Error("trace has no complete (\"X\") events")
	}
	for _, want := range []string{"train", "ssbp", "squash", "fault"} {
		if !kinds[want] {
			t.Errorf("trace is missing %s events", want)
		}
	}

	golden := filepath.Join("testdata", "listing2_trace.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d events)", golden, len(doc.TraceEvents))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from %s (%d bytes vs %d; rerun with -update-golden after intended changes)",
			golden, len(got), len(want))
	}
}

// TestObserverNeverChangesTrialResults runs the Listing 2 trial bare and
// under three observers at once and asserts the architectural outcome is
// identical: observation is strictly read-only.
func TestObserverNeverChangesTrialResults(t *testing.T) {
	regs := func(o Observer) [2]uint64 {
		plan, _ := ParseFaultPlan("default")
		m := NewMachine(Config{Seed: 42, Faults: plan, Observer: o})
		p := m.NewProcess("listing2", DomainUser)
		const entry = 0x400000
		code, err := Assemble(listing2Src, entry)
		if err != nil {
			t.Fatal(err)
		}
		p.MapCode(entry, code)
		p.MapData(0x10000, 65536)
		m.Run(p, entry, 0)
		return [2]uint64{p.Regs[2], p.Regs[9]} // rdx (ld1), r9 (transmit)
	}
	bare := regs(nil)
	rec := NewTraceRecorder()
	mets := NewMetricsObserver()
	var n atomic.Uint64
	multi := ObserverFunc(func(e Event) {
		n.Add(1)
		rec.HandleEvent(e)
		mets.HandleEvent(e)
	})
	observed := regs(multi)
	if bare != observed {
		t.Errorf("observer changed results: bare %#x, observed %#x", bare, observed)
	}
	if n.Load() == 0 || rec.Len() == 0 {
		t.Error("observer saw no events; the determinism check is vacuous")
	}
}

// TestObserverStableJSONAcrossWorkers runs a registry subset bare at one
// worker, then with an attached observer at 1, 2 and 8 workers, and requires
// every StableJSON rendering to be byte-identical to the bare baseline.
func TestObserverStableJSONAcrossWorkers(t *testing.T) {
	ids := []string{"table1", "fig4", "fault-harness"}
	plan, err := ParseFaultPlan("default")
	if err != nil {
		t.Fatal(err)
	}
	stable := func(workers int, o Observer) []byte {
		cfg := Config{Seed: 42, Parallelism: workers, Faults: plan, Observer: o}
		suite, err := RunExperiments(cfg, true, ids)
		if err != nil {
			t.Fatal(err)
		}
		b, err := suite.StableJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	baseline := stable(1, nil)
	var seen atomic.Uint64
	count := ObserverFunc(func(Event) { seen.Add(1) })
	for _, workers := range []int{1, 2, 8} {
		if got := stable(workers, count); !bytes.Equal(got, baseline) {
			t.Errorf("StableJSON with observer at %d workers differs from bare baseline", workers)
		}
	}
	if seen.Load() == 0 {
		t.Error("observer saw no events; the invariance check is vacuous")
	}
}

// TestMetricsSnapshotDeterministicAcrossWorkers asserts the Metrics fold is
// worker-count independent: the same suite with cfg.Metrics produces
// byte-identical StableJSON (which embeds the micro snapshots) at 1, 2 and
// 8 workers.
func TestMetricsSnapshotDeterministicAcrossWorkers(t *testing.T) {
	ids := []string{"table1", "fig4"}
	stable := func(workers int) []byte {
		suite, err := RunExperiments(Config{Seed: 42, Parallelism: workers, Metrics: true}, true, ids)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range suite.Experiments {
			if r.Micro == nil {
				t.Fatalf("%s: no micro metrics despite cfg.Metrics", r.ID)
			}
		}
		b, err := suite.StableJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	baseline := stable(1)
	for _, workers := range []int{2, 8} {
		if got := stable(workers); !bytes.Equal(got, baseline) {
			t.Errorf("metrics StableJSON at %d workers differs from serial", workers)
		}
	}
}

// TestErrUnknownExperiment asserts both registry entry points fail with the
// typed sentinel for unknown IDs.
func TestErrUnknownExperiment(t *testing.T) {
	if _, err := RunExperiments(Config{}, true, []string{"no-such-experiment"}); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("RunExperiments err = %v, want ErrUnknownExperiment", err)
	}
	if _, err := BenchExperiments(Config{}, true, []string{"no-such-experiment"}); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("BenchExperiments err = %v, want ErrUnknownExperiment", err)
	}
	if _, err := RunExperiments(Config{}, true, []string{"table1"}); err != nil {
		t.Errorf("RunExperiments with a known ID failed: %v", err)
	}
}

// TestPlatformsCopyAndZeroDefault asserts Platforms returns a defensive copy
// and that the zero-value Config lowers to the Ryzen 9 5900X store-queue
// size (48 entries).
func TestPlatformsCopyAndZeroDefault(t *testing.T) {
	ps := Platforms()
	ps[0].Name = "clobbered"
	ps[0].SQSize = -1
	if got := Platforms()[0]; got.Name != "ryzen9-5900x" || got.SQSize != 48 {
		t.Errorf("Platforms leaked internal state: got %+v", got)
	}
	if _, ok := PlatformByName("clobbered"); ok {
		t.Error("PlatformByName sees caller mutation")
	}
	kc := Config{}.kernelConfig()
	if kc.Pipeline.SQSize != 48 {
		t.Errorf("zero Config SQSize = %d, want 48 (Ryzen 9 5900X)", kc.Pipeline.SQSize)
	}
	def, ok := PlatformByName("ryzen9-5900x")
	if !ok || (Config{Platform: def}).kernelConfig().Pipeline.SQSize != 48 {
		t.Error("ryzen9-5900x preset does not lower to SQSize 48")
	}
}
