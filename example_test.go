package zenspec_test

import (
	"fmt"

	"zenspec"
)

// The φ notation: run the paper's (n, a, 2n) sequence and watch the
// predictor train through timing classes alone.
func ExampleNewLab() {
	lab := zenspec.NewLab(zenspec.Config{Seed: 1})
	s := lab.PlaceStld()
	for _, aliasing := range zenspec.Seq(1, -1, 2) {
		ob := s.Run(aliasing)
		fmt.Println(ob.Class, ob.TrueType)
	}
	// Output:
	// fast H
	// rollback G
	// stall E
	// stall E
}

func ExampleParseSeq() {
	seq, _ := zenspec.ParseSeq("7n 1a")
	fmt.Println(len(seq), seq[7])
	// Output: 8 true
}

func ExampleAssemble() {
	code, _ := zenspec.Assemble(`
		movi rax, 6
		imul rax, rax, rax
		halt
	`, 0x400000)
	for _, line := range zenspec.Disassemble(code, 0x400000) {
		fmt.Println(line)
	}
	// Output:
	// 0x400000: movi rax, 6
	// 0x400008: imul rax, rax, rax
	// 0x400010: halt
}

func ExampleScanGadgets() {
	code, _ := zenspec.Assemble(`
		store [rcx], rax
		load  rdx, [r14]
		add   rbx, rdx, r11
		load  r8, [rbx]
		shl   r9, r8, 3
		load  r10, [r9]
		halt
	`, 0)
	for _, c := range zenspec.ScanGadgets(code) {
		fmt.Println(c)
	}
	// Output:
	// gadget: store@+0x0  ld1@+0x8  ld2@+0x18  transmit@+0x28
}

func ExampleMDUCharacterization() {
	for _, row := range zenspec.MDUCharacterization() {
		fmt.Println(row.Design, "—", row.StateMachineBits)
	}
	// Output:
	// intel-mdu — 4 bit
	// arm-mdu — 1 bit
	// amd-psfp-ssbp — 6 bit (C3) + 2 bit (C4)
}
