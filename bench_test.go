package zenspec

// The benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation. Each benchmark regenerates its experiment and
// reports the headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the full paper-vs-measured series. Absolute cycle values are
// simulator cycles; the claims under reproduction are orderings and ratios
// (see EXPERIMENTS.md).

import (
	"fmt"
	"math/rand"
	"testing"

	"zenspec/internal/attack"
	"zenspec/internal/kernel"
	"zenspec/internal/predict"
	"zenspec/internal/revng"
	"zenspec/internal/workload"
)

// BenchmarkFig2ExecutionTypes regenerates the Fig 2 execution-type analysis
// and reports the mean cycles of the fast (H), stall (E) and rollback (G)
// levels.
func BenchmarkFig2ExecutionTypes(b *testing.B) {
	var res revng.Fig2Result
	for i := 0; i < b.N; i++ {
		res = Fig2(Config{Seed: 42})
	}
	for _, row := range res.Rows {
		b.ReportMetric(float64(row.MeanCycles), "cycles/"+row.Type.String())
	}
	b.ReportMetric(100*res.TimingAgree, "timing-agreement-%")
}

// BenchmarkTable1StateMachine reports the fraction of random-sequence steps
// the TABLE I model explains (paper: >99.8%).
func BenchmarkTable1StateMachine(b *testing.B) {
	var res revng.Table1Result
	for i := 0; i < b.N; i++ {
		res = Table1(Config{Seed: 42}, 20, 48)
	}
	b.ReportMetric(100*res.MatchRate, "match-%")
}

// BenchmarkTable2CounterOrganization reports the dependence matrix as 0/1
// metrics (store-IPA and load-IPA selection per counter).
func BenchmarkTable2CounterOrganization(b *testing.B) {
	var res revng.Table2Result
	for i := 0; i < b.N; i++ {
		res = Table2(Config{Seed: 42})
	}
	for _, row := range res.Rows {
		v := 0.0
		if row.DependsOnStore {
			v = 1
		}
		b.ReportMetric(v, row.Counter+"-store-dep")
		v = 0
		if row.DependsOnLoad {
			v = 1
		}
		b.ReportMetric(v, row.Counter+"-load-dep")
	}
}

// BenchmarkFig4HashCharacteristics reports the fraction of mined colliding
// pairs satisfying the stride-12 XOR property (paper: all).
func BenchmarkFig4HashCharacteristics(b *testing.B) {
	var res revng.Fig4Result
	for i := 0; i < b.N; i++ {
		res = Fig4(Config{Seed: 42}, 4)
	}
	b.ReportMetric(float64(res.Pairs), "pairs")
	b.ReportMetric(float64(res.StrideXORok), "stride12-ok")
}

// BenchmarkFig5EvictionRate reports the eviction rates at the paper's
// inflection points: PSFP 11 vs 12, SSBP 16 and 32.
func BenchmarkFig5EvictionRate(b *testing.B) {
	var res revng.Fig5Result
	for i := 0; i < b.N; i++ {
		res = Fig5(Config{Seed: 42}, []int{11, 12, 16, 32}, 10)
	}
	get := func(ps []revng.EvictionPoint, size int) float64 {
		for _, p := range ps {
			if p.SetSize == size {
				return 100 * p.Rate
			}
		}
		return -1
	}
	b.ReportMetric(get(res.PSFP, 11), "psfp-evict-%@11")
	b.ReportMetric(get(res.PSFP, 12), "psfp-evict-%@12")
	b.ReportMetric(get(res.SSBP, 16), "ssbp-evict-%@16")
	b.ReportMetric(get(res.SSBP, 32), "ssbp-evict-%@32")
}

// BenchmarkFig7CollisionFinding reports the SSBP collision-search attempt
// statistics (paper: Gaussian around ~2200, bound 4096) and PSFP distance
// dependence.
func BenchmarkFig7CollisionFinding(b *testing.B) {
	var res revng.Fig7Result
	for i := 0; i < b.N; i++ {
		res = Fig7(Config{Seed: 42}, 6, 2)
	}
	b.ReportMetric(res.SSBPMean, "ssbp-mean-attempts")
	b.ReportMetric(float64(res.PSFPSameDistanceFound)/float64(res.PSFPSameDistanceTried), "psfp-same-dist-rate")
	b.ReportMetric(float64(res.PSFPDiffDistanceFound)/float64(res.PSFPDiffDistanceTried), "psfp-diff-dist-rate")
}

// BenchmarkIsolationMatrix reports Vulnerability 1: SSBP leak rate across
// domains vs PSFP (Section IV-A).
func BenchmarkIsolationMatrix(b *testing.B) {
	var res revng.IsolationResult
	for i := 0; i < b.N; i++ {
		res = Isolation(Config{Seed: 42})
	}
	ssbpLeaks, psfpLeaks, ssbpTotal, psfpTotal := 0, 0, 0, 0
	for _, row := range res.Rows {
		if row.Predictor == "SSBP" {
			ssbpTotal++
			if row.Leaked {
				ssbpLeaks++
			}
		} else {
			psfpTotal++
			if row.Leaked {
				psfpLeaks++
			}
		}
	}
	b.ReportMetric(100*float64(ssbpLeaks)/float64(ssbpTotal), "ssbp-leak-%")
	b.ReportMetric(100*float64(psfpLeaks)/float64(psfpTotal), "psfp-leak-%")
}

func benchSecret(n int) []byte {
	r := rand.New(rand.NewSource(1234))
	s := make([]byte, n)
	r.Read(s)
	return s
}

// BenchmarkSpectreSTL reports the out-of-place Spectre-STL accuracy and
// bandwidth (paper: 99.95%, 416 B/s on silicon).
func BenchmarkSpectreSTL(b *testing.B) {
	var res AttackResult
	for i := 0; i < b.N; i++ {
		res = SpectreSTL(Config{Seed: 5}, benchSecret(64), STLOptions{})
	}
	b.ReportMetric(100*res.Accuracy, "accuracy-%")
	b.ReportMetric(res.BytesPerSecond, "leak-B/s")
	b.ReportMetric(float64(res.CollisionAttempts), "sliding-attempts")
}

// BenchmarkSpectreSTLInPlaceVsOutOfPlace quantifies the paper's Section V-B
// comparison: victim executions per leaked byte for the classic in-place
// training against the out-of-place collider.
func BenchmarkSpectreSTLInPlaceVsOutOfPlace(b *testing.B) {
	var in, out AttackResult
	for i := 0; i < b.N; i++ {
		in = SpectreSTLInPlace(Config{Seed: 5}, benchSecret(32))
		out = SpectreSTL(Config{Seed: 5}, benchSecret(32), STLOptions{})
	}
	b.ReportMetric(float64(in.VictimCalls)/32, "inplace-victim-calls/B")
	b.ReportMetric(float64(out.VictimCalls)/32, "outofplace-victim-calls/B")
	b.ReportMetric(100*in.Accuracy, "inplace-acc-%")
	b.ReportMetric(100*out.Accuracy, "outofplace-acc-%")
}

// BenchmarkSpectreCTL reports the Spectre-CTL accuracy and bandwidth
// (paper: 99.97%, 384 B/s).
func BenchmarkSpectreCTL(b *testing.B) {
	var res AttackResult
	for i := 0; i < b.N; i++ {
		res = SpectreCTL(Config{Seed: 5}, benchSecret(24), CTLOptions{})
	}
	b.ReportMetric(100*res.Accuracy, "accuracy-%")
	b.ReportMetric(res.BytesPerSecond, "leak-B/s")
}

// BenchmarkSpectreCTLBrowser reports the browser-timer variant (paper:
// 81.1%, ~170 B/s).
func BenchmarkSpectreCTLBrowser(b *testing.B) {
	var res AttackResult
	for i := 0; i < b.N; i++ {
		res = SpectreCTLBrowser(Config{Seed: 5}, benchSecret(24))
	}
	b.ReportMetric(100*res.Accuracy, "accuracy-%")
	b.ReportMetric(res.BytesPerSecond, "leak-B/s")
}

// BenchmarkFig11Fingerprint reports the CNN fingerprinting SVM accuracy
// (paper: >95.5%).
func BenchmarkFig11Fingerprint(b *testing.B) {
	var res attack.FingerprintResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Fingerprint(Config{}, FingerprintOptions{
			ScanRange: 128, Rounds: 14, TrainSamples: 9, TestSamples: 4, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Accuracy, "svm-accuracy-%")
}

// BenchmarkFig12SSBDOverhead reports the per-benchmark SSBD overhead
// percentages (paper: >20% on perlbench and exchange2).
func BenchmarkFig12SSBDOverhead(b *testing.B) {
	var res workload.SSBDOverheadResult
	for i := 0; i < b.N; i++ {
		res = SSBDOverhead(Config{Seed: 1})
	}
	for _, row := range res.Rows {
		b.ReportMetric(100*row.OverheadFrac, row.Name+"-overhead-%")
	}
}

// BenchmarkTable4MDUComparison contrasts the disambiguator designs: how many
// non-aliasing executions each needs before it first allows a bypass
// (training latency), run through the bare predictor models.
func BenchmarkTable4MDUComparison(b *testing.B) {
	designs := []predict.Disambiguator{
		predict.NewIntelMDU(),
		predict.NewARMMDU(),
		predict.NewUnit(predict.Config{Seed: 1}),
	}
	q := predict.Query{StoreIPA: 0x1000, LoadIPA: 0x1008, StoreIVA: 0x1000, LoadIVA: 0x1008}
	for i := 0; i < b.N; i++ {
		for _, d := range designs {
			d.FlushPredictor()
		}
	}
	for _, d := range designs {
		// Train to the aliasing-predicted state, then count non-aliasing
		// executions until bypass.
		d.Verify(q, true)
		runs := 0
		for !func() bool { p := d.Predict(q); return !p.Aliasing }() && runs < 64 {
			d.Verify(q, false)
			runs++
		}
		b.ReportMetric(float64(runs), d.Name()+"-drain-runs")
	}
}

// BenchmarkSMTMode reports the Section III-D3 PSFP eviction thresholds in
// SMT and single-thread mode (paper: unchanged, i.e. duplicated resources).
func BenchmarkSMTMode(b *testing.B) {
	var res revng.SMTModeResult
	for i := 0; i < b.N; i++ {
		res = SMTMode(Config{Seed: 42})
	}
	b.ReportMetric(float64(res.SMTThreshold), "smt-threshold")
	b.ReportMetric(float64(res.SingleThreshold), "single-threshold")
}

// BenchmarkAddrLeak reports the Section V-D address-relation leak success
// rate.
func BenchmarkAddrLeak(b *testing.B) {
	var res revng.AddrLeakResult
	for i := 0; i < b.N; i++ {
		res = AddrLeak(Config{Seed: 42}, 5)
	}
	b.ReportMetric(float64(res.Pages), "page-pairs")
	b.ReportMetric(float64(res.Recovered), "recovered")
}

// BenchmarkAblationPSFPSize sweeps the PSFP capacity design parameter and
// reports the eviction threshold each value produces.
func BenchmarkAblationPSFPSize(b *testing.B) {
	var points []revng.AblationPoint
	for i := 0; i < b.N; i++ {
		points = PSFPSizeAblation(Config{Seed: 42}, []int{4, 8, 12, 16, 24})
	}
	for _, p := range points {
		b.ReportMetric(float64(p.Threshold), fmt.Sprintf("threshold@size%d", p.Value))
	}
}

// BenchmarkAblationRollbackPenalty sweeps the rollback penalty and reports
// the type-G execution time — the knob behind Fig 2's ">240 cycles".
func BenchmarkAblationRollbackPenalty(b *testing.B) {
	penalties := []int{50, 100, 200, 400}
	var gTimes []float64
	for i := 0; i < b.N; i++ {
		gTimes = gTimes[:0]
		for _, pen := range penalties {
			kcfg := Config{Seed: 42}.kernelConfig()
			kcfg.Pipeline.RollbackPenalty = pen
			l := revng.NewLab(kcfg)
			s := l.PlaceStld()
			ob := s.Run(true) // first aliasing run: type G
			gTimes = append(gTimes, float64(ob.Cycles))
		}
	}
	for i, pen := range penalties {
		b.ReportMetric(gTimes[i], fmt.Sprintf("G-cycles@penalty%d", pen))
	}
}

// BenchmarkMitigationAblation reports attack accuracy under each defense
// (Section VI): SSBD stops everything, PSFD stops nothing, and each VI-B
// sketch kills its attack class.
func BenchmarkMitigationAblation(b *testing.B) {
	secret := benchSecret(8)
	type cell struct {
		name string
		acc  float64
	}
	var cells []cell
	for i := 0; i < b.N; i++ {
		cells = cells[:0]
		cells = append(cells,
			cell{"baseline-stl", SpectreSTL(Config{Seed: 5}, secret, STLOptions{}).Accuracy},
			cell{"ssbd-stl", SpectreSTL(Config{Seed: 5, SSBD: true}, secret, STLOptions{}).Accuracy},
			cell{"psfd-stl", SpectreSTL(Config{Seed: 5, PSFD: true}, secret, STLOptions{}).Accuracy},
			cell{"securetimer-stl", SpectreSTL(Config{Seed: 5, TimerQuantum: 4096}, secret, STLOptions{}).Accuracy},
			cell{"baseline-ctl", SpectreCTL(Config{Seed: 5}, secret, CTLOptions{Sweeps: 1}).Accuracy},
			cell{"ssbd-ctl", SpectreCTL(Config{Seed: 5, SSBD: true}, secret, CTLOptions{Sweeps: 1}).Accuracy},
			cell{"flushssbp-ctl", SpectreCTL(Config{Seed: 5, FlushSSBPOnSwitch: true}, secret, CTLOptions{Sweeps: 1}).Accuracy},
			cell{"rotatesalt-ctl", SpectreCTL(Config{Seed: 5, RotateSalt: true}, secret,
				CTLOptions{Sweeps: 1, VictimDomain: kernel.DomainKernel}).Accuracy},
		)
	}
	for _, c := range cells {
		b.ReportMetric(100*c.acc, c.name+"-acc-%")
	}
}

// BenchmarkSandboxEscape reports the browser-model escape: bytes leaked from
// renderer memory by sandboxed (masked, flush-free, coarse-timed) code, and
// the JIT-compilation cost of the in-browser collision search.
func BenchmarkSandboxEscape(b *testing.B) {
	var correct, probes int
	for i := 0; i < b.N; i++ {
		res, err := SandboxEscape(Config{Seed: 5}, []byte{0x5e, 0xc1})
		if err != nil {
			b.Fatal(err)
		}
		correct, probes = res.Correct, res.ProbesCompiled
	}
	b.ReportMetric(float64(correct)/2*100, "leak-%")
	b.ReportMetric(float64(probes), "modules-compiled")
}
