module zenspec

go 1.22
