// Package isa defines the micro-ISA executed by the simulated CPU core.
//
// The ISA is a small, register-based subset of what the paper's amd64
// microbenchmarks need: integer ALU ops, a 3-cycle multiplier (used to delay
// address generation), 8-byte loads and stores, the RDPRU cycle-counter read,
// CLFLUSH, fences, conditional branches, and a SYSCALL trap into the kernel
// model. Instructions are encoded in 8 bytes and may be placed at any byte
// offset, which is what makes the paper's code-sliding collision search
// (Section III-C) expressible: a store-load pair copied one byte further in a
// page moves its instruction physical addresses (IPAs) by one byte.
package isa

import "fmt"

// Reg is an architectural register index. The ISA exposes 16 general-purpose
// 64-bit registers, R0 through R15. By convention (mirroring the SysV names
// the paper uses) R7 is RDI (first argument), R6 is RSI (second argument) and
// R0 is RAX (return value).
type Reg uint8

// Register aliases following the amd64 convention used in the paper's
// listings.
const (
	RAX Reg = 0
	RCX Reg = 1
	RDX Reg = 2
	RBX Reg = 3
	RSP Reg = 4
	RBP Reg = 5
	RSI Reg = 6
	RDI Reg = 7
	R8  Reg = 8
	R9  Reg = 9
	R10 Reg = 10
	R11 Reg = 11
	R12 Reg = 12
	R13 Reg = 13
	R14 Reg = 14
	R15 Reg = 15
)

// NumRegs is the number of architectural registers.
const NumRegs = 16

func (r Reg) String() string {
	names := [...]string{"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
		"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"}
	if int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Op is an operation code.
type Op uint8

// Operation codes. The zero value is deliberately invalid so that executing
// zeroed memory faults instead of silently doing work.
const (
	BAD Op = iota

	// Data movement.
	MOVI // dst = imm (sign-extended 32-bit)
	MOV  // dst = src1

	// ALU, dst = src1 op src2.
	ADD
	SUB
	AND
	OR
	XOR
	SHL
	SHR

	// ALU with immediate, dst = src1 op imm.
	ADDI
	SUBI
	ANDI
	ORI
	XORI
	SHLI
	SHRI

	// Multiply, dst = src1 * src2. Latency 3; single multiply port. Chains of
	// IMUL are how the microbenchmarks delay store address generation.
	IMUL

	// Memory, 8-byte accesses: LOAD dst = mem[src1+imm], STORE mem[src1+imm] = src2.
	LOAD
	STORE

	// Timing and cache control.
	RDPRU   // dst = current cycle count; waits for all older ops to complete
	CLFLUSH // flush the cache line containing mem[src1+imm]
	MFENCE  // full memory fence
	LFENCE  // load fence / speculation barrier
	SFENCE  // store fence

	// Control flow. Branch targets are absolute virtual addresses in imm.
	JMP // unconditional
	JZ  // branch if src1 == 0
	JNZ // branch if src1 != 0

	// System.
	NOP
	SYSCALL // trap into the kernel model (service number in RAX)
	HALT    // stop execution, used as the return from a called routine

	numOps
)

var opNames = [...]string{
	BAD: "bad", MOVI: "movi", MOV: "mov",
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	ADDI: "addi", SUBI: "subi", ANDI: "andi", ORI: "ori", XORI: "xori", SHLI: "shli", SHRI: "shri",
	IMUL: "imul", LOAD: "load", STORE: "store",
	RDPRU: "rdpru", CLFLUSH: "clflush", MFENCE: "mfence", LFENCE: "lfence", SFENCE: "sfence",
	JMP: "jmp", JZ: "jz", JNZ: "jnz",
	NOP: "nop", SYSCALL: "syscall", HALT: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o > BAD && o < numOps }

// Inst is a decoded instruction.
type Inst struct {
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Imm  int32
}

// InstBytes is the fixed encoding length of every instruction.
const InstBytes = 8

// IsLoad reports whether the instruction reads data memory.
func (in Inst) IsLoad() bool { return in.Op == LOAD }

// IsStore reports whether the instruction writes data memory.
func (in Inst) IsStore() bool { return in.Op == STORE }

// IsBranch reports whether the instruction may redirect control flow.
func (in Inst) IsBranch() bool {
	switch in.Op {
	case JMP, JZ, JNZ:
		return true
	}
	return false
}

// IsFence reports whether the instruction is a serializing fence.
func (in Inst) IsFence() bool {
	switch in.Op {
	case MFENCE, LFENCE, SFENCE:
		return true
	}
	return false
}

// WritesReg reports whether the instruction produces a register result.
func (in Inst) WritesReg() bool {
	switch in.Op {
	case MOVI, MOV, ADD, SUB, AND, OR, XOR, SHL, SHR,
		ADDI, SUBI, ANDI, ORI, XORI, SHLI, SHRI, IMUL, LOAD, RDPRU:
		return true
	}
	return false
}

// SrcRegs returns which source registers the instruction reads.
// The second return value reports how many are meaningful (0, 1 or 2).
func (in Inst) SrcRegs() ([2]Reg, int) {
	switch in.Op {
	case MOVI, RDPRU, JMP, NOP, MFENCE, LFENCE, SFENCE, HALT, BAD:
		return [2]Reg{}, 0
	case MOV, ADDI, SUBI, ANDI, ORI, XORI, SHLI, SHRI, LOAD, CLFLUSH, JZ, JNZ:
		return [2]Reg{in.Src1}, 1
	case SYSCALL:
		return [2]Reg{RAX}, 1
	case STORE:
		// src1 is the address base, src2 is the data.
		return [2]Reg{in.Src1, in.Src2}, 2
	default:
		return [2]Reg{in.Src1, in.Src2}, 2
	}
}

func (in Inst) String() string {
	switch in.Op {
	case MOVI:
		return fmt.Sprintf("movi %s, %d", in.Dst, in.Imm)
	case MOV:
		return fmt.Sprintf("mov %s, %s", in.Dst, in.Src1)
	case LOAD:
		return fmt.Sprintf("load %s, [%s%+d]", in.Dst, in.Src1, in.Imm)
	case STORE:
		return fmt.Sprintf("store [%s%+d], %s", in.Src1, in.Imm, in.Src2)
	case CLFLUSH:
		return fmt.Sprintf("clflush [%s%+d]", in.Src1, in.Imm)
	case RDPRU:
		return fmt.Sprintf("rdpru %s", in.Dst)
	case JMP:
		return fmt.Sprintf("jmp 0x%x", uint32(in.Imm))
	case JZ:
		return fmt.Sprintf("jz %s, 0x%x", in.Src1, uint32(in.Imm))
	case JNZ:
		return fmt.Sprintf("jnz %s, 0x%x", in.Src1, uint32(in.Imm))
	case ADDI, SUBI, ANDI, ORI, XORI, SHLI, SHRI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
	case NOP, MFENCE, LFENCE, SFENCE, SYSCALL, HALT, BAD:
		return in.Op.String()
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	}
}

// Encode writes the 8-byte encoding of in to dst, which must have room for
// InstBytes bytes. Layout: opcode, dst, src1, src2, imm (little-endian int32).
func (in Inst) Encode(dst []byte) {
	_ = dst[7]
	dst[0] = byte(in.Op)
	dst[1] = byte(in.Dst)
	dst[2] = byte(in.Src1)
	dst[3] = byte(in.Src2)
	imm := uint32(in.Imm)
	dst[4] = byte(imm)
	dst[5] = byte(imm >> 8)
	dst[6] = byte(imm >> 16)
	dst[7] = byte(imm >> 24)
}

// Decode decodes one instruction from src, which must hold at least
// InstBytes bytes. Decoding never fails; invalid opcodes decode to BAD and
// fault at execution.
func Decode(src []byte) Inst {
	_ = src[7]
	op := Op(src[0])
	if !op.Valid() {
		op = BAD
	}
	return Inst{
		Op:   op,
		Dst:  Reg(src[1] & 0x0f),
		Src1: Reg(src[2] & 0x0f),
		Src2: Reg(src[3] & 0x0f),
		Imm:  int32(uint32(src[4]) | uint32(src[5])<<8 | uint32(src[6])<<16 | uint32(src[7])<<24),
	}
}
