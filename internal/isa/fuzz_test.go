package isa

import "testing"

// FuzzDecode: decoding arbitrary bytes never panics, and re-encoding a
// decoded valid instruction reproduces the canonical bytes.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 42, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(make([]byte, InstBytes))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < InstBytes {
			return
		}
		in := Decode(data[:InstBytes])
		if !in.Op.Valid() && in.Op != BAD {
			t.Fatalf("decoded invalid op %d", in.Op)
		}
		var buf [InstBytes]byte
		in.Encode(buf[:])
		again := Decode(buf[:])
		if again != in {
			t.Fatalf("decode/encode not idempotent: %v vs %v", in, again)
		}
		_ = in.String()
		_, n := in.SrcRegs()
		if n < 0 || n > 2 {
			t.Fatalf("SrcRegs count %d", n)
		}
	})
}
