package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: MOVI, Dst: RAX, Imm: -42},
		{Op: MOV, Dst: R10, Src1: RDI},
		{Op: ADD, Dst: R8, Src1: R9, Src2: R10},
		{Op: IMUL, Dst: RCX, Src1: RCX, Src2: RDX},
		{Op: LOAD, Dst: RAX, Src1: RSI, Imm: 16},
		{Op: STORE, Src1: RDI, Src2: RAX, Imm: -8},
		{Op: RDPRU, Dst: R11},
		{Op: CLFLUSH, Src1: RBX, Imm: 64},
		{Op: JMP, Imm: 0x401000},
		{Op: JNZ, Src1: RAX, Imm: 0x400010},
		{Op: SYSCALL},
		{Op: HALT},
	}
	var buf [InstBytes]byte
	for _, in := range cases {
		in.Encode(buf[:])
		got := Decode(buf[:])
		if got != in {
			t.Errorf("round trip %v: got %v", in, got)
		}
	}
}

func TestDecodeInvalidOpcodeIsBAD(t *testing.T) {
	var buf [InstBytes]byte
	buf[0] = 0xff
	if got := Decode(buf[:]); got.Op != BAD {
		t.Errorf("opcode 0xff decoded to %v, want BAD", got.Op)
	}
	buf[0] = byte(numOps)
	if got := Decode(buf[:]); got.Op != BAD {
		t.Errorf("opcode numOps decoded to %v, want BAD", got.Op)
	}
}

// randomInst produces a valid random instruction for property testing.
func randomInst(r *rand.Rand) Inst {
	return Inst{
		Op:   Op(1 + r.Intn(int(numOps)-1)),
		Dst:  Reg(r.Intn(NumRegs)),
		Src1: Reg(r.Intn(NumRegs)),
		Src2: Reg(r.Intn(NumRegs)),
		Imm:  int32(r.Uint32()),
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInst(r)
		var buf [InstBytes]byte
		in.Encode(buf[:])
		return Decode(buf[:]) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSrcRegs(t *testing.T) {
	tests := []struct {
		in   Inst
		want int
	}{
		{Inst{Op: MOVI}, 0},
		{Inst{Op: NOP}, 0},
		{Inst{Op: RDPRU}, 0},
		{Inst{Op: JMP}, 0},
		{Inst{Op: MOV, Src1: RDI}, 1},
		{Inst{Op: LOAD, Src1: RSI}, 1},
		{Inst{Op: CLFLUSH, Src1: RBX}, 1},
		{Inst{Op: JZ, Src1: RAX}, 1},
		{Inst{Op: SYSCALL}, 1},
		{Inst{Op: STORE, Src1: RDI, Src2: RAX}, 2},
		{Inst{Op: ADD, Src1: R8, Src2: R9}, 2},
		{Inst{Op: IMUL, Src1: R8, Src2: R9}, 2},
	}
	for _, tc := range tests {
		_, n := tc.in.SrcRegs()
		if n != tc.want {
			t.Errorf("%v: got %d source regs, want %d", tc.in, n, tc.want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !(Inst{Op: LOAD}).IsLoad() || (Inst{Op: STORE}).IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !(Inst{Op: STORE}).IsStore() || (Inst{Op: LOAD}).IsStore() {
		t.Error("IsStore wrong")
	}
	for _, op := range []Op{JMP, JZ, JNZ} {
		if !(Inst{Op: op}).IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	if (Inst{Op: ADD}).IsBranch() {
		t.Error("ADD is not a branch")
	}
	for _, op := range []Op{MFENCE, LFENCE, SFENCE} {
		if !(Inst{Op: op}).IsFence() {
			t.Errorf("%v should be a fence", op)
		}
	}
	writers := []Op{MOVI, MOV, ADD, SUB, AND, OR, XOR, SHL, SHR, ADDI, SUBI,
		ANDI, ORI, XORI, SHLI, SHRI, IMUL, LOAD, RDPRU}
	for _, op := range writers {
		if !(Inst{Op: op}).WritesReg() {
			t.Errorf("%v should write a register", op)
		}
	}
	nonWriters := []Op{STORE, CLFLUSH, MFENCE, JMP, JZ, JNZ, NOP, SYSCALL, HALT}
	for _, op := range nonWriters {
		if (Inst{Op: op}).WritesReg() {
			t.Errorf("%v should not write a register", op)
		}
	}
}

func TestStringCoverage(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		in := Inst{Op: op, Dst: RAX, Src1: RSI, Src2: RDI, Imm: 4}
		if in.String() == "" {
			t.Errorf("empty String for %d", op)
		}
	}
	if RDI.String() != "rdi" || RSI.String() != "rsi" || RAX.String() != "rax" {
		t.Error("register alias names wrong")
	}
	if Reg(99).String() == "" {
		t.Error("out-of-range reg should still print")
	}
}
