package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: MOVI, Dst: RAX, Imm: -42},
		{Op: MOV, Dst: R10, Src1: RDI},
		{Op: ADD, Dst: R8, Src1: R9, Src2: R10},
		{Op: IMUL, Dst: RCX, Src1: RCX, Src2: RDX},
		{Op: LOAD, Dst: RAX, Src1: RSI, Imm: 16},
		{Op: STORE, Src1: RDI, Src2: RAX, Imm: -8},
		{Op: RDPRU, Dst: R11},
		{Op: CLFLUSH, Src1: RBX, Imm: 64},
		{Op: JMP, Imm: 0x401000},
		{Op: JNZ, Src1: RAX, Imm: 0x400010},
		{Op: SYSCALL},
		{Op: HALT},
	}
	var buf [InstBytes]byte
	for _, in := range cases {
		in.Encode(buf[:])
		got := Decode(buf[:])
		if got != in {
			t.Errorf("round trip %v: got %v", in, got)
		}
	}
}

// TestEveryOpcodeRoundTrip drives one representative instruction per opcode
// through encode → decode → re-encode and requires the decoded struct to
// match and the re-encoded bytes to be identical. The completeness check
// against numOps makes adding an opcode without a round-trip case a test
// failure.
func TestEveryOpcodeRoundTrip(t *testing.T) {
	cases := map[Op]Inst{
		BAD:     {Op: BAD},
		MOVI:    {Op: MOVI, Dst: RAX, Imm: -1},
		MOV:     {Op: MOV, Dst: R15, Src1: RDI},
		ADD:     {Op: ADD, Dst: R8, Src1: R9, Src2: R10},
		SUB:     {Op: SUB, Dst: RCX, Src1: RCX, Src2: RDX},
		AND:     {Op: AND, Dst: RBX, Src1: RBX, Src2: RSI},
		OR:      {Op: OR, Dst: RSP, Src1: RBP, Src2: R11},
		XOR:     {Op: XOR, Dst: R12, Src1: R12, Src2: R12},
		SHL:     {Op: SHL, Dst: RAX, Src1: RAX, Src2: RCX},
		SHR:     {Op: SHR, Dst: R14, Src1: R14, Src2: RCX},
		ADDI:    {Op: ADDI, Dst: RAX, Src1: RAX, Imm: 0x7fffffff},
		SUBI:    {Op: SUBI, Dst: RCX, Src1: RCX, Imm: -0x80000000},
		ANDI:    {Op: ANDI, Dst: RDX, Src1: RDX, Imm: 0x3f},
		ORI:     {Op: ORI, Dst: RBX, Src1: RBX, Imm: 1},
		XORI:    {Op: XORI, Dst: RSI, Src1: RSI, Imm: -1},
		SHLI:    {Op: SHLI, Dst: R9, Src1: R9, Imm: 6},
		SHRI:    {Op: SHRI, Dst: R10, Src1: R10, Imm: 63},
		IMUL:    {Op: IMUL, Dst: RBX, Src1: RBX, Src2: R12},
		LOAD:    {Op: LOAD, Dst: RAX, Src1: RSI, Imm: 16},
		STORE:   {Op: STORE, Src1: RDI, Src2: RAX, Imm: -8},
		RDPRU:   {Op: RDPRU, Dst: R11},
		CLFLUSH: {Op: CLFLUSH, Src1: RBX, Imm: 64},
		MFENCE:  {Op: MFENCE},
		LFENCE:  {Op: LFENCE},
		SFENCE:  {Op: SFENCE},
		JMP:     {Op: JMP, Imm: 0x401000},
		JZ:      {Op: JZ, Src1: RCX, Imm: 0x400008},
		JNZ:     {Op: JNZ, Src1: RAX, Imm: 0x400010},
		NOP:     {Op: NOP},
		SYSCALL: {Op: SYSCALL},
		HALT:    {Op: HALT},
	}
	for op := Op(0); op < numOps; op++ {
		if _, ok := cases[op]; !ok {
			t.Errorf("no round-trip case for opcode %d (%v)", op, Inst{Op: op})
		}
	}
	var first, second [InstBytes]byte
	for op, in := range cases {
		in.Encode(first[:])
		got := Decode(first[:])
		if got != in {
			t.Errorf("%v: decode mismatch %v", op, got)
			continue
		}
		got.Encode(second[:])
		if first != second {
			t.Errorf("%v: re-encode not byte-identical: % x vs % x", op, first, second)
		}
	}
}

func TestDecodeInvalidOpcodeIsBAD(t *testing.T) {
	var buf [InstBytes]byte
	buf[0] = 0xff
	if got := Decode(buf[:]); got.Op != BAD {
		t.Errorf("opcode 0xff decoded to %v, want BAD", got.Op)
	}
	buf[0] = byte(numOps)
	if got := Decode(buf[:]); got.Op != BAD {
		t.Errorf("opcode numOps decoded to %v, want BAD", got.Op)
	}
}

// randomInst produces a valid random instruction for property testing.
func randomInst(r *rand.Rand) Inst {
	return Inst{
		Op:   Op(1 + r.Intn(int(numOps)-1)),
		Dst:  Reg(r.Intn(NumRegs)),
		Src1: Reg(r.Intn(NumRegs)),
		Src2: Reg(r.Intn(NumRegs)),
		Imm:  int32(r.Uint32()),
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInst(r)
		var buf [InstBytes]byte
		in.Encode(buf[:])
		return Decode(buf[:]) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSrcRegs(t *testing.T) {
	tests := []struct {
		in   Inst
		want int
	}{
		{Inst{Op: MOVI}, 0},
		{Inst{Op: NOP}, 0},
		{Inst{Op: RDPRU}, 0},
		{Inst{Op: JMP}, 0},
		{Inst{Op: MOV, Src1: RDI}, 1},
		{Inst{Op: LOAD, Src1: RSI}, 1},
		{Inst{Op: CLFLUSH, Src1: RBX}, 1},
		{Inst{Op: JZ, Src1: RAX}, 1},
		{Inst{Op: SYSCALL}, 1},
		{Inst{Op: STORE, Src1: RDI, Src2: RAX}, 2},
		{Inst{Op: ADD, Src1: R8, Src2: R9}, 2},
		{Inst{Op: IMUL, Src1: R8, Src2: R9}, 2},
	}
	for _, tc := range tests {
		_, n := tc.in.SrcRegs()
		if n != tc.want {
			t.Errorf("%v: got %d source regs, want %d", tc.in, n, tc.want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !(Inst{Op: LOAD}).IsLoad() || (Inst{Op: STORE}).IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !(Inst{Op: STORE}).IsStore() || (Inst{Op: LOAD}).IsStore() {
		t.Error("IsStore wrong")
	}
	for _, op := range []Op{JMP, JZ, JNZ} {
		if !(Inst{Op: op}).IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	if (Inst{Op: ADD}).IsBranch() {
		t.Error("ADD is not a branch")
	}
	for _, op := range []Op{MFENCE, LFENCE, SFENCE} {
		if !(Inst{Op: op}).IsFence() {
			t.Errorf("%v should be a fence", op)
		}
	}
	writers := []Op{MOVI, MOV, ADD, SUB, AND, OR, XOR, SHL, SHR, ADDI, SUBI,
		ANDI, ORI, XORI, SHLI, SHRI, IMUL, LOAD, RDPRU}
	for _, op := range writers {
		if !(Inst{Op: op}).WritesReg() {
			t.Errorf("%v should write a register", op)
		}
	}
	nonWriters := []Op{STORE, CLFLUSH, MFENCE, JMP, JZ, JNZ, NOP, SYSCALL, HALT}
	for _, op := range nonWriters {
		if (Inst{Op: op}).WritesReg() {
			t.Errorf("%v should not write a register", op)
		}
	}
}

func TestStringCoverage(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		in := Inst{Op: op, Dst: RAX, Src1: RSI, Src2: RDI, Imm: 4}
		if in.String() == "" {
			t.Errorf("empty String for %d", op)
		}
	}
	if RDI.String() != "rdi" || RSI.String() != "rsi" || RAX.String() != "rax" {
		t.Error("register alias names wrong")
	}
	if Reg(99).String() == "" {
		t.Error("out-of-range reg should still print")
	}
}
