package obs

import (
	"encoding/json"
	"testing"

	"zenspec/internal/isa"
)

func TestNilBusIsDisabled(t *testing.T) {
	var b *Bus
	for _, c := range AllClasses() {
		if b.On(c) {
			t.Fatalf("nil bus On(%v) = true", c)
		}
	}
	if b.Subscribers() != 0 {
		t.Fatalf("nil bus Subscribers = %d", b.Subscribers())
	}
	b.StampCycle(100) // must not panic
	if b.Now() != 0 {
		t.Fatalf("nil bus Now = %d", b.Now())
	}
}

func TestEmptyBusIsDisabled(t *testing.T) {
	b := NewBus()
	for _, c := range AllClasses() {
		if b.On(c) {
			t.Fatalf("empty bus On(%v) = true", c)
		}
	}
}

func TestSubscribeFilterAndCancel(t *testing.T) {
	b := NewBus()
	var got []Event
	cancel := b.Subscribe(ObserverFunc(func(e Event) { got = append(got, e) }),
		Options{Classes: []Class{ClassSquash}})

	if !b.On(ClassSquash) {
		t.Fatal("On(ClassSquash) = false after subscribe")
	}
	if b.On(ClassInst) {
		t.Fatal("On(ClassInst) = true with squash-only subscriber")
	}

	b.Emit(SquashEvent{CPU: 1, Kind: SquashBypass, Insts: 3})
	b.Emit(InstEvent{CPU: 1}) // filtered out
	if len(got) != 1 {
		t.Fatalf("got %d events, want 1", len(got))
	}
	sq, ok := got[0].(SquashEvent)
	if !ok || sq.Kind != SquashBypass {
		t.Fatalf("got %#v, want bypass SquashEvent", got[0])
	}

	cancel()
	cancel() // idempotent
	if b.Subscribers() != 0 || b.On(ClassSquash) {
		t.Fatal("cancel did not detach subscription")
	}
}

func TestEmptyOptionsMeansAllClasses(t *testing.T) {
	b := NewBus()
	n := 0
	b.Subscribe(ObserverFunc(func(Event) { n++ }), Options{})
	for _, c := range AllClasses() {
		if !b.On(c) {
			t.Fatalf("On(%v) = false with unfiltered subscriber", c)
		}
	}
	b.Emit(InstEvent{})
	b.Emit(FaultEvent{Kind: "psfp-evict"})
	if n != 2 {
		t.Fatalf("delivered %d events, want 2", n)
	}
}

func TestStampCycleMonotonic(t *testing.T) {
	b := NewBus()
	b.StampCycle(10)
	b.StampCycle(5) // older stamp must not rewind
	if b.Now() != 10 {
		t.Fatalf("Now = %d, want 10", b.Now())
	}
	b.StampCycle(20)
	if b.Now() != 20 {
		t.Fatalf("Now = %d, want 20", b.Now())
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nils should be nil")
	}
	var a, c int
	oa := ObserverFunc(func(Event) { a++ })
	oc := ObserverFunc(func(Event) { c++ })
	m := Multi(oa, nil, oc)
	m.HandleEvent(InstEvent{})
	if a != 1 || c != 1 {
		t.Fatalf("Multi fan-out a=%d c=%d, want 1/1", a, c)
	}
}

func TestEventNamesAndClasses(t *testing.T) {
	cases := []struct {
		e     Event
		class Class
		name  string
	}{
		{InstEvent{}, ClassInst, "inst"},
		{SquashEvent{Kind: SquashPSF}, ClassSquash, "squash"},
		{ForwardEvent{PSF: true}, ClassForward, "psf-forward"},
		{ForwardEvent{}, ClassForward, "stlf"},
		{PredictEvent{}, ClassPredict, "predict"},
		{PSFPTrainEvent{}, ClassPredict, "psfp-train"},
		{SSBPTransitionEvent{}, ClassPredict, "ssbp-transition"},
		{PredictorEvictEvent{Predictor: "psfp"}, ClassPredict, "psfp-evict"},
		{PredictorFlushEvent{}, ClassPredict, "predictor-flush"},
		{CacheEvent{Kind: "fill"}, ClassCache, "cache-fill"},
		{ProbeEvent{}, ClassProbe, "probe"},
		{ContextSwitchEvent{}, ClassKernel, "context-switch"},
		{FaultEvent{Kind: "ssbp-flip"}, ClassFault, "fault-ssbp-flip"},
	}
	for _, c := range cases {
		if c.e.EventClass() != c.class {
			t.Errorf("%T class = %v, want %v", c.e, c.e.EventClass(), c.class)
		}
		if c.e.EventName() != c.name {
			t.Errorf("%T name = %q, want %q", c.e, c.e.EventName(), c.name)
		}
	}
}

func TestMetricsFold(t *testing.T) {
	m := NewMetrics()
	m.HandleEvent(InstEvent{})
	m.HandleEvent(InstEvent{Transient: true})
	m.HandleEvent(SquashEvent{Kind: SquashBypass, Start: 10, Verify: 42, Insts: 5})
	m.HandleEvent(PredictEvent{PSFPHit: true, Aliasing: true})
	m.HandleEvent(PredictEvent{})
	m.HandleEvent(PSFPTrainEvent{Type: "G", Allocated: true})
	m.HandleEvent(ProbeEvent{Hit: true, Cycles: 40})
	m.HandleEvent(ProbeEvent{Cycles: 300})
	m.HandleEvent(FaultEvent{Kind: "cache-evict"})

	want := map[string]uint64{
		"inst.retired":         1,
		"inst.transient":       1,
		"squash.total":         1,
		"squash.stl-bypass":    1,
		"predict.queries":      2,
		"predict.psfp_hit":     1,
		"predict.aliasing":     1,
		"predict.psfp_train":   1,
		"predict.train_type_G": 1,
		"predict.psfp_alloc":   1,
		"probe.hit":            1,
		"probe.miss":           1,
		"fault.injected":       1,
		"fault.cache-evict":    1,
	}
	for k, v := range want {
		if got := m.Counter(k); got != v {
			t.Errorf("counter %q = %d, want %d", k, got, v)
		}
	}

	s := m.Snapshot()
	h := s.Histograms["squash.window_cycles"]
	if h == nil || h.Count != 1 || h.Sum != 32 || h.Max != 32 {
		t.Fatalf("squash.window_cycles snapshot = %+v", h)
	}
	// 32 has bit length 6 → bucket upper bound 2^6-1 = 63.
	if h.Buckets["63"] != 1 {
		t.Fatalf("bucket 63 = %d, want 1 (buckets %v)", h.Buckets["63"], h.Buckets)
	}
	if s.Text() == "" {
		t.Fatal("Text() empty")
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func(order []Event) []byte {
		m := NewMetrics()
		for _, e := range order {
			m.HandleEvent(e)
		}
		b, err := json.Marshal(m.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	evs := []Event{
		InstEvent{}, ProbeEvent{Hit: true, Cycles: 40},
		SquashEvent{Kind: SquashPSF, Start: 1, Verify: 9, Insts: 2},
		FaultEvent{Kind: "ssbp-flip"},
	}
	rev := []Event{evs[3], evs[2], evs[1], evs[0]}
	a, b := build(evs), build(rev)
	if string(a) != string(b) {
		t.Fatalf("snapshot JSON depends on accumulation order:\n%s\n%s", a, b)
	}
}

func TestRecorderPerfetto(t *testing.T) {
	r := NewRecorder()
	r.HandleEvent(InstEvent{CPU: 0, PC: 0x1000, Inst: isa.Inst{Op: isa.LOAD}, RetiredBy: 7})
	r.HandleEvent(SquashEvent{CPU: 0, Kind: SquashBypass, PC: 0x1008, Start: 3, Verify: 20, Insts: 4})
	r.HandleEvent(PSFPTrainEvent{Cycle: 20, Type: "G", StoreTag: 0x12, LoadTag: 0x34})
	r.HandleEvent(SSBPTransitionEvent{Cycle: 20, Type: "G", StateBefore: "Initialize", StateAfter: "Block"})
	r.HandleEvent(FaultEvent{Cycle: 25, Kind: "psfp-evict", Count: 1})
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}

	out, err := r.Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    int64  `json:"ts"`
			Args  struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("Perfetto output is not JSON: %v", err)
	}
	var complete, meta int
	last := int64(-1)
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
		switch e.Phase {
		case "X":
			complete++
			if e.TS < last {
				t.Fatalf("complete events unsorted: ts %d after %d", e.TS, last)
			}
			last = e.TS
		case "M":
			meta++
			names[e.Args.Name] = true
		}
	}
	if complete != 2 {
		t.Fatalf("complete (X) events = %d, want 2", complete)
	}
	if meta == 0 {
		t.Fatal("no metadata records")
	}
	for _, want := range []string{"load", "squash:stl-bypass", "psfp-train:G", "ssbp:Initialize>Block", "fault-psfp-evict", "cpu0"} {
		if !names[want] {
			t.Errorf("trace missing event %q", want)
		}
	}
}
