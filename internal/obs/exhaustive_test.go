package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"zenspec/internal/pmc"
)

// declaredEventTypes parses the package source and returns the name of every
// type that declares an EventName method — i.e. every concrete event. The
// test below keeps its sample list in lockstep with this set, so adding an
// event type without extending the name/metrics/trace plumbing fails CI.
func declaredEventTypes(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != "EventName" || fd.Recv == nil || len(fd.Recv.List) == 0 {
					continue
				}
				switch rt := fd.Recv.List[0].Type.(type) {
				case *ast.Ident:
					types[rt.Name] = true
				case *ast.StarExpr:
					if id, ok := rt.X.(*ast.Ident); ok {
						types[id.Name] = true
					}
				}
			}
		}
	}
	return types
}

// sampleEvents returns one representative instance per event type, with
// enough fields set that every consumer (names, metrics, trace) produces
// output for it.
func sampleEvents() map[string]Event {
	var counts pmc.Counters
	counts.Inc(pmc.SQStallCycles)
	return map[string]Event{
		"InstEvent":           InstEvent{CPU: 0, PC: 0x400000, Dispatch: 1, Issue: 2, Complete: 5, RetiredBy: 6},
		"SquashEvent":         SquashEvent{Kind: SquashBypass, PC: 0x400008, Start: 10, Verify: 20, Penalty: 200, Insts: 3},
		"ForwardEvent":        ForwardEvent{Cycle: 4, StoreIPA: 0x1000, VA: 0x2000},
		"PredictEvent":        PredictEvent{Cycle: 5, StoreIPA: 0x1000, LoadIPA: 0x1008, Aliasing: true},
		"PSFPTrainEvent":      PSFPTrainEvent{Cycle: 6, Type: "A", Aliasing: true},
		"SSBPTransitionEvent": SSBPTransitionEvent{Cycle: 7, Type: "G", StateBefore: "Block", StateAfter: "Bypass"},
		"PredictorEvictEvent": PredictorEvictEvent{Cycle: 8, Predictor: "psfp"},
		"PredictorFlushEvent": PredictorFlushEvent{Cycle: 9, Predictor: "ssbp", Entries: 4, Cause: "sleep"},
		"CacheEvent":          CacheEvent{Cycle: 10, Kind: "fill", Level: "L1", Line: 0x40},
		"ProbeEvent":          ProbeEvent{Cycle: 11, Slot: 2, Cycles: 30, Threshold: 60, Hit: true},
		"ContextSwitchEvent":  ContextSwitchEvent{Cycle: 12, ToPID: 1, ToName: "p", ToDomain: "user", PSFPFlushed: true},
		"FaultEvent":          FaultEvent{Cycle: 13, Kind: "psfp-evict", Count: 1},
		"PMCEvent":            PMCEvent{Cycle: 14, Counts: counts},
	}
}

// TestEventExhaustiveness is the three-places-in-lockstep gate: every event
// type declared in the package must (1) appear in the sample list, (2) carry
// a stable non-empty name and a valid class, (3) fold into at least one
// metrics-registry key, and (4) render at least one trace event. A new event
// added without a name, metrics key or trace mapping fails here.
func TestEventExhaustiveness(t *testing.T) {
	declared := declaredEventTypes(t)
	if len(declared) == 0 {
		t.Fatal("found no event types; the source scan is broken")
	}
	samples := sampleEvents()
	for name := range declared {
		if _, ok := samples[name]; !ok {
			t.Errorf("event type %s has no sample here: extend sampleEvents and the consumers", name)
		}
	}
	for name := range samples {
		if !declared[name] {
			t.Errorf("sample %s does not correspond to a declared event type", name)
		}
	}
	for name, e := range samples {
		if e.EventName() == "" {
			t.Errorf("%s: empty EventName", name)
		}
		c := e.EventClass()
		if c >= NumClasses {
			t.Errorf("%s: class %d out of range", name, c)
		}
		if c.String() == "class?" {
			t.Errorf("%s: class %d has no String name", name, c)
		}
		m := NewMetrics()
		m.HandleEvent(e)
		if s := m.Snapshot(); len(s.Counters) == 0 && len(s.Histograms) == 0 {
			t.Errorf("%s: Metrics.HandleEvent produced no counters or histograms", name)
		}
		r := NewRecorder()
		r.HandleEvent(e)
		if r.Len() == 0 {
			t.Errorf("%s: Recorder.HandleEvent produced no trace events", name)
		}
	}
}

// TestClassNamesExhaustive asserts every class has a String name and that
// AllClasses covers the full space.
func TestClassNamesExhaustive(t *testing.T) {
	all := AllClasses()
	if len(all) != int(NumClasses) {
		t.Fatalf("AllClasses returned %d classes, want %d", len(all), NumClasses)
	}
	seen := map[string]bool{}
	for _, c := range all {
		s := c.String()
		if s == "class?" {
			t.Errorf("class %d has no String name", c)
		}
		if seen[s] {
			t.Errorf("class name %q duplicated", s)
		}
		seen[s] = true
	}
}
