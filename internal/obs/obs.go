// Package obs is the simulator's observability layer: a structured event bus
// threaded through the pipeline, the predictors, the cache hierarchy, the OS
// model, the side channels and the fault injector, plus the consumers built
// on top of it — a metrics registry (monotonic counters and histograms) and a
// Chrome trace-event / Perfetto exporter.
//
// The design constraint is zero cost when disabled and zero feedback when
// enabled. Every emit site is guarded by Bus.On, which is a branch on a nil
// receiver (or an empty subscriber mask) — a machine booted without an
// observer executes exactly the instructions it did before this package
// existed. An attached observer only ever *reads* simulation state that has
// already been computed; nothing downstream of an event can influence timing,
// predictor state or results, so a run observed and a run unobserved are
// byte-identical (asserted by test).
//
// obs is a leaf package: the simulator's internal packages import it, never
// the other way around (isa and pmc excepted, which import nothing of the
// simulator). Event structs therefore carry plain integers and strings rather
// than simulator types — pmc.Counters rides along as the one typed counter
// namespace (PMCEvent).
package obs

// Class partitions events for subscription filtering. A subscriber names the
// classes it wants; emit sites guard on Bus.On(class) so disabled classes
// cost one mask test.
type Class uint8

// Event classes.
const (
	// ClassInst is one executed instruction, architectural or transient —
	// the stream the deprecated pipeline.Tracer used to carry.
	ClassInst Class = iota
	// ClassSquash is transient-episode bookkeeping: branch mispredictions,
	// memory-speculation rollbacks (types D and G) and fault windows.
	ClassSquash
	// ClassForward is store-to-load data movement: store-queue forwards and
	// predictive store forwards.
	ClassForward
	// ClassPredict is the speculative memory access predictor machinery:
	// PSFP selections and trainings, SSBP counter transitions per the TABLE I
	// state machine, capacity evictions and flushes.
	ClassPredict
	// ClassCache is the cache hierarchy: line fills, capacity evictions and
	// explicit flushes.
	ClassCache
	// ClassProbe is side-channel measurement: Flush+Reload probe verdicts.
	ClassProbe
	// ClassKernel is the OS model: context switches, domain changes and
	// mitigation flushes.
	ClassKernel
	// ClassFault is the deterministic fault injector: one event per injected
	// fault, machine-level and trial-level.
	ClassFault
	// ClassPMC is performance-monitor-counter readout: one delta of the Fig 2
	// counter set per program run, bridging pmc.Counters into the metrics
	// registry and the cycle-attribution profiler.
	ClassPMC
	// NumClasses bounds the class space.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassInst:
		return "inst"
	case ClassSquash:
		return "squash"
	case ClassForward:
		return "forward"
	case ClassPredict:
		return "predict"
	case ClassCache:
		return "cache"
	case ClassProbe:
		return "probe"
	case ClassKernel:
		return "kernel"
	case ClassFault:
		return "fault"
	case ClassPMC:
		return "pmc"
	}
	return "class?"
}

// AllClasses returns every event class, in declaration order.
func AllClasses() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Event is one structured simulation event. Concrete types live in events.go;
// consumers type-switch on them.
type Event interface {
	// EventClass is the subscription class the event belongs to.
	EventClass() Class
	// EventName is a short stable name ("psfp-train", "squash", ...) used by
	// exporters and metrics keys.
	EventName() string
}

// Observer receives events. Implementations attached to machines that run
// trials in parallel (e.g. one Metrics registry shared by a whole experiment
// suite) must be safe for concurrent HandleEvent calls; the per-machine event
// order within one trial is deterministic, the interleaving across trials is
// not.
type Observer interface {
	HandleEvent(e Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(e Event)

// HandleEvent implements Observer.
func (f ObserverFunc) HandleEvent(e Event) { f(e) }

// InstObserver is an optional fast-path extension of Observer for the
// simulator's hottest event. A subscriber that also implements it receives
// ClassInst events through HandleInst with a pointer to a caller-staged
// struct, skipping the interface boxing (and its per-instruction heap
// allocation) that Emit pays. The pointee is reused by the emitter and is
// only valid for the duration of the call: implementations that retain the
// event must copy it (*e).
//
// The delivered value is identical to the InstEvent that Emit would have
// carried; HandleInst(e) must behave exactly like HandleEvent(*e).
type InstObserver interface {
	HandleInst(e *InstEvent)
}

// Options filters a subscription.
type Options struct {
	// Classes selects the event classes delivered to the observer; empty
	// means all classes.
	Classes []Class
}

func (o Options) mask() uint32 {
	if len(o.Classes) == 0 {
		return 1<<NumClasses - 1
	}
	var m uint32
	for _, c := range o.Classes {
		if c < NumClasses {
			m |= 1 << c
		}
	}
	return m
}

type subscriber struct {
	obs  Observer
	inst InstObserver // non-nil when obs also implements the fast path
	mask uint32
	id   uint64
}

// Bus is one machine's event fan-out: a subscriber list with a cached OR of
// all subscriber masks. A nil *Bus is a valid, permanently-disabled bus —
// every component holds a *Bus field and guards emission with On, so an
// unobserved machine pays one nil test per potential event and allocates
// nothing.
//
// Bus is not internally synchronized: a machine emits from its own
// (single-threaded) run loop, and subscriptions are expected to be installed
// between runs, not concurrently with one.
type Bus struct {
	subs   []subscriber
	mask   uint32
	nextID uint64
	// now is the most recent cycle stamp (see StampCycle): components that
	// have no cycle of their own (predictors, caches, the kernel) timestamp
	// their events with it.
	now int64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// On reports whether any subscriber wants class c. It is the emit-site guard:
// safe on a nil bus, one branch plus one mask test when a bus exists.
func (b *Bus) On(c Class) bool {
	return b != nil && b.mask&(1<<c) != 0
}

// Emit delivers e to every subscriber whose mask includes its class. Callers
// guard with On, so Emit may assume b is non-nil.
func (b *Bus) Emit(e Event) {
	m := uint32(1) << e.EventClass()
	for _, s := range b.subs {
		if s.mask&m != 0 {
			s.obs.HandleEvent(e)
		}
	}
}

// EmitInst delivers an instruction event without boxing it: subscribers that
// implement InstObserver get the pointer, everyone else gets the value
// through the ordinary Observer interface. Callers guard with On(ClassInst),
// so EmitInst may assume b is non-nil; e must not be retained past the call.
func (b *Bus) EmitInst(e *InstEvent) {
	const m = uint32(1) << ClassInst
	for i := range b.subs {
		s := &b.subs[i]
		if s.mask&m == 0 {
			continue
		}
		if s.inst != nil {
			s.inst.HandleInst(e)
		} else {
			s.obs.HandleEvent(*e)
		}
	}
}

// Subscribe attaches o with the given options and returns a cancel function
// that detaches exactly this subscription. Subscribing the same observer
// twice creates two independent subscriptions.
func (b *Bus) Subscribe(o Observer, opts Options) (cancel func()) {
	if o == nil {
		return func() {}
	}
	b.nextID++
	id := b.nextID
	inst, _ := o.(InstObserver)
	b.subs = append(b.subs, subscriber{obs: o, inst: inst, mask: opts.mask(), id: id})
	b.recomputeMask()
	return func() {
		for i := range b.subs {
			if b.subs[i].id == id {
				b.subs = append(b.subs[:i], b.subs[i+1:]...)
				break
			}
		}
		b.recomputeMask()
	}
}

func (b *Bus) recomputeMask() {
	var m uint32
	for _, s := range b.subs {
		m |= s.mask
	}
	b.mask = m
}

// Subscribers returns the number of live subscriptions.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	return len(b.subs)
}

// StampCycle records the emitter-side cycle clock. The pipeline stamps it at
// memory operations and predictor verifications so that components without
// their own clock (predictors, caches, kernel, injector) can timestamp the
// events they emit. Safe on a nil bus.
func (b *Bus) StampCycle(cycle int64) {
	if b != nil && cycle > b.now {
		b.now = cycle
	}
}

// Now returns the last stamped cycle (0 on a nil bus).
func (b *Bus) Now() int64 {
	if b == nil {
		return 0
	}
	return b.now
}

// Multi composes observers into one that fans events out in order, skipping
// nils. It returns nil when every argument is nil, so callers can assign the
// result directly to an optional Observer field.
func Multi(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return ObserverFunc(func(e Event) {
		for _, o := range live {
			o.HandleEvent(e)
		}
	})
}
