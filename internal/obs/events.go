package obs

import (
	"zenspec/internal/isa"
	"zenspec/internal/pmc"
)

// Counters is the combined 5-counter predictor state carried by predictor
// events. It mirrors predict.Counters field for field; obs is a leaf package
// and cannot import predict.
type Counters struct {
	C0, C1, C2, C3, C4 int
}

// InstEvent is one executed instruction, architectural or transient — the
// stream the deprecated pipeline.Tracer carried, now one class among many.
// The cycle stamps partition the instruction's lifetime for the top-down
// attribution the profiler performs: dispatch→issue is front-end and operand
// wait, issue→complete is execution (minus SQStall and Replay, which are
// called out separately), complete→retiredBy is in-order retirement wait.
type InstEvent struct {
	CPU  int
	PC   uint64
	IPA  uint64
	Inst isa.Inst
	// Dispatch is the cycle the instruction dispatched into the window.
	Dispatch int64
	// Issue is the cycle it won an execution port (== Dispatch for
	// portless instructions: NOP, fences, jumps).
	Issue int64
	// Complete is the cycle its result was ready (for a squashed-and-replayed
	// load, the completion of the replay).
	Complete int64
	// SQStall counts cycles the instruction (a load) stalled waiting for
	// older store addresses under an aliasing prediction — the per-PC share
	// of the Fig 2 "SQ Stall Cycles" PMC.
	SQStall int64
	// Replay counts cycles spent inside this instruction's own rollback:
	// the transient window plus the replay penalty of a type-D/G squashed
	// load. Zero for instructions that never rolled back.
	Replay int64
	// RetiredBy is the in-order retirement frontier after this instruction
	// (absolute cycles; the core's clock is monotonic across runs).
	RetiredBy int64
	// Transient marks wrong-path execution inside a speculation window.
	Transient bool
}

// EventClass implements Event.
func (InstEvent) EventClass() Class { return ClassInst }

// EventName implements Event.
func (InstEvent) EventName() string { return "inst" }

// SquashKind says which speculation opened a transient window.
type SquashKind uint8

// Squash kinds.
const (
	// SquashBranch is a branch misprediction window.
	SquashBranch SquashKind = iota
	// SquashBypass is a type-G memory-speculation rollback: a load bypassed
	// an older store that in truth aliased.
	SquashBypass
	// SquashPSF is a type-D rollback: predictive store forwarding forwarded
	// the wrong store's data.
	SquashPSF
	// SquashFault is the transient window a faulting load opens before the
	// fault retires.
	SquashFault
)

func (k SquashKind) String() string {
	switch k {
	case SquashBranch:
		return "branch"
	case SquashBypass:
		return "stl-bypass"
	case SquashPSF:
		return "psf-forward"
	case SquashFault:
		return "fault-window"
	}
	return "squash?"
}

// SquashEvent is one transient episode: wrong-path execution from Start until
// the squash at Verify, after which the architectural path resumes (plus a
// rollback penalty for the memory-speculation kinds).
type SquashEvent struct {
	CPU  int
	Kind SquashKind
	// PC is the instruction that opened the window (the mispredicted branch,
	// the bypassing or forwarded-to load).
	PC uint64
	// Start and Verify bound the window in absolute cycles.
	Start, Verify int64
	// Penalty is the refetch delay charged after Verify (the branch-miss or
	// rollback penalty; zero for fault windows, which end the run).
	Penalty int64
	// Insts is how many wrong-path instructions executed inside the window.
	Insts int
}

// EventClass implements Event.
func (SquashEvent) EventClass() Class { return ClassSquash }

// EventName implements Event.
func (SquashEvent) EventName() string { return "squash" }

// ForwardEvent is store data reaching a load: a store-queue forward (STLF) or
// a predictive store forward (PSF, fired before the store's address was even
// generated).
type ForwardEvent struct {
	CPU      int
	Cycle    int64
	StoreIPA uint64
	LoadIPA  uint64 // zero when the forward happened on a replay path
	VA       uint64 // the data address
	PSF      bool
}

// EventClass implements Event.
func (ForwardEvent) EventClass() Class { return ClassForward }

// EventName implements Event.
func (e ForwardEvent) EventName() string {
	if e.PSF {
		return "psf-forward"
	}
	return "stlf"
}

// PredictEvent is one disambiguator consultation: a load went address-ready
// under an older address-unresolved store and the predictors answered.
type PredictEvent struct {
	CPU      int
	Cycle    int64
	StoreIPA uint64
	LoadIPA  uint64
	// Aliasing and PSF are the prediction; Counters the combined state
	// behind it (zero under SSBD, which pins the Block state globally).
	Aliasing bool
	PSF      bool
	// PSFPHit reports whether the pair had a live PSFP entry — the numerator
	// of the PSFP hit rate metric.
	PSFPHit bool
	Counters
}

// EventClass implements Event.
func (PredictEvent) EventClass() Class { return ClassPredict }

// EventName implements Event.
func (PredictEvent) EventName() string { return "predict" }

// PSFPTrainEvent is one PSFP training update at verification time: the
// C0/C1/C2 movement of the TABLE I row the pair executed.
type PSFPTrainEvent struct {
	CPU      int
	Cycle    int64
	StoreTag uint16
	LoadTag  uint16
	// Type is the execution type ("A".."H") the verification classified.
	Type string
	// Aliasing is the ground truth.
	Aliasing bool
	// Before and After are the C0/C1/C2 halves of the counter state (C3/C4
	// ride on the paired SSBPTransitionEvent).
	Before, After Counters
	// Allocated marks a type-G hard retrain creating the entry.
	Allocated bool
}

// EventClass implements Event.
func (PSFPTrainEvent) EventClass() Class { return ClassPredict }

// EventName implements Event.
func (PSFPTrainEvent) EventName() string { return "psfp-train" }

// SSBPTransitionEvent is one SSBP counter transition at verification time:
// the C3/C4 movement and the TABLE I state edge it implements.
type SSBPTransitionEvent struct {
	CPU     int
	Cycle   int64
	LoadTag uint16
	// Type is the execution type ("A".."H") the verification classified.
	Type string
	// Aliasing is the ground truth.
	Aliasing      bool
	Before, After Counters
	// StateBefore and StateAfter name the TABLE I rows the combined counter
	// state occupied around the transition.
	StateBefore, StateAfter string
}

// EventClass implements Event.
func (SSBPTransitionEvent) EventClass() Class { return ClassPredict }

// EventName implements Event.
func (SSBPTransitionEvent) EventName() string { return "ssbp-transition" }

// PredictorEvictEvent is a capacity eviction inside a predictor: PSFP's LRU
// dropping the oldest pair, or SSBP's random replacement overwriting a tag.
type PredictorEvictEvent struct {
	CPU   int
	Cycle int64
	// Predictor is "psfp" or "ssbp".
	Predictor string
	// StoreTag is zero for SSBP evictions (SSBP selects on the load tag only).
	StoreTag uint16
	LoadTag  uint16
	// Counters is the evicted entry's state (the PSFP half or the SSBP half).
	Counters
}

// EventClass implements Event.
func (PredictorEvictEvent) EventClass() Class { return ClassPredict }

// EventName implements Event.
func (e PredictorEvictEvent) EventName() string { return e.Predictor + "-evict" }

// PredictorFlushEvent is a whole-predictor flush with its cause: the
// hardware's context-switch/syscall PSFP flush, the sleep flush of both, or a
// Section VI-B mitigation flush.
type PredictorFlushEvent struct {
	CPU   int
	Cycle int64
	// Predictor is "psfp" or "ssbp".
	Predictor string
	// Entries is how many live entries the flush discarded.
	Entries int
	// Cause is "context-switch", "syscall", "sleep" or "mitigation".
	Cause string
}

// EventClass implements Event.
func (PredictorFlushEvent) EventClass() Class { return ClassPredict }

// EventName implements Event.
func (PredictorFlushEvent) EventName() string { return "predictor-flush" }

// CacheEvent is cache-hierarchy state movement: a line fill on a miss, the
// capacity eviction a fill displaced, or an explicit CLFLUSH invalidation.
type CacheEvent struct {
	Cycle int64
	// Kind is "fill", "evict" or "flush".
	Kind string
	// Level is "L1", "L2", "L3" (empty for whole-hierarchy flushes).
	Level string
	// Line is the 64-byte-aligned physical line address.
	Line uint64
	// Victim is the line a fill displaced; valid when Kind is "evict".
	Victim uint64
}

// EventClass implements Event.
func (CacheEvent) EventClass() Class { return ClassCache }

// EventName implements Event.
func (e CacheEvent) EventName() string { return "cache-" + e.Kind }

// ProbeEvent is one Flush+Reload probe verdict: the timed reload of one slot
// against the calibrated threshold.
type ProbeEvent struct {
	CPU       int
	Cycle     int64
	Slot      int
	VA        uint64
	Cycles    uint64
	Threshold uint64
	Hit       bool
}

// EventClass implements Event.
func (ProbeEvent) EventClass() Class { return ClassProbe }

// EventName implements Event.
func (ProbeEvent) EventName() string { return "probe" }

// ContextSwitchEvent is one OS context switch, with the flush and salt
// consequences the paper reverse engineered riding along.
type ContextSwitchEvent struct {
	CPU   int
	Cycle int64
	// FromPID is zero when the thread was idle before the switch.
	FromPID, ToPID   int
	FromName, ToName string
	// FromDomain/ToDomain are the security domains ("user", "vm", "kernel");
	// a cross-domain switch is where Vulnerability 1 lives.
	FromDomain, ToDomain string
	// PSFPFlushed is always true (the hardware flushes PSFP on every
	// switch); SSBPFlushed only under the flush-on-switch mitigation;
	// SaltRotated under the rotate-salt mitigation.
	PSFPFlushed, SSBPFlushed, SaltRotated bool
}

// EventClass implements Event.
func (ContextSwitchEvent) EventClass() Class { return ClassKernel }

// EventName implements Event.
func (ContextSwitchEvent) EventName() string { return "context-switch" }

// FaultEvent is one injected fault, machine-level (predictor pollution,
// cache eviction noise) or trial-level (forced errors, panics, overruns).
type FaultEvent struct {
	Cycle int64
	// Kind is "psfp-evict", "ssbp-flip", "spurious-train", "cache-evict",
	// "trial-error", "trial-panic" or "trial-overrun".
	Kind string
	// Count is how many units the injection touched (lines flushed, entries
	// trained); 1 for single-target faults.
	Count int
	// Experiment, Trial and Attempt locate a trial-level fault; empty/zero
	// for machine-level ones.
	Experiment string
	Trial      int
	Attempt    int
}

// EventClass implements Event.
func (FaultEvent) EventClass() Class { return ClassFault }

// EventName implements Event.
func (e FaultEvent) EventName() string { return "fault-" + e.Kind }

// PMCEvent is one performance-monitor-counter readout: the delta of the
// Fig 2 counter set accumulated by a single program run on one hardware
// thread. It bridges pmc.Counters into the metrics registry (as "pmc.<key>"
// counters) and gives the profiler the run-level ground truth its per-PC
// attribution must sum to.
type PMCEvent struct {
	CPU   int
	Cycle int64
	// Counts is the per-run delta (pmc.Counters.Delta of the run's start and
	// end snapshots).
	Counts pmc.Counters
}

// EventClass implements Event.
func (PMCEvent) EventClass() Class { return ClassPMC }

// EventName implements Event.
func (PMCEvent) EventName() string { return "pmc" }
