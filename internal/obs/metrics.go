package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"zenspec/internal/pmc"
)

// Metrics is an Observer that folds events into a registry of monotonic
// counters and histograms. It is safe for concurrent HandleEvent calls, so one
// registry can be shared by all parallel trials of an experiment: counter sums
// and histogram bucket sums commute, which keeps Snapshot deterministic at any
// worker count.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]uint64
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry subscribed to nothing; attach it with
// Bus.Subscribe or a Config.Observer field.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]uint64),
		hists:    make(map[string]*Histogram),
	}
}

// Inc adds n to the named counter.
func (m *Metrics) Inc(name string, n uint64) {
	m.mu.Lock()
	m.counters[name] += n
	m.mu.Unlock()
}

// Observe records v in the named histogram.
func (m *Metrics) Observe(name string, v uint64) {
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	h.add(v)
	m.mu.Unlock()
}

// HandleInst implements InstObserver: the boxing-free delivery of the
// per-instruction event. Must stay equivalent to HandleEvent on the value.
func (m *Metrics) HandleInst(e *InstEvent) {
	if e.Transient {
		m.Inc("inst.transient", 1)
	} else {
		m.Inc("inst.retired", 1)
	}
}

// HandleEvent implements Observer.
func (m *Metrics) HandleEvent(e Event) {
	switch ev := e.(type) {
	case InstEvent:
		m.HandleInst(&ev)
	case SquashEvent:
		m.Inc("squash.total", 1)
		m.Inc("squash."+ev.Kind.String(), 1)
		m.Observe("squash.window_insts", uint64(ev.Insts))
		if ev.Verify > ev.Start {
			m.Observe("squash.window_cycles", uint64(ev.Verify-ev.Start))
		}
	case ForwardEvent:
		if ev.PSF {
			m.Inc("forward.psf", 1)
		} else {
			m.Inc("forward.stlf", 1)
		}
	case PredictEvent:
		m.Inc("predict.queries", 1)
		if ev.PSFPHit {
			m.Inc("predict.psfp_hit", 1)
		}
		if ev.Aliasing {
			m.Inc("predict.aliasing", 1)
		}
		if ev.PSF {
			m.Inc("predict.psf", 1)
		}
	case PSFPTrainEvent:
		m.Inc("predict.psfp_train", 1)
		m.Inc("predict.train_type_"+ev.Type, 1)
		if ev.Allocated {
			m.Inc("predict.psfp_alloc", 1)
		}
	case SSBPTransitionEvent:
		m.Inc("predict.ssbp_transition", 1)
		if ev.StateBefore != ev.StateAfter {
			m.Inc("predict.ssbp_state_change", 1)
		}
	case PredictorEvictEvent:
		m.Inc("predict."+ev.Predictor+"_evict", 1)
	case PredictorFlushEvent:
		m.Inc("predict."+ev.Predictor+"_flush", 1)
	case CacheEvent:
		switch ev.Kind {
		case "fill":
			m.Inc("cache.fill."+ev.Level, 1)
		case "evict":
			m.Inc("cache.evict."+ev.Level, 1)
		case "flush":
			m.Inc("cache.flush", 1)
		}
	case ProbeEvent:
		if ev.Hit {
			m.Inc("probe.hit", 1)
		} else {
			m.Inc("probe.miss", 1)
		}
		m.Observe("probe.cycles", ev.Cycles)
	case ContextSwitchEvent:
		m.Inc("kernel.context_switch", 1)
		if ev.FromDomain != ev.ToDomain {
			m.Inc("kernel.domain_change", 1)
		}
	case FaultEvent:
		m.Inc("fault.injected", 1)
		m.Inc("fault."+ev.Kind, 1)
	case PMCEvent:
		// Bridge the Fig 2 PMC namespace into the registry: one monotonic
		// counter per pmc event key, summed over runs (commutative, so the
		// snapshot stays deterministic at any worker count).
		for _, pe := range pmc.Events() {
			if n := ev.Counts.Get(pe); n != 0 {
				m.Inc("pmc."+pe.Key(), n)
			}
		}
	}
}

// Histogram is a power-of-two-bucketed histogram: bucket i counts values v
// with bitlen(v) == i, i.e. bucket 0 holds v==0, bucket i>0 holds
// 2^(i-1) <= v < 2^i. Exponential buckets keep snapshots tiny while still
// separating e.g. cache-hit from cache-miss probe latencies and short from
// long transient windows.
type Histogram struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [65]uint64
}

func (h *Histogram) add(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bits.Len64(v)]++
}

// HistogramSnapshot is the JSON form of a Histogram: sparse buckets keyed by
// their upper bound.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
	// Buckets maps the bucket's inclusive upper bound ("0", "1", "3", "7",
	// ... "2^i - 1") to its count; empty buckets are omitted.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// MetricsSnapshot is a point-in-time copy of a registry, shaped for JSON.
// encoding/json sorts map keys, so snapshots of deterministic runs marshal
// byte-identically regardless of accumulation order.
type MetricsSnapshot struct {
	Counters   map[string]uint64             `json:"counters,omitempty"`
	Histograms map[string]*HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry. Derived rates (e.g. PSFP hit rate) are left to
// consumers: predict.psfp_hit / predict.queries.
func (m *Metrics) Snapshot() *MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &MetricsSnapshot{}
	if len(m.counters) > 0 {
		s.Counters = make(map[string]uint64, len(m.counters))
		for k, v := range m.counters {
			s.Counters[k] = v
		}
	}
	if len(m.hists) > 0 {
		s.Histograms = make(map[string]*HistogramSnapshot, len(m.hists))
		for k, h := range m.hists {
			hs := &HistogramSnapshot{Count: h.Count, Sum: h.Sum, Max: h.Max}
			for i, n := range h.Buckets {
				if n == 0 {
					continue
				}
				if hs.Buckets == nil {
					hs.Buckets = make(map[string]uint64)
				}
				var bound uint64
				if i > 0 {
					bound = 1<<uint(i) - 1
				}
				hs.Buckets[fmt.Sprintf("%d", bound)] = n
			}
			s.Histograms[k] = hs
		}
	}
	return s
}

// Merge folds other into s: counters and histogram fields (counts, sums,
// bucket tallies) are summed, maxima are taken elementwise. Every field is an
// order-independent fold and encoding/json sorts map keys, so merging the
// per-range snapshots of a sharded experiment marshals byte-identically to
// the single snapshot an unsharded run of the same trials would have taken —
// the property the service's trial-range shards rely on.
func (s *MetricsSnapshot) Merge(other *MetricsSnapshot) {
	if other == nil {
		return
	}
	for k, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]uint64, len(other.Counters))
		}
		s.Counters[k] += v
	}
	for k, oh := range other.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]*HistogramSnapshot, len(other.Histograms))
		}
		h := s.Histograms[k]
		if h == nil {
			h = &HistogramSnapshot{}
			s.Histograms[k] = h
		}
		h.Count += oh.Count
		h.Sum += oh.Sum
		if oh.Max > h.Max {
			h.Max = oh.Max
		}
		for bound, n := range oh.Buckets {
			if h.Buckets == nil {
				h.Buckets = make(map[string]uint64, len(oh.Buckets))
			}
			h.Buckets[bound] += n
		}
	}
}

// Counter returns the named counter's value (0 when absent).
func (m *Metrics) Counter(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Text renders the snapshot as sorted "name value" lines for terminal output.
func (s *MetricsSnapshot) Text() string {
	if s == nil {
		return ""
	}
	var out string
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		out += fmt.Sprintf("  %-32s %d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		mean := float64(0)
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		out += fmt.Sprintf("  %-32s n=%d mean=%.1f max=%d\n", k, h.Count, mean, h.Max)
	}
	return out
}
