package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"zenspec/internal/pmc"
)

// Perfetto track layout: one fake "process" per subsystem so the UI groups
// tracks the way the simulator is structured. Hardware threads get
// pid=pidCores with tid=CPU index; the other subsystems get one thread each.
const (
	pidCores      = 1
	pidPredictors = 2
	pidCache      = 3
	pidKernel     = 4

	tidPSFP  = 0
	tidSSBP  = 1
	tidCache = 0
	tidOS    = 0
	tidFault = 1
	tidProbe = 2
)

// traceEvent is one Chrome trace-event object (the JSON Perfetto ingests).
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Recorder is an Observer that buffers events and renders them as a Chrome
// trace-event / Perfetto JSON timeline (one microsecond of trace time per
// simulated cycle). It is safe for concurrent HandleEvent calls, but a
// meaningful single timeline needs Parallelism=1 — cmd/experiments forces
// that when -trace is given.
type Recorder struct {
	mu     sync.Mutex
	events []traceEvent
	seq    []int // emission order, for a stable sort tiebreak
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Len returns the number of recorded trace events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

func (r *Recorder) push(te traceEvent) {
	r.mu.Lock()
	r.seq = append(r.seq, len(r.events))
	r.events = append(r.events, te)
	r.mu.Unlock()
}

// HandleInst implements InstObserver: the boxing-free delivery of the
// per-instruction event. The event is copied into the buffer, never retained.
func (r *Recorder) HandleInst(e *InstEvent) {
	name := e.Inst.Op.String()
	cat := "arch"
	if e.Transient {
		cat = "transient"
	}
	r.push(traceEvent{
		Name: name, Phase: "X", TS: e.RetiredBy, Dur: 1,
		PID: pidCores, TID: e.CPU, Cat: cat,
		Args: map[string]any{
			"pc":  hex(e.PC),
			"ipa": hex(e.IPA),
		},
	})
}

// HandleEvent implements Observer.
func (r *Recorder) HandleEvent(e Event) {
	switch ev := e.(type) {
	case InstEvent:
		r.HandleInst(&ev)
	case SquashEvent:
		dur := ev.Verify - ev.Start
		if dur < 1 {
			dur = 1
		}
		r.push(traceEvent{
			Name: "squash:" + ev.Kind.String(), Phase: "X",
			TS: ev.Start, Dur: dur,
			PID: pidCores, TID: ev.CPU, Cat: "squash",
			Args: map[string]any{
				"pc":    hex(ev.PC),
				"insts": ev.Insts,
			},
		})
	case ForwardEvent:
		r.push(r.instant(ev.EventName(), ev.Cycle, pidCores, ev.CPU, "forward",
			map[string]any{"store_ipa": hex(ev.StoreIPA), "va": hex(ev.VA)}))
	case PredictEvent:
		r.push(r.instant("predict", ev.Cycle, pidPredictors, tidPSFP, "predict",
			map[string]any{
				"store_ipa": hex(ev.StoreIPA),
				"load_ipa":  hex(ev.LoadIPA),
				"aliasing":  ev.Aliasing,
				"psf":       ev.PSF,
				"psfp_hit":  ev.PSFPHit,
			}))
	case PSFPTrainEvent:
		r.push(r.instant("psfp-train:"+ev.Type, ev.Cycle, pidPredictors, tidPSFP, "train",
			map[string]any{
				"store_tag": ev.StoreTag,
				"load_tag":  ev.LoadTag,
				"aliasing":  ev.Aliasing,
				"before":    counterStr(ev.Before),
				"after":     counterStr(ev.After),
				"allocated": ev.Allocated,
			}))
	case SSBPTransitionEvent:
		r.push(r.instant("ssbp:"+ev.StateBefore+">"+ev.StateAfter, ev.Cycle,
			pidPredictors, tidSSBP, "transition",
			map[string]any{
				"load_tag": ev.LoadTag,
				"type":     ev.Type,
				"aliasing": ev.Aliasing,
				"before":   counterStr(ev.Before),
				"after":    counterStr(ev.After),
			}))
	case PredictorEvictEvent:
		tid := tidPSFP
		if ev.Predictor == "ssbp" {
			tid = tidSSBP
		}
		r.push(r.instant(ev.EventName(), ev.Cycle, pidPredictors, tid, "evict",
			map[string]any{"store_tag": ev.StoreTag, "load_tag": ev.LoadTag}))
	case PredictorFlushEvent:
		tid := tidPSFP
		if ev.Predictor == "ssbp" {
			tid = tidSSBP
		}
		r.push(r.instant("flush:"+ev.Cause, ev.Cycle, pidPredictors, tid, "flush",
			map[string]any{"entries": ev.Entries}))
	case CacheEvent:
		args := map[string]any{"line": hex(ev.Line)}
		if ev.Level != "" {
			args["level"] = ev.Level
		}
		if ev.Kind == "evict" {
			args["victim"] = hex(ev.Victim)
		}
		r.push(r.instant(ev.EventName(), ev.Cycle, pidCache, tidCache, "cache", args))
	case ProbeEvent:
		name := "probe:miss"
		if ev.Hit {
			name = "probe:hit"
		}
		r.push(r.instant(name, ev.Cycle, pidCache, tidProbe, "probe",
			map[string]any{
				"slot":      ev.Slot,
				"va":        hex(ev.VA),
				"cycles":    ev.Cycles,
				"threshold": ev.Threshold,
			}))
	case ContextSwitchEvent:
		r.push(r.instant(
			fmt.Sprintf("switch:%s>%s", ev.FromName, ev.ToName),
			ev.Cycle, pidKernel, tidOS, "kernel",
			map[string]any{
				"from_domain":  ev.FromDomain,
				"to_domain":    ev.ToDomain,
				"psfp_flushed": ev.PSFPFlushed,
				"ssbp_flushed": ev.SSBPFlushed,
				"salt_rotated": ev.SaltRotated,
			}))
	case FaultEvent:
		args := map[string]any{"count": ev.Count}
		if ev.Experiment != "" {
			args["experiment"] = ev.Experiment
			args["trial"] = ev.Trial
			args["attempt"] = ev.Attempt
		}
		r.push(r.instant(ev.EventName(), ev.Cycle, pidKernel, tidFault, "fault", args))
	case PMCEvent:
		args := map[string]any{}
		for _, pe := range pmc.Events() {
			if n := ev.Counts.Get(pe); n != 0 {
				args[pe.Key()] = n
			}
		}
		r.push(r.instant("pmc", ev.Cycle, pidCores, ev.CPU, "pmc", args))
	}
}

func (r *Recorder) instant(name string, ts int64, pid, tid int, cat string, args map[string]any) traceEvent {
	return traceEvent{
		Name: name, Phase: "i", TS: ts, PID: pid, TID: tid,
		Scope: "t", Cat: cat, Args: args,
	}
}

func hex(v uint64) string { return fmt.Sprintf("0x%x", v) }

func counterStr(c Counters) string {
	return fmt.Sprintf("%d%d%d%d%d", c.C0, c.C1, c.C2, c.C3, c.C4)
}

// Perfetto renders the recorded events as Chrome trace-event JSON, loadable in
// ui.perfetto.dev or chrome://tracing. Events are stably sorted by timestamp
// (emission order breaks ties), with "M" metadata records naming the tracks.
// Timestamps are microseconds to the viewer; here 1 µs == 1 simulated cycle.
func (r *Recorder) Perfetto() ([]byte, error) {
	r.mu.Lock()
	evs := make([]traceEvent, len(r.events))
	copy(evs, r.events)
	r.mu.Unlock()

	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })

	meta := func(pid, tid int, kind, name string) traceEvent {
		return traceEvent{
			Name: kind, Phase: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name},
		}
	}
	out := []traceEvent{
		meta(pidCores, 0, "process_name", "hw-threads"),
		meta(pidPredictors, 0, "process_name", "predictors"),
		meta(pidPredictors, tidPSFP, "thread_name", "PSFP"),
		meta(pidPredictors, tidSSBP, "thread_name", "SSBP"),
		meta(pidCache, 0, "process_name", "cache"),
		meta(pidCache, tidCache, "thread_name", "hierarchy"),
		meta(pidCache, tidProbe, "thread_name", "flush+reload"),
		meta(pidKernel, 0, "process_name", "kernel"),
		meta(pidKernel, tidOS, "thread_name", "scheduler"),
		meta(pidKernel, tidFault, "thread_name", "fault-injector"),
	}
	// Name each hardware-thread track that actually appears.
	seen := map[int]bool{}
	for _, e := range evs {
		if e.PID == pidCores && !seen[e.TID] {
			seen[e.TID] = true
		}
	}
	tids := make([]int, 0, len(seen))
	for tid := range seen {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		out = append(out, meta(pidCores, tid, "thread_name", fmt.Sprintf("cpu%d", tid)))
	}
	out = append(out, evs...)

	return json.MarshalIndent(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		DisplayUnit string       `json:"displayTimeUnit"`
	}{out, "ns"}, "", " ")
}
