package fault

import (
	"encoding/binary"
	"hash/fnv"
	"time"
)

// Backoff is a deterministic retry-delay schedule: capped exponential growth
// with jitter derived from (Seed, Key, attempt) the same way the trial fault
// streams are. Delay is a pure function of its coordinates — no state, no
// wall clock, no shared RNG — so a retried shard waits the same sequence of
// delays on every replay of a journal, and tests can assert exact schedules.
//
// The jitter follows the "equal jitter" discipline: attempt n waits at least
// half of the capped exponential step Base<<n and at most the full step, the
// fraction in between drawn from the coordinate hash. That bounds both the
// thundering-herd correlation (distinct keys decorrelate) and the worst-case
// added latency (never more than 2x the minimum wait).
type Backoff struct {
	// Base is the attempt-0 step; a non-positive Base disables waiting
	// entirely (every Delay is 0), which is what unit tests want.
	Base time.Duration
	// Max caps the exponential step before jitter; non-positive means
	// uncapped (until the shift saturates).
	Max time.Duration
	// Seed and Key select the jitter stream, mirroring Plan.Seed and the
	// harness's experiment-ID keying: two workers retrying different shards
	// never wait in lockstep, while replaying the same shard reproduces the
	// same waits.
	Seed int64
	Key  string
}

// Delay returns the wait before retry `attempt` (attempt 0 is the first
// retry). Negative attempts return 0.
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 || attempt < 0 {
		return 0
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		d <<= 1
		if d <= 0 || (b.Max > 0 && d >= b.Max) {
			// Saturated (or overflowed past) the cap: stop doubling.
			d = b.Max
			if d <= 0 {
				d = 1 << 62
			}
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	// 53 uniform bits of the coordinate hash, exactly representable in a
	// float64 — the same construction as Plan.TrialFaultAt.
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(b.Seed))
	h.Write(buf[:])
	h.Write([]byte(b.Key))
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt))
	h.Write(buf[:])
	u := float64(h.Sum64()>>11) / float64(1<<53)
	half := d / 2
	return half + time.Duration(u*float64(d-half))
}
