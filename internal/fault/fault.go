// Package fault is the deterministic fault-injection subsystem: a seeded,
// serializable Plan describing how the machine misbehaves, and the injectors
// that apply it to the simulator's predictor state, cache hierarchy, timer,
// and the experiment harness's trial loop.
//
// The design constraint is the same as the harness's: injections may depend
// only on the plan, the machine's own seed, and (for trial-level faults) the
// (experiment, trial, attempt) coordinates — never on goroutine scheduling or
// wall clock. Every machine owns a private injector whose RNG stream is
// consumed serially by that machine's runs, so a faulted suite report stays
// byte-identical at any worker count.
package fault

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"zenspec/internal/cache"
	"zenspec/internal/obs"
	"zenspec/internal/predict"
)

// Plan describes one fault regime. The zero value injects nothing. Rates are
// per run boundary (machine faults) or per attempt (trial faults), in [0, 1].
type Plan struct {
	// Seed decorrelates the injection streams from the experiment seed; two
	// plans differing only in Seed inject at different points.
	Seed int64 `json:"seed,omitempty"`

	// TimerJitter adds deterministic noise in [-J, +J] cycles to every RDPRU
	// reading, on top of any browser-profile jitter already configured —
	// the paper's ~1% RDPRU noise bound, dialed up.
	TimerJitter int64 `json:"timer_jitter,omitempty"`

	// PSFPEvictRate is the probability, at each run boundary, of evicting one
	// random live PSFP entry (co-resident code competing for the 12 entries).
	PSFPEvictRate float64 `json:"psfp_evict_rate,omitempty"`
	// SSBPFlipRate is the probability of perturbing one random live SSBP
	// entry's C3 counter (pollution from other store-load pairs hashing to
	// the same entry).
	SSBPFlipRate float64 `json:"ssbp_flip_rate,omitempty"`
	// SpuriousTrainRate is the probability of inserting a spuriously trained
	// entry at a random tag into each predictor (background processes
	// training entries the attacker never placed).
	SpuriousTrainRate float64 `json:"spurious_train_rate,omitempty"`

	// CacheEvictRate is the probability of a cache-noise event at each run
	// boundary; each event flushes up to CacheEvictLines randomly chosen
	// resident lines — the working-set pressure that defeats naive
	// Flush+Reload probes.
	CacheEvictRate  float64 `json:"cache_evict_rate,omitempty"`
	CacheEvictLines int     `json:"cache_evict_lines,omitempty"`

	// TrialErrorRate forces a harness trial attempt to fail with an error.
	TrialErrorRate float64 `json:"trial_error_rate,omitempty"`
	// TrialPanicRate makes a trial attempt panic (exercising the harness's
	// recover isolation).
	TrialPanicRate float64 `json:"trial_panic_rate,omitempty"`
	// TrialOverrunRate makes a trial attempt overrun its deadline (reported
	// as a deadline error without actually sleeping).
	TrialOverrunRate float64 `json:"trial_overrun_rate,omitempty"`
}

// Default is the documented default intensity: the strongest plan at which
// the STL and CTL attacks still recover 100% of the secret through
// majority-vote calibration (see EXPERIMENTS.md's robustness section).
func Default() Plan {
	return Plan{
		TimerJitter:       6,
		PSFPEvictRate:     0.01,
		SSBPFlipRate:      0.005,
		SpuriousTrainRate: 0.005,
		CacheEvictRate:    0.02,
		CacheEvictLines:   4,
		TrialErrorRate:    0.05,
		TrialPanicRate:    0.02,
		TrialOverrunRate:  0.01,
	}
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool {
	return p.TimerJitter > 0 || p.PSFPEvictRate > 0 || p.SSBPFlipRate > 0 ||
		p.SpuriousTrainRate > 0 || p.CacheEvictRate > 0 ||
		p.TrialErrorRate > 0 || p.TrialPanicRate > 0 || p.TrialOverrunRate > 0
}

// MachineActive reports whether the plan perturbs the simulated machine
// (as opposed to only the harness's trial loop).
func (p Plan) MachineActive() bool {
	return p.TimerJitter > 0 || p.PSFPEvictRate > 0 || p.SSBPFlipRate > 0 ||
		p.SpuriousTrainRate > 0 || p.CacheEvictRate > 0
}

func clampRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// Scale returns the plan with every rate and the jitter amplitude multiplied
// by f (rates clamped to [0, 1]); the escalation axis of the fault-family
// experiments.
func (p Plan) Scale(f float64) Plan {
	p.TimerJitter = int64(float64(p.TimerJitter) * f)
	p.PSFPEvictRate = clampRate(p.PSFPEvictRate * f)
	p.SSBPFlipRate = clampRate(p.SSBPFlipRate * f)
	p.SpuriousTrainRate = clampRate(p.SpuriousTrainRate * f)
	p.CacheEvictRate = clampRate(p.CacheEvictRate * f)
	p.TrialErrorRate = clampRate(p.TrialErrorRate * f)
	p.TrialPanicRate = clampRate(p.TrialPanicRate * f)
	p.TrialOverrunRate = clampRate(p.TrialOverrunRate * f)
	return p
}

// Parse resolves a plan spec: "" or "none"/"off" is the empty plan; "mild",
// "default" and "harsh" are presets (0.5x, 1x and 2x of Default); anything
// starting with '{' is an inline JSON Plan object.
func Parse(s string) (Plan, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "none", "off":
		return Plan{}, nil
	case "mild":
		return Default().Scale(0.5), nil
	case "default":
		return Default(), nil
	case "harsh":
		return Default().Scale(2), nil
	}
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "{") {
		var p Plan
		dec := json.NewDecoder(strings.NewReader(t))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&p); err != nil {
			return Plan{}, fmt.Errorf("fault: invalid plan JSON: %w", err)
		}
		return p, nil
	}
	return Plan{}, fmt.Errorf("fault: unknown plan %q (want none|mild|default|harsh or a JSON object)", s)
}

func (p Plan) String() string {
	if !p.Active() {
		return "fault-plan{none}"
	}
	b, _ := json.Marshal(p)
	return "fault-plan" + string(b)
}

// Stats counts what an injector actually did.
type Stats struct {
	RunBoundaries  uint64 `json:"run_boundaries"`
	PSFPEvictions  uint64 `json:"psfp_evictions"`
	SSBPFlips      uint64 `json:"ssbp_flips"`
	SpuriousTrains uint64 `json:"spurious_trains"`
	CacheEvictions uint64 `json:"cache_evictions"`
}

// Targets is the machine state an injector perturbs at a run boundary.
type Targets struct {
	PSFP  *predict.PSFP
	SSBP  *predict.SSBP
	Cache *cache.Hierarchy
}

// Injector applies a plan's machine-level faults. Each simulated machine
// owns one; its RNG stream is consumed serially by that machine's run
// boundaries, keeping injections reproducible at any worker count.
type Injector struct {
	plan  Plan
	rng   *rand.Rand
	stats Stats
	bus   *obs.Bus
}

// AttachBus connects the injector to an event bus: every machine-level
// injection surfaces as an obs.FaultEvent. Attaching (or not) never changes
// what is injected — the RNG stream is consumed identically either way.
func (in *Injector) AttachBus(b *obs.Bus) { in.bus = b }

func (in *Injector) emit(kind string, count int) {
	if in.bus.On(obs.ClassFault) {
		in.bus.Emit(obs.FaultEvent{Cycle: in.bus.Now(), Kind: kind, Count: count})
	}
}

// Injector derives a machine-level injector for one stream (typically the
// machine's seed); the same (plan, stream) always injects identically.
func (p Plan) Injector(stream int64) *Injector {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.Seed))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(stream))
	h.Write(buf[:])
	return &Injector{plan: p, rng: rand.New(rand.NewSource(int64(h.Sum64() & (1<<63 - 1))))}
}

// Stats returns what has been injected so far.
func (in *Injector) Stats() Stats { return in.stats }

// RunBoundary rolls the machine-level faults once — called by the kernel
// between program runs, where co-resident activity would strike on hardware.
func (in *Injector) RunBoundary(t Targets) {
	in.stats.RunBoundaries++
	if p := in.plan.PSFPEvictRate; p > 0 && t.PSFP != nil && in.rng.Float64() < p {
		if n := t.PSFP.Len(); n > 0 && t.PSFP.EvictAt(in.rng.Intn(n)) {
			in.stats.PSFPEvictions++
			in.emit("psfp-evict", 1)
		}
	}
	if p := in.plan.SSBPFlipRate; p > 0 && t.SSBP != nil && in.rng.Float64() < p {
		// Knock C3 down by 1..4: the drain other pairs' type-F stalls cause.
		if n := t.SSBP.Len(); n > 0 && t.SSBP.FlipAt(in.rng.Intn(n), -(1+in.rng.Intn(4))) {
			in.stats.SSBPFlips++
			in.emit("ssbp-flip", 1)
		}
	}
	if p := in.plan.SpuriousTrainRate; p > 0 && in.rng.Float64() < p {
		if t.SSBP != nil {
			t.SSBP.Put(uint16(in.rng.Intn(4096)), 1+in.rng.Intn(15), in.rng.Intn(4))
		}
		if t.PSFP != nil {
			t.PSFP.Put(uint16(in.rng.Intn(4096)), uint16(in.rng.Intn(4096)),
				1+in.rng.Intn(4), in.rng.Intn(13), 0)
		}
		in.stats.SpuriousTrains++
		in.emit("spurious-train", 1)
	}
	if p := in.plan.CacheEvictRate; p > 0 && t.Cache != nil && in.rng.Float64() < p {
		lines := in.plan.CacheEvictLines
		if lines <= 0 {
			lines = 1
		}
		flushed := t.Cache.FlushRandom(in.rng.Intn, lines)
		in.stats.CacheEvictions += uint64(flushed)
		if flushed > 0 {
			in.emit("cache-evict", flushed)
		}
	}
}

// TrialFault is a harness-level fault decision.
type TrialFault uint8

// Trial fault kinds.
const (
	TrialNone TrialFault = iota
	TrialError
	TrialPanic
	TrialOverrun
)

func (f TrialFault) String() string {
	switch f {
	case TrialNone:
		return "none"
	case TrialError:
		return "error"
	case TrialPanic:
		return "panic"
	case TrialOverrun:
		return "overrun"
	}
	return "fault?"
}

// TrialFaultAt decides which fault (if any) strikes one attempt of one trial
// of one experiment. It is a pure function of (plan, id, trial, attempt) —
// worker count and execution order cannot change it.
func (p Plan) TrialFaultAt(id string, trial, attempt int) TrialFault {
	total := p.TrialErrorRate + p.TrialPanicRate + p.TrialOverrunRate
	if total <= 0 {
		return TrialNone
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.Seed))
	h.Write(buf[:])
	h.Write([]byte(id))
	binary.LittleEndian.PutUint64(buf[:], uint64(trial))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt))
	h.Write(buf[:])
	// 53 uniform bits, exactly representable as a float64 in [0, 1).
	u := float64(h.Sum64()>>11) / float64(1<<53)
	switch {
	case u < p.TrialErrorRate:
		return TrialError
	case u < p.TrialErrorRate+p.TrialPanicRate:
		return TrialPanic
	case u < total:
		return TrialOverrun
	}
	return TrialNone
}
