package fault

import (
	"strings"
	"testing"

	"zenspec/internal/cache"
	"zenspec/internal/predict"
)

func TestParsePresets(t *testing.T) {
	for _, s := range []string{"", "none", "off", " None "} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if p.Active() {
			t.Fatalf("Parse(%q) is active: %v", s, p)
		}
	}
	def, err := Parse("default")
	if err != nil || def != Default() {
		t.Fatalf("Parse(default) = %v, %v", def, err)
	}
	mild, _ := Parse("mild")
	harsh, _ := Parse("harsh")
	if mild.PSFPEvictRate >= def.PSFPEvictRate || harsh.PSFPEvictRate <= def.PSFPEvictRate {
		t.Fatalf("preset ordering broken: mild %v default %v harsh %v",
			mild.PSFPEvictRate, def.PSFPEvictRate, harsh.PSFPEvictRate)
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse(bogus) accepted")
	}
	if _, err := Parse(`{"no_such_knob": 1}`); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
}

// TestStringRoundTrip: the String rendering (minus its prefix) parses back to
// the same plan, so a suite report's fault echo is replayable.
func TestStringRoundTrip(t *testing.T) {
	want := Default()
	want.Seed = 42
	got, err := Parse(strings.TrimPrefix(want.String(), "fault-plan"))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got != want {
		t.Fatalf("round trip: got %v want %v", got, want)
	}
}

func TestScaleClamps(t *testing.T) {
	p := Default().Scale(1000)
	if p.TrialErrorRate != 1 || p.CacheEvictRate != 1 {
		t.Fatalf("rates not clamped to 1: %v", p)
	}
	if z := Default().Scale(0); z.MachineActive() || z.TrialFaultAt("x", 0, 0) != TrialNone {
		t.Fatalf("Scale(0) still active: %v", z)
	}
}

// drive runs n boundaries against a freshly populated machine and returns the
// stats — a deterministic injector yields identical stats for identical
// (plan, stream) pairs and different stats for different streams.
func drive(p Plan, stream int64, n int) Stats {
	in := p.Injector(stream)
	psfp := predict.NewPSFP(0)
	ssbp := predict.NewSSBP(0, nil)
	h := cache.New(cache.DefaultConfig())
	for i := 0; i < 8; i++ {
		psfp.Put(uint16(i), uint16(i+100), 4, 16, 2)
		ssbp.Put(uint16(i), 15, 3)
		h.Touch(uint64(i) * 64)
	}
	for i := 0; i < n; i++ {
		in.RunBoundary(Targets{PSFP: psfp, SSBP: ssbp, Cache: h})
	}
	return in.Stats()
}

func TestInjectorDeterminism(t *testing.T) {
	p := Default()
	a := drive(p, 7, 4000)
	b := drive(p, 7, 4000)
	if a != b {
		t.Fatalf("same (plan, stream) diverged: %+v vs %+v", a, b)
	}
	if c := drive(p, 8, 4000); c == a {
		t.Fatalf("different streams injected identically: %+v", c)
	}
	if a.PSFPEvictions == 0 || a.SSBPFlips == 0 || a.SpuriousTrains == 0 || a.CacheEvictions == 0 {
		t.Fatalf("default plan left a fault class idle over 4000 boundaries: %+v", a)
	}
	// Plan seed decorrelates injection streams even for the same machine seed.
	q := p
	q.Seed = 99
	if d := drive(q, 7, 4000); d == a {
		t.Fatalf("plan seed ignored: %+v", d)
	}
}

func TestTrialFaultAt(t *testing.T) {
	p := Default()
	counts := map[TrialFault]int{}
	const trials, attempts = 500, 4
	for trial := 0; trial < trials; trial++ {
		for attempt := 0; attempt < attempts; attempt++ {
			f := p.TrialFaultAt("exp", trial, attempt)
			if g := p.TrialFaultAt("exp", trial, attempt); g != f {
				t.Fatalf("TrialFaultAt not pure at (%d,%d): %v then %v", trial, attempt, f, g)
			}
			counts[f]++
		}
	}
	n := float64(trials * attempts)
	// Rates are 5% / 2% / 1%; allow generous slack around each.
	checks := []struct {
		kind TrialFault
		rate float64
	}{{TrialError, p.TrialErrorRate}, {TrialPanic, p.TrialPanicRate}, {TrialOverrun, p.TrialOverrunRate}}
	for _, c := range checks {
		got := float64(counts[c.kind]) / n
		if got < c.rate/3 || got > c.rate*3 {
			t.Errorf("%v frequency %.4f, configured %.4f", c.kind, got, c.rate)
		}
	}
	// Different experiment IDs decorrelate the decision.
	same := 0
	for trial := 0; trial < trials; trial++ {
		if p.TrialFaultAt("exp", trial, 0) != TrialNone &&
			p.TrialFaultAt("exp", trial, 0) == p.TrialFaultAt("other", trial, 0) {
			same++
		}
	}
	if same > trials/10 {
		t.Errorf("fault decisions track across experiment IDs: %d/%d", same, trials)
	}
}
