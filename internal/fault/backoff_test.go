package fault

import (
	"testing"
	"time"
)

func TestBackoffDeterministic(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Seed: 7, Key: "job1/fig2"}
	for attempt := 0; attempt < 12; attempt++ {
		first := b.Delay(attempt)
		if again := b.Delay(attempt); again != first {
			t.Fatalf("attempt %d not deterministic: %v then %v", attempt, first, again)
		}
	}
}

func TestBackoffEqualJitterBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Seed: 7, Key: "k"}
	for attempt := 0; attempt < 16; attempt++ {
		step := b.Base << attempt
		if step <= 0 || step > b.Max {
			step = b.Max
		}
		d := b.Delay(attempt)
		if d < step/2 || d > step {
			t.Fatalf("attempt %d delay %v outside [%v, %v]", attempt, d, step/2, step)
		}
	}
}

func TestBackoffGrowsThenCaps(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Seed: 1, Key: "k"}
	// Minimum waits double until the cap: 0.5ms, 1ms, 2ms, 4ms, 4ms, 4ms...
	prevMin := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := b.Delay(attempt)
		if d > b.Max {
			t.Fatalf("attempt %d delay %v exceeds cap %v", attempt, d, b.Max)
		}
		min := d // equal jitter: min possible is step/2, actual >= that
		if attempt <= 3 && min <= prevMin {
			t.Fatalf("attempt %d delay %v did not grow past %v", attempt, d, prevMin)
		}
		prevMin = d
	}
}

func TestBackoffKeysDecorrelate(t *testing.T) {
	a := Backoff{Base: 100 * time.Millisecond, Max: time.Minute, Seed: 7, Key: "shard-a"}
	c := a
	c.Key = "shard-c"
	same := 0
	for attempt := 0; attempt < 16; attempt++ {
		if a.Delay(attempt) == c.Delay(attempt) {
			same++
		}
	}
	if same == 16 {
		t.Fatal("distinct keys wait in lockstep")
	}
}

func TestBackoffZeroAndNegative(t *testing.T) {
	var zero Backoff
	if d := zero.Delay(3); d != 0 {
		t.Fatalf("zero backoff delays %v", d)
	}
	b := Backoff{Base: time.Millisecond, Max: time.Second}
	if d := b.Delay(-1); d != 0 {
		t.Fatalf("negative attempt delays %v", d)
	}
}

func TestBackoffNoOverflow(t *testing.T) {
	b := Backoff{Base: time.Hour, Max: 0, Seed: 3, Key: "k"}
	// With no cap the shift saturates instead of wrapping negative.
	for attempt := 0; attempt < 80; attempt++ {
		if d := b.Delay(attempt); d < 0 {
			t.Fatalf("attempt %d overflowed to %v", attempt, d)
		}
	}
}
