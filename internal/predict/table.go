package predict

import (
	"fmt"
	"strings"
)

// TransitionTable renders the implemented state machine as the paper's
// TABLE I: for every named state, the emitted execution type and counter
// updates for a non-aliasing (n) and an aliasing (a) input, generated from
// the actual Update implementation so documentation can never drift from
// the code.
func TransitionTable() string {
	representatives := []Counters{
		{},                           // Initialize
		{C0: 2, C1: 16},              // Block
		{C2: 2, C4: 1},               // Load From Cache
		{C0: 3, C1: 8, C2: 2},        // PSF Enabled S1
		{C0: 3, C1: 16, C2: 2},       // PSF Disabled S1
		{C1: 16, C3: 5},              // PSF Disabled S2
		{C0: 3, C1: 8, C2: 2, C3: 5}, // PSF Enabled S2
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-28s | %-4s %-34s | %-4s %-34s\n",
		"state", "example counters", "n", "update", "a", "update")
	for _, c := range representatives {
		nNew, nType := c.Update(false)
		aNew, aType := c.Update(true)
		fmt.Fprintf(&sb, "%-16s %-28s | %-4s %-34s | %-4s %-34s\n",
			c.State(), counterString(c),
			nType, deltaString(c, nNew), aType, deltaString(c, aNew))
	}
	return sb.String()
}

func counterString(c Counters) string {
	return fmt.Sprintf("C0=%d C1=%d C2=%d C3=%d C4=%d", c.C0, c.C1, c.C2, c.C3, c.C4)
}

// deltaString prints only the counters an update changed.
func deltaString(old, new Counters) string {
	var parts []string
	add := func(name string, o, n int) {
		if o != n {
			parts = append(parts, fmt.Sprintf("%s:%d->%d", name, o, n))
		}
	}
	add("C0", old.C0, new.C0)
	add("C1", old.C1, new.C1)
	add("C2", old.C2, new.C2)
	add("C3", old.C3, new.C3)
	add("C4", old.C4, new.C4)
	if len(parts) == 0 {
		return "no change"
	}
	return strings.Join(parts, " ")
}
