package predict

// PSFPSize is the reverse-engineered capacity of the PSF predictor: a
// 12-entry fully-associative buffer (Section III-D1, Fig 5's sharp eviction
// step between sizes 11 and 12).
const PSFPSize = 12

// psfpEntry is one PSFP entry: the C0/C1/C2 counters tagged by the hashed
// store and load IPAs.
type psfpEntry struct {
	storeTag, loadTag uint16
	c0, c1, c2        int
}

// PSFP is the Predictive Store Forwarding Predictor: a small fully
// associative buffer with LRU replacement, flushed on context switches.
// Entries are ordered most-recently-used first.
type PSFP struct {
	size    int
	entries []psfpEntry
	// onEvict observes capacity (LRU) evictions only — not Flush and not the
	// fault injector's EvictAt, which are reported by their initiators.
	onEvict func(psfpEntry)
}

// NewPSFP returns an empty PSFP with the given capacity (0 means the
// reverse-engineered default of 12).
func NewPSFP(size int) *PSFP {
	if size == 0 {
		size = PSFPSize
	}
	return &PSFP{size: size, entries: make([]psfpEntry, 0, size)}
}

func (p *PSFP) find(storeTag, loadTag uint16) int {
	for i := range p.entries {
		if p.entries[i].storeTag == storeTag && p.entries[i].loadTag == loadTag {
			return i
		}
	}
	return -1
}

// Get returns the C0, C1, C2 counters for the tagged pair. A missing entry
// reads as zeros and is not allocated. Lookups do not disturb LRU order:
// only Put (i.e. an actual counter update at verification time) promotes.
func (p *PSFP) Get(storeTag, loadTag uint16) (c0, c1, c2 int) {
	if i := p.find(storeTag, loadTag); i >= 0 {
		e := p.entries[i]
		return e.c0, e.c1, e.c2
	}
	return 0, 0, 0
}

// Put stores the counters for the tagged pair, allocating an entry (and
// evicting the LRU entry if full) when the pair is absent and the counters
// are non-zero. The touched entry becomes most recently used.
func (p *PSFP) Put(storeTag, loadTag uint16, c0, c1, c2 int) {
	if i := p.find(storeTag, loadTag); i >= 0 {
		e := p.entries[i]
		e.c0, e.c1, e.c2 = c0, c1, c2
		copy(p.entries[1:i+1], p.entries[:i])
		p.entries[0] = e
		return
	}
	if c0 == 0 && c1 == 0 && c2 == 0 {
		return // nothing to remember
	}
	e := psfpEntry{storeTag: storeTag, loadTag: loadTag, c0: c0, c1: c1, c2: c2}
	if len(p.entries) < p.size {
		p.entries = append(p.entries, psfpEntry{})
	} else if p.onEvict != nil {
		p.onEvict(p.entries[len(p.entries)-1])
	}
	copy(p.entries[1:], p.entries)
	p.entries[0] = e
}

// Contains reports whether the tagged pair currently has an entry.
func (p *PSFP) Contains(storeTag, loadTag uint16) bool {
	return p.find(storeTag, loadTag) >= 0
}

// Len returns the number of live entries.
func (p *PSFP) Len() int { return len(p.entries) }

// Size returns the capacity.
func (p *PSFP) Size() int { return p.size }

// Flush empties the predictor — what the hardware does on a context switch
// (Section IV-A).
func (p *PSFP) Flush() { p.entries = p.entries[:0] }

// EvictAt removes live entry i (0 <= i < Len) — the fault injector's model
// of co-resident code competing for the 12 entries. Reports whether an entry
// was removed.
func (p *PSFP) EvictAt(i int) bool {
	if i < 0 || i >= len(p.entries) {
		return false
	}
	p.entries = append(p.entries[:i], p.entries[i+1:]...)
	return true
}
