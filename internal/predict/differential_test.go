package predict

import (
	"math/rand"
	"testing"
)

// refModel is a trivially correct reference for the Unit: unbounded maps of
// PSFP/SSBP entries keyed by hash, with the same update rules but no
// capacity effects. Differential runs with few distinct pairs (no eviction
// pressure) must match the Unit exactly.
type refModel struct {
	psfp map[[2]uint16][3]int
	ssbp map[uint16][2]int
}

func newRefModel() *refModel {
	return &refModel{psfp: map[[2]uint16][3]int{}, ssbp: map[uint16][2]int{}}
}

func (m *refModel) counters(st, lt uint16) Counters {
	p := m.psfp[[2]uint16{st, lt}]
	s := m.ssbp[lt]
	return Counters{C0: p[0], C1: p[1], C2: p[2], C3: s[0], C4: s[1]}
}

func (m *refModel) verify(st, lt uint16, aliasing bool) ExecType {
	_, present := m.psfp[[2]uint16{st, lt}]
	c := m.counters(st, lt)
	n, ty := c.UpdateWithPresence(aliasing, present)
	if present || ty == TypeG {
		m.psfp[[2]uint16{st, lt}] = [3]int{n.C0, n.C1, n.C2}
	}
	if n.C3 != c.C3 || n.C4 != c.C4 || m.ssbpHas(lt) {
		if n.C3 != 0 || n.C4 != 0 || m.ssbpHas(lt) {
			m.ssbp[lt] = [2]int{n.C3, n.C4}
		}
	}
	return ty
}

func (m *refModel) ssbpHas(lt uint16) bool {
	_, ok := m.ssbp[lt]
	return ok
}

// TestUnitDifferentialMultiPair drives the Unit and the unbounded reference
// with interleaved random executions of several store-load pairs (few
// enough that no physical eviction can occur) and requires identical types
// and counters at every step.
func TestUnitDifferentialMultiPair(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		u := NewUnit(Config{Seed: seed})
		ref := newRefModel()
		// At most 6 distinct pairs sharing 3 load hashes: PSFP (12 entries)
		// and SSBP (10 ways) never evict.
		type pair struct{ st, lt uint16 }
		var pairs []pair
		for i := 0; i < 6; i++ {
			pairs = append(pairs, pair{uint16(100 + i), uint16(200 + i%3)})
		}
		for step := 0; step < 500; step++ {
			p := pairs[r.Intn(len(pairs))]
			aliasing := r.Intn(2) == 0
			q := mkQuery(p.st, p.lt)
			got := u.Verify(q, aliasing)
			want := ref.verify(p.st, p.lt, aliasing)
			if got != want {
				t.Fatalf("seed %d step %d pair %v: unit %v, reference %v", seed, step, p, got, want)
			}
			if gc, wc := u.PeekCounters(q), ref.counters(p.st, p.lt); gc != wc {
				t.Fatalf("seed %d step %d pair %v: counters %+v vs %+v", seed, step, p, gc, wc)
			}
		}
	}
}

// TestUnitPredictNeverMutates: Predict must be read-only.
func TestUnitPredictNeverMutates(t *testing.T) {
	u := NewUnit(Config{Seed: 1})
	q := mkQuery(4, 9)
	u.Verify(q, true) // create some state
	before := u.PeekCounters(q)
	for i := 0; i < 50; i++ {
		u.Predict(q)
	}
	if after := u.PeekCounters(q); after != before {
		t.Errorf("Predict mutated state: %+v -> %+v", before, after)
	}
	if u.PSFP().Len() != 1 || u.SSBP().Len() != 1 {
		t.Error("Predict allocated entries")
	}
}

// TestUnitCrossPairC3Sharing: with two pairs sharing a load hash, aliasing
// activity on one drains/retrains the C3 the other observes, exactly as the
// out-of-place attacks require.
func TestUnitCrossPairC3Sharing(t *testing.T) {
	u := NewUnit(Config{Seed: 2})
	victim := mkQuery(1, 7)
	collider := mkQuery(2, 7) // same load hash
	// Saturate via the victim.
	for i := 0; i < 3; i++ {
		// drain C0 then one aliasing run (G)
		for j := 0; j < 6; j++ {
			u.Verify(victim, false)
		}
		u.Verify(victim, true)
	}
	if c := u.PeekCounters(victim); c.C3 != 15 {
		t.Fatalf("victim C3 = %d", c.C3)
	}
	// The collider drains it one step per non-aliasing stall.
	for i := 0; i < 5; i++ {
		if ty := u.Verify(collider, false); ty != TypeF {
			t.Fatalf("collider run %d: %v, want F", i, ty)
		}
	}
	if c := u.PeekCounters(victim); c.C3 != 10 {
		t.Errorf("victim C3 after 5 collider drains = %d, want 10", c.C3)
	}
}

// TestUnitEvictionInteraction: pushing more than 12 distinct pairs through
// type-G training evicts the oldest PSFP entry but leaves its SSBP state
// intact (different capacities, different structures).
func TestUnitEvictionInteraction(t *testing.T) {
	u := NewUnit(Config{Seed: 3})
	base := mkQuery(0, 0)
	u.Verify(base, true) // G: allocates PSFP and SSBP entries
	baseC := u.PeekCounters(base)
	if baseC.C0 != 4 || baseC.C4 != 1 {
		t.Fatalf("training failed: %+v", baseC)
	}
	for i := 1; i <= 12; i++ {
		u.Verify(mkQuery(uint16(i), uint16(i)), true)
	}
	c := u.PeekCounters(base)
	if c.C0 != 0 || c.C1 != 0 || c.C2 != 0 {
		t.Errorf("PSFP entry should be LRU-evicted: %+v", c)
	}
	// SSBP is 10-way with random replacement; the base tag may or may not
	// survive 12 more inserts, but the structure must still answer.
	if u.SSBP().Len() != u.SSBP().Ways() {
		t.Errorf("SSBP should be full: %d/%d", u.SSBP().Len(), u.SSBP().Ways())
	}
}
