package predict

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// seq converts a compact spec like "7n 1a" into inputs; helper for the φ
// notation. Each field is <count><n|a>.
func seq(counts ...int) []bool {
	// counts alternates: positive = n repeated, negative = a repeated.
	var out []bool
	for _, c := range counts {
		if c >= 0 {
			for i := 0; i < c; i++ {
				out = append(out, false)
			}
		} else {
			for i := 0; i < -c; i++ {
				out = append(out, true)
			}
		}
	}
	return out
}

// types converts a compact expected-type spec: pairs of (count, type).
func types(pairs ...interface{}) []ExecType {
	var out []ExecType
	for i := 0; i < len(pairs); i += 2 {
		n := pairs[i].(int)
		t := pairs[i+1].(ExecType)
		for j := 0; j < n; j++ {
			out = append(out, t)
		}
	}
	return out
}

func runPhi(t *testing.T, inputs []bool, want []ExecType) {
	t.Helper()
	_, got := RunSequence(Counters{}, inputs)
	if len(got) != len(want) {
		t.Fatalf("length mismatch: got %d types, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("step %d: got %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestPhiPaperSequence1 is the paper's Section III-B2 example:
// φ(n,a,7n) = (H,G,4E,3H).
func TestPhiPaperSequence1(t *testing.T) {
	runPhi(t, seq(1, -1, 7), types(1, TypeH, 1, TypeG, 4, TypeE, 3, TypeH))
}

// TestPhiPaperSequence2 is the second Section III-B2 example:
// φ(a,4n,a,4n,a,16n) = (G,4E,G,4E,G,15F,H). This is the sequence that pins
// down both of our TABLE I corrections (C4 pre-increment, F decays C0).
func TestPhiPaperSequence2(t *testing.T) {
	runPhi(t, seq(-1, 4, -1, 4, -1, 16),
		types(1, TypeG, 4, TypeE, 1, TypeG, 4, TypeE, 1, TypeG, 15, TypeF, 1, TypeH))
}

// TestPhi7n1aTraining is the (7n,a) x3 prefix used throughout Sections III-IV:
// φ(7n,a,7n,a,7n,a) = (7H,G,4E,3H,G,4E,3H,G) and leaves C3=15, C4=3.
func TestPhi7n1aTraining(t *testing.T) {
	c, got := RunSequence(Counters{}, seq(7, -1, 7, -1, 7, -1))
	want := types(7, TypeH, 1, TypeG, 4, TypeE, 3, TypeH, 1, TypeG, 4, TypeE, 3, TypeH, 1, TypeG)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: got %v want %v", i, got[i], want[i])
		}
	}
	if c.C3 != 15 || c.C4 != 3 {
		t.Errorf("after SSBP training: C3=%d C4=%d, want 15, 3", c.C3, c.C4)
	}
	if c.C0 != MaxC0 || c.C1 != MaxC1 || c.C2 != MaxC2 {
		t.Errorf("after training: C0=%d C1=%d C2=%d", c.C0, c.C1, c.C2)
	}
	// Probing with 32n must drain through F types back to H (the paper's
	// SSBP probe sequence).
	_, probe := RunSequence(c, seq(32))
	fCount, sawH := 0, false
	for _, ty := range probe {
		switch ty {
		case TypeF:
			fCount++
		case TypeH:
			sawH = true
		}
	}
	if fCount != 15 {
		t.Errorf("probe saw %d F types, want 15", fCount)
	}
	if !sawH {
		t.Error("probe never reached H")
	}
}

// TestPSFTrainingSequence is the Section IV-A PSFP training sequence
// (7n,a,7n,a,7n,5a,n,4a,n,3a): it must leave the pair predicted aliasing so
// that probing with 5n shows stall types before H (the isolation probe).
func TestPSFTrainingSequence(t *testing.T) {
	c, _ := RunSequence(Counters{}, seq(7, -1, 7, -1, 7, -5, 1, -4, 1, -3))
	if !c.PredictAliasing() {
		t.Fatalf("training left non-aliasing prediction: %+v", c)
	}
	_, probe := RunSequence(c, seq(5))
	stalls := 0
	for _, ty := range probe {
		if ty == TypeE || ty == TypeF {
			stalls++
		}
	}
	if stalls < 3 {
		t.Errorf("probe types %v: want >=3 stall types before H", probe)
	}
	if probe[len(probe)-1] == TypeE || probe[len(probe)-1] == TypeF {
		// With C0<=4 the 5th probe must no longer be driven by C0 alone.
		_, more := RunSequence(c, seq(40))
		if more[len(more)-1] != TypeH {
			t.Errorf("prediction never drains to H: %v", more)
		}
	}
}

// TestPSFEnableAfter4a checks Section III-B3: "The store forwarding becomes
// aggressive after executing at least (4a)" — from a trained state, aliasing
// executions drop C1 below 12 and PSF fires (type C on the next a, type D on
// the next n).
func TestPSFEnableAfter4a(t *testing.T) {
	c, _ := RunSequence(Counters{}, seq(7, -1)) // C0=4,C1=16,C2=2
	c, _ = RunSequence(c, seq(-5))              // 5 aliasing: C1 16->11
	if !c.PSFEnabled() {
		t.Fatalf("PSF should be enabled after 5a: %+v", c)
	}
	n, ty := c.Update(true)
	if ty != TypeC {
		t.Errorf("aliasing in PSF-enabled state: got %v, want C", ty)
	}
	_, ty = n.Update(false)
	if ty != TypeD {
		t.Errorf("non-aliasing in PSF-enabled state: got %v, want D (rollback)", ty)
	}
}

// TestBlockStateAfterTwoD checks "A block state is triggered after type D
// occurs twice": two D rollbacks exhaust C2 and pin the entry.
func TestBlockStateAfterTwoD(t *testing.T) {
	c, _ := RunSequence(Counters{}, seq(7, -1, -5)) // PSF enabled
	var ty ExecType
	dCount := 0
	for i := 0; i < 20 && dCount < 2; i++ {
		if c.PSFEnabled() {
			c, ty = c.Update(false)
			if ty != TypeD {
				t.Fatalf("expected D, got %v at %+v", ty, c)
			}
			dCount++
		} else {
			c, _ = c.Update(true) // re-enable PSF by dropping C1
		}
	}
	if c.C2 != 0 {
		t.Fatalf("after two Ds C2=%d, want 0 (block)", c.C2)
	}
	if c.State() != "Block" {
		t.Fatalf("state %q, want Block (%+v)", c.State(), c)
	}
	// Block state: no changes ever, φ(n)=E, φ(a)=A.
	n1, t1 := c.Update(false)
	n2, t2 := c.Update(true)
	if t1 != TypeE || t2 != TypeA {
		t.Errorf("block outcomes: n->%v a->%v, want E, A", t1, t2)
	}
	if n1 != c || n2 != c {
		t.Error("block state must not change counters")
	}
}

// TestTable1RowOutcomes spot-checks each TABLE I row's (type, update) pair.
func TestTable1RowOutcomes(t *testing.T) {
	tests := []struct {
		name     string
		c        Counters
		aliasing bool
		wantT    ExecType
		want     Counters
	}{
		{"init-n", Counters{}, false, TypeH, Counters{}},
		{"init-a", Counters{}, true, TypeG, Counters{C0: 4, C1: 16, C2: 2, C4: 1}},
		{"init-a-c4sat", Counters{C4: 2}, true, TypeG, Counters{C0: 4, C1: 16, C2: 2, C3: 15, C4: 3}},
		{"block-n", Counters{C0: 2, C1: 16}, false, TypeE, Counters{C0: 2, C1: 16}},
		{"block-a", Counters{C0: 2, C1: 16}, true, TypeA, Counters{C0: 2, C1: 16}},
		{"loadfromcache-n", Counters{C2: 2, C4: 1}, false, TypeH, Counters{C2: 2, C4: 1}},
		{"loadfromcache-a", Counters{C2: 2, C4: 1}, true, TypeG, Counters{C0: 4, C1: 16, C2: 2, C4: 2}},
		{"psfen-s1-n", Counters{C0: 3, C1: 8, C2: 2}, false, TypeD, Counters{C0: 2, C1: 12, C2: 1}},
		{"psfen-s1-a", Counters{C0: 3, C1: 8, C2: 2}, true, TypeC, Counters{C0: 3, C1: 7, C2: 2}},
		{"psfen-s1-a-c1cond", Counters{C0: 3, C1: 7, C2: 2}, true, TypeC, Counters{C0: 4, C1: 6, C2: 2}},
		{"psfdis-s1-n", Counters{C0: 3, C1: 16, C2: 2}, false, TypeE, Counters{C0: 2, C1: 16, C2: 2}},
		{"psfdis-s1-a", Counters{C0: 3, C1: 15, C2: 2}, true, TypeA, Counters{C0: 4, C1: 14, C2: 2}},
		{"psfdis-s2-n", Counters{C1: 16, C3: 5}, false, TypeF, Counters{C1: 16, C3: 4}},
		{"psfdis-s2-n-decaysC0", Counters{C0: 2, C1: 16, C2: 2, C3: 5}, false, TypeF, Counters{C0: 1, C1: 16, C2: 2, C3: 4}},
		{"psfdis-s2-a-c0zero", Counters{C1: 16, C3: 5}, true, TypeB, Counters{C1: 15, C3: 21}},
		{"psfdis-s2-a-c0pos", Counters{C0: 2, C1: 16, C2: 2, C3: 5}, true, TypeB, Counters{C0: 2, C1: 15, C2: 2, C3: 4}},
		// Note: row 7 (PSF Enabled S2) does not touch C2 — only the S1 row
		// consumes the PSF credit.
		{"psfen-s2-n", Counters{C0: 3, C1: 8, C2: 2, C3: 5}, false, TypeD, Counters{C0: 2, C1: 12, C2: 2, C3: 3}},
		{"psfen-s2-a", Counters{C0: 3, C1: 8, C2: 2, C3: 5}, true, TypeC, Counters{C0: 3, C1: 7, C2: 2, C3: 4}},
	}
	for _, tc := range tests {
		got, ty := tc.c.Update(tc.aliasing)
		if ty != tc.wantT {
			t.Errorf("%s: type %v, want %v", tc.name, ty, tc.wantT)
		}
		if got != tc.want {
			t.Errorf("%s: counters %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestUpdateInvariants property-checks counter bounds and type consistency
// over long random sequences (the paper's ">99.8% of random sequences"
// validation — our machine is the reference, so it must hold for 100%).
func TestUpdateInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := Counters{}
		for i := 0; i < 400; i++ {
			aliasing := r.Intn(2) == 0
			predA := c.PredictAliasing()
			psf := c.PSFEnabled()
			n, ty := c.Update(aliasing)
			if !n.Valid() {
				t.Logf("invalid counters %+v after %+v", n, c)
				return false
			}
			// The emitted type must agree with the prediction/truth split.
			if ty.PredictedAliasing() != predA || ty.TruthAliasing() != aliasing {
				t.Logf("type %v inconsistent: pred=%v truth=%v at %+v", ty, predA, aliasing, c)
				return false
			}
			// PSF fire types (C, D) exactly when PSFEnabled and predicted aliasing.
			psfType := ty == TypeC || ty == TypeD
			if psfType != (psf && predA) {
				t.Logf("PSF mismatch: type %v, psf=%v at %+v", ty, psf, c)
				return false
			}
			c = n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestUpdateWithPresence checks the TABLE II C3-drain behaviour: an aliasing
// stall on a pair WITHOUT its own PSFP entry decrements C3, while a pair
// whose PSFP entry exists with C0=0 retrains C3 by +16. This is what makes
// φ(6a_0^1) = 6 stalls drain C3 from 15 to 9 in the paper's experiment.
func TestUpdateWithPresence(t *testing.T) {
	c := Counters{C1: 16, C3: 15}
	// No PSFP entry: each aliasing stall drains C3 by one.
	n, ty := c.UpdateWithPresence(true, false)
	if ty != TypeB || n.C3 != 14 {
		t.Errorf("absent entry: type %v C3 %d, want B, 14", ty, n.C3)
	}
	for i := 0; i < 5; i++ {
		n, _ = n.UpdateWithPresence(true, false)
	}
	if n.C3 != 9 {
		t.Errorf("after 6 a_0^1: C3 = %d, want 9", n.C3)
	}
	// Present entry with drained C0: the +16 retrain burst.
	n2, ty2 := c.UpdateWithPresence(true, true)
	if ty2 != TypeB || n2.C3 != 31 {
		t.Errorf("present entry, C0=0: type %v C3 %d, want B, 31", ty2, n2.C3)
	}
	// Present entry with C0>0: decrement.
	c3 := Counters{C0: 2, C1: 16, C2: 2, C3: 15}
	n3, _ := c3.UpdateWithPresence(true, true)
	if n3.C3 != 14 {
		t.Errorf("present entry, C0>0: C3 %d, want 14", n3.C3)
	}
}

// TestC3Saturation checks the C3 <= 32 footnote: repeated aliasing with
// C0 == 0 raises C3 by 16 but never beyond 32.
func TestC3Saturation(t *testing.T) {
	c := Counters{C1: 16, C3: 30}
	c, _ = c.Update(true)
	if c.C3 != 32 {
		t.Errorf("C3 = %d, want saturated 32", c.C3)
	}
	c, ty := c.Update(true)
	if c.C3 != 32 || ty != TypeB {
		t.Errorf("C3 = %d type %v, want 32, B", c.C3, ty)
	}
}

// TestDrainTimes checks the prose claims: "at least (4n) is required when C4
// is smaller than 3. Otherwise, at least (15n) is required if C4 reaches 3."
func TestDrainTimes(t *testing.T) {
	// C4 < 3: one G, then count n's until H.
	c, _ := RunSequence(Counters{}, seq(-1))
	n := 0
	for {
		var ty ExecType
		c, ty = c.Update(false)
		if ty == TypeH {
			break
		}
		n++
	}
	if n != 4 {
		t.Errorf("drain after single G took %d stalls, want 4", n)
	}
	// C4 == 3: the third G sets C3=15; drain needs 15.
	c, _ = RunSequence(Counters{}, seq(-1, 4, -1, 4, -1))
	n = 0
	for {
		var ty ExecType
		c, ty = c.Update(false)
		if ty == TypeH {
			break
		}
		n++
	}
	if n != 15 {
		t.Errorf("drain after third G took %d stalls, want 15", n)
	}
}

func TestExecTypeHelpers(t *testing.T) {
	if !TypeD.Rollback() || !TypeG.Rollback() || TypeA.Rollback() {
		t.Error("Rollback wrong")
	}
	if TypeH.String() != "H" || TypeA.String() != "A" {
		t.Error("String wrong")
	}
	if ExecType(99).String() == "" {
		t.Error("out-of-range type should print")
	}
	if !(Counters{}).Zero() || (Counters{C3: 1}).Zero() {
		t.Error("Zero wrong")
	}
}

func TestStateNames(t *testing.T) {
	cases := map[string]Counters{
		"Initialize":    {},
		"LoadFromCache": {C2: 1},
		"Block":         {C0: 1, C1: 16},
		"PSFEnabledS1":  {C0: 1, C1: 4, C2: 1},
		"PSFDisabledS1": {C0: 1, C1: 16, C2: 1},
		"PSFEnabledS2":  {C0: 1, C1: 4, C2: 1, C3: 1},
		"PSFDisabledS2": {C1: 16, C3: 1},
	}
	for want, c := range cases {
		if got := c.State(); got != want {
			t.Errorf("State(%+v) = %q, want %q", c, got, want)
		}
	}
}
