package predict

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestHashBitStructure verifies output bit i is the XOR of IPA bits at
// stride 12 (Section III-C2).
func TestHashBitStructure(t *testing.T) {
	for i := 0; i < HashBits; i++ {
		for group := 0; group < 4; group++ {
			bit := uint(i + 12*group)
			if bit >= 48 {
				continue
			}
			ipa := uint64(1) << bit
			want := uint16(1) << i
			if got := Hash48(ipa); got != want {
				t.Errorf("Hash48(1<<%d) = %#x, want %#x", bit, got, want)
			}
		}
	}
}

// TestHashLinearity: the hash is linear over XOR, the property the paper
// exploits in Fig 4 — colliding address pairs have identical XOR values at
// bit stride 12.
func TestHashLinearity(t *testing.T) {
	f := func(a, b uint64) bool {
		return Hash48(a^b) == Hash48(a)^Hash48(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFig4CollidingPairsHaveStride12XOR reproduces the Fig 4 observation:
// for any two colliding addresses, the XOR of the addresses folds to zero at
// stride 12 (grouped bits have even parity).
func TestFig4CollidingPairsHaveStride12XOR(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := r.Uint64() & ((1 << 48) - 1)
		// Construct a collider: flip two bits 12 apart.
		bit := uint(r.Intn(36))
		b := a ^ (1 << bit) ^ (1 << (bit + 12))
		if Hash48(a) != Hash48(b) {
			t.Fatalf("constructed pair %#x/%#x does not collide", a, b)
		}
		x := a ^ b
		folded := uint16((x ^ x>>12 ^ x>>24 ^ x>>36) & (HashEntries - 1))
		if folded != 0 {
			t.Fatalf("colliding pair XOR folds to %#x, want 0", folded)
		}
	}
}

// TestCollidingOffsetAlwaysExists is the Section IV-B1 proof: for any target
// hash and any physical frame there is a page offset that collides, hence at
// most 4096 attempts suffice.
func TestCollidingOffsetAlwaysExists(t *testing.T) {
	f := func(pfnRaw uint64, target uint16) bool {
		pfn := pfnRaw & ((1 << 36) - 1)
		target &= HashEntries - 1
		off := CollidingOffset(pfn, target)
		if off >= 1<<12 {
			return false
		}
		ipa := pfn<<12 | uint64(off)
		return Hash48(ipa) == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestHashDistribution sanity-checks that random IPAs spread over the 4096
// buckets (no catastrophic bias).
func TestHashDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	counts := make(map[uint16]int)
	const n = 1 << 16
	for i := 0; i < n; i++ {
		counts[Hash48(r.Uint64()&((1<<48)-1))]++
	}
	// Expected ~16 per bucket; fail only on gross skew.
	for h, c := range counts {
		if c > 64 {
			t.Fatalf("bucket %#x has %d hits (gross bias)", h, c)
		}
	}
	if len(counts) < HashEntries/2 {
		t.Fatalf("only %d buckets hit", len(counts))
	}
}
