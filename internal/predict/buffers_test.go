package predict

import (
	"math/rand"
	"testing"
)

func TestPSFPMissReadsZero(t *testing.T) {
	p := NewPSFP(0)
	if c0, c1, c2 := p.Get(1, 2); c0 != 0 || c1 != 0 || c2 != 0 {
		t.Error("missing entry should read zero")
	}
	if p.Len() != 0 {
		t.Error("Get must not allocate")
	}
}

func TestPSFPPutGet(t *testing.T) {
	p := NewPSFP(0)
	p.Put(1, 2, 4, 16, 2)
	if c0, c1, c2 := p.Get(1, 2); c0 != 4 || c1 != 16 || c2 != 2 {
		t.Errorf("got %d,%d,%d", c0, c1, c2)
	}
	// Same load tag, different store tag is a different entry.
	if c0, _, _ := p.Get(3, 2); c0 != 0 {
		t.Error("store tag must participate in selection")
	}
	p.Put(1, 2, 3, 16, 2)
	if c0, _, _ := p.Get(1, 2); c0 != 3 {
		t.Error("update in place failed")
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d, want 1", p.Len())
	}
}

func TestPSFPAllZeroPutDoesNotAllocate(t *testing.T) {
	p := NewPSFP(0)
	p.Put(5, 6, 0, 0, 0)
	if p.Len() != 0 {
		t.Error("all-zero put should not allocate")
	}
}

// TestPSFPEvictionStepAt12 is the heart of Fig 5's PSFP curve: a trained
// base entry survives 11 distinct fills and is evicted by the 12th.
func TestPSFPEvictionStepAt12(t *testing.T) {
	for k := 8; k <= 14; k++ {
		p := NewPSFP(0)
		p.Put(0, 0, 4, 16, 2) // base entry
		for i := 1; i <= k; i++ {
			p.Put(uint16(i), uint16(i), 4, 16, 2)
		}
		evicted := !p.Contains(0, 0)
		if k <= 11 && evicted {
			t.Errorf("k=%d: base evicted too early", k)
		}
		if k >= 12 && !evicted {
			t.Errorf("k=%d: base should be evicted", k)
		}
	}
}

func TestPSFPLRUPromotionOnPut(t *testing.T) {
	p := NewPSFP(2)
	p.Put(1, 1, 1, 0, 0)
	p.Put(2, 2, 1, 0, 0)
	p.Put(1, 1, 2, 0, 0) // promote entry 1
	p.Put(3, 3, 1, 0, 0) // must evict entry 2
	if !p.Contains(1, 1) || p.Contains(2, 2) || !p.Contains(3, 3) {
		t.Error("LRU promotion on Put failed")
	}
}

func TestPSFPFlush(t *testing.T) {
	p := NewPSFP(0)
	p.Put(1, 1, 4, 0, 0)
	p.Flush()
	if p.Len() != 0 || p.Contains(1, 1) {
		t.Error("flush failed")
	}
	if p.Size() != PSFPSize {
		t.Errorf("Size = %d", p.Size())
	}
}

func TestSSBPMissReadsZero(t *testing.T) {
	s := NewSSBP(0, nil)
	if c3, c4 := s.Get(7); c3 != 0 || c4 != 0 {
		t.Error("missing entry should read zero")
	}
}

func TestSSBPPutGetUpdate(t *testing.T) {
	s := NewSSBP(0, nil)
	s.Put(7, 15, 3)
	if c3, c4 := s.Get(7); c3 != 15 || c4 != 3 {
		t.Errorf("got %d,%d", c3, c4)
	}
	s.Put(7, 14, 3)
	if c3, _ := s.Get(7); c3 != 14 {
		t.Error("in-place update failed")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Ways() != SSBPWays {
		t.Errorf("Ways = %d", s.Ways())
	}
}

func TestSSBPZeroPutDoesNotAllocate(t *testing.T) {
	s := NewSSBP(0, nil)
	s.Put(9, 0, 0)
	if s.Len() != 0 {
		t.Error("zero put should not allocate")
	}
}

// TestSSBPGradualEviction reproduces the Fig 5 SSBP curve shape: the
// eviction rate grows smoothly with the eviction-set size, exceeding 50% at
// 16 and approaching 90% at 32.
func TestSSBPGradualEviction(t *testing.T) {
	rate := func(k int) float64 {
		evictions := 0
		const trials = 400
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(trial*1000 + k)))
			s := NewSSBP(0, rng)
			s.Put(0, 15, 3) // base entry
			for i := 1; i <= k; i++ {
				s.Put(uint16(i), 0, 1)
			}
			if !s.Contains(0) {
				evictions++
			}
		}
		return float64(evictions) / trials
	}
	r8, r16, r32, r48 := rate(8), rate(16), rate(32), rate(48)
	if !(r8 < r16 && r16 < r32 && r32 < r48) {
		t.Errorf("eviction rate not monotonic: %v %v %v %v", r8, r16, r32, r48)
	}
	if r16 <= 0.5 {
		t.Errorf("rate at 16 = %v, want > 0.5 (paper: exceeds 50%%)", r16)
	}
	if r32 < 0.8 || r32 > 0.95 {
		t.Errorf("rate at 32 = %v, want ~0.9", r32)
	}
}

func TestSSBPFlushAndSnapshot(t *testing.T) {
	s := NewSSBP(0, nil)
	s.Put(1, 5, 1)
	s.Put(2, 7, 2)
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	seen := map[uint16]int{}
	for _, e := range snap {
		seen[e.Tag] = e.C3
	}
	if seen[1] != 5 || seen[2] != 7 {
		t.Errorf("snapshot contents wrong: %v", snap)
	}
	s.Flush()
	if s.Len() != 0 {
		t.Error("flush failed")
	}
}
