package predict

import (
	"math/rand"
	"strings"
	"testing"
)

// mkQuery builds a query whose store/load IPAs hash to the given tags (using
// page offsets in distinct frames so hashes are directly controllable).
func mkQuery(storeTag, loadTag uint16) Query {
	storeIPA := uint64(CollidingOffset(0x100, storeTag)) | 0x100<<12
	loadIPA := uint64(CollidingOffset(0x200, loadTag)) | 0x200<<12
	return Query{StoreIPA: storeIPA, LoadIPA: loadIPA, StoreIVA: storeIPA, LoadIVA: loadIPA}
}

// trainVerify runs a φ sequence through the unit and returns the types.
func trainVerify(u *Unit, q Query, inputs []bool) []ExecType {
	out := make([]ExecType, len(inputs))
	for i, a := range inputs {
		out[i] = u.Verify(q, a)
	}
	return out
}

func TestUnitMatchesStateMachine(t *testing.T) {
	// A unit driven with a single pair must behave exactly like the bare
	// state machine over random sequences.
	r := rand.New(rand.NewSource(11))
	u := NewUnit(Config{Seed: 1})
	q := mkQuery(3, 5)
	ref := Counters{}
	for i := 0; i < 300; i++ {
		aliasing := r.Intn(2) == 0
		var refType ExecType
		ref, refType = ref.Update(aliasing)
		got := u.Verify(q, aliasing)
		if got != refType {
			t.Fatalf("step %d: unit %v, reference %v", i, got, refType)
		}
		if c := u.PeekCounters(q); c != ref {
			t.Fatalf("step %d: unit counters %+v, reference %+v", i, c, ref)
		}
	}
}

func TestUnitPredictConsistency(t *testing.T) {
	u := NewUnit(Config{Seed: 1})
	q := mkQuery(1, 2)
	if p := u.Predict(q); p.Aliasing || p.PSF {
		t.Error("fresh pair should predict non-aliasing")
	}
	u.Verify(q, true) // G: trains aliasing
	if p := u.Predict(q); !p.Aliasing {
		t.Error("after G the pair should predict aliasing")
	}
	// PSF after dropping C1 below 12 with aliasing runs.
	for i := 0; i < 5; i++ {
		u.Verify(q, true)
	}
	if p := u.Predict(q); !p.PSF {
		t.Errorf("PSF should be enabled after 5 aliasing runs: %+v", p.Counters)
	}
}

// TestUnitC3SharedByLoadTag verifies the TABLE II conclusion: C3/C4 are
// selected by the load IPA only, C0/C1/C2 by both.
func TestUnitC3SharedByLoadTag(t *testing.T) {
	u := NewUnit(Config{Seed: 1})
	base := mkQuery(0, 0)
	// Train to C3=15 on load tag 0.
	trainVerify(u, base, seq(7, -1, 7, -1, 7, -1))
	if c := u.PeekCounters(base); c.C3 != 15 {
		t.Fatalf("training failed: %+v", c)
	}
	// Same load tag, different store tag: shares C3/C4, fresh C0/C1/C2.
	other := mkQuery(9, 0)
	c := u.PeekCounters(other)
	if c.C3 != 15 || c.C4 != 3 {
		t.Errorf("a_0^1 should share SSBP entry: %+v", c)
	}
	if c.C0 != 0 || c.C1 != 0 || c.C2 != 0 {
		t.Errorf("a_0^1 should have fresh PSFP entry: %+v", c)
	}
	// Different load tag: nothing shared.
	far := mkQuery(0, 7)
	if c := u.PeekCounters(far); c.C3 != 0 || c.C0 != 0 {
		t.Errorf("different load tag shares state: %+v", c)
	}
}

// TestUnitSSBD checks Section VI-A: with SSBD all pairs behave as the Block
// state — φ(n)=E, φ(a)=A — and no training happens.
func TestUnitSSBD(t *testing.T) {
	u := NewUnit(Config{SSBD: true, Seed: 1})
	q := mkQuery(1, 1)
	for i := 0; i < 10; i++ {
		if ty := u.Verify(q, false); ty != TypeE {
			t.Fatalf("SSBD φ(n) = %v, want E", ty)
		}
		if ty := u.Verify(q, true); ty != TypeA {
			t.Fatalf("SSBD φ(a) = %v, want A", ty)
		}
	}
	if p := u.Predict(q); !p.Aliasing || p.PSF {
		t.Error("SSBD must predict aliasing without PSF")
	}
	if u.PSFP().Len() != 0 || u.SSBP().Len() != 0 {
		t.Error("SSBD must not train entries")
	}
	if !u.SSBD() {
		t.Error("SSBD getter")
	}
}

// TestUnitPSFDIneffective checks the paper's negative result: setting PSFD
// changes nothing — the predictors continue to function.
func TestUnitPSFDIneffective(t *testing.T) {
	on := NewUnit(Config{PSFD: true, Seed: 1})
	off := NewUnit(Config{Seed: 1})
	q := mkQuery(2, 3)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		aliasing := r.Intn(2) == 0
		if on.Verify(q, aliasing) != off.Verify(q, aliasing) {
			t.Fatal("PSFD changed behaviour; the paper found it does not")
		}
	}
	if !on.PSFD() {
		t.Error("PSFD getter")
	}
	on.SetPSFD(false)
	if on.PSFD() {
		t.Error("SetPSFD")
	}
}

// TestUnitFlushSemantics: context switch flushes PSFP only; sleep flushes
// both (Section IV-A).
func TestUnitFlushSemantics(t *testing.T) {
	u := NewUnit(Config{Seed: 1})
	q := mkQuery(1, 2)
	trainVerify(u, q, seq(7, -1, 7, -1, 7, -1))
	pre := u.PeekCounters(q)
	if pre.C0 == 0 || pre.C3 == 0 {
		t.Fatalf("training failed: %+v", pre)
	}
	u.FlushPSFP() // context switch
	c := u.PeekCounters(q)
	if c.C0 != 0 || c.C1 != 0 || c.C2 != 0 {
		t.Errorf("PSFP survived context switch: %+v", c)
	}
	if c.C3 != pre.C3 || c.C4 != pre.C4 {
		t.Errorf("SSBP must survive context switch: %+v", c)
	}
	u.FlushAll() // sleep
	if c := u.PeekCounters(q); !c.Zero() {
		t.Errorf("sleep must flush everything: %+v", c)
	}
}

func TestUnitSelectionSalt(t *testing.T) {
	u := NewUnit(Config{Seed: 1, SelectionSalt: 0xdeadbeef})
	// With a salt, two IPAs that collide unsalted may no longer collide, but
	// the unit must still be internally consistent.
	q := mkQuery(1, 1)
	trainVerify(u, q, seq(7, -1))
	if c := u.PeekCounters(q); c.C0 != 4 {
		t.Errorf("salted unit broken: %+v", c)
	}
	// The salted hash differs from the unsalted one for most inputs.
	plain := NewUnit(Config{Seed: 1})
	diff := 0
	for ipa := uint64(0); ipa < 64; ipa++ {
		if u.HashIPA(ipa<<12) != plain.HashIPA(ipa<<12) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("salt has no effect on selection")
	}
	plain.SetSelectionSalt(0xdeadbeef)
	if plain.HashIPA(0x1234) != u.HashIPA(0x1234) {
		t.Error("SetSelectionSalt mismatch")
	}
}

func TestUnitStats(t *testing.T) {
	u := NewUnit(Config{Seed: 1})
	q := mkQuery(1, 1)
	u.Predict(q)
	u.Verify(q, false) // H
	u.Verify(q, true)  // G
	s := u.Stats()
	if s.Predicts != 1 || s.Verifies != 2 {
		t.Errorf("stats %+v", s)
	}
	if s.TypeCount(TypeH) != 1 || s.TypeCount(TypeG) != 1 {
		t.Errorf("type counts %+v", s.Types)
	}
	if u.Name() != "amd-psfp-ssbp" {
		t.Error("Name")
	}
}

// TestUnitSSBDToggle: enabling SSBD at runtime freezes behaviour, disabling
// restores training.
func TestUnitSSBDToggle(t *testing.T) {
	u := NewUnit(Config{Seed: 1})
	q := mkQuery(4, 4)
	u.SetSSBD(true)
	u.Verify(q, true)
	if u.PeekCounters(q) != (Counters{}) {
		t.Error("training under SSBD")
	}
	u.SetSSBD(false)
	if ty := u.Verify(q, true); ty != TypeG {
		t.Errorf("after disabling SSBD: %v, want G", ty)
	}
}

// TestTransitionTable: the generated TABLE I rendering covers every named
// state and never claims an impossible transition.
func TestTransitionTable(t *testing.T) {
	table := TransitionTable()
	for _, state := range []string{"Initialize", "Block", "LoadFromCache",
		"PSFEnabledS1", "PSFDisabledS1", "PSFEnabledS2", "PSFDisabledS2"} {
		if !strings.Contains(table, state) {
			t.Errorf("state %s missing from the rendered table", state)
		}
	}
	if !strings.Contains(table, "no change") {
		t.Error("the Block row should show 'no change'")
	}
}
