package predict

import "testing"

// FuzzStateMachine: arbitrary input sequences keep every counter inside its
// saturation bounds and every emitted type consistent with the
// prediction/truth derivation, with or without a PSFP entry present.
func FuzzStateMachine(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 1, 1, 0})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, seq []byte) {
		if len(seq) > 4096 {
			seq = seq[:4096]
		}
		c := Counters{}
		for i, b := range seq {
			aliasing := b&1 == 1
			present := b&2 == 0
			predA := c.PredictAliasing()
			n, ty := c.UpdateWithPresence(aliasing, present)
			if !n.Valid() {
				t.Fatalf("step %d: invalid counters %+v from %+v", i, n, c)
			}
			if ty.PredictedAliasing() != predA {
				t.Fatalf("step %d: type %v but prediction %v", i, ty, predA)
			}
			if ty.TruthAliasing() != aliasing {
				t.Fatalf("step %d: type %v but truth %v", i, ty, aliasing)
			}
			c = n
		}
	})
}

// FuzzHash: linearity and page-offset identity hold for arbitrary inputs.
func FuzzHash(f *testing.F) {
	f.Add(uint64(0), uint64(1))
	f.Add(uint64(0xfff), uint64(0x1000))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		if Hash48(a^b) != Hash48(a)^Hash48(b) {
			t.Fatalf("hash not linear at %#x, %#x", a, b)
		}
		off := a & 0xfff
		if Hash48(off) != uint16(off) {
			t.Fatalf("in-page offsets must hash to themselves: %#x -> %#x", off, Hash48(off))
		}
	})
}
