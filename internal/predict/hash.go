// Package predict implements the paper's primary contribution: the AMD Zen 3
// speculative memory access predictors (PSFP and SSBP) as reverse engineered
// in Sections III and IV, together with the Intel- and ARM-style memory
// disambiguation baselines of TABLE IV.
//
// The package is deliberately self-contained: it knows nothing about the
// pipeline. The pipeline asks Predict whether a load may bypass an
// address-unresolved older store (and whether the store's data should be
// predictively forwarded), and calls Verify with the ground truth once the
// store's address resolves. Verify applies the TABLE I counter update and is
// never rolled back — which is exactly Vulnerability 4.
package predict

// HashBits is the width of the compressed IPA selector.
const HashBits = 12

// HashEntries is the number of distinct hash values (the "4096 entries" the
// paper's fingerprinting attack scans).
const HashEntries = 1 << HashBits

// Hash48 compresses a 48-bit instruction physical address into a 12-bit
// predictor selector. As reverse engineered in Section III-C2, the function
// is 12 XOR operations, each over 4 bits of the IPA at a stride of 12:
// output bit i = ipa[i] ^ ipa[i+12] ^ ipa[i+24] ^ ipa[i+36].
func Hash48(ipa uint64) uint16 {
	folded := ipa ^ (ipa >> 12) ^ (ipa >> 24) ^ (ipa >> 36)
	return uint16(folded & (HashEntries - 1))
}

// CollidingOffset returns the 12-bit page offset that makes an address in the
// physical frame pfn hash to the target value — the constructive proof from
// Section IV-B1 that an SSBP collision exists in every executable page:
// h_i = O_i ^ F_i ^ F_{i+12} ^ F_{i+24}, so O_i = h_i ^ (frame contribution).
func CollidingOffset(pfn uint64, target uint16) uint16 {
	frameBits := Hash48(pfn << 12)
	return (target ^ frameBits) & (HashEntries - 1)
}
