package predict

import "fmt"

// ExecType is one of the eight execution types of Fig 2, the observable
// outcome of one store-load pair execution.
type ExecType uint8

// Execution types. The first letter group (A, B, C) is "predicted aliasing,
// truth aliasing"; (D, E, F) is "predicted aliasing, truth non-aliasing";
// G is "predicted non-aliasing, truth aliasing" (rollback); H is the fully
// correct fast path.
const (
	TypeA ExecType = iota // stall, forward from store queue (S1)
	TypeB                 // stall, forward from store queue (S2, C3>0)
	TypeC                 // predictive store forwarding before address generation
	TypeD                 // PSF fired but wrong: rollback
	TypeE                 // stall, then fetch from cache (S1)
	TypeF                 // stall, then fetch from cache (S2, C3>0)
	TypeG                 // bypassed but aliasing: rollback
	TypeH                 // bypassed, non-aliasing: fast path
	numTypes
)

func (t ExecType) String() string {
	if t < numTypes {
		return string(rune('A' + t))
	}
	return fmt.Sprintf("type?%d", uint8(t))
}

// Rollback reports whether the type implies a pipeline flush.
func (t ExecType) Rollback() bool { return t == TypeD || t == TypeG }

// PredictedAliasing reports the prediction implied by the type.
func (t ExecType) PredictedAliasing() bool { return t != TypeG && t != TypeH }

// TruthAliasing reports the ground truth implied by the type.
func (t ExecType) TruthAliasing() bool {
	switch t {
	case TypeA, TypeB, TypeC, TypeG:
		return true
	}
	return false
}

// Counter saturation bounds. The paper's footnotes state C0 <= 4 and
// C3 <= 32 always hold; the C1/C2/C4 bounds follow from the update rules
// (C1 is set to 16 and re-raised by +4 steps; C2 is set to 2 and only
// decremented; C4 only counts up to the >=3 test).
const (
	MaxC0 = 4
	MaxC1 = 16
	MaxC2 = 2
	MaxC3 = 32
	MaxC4 = 3
	// PSFDisableC1 is the C1 threshold at and above which predictive store
	// forwarding is disabled (TABLE I distinguishes C1<12 from C1>12; we
	// normalize the boundary to "disabled at >= 12").
	PSFDisableC1 = 12
)

// Counters is the combined 5-counter state of one store-load pair:
// C0, C1, C2 live in the PSFP entry selected by (hash(store IPA),
// hash(load IPA)); C3, C4 live in the SSBP entry selected by hash(load IPA).
type Counters struct {
	C0, C1, C2, C3, C4 int
}

// Zero reports whether all counters are zero (the Initialize state).
func (c Counters) Zero() bool {
	return c.C0 == 0 && c.C1 == 0 && c.C2 == 0 && c.C3 == 0 && c.C4 == 0
}

// Valid reports whether every counter is within its saturation bounds.
func (c Counters) Valid() bool {
	return c.C0 >= 0 && c.C0 <= MaxC0 &&
		c.C1 >= 0 && c.C1 <= MaxC1 &&
		c.C2 >= 0 && c.C2 <= MaxC2 &&
		c.C3 >= 0 && c.C3 <= MaxC3 &&
		c.C4 >= 0 && c.C4 <= MaxC4
}

// PredictAliasing reports whether the combined state predicts the store-load
// pair as aliasing. Per Section III-B3: "The prediction is non-aliasing only
// when both C0 and C3 are equal to 0."
func (c Counters) PredictAliasing() bool { return c.C0 > 0 || c.C3 > 0 }

// PSFEnabled reports whether predictive store forwarding would fire: the
// store's data is forwarded to the load before the store's address is
// generated. Requires an aliasing prediction driven by the PSFP entry with
// C1 below the disable threshold and C2 credit remaining.
func (c Counters) PSFEnabled() bool {
	return c.C0 > 0 && c.C1 < PSFDisableC1 && c.C2 > 0
}

// State names the TABLE I row the counters currently occupy, for diagnostics.
func (c Counters) State() string {
	switch {
	case c.C0 == 0 && c.C3 == 0 && c.C2 == 0:
		return "Initialize"
	case c.C0 == 0 && c.C3 == 0:
		return "LoadFromCache"
	case c.C3 == 0 && c.C2 == 0:
		return "Block"
	case c.C3 == 0 && c.PSFEnabled():
		return "PSFEnabledS1"
	case c.C3 == 0:
		return "PSFDisabledS1"
	case c.PSFEnabled():
		return "PSFEnabledS2"
	default:
		return "PSFDisabledS2"
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Update applies one store-load pair execution to the state machine and
// returns the new counters and the execution type, implementing TABLE I.
// It models a pair whose PSFP entry exists (or is being created); see
// UpdateWithPresence for the pair-without-entry case.
//
// Two deviations from the table as printed, both required to reproduce the
// paper's own example sequences (Section III-B2):
//
//  1. On a type-G rollback, C4 increments before the C3 conditional, so the
//     third G in φ(a,4n,a,4n,a,16n) = (G,4E,G,4E,G,15F,H) sets C3=15.
//  2. Type F decays C0 toward zero (like type E); otherwise the same
//     sequence could never end in H.
func (c Counters) Update(aliasing bool) (Counters, ExecType) {
	return c.UpdateWithPresence(aliasing, true)
}

// UpdateWithPresence is Update with explicit knowledge of whether the pair
// currently has a PSFP entry. The distinction matters for the C3 retrain
// rule "if C0 > 0 then C3-1 else C3+16": the +16 burst is the PSFP entry
// (C0 drained to zero) strongly re-training SSBP; a pair that merely shares
// the SSBP entry through its load hash but has no PSFP entry of its own
// decrements C3 like any aliasing stall. This reproduces the TABLE II C3
// experiment, where probing with a_0^1 drains C3 one step at a time.
func (c Counters) UpdateWithPresence(aliasing, psfpPresent bool) (Counters, ExecType) {
	retrainC3 := func(cur int) int {
		if c.C0 > 0 || !psfpPresent {
			return clamp(cur-1, 0, MaxC3)
		}
		return clamp(cur+16, 0, MaxC3)
	}
	return c.update(aliasing, retrainC3)
}

func (c Counters) update(aliasing bool, retrainC3 func(int) int) (Counters, ExecType) {
	if !c.PredictAliasing() {
		if !aliasing {
			return c, TypeH // correct bypass, no update
		}
		// Rollback: train hard toward aliasing.
		n := c
		n.C0, n.C1, n.C2 = MaxC0, MaxC1, MaxC2
		n.C4 = clamp(c.C4+1, 0, MaxC4)
		if n.C4 < MaxC4 {
			n.C3 = 0
		} else {
			n.C3 = 15
		}
		return n, TypeG
	}

	psf := c.PSFEnabled()
	if c.C3 == 0 {
		// PSFP-driven prediction (C0 > 0).
		if c.C2 == 0 {
			// Block state: prediction pinned to aliasing, SSB and PSF
			// disabled, no counter movement. This is also the state SSBD
			// forces globally.
			if aliasing {
				return c, TypeA
			}
			return c, TypeE
		}
		if psf {
			n := c
			if aliasing {
				if c.C1&3 == 3 {
					n.C0 = clamp(c.C0+1, 0, MaxC0)
				}
				n.C1 = clamp(c.C1-1, 0, MaxC1)
				return n, TypeC
			}
			n.C0 = clamp(c.C0-1, 0, MaxC0)
			n.C1 = clamp(c.C1+4, 0, MaxC1)
			n.C2 = clamp(c.C2-1, 0, MaxC2)
			return n, TypeD
		}
		// PSF disabled, S1.
		n := c
		if aliasing {
			if c.C1&3 == 3 {
				n.C0 = clamp(c.C0+1, 0, MaxC0)
			}
			n.C1 = clamp(c.C1-1, 0, MaxC1)
			return n, TypeA
		}
		n.C0 = clamp(c.C0-1, 0, MaxC0)
		n.C1 = clamp(c.C1+4, 0, MaxC1)
		return n, TypeE
	}

	// C3 > 0: SSBP participates (S2 states).
	if psf {
		n := c
		if aliasing {
			if c.C1&3 == 3 && c.C0 > 0 {
				n.C0 = clamp(c.C0+1, 0, MaxC0)
			}
			n.C1 = clamp(c.C1-1, 0, MaxC1)
			n.C3 = retrainC3(c.C3)
			return n, TypeC
		}
		n.C0 = clamp(c.C0-1, 0, MaxC0)
		n.C1 = clamp(c.C1+4, 0, MaxC1)
		n.C3 = clamp(c.C3-2, 0, MaxC3)
		return n, TypeD
	}
	// PSF disabled, S2.
	n := c
	if aliasing {
		if c.C1&3 == 3 && c.C0 > 0 {
			n.C0 = clamp(c.C0+1, 0, MaxC0)
		}
		n.C1 = clamp(c.C1-1, 0, MaxC1)
		n.C3 = retrainC3(c.C3)
		return n, TypeB
	}
	n.C0 = clamp(c.C0-1, 0, MaxC0)
	n.C1 = clamp(c.C1+4, 0, MaxC1)
	n.C3 = clamp(c.C3-1, 0, MaxC3)
	return n, TypeF
}

// RunSequence applies a whole sequence of inputs (true = aliasing) and
// returns the resulting counters and per-step types — the φ(...) notation of
// the paper as a pure function of the state machine.
func RunSequence(c Counters, inputs []bool) (Counters, []ExecType) {
	types := make([]ExecType, len(inputs))
	for i, a := range inputs {
		c, types[i] = c.Update(a)
	}
	return c, types
}
