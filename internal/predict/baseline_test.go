package predict

import "testing"

func TestIntelMDUSaturationTraining(t *testing.T) {
	m := NewIntelMDU()
	q := Query{LoadIVA: 0x40, StoreIVA: 0x38}
	if p := m.Predict(q); !p.Aliasing {
		t.Fatal("cold MDU must be conservative (stall)")
	}
	// 15 non-aliasing outcomes saturate the counter.
	for i := 0; i < intelSaturated; i++ {
		if ty := m.Verify(q, false); ty != TypeE {
			t.Fatalf("training step %d: %v, want E", i, ty)
		}
	}
	if p := m.Predict(q); p.Aliasing {
		t.Fatal("saturated MDU must allow bypass")
	}
	if ty := m.Verify(q, false); ty != TypeH {
		t.Errorf("saturated non-aliasing: %v, want H", ty)
	}
	// One aliasing misprediction resets to conservative.
	if ty := m.Verify(q, true); ty != TypeG {
		t.Errorf("aliasing after saturation: %v, want G (rollback)", ty)
	}
	if m.Counter(0x40) != 0 {
		t.Error("counter must reset on misprediction")
	}
	if p := m.Predict(q); !p.Aliasing {
		t.Error("post-reset must stall again")
	}
}

func TestIntelMDUSelectionLow8Bits(t *testing.T) {
	m := NewIntelMDU()
	q1 := Query{LoadIVA: 0x1040}
	q2 := Query{LoadIVA: 0x2040} // same low 8 bits -> same entry
	q3 := Query{LoadIVA: 0x1041} // different entry
	for i := 0; i < intelSaturated; i++ {
		m.Verify(q1, false)
	}
	if p := m.Predict(q2); p.Aliasing {
		t.Error("aliased entry (same low 8 IVA bits) should share training")
	}
	if p := m.Predict(q3); !p.Aliasing {
		t.Error("different entry should be untrained")
	}
}

func TestARMMDUOneBit(t *testing.T) {
	m := NewARMMDU()
	q := Query{LoadIVA: 0xbeef}
	// Cold: hazard clear -> bypass allowed.
	if p := m.Predict(q); p.Aliasing {
		t.Fatal("cold ARM MDU allows bypass")
	}
	if ty := m.Verify(q, true); ty != TypeG {
		t.Errorf("first aliasing: %v, want G", ty)
	}
	if !m.Hazard(0xbeef) {
		t.Error("hazard bit should be set")
	}
	if ty := m.Verify(q, true); ty != TypeA {
		t.Errorf("predicted aliasing + truth aliasing: %v, want A", ty)
	}
	if ty := m.Verify(q, false); ty != TypeE {
		t.Errorf("predicted aliasing + truth non-aliasing: %v, want E", ty)
	}
	if m.Hazard(0xbeef) {
		t.Error("hazard bit should clear after non-aliasing")
	}
}

func TestARMMDUSelectionLow16Bits(t *testing.T) {
	m := NewARMMDU()
	m.Verify(Query{LoadIVA: 0x1beef}, true)
	if !m.Hazard(0x2beef) {
		t.Error("entries share low 16 bits")
	}
	if m.Hazard(0xbee0) {
		t.Error("distinct entry affected")
	}
}

func TestBaselineFlush(t *testing.T) {
	im := NewIntelMDU()
	for i := 0; i < intelSaturated; i++ {
		im.Verify(Query{LoadIVA: 1}, false)
	}
	im.FlushPredictor()
	if p := im.Predict(Query{LoadIVA: 1}); !p.Aliasing {
		t.Error("intel flush failed")
	}
	am := NewARMMDU()
	am.Verify(Query{LoadIVA: 1}, true)
	am.FlushPredictor()
	if p := am.Predict(Query{LoadIVA: 1}); p.Aliasing {
		t.Error("arm flush failed")
	}
	if im.Stats().Flushes != 1 || am.Stats().Flushes != 1 {
		t.Error("flush stats")
	}
}

func TestBaselineNames(t *testing.T) {
	if NewIntelMDU().Name() != "intel-mdu" || NewARMMDU().Name() != "arm-mdu" {
		t.Error("names wrong")
	}
}

func TestClassifyMatrix(t *testing.T) {
	tests := []struct {
		pred, psf, truth bool
		want             ExecType
	}{
		{false, false, false, TypeH},
		{false, false, true, TypeG},
		{true, true, true, TypeC},
		{true, true, false, TypeD},
		{true, false, true, TypeA},
		{true, false, false, TypeE},
	}
	for _, tc := range tests {
		if got := classify(tc.pred, tc.psf, tc.truth); got != tc.want {
			t.Errorf("classify(%v,%v,%v) = %v, want %v", tc.pred, tc.psf, tc.truth, got, tc.want)
		}
	}
}

func TestCharacterizationTable(t *testing.T) {
	rows := CharacterizationTable()
	if len(rows) != 3 {
		t.Fatalf("TABLE IV has %d rows", len(rows))
	}
	if rows[2].Design != "amd-psfp-ssbp" {
		t.Error("AMD row missing")
	}
	// The named designs must match the implementations' Name().
	if rows[0].Design != NewIntelMDU().Name() || rows[1].Design != NewARMMDU().Name() {
		t.Error("design names out of sync")
	}
}
