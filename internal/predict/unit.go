package predict

import (
	"math/rand"

	"zenspec/internal/obs"
)

// Query identifies the store-load pair consulting the disambiguator. AMD
// selects by instruction physical addresses; the Intel and ARM baselines
// select by instruction virtual addresses (TABLE IV), so both are carried.
type Query struct {
	StoreIPA, LoadIPA uint64
	StoreIVA, LoadIVA uint64
}

// Prediction is the disambiguator's answer for a load younger than an
// address-unresolved store.
type Prediction struct {
	// Aliasing predicts the load and store target the same address: the load
	// must wait for the store (and may receive its data by forwarding).
	Aliasing bool
	// PSF additionally predicts that the store's data can be forwarded to
	// the load before the store's address is generated.
	PSF bool
	// Counters is the combined state snapshot behind the prediction (AMD
	// unit only; zero for baselines).
	Counters Counters
}

// Disambiguator is the interface between the pipeline's load-store unit and
// a store bypass predictor, satisfied by the AMD Unit and by the Intel/ARM
// baselines.
type Disambiguator interface {
	// Predict is consulted when a load is ready but an older store's address
	// is not. It must not mutate predictor state.
	Predict(q Query) Prediction
	// Verify is called once the store's address resolves, with the ground
	// truth; it applies the training update and returns the execution type.
	Verify(q Query, aliasing bool) ExecType
	// FlushPredictor models a context switch flush.
	FlushPredictor()
	// Name identifies the design for reports.
	Name() string
}

// Stats counts predictor events.
type Stats struct {
	Predicts uint64
	Verifies uint64
	Types    [numTypes]uint64
	Flushes  uint64
}

// TypeCount returns how many executions of type t were verified.
func (s Stats) TypeCount(t ExecType) uint64 { return s.Types[t] }

// Config configures the AMD unit.
type Config struct {
	// PSFPSize and SSBPWays override the reverse-engineered defaults when
	// non-zero.
	PSFPSize int
	SSBPWays int
	// Seed drives SSBP victim selection.
	Seed int64
	// SSBD is Speculative Store Bypass Disable (SPEC_CTRL bit 2): every load
	// serializes behind unresolved stores; all entries behave as the Block
	// state and training stops (Section VI-A).
	SSBD bool
	// PSFD is Predictive Store Forwarding Disable (SPEC_CTRL bit 7). The
	// paper found the predictors continue to function with PSFD set on every
	// tested platform, so the flag is recorded but — faithfully to the
	// measured hardware — has no effect on behavior.
	PSFD bool
	// SelectionSalt, when non-zero, is XORed into IPAs before hashing — the
	// "randomize selection" mitigation sketched in Section VI-B. The kernel
	// model gives each security domain its own salt, making cross-domain
	// collision finding infeasible.
	SelectionSalt uint64
}

// Unit is the combined AMD Zen 3 speculative memory access predictor: PSFP
// (C0,C1,C2) and SSBP (C3,C4) behind the TABLE I state machine. One Unit
// models the predictor resources of one SMT hardware thread; the paper found
// the resources are duplicated, not shared, between threads.
type Unit struct {
	cfg   Config
	psfp  *PSFP
	ssbp  *SSBP
	stats Stats
	bus   *obs.Bus
	cpu   int
}

var _ Disambiguator = (*Unit)(nil)

// NewUnit returns a fresh predictor unit.
func NewUnit(cfg Config) *Unit {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Unit{
		cfg:  cfg,
		psfp: NewPSFP(cfg.PSFPSize),
		ssbp: NewSSBP(cfg.SSBPWays, rng),
	}
}

// Name implements Disambiguator.
func (u *Unit) Name() string { return "amd-psfp-ssbp" }

// AttachBus connects the unit to an event bus as hardware thread cpu's
// predictor resources. Capacity evictions inside PSFP (LRU drop) and SSBP
// (random replacement) surface as obs.PredictorEvictEvent; fault-injector
// hooks (EvictAt, FlipAt) do not fire these — they are reported by the
// injector itself as fault events.
func (u *Unit) AttachBus(b *obs.Bus, cpu int) {
	u.bus = b
	u.cpu = cpu
	u.psfp.onEvict = func(e psfpEntry) {
		if u.bus.On(obs.ClassPredict) {
			u.bus.Emit(obs.PredictorEvictEvent{
				CPU: u.cpu, Cycle: u.bus.Now(), Predictor: "psfp",
				StoreTag: e.storeTag, LoadTag: e.loadTag,
				Counters: obs.Counters{C0: e.c0, C1: e.c1, C2: e.c2},
			})
		}
	}
	u.ssbp.onEvict = func(e ssbpEntry) {
		if u.bus.On(obs.ClassPredict) {
			u.bus.Emit(obs.PredictorEvictEvent{
				CPU: u.cpu, Cycle: u.bus.Now(), Predictor: "ssbp",
				LoadTag:  e.tag,
				Counters: obs.Counters{C3: e.c3, C4: e.c4},
			})
		}
	}
}

func (u *Unit) hash(ipa uint64) uint16 { return Hash48(ipa ^ u.cfg.SelectionSalt) }

// HashIPA exposes the unit's selector hash (including any salt) so harnesses
// can reason about collisions the way PTEditor-equipped attackers do.
func (u *Unit) HashIPA(ipa uint64) uint16 { return u.hash(ipa) }

// counters gathers the combined 5-counter state for a pair.
func (u *Unit) counters(q Query) Counters {
	st, lt := u.hash(q.StoreIPA), u.hash(q.LoadIPA)
	var c Counters
	c.C0, c.C1, c.C2 = u.psfp.Get(st, lt)
	c.C3, c.C4 = u.ssbp.Get(lt)
	return c
}

// Predict implements Disambiguator.
func (u *Unit) Predict(q Query) Prediction {
	u.stats.Predicts++
	var pred Prediction
	if u.cfg.SSBD {
		// Block state everywhere: always alias-predicted, never PSF.
		pred = Prediction{Aliasing: true, PSF: false}
	} else {
		c := u.counters(q)
		pred = Prediction{Aliasing: c.PredictAliasing(), PSF: c.PSFEnabled(), Counters: c}
	}
	if u.bus.On(obs.ClassPredict) {
		st, lt := u.hash(q.StoreIPA), u.hash(q.LoadIPA)
		cs := pred.Counters
		u.bus.Emit(obs.PredictEvent{
			CPU: u.cpu, Cycle: u.bus.Now(),
			StoreIPA: q.StoreIPA, LoadIPA: q.LoadIPA,
			Aliasing: pred.Aliasing, PSF: pred.PSF,
			PSFPHit:  u.psfp.Contains(st, lt),
			Counters: obs.Counters{C0: cs.C0, C1: cs.C1, C2: cs.C2, C3: cs.C3, C4: cs.C4},
		})
	}
	return pred
}

// Verify implements Disambiguator: it applies the TABLE I update for the
// pair and returns the execution type. With SSBD set, entries are pinned and
// the outcome is the Block-state behaviour (φ(n)=E, φ(a)=A).
func (u *Unit) Verify(q Query, aliasing bool) ExecType {
	u.stats.Verifies++
	if u.cfg.SSBD {
		t := TypeE
		if aliasing {
			t = TypeA
		}
		u.stats.Types[t]++
		return t
	}
	st, lt := u.hash(q.StoreIPA), u.hash(q.LoadIPA)
	present := u.psfp.Contains(st, lt)
	c := u.counters(q)
	n, t := c.UpdateWithPresence(aliasing, present)
	// PSFP entries are created only by a type-G rollback (the hard retrain);
	// other execution types update an existing entry in place but never
	// allocate — which is why the paper's (40 n_0^j) drain sequences clear
	// C3 without disturbing the PSFP eviction experiments.
	if present || t == TypeG {
		u.psfp.Put(st, lt, n.C0, n.C1, n.C2)
	}
	if n.C3 != c.C3 || n.C4 != c.C4 || u.ssbp.Contains(lt) {
		u.ssbp.Put(lt, n.C3, n.C4)
	}
	u.stats.Types[t]++
	if u.bus.On(obs.ClassPredict) {
		now := u.bus.Now()
		before := obs.Counters{C0: c.C0, C1: c.C1, C2: c.C2, C3: c.C3, C4: c.C4}
		after := obs.Counters{C0: n.C0, C1: n.C1, C2: n.C2, C3: n.C3, C4: n.C4}
		u.bus.Emit(obs.PSFPTrainEvent{
			CPU: u.cpu, Cycle: now, StoreTag: st, LoadTag: lt,
			Type: t.String(), Aliasing: aliasing,
			Before: before, After: after,
			Allocated: !present && t == TypeG,
		})
		u.bus.Emit(obs.SSBPTransitionEvent{
			CPU: u.cpu, Cycle: now, LoadTag: lt,
			Type: t.String(), Aliasing: aliasing,
			Before: before, After: after,
			StateBefore: c.State(), StateAfter: n.State(),
		})
	}
	return t
}

// FlushPredictor implements Disambiguator; for the AMD unit a context switch
// flushes PSFP only (Section IV-A).
func (u *Unit) FlushPredictor() { u.FlushPSFP() }

// FlushPSFP empties PSFP — performed by the hardware on every context
// switch, syscall and yield.
func (u *Unit) FlushPSFP() {
	u.stats.Flushes++
	u.psfp.Flush()
}

// FlushAll empties both predictors — performed when the process sleeps.
func (u *Unit) FlushAll() {
	u.stats.Flushes++
	u.psfp.Flush()
	u.ssbp.Flush()
}

// FlushSSBP empties SSBP only; no hardware event does this, but the
// flush-on-switch mitigation (Section VI-B) uses it.
func (u *Unit) FlushSSBP() { u.ssbp.Flush() }

// PeekCounters returns the combined counter state for a pair without
// recording a prediction — introspection for tests and experiment reports.
func (u *Unit) PeekCounters(q Query) Counters { return u.counters(q) }

// PSFP exposes the PSF predictor for white-box experiments.
func (u *Unit) PSFP() *PSFP { return u.psfp }

// SSBP exposes the SSB predictor for white-box experiments.
func (u *Unit) SSBP() *SSBP { return u.ssbp }

// Stats returns a copy of the event counters.
func (u *Unit) Stats() Stats { return u.stats }

// SetSSBD toggles Speculative Store Bypass Disable at run time, as the OS
// does via SPEC_CTRL.
func (u *Unit) SetSSBD(on bool) { u.cfg.SSBD = on }

// SSBD reports whether Speculative Store Bypass Disable is set.
func (u *Unit) SSBD() bool { return u.cfg.SSBD }

// SetPSFD toggles Predictive Store Forwarding Disable. Faithful to the
// paper's measurement, it changes nothing in the predictor behaviour.
func (u *Unit) SetPSFD(on bool) { u.cfg.PSFD = on }

// PSFD reports whether the (ineffective) PSFD bit is set.
func (u *Unit) PSFD() bool { return u.cfg.PSFD }

// SetSelectionSalt installs a hash salt (randomized-selection mitigation).
func (u *Unit) SetSelectionSalt(s uint64) { u.cfg.SelectionSalt = s }
