package predict

// This file implements the Intel- and ARM-style memory disambiguation units
// (MDUs) characterized in TABLE IV, as baselines for comparison with the AMD
// SSBP design:
//
//	             state machine      selection
//	Intel [41]   4-bit counter      lowest 8 bits of the load IVA
//	ARM   [34]   1 bit              lowest 16 bits of the load IVA
//	AMD          6-bit C3 + 2-bit   12-bit hash of the whole load IPA
//	             C4 (+ PSFP)
//
// Neither baseline implements predictive store forwarding; their Prediction
// never sets PSF.

// classify derives the Fig 2 execution type from prediction and truth for
// predictors without the S1/S2 split.
func classify(predAliasing, psf, truth bool) ExecType {
	switch {
	case !predAliasing && !truth:
		return TypeH
	case !predAliasing && truth:
		return TypeG
	case psf && truth:
		return TypeC
	case psf && !truth:
		return TypeD
	case truth:
		return TypeA
	default:
		return TypeE
	}
}

// IntelMDU models the Skylake-style memory disambiguation predictor: a table
// of 4-bit saturating counters indexed by the low 8 bits of the load's
// instruction virtual address. A load may bypass unresolved stores only when
// its counter is saturated; a misprediction resets the counter to zero.
type IntelMDU struct {
	counters [256]uint8
	stats    Stats
}

var _ Disambiguator = (*IntelMDU)(nil)

// NewIntelMDU returns a baseline Intel-style MDU. All counters start at
// zero, i.e. conservative (no bypass).
func NewIntelMDU() *IntelMDU { return &IntelMDU{} }

// Name implements Disambiguator.
func (m *IntelMDU) Name() string { return "intel-mdu" }

const intelSaturated = 15

func (m *IntelMDU) idx(q Query) int { return int(q.LoadIVA & 0xff) }

// Predict implements Disambiguator: bypass is allowed only at saturation.
func (m *IntelMDU) Predict(q Query) Prediction {
	m.stats.Predicts++
	return Prediction{Aliasing: m.counters[m.idx(q)] < intelSaturated}
}

// Verify implements Disambiguator.
func (m *IntelMDU) Verify(q Query, aliasing bool) ExecType {
	m.stats.Verifies++
	i := m.idx(q)
	pred := m.counters[i] < intelSaturated
	t := classify(pred, false, aliasing)
	if aliasing {
		m.counters[i] = 0
	} else if m.counters[i] < intelSaturated {
		m.counters[i]++
	}
	m.stats.Types[t]++
	return t
}

// FlushPredictor implements Disambiguator.
func (m *IntelMDU) FlushPredictor() {
	m.stats.Flushes++
	m.counters = [256]uint8{}
}

// Counter exposes one counter value for tests.
func (m *IntelMDU) Counter(loadIVA uint64) uint8 { return m.counters[loadIVA&0xff] }

// Stats returns the event counters.
func (m *IntelMDU) Stats() Stats { return m.stats }

// ARMMDU models the ARM memory disambiguation predictor uncovered by Liu et
// al. [34]: a single hazard bit per entry, selected by the low 16 bits of
// the load's instruction virtual address. The bit is set by an aliasing
// outcome (forcing subsequent loads to wait) and cleared by a non-aliasing
// one.
type ARMMDU struct {
	hazard []bool
	stats  Stats
}

var _ Disambiguator = (*ARMMDU)(nil)

// NewARMMDU returns a baseline ARM-style MDU.
func NewARMMDU() *ARMMDU { return &ARMMDU{hazard: make([]bool, 1<<16)} }

// Name implements Disambiguator.
func (m *ARMMDU) Name() string { return "arm-mdu" }

func (m *ARMMDU) idx(q Query) int { return int(q.LoadIVA & 0xffff) }

// Predict implements Disambiguator.
func (m *ARMMDU) Predict(q Query) Prediction {
	m.stats.Predicts++
	return Prediction{Aliasing: m.hazard[m.idx(q)]}
}

// Verify implements Disambiguator.
func (m *ARMMDU) Verify(q Query, aliasing bool) ExecType {
	m.stats.Verifies++
	i := m.idx(q)
	t := classify(m.hazard[i], false, aliasing)
	m.hazard[i] = aliasing
	m.stats.Types[t]++
	return t
}

// FlushPredictor implements Disambiguator.
func (m *ARMMDU) FlushPredictor() {
	m.stats.Flushes++
	for i := range m.hazard {
		m.hazard[i] = false
	}
}

// Hazard exposes one hazard bit for tests.
func (m *ARMMDU) Hazard(loadIVA uint64) bool { return m.hazard[loadIVA&0xffff] }

// Stats returns the event counters.
func (m *ARMMDU) Stats() Stats { return m.stats }

// Characterization is one TABLE IV row.
type Characterization struct {
	Design           string
	StateMachineBits string
	Selection        string
}

// CharacterizationTable returns TABLE IV: the comparison of memory
// disambiguation designs across vendors.
func CharacterizationTable() []Characterization {
	return []Characterization{
		{"intel-mdu", "4 bit", "lowest 8 bits of the load IVA"},
		{"arm-mdu", "1 bit", "lowest 16 bits of the load IVA"},
		{"amd-psfp-ssbp", "6 bit (C3) + 2 bit (C4)", "12-bit hash of the whole load IPA"},
	}
}
