package predict

import "math/rand"

// SSBPWays is the modeled physical capacity of the SSB predictor. The paper
// could not determine the exact size (Fig 5 shows no abrupt change, only a
// gradual eviction curve exceeding 50% at set size 16 and reaching ~90% at
// 32). A 10-way fully-associative store with random replacement reproduces
// that curve: replacement begins once the store is full, so after k distinct
// fills the base entry survives with probability (9/10)^(k-9), giving an
// eviction rate of 52% at k=16 and 91% at k=32.
const SSBPWays = 10

type ssbpEntry struct {
	tag    uint16
	c3, c4 int
}

// SSBP is the Speculative Store Bypass Predictor: a logical space of 4096
// entries selected by the hashed load IPA (Section III-C), physically backed
// by a small store with random replacement. Missing entries read as zeros.
// Unlike PSFP it survives context switches — the root of Vulnerability 1.
type SSBP struct {
	ways    int
	entries []ssbpEntry
	rng     *rand.Rand
	// onEvict observes random-replacement evictions only — not Flush and not
	// the fault injector's FlipAt, which are reported by their initiators.
	onEvict func(ssbpEntry)
}

// NewSSBP returns an empty SSBP. ways == 0 selects the default capacity; the
// rng drives victim selection and must be seeded by the caller for
// reproducible experiments.
func NewSSBP(ways int, rng *rand.Rand) *SSBP {
	if ways == 0 {
		ways = SSBPWays
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &SSBP{ways: ways, entries: make([]ssbpEntry, 0, ways), rng: rng}
}

func (s *SSBP) find(tag uint16) int {
	for i := range s.entries {
		if s.entries[i].tag == tag {
			return i
		}
	}
	return -1
}

// Get returns the C3, C4 counters for the hashed load IPA.
func (s *SSBP) Get(tag uint16) (c3, c4 int) {
	if i := s.find(tag); i >= 0 {
		return s.entries[i].c3, s.entries[i].c4
	}
	return 0, 0
}

// Put stores the counters for the tag, allocating (with random replacement
// when full) if the tag is absent and the counters are non-zero.
func (s *SSBP) Put(tag uint16, c3, c4 int) {
	if i := s.find(tag); i >= 0 {
		s.entries[i].c3 = c3
		s.entries[i].c4 = c4
		return
	}
	if c3 == 0 && c4 == 0 {
		return
	}
	e := ssbpEntry{tag: tag, c3: c3, c4: c4}
	if len(s.entries) < s.ways {
		s.entries = append(s.entries, e)
		return
	}
	victim := s.rng.Intn(len(s.entries))
	if s.onEvict != nil {
		s.onEvict(s.entries[victim])
	}
	s.entries[victim] = e
}

// Contains reports whether the tag currently has a physical entry.
func (s *SSBP) Contains(tag uint16) bool { return s.find(tag) >= 0 }

// Len returns the number of live entries.
func (s *SSBP) Len() int { return len(s.entries) }

// Ways returns the physical capacity.
func (s *SSBP) Ways() int { return s.ways }

// Flush empties the predictor. The hardware only does this when a process
// sleeps (Section IV-A); the flush-on-context-switch mitigation of Section
// VI-B calls it on every switch.
func (s *SSBP) Flush() { s.entries = s.entries[:0] }

// FlipAt adds delta to live entry i's C3 counter, clamped to [0, MaxC3] —
// the fault injector's model of predictor pollution by co-resident pairs
// hashing onto the same entry. An entry whose C3 and C4 both reach zero is
// dropped (it would read as absent anyway). Reports whether an entry was
// perturbed.
func (s *SSBP) FlipAt(i, delta int) bool {
	if i < 0 || i >= len(s.entries) {
		return false
	}
	c3 := s.entries[i].c3 + delta
	if c3 < 0 {
		c3 = 0
	}
	if c3 > MaxC3 {
		c3 = MaxC3
	}
	s.entries[i].c3 = c3
	if c3 == 0 && s.entries[i].c4 == 0 {
		s.entries = append(s.entries[:i], s.entries[i+1:]...)
	}
	return true
}

// Snapshot returns the live (tag, C3, C4) triples, most useful to tests and
// the fingerprinting analysis tooling.
func (s *SSBP) Snapshot() []struct {
	Tag    uint16
	C3, C4 int
} {
	out := make([]struct {
		Tag    uint16
		C3, C4 int
	}, len(s.entries))
	for i, e := range s.entries {
		out[i] = struct {
			Tag    uint16
			C3, C4 int
		}{e.tag, e.c3, e.c4}
	}
	return out
}
