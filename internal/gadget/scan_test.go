package gadget

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
)

// ctlLike builds the Listing 3 shape.
func ctlLike() []byte {
	b := asm.NewBuilder()
	b.Movi(isa.R15, 0x4000)
	b.Load(isa.RCX, isa.R15, 0)
	b.Shli(isa.RCX, isa.RCX, 3)
	b.Add(isa.RCX, isa.RCX, isa.R13)
	b.Store(isa.RCX, 0, isa.RAX) // store
	b.Load(isa.RDX, isa.R14, 0)  // ld1
	b.Add(isa.RBX, isa.RDX, isa.R11)
	b.Load(isa.R8, isa.RBX, 0) // ld2 (address from ld1)
	b.Andi(isa.R8, isa.R8, 0xff)
	b.Shli(isa.R9, isa.R8, 3)
	b.Add(isa.R9, isa.R9, isa.R13)
	b.Load(isa.R10, isa.R9, 0) // transmit (address from ld2)
	b.Halt()
	return b.MustAssemble(0)
}

func TestScanFindsCTLGadget(t *testing.T) {
	cands := Scan(ctlLike(), Options{})
	if len(cands) == 0 {
		t.Fatal("the Listing 3 shape was not detected")
	}
	c := cands[0]
	if !(c.StoreOff < c.Ld1Off && c.Ld1Off < c.Ld2Off && c.Ld2Off < c.TransmitOff) {
		t.Errorf("offsets out of order: %+v", c)
	}
	if c.String() == "" {
		t.Error("empty candidate report")
	}
}

func TestScanFindsRealAttackGadgets(t *testing.T) {
	// The scanner must flag the exact victims the attacks in this repository
	// use. Rebuild the STL victim shape here (it lives in internal/attack).
	b := asm.NewBuilder()
	b.Movi(isa.R15, 0x4000000)
	b.Load(isa.RCX, isa.R15, 0)
	for i := 0; i < 10; i++ {
		b.Imul(isa.RCX, isa.RCX, isa.R12)
	}
	b.Shli(isa.RCX, isa.RCX, 12)
	b.Movi(isa.R13, 0x3000000)
	b.Add(isa.RCX, isa.RCX, isa.R13)
	b.Store(isa.RCX, 0, isa.RDI)
	b.Load(isa.RDX, isa.R13, 0)
	b.Movi(isa.R14, 0x2000000)
	b.Add(isa.RBX, isa.RDX, isa.R14)
	b.Load(isa.R8, isa.RBX, 0)
	b.Andi(isa.R8, isa.R8, 0xff)
	b.Shli(isa.R9, isa.R8, 12)
	b.Add(isa.R9, isa.R9, isa.R13)
	b.Load(isa.R10, isa.R9, 0)
	b.Halt()
	if len(Scan(b.MustAssemble(0), Options{})) == 0 {
		t.Error("the repository's own STL victim gadget was not detected")
	}
}

func TestScanIgnoresInnocuousCode(t *testing.T) {
	b := asm.NewBuilder()
	b.Movi(isa.RAX, 1)
	b.Store(isa.R15, 0, isa.RAX)
	b.Load(isa.RBX, isa.R15, 8) // independent load
	b.Add(isa.RBX, isa.RBX, isa.RAX)
	b.Store(isa.R15, 16, isa.RBX) // store with CLEAN address (base r15)
	b.Halt()
	if cands := Scan(b.MustAssemble(0), Options{}); len(cands) != 0 {
		t.Errorf("innocuous code flagged: %v", cands)
	}
}

func TestScanStopsAtBranchesAndFences(t *testing.T) {
	build := func(mid func(b *asm.Builder)) []byte {
		b := asm.NewBuilder()
		b.Store(isa.RCX, 0, isa.RAX)
		b.Load(isa.RDX, isa.R14, 0)
		mid(b)
		b.Add(isa.RBX, isa.RDX, isa.R11)
		b.Load(isa.R8, isa.RBX, 0)
		b.Shli(isa.R9, isa.R8, 3)
		b.Load(isa.R10, isa.R9, 0)
		b.Label("out")
		b.Halt()
		return b.MustAssemble(0)
	}
	if n := len(Scan(build(func(b *asm.Builder) {}), Options{})); n == 0 {
		t.Fatal("control pattern should be detected")
	}
	withFence := build(func(b *asm.Builder) { b.Lfence() })
	if n := len(Scan(withFence, Options{})); n != 0 {
		t.Error("a fence inside the window should kill the candidate")
	}
	withBranch := build(func(b *asm.Builder) { b.Jnz(isa.RAX, "out") })
	if n := len(Scan(withBranch, Options{})); n != 0 {
		t.Error("a branch inside the window should kill the candidate")
	}
}

func TestScanWindowLimit(t *testing.T) {
	b := asm.NewBuilder()
	b.Store(isa.RCX, 0, isa.RAX)
	b.Load(isa.RDX, isa.R14, 0)
	for i := 0; i < 60; i++ {
		b.Addi(isa.RDX, isa.RDX, 0) // keep the taint alive, pad the distance
	}
	b.Load(isa.R8, isa.RDX, 0)
	b.Load(isa.R10, isa.R8, 0)
	b.Halt()
	code := b.MustAssemble(0)
	if len(Scan(code, Options{Window: 16})) != 0 {
		t.Error("pattern beyond the window should not be flagged")
	}
	if len(Scan(code, Options{Window: 80})) == 0 {
		t.Error("pattern inside a large window should be flagged")
	}
}

func TestScanStoreTransmitter(t *testing.T) {
	// A tainted-address STORE is also a transmitter.
	b := asm.NewBuilder()
	b.Store(isa.RCX, 0, isa.RAX)
	b.Load(isa.RDX, isa.R14, 0)
	b.Load(isa.R8, isa.RDX, 0)
	b.Store(isa.R8, 0, isa.RAX)
	b.Halt()
	if len(Scan(b.MustAssemble(0), Options{})) == 0 {
		t.Error("store transmitter not detected")
	}
}
