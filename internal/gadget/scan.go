// Package gadget statically scans machine code for the speculative
// store-bypass gadget shape the paper's attacks need (Listings 2 and 3):
// a store followed — within the reach of one transient window — by a load
// whose value flows into the address of a second load, whose value in turn
// flows into the address of a third memory access (the transmitter).
//
// The scan delegates to internal/speccheck, the repository's one analysis
// core, run in its legacy straight-line mode: a linear taint walk from each
// store in which any control flow or fence ends the window. For the full
// CFG-based always-mispredict analysis (branch windows explored, taint
// through memory, Spectre-CTL shapes), use speccheck.Analyze directly or
// the speccheck command.
package gadget

import (
	"fmt"

	"zenspec/internal/isa"
	"zenspec/internal/speccheck"
)

// DefaultWindow is the default transient-window reach in instructions. It
// aliases speccheck.DefaultWindow so the straight-line scan and the CFG
// analyzer cannot drift apart.
const DefaultWindow = speccheck.DefaultWindow

// Candidate is one potential gadget.
type Candidate struct {
	// Byte offsets of the pattern's instructions within the scanned code.
	StoreOff    int
	Ld1Off      int
	Ld2Off      int
	TransmitOff int
	// Depth is the dependent-load chain length (2 = store→ld1→ld2 with a
	// dependent transmit access; deeper chains also match).
	Depth int
}

func (c Candidate) String() string {
	return fmt.Sprintf("gadget: store@+%#x  ld1@+%#x  ld2@+%#x  transmit@+%#x",
		c.StoreOff, c.Ld1Off, c.Ld2Off, c.TransmitOff)
}

// Options tunes the scan.
type Options struct {
	// Window is the maximum instruction distance from the store to the
	// transmitter (a transient window's reach). 0 means DefaultWindow.
	Window int
}

// Scan decodes code at every instruction slot and reports gadget candidates.
func Scan(code []byte, opts Options) []Candidate {
	window := opts.Window
	if window == 0 {
		window = DefaultWindow
	}
	findings := speccheck.Analyze(code, speccheck.Options{
		Window:       window,
		STL:          true,
		StraightLine: true,
		Stride:       isa.InstBytes,
	})
	out := make([]Candidate, 0, len(findings))
	for _, f := range findings {
		if len(f.LoadOffs) < 2 {
			continue // straight-line STL findings always carry ld1 and ld2
		}
		out = append(out, Candidate{
			StoreOff:    f.SourceOff,
			Ld1Off:      f.LoadOffs[0],
			Ld2Off:      f.LoadOffs[1],
			TransmitOff: f.TransmitOff,
			Depth:       f.Depth,
		})
	}
	return out
}
