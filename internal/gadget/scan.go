// Package gadget statically scans machine code for the speculative
// store-bypass gadget shape the paper's attacks need (Listings 2 and 3):
// a store followed — within the reach of one transient window — by a load
// whose value flows into the address of a second load, whose value in turn
// flows into the address of a third memory access (the transmitter).
//
// The scan is a straight-line taint walk: registers written by a candidate
// load are tainted; ALU ops propagate taint; a load whose address is
// tainted deepens the chain. Branches end the window (a transient window
// does not survive an unrelated redirect for this pattern). The scanner
// over-approximates — it cannot know whether the store's address will
// resolve late or whether the predictors can be mistrained — which is the
// right default for an audit tool.
package gadget

import (
	"fmt"

	"zenspec/internal/isa"
)

// Candidate is one potential gadget.
type Candidate struct {
	// Byte offsets of the pattern's instructions within the scanned code.
	StoreOff    int
	Ld1Off      int
	Ld2Off      int
	TransmitOff int
	// Depth is the dependent-load chain length (2 = store→ld1→ld2 with a
	// dependent transmit access; deeper chains also match).
	Depth int
}

func (c Candidate) String() string {
	return fmt.Sprintf("gadget: store@+%#x  ld1@+%#x  ld2@+%#x  transmit@+%#x",
		c.StoreOff, c.Ld1Off, c.Ld2Off, c.TransmitOff)
}

// Options tunes the scan.
type Options struct {
	// Window is the maximum instruction distance from the store to the
	// transmitter (a transient window's reach). 0 means 48.
	Window int
}

// Scan decodes code at every instruction slot and reports gadget candidates.
func Scan(code []byte, opts Options) []Candidate {
	window := opts.Window
	if window == 0 {
		window = 48
	}
	insts := make([]isa.Inst, 0, len(code)/isa.InstBytes)
	for off := 0; off+isa.InstBytes <= len(code); off += isa.InstBytes {
		insts = append(insts, isa.Decode(code[off:]))
	}
	var out []Candidate
	for i, in := range insts {
		if !in.IsStore() {
			continue
		}
		if c, ok := chase(insts, i, window); ok {
			out = append(out, c)
		}
	}
	return out
}

// taint tracks which registers carry values derived from a speculative load.
type taint struct {
	level [isa.NumRegs]int // 0 = clean, 1 = ld1-derived, 2 = ld2-derived
}

// chase walks forward from the store at index s looking for the
// load-chain pattern.
func chase(insts []isa.Inst, s, window int) (Candidate, bool) {
	var t taint
	ld1, ld2 := -1, -1
	end := s + window
	if end > len(insts) {
		end = len(insts)
	}
	for i := s + 1; i < end; i++ {
		in := insts[i]
		switch {
		case in.Op == isa.BAD, in.Op == isa.HALT, in.Op == isa.SYSCALL:
			return Candidate{}, false
		case in.IsBranch():
			// A branch ends the straight-line window.
			return Candidate{}, false
		case in.IsFence():
			// A fence serializes: the chain cannot continue transiently.
			return Candidate{}, false
		case in.IsLoad():
			base := t.level[in.Src1]
			switch {
			case ld1 < 0:
				// Any load after the store can be the bypassing load.
				ld1 = i
				t.set(in.Dst, 1)
			case base >= 1 && ld2 < 0:
				ld2 = i
				t.set(in.Dst, 2)
			case base >= 2:
				return Candidate{
					StoreOff:    s * isa.InstBytes,
					Ld1Off:      ld1 * isa.InstBytes,
					Ld2Off:      ld2 * isa.InstBytes,
					TransmitOff: i * isa.InstBytes,
					Depth:       2,
				}, true
			default:
				// An unrelated load clears its destination's taint.
				t.set(in.Dst, 0)
			}
		case in.IsStore():
			// A tainted-address store is also a transmitter (it moves the
			// secret into a cache-visible location).
			if t.level[in.Src1] >= 2 && ld2 >= 0 {
				return Candidate{
					StoreOff:    s * isa.InstBytes,
					Ld1Off:      ld1 * isa.InstBytes,
					Ld2Off:      ld2 * isa.InstBytes,
					TransmitOff: i * isa.InstBytes,
					Depth:       2,
				}, true
			}
		case in.WritesReg():
			t.propagate(in)
		}
	}
	return Candidate{}, false
}

// set assigns a taint level to a register.
func (t *taint) set(r isa.Reg, level int) { t.level[r] = level }

// propagate computes the destination's taint from the sources.
func (t *taint) propagate(in isa.Inst) {
	srcs, n := in.SrcRegs()
	max := 0
	for i := 0; i < n; i++ {
		if l := t.level[srcs[i]]; l > max {
			max = l
		}
	}
	switch in.Op {
	case isa.MOVI, isa.RDPRU:
		max = 0 // constants and timestamps clear taint
	}
	t.level[in.Dst] = max
}
