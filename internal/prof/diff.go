package prof

// Diff returns b − a: the signed per-site delta of two snapshots, matched by
// (PC, Op) for samples and (PC, Kind) for squash sites. Sites identical in
// both snapshots are dropped, so a profile diffed against itself is empty.
// Use it to compare a run against a baseline — e.g. SSBD on vs off, or a
// mitigated vs vulnerable predictor configuration.
func Diff(a, b *Snapshot) *Snapshot {
	out := &Snapshot{}
	if a == nil {
		a = &Snapshot{}
	}
	if b == nil {
		b = &Snapshot{}
	}

	type key struct {
		pc uint64
		op string
	}
	av := make(map[key]Sample, len(a.Samples))
	for _, x := range a.Samples {
		av[key{x.PC, x.Op}] = x
	}
	seen := make(map[key]bool, len(b.Samples))
	for _, x := range b.Samples {
		k := key{x.PC, x.Op}
		seen[k] = true
		base := av[k]
		d := Sample{
			PC: x.PC, Op: x.Op,
			Count:     x.Count - base.Count,
			Transient: x.Transient - base.Transient,
			Issue:     x.Issue - base.Issue,
			Execute:   x.Execute - base.Execute,
			SQStall:   x.SQStall - base.SQStall,
			Replay:    x.Replay - base.Replay,
			Retire:    x.Retire - base.Retire,
		}
		if d != (Sample{PC: x.PC, Op: x.Op}) {
			out.Samples = append(out.Samples, d)
		}
	}
	for _, x := range a.Samples {
		if k := (key{x.PC, x.Op}); !seen[k] {
			out.Samples = append(out.Samples, Sample{
				PC: x.PC, Op: x.Op,
				Count:     -x.Count,
				Transient: -x.Transient,
				Issue:     -x.Issue,
				Execute:   -x.Execute,
				SQStall:   -x.SQStall,
				Replay:    -x.Replay,
				Retire:    -x.Retire,
			})
		}
	}

	aq := make(map[key]SquashSample, len(a.Squashes))
	for _, x := range a.Squashes {
		aq[key{x.PC, x.Kind}] = x
	}
	seenQ := make(map[key]bool, len(b.Squashes))
	for _, x := range b.Squashes {
		k := key{x.PC, x.Kind}
		seenQ[k] = true
		base := aq[k]
		d := SquashSample{
			PC: x.PC, Kind: x.Kind,
			Count:   x.Count - base.Count,
			Window:  x.Window - base.Window,
			Penalty: x.Penalty - base.Penalty,
			Insts:   x.Insts - base.Insts,
		}
		if d != (SquashSample{PC: x.PC, Kind: x.Kind}) {
			out.Squashes = append(out.Squashes, d)
		}
	}
	for _, x := range a.Squashes {
		if k := (key{x.PC, x.Kind}); !seenQ[k] {
			out.Squashes = append(out.Squashes, SquashSample{
				PC: x.PC, Kind: x.Kind,
				Count:   -x.Count,
				Window:  -x.Window,
				Penalty: -x.Penalty,
				Insts:   -x.Insts,
			})
		}
	}

	out.sortAndTotal()
	return out
}
