package prof

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"

	"zenspec/internal/obs"
)

// Telemetry is a live view of a running experiment suite, served over HTTP:
//
//	/metrics      Prometheus text exposition of the obs metrics registry
//	              plus suite-progress gauges
//	/progress     JSON {done, total, current}
//	/profile      current simulated-machine profile, pprof protobuf
//	              (go tool pprof http://host:port/profile)
//	/profile.txt  current profile as the Top table
//	/debug/pprof/ the Go runtime's own profiler, for the host process
//
// The simulated profile and the host pprof endpoints deliberately live on the
// same mux: one is the machine under study, the other the simulator studying
// it.
type Telemetry struct {
	mu         sync.Mutex
	metrics    *obs.Metrics
	profile    *Profile
	done       int
	total      int
	current    string
	gauges     map[string]func() float64
	collectors map[string]func(io.Writer)
	srv        *http.Server
}

// NewTelemetry returns an empty telemetry hub; wire in sources with
// SetMetrics/SetProfile and drive Progress from the harness callback.
func NewTelemetry() *Telemetry { return &Telemetry{} }

// SetMetrics publishes a live metrics registry.
func (t *Telemetry) SetMetrics(m *obs.Metrics) {
	t.mu.Lock()
	t.metrics = m
	t.mu.Unlock()
}

// SetProfile publishes a live profile.
func (t *Telemetry) SetProfile(p *Profile) {
	t.mu.Lock()
	t.profile = p
	t.mu.Unlock()
}

// Progress records suite progress; the harness calls it after every trial.
func (t *Telemetry) Progress(done, total int, id string) {
	t.mu.Lock()
	t.done, t.total, t.current = done, total, id
	t.mu.Unlock()
}

// RegisterGauge publishes a named gauge on /metrics, sampled by calling fn at
// scrape time (the name goes through the usual zenspec_ prefixing). This is
// how the service plane exposes queue depth, lease counts and the like without
// the telemetry hub knowing about jobs. Re-registering a name replaces its
// sampler; fn must be safe for concurrent calls and is invoked without the
// hub's lock held, so it may call back into the hub.
func (t *Telemetry) RegisterGauge(name string, fn func() float64) {
	t.mu.Lock()
	if t.gauges == nil {
		t.gauges = map[string]func() float64{}
	}
	t.gauges[gaugeKey(name)] = fn
	t.mu.Unlock()
}

// gaugeKey canonicalizes a gauge registration name to the underscore form
// promName exports. Early service builds registered dotted keys
// ("service.queue_depth"); accepting both spellings as the same key keeps
// those call sites one release of aliasing away from removal without ever
// exporting two series for one gauge.
func gaugeKey(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, name)
}

// RegisterCollector publishes a raw Prometheus-text collector on /metrics:
// fn is called at scrape time (outside the hub's lock) and writes its own
// fully-formed exposition lines — HELP/TYPE included — after the gauge and
// obs sections. This is how the service plane mounts its zenspec_service_*
// counter and histogram registry without the telemetry hub knowing about
// jobs. Re-registering a name replaces its collector.
func (t *Telemetry) RegisterCollector(name string, fn func(io.Writer)) {
	t.mu.Lock()
	if t.collectors == nil {
		t.collectors = map[string]func(io.Writer){}
	}
	t.collectors[name] = fn
	t.mu.Unlock()
}

// Handler returns the telemetry mux.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.serveMetrics)
	mux.HandleFunc("/progress", t.serveProgress)
	mux.HandleFunc("/profile", t.serveProfile)
	mux.HandleFunc("/profile.txt", t.serveProfileText)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (":0" picks a free port) and serves the telemetry mux in
// the background. It returns the bound address; the server lives until the
// process exits or Shutdown is called.
func (t *Telemetry) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: t.Handler()}
	t.mu.Lock()
	t.srv = srv
	t.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr(), nil
}

// Shutdown gracefully stops the server started by Serve: the listener closes
// immediately (new connections are refused) while requests already in flight
// run to completion, bounded by ctx. It is a no-op when nothing is serving,
// and safe to call more than once.
func (t *Telemetry) Shutdown(ctx context.Context) error {
	t.mu.Lock()
	srv := t.srv
	t.srv = nil
	t.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// promName maps a dotted metrics key to a Prometheus metric name.
func promName(key string) string {
	var b strings.Builder
	b.WriteString("zenspec_")
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (t *Telemetry) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	t.mu.Lock()
	m := t.metrics
	done, total := t.done, t.total
	gnames := make([]string, 0, len(t.gauges))
	for k := range t.gauges {
		gnames = append(gnames, k)
	}
	sort.Strings(gnames)
	gfns := make([]func() float64, len(gnames))
	for i, k := range gnames {
		gfns[i] = t.gauges[k]
	}
	cnames := make([]string, 0, len(t.collectors))
	for k := range t.collectors {
		cnames = append(cnames, k)
	}
	sort.Strings(cnames)
	cfns := make([]func(io.Writer), len(cnames))
	for i, k := range cnames {
		cfns[i] = t.collectors[k]
	}
	t.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE zenspec_trials_done gauge\nzenspec_trials_done %d\n", done)
	fmt.Fprintf(w, "# TYPE zenspec_trials_total gauge\nzenspec_trials_total %d\n", total)
	for i, k := range gnames {
		n := promName(k)
		// Sampled outside the lock: a gauge may consult the hub itself.
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, gfns[i]())
	}
	for _, fn := range cfns {
		// Likewise outside the lock; collectors write their own exposition.
		fn(w)
	}
	if m == nil {
		return
	}
	s := m.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s summary\n", n)
		fmt.Fprintf(w, "%s_count %d\n%s_sum %d\n", n, h.Count, n, h.Sum)
	}
}

func (t *Telemetry) serveProgress(w http.ResponseWriter, _ *http.Request) {
	t.mu.Lock()
	out := struct {
		Done    int    `json:"done"`
		Total   int    `json:"total"`
		Current string `json:"current,omitempty"`
	}{t.done, t.total, t.current}
	t.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (t *Telemetry) serveProfile(w http.ResponseWriter, _ *http.Request) {
	t.mu.Lock()
	p := t.profile
	t.mu.Unlock()
	if p == nil {
		http.Error(w, "no profile source attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="zenspec.pb.gz"`)
	p.Snapshot().WritePprof(w)
}

func (t *Telemetry) serveProfileText(w http.ResponseWriter, _ *http.Request) {
	t.mu.Lock()
	p := t.profile
	t.mu.Unlock()
	if p == nil {
		http.Error(w, "no profile source attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprint(w, p.Snapshot().Text(30))
}
