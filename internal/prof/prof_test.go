package prof

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"zenspec/internal/isa"
	"zenspec/internal/obs"
)

func inst(pc uint64, op isa.Op, dispatch, issue, complete, sqStall, replay, retiredBy int64) obs.InstEvent {
	return obs.InstEvent{
		PC: pc, Inst: isa.Inst{Op: op},
		Dispatch: dispatch, Issue: issue, Complete: complete,
		SQStall: sqStall, Replay: replay, RetiredBy: retiredBy,
	}
}

func TestBreakdownPartition(t *testing.T) {
	p := New()
	// dispatch 10, issue 12, complete 40, sq-stall 20, retire by 45:
	// issue-wait 2, sq-stall 20, execute 40-12-20=8, retire 5.
	p.HandleEvent(inst(0x400028, isa.LOAD, 10, 12, 40, 20, 0, 45))
	s := p.Snapshot()
	if len(s.Samples) != 1 {
		t.Fatalf("samples = %d", len(s.Samples))
	}
	x := s.Samples[0]
	if x.Issue != 2 || x.SQStall != 20 || x.Execute != 8 || x.Retire != 5 || x.Replay != 0 {
		t.Errorf("breakdown = %+v", x)
	}
	if x.Cycles() != 35 || s.TotalCycles != 35 {
		t.Errorf("cycles = %d, total = %d, want 35", x.Cycles(), s.TotalCycles)
	}
	if x.Count != 1 || x.Transient != 0 {
		t.Errorf("counts = %d/%d", x.Count, x.Transient)
	}
}

func TestKeyIncludesOp(t *testing.T) {
	p := New()
	p.HandleEvent(inst(0x400000, isa.LOAD, 0, 0, 4, 0, 0, 4))
	p.HandleEvent(inst(0x400000, isa.STORE, 0, 0, 4, 0, 0, 4))
	if s := p.Snapshot(); len(s.Samples) != 2 {
		t.Fatalf("same-PC different-op must stay separate, got %d samples", len(s.Samples))
	}
}

func TestSquashTable(t *testing.T) {
	p := New()
	p.HandleEvent(obs.SquashEvent{Kind: obs.SquashBypass, PC: 0x400028, Start: 10, Verify: 60, Penalty: 200, Insts: 7})
	p.HandleEvent(obs.SquashEvent{Kind: obs.SquashBypass, PC: 0x400028, Start: 100, Verify: 150, Penalty: 200, Insts: 3})
	p.HandleEvent(obs.SquashEvent{Kind: obs.SquashBranch, PC: 0x400028, Start: 0, Verify: 10, Penalty: 14, Insts: 1})
	s := p.Snapshot()
	if len(s.Squashes) != 2 {
		t.Fatalf("squash sites = %d, want 2 (kinds kept separate)", len(s.Squashes))
	}
	q := s.Squashes[1] // sorted by (PC, Kind): branch < bypass alphabetically? No — by Kind string.
	for _, q2 := range s.Squashes {
		if q2.Kind == obs.SquashBypass.String() {
			q = q2
		}
	}
	if q.Count != 2 || q.Window != 100 || q.Penalty != 400 || q.Insts != 10 {
		t.Errorf("bypass site = %+v", q)
	}
}

// TestMergeCommutes asserts a∪b == b∪a and that merged JSON equals the
// one-profile result, the property the harness's worker-count determinism
// rests on.
func TestMergeCommutes(t *testing.T) {
	evs := []obs.Event{
		inst(0x400000, isa.MOVI, 0, 0, 1, 0, 0, 1),
		inst(0x400008, isa.LOAD, 1, 2, 30, 10, 0, 31),
		inst(0x400008, isa.LOAD, 40, 41, 50, 0, 0, 51),
		obs.SquashEvent{Kind: obs.SquashPSF, PC: 0x400008, Start: 1, Verify: 9, Penalty: 200, Insts: 2},
	}
	one := New()
	a, b := New(), New()
	for i, e := range evs {
		one.HandleEvent(e)
		if i%2 == 0 {
			a.HandleEvent(e)
		} else {
			b.HandleEvent(e)
		}
	}
	ab := a.Snapshot()
	ab.Merge(b.Snapshot())
	ba := b.Snapshot()
	ba.Merge(a.Snapshot())
	want, _ := json.Marshal(one.Snapshot())
	gotAB, _ := json.Marshal(ab)
	gotBA, _ := json.Marshal(ba)
	if !bytes.Equal(gotAB, want) {
		t.Errorf("a∪b = %s\nwant   %s", gotAB, want)
	}
	if !bytes.Equal(gotBA, gotAB) {
		t.Errorf("merge does not commute:\nb∪a = %s\na∪b = %s", gotBA, gotAB)
	}
}

// TestConcurrentHandleEvent hammers one Profile from many goroutines and
// checks the totals; run with -race this also proves the locking.
func TestConcurrentHandleEvent(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.HandleEvent(inst(0x400000, isa.NOP, 0, 0, 1, 0, 0, 1))
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	if len(s.Samples) != 1 || s.Samples[0].Count != workers*per {
		t.Errorf("count = %+v, want %d", s.Samples, workers*per)
	}
}

func TestTopOrderAndText(t *testing.T) {
	p := New()
	p.HandleEvent(inst(0x400000, isa.NOP, 0, 0, 1, 0, 0, 1))
	p.HandleEvent(inst(0x400028, isa.LOAD, 0, 2, 90, 70, 0, 91))
	p.HandleEvent(inst(0x400010, isa.IMUL, 0, 0, 5, 0, 0, 6))
	top := p.Snapshot().Top(2)
	if len(top) != 2 || top[0].PC != 0x400028 || top[1].PC != 0x400010 {
		t.Fatalf("top = %+v", top)
	}
	txt := p.Snapshot().Text(10)
	if !strings.Contains(txt, "sq_stall") || !strings.Contains(txt, "0x400028") {
		t.Errorf("text missing expected columns:\n%s", txt)
	}
}

func TestDiff(t *testing.T) {
	a, b := New(), New()
	a.HandleEvent(inst(0x400000, isa.LOAD, 0, 0, 10, 5, 0, 10))
	b.HandleEvent(inst(0x400000, isa.LOAD, 0, 0, 30, 25, 0, 30))
	b.HandleEvent(inst(0x400008, isa.STORE, 0, 0, 3, 0, 0, 3))
	a.HandleEvent(obs.SquashEvent{Kind: obs.SquashBypass, PC: 0x400000, Start: 0, Verify: 5, Penalty: 200, Insts: 1})

	d := Diff(a.Snapshot(), b.Snapshot())
	if len(d.Samples) != 2 {
		t.Fatalf("diff samples = %+v", d.Samples)
	}
	if d.Samples[0].PC != 0x400000 || d.Samples[0].SQStall != 20 || d.Samples[0].Count != 0 {
		t.Errorf("changed site delta = %+v", d.Samples[0])
	}
	if d.Samples[1].PC != 0x400008 || d.Samples[1].Count != 1 {
		t.Errorf("new site delta = %+v", d.Samples[1])
	}
	if len(d.Squashes) != 1 || d.Squashes[0].Count != -1 || d.Squashes[0].Penalty != -200 {
		t.Errorf("removed squash delta = %+v", d.Squashes)
	}

	if self := Diff(a.Snapshot(), a.Snapshot()); len(self.Samples) != 0 || len(self.Squashes) != 0 {
		t.Errorf("self-diff not empty: %+v", self)
	}
}

// TestPprofRoundTrip writes a snapshot as pprof protobuf and parses it back,
// checking names, the value schema, and byte determinism.
func TestPprofRoundTrip(t *testing.T) {
	p := New()
	p.HandleEvent(inst(0x400028, isa.LOAD, 10, 12, 40, 20, 0, 45))
	p.HandleEvent(inst(0x400000, isa.MOVI, 0, 0, 1, 0, 0, 1))
	s := p.Snapshot()

	var buf1, buf2 bytes.Buffer
	if err := s.WritePprof(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePprof(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("pprof bytes are not deterministic")
	}

	got, err := parsePprof(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	vals, ok := got["load@0x400028"]
	if !ok {
		t.Fatalf("missing load sample; have %v", got)
	}
	// sampleTypes order: samples, cycles, issue_wait, execute, sq_stall, replay, retire_wait.
	want := []int64{1, 35, 2, 8, 20, 0, 5}
	if len(vals) != len(want) {
		t.Fatalf("values = %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("value[%d] = %d, want %d (schema %v)", i, vals[i], want[i], sampleTypes[i])
		}
	}
}

func TestFlameOutput(t *testing.T) {
	p := New()
	p.HandleEvent(inst(0x400028, isa.LOAD, 0, 0, 40, 30, 0, 40))
	p.HandleEvent(inst(0x400000, isa.NOP, 0, 0, 1, 0, 0, 1))
	var buf bytes.Buffer
	if err := p.Snapshot().WriteFlame(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("flame lines = %q", lines)
	}
	if lines[0] != "load@0x400028 40" {
		t.Errorf("hottest line = %q", lines[0])
	}
}
