package prof

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"zenspec/internal/isa"
	"zenspec/internal/obs"
)

func telemetryFixture() *Telemetry {
	t := NewTelemetry()
	m := obs.NewMetrics()
	m.Inc("pmc.sq_stall_cycles", 120)
	m.Inc("squash.total", 3)
	m.Observe("probe.cycles", 42)
	t.SetMetrics(m)
	p := New()
	p.HandleEvent(inst(0x400028, isa.LOAD, 10, 12, 40, 20, 0, 45))
	t.SetProfile(p)
	t.Progress(3, 12, "spectre-stl")
	return t
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	h := telemetryFixture().Handler()
	code, body := get(t, h, "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"zenspec_trials_done 3",
		"zenspec_trials_total 12",
		"zenspec_pmc_sq_stall_cycles 120",
		"zenspec_squash_total 3",
		"zenspec_probe_cycles_count 1",
		"zenspec_probe_cycles_sum 42",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestProgressEndpoint(t *testing.T) {
	h := telemetryFixture().Handler()
	code, body := get(t, h, "/progress")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, `"done":3`) || !strings.Contains(body, `"current":"spectre-stl"`) {
		t.Errorf("progress = %s", body)
	}
}

func TestProfileEndpoints(t *testing.T) {
	h := telemetryFixture().Handler()
	code, body := get(t, h, "/profile")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	vals, err := parsePprof(bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("served profile does not parse: %v", err)
	}
	if _, ok := vals["load@0x400028"]; !ok {
		t.Errorf("served profile missing the load sample: %v", vals)
	}

	code, txt := get(t, h, "/profile.txt")
	if code != 200 || !strings.Contains(txt, "0x400028") {
		t.Errorf("profile.txt status %d body %q", code, txt)
	}
}

func TestProfileEndpointWithoutSource(t *testing.T) {
	h := NewTelemetry().Handler()
	if code, _ := get(t, h, "/profile"); code != http.StatusNotFound {
		t.Errorf("status %d, want 404", code)
	}
}

func TestHostPprofMounted(t *testing.T) {
	h := telemetryFixture().Handler()
	if code, body := get(t, h, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("host pprof cmdline status %d", code)
	}
}
