package prof

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zenspec/internal/isa"
	"zenspec/internal/obs"
)

func telemetryFixture() *Telemetry {
	t := NewTelemetry()
	m := obs.NewMetrics()
	m.Inc("pmc.sq_stall_cycles", 120)
	m.Inc("squash.total", 3)
	m.Observe("probe.cycles", 42)
	t.SetMetrics(m)
	p := New()
	p.HandleEvent(inst(0x400028, isa.LOAD, 10, 12, 40, 20, 0, 45))
	t.SetProfile(p)
	t.Progress(3, 12, "spectre-stl")
	return t
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	h := telemetryFixture().Handler()
	code, body := get(t, h, "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"zenspec_trials_done 3",
		"zenspec_trials_total 12",
		"zenspec_pmc_sq_stall_cycles 120",
		"zenspec_squash_total 3",
		"zenspec_probe_cycles_count 1",
		"zenspec_probe_cycles_sum 42",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestProgressEndpoint(t *testing.T) {
	h := telemetryFixture().Handler()
	code, body := get(t, h, "/progress")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, `"done":3`) || !strings.Contains(body, `"current":"spectre-stl"`) {
		t.Errorf("progress = %s", body)
	}
}

func TestProfileEndpoints(t *testing.T) {
	h := telemetryFixture().Handler()
	code, body := get(t, h, "/profile")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	vals, err := parsePprof(bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("served profile does not parse: %v", err)
	}
	if _, ok := vals["load@0x400028"]; !ok {
		t.Errorf("served profile missing the load sample: %v", vals)
	}

	code, txt := get(t, h, "/profile.txt")
	if code != 200 || !strings.Contains(txt, "0x400028") {
		t.Errorf("profile.txt status %d body %q", code, txt)
	}
}

func TestProfileEndpointWithoutSource(t *testing.T) {
	h := NewTelemetry().Handler()
	if code, _ := get(t, h, "/profile"); code != http.StatusNotFound {
		t.Errorf("status %d, want 404", code)
	}
}

func TestHostPprofMounted(t *testing.T) {
	h := telemetryFixture().Handler()
	if code, body := get(t, h, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("host pprof cmdline status %d", code)
	}
}

func TestRegisteredGauges(t *testing.T) {
	tel := telemetryFixture()
	tel.RegisterGauge("queue.depth", func() float64 { return 7 })
	tel.RegisterGauge("leases.active", func() float64 { return 2 })
	// Re-registration replaces the sampler.
	tel.RegisterGauge("queue.depth", func() float64 { return 9 })
	code, body := get(t, tel.Handler(), "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"# TYPE zenspec_queue_depth gauge",
		"zenspec_queue_depth 9",
		"zenspec_leases_active 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestGaugeKeyAliasing pins the naming-migration contract: the legacy dotted
// spelling and the canonical underscore spelling register the SAME gauge —
// one series on /metrics, last registration wins — so call sites can migrate
// one release apart without ever double-exporting.
func TestGaugeKeyAliasing(t *testing.T) {
	tel := NewTelemetry()
	tel.RegisterGauge("service.queue_depth", func() float64 { return 3 })
	tel.RegisterGauge("service_queue_depth", func() float64 { return 5 })
	code, body := get(t, tel.Handler(), "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "zenspec_service_queue_depth 5") {
		t.Errorf("canonical registration did not win:\n%s", body)
	}
	if strings.Count(body, "# TYPE zenspec_service_queue_depth gauge") != 1 {
		t.Errorf("dotted and underscore spellings exported separate series:\n%s", body)
	}
}

// TestRegisteredCollectors: a collector's self-formatted exposition lines
// appear on /metrics after the gauges, and re-registration replaces it.
func TestRegisteredCollectors(t *testing.T) {
	tel := NewTelemetry()
	tel.RegisterCollector("svc", func(w io.Writer) {
		io.WriteString(w, "# TYPE zenspec_service_demo_total counter\nzenspec_service_demo_total 1\n")
	})
	tel.RegisterCollector("svc", func(w io.Writer) {
		io.WriteString(w, "# TYPE zenspec_service_demo_total counter\nzenspec_service_demo_total 2\n")
	})
	code, body := get(t, tel.Handler(), "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "zenspec_service_demo_total 2") {
		t.Errorf("collector output missing or stale:\n%s", body)
	}
	if strings.Contains(body, "zenspec_service_demo_total 1") {
		t.Errorf("replaced collector still exporting:\n%s", body)
	}
}

// TestShutdownDrainsInFlight is the graceful-degradation contract: Shutdown
// lets a request already being served run to completion while refusing new
// connections immediately.
func TestShutdownDrainsInFlight(t *testing.T) {
	tel := telemetryFixture()
	entered := make(chan struct{})
	release := make(chan struct{})
	tel.RegisterGauge("slow.gauge", func() float64 {
		close(entered)
		<-release
		return 1
	})
	addr, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	type result struct {
		code int
		body string
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			inflight <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inflight <- result{code: resp.StatusCode, body: string(body)}
	}()
	<-entered // the request is now blocked inside the handler

	done := make(chan error, 1)
	go func() { done <- tel.Shutdown(context.Background()) }()

	// The listener closes before the drain completes: new connections must
	// fail while the in-flight scrape is still being served.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := net.DialTimeout("tcp", addr.String(), 100*time.Millisecond)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after Shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request killed by Shutdown: %v", r.err)
	}
	if r.code != 200 || !strings.Contains(r.body, "zenspec_slow_gauge 1") {
		t.Fatalf("in-flight request not served to completion: status %d body %q", r.code, r.body)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Idempotent once drained.
	if err := tel.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}
