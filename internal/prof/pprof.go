package prof

import (
	"compress/gzip"
	"fmt"
	"io"
	"strings"

	"zenspec/internal/isa"
)

// This file serializes a Snapshot to the pprof profile.proto wire format so
// `go tool pprof` can read it, using a hand-rolled protobuf writer (the repo
// takes no dependencies). Output bytes are deterministic: samples are
// emitted in Snapshot order, the string table is built in first-use order,
// and the gzip header carries no timestamp.

// profile.proto field numbers (message Profile).
const (
	pfSampleType        = 1
	pfSample            = 2
	pfMapping           = 3
	pfLocation          = 4
	pfFunction          = 5
	pfStringTable       = 6
	pfPeriodType        = 11
	pfPeriod            = 12
	pfDefaultSampleType = 14
)

// pbuf is a minimal protobuf writer: varints and length-delimited fields.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// intField writes a varint-typed field (wire type 0).
func (p *pbuf) intField(field int, v uint64) {
	p.varint(uint64(field)<<3 | 0)
	p.varint(v)
}

// bytesField writes a length-delimited field (wire type 2).
func (p *pbuf) bytesField(field int, b []byte) {
	p.varint(uint64(field)<<3 | 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *pbuf) stringField(field int, s string) { p.bytesField(field, []byte(s)) }

// strtab interns strings, index 0 reserved for "".
type strtab struct {
	idx  map[string]int64
	list []string
}

func newStrtab() *strtab {
	return &strtab{idx: map[string]int64{"": 0}, list: []string{""}}
}

func (t *strtab) id(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

// sampleTypes is the pprof value schema, one column per Breakdown component
// plus the execution count and the total. "cycles" is the default view.
var sampleTypes = [][2]string{
	{"samples", "count"},
	{"cycles", "cycles"},
	{"issue_wait", "cycles"},
	{"execute", "cycles"},
	{"sq_stall", "cycles"},
	{"replay", "cycles"},
	{"retire_wait", "cycles"},
}

// FrameName returns the pprof function name for a sample: the lower-case
// opcode at its address, e.g. "load@0x400028".
func FrameName(op string, pc uint64) string {
	return fmt.Sprintf("%s@%#x", strings.ToLower(op), pc)
}

// WritePprof writes the snapshot as gzipped pprof protobuf.
func (s *Snapshot) WritePprof(w io.Writer) error {
	st := newStrtab()
	var prof pbuf

	for _, ty := range sampleTypes {
		var vt pbuf
		vt.intField(1, uint64(st.id(ty[0])))
		vt.intField(2, uint64(st.id(ty[1])))
		prof.bytesField(pfSampleType, vt.b)
	}

	// One mapping covering the simulated code range keeps pprof from
	// inventing one.
	var hi uint64
	for _, x := range s.Samples {
		if x.PC+isa.InstBytes > hi {
			hi = x.PC + isa.InstBytes
		}
	}
	binName := st.id("zenspec")

	// Locations and functions: one of each per sample, ids are 1-based
	// Snapshot order.
	for i, x := range s.Samples {
		id := uint64(i + 1)

		var fn pbuf
		fn.intField(1, id)
		name := st.id(FrameName(x.Op, x.PC))
		fn.intField(2, uint64(name))
		fn.intField(3, uint64(name))
		fn.intField(4, uint64(binName))
		prof.bytesField(pfFunction, fn.b)

		var line pbuf
		line.intField(1, id)
		var loc pbuf
		loc.intField(1, id)
		loc.intField(2, 1) // mapping id
		loc.intField(3, x.PC)
		loc.bytesField(4, line.b)
		prof.bytesField(pfLocation, loc.b)

		var sm pbuf
		sm.intField(1, id) // location_id
		for _, v := range [...]int64{
			x.Count + x.Transient, x.Cycles(),
			x.Issue, x.Execute, x.SQStall, x.Replay, x.Retire,
		} {
			sm.intField(2, uint64(v))
		}
		prof.bytesField(pfSample, sm.b)
	}

	var mp pbuf
	mp.intField(1, 1)
	mp.intField(2, 0)
	mp.intField(3, hi)
	mp.intField(5, uint64(binName))
	mp.intField(7, 1) // has_functions: frame names are final, skip symbolization
	prof.bytesField(pfMapping, mp.b)

	var pt pbuf
	pt.intField(1, uint64(st.id("cycles")))
	pt.intField(2, uint64(st.id("cycles")))
	prof.bytesField(pfPeriodType, pt.b)
	prof.intField(pfPeriod, 1)
	prof.intField(pfDefaultSampleType, uint64(st.id("cycles")))

	// The string table goes last so every id above is already interned.
	var tail pbuf
	for _, str := range st.list {
		tail.stringField(pfStringTable, str)
	}

	gz := gzip.NewWriter(w) // zero ModTime: bytes are reproducible
	if _, err := gz.Write(prof.b); err != nil {
		return err
	}
	if _, err := gz.Write(tail.b); err != nil {
		return err
	}
	return gz.Close()
}

// WriteFlame writes the snapshot in folded-stack format — one
// "frame cycles" line per sample, cycles-descending — for flamegraph tools.
func (s *Snapshot) WriteFlame(w io.Writer) error {
	for _, x := range s.Top(0) {
		if _, err := fmt.Fprintf(w, "%s %d\n", FrameName(x.Op, x.PC), x.Cycles()); err != nil {
			return err
		}
	}
	return nil
}

// parsePprof reads back the sample values of a profile written by WritePprof,
// keyed by frame name. It understands just enough of the wire format for
// tests and Diff-from-file tooling; sample values are returned in
// sampleTypes order.
func parsePprof(r io.Reader) (map[string][]int64, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}

	type rawSample struct {
		locs []uint64
		vals []int64
	}
	var samples []rawSample
	locFunc := map[uint64]uint64{} // location id → function id
	funcName := map[uint64]int64{} // function id → name string index
	var strs []string

	next := func(b []byte) (uint64, []byte, error) {
		var v uint64
		for i := 0; i < len(b); i++ {
			v |= uint64(b[i]&0x7f) << (7 * uint(i))
			if b[i] < 0x80 {
				return v, b[i+1:], nil
			}
		}
		return 0, nil, fmt.Errorf("prof: truncated varint")
	}
	fields := func(b []byte, fn func(field int, wire int, v uint64, sub []byte) error) error {
		for len(b) > 0 {
			var key uint64
			var err error
			key, b, err = next(b)
			if err != nil {
				return err
			}
			field, wire := int(key>>3), int(key&7)
			switch wire {
			case 0:
				var v uint64
				v, b, err = next(b)
				if err != nil {
					return err
				}
				if err := fn(field, wire, v, nil); err != nil {
					return err
				}
			case 2:
				var n uint64
				n, b, err = next(b)
				if err != nil || uint64(len(b)) < n {
					return fmt.Errorf("prof: truncated field")
				}
				if err := fn(field, wire, 0, b[:n]); err != nil {
					return err
				}
				b = b[n:]
			default:
				return fmt.Errorf("prof: unsupported wire type %d", wire)
			}
		}
		return nil
	}

	err = fields(raw, func(field, wire int, v uint64, sub []byte) error {
		switch field {
		case pfSample:
			var s rawSample
			if err := fields(sub, func(f, w int, v uint64, _ []byte) error {
				switch f {
				case 1:
					s.locs = append(s.locs, v)
				case 2:
					s.vals = append(s.vals, int64(v))
				}
				return nil
			}); err != nil {
				return err
			}
			samples = append(samples, s)
		case pfLocation:
			var id, fid uint64
			if err := fields(sub, func(f, w int, v uint64, line []byte) error {
				switch f {
				case 1:
					id = v
				case 4:
					return fields(line, func(f, w int, v uint64, _ []byte) error {
						if f == 1 {
							fid = v
						}
						return nil
					})
				}
				return nil
			}); err != nil {
				return err
			}
			locFunc[id] = fid
		case pfFunction:
			var id uint64
			var name int64
			if err := fields(sub, func(f, w int, v uint64, _ []byte) error {
				switch f {
				case 1:
					id = v
				case 2:
					name = int64(v)
				}
				return nil
			}); err != nil {
				return err
			}
			funcName[id] = name
		case pfStringTable:
			strs = append(strs, string(sub))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make(map[string][]int64, len(samples))
	for _, s := range samples {
		if len(s.locs) == 0 {
			continue
		}
		ni := funcName[locFunc[s.locs[0]]]
		if ni < 0 || int(ni) >= len(strs) {
			return nil, fmt.Errorf("prof: sample names out-of-range string %d", ni)
		}
		out[strs[ni]] = s.vals
	}
	return out, nil
}
