// Package prof is a deterministic cycle-attribution profiler for the
// simulated machine. It subscribes to the obs event bus and folds every
// instruction's lifetime into a per-PC top-down stall breakdown mirroring the
// paper's Fig 2 counter taxonomy: front-end/operand wait (dispatch→issue),
// execution (issue→complete), store-queue disambiguation stall, rollback
// replay, and retire wait. Squash windows are tabulated separately per
// (PC, kind).
//
// Accumulation is commutative — per-site sums under a mutex — so one Profile
// shared by all parallel trials of an experiment snapshots identically at any
// worker count, the same property obs.Metrics has. Snapshots export to pprof
// protobuf (go tool pprof), folded flamegraph text, and signed deltas (Diff).
package prof

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"zenspec/internal/isa"
	"zenspec/internal/obs"
)

// Key identifies a profile site: the instruction's virtual address plus its
// opcode. The opcode is part of the key because different experiments in one
// suite may map different code at the same address; keying by PC alone would
// merge unrelated instructions and make the aggregate depend on nothing but
// luck.
type Key struct {
	PC uint64
	Op isa.Op
}

// SquashKey identifies a squash site: the squashing instruction's address
// plus the squash kind.
type SquashKey struct {
	PC   uint64
	Kind obs.SquashKind
}

// site accumulates one Key's cycle partition.
type site struct {
	count     int64 // retired executions
	transient int64 // wrong-path executions
	issue     int64 // dispatch→issue: front-end and operand wait
	execute   int64 // issue→complete, minus the called-out shares below
	sqStall   int64 // store-queue disambiguation stall (Fig 2 SQ-stall)
	replay    int64 // rollback-replay share of squashed loads
	retire    int64 // complete→retire: in-order retirement wait
}

// squashSite accumulates one SquashKey's transient windows.
type squashSite struct {
	count   int64
	window  int64 // cycles inside the windows (verify - start)
	penalty int64 // refetch penalty cycles after verify
	insts   int64 // wrong-path instructions executed
}

// Profile is an obs.Observer accumulating cycle attribution. Safe for
// concurrent HandleEvent calls; share one Profile across parallel trials.
type Profile struct {
	mu       sync.Mutex
	sites    map[Key]*site
	squashes map[SquashKey]*squashSite
}

// New returns an empty profile. Attach it with Bus.Subscribe (classes inst
// and squash) or through the facade's Config.Profile.
func New() *Profile {
	return &Profile{
		sites:    make(map[Key]*site),
		squashes: make(map[SquashKey]*squashSite),
	}
}

// Classes returns the event classes a Profile needs.
func Classes() []obs.Class { return []obs.Class{obs.ClassInst, obs.ClassSquash} }

// HandleInst implements obs.InstObserver: the boxing-free delivery of the
// per-instruction event. Must stay equivalent to HandleEvent on the value.
func (p *Profile) HandleInst(ev *obs.InstEvent) {
	issue := ev.Issue - ev.Dispatch
	exec := ev.Complete - ev.Issue - ev.SQStall - ev.Replay
	retire := ev.RetiredBy - ev.Complete
	if issue < 0 {
		issue = 0
	}
	if exec < 0 {
		exec = 0
	}
	if retire < 0 || ev.Transient {
		retire = 0
	}
	p.mu.Lock()
	s := p.sites[Key{ev.PC, ev.Inst.Op}]
	if s == nil {
		s = &site{}
		p.sites[Key{ev.PC, ev.Inst.Op}] = s
	}
	if ev.Transient {
		s.transient++
	} else {
		s.count++
	}
	s.issue += issue
	s.execute += exec
	s.sqStall += ev.SQStall
	s.replay += ev.Replay
	s.retire += retire
	p.mu.Unlock()
}

// HandleEvent implements obs.Observer.
func (p *Profile) HandleEvent(e obs.Event) {
	switch ev := e.(type) {
	case obs.InstEvent:
		p.HandleInst(&ev)
	case obs.SquashEvent:
		window := ev.Verify - ev.Start
		if window < 0 {
			window = 0
		}
		p.mu.Lock()
		s := p.squashes[SquashKey{ev.PC, ev.Kind}]
		if s == nil {
			s = &squashSite{}
			p.squashes[SquashKey{ev.PC, ev.Kind}] = s
		}
		s.count++
		s.window += window
		s.penalty += ev.Penalty
		s.insts += int64(ev.Insts)
		p.mu.Unlock()
	}
}

// Sample is one profile site in a Snapshot. Cycles() = Issue + Execute +
// SQStall + Replay + Retire is the instruction's full dispatch→retire span
// summed over executions.
type Sample struct {
	PC        uint64 `json:"pc"`
	Op        string `json:"op"`
	Count     int64  `json:"count"`
	Transient int64  `json:"transient,omitempty"`
	Issue     int64  `json:"issue"`
	Execute   int64  `json:"execute"`
	SQStall   int64  `json:"sq_stall"`
	Replay    int64  `json:"replay"`
	Retire    int64  `json:"retire"`
}

// Cycles returns the sample's total attributed cycles.
func (s Sample) Cycles() int64 {
	return s.Issue + s.Execute + s.SQStall + s.Replay + s.Retire
}

// SquashSample is one squash site in a Snapshot.
type SquashSample struct {
	PC      uint64 `json:"pc"`
	Kind    string `json:"kind"`
	Count   int64  `json:"count"`
	Window  int64  `json:"window_cycles"`
	Penalty int64  `json:"penalty_cycles"`
	Insts   int64  `json:"insts"`
}

// Snapshot is a point-in-time copy of a Profile, shaped for JSON. Samples and
// Squashes are sorted by (PC, Op/Kind), so snapshots of deterministic runs
// marshal byte-identically regardless of accumulation order.
type Snapshot struct {
	TotalCycles int64          `json:"total_cycles"`
	Samples     []Sample       `json:"samples,omitempty"`
	Squashes    []SquashSample `json:"squashes,omitempty"`
}

// Snapshot copies the profile.
func (p *Profile) Snapshot() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := &Snapshot{}
	out.Samples = make([]Sample, 0, len(p.sites))
	for k, s := range p.sites {
		out.Samples = append(out.Samples, Sample{
			PC: k.PC, Op: k.Op.String(),
			Count: s.count, Transient: s.transient,
			Issue: s.issue, Execute: s.execute,
			SQStall: s.sqStall, Replay: s.replay, Retire: s.retire,
		})
	}
	sort.Slice(out.Samples, func(i, j int) bool {
		if out.Samples[i].PC != out.Samples[j].PC {
			return out.Samples[i].PC < out.Samples[j].PC
		}
		return out.Samples[i].Op < out.Samples[j].Op
	})
	for _, s := range out.Samples {
		out.TotalCycles += s.Cycles()
	}
	out.Squashes = make([]SquashSample, 0, len(p.squashes))
	for k, s := range p.squashes {
		out.Squashes = append(out.Squashes, SquashSample{
			PC: k.PC, Kind: k.Kind.String(),
			Count: s.count, Window: s.window, Penalty: s.penalty, Insts: s.insts,
		})
	}
	sort.Slice(out.Squashes, func(i, j int) bool {
		if out.Squashes[i].PC != out.Squashes[j].PC {
			return out.Squashes[i].PC < out.Squashes[j].PC
		}
		return out.Squashes[i].Kind < out.Squashes[j].Kind
	})
	if len(out.Samples) == 0 {
		out.Samples = nil
	}
	if len(out.Squashes) == 0 {
		out.Squashes = nil
	}
	return out
}

// Merge folds other into s: samples and squash sites matched by key are
// summed, unmatched ones appended. Merging is commutative and associative up
// to the final sort, so any merge order yields the same Snapshot.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	byKey := make(map[Sample]int, len(s.Samples)) // keyed on (PC, Op) via a stripped copy
	keyOf := func(x Sample) Sample { return Sample{PC: x.PC, Op: x.Op} }
	for i, x := range s.Samples {
		byKey[keyOf(x)] = i
	}
	for _, x := range other.Samples {
		if i, ok := byKey[keyOf(x)]; ok {
			a := &s.Samples[i]
			a.Count += x.Count
			a.Transient += x.Transient
			a.Issue += x.Issue
			a.Execute += x.Execute
			a.SQStall += x.SQStall
			a.Replay += x.Replay
			a.Retire += x.Retire
		} else {
			byKey[keyOf(x)] = len(s.Samples)
			s.Samples = append(s.Samples, x)
		}
	}
	sqKey := make(map[SquashSample]int, len(s.Squashes))
	keyOfSq := func(x SquashSample) SquashSample { return SquashSample{PC: x.PC, Kind: x.Kind} }
	for i, x := range s.Squashes {
		sqKey[keyOfSq(x)] = i
	}
	for _, x := range other.Squashes {
		if i, ok := sqKey[keyOfSq(x)]; ok {
			a := &s.Squashes[i]
			a.Count += x.Count
			a.Window += x.Window
			a.Penalty += x.Penalty
			a.Insts += x.Insts
		} else {
			sqKey[keyOfSq(x)] = len(s.Squashes)
			s.Squashes = append(s.Squashes, x)
		}
	}
	s.sortAndTotal()
}

// sortAndTotal restores the canonical order and recomputes TotalCycles.
func (s *Snapshot) sortAndTotal() {
	sort.Slice(s.Samples, func(i, j int) bool {
		if s.Samples[i].PC != s.Samples[j].PC {
			return s.Samples[i].PC < s.Samples[j].PC
		}
		return s.Samples[i].Op < s.Samples[j].Op
	})
	sort.Slice(s.Squashes, func(i, j int) bool {
		if s.Squashes[i].PC != s.Squashes[j].PC {
			return s.Squashes[i].PC < s.Squashes[j].PC
		}
		return s.Squashes[i].Kind < s.Squashes[j].Kind
	})
	s.TotalCycles = 0
	for _, x := range s.Samples {
		s.TotalCycles += x.Cycles()
	}
}

// Top returns the n samples with the most attributed cycles, ties broken by
// (PC, Op) so the order is deterministic. n <= 0 means all.
func (s *Snapshot) Top(n int) []Sample {
	out := append([]Sample(nil), s.Samples...)
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].Cycles(), out[j].Cycles()
		if ci != cj {
			return ci > cj
		}
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		return out[i].Op < out[j].Op
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Text renders the top-n table (plus the squash table when present) for
// terminal output.
func (s *Snapshot) Text(n int) string {
	if s == nil || len(s.Samples) == 0 {
		return "  (no profile samples)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %10s %6s %8s %8s %8s %8s %8s  %-10s %s\n",
		"cycles", "count", "issue", "exec", "sq_stall", "replay", "retire", "pc", "op")
	for _, x := range s.Top(n) {
		fmt.Fprintf(&b, "  %10d %6d %8d %8d %8d %8d %8d  %#-10x %s\n",
			x.Cycles(), x.Count, x.Issue, x.Execute, x.SQStall, x.Replay, x.Retire,
			x.PC, strings.ToLower(x.Op))
	}
	if len(s.Squashes) > 0 {
		fmt.Fprintf(&b, "  squashes:\n")
		for _, q := range s.Squashes {
			fmt.Fprintf(&b, "  %10d× %-8s window=%d penalty=%d insts=%d  pc=%#x\n",
				q.Count, q.Kind, q.Window, q.Penalty, q.Insts, q.PC)
		}
	}
	return b.String()
}
