package pipeline

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
)

// rdpruReadings runs a single-RDPRU program n times on one core and returns
// the readings. The cycle counter is monotonic across runs, so readings grow;
// jitter perturbs only the reported value, never the machine's progress.
func rdpruReadings(t *testing.T, cfg Config, n int) []int64 {
	t.Helper()
	e := newEnv(t, cfg)
	b := asm.NewBuilder()
	b.Rdpru(isa.RAX)
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	out := make([]int64, n)
	for i := range out {
		var regs [isa.NumRegs]uint64
		if res := e.run(codeBase, &regs); res.Stop != StopHalt {
			t.Fatalf("run %d stopped with %v", i, res.Stop)
		}
		out[i] = int64(regs[isa.RAX])
	}
	return out
}

// TestTimerJitterDeterministicBoundedZeroMean pins the fault model's timer
// noise contract: the jittered reading differs from the clean one by at most
// ±J, the perturbation sequence is a pure function of TimerSeed, and over a
// couple thousand readings the noise is symmetric (no systematic clock skew —
// a biased timer would shift every calibrated threshold in the attacks).
func TestTimerJitterDeterministicBoundedZeroMean(t *testing.T) {
	const n = 2000
	const j = 9
	cfg := DefaultConfig()
	clean := rdpruReadings(t, cfg, n)

	cfg.TimerJitter = j
	cfg.TimerSeed = 3
	noisy := rdpruReadings(t, cfg, n)

	var sum, nonzero int64
	for i := range clean {
		d := noisy[i] - clean[i]
		if d < -j || d > j {
			t.Fatalf("reading %d: jitter %d outside ±%d", i, d, j)
		}
		if d != 0 {
			nonzero++
		}
		sum += d
	}
	if nonzero < n/2 {
		t.Fatalf("jitter barely fired: %d/%d readings perturbed", nonzero, n)
	}
	// Uniform on [-9, 9]: the mean of 2000 draws concentrates near 0 with
	// sigma ≈ 5.2/sqrt(2000) ≈ 0.12; a bound of 1 is ~8 sigma.
	if mean := float64(sum) / n; mean > 1 || mean < -1 {
		t.Fatalf("jitter mean %.3f, want ~0 (sum %d over %d readings)", mean, sum, n)
	}

	again := rdpruReadings(t, cfg, n)
	for i := range noisy {
		if noisy[i] != again[i] {
			t.Fatalf("same TimerSeed diverged at reading %d: %d vs %d", i, noisy[i], again[i])
		}
	}
	cfg.TimerSeed = 4
	other := rdpruReadings(t, cfg, n)
	same := 0
	for i := range noisy {
		if noisy[i] == other[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different TimerSeed produced an identical jitter stream")
	}
}
