package pipeline

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/cache"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/pmc"
	"zenspec/internal/predict"
)

// env is a minimal single-process machine for pipeline tests.
type env struct {
	phys *mem.Physical
	as   *mem.AddrSpace
	ch   *cache.Hierarchy
	unit *predict.Unit
	core *Core
}

func newEnv(t testing.TB, cfg Config) *env {
	t.Helper()
	phys := mem.NewPhysical()
	ch := cache.New(cache.DefaultConfig())
	unit := predict.NewUnit(predict.Config{Seed: 1})
	core := New(cfg, phys, ch, unit, &pmc.Counters{})
	return &env{phys: phys, as: mem.NewAddrSpace(), ch: ch, unit: unit, core: core}
}

// mapCode maps code at va with fresh frames and returns the base.
func (e *env) mapCode(va uint64, code []byte) {
	for off := uint64(0); off < uint64(len(code))+mem.PageSize-1; off += mem.PageSize {
		if _, ok := e.as.Lookup(va + off); !ok {
			e.as.Map(va+off, e.phys.AllocFrame(), mem.PermR|mem.PermX)
		}
	}
	for i, b := range code {
		pa, f := e.as.Translate(va+uint64(i), mem.AccessRead)
		if f != mem.FaultNone {
			panic("mapCode translate")
		}
		e.phys.WriteBytes(pa, []byte{b})
	}
}

// mapData maps n bytes of RW data at va.
func (e *env) mapData(va, n uint64) {
	for off := uint64(0); off < n+mem.PageSize-1; off += mem.PageSize {
		if _, ok := e.as.Lookup(va + off); !ok {
			e.as.Map(va+off, e.phys.AllocFrame(), mem.PermRW)
		}
	}
}

func (e *env) write64(va, v uint64) {
	pa, f := e.as.Translate(va, mem.AccessWrite)
	if f != mem.FaultNone {
		panic("write64 translate")
	}
	e.phys.Write64(pa, v)
}

func (e *env) read64(va uint64) uint64 {
	pa, f := e.as.Translate(va, mem.AccessRead)
	if f != mem.FaultNone {
		panic("read64 translate")
	}
	return e.phys.Read64(pa)
}

func (e *env) run(entry uint64, regs *[isa.NumRegs]uint64) RunResult {
	return e.core.Run(e.as, entry, regs, 0)
}

const codeBase = 0x400000
const dataBase = 0x10000

func TestArithmeticProgram(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Movi(isa.RAX, 6).Movi(isa.RCX, 7).Imul(isa.RDX, isa.RAX, isa.RCX)
	b.Addi(isa.RDX, isa.RDX, 100)
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	res := e.run(codeBase, &regs)
	if res.Stop != StopHalt {
		t.Fatalf("stop = %v", res.Stop)
	}
	if regs[isa.RDX] != 142 {
		t.Errorf("rdx = %d, want 142", regs[isa.RDX])
	}
	if res.Insts != 5 {
		t.Errorf("insts = %d", res.Insts)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	e := newEnv(t, Config{})
	e.mapData(dataBase, mem.PageSize)
	b := asm.NewBuilder()
	b.Movi(isa.RDI, dataBase)
	b.Movi(isa.RAX, 0x1234)
	b.Store(isa.RDI, 8, isa.RAX)
	b.Load(isa.RBX, isa.RDI, 8)
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	res := e.run(codeBase, &regs)
	if res.Stop != StopHalt {
		t.Fatalf("stop = %v", res.Stop)
	}
	if regs[isa.RBX] != 0x1234 {
		t.Errorf("rbx = %#x, want 0x1234 (store-to-load forward)", regs[isa.RBX])
	}
	if e.read64(dataBase+8) != 0x1234 {
		t.Error("store not committed to memory")
	}
}

func TestBranchLoop(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Movi(isa.RCX, 10).Movi(isa.RAX, 0)
	b.Label("loop")
	b.Addi(isa.RAX, isa.RAX, 3)
	b.Subi(isa.RCX, isa.RCX, 1)
	b.Jnz(isa.RCX, "loop")
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	res := e.run(codeBase, &regs)
	if res.Stop != StopHalt {
		t.Fatalf("stop = %v", res.Stop)
	}
	if regs[isa.RAX] != 30 {
		t.Errorf("rax = %d, want 30", regs[isa.RAX])
	}
	if e.core.PMC().Get(pmc.BranchMispredicts) == 0 {
		t.Error("a fresh predictor should mispredict at least once")
	}
}

func TestSyscallStops(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Movi(isa.RAX, 42).Syscall().Movi(isa.RAX, 99).Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	res := e.run(codeBase, &regs)
	if res.Stop != StopSyscall {
		t.Fatalf("stop = %v", res.Stop)
	}
	if regs[isa.RAX] != 42 {
		t.Errorf("rax = %d", regs[isa.RAX])
	}
	if res.EndPC != codeBase+2*isa.InstBytes {
		t.Errorf("EndPC = %#x", res.EndPC)
	}
	// Resume after the syscall.
	res = e.run(res.EndPC, &regs)
	if res.Stop != StopHalt || regs[isa.RAX] != 99 {
		t.Errorf("resume failed: %v rax=%d", res.Stop, regs[isa.RAX])
	}
}

func TestFaultOnUnmappedLoad(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Movi(isa.RDI, 0x123456)
	b.Load(isa.RAX, isa.RDI, 0)
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	res := e.run(codeBase, &regs)
	if res.Stop != StopFault || res.Fault != mem.FaultNotMapped {
		t.Fatalf("stop = %v fault = %v", res.Stop, res.Fault)
	}
	if res.FaultVA != 0x123456 {
		t.Errorf("FaultVA = %#x", res.FaultVA)
	}
}

func TestBadOpcodeFaults(t *testing.T) {
	e := newEnv(t, Config{})
	e.mapCode(codeBase, make([]byte, 16)) // zeroed memory = BAD opcodes
	var regs [isa.NumRegs]uint64
	res := e.run(codeBase, &regs)
	if res.Stop != StopFault {
		t.Fatalf("stop = %v", res.Stop)
	}
}

func TestInstLimit(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Label("spin").Jmp("spin")
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	res := e.core.Run(e.as, codeBase, &regs, 100)
	if res.Stop != StopInstLimit {
		t.Fatalf("stop = %v", res.Stop)
	}
	if res.Insts != 100 {
		t.Errorf("insts = %d", res.Insts)
	}
}

func TestRDPRUMonotonicAcrossRuns(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Rdpru(isa.RAX).Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	e.run(codeBase, &regs)
	first := regs[isa.RAX]
	e.run(codeBase, &regs)
	if regs[isa.RAX] <= first {
		t.Errorf("rdpru not monotonic: %d then %d", first, regs[isa.RAX])
	}
}

func TestTimerQuantum(t *testing.T) {
	e := newEnv(t, Config{TimerQuantum: 64})
	b := asm.NewBuilder()
	b.Rdpru(isa.RAX).Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	for i := 0; i < 5; i++ {
		e.run(codeBase, &regs)
		if regs[isa.RAX]%64 != 0 {
			t.Fatalf("quantized rdpru returned %d", regs[isa.RAX])
		}
	}
}

func TestClflushEvicts(t *testing.T) {
	e := newEnv(t, Config{})
	e.mapData(dataBase, mem.PageSize)
	pa, _ := e.as.Translate(dataBase, mem.AccessRead)
	e.ch.Touch(pa)
	b := asm.NewBuilder()
	b.Movi(isa.RDI, dataBase).Clflush(isa.RDI, 0).Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	if res := e.run(codeBase, &regs); res.Stop != StopHalt {
		t.Fatalf("stop = %v", res.Stop)
	}
	if e.ch.Cached(pa) {
		t.Error("clflush did not evict the line")
	}
}

func TestFlushReloadTimingVisible(t *testing.T) {
	// The basic cache covert channel: a flushed line takes much longer to
	// load than a cached one, and RDPRU sees it.
	e := newEnv(t, Config{})
	e.mapData(dataBase, mem.PageSize)
	b := asm.NewBuilder()
	b.Rdpru(isa.R10)
	b.Load(isa.RAX, isa.RDI, 0)
	b.Rdpru(isa.R11)
	b.Sub(isa.RAX, isa.R11, isa.R10)
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))

	time := func() uint64 {
		var regs [isa.NumRegs]uint64
		regs[isa.RDI] = dataBase
		e.run(codeBase, &regs)
		return regs[isa.RAX]
	}
	cold := time() // first access misses
	warm := time()
	if warm >= cold {
		t.Errorf("warm %d !< cold %d", warm, cold)
	}
	// Flush and measure again: must look cold.
	pa, _ := e.as.Translate(dataBase, mem.AccessRead)
	e.ch.Flush(pa)
	flushed := time()
	if flushed <= warm+50 {
		t.Errorf("flushed %d not clearly slower than warm %d", flushed, warm)
	}
}
