// Package pipeline implements the cycle-level out-of-order core on which all
// of the paper's experiments run.
//
// The model is a timestamp-based dataflow simulation: instructions are
// processed in program order, each receiving issue/complete timestamps from
// its operand readiness, port contention and memory behaviour, with in-order
// retirement. Memory speculation follows the paper's machinery exactly: a
// load that becomes address-ready while an older store's address is still
// being generated consults the speculative memory access predictors
// (predict.Disambiguator). Mispredictions open a transient episode — younger
// instructions execute with the wrong value, leaving cache fills and
// predictor updates behind — and then roll back, replaying from the load
// after a configurable penalty. Predictor updates and cache state are never
// rolled back, which is the paper's Vulnerability 4 and the engine behind
// Spectre-STL and Spectre-CTL.
package pipeline

import (
	"errors"
	"fmt"
	"math/rand"

	"zenspec/internal/cache"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/obs"
	"zenspec/internal/pmc"
	"zenspec/internal/predict"
)

// ErrCancelled is the panic value of a run abandoned by Config.Stop. Callers
// that guard trials with recover (the harness's resilient loop) observe it as
// the recovered value; nothing in the pipeline itself recovers it, because a
// cancelled run's machine is abandoned wholesale.
var ErrCancelled = errors.New("pipeline: run cancelled")

// stopCheckInterval is how many retired instructions pass between polls of
// Config.Stop: frequent enough that a runaway trial dies within microseconds,
// rare enough that the check never shows up in the per-cycle profile.
const stopCheckInterval = 1024

// MMU translates virtual addresses for the running context. *mem.AddrSpace
// satisfies it; the kernel model wraps it with COW handling.
type MMU interface {
	Translate(va uint64, acc mem.Access) (uint64, mem.Fault)
}

// epochMMU is the optional MMU extension the decoded-fetch cache keys on: a
// counter that changes whenever any translation could. *mem.AddrSpace and
// *kernel.Process implement it; an MMU without it runs with the cache off.
type epochMMU interface {
	TranslationEpoch() uint64
}

// Config sets the core's microarchitectural parameters. Zero values are
// replaced by DefaultConfig's.
type Config struct {
	FetchWidth int // instructions dispatched per cycle
	ROBSize    int // reorder-buffer window
	SQSize     int // store-queue entries (48 on Zen 3 family 17h)
	LQSize     int // load-queue entries (72 on Zen 3)
	ALUPorts   int
	MulPorts   int
	LoadPorts  int
	StorePorts int

	ALULatency     int
	MulLatency     int // the IMUL chains delaying store address generation
	ForwardLatency int // store-queue forward (STLF and PSF)
	AGULatency     int // address generation

	BranchMissPenalty int
	RollbackPenalty   int // extra refetch delay after a memory-speculation rollback
	TLBMissPenalty    int
	DTLBSize          int
	ITLBSize          int

	// EpisodeCap bounds how many instructions execute inside one transient
	// episode (the hardware bound is the ROB size).
	EpisodeCap int
	// TimerQuantum, when > 1, quantizes RDPRU readings — the "secure timer"
	// mitigation of Section VI-B (and the coarse browser timer of V-C2).
	TimerQuantum int64
	// TimerJitter, when > 0, adds deterministic pseudo-random noise in
	// [-TimerJitter, +TimerJitter] to RDPRU readings — the measurement noise
	// of a constructed browser timer.
	TimerJitter int64
	// TimerSeed seeds the jitter stream.
	TimerSeed int64

	// Stop, when non-nil, is the cooperative cancellation check: the main
	// simulation loop polls it once every stopCheckInterval instructions and,
	// when it returns true, abandons the run by panicking with ErrCancelled.
	// The panic unwinds through whatever host code drives the machine, so a
	// trial that overran its harness deadline actually stops simulating
	// instead of running detached forever. A nil Stop (the default) costs one
	// predictable branch per instruction and never fires; polling a Stop that
	// returns false leaves results bit-identical to a nil one.
	Stop func() bool
}

// DefaultConfig approximates the paper's Zen 3 test machines.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        4,
		ROBSize:           256,
		SQSize:            48,
		LQSize:            72,
		ALUPorts:          4,
		MulPorts:          1,
		LoadPorts:         2,
		StorePorts:        1,
		ALULatency:        1,
		MulLatency:        3,
		ForwardLatency:    8,
		AGULatency:        1,
		BranchMissPenalty: 16,
		RollbackPenalty:   200,
		TLBMissPenalty:    20,
		DTLBSize:          64,
		ITLBSize:          64,
		EpisodeCap:        64,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.FetchWidth == 0 {
		c.FetchWidth = d.FetchWidth
	}
	if c.ROBSize == 0 {
		c.ROBSize = d.ROBSize
	}
	if c.SQSize == 0 {
		c.SQSize = d.SQSize
	}
	if c.LQSize == 0 {
		c.LQSize = d.LQSize
	}
	if c.ALUPorts == 0 {
		c.ALUPorts = d.ALUPorts
	}
	if c.MulPorts == 0 {
		c.MulPorts = d.MulPorts
	}
	if c.LoadPorts == 0 {
		c.LoadPorts = d.LoadPorts
	}
	if c.StorePorts == 0 {
		c.StorePorts = d.StorePorts
	}
	if c.ALULatency == 0 {
		c.ALULatency = d.ALULatency
	}
	if c.MulLatency == 0 {
		c.MulLatency = d.MulLatency
	}
	if c.ForwardLatency == 0 {
		c.ForwardLatency = d.ForwardLatency
	}
	if c.AGULatency == 0 {
		c.AGULatency = d.AGULatency
	}
	if c.BranchMissPenalty == 0 {
		c.BranchMissPenalty = d.BranchMissPenalty
	}
	if c.RollbackPenalty == 0 {
		c.RollbackPenalty = d.RollbackPenalty
	}
	if c.TLBMissPenalty == 0 {
		c.TLBMissPenalty = d.TLBMissPenalty
	}
	if c.DTLBSize == 0 {
		c.DTLBSize = d.DTLBSize
	}
	if c.ITLBSize == 0 {
		c.ITLBSize = d.ITLBSize
	}
	if c.EpisodeCap == 0 {
		c.EpisodeCap = d.EpisodeCap
	}
	return c
}

// StopReason says why a run ended.
type StopReason uint8

// Stop reasons.
const (
	StopHalt StopReason = iota
	StopSyscall
	StopFault
	StopInstLimit
)

func (s StopReason) String() string {
	switch s {
	case StopHalt:
		return "halt"
	case StopSyscall:
		return "syscall"
	case StopFault:
		return "fault"
	case StopInstLimit:
		return "inst-limit"
	}
	return "stop?"
}

// StldEvent records one verified store-load speculation, the ground truth
// the reverse-engineering harness validates its timing classifier against.
type StldEvent struct {
	StoreIPA, LoadIPA uint64 // instruction physical addresses
	StoreVA, LoadVA   uint64 // data virtual addresses
	Type              predict.ExecType
	Transient         bool // verified inside a transient episode
	Cycle             int64
}

// RunResult reports one Run.
type RunResult struct {
	Stop    StopReason
	Cycles  int64  // retirement time of the last instruction, relative to run start
	EndPC   uint64 // pc after the stopping instruction
	Fault   mem.Fault
	FaultVA uint64
	FaultPC uint64 // pc of the faulting instruction (for retry after COW break)
	Insts   uint64 // retired instruction count
	Stlds   []StldEvent
}

// TraceEntry records one executed instruction for the instruction tracer.
//
// Deprecated: TraceEntry survives only as the payload of the SetTracer shim.
// New code should subscribe an obs.Observer for obs.ClassInst events — via
// zenspec.Config.Observer, zenspec.Observe, or Core.AttachBus — which carry
// the same fields (obs.InstEvent) plus the hardware-thread index, alongside
// every other event class (squashes, forwards, predictor trainings, ...).
type TraceEntry struct {
	PC   uint64
	IPA  uint64
	Inst isa.Inst
	// RetiredBy is the in-order retirement frontier after this instruction
	// (absolute cycles).
	RetiredBy int64
	// Transient marks wrong-path execution inside a speculation window;
	// transient entries never become architectural.
	Transient bool
}

// Tracer receives one entry per executed instruction, including transient
// ones. Tracing is for debugging gadgets; it does not perturb timing.
//
// Deprecated: use an obs.Observer subscribed to obs.ClassInst instead.
type Tracer func(TraceEntry)

// Core is one simulated hardware thread's execution resources. Caches and
// physical memory may be shared between cores; the predictor unit is
// per-thread (the paper found PSFP/SSBP duplicated across SMT threads).
type Core struct {
	cfg    Config
	phys   *mem.Physical
	cache  *cache.Hierarchy
	dis    predict.Disambiguator
	pmcs   *pmc.Counters
	dtlb   *mem.TLB
	itlb   *mem.TLB
	bp     *branchPredictor
	cycle  int64 // monotonic cycle counter across runs (what RDPRU reads)
	jitter *rand.Rand

	bus          *obs.Bus
	cpuID        int
	tracerCancel func()

	// Hot-loop reuse. All of it is semantics-preserving: the pooled state is
	// fully re-initialized per use and the fetch cache revalidates against
	// the frame version and translation epoch, so a Run computes exactly
	// what it would with fresh allocations and uncached fetches.
	runSt      *runState   // reusable top-level run state
	epFree     []*runState // pool of transient-episode clones
	fetchCache []fetchPage // direct-mapped decoded code pages
	fetchGen   uint64      // generation tag of the current Run's MMU
	fetchOK    bool        // cache usable for the current Run

	// fetchGens maps recently seen MMUs to their generation tags so that
	// alternating between address spaces (a context-switching attacker and
	// victim) does not evict either one's cached decodes: entries from
	// different MMUs coexist in fetchCache/xlat, distinguished by gen. An
	// MMU whose epoch changed gets a fresh gen, orphaning its old entries.
	fetchGens     [4]fetchGenEntry
	fetchGenSeq   uint64 // last generation handed out (0 = never matches)
	fetchGenClock uint64 // round-robin eviction cursor for fetchGens

	// xlat caches successful data translations ([0] reads, [1] writes),
	// validated by the same generation tag as the fetch cache. Failed
	// translations (faults, COW write breaks) are never cached, so the
	// fault behaviour is exactly the page table's.
	xlat [2][xlatCacheSize]xlatEntry

	// instEv is the staging buffer for the boxing-free EmitInst fast path.
	// It lives on the Core rather than the loop frame because its address
	// escapes into the observer call: a stack-declared event would be
	// heap-allocated once per Run even when nothing is subscribed. The Bus
	// contract (the pointee is only valid for the duration of the call)
	// makes the reuse safe.
	instEv obs.InstEvent
}

// fetchGenEntry associates one MMU with its current generation tag.
type fetchGenEntry struct {
	mmu   MMU
	epoch uint64
	gen   uint64
}

// xlatEntry caches one successful data-page translation.
type xlatEntry struct {
	vpn uint64
	pa  uint64 // page-aligned physical base
	gen uint64
}

// xlatCacheSize is the per-kind data-translation cache size (power of two).
const xlatCacheSize = 256

// fetchPage caches one whole decoded code page: the first fetch from a page
// decodes all of its instruction slots at once, so freshly placed gadgets
// (new code at new addresses every probe) pay one page walk and one batch
// decode instead of a slow fetch per instruction. An entry is valid while
// the generation matches (same MMU, same translation epoch — see fetchGens)
// and the backing frame is unwritten (Frame.Version); decoding is a pure
// function of the frame bytes, so a valid hit is bit-identical to decoding
// on the spot.
//
// Slots are decoded at the alignment class (pc mod InstBytes) of the fetch
// that filled the entry — code sliding executes at arbitrary byte offsets —
// and a fetch at a different alignment refills the page. Slot i covers bytes
// [align+i*8, align+i*8+8); the partial tail slot of a misaligned page is
// never filled and never served (the fast path bounds the offset).
type fetchPage struct {
	vpn    uint64
	paBase uint64 // page-aligned physical base
	fver   uint64
	gen    uint64
	align  uint64 // pc mod InstBytes this page was decoded at
	frame  *mem.Frame
	insts  *[pageInsts]isa.Inst
}

// pageInsts is the number of fixed-size instruction slots in one page.
const pageInsts = mem.PageSize / isa.InstBytes

// fetchCacheSize is the direct-mapped decoded-page cache size (power of
// two). The fingerprinting experiments keep a few hundred code pages live at
// once (two per placed probe), so the size must comfortably exceed that:
// decoded-inst arrays are allocated lazily per touched slot (≤4KB each).
const fetchCacheSize = 1024

// AttachBus connects the core to an event bus as hardware thread cpuID. The
// kernel model attaches every core of a machine to one shared bus at boot; a
// standalone core keeps a nil bus (all emission disabled) until attached.
func (c *Core) AttachBus(b *obs.Bus, cpuID int) {
	c.bus = b
	c.cpuID = cpuID
}

// Bus returns the attached event bus (nil when unattached).
func (c *Core) Bus() *obs.Bus { return c.bus }

// SetTracer installs (or, with nil, removes) the instruction tracer.
//
// Deprecated: SetTracer is a compatibility shim over the event bus — it
// subscribes an adapter that converts this core's obs.InstEvent stream back
// into TraceEntry callbacks. Subscribe an obs.Observer for obs.ClassInst
// instead (zenspec.Config.Observer or zenspec.Observe at the facade).
func (c *Core) SetTracer(t Tracer) {
	if c.tracerCancel != nil {
		c.tracerCancel()
		c.tracerCancel = nil
	}
	if t == nil {
		return
	}
	if c.bus == nil {
		c.bus = obs.NewBus()
	}
	cpu := c.cpuID
	c.tracerCancel = c.bus.Subscribe(obs.ObserverFunc(func(e obs.Event) {
		ie, ok := e.(obs.InstEvent)
		if !ok || ie.CPU != cpu {
			return
		}
		t(TraceEntry{PC: ie.PC, IPA: ie.IPA, Inst: ie.Inst, RetiredBy: ie.RetiredBy, Transient: ie.Transient})
	}), obs.Options{Classes: []obs.Class{obs.ClassInst}})
}

// New assembles a core. pmcs may be nil (a private counter set is created).
func New(cfg Config, phys *mem.Physical, ch *cache.Hierarchy, dis predict.Disambiguator, pmcs *pmc.Counters) *Core {
	if phys == nil || ch == nil || dis == nil {
		panic("pipeline: nil component")
	}
	if pmcs == nil {
		pmcs = &pmc.Counters{}
	}
	cfg = cfg.withDefaults()
	return &Core{
		cfg:    cfg,
		phys:   phys,
		cache:  ch,
		dis:    dis,
		pmcs:   pmcs,
		dtlb:   mem.NewTLB(cfg.DTLBSize),
		itlb:   mem.NewTLB(cfg.ITLBSize),
		bp:     newBranchPredictor(),
		jitter: rand.New(rand.NewSource(cfg.TimerSeed + 1)),
	}
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// PMC returns the core's performance counters.
func (c *Core) PMC() *pmc.Counters { return c.pmcs }

// Disambiguator returns the attached predictor unit.
func (c *Core) Disambiguator() predict.Disambiguator { return c.dis }

// Cache returns the attached hierarchy.
func (c *Core) Cache() *cache.Hierarchy { return c.cache }

// Cycle returns the current absolute cycle count.
func (c *Core) Cycle() int64 { return c.cycle }

// FlushTLBs empties both TLBs (done on address-space switch).
func (c *Core) FlushTLBs() {
	c.dtlb.Flush()
	c.itlb.Flush()
}

// SetTimerQuantum adjusts RDPRU resolution at run time (secure-timer
// mitigation / browser profile).
func (c *Core) SetTimerQuantum(q int64) { c.cfg.TimerQuantum = q }

// Run executes from entry until HALT, SYSCALL, a fault, or maxInsts retired
// instructions (0 means a default safety cap). The register file is read
// from and written back to regs.
func (c *Core) Run(mmu MMU, entry uint64, regs *[isa.NumRegs]uint64, maxInsts uint64) RunResult {
	if maxInsts == 0 {
		maxInsts = 1 << 20
	}
	pmcOn := c.bus.On(obs.ClassPMC)
	var pmcStart pmc.Counters
	if pmcOn {
		pmcStart = c.pmcs.Snapshot()
	}
	c.prepFetch(mmu)
	st := c.acquireRun(entry, *regs)
	res := c.mainLoop(mmu, st, maxInsts)
	*regs = st.regs
	// Advance the global clock past everything this run did, with a small
	// inter-run gap (pipeline drain).
	end := st.maxDone
	if st.lastRetire > end {
		end = st.lastRetire
	}
	c.cycle = end + 8
	if pmcOn {
		// One counter readout per run — the delta a PMC-instrumented harness
		// would take around a measured region.
		c.bus.Emit(obs.PMCEvent{CPU: c.cpuID, Cycle: c.cycle, Counts: c.pmcs.Delta(pmcStart)})
	}
	return res
}

// prepFetch arms the decoded-fetch cache for one Run. Translations only
// change through mapping calls (which bump the MMU's epoch) and never during
// a Run, so one epoch check per Run suffices; frame content changes are
// caught per-hit through Frame.Version.
func (c *Core) prepFetch(mmu MMU) {
	em, ok := mmu.(epochMMU)
	if !ok {
		c.fetchOK = false
		return
	}
	epoch := em.TranslationEpoch()
	if c.fetchCache == nil {
		c.fetchCache = make([]fetchPage, fetchCacheSize)
	}
	for i := range c.fetchGens {
		g := &c.fetchGens[i]
		if g.mmu == mmu {
			if g.epoch != epoch {
				c.fetchGenSeq++
				g.gen = c.fetchGenSeq
				g.epoch = epoch
			}
			c.fetchGen = g.gen
			c.fetchOK = true
			return
		}
	}
	slot := &c.fetchGens[c.fetchGenClock%uint64(len(c.fetchGens))]
	c.fetchGenClock++
	c.fetchGenSeq++
	*slot = fetchGenEntry{mmu: mmu, epoch: epoch, gen: c.fetchGenSeq}
	c.fetchGen = slot.gen
	c.fetchOK = true
}

func (c *Core) String() string {
	return fmt.Sprintf("core{dis=%s cycle=%d}", c.dis.Name(), c.cycle)
}
