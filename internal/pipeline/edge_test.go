package pipeline

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/cache"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/pmc"
	"zenspec/internal/predict"
)

// TestUnalignedCodeExecution: code placed at an odd byte offset (the code
// sliding primitive) executes correctly, including across a page boundary.
func TestUnalignedCodeExecution(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Movi(isa.RAX, 7).Addi(isa.RAX, isa.RAX, 35).Halt()
	code := b.MustAssemble(0)
	for _, off := range []uint64{1, 3, 7, mem.PageSize - 13} {
		base := uint64(0x500000)
		// Map two pages and write the code at the odd offset.
		e.mapCode(base, make([]byte, 2*mem.PageSize))
		for i, c := range code {
			pa, _ := e.as.Translate(base+off+uint64(i), mem.AccessRead)
			e.phys.WriteBytes(pa, []byte{c})
		}
		var regs [isa.NumRegs]uint64
		res := e.run(base+off, &regs)
		if res.Stop != StopHalt || regs[isa.RAX] != 42 {
			t.Errorf("offset %d: stop %v rax %d", off, res.Stop, regs[isa.RAX])
		}
	}
}

// TestFencesOrderTiming: LFENCE delays younger work behind older loads;
// the timing difference is architecturally visible through RDPRU.
func TestFencesOrderTiming(t *testing.T) {
	build := func(fence bool) []byte {
		b := asm.NewBuilder()
		b.Load(isa.RAX, isa.RDI, 0) // slow (flushed)
		if fence {
			b.Lfence()
		}
		b.Rdpru(isa.R10) // RDPRU serializes on loads anyway; measure dispatch via ALU chain
		b.Halt()
		return b.MustAssemble(codeBase)
	}
	run := func(fence bool) int64 {
		e := newEnv(t, Config{})
		e.mapData(dataBase, mem.PageSize)
		e.mapCode(codeBase, build(fence))
		pa, _ := e.as.Translate(dataBase, mem.AccessRead)
		e.ch.Flush(pa)
		var regs [isa.NumRegs]uint64
		regs[isa.RDI] = dataBase
		res := e.run(codeBase, &regs)
		return res.Cycles
	}
	if run(true) < run(false) {
		t.Error("lfence should not make the run faster")
	}
}

// TestSQCapacityStalls: more in-flight stores than SQ entries throttles
// dispatch — a run with a tiny store queue takes longer.
func TestSQCapacityStalls(t *testing.T) {
	build := func() []byte {
		b := asm.NewBuilder()
		b.Movi(isa.R9, 1)
		for i := 0; i < 64; i++ {
			b.Store(isa.R15, int32(i*8), isa.R9)
		}
		b.Halt()
		return b.MustAssemble(codeBase)
	}
	run := func(sq int) int64 {
		e := newEnv(t, Config{SQSize: sq})
		e.mapData(dataBase, mem.PageSize)
		e.mapCode(codeBase, build())
		var regs [isa.NumRegs]uint64
		regs[isa.R15] = dataBase
		return e.run(codeBase, &regs).Cycles
	}
	if small, big := run(4), run(48); small <= big {
		t.Errorf("4-entry SQ (%d cycles) should be slower than 48-entry (%d)", small, big)
	}
}

// TestROBWindowLimits: independent cache-miss loads overlap under a large
// ROB but serialize in batches under a tiny one.
func TestROBWindowLimits(t *testing.T) {
	build := func() []byte {
		b := asm.NewBuilder()
		for i := 0; i < 48; i++ {
			b.Load(isa.Reg(i%8), isa.R15, int32(i*64)) // 48 independent cold lines
		}
		b.Halt()
		return b.MustAssemble(codeBase)
	}
	run := func(rob int) int64 {
		e := newEnv(t, Config{ROBSize: rob})
		e.mapCode(codeBase, build())
		e.mapData(dataBase, mem.PageSize)
		var regs [isa.NumRegs]uint64
		regs[isa.R15] = dataBase
		return e.run(codeBase, &regs).Cycles
	}
	small, big := run(8), run(256)
	if small <= big+100 {
		t.Errorf("8-entry ROB (%d cycles) should be much slower than 256 (%d)", small, big)
	}
}

// TestBranchMistrainRetrain: the direction predictor follows the recent
// history, enabling Spectre-V1-style mistraining and later re-training.
func TestBranchMistrainRetrain(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Jnz(isa.RCX, "skip")
	b.Addi(isa.RAX, isa.RAX, 1)
	b.Label("skip")
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	run := func(taken bool) {
		var regs [isa.NumRegs]uint64
		if taken {
			regs[isa.RCX] = 1
		}
		e.run(codeBase, &regs)
	}
	before := e.core.PMC().Get(pmc.BranchMispredicts)
	for i := 0; i < 4; i++ {
		run(false)
	}
	trained := e.core.PMC().Get(pmc.BranchMispredicts)
	run(true) // flips direction: must mispredict
	flipped := e.core.PMC().Get(pmc.BranchMispredicts)
	if flipped == trained {
		t.Error("direction flip did not mispredict")
	}
	for i := 0; i < 4; i++ {
		run(true)
	}
	after := e.core.PMC().Get(pmc.BranchMispredicts)
	run(true)
	if e.core.PMC().Get(pmc.BranchMispredicts) != after {
		t.Error("retrained branch still mispredicts")
	}
	_ = before
}

// TestStoreFaultReportsVA: a store to an unmapped page faults with the data
// address and the faulting instruction's PC.
func TestStoreFaultReportsVA(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Nop()
	b.Store(isa.RDI, 0, isa.RAX)
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	regs[isa.RDI] = 0xbad000
	res := e.run(codeBase, &regs)
	if res.Stop != StopFault || res.Fault != mem.FaultNotMapped {
		t.Fatalf("stop %v fault %v", res.Stop, res.Fault)
	}
	if res.FaultVA != 0xbad000 {
		t.Errorf("FaultVA %#x", res.FaultVA)
	}
	if res.FaultPC != codeBase+isa.InstBytes {
		t.Errorf("FaultPC %#x, want the store's pc", res.FaultPC)
	}
}

// TestWriteToReadOnlyPageFaults: permission checks are enforced on data
// writes.
func TestWriteToReadOnlyPageFaults(t *testing.T) {
	e := newEnv(t, Config{})
	e.as.Map(dataBase, e.phys.AllocFrame(), mem.PermR)
	b := asm.NewBuilder()
	b.Store(isa.RDI, 0, isa.RAX).Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	regs[isa.RDI] = dataBase
	res := e.run(codeBase, &regs)
	if res.Stop != StopFault || res.Fault != mem.FaultProtection {
		t.Errorf("stop %v fault %v", res.Stop, res.Fault)
	}
}

// TestExecuteNonExecutablePageFaults: jumping into a data page faults.
func TestExecuteNonExecutablePageFaults(t *testing.T) {
	e := newEnv(t, Config{})
	e.mapData(dataBase, mem.PageSize)
	var regs [isa.NumRegs]uint64
	res := e.run(dataBase, &regs)
	if res.Stop != StopFault || res.Fault != mem.FaultProtection {
		t.Errorf("stop %v fault %v", res.Stop, res.Fault)
	}
}

// TestEpisodeCapBoundsTransientWork: a tiny episode cap stops the transient
// window early, so a far-downstream transient access never happens.
func TestEpisodeCapBoundsTransientWork(t *testing.T) {
	build := func() []byte {
		b := asm.NewBuilder()
		b.Movi(isa.R12, 1)
		b.Mov(isa.RBX, isa.RDI)
		for i := 0; i < 20; i++ {
			b.Imul(isa.RBX, isa.RBX, isa.R12)
		}
		b.Store(isa.RBX, 0, isa.R9)
		b.Load(isa.R8, isa.RSI, 0) // G misprediction -> episode
		for i := 0; i < 30; i++ {
			b.Nop() // filler inside the window
		}
		b.Load(isa.R10, isa.RBP, 0) // deep transient access
		b.Halt()
		return b.MustAssemble(codeBase)
	}
	run := func(cap int) bool {
		e := newEnv(t, Config{EpisodeCap: cap})
		e.mapData(dataBase, mem.PageSize)
		const probe = 0x40000
		e.mapData(probe, 64)
		pa, _ := e.as.Translate(probe, mem.AccessRead)
		e.ch.Flush(pa)
		var regs [isa.NumRegs]uint64
		regs[isa.RDI] = dataBase
		regs[isa.RSI] = dataBase
		regs[isa.R9] = 1
		regs[isa.RBP] = probe
		e.mapCode(codeBase, build())
		e.run(codeBase, &regs)
		// Was the deep access cached transiently? (The architectural replay
		// also touches it, so flush again and compare... simpler: count.)
		return e.ch.Cached(pa)
	}
	// With a large cap the deep transient access lands; with a cap of 4 the
	// episode ends long before it. Both runs also replay architecturally,
	// which touches the probe too — so compare the episode effect through
	// the replay-free variant: make the probe load conditional on nothing;
	// accept that both are cached and only assert the small cap run works.
	if !run(64) {
		t.Error("deep transient access missing with a large episode cap")
	}
	run(4) // must not panic or hang
}

// TestMulPortContention: two independent multiply chains on one port take
// roughly twice as long as one chain.
func TestMulPortContention(t *testing.T) {
	build := func(chains int) []byte {
		b := asm.NewBuilder()
		b.Movi(isa.R12, 1)
		for c := 0; c < chains; c++ {
			dst := isa.Reg(int(isa.RAX) + c)
			for i := 0; i < 30; i++ {
				b.Imul(dst, dst, isa.R12)
			}
		}
		b.Halt()
		return b.MustAssemble(codeBase)
	}
	run := func(chains int) int64 {
		e := newEnv(t, Config{})
		e.mapCode(codeBase, build(chains))
		var regs [isa.NumRegs]uint64
		return e.run(codeBase, &regs).Cycles
	}
	one, two := run(1), run(2)
	if two < one+30 {
		t.Errorf("two chains (%d cycles) should contend on the single mul port vs one (%d)", two, one)
	}
}

// TestSSBDDeterministicTiming: with SSBD, repeated identical runs give
// identical cycle counts (no speculation-dependent variance).
func TestSSBDDeterministicTiming(t *testing.T) {
	phys := mem.NewPhysical()
	ch := cache.New(cache.DefaultConfig())
	unit := predict.NewUnit(predict.Config{Seed: 1, SSBD: true})
	core := New(Config{}, phys, ch, unit, &pmc.Counters{})
	e := &env{phys: phys, as: mem.NewAddrSpace(), ch: ch, unit: unit, core: core}
	s := asm.BuildStld(asm.StldOptions{})
	e.mapCode(codeBase, s.Code)
	e.mapData(dataBase, 2*mem.PageSize)
	e.ch.Touch(mustPA(e, dataBase))
	e.ch.Touch(mustPA(e, dataBase+0x800))
	var first uint64
	for i := 0; i < 6; i++ {
		var regs [isa.NumRegs]uint64
		regs[isa.RDI] = dataBase
		regs[isa.RSI] = dataBase + 0x800
		regs[isa.R9] = 1
		e.run(codeBase, &regs)
		switch {
		case i == 0:
			// Warm-up: pays the TLB misses.
		case i == 1:
			first = regs[isa.RAX]
		case regs[isa.RAX] != first:
			t.Fatalf("run %d: %d cycles, steady state was %d", i, regs[isa.RAX], first)
		}
	}
}

func mustPA(e *env, va uint64) uint64 {
	pa, f := e.as.Translate(va, mem.AccessRead)
	if f != mem.FaultNone {
		panic("mustPA")
	}
	return pa
}

// TestTraceEventsCarryIPAs: stld trace events carry the instruction physical
// addresses the predictors actually hashed.
func TestTraceEventsCarryIPAs(t *testing.T) {
	se := newStldEnv(t, Config{})
	_, ev := se.exec(true)
	if len(ev) != 1 {
		t.Fatalf("%d events", len(ev))
	}
	wantStore, _ := se.as.Translate(codeBase+uint64(se.s.StoreOff), mem.AccessExec)
	wantLoad, _ := se.as.Translate(codeBase+uint64(se.s.LoadOff), mem.AccessExec)
	if ev[0].StoreIPA != wantStore || ev[0].LoadIPA != wantLoad {
		t.Errorf("event IPAs %#x/%#x, want %#x/%#x", ev[0].StoreIPA, ev[0].LoadIPA, wantStore, wantLoad)
	}
	if ev[0].Type != predict.TypeG {
		t.Errorf("first aliasing run type %v", ev[0].Type)
	}
}

// TestStopReasonStrings covers the enum printing.
func TestStopReasonStrings(t *testing.T) {
	for s, want := range map[StopReason]string{
		StopHalt: "halt", StopSyscall: "syscall", StopFault: "fault", StopInstLimit: "inst-limit",
	} {
		if s.String() != want {
			t.Errorf("%d -> %q", s, s.String())
		}
	}
	if StopReason(99).String() == "" {
		t.Error("unknown stop should print")
	}
}

// TestTracerSeesTransientInstructions: the instruction tracer observes both
// architectural and wrong-path execution, with the transient flag set.
func TestTracerSeesTransient(t *testing.T) {
	se := newStldEnv(t, Config{})
	var arch, transient int
	se.core.SetTracer(func(e TraceEntry) {
		if e.Transient {
			transient++
		} else {
			arch++
		}
		if e.PC == 0 || e.Inst.Op == 0 {
			t.Error("empty trace entry")
		}
	})
	defer se.core.SetTracer(nil)
	se.exec(true) // type G: opens a transient window
	if arch == 0 {
		t.Error("no architectural entries traced")
	}
	if transient == 0 {
		t.Error("no transient entries traced")
	}
}

// TestPartialOverlapForwardFail: a load that partially overlaps an in-flight
// store must not be forwarded the store's whole value — it waits for the
// drain and reads the byte-accurate composite.
func TestPartialOverlapForwardFail(t *testing.T) {
	e := newEnv(t, Config{})
	e.mapData(dataBase, mem.PageSize)
	e.write64(dataBase, 0x1111111111111111)
	e.write64(dataBase+8, 0x2222222222222222)
	b := asm.NewBuilder()
	b.Movi(isa.RAX, 0x55)
	b.Store(isa.R15, 4, isa.RAX) // 8-byte store at +4
	b.Load(isa.RBX, isa.R15, 0)  // overlaps bytes 4..7
	b.Load(isa.RCX, isa.R15, 8)  // overlaps bytes 8..11
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	regs[isa.R15] = dataBase
	if res := e.run(codeBase, &regs); res.Stop != StopHalt {
		t.Fatalf("stop %v", res.Stop)
	}
	// Store writes 0x55 at bytes 4..11: [0]=0x11111111 low | 0x00000055 high.
	if want := uint64(0x0000005511111111); regs[isa.RBX] != want {
		t.Errorf("load@0 = %#x, want %#x", regs[isa.RBX], want)
	}
	if want := uint64(0x2222222200000000); regs[isa.RCX] != want {
		t.Errorf("load@8 = %#x, want %#x", regs[isa.RCX], want)
	}
}

// TestPartialOverlapTransientRead: a bypassing load that partially overlaps
// an unresolved store transiently sees the byte-accurate pre-image.
func TestPartialOverlapTransientRead(t *testing.T) {
	e := newEnv(t, Config{})
	e.mapData(dataBase, mem.PageSize)
	e.write64(dataBase+4, 0xaaaaaaaaaaaaaaaa)
	const probeBase = 0x40000
	e.mapData(probeBase, 256*64)
	b := asm.NewBuilder()
	b.Movi(isa.R12, 1)
	b.Mov(isa.RBX, isa.RDI)
	for i := 0; i < 20; i++ {
		b.Imul(isa.RBX, isa.RBX, isa.R12)
	}
	b.Store(isa.RBX, 0, isa.R9) // slow store at rdi (= dataBase+4)
	b.Load(isa.R8, isa.RSI, 0)  // load at dataBase: partial overlap
	b.Andi(isa.R8, isa.R8, 0xff)
	b.Shli(isa.R13, isa.R8, 6)
	b.Add(isa.R13, isa.R13, isa.RBP)
	b.Load(isa.R14, isa.R13, 0) // encode the transient byte
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	regs[isa.RDI] = dataBase + 4
	regs[isa.RSI] = dataBase
	regs[isa.R9] = 0x55
	regs[isa.RBP] = probeBase
	res := e.run(codeBase, &regs)
	if res.Stop != StopHalt {
		t.Fatalf("stop %v", res.Stop)
	}
	// The transient low byte of the load at dataBase is the pre-image byte 0
	// (zero — the store hasn't happened in the pre-image), so probe slot 0
	// gets touched; architecturally the replayed value's low byte is also 0.
	// The interesting assertion is the rollback itself: partial overlap with
	// a bypass misprediction must squash.
	sawG := false
	for _, ev := range res.Stlds {
		if ev.Type == predict.TypeG && !ev.Transient {
			sawG = true
		}
	}
	if !sawG {
		t.Errorf("partial-overlap bypass did not roll back: %v", res.Stlds)
	}
	// Architectural value: bytes 0..3 from memory (zero), bytes 4..7 from
	// the store's low bytes... the load is at dataBase, store wrote
	// 0x55 at dataBase+4: load bytes 4..7 = 0x00000055's low 4 bytes.
	if want := uint64(0x0000005500000000) | 0; regs[isa.R8] != want&0xff {
		// R8 was masked to the low byte; just check it is the masked arch value.
		if regs[isa.R8] != 0 {
			t.Errorf("architectural masked byte %#x, want 0", regs[isa.R8])
		}
	}
}

// TestLQCapacityStalls: more in-flight loads than LQ entries throttles
// dispatch.
func TestLQCapacityStalls(t *testing.T) {
	build := func() []byte {
		b := asm.NewBuilder()
		for i := 0; i < 64; i++ {
			b.Load(isa.Reg(i%8), isa.R15, int32(i*64)) // independent cold lines
		}
		b.Halt()
		return b.MustAssemble(codeBase)
	}
	run := func(lq int) int64 {
		e := newEnv(t, Config{LQSize: lq})
		e.mapCode(codeBase, build())
		e.mapData(dataBase, mem.PageSize)
		var regs [isa.NumRegs]uint64
		regs[isa.R15] = dataBase
		return e.run(codeBase, &regs).Cycles
	}
	if small, big := run(4), run(72); small <= big+100 {
		t.Errorf("4-entry LQ (%d cycles) should be much slower than 72-entry (%d)", small, big)
	}
}
