package pipeline

// branchPredictor is a small table of 2-bit saturating counters indexed by
// the branch's virtual address. It is just rich enough to be mistrained the
// way Spectre-V1 style gadgets require (Fig 9's branch-misprediction
// transient window).
type branchPredictor struct {
	counters [1024]uint8
}

func newBranchPredictor() *branchPredictor { return &branchPredictor{} }

func (b *branchPredictor) idx(pc uint64) int { return int((pc >> 3) % 1024) }

// predict returns the predicted direction for the conditional branch at pc.
func (b *branchPredictor) predict(pc uint64) bool { return b.counters[b.idx(pc)] >= 2 }

// update trains the counter with the actual direction.
func (b *branchPredictor) update(pc uint64, taken bool) {
	i := b.idx(pc)
	if taken {
		if b.counters[i] < 3 {
			b.counters[i]++
		}
	} else if b.counters[i] > 0 {
		b.counters[i]--
	}
}

// flush resets all counters (not performed by any hardware event in the
// paper's machines; exposed for experiments).
func (b *branchPredictor) flush() { b.counters = [1024]uint8{} }
