package pipeline

import (
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/obs"
	"zenspec/internal/pmc"
	"zenspec/internal/predict"
)

type outKind uint8

const (
	oOK outKind = iota
	oHalt
	oSyscall
	oFault
)

type outcome struct {
	kind    outKind
	fault   mem.Fault
	faultVA uint64
}

// episodeCtx is present while executing inside a transient window.
type episodeCtx struct {
	verifyTime int64 // the squash point: no dispatch at or beyond this time
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// fetchInst translates and reads the instruction at st.pc, applying ITLB
// timing and the Fig 2 instruction-fetch PMC event. The fast path serves the
// decoded-page cache: a hit skips the page walk, the byte copy and the
// decode, but still performs the exact ITLB timing and PMC accounting of a
// full fetch, so cached and uncached runs are cycle-identical.
func (c *Core) fetchInst(mmu MMU, st *runState) (isa.Inst, uint64, mem.Fault) {
	pc := st.pc
	if c.fetchOK {
		vpn := mem.VPN(pc)
		e := &c.fetchCache[vpn&(fetchCacheSize-1)]
		off := mem.PageOffset(pc)
		if e.gen == c.fetchGen && e.vpn == vpn && e.frame.Version == e.fver &&
			off&(isa.InstBytes-1) == e.align && off <= mem.PageSize-isa.InstBytes {
			pa := e.paBase | off
			if _, hit := c.itlb.Lookup(pc); hit {
				c.pmcs.Inc(pmc.ITLBHit4K)
			} else {
				c.itlb.Insert(pc, mem.PFNOf(pa))
				st.fetchCycle += int64(c.cfg.TLBMissPenalty)
			}
			in := e.insts[off>>3]
			if in.Op == opUndecoded {
				in = isa.Decode(e.frame.Data[off : off+isa.InstBytes])
				e.insts[off>>3] = in
			}
			return in, pa, mem.FaultNone
		}
	}
	return c.fetchSlow(mmu, st, pc)
}

// opUndecoded marks a decoded-page slot not yet demand-decoded. isa.Decode
// can never produce it (invalid opcodes decode to BAD), so the sentinel
// cannot collide with real code. Slots decode on first execution rather
// than in a batch when the page enters the cache: pages are cached at page
// granularity but mitigation-heavy workloads remap constantly, and eagerly
// decoding 512 slots per refill made those runs slower than no cache at
// all.
const opUndecoded isa.Op = 0xFF

// undecodedPage is the refill image: every slot carries the sentinel.
var undecodedPage = func() (p [pageInsts]isa.Inst) {
	for i := range p {
		p[i].Op = opUndecoded
	}
	return
}()

// fetchSlow is the uncached fetch: translate, read, decode, and (when the
// cache is armed and the fetch is cacheable) claim the page's cache slot,
// decoding the fetched instruction and marking the rest of the page for
// demand decode. Page-crossing (misaligned) fetches and fetches from
// unallocated frames are never cached.
func (c *Core) fetchSlow(mmu MMU, st *runState, pc uint64) (isa.Inst, uint64, mem.Fault) {
	pa, f := mmu.Translate(pc, mem.AccessExec)
	if f != mem.FaultNone {
		return isa.Inst{}, 0, f
	}
	if _, hit := c.itlb.Lookup(pc); hit {
		c.pmcs.Inc(pmc.ITLBHit4K)
	} else {
		c.itlb.Insert(pc, mem.PFNOf(pa))
		st.fetchCycle += int64(c.cfg.TLBMissPenalty)
	}
	first := mem.PageSize - mem.PageOffset(pc)
	if first < isa.InstBytes {
		// Misaligned fetch crossing a page boundary: assemble the bytes
		// from both pages and decode without caching.
		var buf [isa.InstBytes]byte
		c.phys.ReadInto(pa, buf[:first])
		pa2, f2 := mmu.Translate(pc+first, mem.AccessExec)
		if f2 != mem.FaultNone {
			return isa.Inst{}, 0, f2
		}
		c.phys.ReadInto(pa2, buf[first:])
		return isa.Decode(buf[:]), pa, mem.FaultNone
	}
	fr := c.phys.FrameAt(pa)
	if fr == nil {
		// Unallocated frames read as zeros (like ReadInto) and are not
		// cached: allocation would change them without a version bump.
		return isa.Decode(make([]byte, isa.InstBytes)), pa, mem.FaultNone
	}
	off := mem.PageOffset(pc)
	if !c.fetchOK {
		return isa.Decode(fr.Data[off : off+isa.InstBytes]), pa, mem.FaultNone
	}
	vpn := mem.VPN(pc)
	e := &c.fetchCache[vpn&(fetchCacheSize-1)]
	if e.insts == nil {
		e.insts = new([pageInsts]isa.Inst)
	}
	align := off & (isa.InstBytes - 1)
	*e.insts = undecodedPage
	e.insts[off>>3] = isa.Decode(fr.Data[off : off+isa.InstBytes])
	e.vpn = vpn
	e.paBase = pa &^ uint64(mem.PageMask)
	e.fver = fr.Version
	e.gen = c.fetchGen
	e.align = align
	e.frame = fr
	return e.insts[off>>3], pa, mem.FaultNone
}

func (c *Core) mainLoop(mmu MMU, st *runState, maxInsts uint64) RunResult {
	start := st.lastRetire
	var res RunResult
	// The subscription mask is hoisted out of the loop: the Bus contract says
	// subscriptions are installed between runs, never concurrently with one.
	// The event struct is staged in the Core-owned buffer and delivered via
	// the boxing-free EmitInst (see Core.instEv for why it is not a local).
	instOn := c.bus.On(obs.ClassInst)
	stop := c.cfg.Stop
	for {
		if st.insts >= maxInsts {
			res.Stop = StopInstLimit
			break
		}
		if stop != nil && st.insts%stopCheckInterval == 0 && stop() {
			panic(ErrCancelled)
		}
		// The decoded-page hit path is open-coded here (and in runEpisode):
		// fetchInst is too big for the inliner, and a per-instruction call
		// was the single largest line in the fig11 profile. The logic must
		// stay byte-for-byte equivalent to fetchInst's fast path.
		var (
			in  isa.Inst
			ipa uint64
			hot bool
		)
		if c.fetchOK {
			vpn := mem.VPN(st.pc)
			e := &c.fetchCache[vpn&(fetchCacheSize-1)]
			off := mem.PageOffset(st.pc)
			if e.gen == c.fetchGen && e.vpn == vpn && e.frame.Version == e.fver &&
				off&(isa.InstBytes-1) == e.align && off <= mem.PageSize-isa.InstBytes {
				ipa = e.paBase | off
				if _, hit := c.itlb.Lookup(st.pc); hit {
					c.pmcs.Inc(pmc.ITLBHit4K)
				} else {
					c.itlb.Insert(st.pc, mem.PFNOf(ipa))
					st.fetchCycle += int64(c.cfg.TLBMissPenalty)
				}
				in = e.insts[off>>3]
				if in.Op == opUndecoded {
					in = isa.Decode(e.frame.Data[off : off+isa.InstBytes])
					e.insts[off>>3] = in
				}
				hot = true
			}
		}
		if !hot {
			var f mem.Fault
			in, ipa, f = c.fetchSlow(mmu, st, st.pc)
			if f != mem.FaultNone {
				res.Stop, res.Fault, res.FaultVA, res.FaultPC = StopFault, f, st.pc, st.pc
				break
			}
		}
		pc := st.pc
		st.pc += isa.InstBytes
		st.insts++
		o := c.exec(mmu, st, in, pc, ipa, nil)
		c.bus.StampCycle(st.lastRetire)
		if instOn {
			c.instEv = obs.InstEvent{
				CPU: c.cpuID, PC: pc, IPA: ipa, Inst: in,
				Dispatch: st.attr.dispatch, Issue: st.attr.issue, Complete: st.attr.complete,
				SQStall: st.attr.sqStall, Replay: st.attr.replay,
				RetiredBy: st.lastRetire,
			}
			c.bus.EmitInst(&c.instEv)
		}
		if o.kind == oOK {
			continue
		}
		switch o.kind {
		case oHalt:
			res.Stop = StopHalt
		case oSyscall:
			res.Stop = StopSyscall
		case oFault:
			res.Stop, res.Fault, res.FaultVA, res.FaultPC = StopFault, o.fault, o.faultVA, pc
		}
		break
	}
	res.Cycles = st.lastRetire - start
	res.EndPC = st.pc
	res.Insts = st.insts
	if len(st.stlds) > 0 {
		// Copy out: st is pooled and its stlds buffer is recycled next Run,
		// while RunResult.Stlds escapes to callers that may hold it.
		res.Stlds = append([]StldEvent(nil), st.stlds...)
	}
	return res
}

// runEpisode executes the transient window on a cloned state until the
// squash point, the episode cap, or a terminal instruction. Cache fills,
// TLB fills and predictor updates performed inside the episode persist; the
// cloned architectural state is discarded by the caller. The episode's
// store-load speculation events are returned marked transient, along with
// how many wrong-path instructions executed.
func (c *Core) runEpisode(mmu MMU, st *runState, verifyTime int64) ([]StldEvent, int) {
	ep := &episodeCtx{verifyTime: verifyTime}
	executed := 0
	instOn := c.bus.On(obs.ClassInst)
	for steps := 0; steps < c.cfg.EpisodeCap; steps++ {
		if st.fetchCycle >= verifyTime {
			break
		}
		// Open-coded decoded-page hit path; must stay equivalent to
		// fetchInst's fast path (see mainLoop).
		var (
			in  isa.Inst
			ipa uint64
			hot bool
		)
		if c.fetchOK {
			vpn := mem.VPN(st.pc)
			e := &c.fetchCache[vpn&(fetchCacheSize-1)]
			off := mem.PageOffset(st.pc)
			if e.gen == c.fetchGen && e.vpn == vpn && e.frame.Version == e.fver &&
				off&(isa.InstBytes-1) == e.align && off <= mem.PageSize-isa.InstBytes {
				ipa = e.paBase | off
				if _, hit := c.itlb.Lookup(st.pc); hit {
					c.pmcs.Inc(pmc.ITLBHit4K)
				} else {
					c.itlb.Insert(st.pc, mem.PFNOf(ipa))
					st.fetchCycle += int64(c.cfg.TLBMissPenalty)
				}
				in = e.insts[off>>3]
				if in.Op == opUndecoded {
					in = isa.Decode(e.frame.Data[off : off+isa.InstBytes])
					e.insts[off>>3] = in
				}
				hot = true
			}
		}
		if !hot {
			var f mem.Fault
			in, ipa, f = c.fetchSlow(mmu, st, st.pc)
			if f != mem.FaultNone {
				break
			}
		}
		pc := st.pc
		st.pc += isa.InstBytes
		o := c.exec(mmu, st, in, pc, ipa, ep)
		executed++
		if instOn {
			c.instEv = obs.InstEvent{
				CPU: c.cpuID, PC: pc, IPA: ipa, Inst: in,
				Dispatch: st.attr.dispatch, Issue: st.attr.issue, Complete: st.attr.complete,
				SQStall: st.attr.sqStall, Replay: st.attr.replay,
				RetiredBy: st.lastRetire, Transient: true,
			}
			c.bus.EmitInst(&c.instEv)
		}
		if o.kind != oOK {
			break
		}
	}
	for i := range st.stlds {
		st.stlds[i].Transient = true
	}
	return st.stlds, executed
}

// emitSquash reports one completed transient episode on the bus; penalty is
// the refetch delay charged after verify.
func (c *Core) emitSquash(kind obs.SquashKind, pc uint64, start, verify, penalty int64, insts int) {
	if c.bus.On(obs.ClassSquash) {
		c.bus.Emit(obs.SquashEvent{CPU: c.cpuID, Kind: kind, PC: pc, Start: start, Verify: verify, Penalty: penalty, Insts: insts})
	}
}

// translateData translates a data access and returns the extra DTLB-miss
// latency.
func (c *Core) translateData(mmu MMU, va uint64, write bool) (uint64, int64, mem.Fault) {
	pa, f := c.xlate(mmu, va, write)
	if f != mem.FaultNone {
		return 0, 0, f
	}
	var extra int64
	if _, hit := c.dtlb.Lookup(va); !hit {
		extra = int64(c.cfg.TLBMissPenalty)
		c.dtlb.Insert(va, mem.PFNOf(pa))
	}
	return pa, extra, mem.FaultNone
}

// xlate is the page-table walk behind translateData, served from the
// generation-validated translation cache when possible.
func (c *Core) xlate(mmu MMU, va uint64, write bool) (uint64, mem.Fault) {
	k := 0
	if write {
		k = 1
	}
	vpn := mem.VPN(va)
	if c.fetchOK {
		e := &c.xlat[k][vpn&(xlatCacheSize-1)]
		if e.gen == c.fetchGen && e.vpn == vpn {
			return e.pa | mem.PageOffset(va), mem.FaultNone
		}
	}
	acc := mem.AccessRead
	if write {
		acc = mem.AccessWrite
	}
	pa, f := mmu.Translate(va, acc)
	if f != mem.FaultNone {
		return 0, f
	}
	if c.fetchOK {
		c.xlat[k][vpn&(xlatCacheSize-1)] = xlatEntry{vpn: vpn, pa: pa &^ uint64(mem.PageMask), gen: c.fetchGen}
	}
	return pa, mem.FaultNone
}

// transientRead returns the value a bypassing load observes at time t:
// memory with every store whose address is still unresolved at t undone,
// byte by byte (committed stores are already in physical memory; the
// pre-image log reverts the in-flight ones, youngest first).
func (c *Core) transientRead(st *runState, pa uint64, t int64) uint64 {
	var buf [8]byte
	c.phys.ReadInto(pa, buf[:])
	for i := len(st.stores) - 1; i >= 0; i-- {
		s := &st.stores[i]
		if s.addrTime <= t || !overlap8(s.pa, pa) {
			continue
		}
		for b := 0; b < 8; b++ {
			byteAddr := s.pa + uint64(b)
			if byteAddr >= pa && byteAddr < pa+8 {
				buf[byteAddr-pa] = byte(s.oldVal >> (8 * b))
			}
		}
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}

func evalALU(op isa.Op, a, b uint64, imm int32) uint64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	case isa.SHL:
		return a << (b & 63)
	case isa.SHR:
		return a >> (b & 63)
	case isa.ADDI:
		return a + uint64(int64(imm))
	case isa.SUBI:
		return a - uint64(int64(imm))
	case isa.ANDI:
		return a & uint64(int64(imm))
	case isa.ORI:
		return a | uint64(int64(imm))
	case isa.XORI:
		return a ^ uint64(int64(imm))
	case isa.SHLI:
		return a << (uint32(imm) & 63)
	case isa.SHRI:
		return a >> (uint32(imm) & 63)
	case isa.IMUL:
		return a * b
	}
	return 0
}

// exec processes one instruction, updating the speculative machine state.
// ep is non-nil inside a transient episode.
func (c *Core) exec(mmu MMU, st *runState, in isa.Inst, pc, ipa uint64, ep *episodeCtx) outcome {
	cfg := &c.cfg
	d := st.dispatchSlot(cfg)

	switch in.Op {
	case isa.NOP:
		st.retire(d)
		return outcome{}

	case isa.MOVI:
		issue := acquire(st.ports.alu, d)
		st.attr.issue = issue
		done := issue + int64(cfg.ALULatency)
		st.regs[in.Dst] = uint64(int64(in.Imm))
		st.regTime[in.Dst] = done
		st.bumpDone(done)
		st.retire(done)
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{}

	case isa.MOV:
		issue := acquire(st.ports.alu, max64(d, st.regTime[in.Src1]))
		st.attr.issue = issue
		done := issue + int64(cfg.ALULatency)
		st.regs[in.Dst] = st.regs[in.Src1]
		st.regTime[in.Dst] = done
		st.bumpDone(done)
		st.retire(done)
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{}

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR:
		ready := max64(d, max64(st.regTime[in.Src1], st.regTime[in.Src2]))
		issue := acquire(st.ports.alu, ready)
		st.attr.issue = issue
		done := issue + int64(cfg.ALULatency)
		st.regs[in.Dst] = evalALU(in.Op, st.regs[in.Src1], st.regs[in.Src2], in.Imm)
		st.regTime[in.Dst] = done
		st.bumpDone(done)
		st.retire(done)
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{}

	case isa.ADDI, isa.SUBI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
		issue := acquire(st.ports.alu, max64(d, st.regTime[in.Src1]))
		st.attr.issue = issue
		done := issue + int64(cfg.ALULatency)
		st.regs[in.Dst] = evalALU(in.Op, st.regs[in.Src1], 0, in.Imm)
		st.regTime[in.Dst] = done
		st.bumpDone(done)
		st.retire(done)
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{}

	case isa.IMUL:
		ready := max64(d, max64(st.regTime[in.Src1], st.regTime[in.Src2]))
		issue := acquire(st.ports.mul, ready)
		st.attr.issue = issue
		done := issue + int64(cfg.MulLatency)
		st.regs[in.Dst] = st.regs[in.Src1] * st.regs[in.Src2]
		st.regTime[in.Dst] = done
		st.bumpDone(done)
		st.retire(done)
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{}

	case isa.RDPRU:
		// Reads the cycle counter once all older loads have completed —
		// deterministic timing, like the paper's fenced RDPRU usage.
		issue := acquire(st.ports.alu, max64(d, st.maxLoadDone))
		st.attr.issue = issue
		v := issue
		if j := cfg.TimerJitter; j > 0 {
			v += c.jitter.Int63n(2*j+1) - j
		}
		if q := cfg.TimerQuantum; q > 1 {
			v -= v % q
		}
		st.regs[in.Dst] = uint64(v)
		st.regTime[in.Dst] = issue + 1
		st.bumpDone(issue + 1)
		st.retire(issue + 1)
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{}

	case isa.CLFLUSH:
		va := st.regs[in.Src1] + uint64(int64(in.Imm))
		pa, extra, f := c.translateData(mmu, va, false)
		if f != mem.FaultNone {
			if ep != nil {
				return outcome{kind: oFault}
			}
			return outcome{kind: oFault, fault: f, faultVA: va}
		}
		issue := max64(d, st.regTime[in.Src1]+int64(cfg.AGULatency)) + extra
		st.attr.issue = issue
		c.bus.StampCycle(issue)
		c.cache.Flush(pa)
		done := issue + 2
		st.bumpMem(done)
		st.retire(done)
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{}

	case isa.MFENCE:
		st.fetchCycle = max64(st.fetchCycle, st.maxMemDone)
		st.fetchedInCy = 0
		st.retire(max64(d, st.maxMemDone))
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{}

	case isa.LFENCE:
		st.fetchCycle = max64(st.fetchCycle, st.maxDone)
		st.fetchedInCy = 0
		st.retire(max64(d, st.maxDone))
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{}

	case isa.SFENCE:
		st.fetchCycle = max64(st.fetchCycle, st.maxStoreDone)
		st.fetchedInCy = 0
		st.retire(max64(d, st.maxStoreDone))
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{}

	case isa.JMP:
		target := uint64(uint32(in.Imm))
		st.retire(d)
		st.redirect(target, st.fetchCycle+1)
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{}

	case isa.JZ, isa.JNZ:
		return c.execBranch(mmu, st, in, pc, d, ep)

	case isa.LOAD:
		return c.execLoad(mmu, st, in, pc, ipa, d, ep)

	case isa.STORE:
		return c.execStore(mmu, st, in, pc, ipa, d, ep)

	case isa.SYSCALL:
		// Serializing trap into the kernel model.
		done := max64(d, st.maxDone)
		st.retire(done)
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{kind: oSyscall}

	case isa.HALT:
		st.retire(d)
		c.pmcs.Inc(pmc.RetiredOps)
		return outcome{kind: oHalt}

	default: // BAD or unknown
		if ep != nil {
			return outcome{kind: oFault}
		}
		return outcome{kind: oFault, fault: mem.FaultProtection, faultVA: pc}
	}
}

func (c *Core) execBranch(mmu MMU, st *runState, in isa.Inst, pc uint64, d int64, ep *episodeCtx) outcome {
	cond := st.regs[in.Src1]
	taken := (in.Op == isa.JZ) == (cond == 0)
	target := uint64(uint32(in.Imm))
	nextPC := pc + isa.InstBytes
	resolve := max64(d, st.regTime[in.Src1]) + 1
	st.retire(resolve)
	st.bumpDone(resolve)
	c.pmcs.Inc(pmc.RetiredOps)

	if ep != nil {
		// Inside a transient window: follow the (transient) actual
		// direction; the direction predictor still trains.
		c.bp.update(pc, taken)
		if taken {
			st.redirect(target, st.fetchCycle+1)
		}
		return outcome{}
	}

	predTaken := c.bp.predict(pc)
	c.bp.update(pc, taken)
	if predTaken == taken {
		if taken {
			st.redirect(target, st.fetchCycle+1)
		}
		return outcome{}
	}

	// Branch misprediction: run the wrong path transiently, then refetch.
	c.pmcs.Inc(pmc.BranchMispredicts)
	wrongPC := target
	correctPC := nextPC
	if taken {
		wrongPC = nextPC
		correctPC = target
	}
	clone := c.getClone(st)
	clone.pc = wrongPC
	start := clone.fetchCycle
	ev, n := c.runEpisode(mmu, clone, resolve)
	st.stlds = append(st.stlds, ev...)
	c.putClone(clone)
	c.emitSquash(obs.SquashBranch, pc, start, resolve, int64(c.cfg.BranchMissPenalty), n)
	st.redirect(correctPC, resolve+int64(c.cfg.BranchMissPenalty))
	return outcome{}
}

func (c *Core) execStore(mmu MMU, st *runState, in isa.Inst, pc, ipa uint64, d int64, ep *episodeCtx) outcome {
	cfg := &c.cfg
	va := st.regs[in.Src1] + uint64(int64(in.Imm))
	data := st.regs[in.Src2]
	d = st.sqSlot(d)
	pa, extra, f := c.translateData(mmu, va, true)
	if f != mem.FaultNone {
		if ep != nil {
			return outcome{kind: oFault}
		}
		return outcome{kind: oFault, fault: f, faultVA: va}
	}
	addrReady := max64(d, st.regTime[in.Src1])
	issued := acquire(st.ports.st, addrReady)
	st.attr.issue = issued
	addrTime := issued + int64(cfg.AGULatency) + extra
	dataTime := max64(d, st.regTime[in.Src2])
	complete := max64(addrTime, dataTime)
	c.bus.StampCycle(complete)
	ret := st.retire(complete)
	drain := ret + 2

	rec := storeRec{
		seq:      st.seq,
		pa:       pa,
		va:       va,
		ipa:      ipa,
		iva:      pc,
		oldVal:   c.phys.Read64(pa),
		newVal:   data,
		addrTime: addrTime,
		dataTime: dataTime,
		drain:    drain,
	}
	st.seq++
	st.stores = append(st.stores, rec)
	st.sqPush(drain)
	if ep == nil {
		// Commit: the write becomes architectural; younger loads that must
		// not see it yet read through the pre-image log.
		c.phys.Write64(pa, data)
		c.cache.Touch(pa)
	}
	st.bumpMem(complete)
	if complete > st.maxStoreDone {
		st.maxStoreDone = complete
	}
	c.pmcs.Inc(pmc.RetiredOps)
	return outcome{}
}

func (c *Core) execLoad(mmu MMU, st *runState, in isa.Inst, pc, ipa uint64, d int64, ep *episodeCtx) outcome {
	cfg := &c.cfg
	va := st.regs[in.Src1] + uint64(int64(in.Imm))
	pa, extra, f := c.translateData(mmu, va, false)
	if f != mem.FaultNone {
		return c.faultingLoad(mmu, st, in, pc, va, d, ep, f)
	}
	d = st.lqSlot(d)
	addrReady := max64(d, st.regTime[in.Src1]) + int64(cfg.AGULatency)
	tA := acquire(st.ports.ld, addrReady) + extra
	if ep != nil && tA >= ep.verifyTime {
		// The squash arrives before this load could issue: it never executes
		// and leaves no trace — the transient window's real boundary.
		st.regs[in.Dst] = 0
		st.regTime[in.Dst] = tA
		return outcome{}
	}
	c.pmcs.Inc(pmc.LdDispatch)
	st.attr.issue = tA
	c.bus.StampCycle(tA)

	var value uint64
	var complete int64

	S := st.youngestUnresolved(tA)
	if S == nil {
		value, complete = c.resolvedLoad(st, pa, tA)
	} else {
		// S is the pairing store the predictors are consulted for. U is the
		// youngest *aliasing* unresolved store (usually S itself in the
		// paper's single-store scenarios), which decides the ground truth.
		q := predict.Query{StoreIPA: S.ipa, LoadIPA: ipa, StoreIVA: S.iva, LoadIVA: pc}
		pred := c.dis.Predict(q)
		U, uMaxAddr := st.unresolvedAliasing(pa, tA)
		truth := U != nil
		psfFires := pred.Aliasing && pred.PSF && S.dataTime < S.addrTime

		switch {
		case !pred.Aliasing:
			value, complete = c.bypassLoad(mmu, st, in, q, S, U, uMaxAddr, va, pa, tA, ep)
		case psfFires:
			value, complete = c.psfLoad(mmu, st, in, q, S, U, uMaxAddr, va, pa, tA, ep)
		default:
			// Predicted aliasing without PSF: stall until all older store
			// addresses are generated, then disambiguate architecturally.
			tR := st.allUnresolvedAddrTime(tA)
			if tR > tA {
				c.pmcs.Add(pmc.SQStallCycles, uint64(tR-tA))
				st.attr.sqStall = tR - tA
			}
			ty := c.dis.Verify(q, truth)
			st.stlds = append(st.stlds, StldEvent{
				StoreIPA: S.ipa, LoadIPA: ipa, StoreVA: S.va, LoadVA: va,
				Type: ty, Cycle: S.addrTime,
			})
			value, complete = c.resolvedLoad(st, pa, tR+1)
		}
	}

	st.regs[in.Dst] = value
	st.regTime[in.Dst] = complete
	if complete > st.maxLoadDone {
		st.maxLoadDone = complete
	}
	st.lqPush(complete)
	st.bumpMem(complete)
	st.retire(complete)
	c.pmcs.Inc(pmc.RetiredOps)
	return outcome{}
}

// resolvedLoad performs the architectural (non-speculative) load path at
// time t: forward from the youngest aliasing in-flight store or access the
// cache. A partially overlapping store cannot forward (real cores fail the
// forward and replay); the load waits for the store to drain and reads
// memory, which already holds the committed bytes.
func (c *Core) resolvedLoad(st *runState, pa uint64, t int64) (uint64, int64) {
	if a := st.youngestAliasing(pa, t); a != nil {
		if a.pa == pa {
			c.pmcs.Inc(pmc.StoreToLoadForwarding)
			done := max64(t, a.dataTime) + int64(c.cfg.ForwardLatency)
			if c.bus.On(obs.ClassForward) {
				c.bus.Emit(obs.ForwardEvent{CPU: c.cpuID, Cycle: done, StoreIPA: a.ipa, VA: a.va})
			}
			return a.newVal, done
		}
		// Forward fail: misaligned overlap.
		lat, _ := c.cache.Access(pa)
		return c.phys.Read64(pa), max64(t, a.drain) + int64(lat)
	}
	lat, _ := c.cache.Access(pa)
	return c.phys.Read64(pa), t + int64(lat)
}

// bypassLoad handles a load predicted non-aliasing: it executes immediately
// from the cache. If it in fact aliases an unresolved older store U, the
// execution is transient — younger instructions consume the stale value
// until U's address generation squashes them (type G).
func (c *Core) bypassLoad(mmu MMU, st *runState, in isa.Inst, q predict.Query, S, U *storeRec, uMaxAddr int64, va, pa uint64, tA int64, ep *episodeCtx) (uint64, int64) {
	c.pmcs.Inc(pmc.Bypasses)
	lat, _ := c.cache.Access(pa)
	tDone := tA + int64(lat)
	stale := c.transientRead(st, pa, tA)

	ty := c.dis.Verify(q, U != nil)
	st.stlds = append(st.stlds, StldEvent{
		StoreIPA: q.StoreIPA, LoadIPA: q.LoadIPA, StoreVA: S.va, LoadVA: va,
		Type: ty, Cycle: S.addrTime,
	})

	if U == nil || ep != nil {
		// Correct bypass (H) — or inside an episode, where the transient
		// behaviour simply continues with the stale value.
		return stale, tDone
	}

	// Type G: misprediction. Run the transient window, then roll back and
	// replay the load with the conflicting stores resolved.
	c.pmcs.Inc(pmc.Rollbacks)
	verify := uMaxAddr + 1
	st.attr.replay = (verify - tA) + int64(c.cfg.RollbackPenalty)
	clone := c.getClone(st)
	clone.regs[in.Dst] = stale
	clone.regTime[in.Dst] = tDone
	if tDone > clone.maxLoadDone {
		clone.maxLoadDone = tDone
	}
	ev, n := c.runEpisode(mmu, clone, verify)
	st.stlds = append(st.stlds, ev...)
	c.putClone(clone)
	c.emitSquash(obs.SquashBypass, q.LoadIVA, tA, verify, int64(c.cfg.RollbackPenalty), n)
	return c.replayLoad(st, pa, verify)
}

// psfLoad handles predictive store forwarding: the store's data is forwarded
// before its address is generated. A non-aliasing truth makes the forward
// wrong (type D) and triggers a rollback.
func (c *Core) psfLoad(mmu MMU, st *runState, in isa.Inst, q predict.Query, S, U *storeRec, uMaxAddr int64, va, pa uint64, tA int64, ep *episodeCtx) (uint64, int64) {
	c.pmcs.Inc(pmc.PSFForwards)
	fwdDone := max64(tA, S.dataTime) + int64(c.cfg.ForwardLatency)
	if c.bus.On(obs.ClassForward) {
		c.bus.Emit(obs.ForwardEvent{CPU: c.cpuID, Cycle: fwdDone, StoreIPA: S.ipa, LoadIPA: q.LoadIPA, VA: va, PSF: true})
	}

	ty := c.dis.Verify(q, U != nil)
	st.stlds = append(st.stlds, StldEvent{
		StoreIPA: q.StoreIPA, LoadIPA: q.LoadIPA, StoreVA: S.va, LoadVA: va,
		Type: ty, Cycle: S.addrTime,
	})

	// The forward is correct only if S really is the store the load must
	// read from — the youngest aliasing store overall — and the addresses
	// match exactly (a partial overlap forwards the wrong bytes).
	correct := U == S && S.pa == pa && st.youngestAliasing(pa, tA) == S
	if correct || ep != nil {
		// Correct forward (C) — or transient continuation with the
		// (possibly wrong) forwarded value inside an episode.
		return S.newVal, fwdDone
	}

	// Type D: forwarded the wrong store's data. Transient window with the
	// forwarded value, then rollback and replay from the cache.
	c.pmcs.Inc(pmc.Rollbacks)
	verify := S.addrTime + 1
	if uMaxAddr+1 > verify {
		verify = uMaxAddr + 1
	}
	st.attr.replay = (verify - tA) + int64(c.cfg.RollbackPenalty)
	clone := c.getClone(st)
	clone.regs[in.Dst] = S.newVal
	clone.regTime[in.Dst] = fwdDone
	if fwdDone > clone.maxLoadDone {
		clone.maxLoadDone = fwdDone
	}
	ev, n := c.runEpisode(mmu, clone, verify)
	st.stlds = append(st.stlds, ev...)
	c.putClone(clone)
	c.emitSquash(obs.SquashPSF, q.LoadIVA, tA, verify, int64(c.cfg.RollbackPenalty), n)
	return c.replayLoad(st, pa, verify)
}

// replayLoad re-executes a squashed load after the rollback penalty, with
// all older stores now resolved.
func (c *Core) replayLoad(st *runState, pa uint64, verify int64) (uint64, int64) {
	redirect := verify + int64(c.cfg.RollbackPenalty)
	// The refetch walks the front end again.
	c.pmcs.Inc(pmc.ITLBHit4K)
	c.pmcs.Inc(pmc.LdDispatch)
	tA := acquire(st.ports.ld, redirect)
	value, complete := c.resolvedLoad(st, pa, tA)
	// Younger instructions refetch behind the load.
	st.redirect(st.pc, redirect)
	return value, complete
}

// faultingLoad models the transient window a faulting load opens: dependents
// transiently consume zero (AMD cores do not forward faulting data), then
// the fault retires and the run stops. Inside an episode the fault simply
// ends the window.
func (c *Core) faultingLoad(mmu MMU, st *runState, in isa.Inst, pc, va uint64, d int64, ep *episodeCtx, f mem.Fault) outcome {
	if ep != nil {
		return outcome{kind: oFault}
	}
	addrReady := max64(d, st.regTime[in.Src1]) + int64(c.cfg.AGULatency)
	tA := acquire(st.ports.ld, addrReady)
	st.attr.issue = tA
	c.pmcs.Inc(pmc.LdDispatch)
	complete := tA + 4
	// The fault is raised at retirement; the page walk and the trap entry
	// leave a window of a few dozen cycles for dependents to run.
	retireAt := max64(st.lastRetire, complete) + 32
	clone := c.getClone(st)
	clone.regs[in.Dst] = 0
	clone.regTime[in.Dst] = complete
	ev, n := c.runEpisode(mmu, clone, retireAt)
	st.stlds = append(st.stlds, ev...)
	c.putClone(clone)
	c.emitSquash(obs.SquashFault, pc, complete, retireAt, 0, n)
	st.retire(complete)
	return outcome{kind: oFault, fault: f, faultVA: va}
}
