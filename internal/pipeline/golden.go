package pipeline

import (
	"zenspec/internal/isa"
	"zenspec/internal/mem"
)

// GoldenResult is the architectural outcome of a reference execution.
type GoldenResult struct {
	Stop    StopReason
	EndPC   uint64
	Fault   mem.Fault
	FaultVA uint64
	Insts   uint64
}

// Golden executes a program on a trivially correct in-order interpreter with
// no speculation and no timing. It is the reference model for differential
// testing: any program's architectural state (registers and memory) after
// the out-of-order Core must match Golden exactly.
//
// RDPRU is the one deliberate exception — the whole point of the paper is
// that time is architecturally visible — so Golden writes 0 to the RDPRU
// destination and differential tests must not make other state depend on it.
func Golden(phys *mem.Physical, mmu MMU, entry uint64, regs *[isa.NumRegs]uint64, maxInsts uint64) GoldenResult {
	if maxInsts == 0 {
		maxInsts = 1 << 20
	}
	pc := entry
	var insts uint64
	for insts < maxInsts {
		pa, f := mmu.Translate(pc, mem.AccessExec)
		if f != mem.FaultNone {
			return GoldenResult{Stop: StopFault, EndPC: pc, Fault: f, FaultVA: pc, Insts: insts}
		}
		var buf [isa.InstBytes]byte
		first := mem.PageSize - mem.PageOffset(pc)
		if first >= isa.InstBytes {
			phys.ReadInto(pa, buf[:])
		} else {
			phys.ReadInto(pa, buf[:first])
			pa2, f2 := mmu.Translate(pc+first, mem.AccessExec)
			if f2 != mem.FaultNone {
				return GoldenResult{Stop: StopFault, EndPC: pc, Fault: f2, FaultVA: pc, Insts: insts}
			}
			phys.ReadInto(pa2, buf[first:])
		}
		in := isa.Decode(buf[:])
		insts++
		next := pc + isa.InstBytes

		switch in.Op {
		case isa.NOP, isa.MFENCE, isa.LFENCE, isa.SFENCE:
		case isa.MOVI:
			regs[in.Dst] = uint64(int64(in.Imm))
		case isa.MOV:
			regs[in.Dst] = regs[in.Src1]
		case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
			isa.ADDI, isa.SUBI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI, isa.IMUL:
			regs[in.Dst] = evalALU(in.Op, regs[in.Src1], regs[in.Src2], in.Imm)
		case isa.RDPRU:
			regs[in.Dst] = 0
		case isa.CLFLUSH:
			va := regs[in.Src1] + uint64(int64(in.Imm))
			if _, f := mmu.Translate(va, mem.AccessRead); f != mem.FaultNone {
				return GoldenResult{Stop: StopFault, EndPC: next, Fault: f, FaultVA: va, Insts: insts}
			}
		case isa.LOAD:
			va := regs[in.Src1] + uint64(int64(in.Imm))
			dpa, f := mmu.Translate(va, mem.AccessRead)
			if f != mem.FaultNone {
				return GoldenResult{Stop: StopFault, EndPC: next, Fault: f, FaultVA: va, Insts: insts}
			}
			regs[in.Dst] = phys.Read64(dpa)
		case isa.STORE:
			va := regs[in.Src1] + uint64(int64(in.Imm))
			dpa, f := mmu.Translate(va, mem.AccessWrite)
			if f != mem.FaultNone {
				return GoldenResult{Stop: StopFault, EndPC: next, Fault: f, FaultVA: va, Insts: insts}
			}
			phys.Write64(dpa, regs[in.Src2])
		case isa.JMP:
			next = uint64(uint32(in.Imm))
		case isa.JZ:
			if regs[in.Src1] == 0 {
				next = uint64(uint32(in.Imm))
			}
		case isa.JNZ:
			if regs[in.Src1] != 0 {
				next = uint64(uint32(in.Imm))
			}
		case isa.SYSCALL:
			return GoldenResult{Stop: StopSyscall, EndPC: next, Insts: insts}
		case isa.HALT:
			return GoldenResult{Stop: StopHalt, EndPC: next, Insts: insts}
		default:
			return GoldenResult{Stop: StopFault, EndPC: pc, Fault: mem.FaultProtection, FaultVA: pc, Insts: insts}
		}
		pc = next
	}
	return GoldenResult{Stop: StopInstLimit, EndPC: pc, Insts: insts}
}
