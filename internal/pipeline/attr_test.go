package pipeline

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/obs"
	"zenspec/internal/pmc"
	"zenspec/internal/predict"
)

// instTap subscribes to a core's bus and accumulates instruction and squash
// events; tests clear the slices between runs.
type instTap struct {
	insts    []obs.InstEvent
	squashes []obs.SquashEvent
	pmcs     []obs.PMCEvent
}

func (tap *instTap) attach(c *Core) {
	c.AttachBus(obs.NewBus(), 0)
	c.Bus().Subscribe(obs.ObserverFunc(func(ev obs.Event) {
		switch e := ev.(type) {
		case obs.InstEvent:
			tap.insts = append(tap.insts, e)
		case obs.SquashEvent:
			tap.squashes = append(tap.squashes, e)
		case obs.PMCEvent:
			tap.pmcs = append(tap.pmcs, e)
		}
	}), obs.Options{})
}

func (tap *instTap) reset() {
	tap.insts = tap.insts[:0]
	tap.squashes = tap.squashes[:0]
	tap.pmcs = tap.pmcs[:0]
}

// loadAt returns the single retired LOAD event at pc, failing otherwise.
func (tap *instTap) loadAt(t *testing.T, pc uint64) obs.InstEvent {
	t.Helper()
	var out []obs.InstEvent
	for _, ie := range tap.insts {
		if ie.Inst.Op == isa.LOAD && ie.PC == pc && !ie.Transient {
			out = append(out, ie)
		}
	}
	if len(out) != 1 {
		t.Fatalf("saw %d retired loads at %#x, want 1", len(out), pc)
	}
	return out[0]
}

// TestAttrStampsOrdered asserts the per-instruction attribution invariant
// dispatch <= issue <= complete <= retiredBy on a plain program.
func TestAttrStampsOrdered(t *testing.T) {
	e := newEnv(t, Config{})
	var tap instTap
	tap.attach(e.core)
	b := asm.MustParse(`
		movi rdi, 0x10000
		movi rax, 7
		movi rcx, 5
		imul rdx, rax, rcx
		add  rdx, rdx, rax
		store [rdi], rdx
		load rsi, [rdi+256]  ; non-aliasing: the bypass verifies clean
		halt
	`)
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	e.mapData(dataBase, mem.PageSize)
	var regs [isa.NumRegs]uint64
	res := e.run(codeBase, &regs)
	if res.Stop != StopHalt {
		t.Fatalf("run stopped with %v", res.Stop)
	}
	if len(tap.insts) == 0 {
		t.Fatal("no instruction events")
	}
	for _, ie := range tap.insts {
		if ie.Dispatch > ie.Issue || ie.Issue > ie.Complete {
			t.Errorf("%v at %#x: dispatch %d, issue %d, complete %d out of order",
				ie.Inst.Op, ie.PC, ie.Dispatch, ie.Issue, ie.Complete)
		}
		if ie.Complete > ie.RetiredBy {
			t.Errorf("%v at %#x: complete %d after retire frontier %d",
				ie.Inst.Op, ie.PC, ie.Complete, ie.RetiredBy)
		}
		if ie.SQStall != 0 || ie.Replay != 0 {
			t.Errorf("%v at %#x: unexpected stall attribution (sq %d, replay %d)",
				ie.Inst.Op, ie.PC, ie.SQStall, ie.Replay)
		}
	}
}

// TestAttrStallAndReplay drives the stld pair through φ(n, a, n): the first
// run bypasses cleanly (H — no stall, no replay), the second mispredicts and
// rolls back (G — replay cycles plus a bypass squash carrying the rollback
// penalty), and the third stalls conservatively (E — SQ-stall cycles on the
// victim load matching the SQ-stall PMC movement).
func TestAttrStallAndReplay(t *testing.T) {
	se := newStldEnv(t, Config{})
	var tap instTap
	tap.attach(se.core)
	loadPC := codeBase + uint64(se.s.LoadOff)
	cfg := se.core.Config()

	// Run 1: non-aliasing, fresh predictor — type H, a clean bypass.
	if _, ev := se.exec(false); len(ev) != 1 || ev[0].Type != predict.TypeH {
		t.Fatalf("run 1 events %v, want one type H", ev)
	}
	if ld := tap.loadAt(t, loadPC); ld.SQStall != 0 || ld.Replay != 0 {
		t.Errorf("clean bypass charged stall cycles (sq %d, replay %d)", ld.SQStall, ld.Replay)
	}

	// Run 2: aliasing — type G, bypass rollback and replay.
	tap.reset()
	before := se.core.PMC().Snapshot()
	if _, ev := se.exec(true); len(ev) == 0 || ev[0].Type != predict.TypeG {
		t.Fatalf("run 2 events %v, want type G first", ev)
	}
	ld := tap.loadAt(t, loadPC)
	if ld.Replay <= int64(cfg.RollbackPenalty) {
		t.Errorf("type G load replay = %d, want > rollback penalty %d",
			ld.Replay, cfg.RollbackPenalty)
	}
	if ld.SQStall != 0 {
		t.Errorf("type G load charged SQ-stall %d, want 0", ld.SQStall)
	}
	if len(tap.squashes) != 1 {
		t.Fatalf("run 2 emitted %d squashes, want 1", len(tap.squashes))
	}
	sq := tap.squashes[0]
	if sq.Kind != obs.SquashBypass {
		t.Errorf("squash kind %v, want bypass", sq.Kind)
	}
	if sq.Penalty != int64(cfg.RollbackPenalty) {
		t.Errorf("squash penalty %d, want rollback penalty %d", sq.Penalty, cfg.RollbackPenalty)
	}
	if sq.PC != loadPC {
		t.Errorf("squash at %#x, want the victim load %#x", sq.PC, loadPC)
	}
	if d := se.core.PMC().Delta(before); d.Get(pmc.Rollbacks) != 1 {
		t.Errorf("rollback PMC delta = %d, want 1", d.Get(pmc.Rollbacks))
	}

	// Run 3: the trained predictor now stalls the load — type E.
	tap.reset()
	before = se.core.PMC().Snapshot()
	if _, ev := se.exec(false); len(ev) != 1 || ev[0].Type != predict.TypeE {
		t.Fatalf("run 3 events %v, want one type E", ev)
	}
	ld = tap.loadAt(t, loadPC)
	if ld.SQStall <= 0 {
		t.Fatalf("stalled load recorded SQStall %d, want > 0", ld.SQStall)
	}
	if ld.Replay != 0 {
		t.Errorf("stalled load charged replay %d, want 0", ld.Replay)
	}
	if d := se.core.PMC().Delta(before); d.Get(pmc.SQStallCycles) != uint64(ld.SQStall) {
		t.Errorf("per-PC stall %d disagrees with SQ-stall PMC delta %d",
			ld.SQStall, d.Get(pmc.SQStallCycles))
	}
}

// TestPMCEventMatchesCounters asserts the per-run PMCEvent delta equals the
// core's counter movement across exactly that run.
func TestPMCEventMatchesCounters(t *testing.T) {
	e := newEnv(t, Config{})
	var tap instTap
	tap.attach(e.core)
	b := asm.MustParse(`
		movi rdi, 0x10000
		movi rax, 3
		store [rdi], rax
		load rcx, [rdi]
		halt
	`)
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	e.mapData(dataBase, mem.PageSize)
	var regs [isa.NumRegs]uint64
	before := e.core.PMC().Snapshot()
	if res := e.run(codeBase, &regs); res.Stop != StopHalt {
		t.Fatalf("run stopped with %v", res.Stop)
	}
	delta := e.core.PMC().Delta(before)
	if len(tap.pmcs) != 1 {
		t.Fatalf("saw %d PMC events, want 1", len(tap.pmcs))
	}
	for _, pe := range pmc.Events() {
		if got, want := tap.pmcs[0].Counts.Get(pe), delta.Get(pe); got != want {
			t.Errorf("PMCEvent %s = %d, want delta %d", pe.Key(), got, want)
		}
	}
	if tap.pmcs[0].Counts.Get(pmc.RetiredOps) == 0 {
		t.Error("PMCEvent carries no retired ops; the readout is vacuous")
	}
}
