package pipeline

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/cache"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/pmc"
	"zenspec/internal/predict"
)

// stldEnv wires an stld microbenchmark into an env.
type stldEnv struct {
	*env
	s     asm.Stld
	entry uint64
}

func newStldEnv(t testing.TB, cfg Config) *stldEnv {
	e := newEnv(t, cfg)
	s := asm.BuildStld(asm.StldOptions{})
	e.mapCode(codeBase, s.Code)
	e.mapData(dataBase, 2*mem.PageSize)
	se := &stldEnv{env: e, s: s, entry: codeBase}
	// Warm the data lines so stall-type timing is cache-hit bound.
	for _, va := range []uint64{dataBase, dataBase + 0x800} {
		pa, _ := e.as.Translate(va, mem.AccessRead)
		e.ch.Touch(pa)
	}
	return se
}

// exec runs one stld: aliasing chooses the load address equal to the store
// address. It returns the measured cycles and the trace events.
func (se *stldEnv) exec(aliasing bool) (uint64, []StldEvent) {
	var regs [isa.NumRegs]uint64
	regs[isa.RDI] = dataBase
	regs[isa.RSI] = dataBase
	if !aliasing {
		regs[isa.RSI] = dataBase + 0x800
	}
	regs[isa.R9] = 0xdd
	res := se.run(se.entry, &regs)
	return regs[isa.RAX], res.Stlds
}

// phi runs a sequence (false = n, true = a) and returns the observed types.
func (se *stldEnv) phi(inputs []bool) []predict.ExecType {
	var out []predict.ExecType
	for _, a := range inputs {
		_, ev := se.exec(a)
		if len(ev) != 1 {
			panic("stld should produce exactly one speculation event")
		}
		out = append(out, ev[0].Type)
	}
	return out
}

func boolSeq(counts ...int) []bool {
	var out []bool
	for _, c := range counts {
		if c >= 0 {
			for i := 0; i < c; i++ {
				out = append(out, false)
			}
		} else {
			for i := 0; i < -c; i++ {
				out = append(out, true)
			}
		}
	}
	return out
}

// TestStldPhiSequence1 runs φ(n,a,7n) = (H,G,4E,3H) end to end through the
// pipeline (not just the state machine).
func TestStldPhiSequence1(t *testing.T) {
	se := newStldEnv(t, Config{})
	got := se.phi(boolSeq(1, -1, 7))
	want := []predict.ExecType{predict.TypeH, predict.TypeG,
		predict.TypeE, predict.TypeE, predict.TypeE, predict.TypeE,
		predict.TypeH, predict.TypeH, predict.TypeH}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: %v, want %v (full %v)", i, got[i], want[i], got)
		}
	}
}

// TestStldPhiSequence2 runs φ(a,4n,a,4n,a,16n)=(G,4E,G,4E,G,15F,H) through
// the pipeline.
func TestStldPhiSequence2(t *testing.T) {
	se := newStldEnv(t, Config{})
	got := se.phi(boolSeq(-1, 4, -1, 4, -1, 16))
	var want []predict.ExecType
	add := func(n int, ty predict.ExecType) {
		for i := 0; i < n; i++ {
			want = append(want, ty)
		}
	}
	add(1, predict.TypeG)
	add(4, predict.TypeE)
	add(1, predict.TypeG)
	add(4, predict.TypeE)
	add(1, predict.TypeG)
	add(15, predict.TypeF)
	add(1, predict.TypeH)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: %v, want %v (full %v)", i, got[i], want[i], got)
		}
	}
}

// TestStldReachesTypeC drives the pair into the PSF-enabled state and
// observes a predictive store forward (type C), then a type D rollback.
func TestStldReachesTypeC(t *testing.T) {
	se := newStldEnv(t, Config{})
	se.phi(boolSeq(7, -1)) // G: train aliasing
	// C1 starts at 16 and drops by 1 per aliasing run; PSF fires once it is
	// below 12, i.e. on the 6th aliasing execution.
	types := se.phi(boolSeq(-6))
	last := types[len(types)-1]
	if last != predict.TypeC {
		t.Fatalf("after 6a: %v, want final C", types)
	}
	if se.core.PMC().Get(pmc.PSFForwards) == 0 {
		t.Error("no PSF forward counted")
	}
	dTypes := se.phi(boolSeq(1))
	if dTypes[0] != predict.TypeD {
		t.Errorf("n in PSF-enabled state: %v, want D", dTypes[0])
	}
	if se.core.PMC().Get(pmc.Rollbacks) == 0 {
		t.Error("type D should count a rollback")
	}
}

// TestStldTimingSeparation is the Fig 2 property: the execution types
// cluster into distinct timing levels with H < C < stall types < rollbacks,
// and rollbacks exceed 240 cycles.
func TestStldTimingSeparation(t *testing.T) {
	se := newStldEnv(t, Config{})
	timeOf := map[predict.ExecType][]uint64{}
	record := func(aliasing bool) {
		cyc, ev := se.exec(aliasing)
		timeOf[ev[0].Type] = append(timeOf[ev[0].Type], cyc)
	}
	// Cover H, G, E via (n, a, 7n); C and D via PSF training (6 aliasing
	// runs drop C1 below the threshold); A/B/F via further sequences.
	for _, a := range boolSeq(1, -1, 7, -1, -6, 1, 7, -1, 7, -1, -6, 10) {
		record(a)
	}
	avg := func(ty predict.ExecType) uint64 {
		v := timeOf[ty]
		if len(v) == 0 {
			return 0
		}
		var s uint64
		for _, x := range v {
			s += x
		}
		return s / uint64(len(v))
	}
	for _, ty := range []predict.ExecType{predict.TypeH, predict.TypeC, predict.TypeE, predict.TypeG, predict.TypeD} {
		if len(timeOf[ty]) == 0 {
			t.Fatalf("type %v never observed; got %v", ty, timeOf)
		}
	}
	h, c0, e0, g, d := avg(predict.TypeH), avg(predict.TypeC), avg(predict.TypeE), avg(predict.TypeG), avg(predict.TypeD)
	if !(h < c0 && c0 < e0 && e0 < g && e0 < d) {
		t.Errorf("timing order violated: H=%d C=%d E=%d G=%d D=%d", h, c0, e0, g, d)
	}
	if g < 240 || d < 240 {
		t.Errorf("rollback types must exceed 240 cycles: G=%d D=%d", g, d)
	}
	// Within-type timing must be stable (deterministic simulator).
	for ty, v := range timeOf {
		for _, x := range v {
			if x != v[0] {
				t.Errorf("type %v times unstable: %v", ty, v)
				break
			}
		}
	}
}

// TestStldPMCPattern checks the Fig 2 PMC signature: rollback types show
// extra load dispatches and instruction fetches relative to clean types.
func TestStldPMCPattern(t *testing.T) {
	se := newStldEnv(t, Config{})
	counts := func(aliasing bool) (ld, itlb, stall uint64) {
		before := se.core.PMC().Snapshot()
		se.exec(aliasing)
		d := se.core.PMC().Delta(before)
		return d.Get(pmc.LdDispatch), d.Get(pmc.ITLBHit4K), d.Get(pmc.SQStallCycles)
	}
	ldH, itlbH, stallH := counts(false) // H
	ldG, itlbG, _ := counts(true)       // G rollback
	if ldG <= ldH {
		t.Errorf("G should re-dispatch the load: %d vs %d", ldG, ldH)
	}
	if itlbG <= itlbH {
		t.Errorf("G should refetch: itlb %d vs %d", itlbG, itlbH)
	}
	_, _, stallE := counts(false) // E: stall
	if stallE == 0 {
		t.Error("E should accumulate SQ stall cycles")
	}
	if stallH != 0 {
		t.Errorf("H should not stall, got %d", stallH)
	}
}

// TestStldSSBD checks Section VI-A through the pipeline: with SSBD on, every
// n is an E and every a is an A, with no rollbacks and no fast paths.
func TestStldSSBD(t *testing.T) {
	se := newStldEnv(t, Config{})
	se.unit.SetSSBD(true)
	types := se.phi(boolSeq(3, -3, 2, -2))
	for i, ty := range types {
		want := predict.TypeE
		if i >= 3 && i < 6 || i >= 8 {
			want = predict.TypeA
		}
		if ty != want {
			t.Errorf("step %d: %v, want %v", i, ty, want)
		}
	}
	if se.core.PMC().Get(pmc.Rollbacks) != 0 {
		t.Error("SSBD must prevent rollbacks")
	}
	if se.core.PMC().Get(pmc.Bypasses) != 0 {
		t.Error("SSBD must prevent bypasses")
	}
}

// TestStldSSBDSlowdown: SSBD makes the non-aliasing fast path slow (the Fig
// 12 overhead mechanism).
func TestStldSSBDSlowdown(t *testing.T) {
	se := newStldEnv(t, Config{})
	fast, _ := se.exec(false) // H
	se.unit.SetSSBD(true)
	slow, _ := se.exec(false) // E under SSBD
	if slow <= fast+20 {
		t.Errorf("SSBD slowdown invisible: %d vs %d", slow, fast)
	}
}

// TestStldIntelBaseline runs the stld against the Intel-style MDU to show
// the baseline trains differently (needs saturation before bypassing).
func TestStldIntelBaseline(t *testing.T) {
	phys := mem.NewPhysical()
	ch := cache.New(cache.DefaultConfig())
	mdu := predict.NewIntelMDU()
	core := New(Config{}, phys, ch, mdu, &pmc.Counters{})
	as := mem.NewAddrSpace()
	e := &env{phys: phys, as: as, ch: ch, core: core}
	s := asm.BuildStld(asm.StldOptions{})
	e.mapCode(codeBase, s.Code)
	e.mapData(dataBase, 2*mem.PageSize)
	se := &stldEnv{env: e, s: s, entry: codeBase}
	// Cold MDU stalls: expect E for non-aliasing runs until saturation (15),
	// then H.
	types := se.phi(boolSeq(20))
	for i := 0; i < 15; i++ {
		if types[i] != predict.TypeE {
			t.Fatalf("step %d: %v, want E (conservative)", i, types[i])
		}
	}
	for i := 15; i < 20; i++ {
		if types[i] != predict.TypeH {
			t.Fatalf("step %d: %v, want H (saturated)", i, types[i])
		}
	}
}
