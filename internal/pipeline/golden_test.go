package pipeline

import (
	"math/rand"
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
)

// genProgram builds a random but well-formed program: ALU ops over r0..r7,
// masked loads/stores into the data region (base in r15), forward branches,
// fences and flushes. It always terminates (branches only jump forward).
// RDPRU is excluded: the golden model defines its value as 0, so programs
// containing it would diverge by design.
func genProgram(r *rand.Rand, n int) *asm.Builder {
	b := asm.NewBuilder()
	labels := 0
	pending := []string{}
	reg := func() isa.Reg { return isa.Reg(r.Intn(8)) }
	for i := 0; i < n; i++ {
		// Resolve one pending forward label at random.
		if len(pending) > 0 && r.Intn(4) == 0 {
			b.Label(pending[0])
			pending = pending[1:]
		}
		switch r.Intn(12) {
		case 0:
			b.Movi(reg(), int32(r.Uint32()))
		case 1:
			b.Add(reg(), reg(), reg())
		case 2:
			b.Sub(reg(), reg(), reg())
		case 3:
			b.Xor(reg(), reg(), reg())
		case 4:
			b.Imul(reg(), reg(), reg())
		case 5:
			b.Shri(reg(), reg(), int32(r.Intn(32)))
		case 6: // store (possibly unaligned: partial-overlap coverage)
			b.Andi(isa.R9, reg(), 0xff0)
			b.Addi(isa.R9, isa.R9, int32(r.Intn(8)))
			b.Add(isa.R9, isa.R9, isa.R15)
			b.Store(isa.R9, 0, reg())
		case 7: // load (possibly unaligned)
			b.Andi(isa.R9, reg(), 0xff0)
			b.Addi(isa.R9, isa.R9, int32(r.Intn(8)))
			b.Add(isa.R9, isa.R9, isa.R15)
			b.Load(reg(), isa.R9, 0)
		case 8: // forward branch
			labels++
			name := "fwd" + string(rune('a'+labels%26)) + string(rune('0'+labels/26%10)) + string(rune('0'+labels/260))
			pending = append(pending, name)
			if r.Intn(2) == 0 {
				b.Jz(reg(), name)
			} else {
				b.Jnz(reg(), name)
			}
		case 9:
			b.Mfence()
		case 10:
			b.Andi(isa.R9, reg(), 0xff8)
			b.Add(isa.R9, isa.R9, isa.R15)
			b.Clflush(isa.R9, 0)
		default:
			b.Addi(reg(), reg(), int32(r.Intn(1000)))
		}
	}
	for _, l := range pending {
		b.Label(l)
	}
	b.Halt()
	return b
}

// TestDifferentialVsGolden: for many random programs, the out-of-order core
// with full memory speculation must produce exactly the architectural state
// of the in-order golden interpreter — registers, memory, stop reason.
func TestDifferentialVsGolden(t *testing.T) {
	const dataBytes = mem.PageSize
	for seed := int64(0); seed < 150; seed++ {
		r := rand.New(rand.NewSource(seed))
		prog := genProgram(r, 60+r.Intn(80))
		code, err := prog.Assemble(codeBase)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Out-of-order run.
		eo := newEnv(t, Config{})
		eo.mapCode(codeBase, code)
		eo.mapData(dataBase, dataBytes)
		var regsO [isa.NumRegs]uint64
		regsO[isa.R15] = dataBase
		resO := eo.run(codeBase, &regsO)

		// Golden run on a fresh identical machine.
		eg := newEnv(t, Config{})
		eg.mapCode(codeBase, code)
		eg.mapData(dataBase, dataBytes)
		var regsG [isa.NumRegs]uint64
		regsG[isa.R15] = dataBase
		resG := Golden(eg.phys, eg.as, codeBase, &regsG, 0)

		if resO.Stop.String() != resG.Stop.String() || resO.EndPC != resG.EndPC {
			t.Fatalf("seed %d: stop %v@%#x vs golden %v@%#x",
				seed, resO.Stop, resO.EndPC, resG.Stop, resG.EndPC)
		}
		if resO.Insts != resG.Insts {
			t.Fatalf("seed %d: insts %d vs %d", seed, resO.Insts, resG.Insts)
		}
		if regsO != regsG {
			t.Fatalf("seed %d: register divergence\nooo:    %v\ngolden: %v", seed, regsO, regsG)
		}
		for off := uint64(0); off < dataBytes; off += 8 {
			if a, b := eo.read64(dataBase+off), eg.read64(dataBase+off); a != b {
				t.Fatalf("seed %d: memory divergence at +%#x: %#x vs %#x", seed, off, a, b)
			}
		}
	}
}

// TestDifferentialWithSlowStores stresses the memory-speculation machinery
// specifically: random aliasing/non-aliasing store-load pairs with
// multiply-delayed store addresses, which exercise every predictor path
// including rollbacks, must still retire the architecturally correct values.
func TestDifferentialWithSlowStores(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		b := asm.NewBuilder()
		b.Movi(isa.R12, 1)
		n := 6 + r.Intn(10)
		for i := 0; i < n; i++ {
			storeOff := int32(r.Intn(64)*8 + r.Intn(8))
			loadOff := storeOff
			switch r.Intn(3) {
			case 0:
				loadOff = int32(r.Intn(64)*8 + r.Intn(8)) // anywhere
			case 1:
				loadOff = storeOff + int32(r.Intn(15)) - 7 // partial overlap
				if loadOff < 0 {
					loadOff = 0
				}
			}
			imuls := r.Intn(12)
			b.Mov(isa.RBX, isa.R15)
			for j := 0; j < imuls; j++ {
				b.Imul(isa.RBX, isa.RBX, isa.R12)
			}
			b.Movi(isa.R9, int32(r.Uint32()&0xffff))
			b.Store(isa.RBX, storeOff, isa.R9)
			b.Load(isa.Reg(r.Intn(8)), isa.R15, loadOff)
		}
		b.Halt()
		code := b.MustAssemble(codeBase)

		eo := newEnv(t, Config{})
		eo.mapCode(codeBase, code)
		eo.mapData(dataBase, mem.PageSize)
		var regsO [isa.NumRegs]uint64
		regsO[isa.R15] = dataBase
		eo.run(codeBase, &regsO)

		eg := newEnv(t, Config{})
		eg.mapCode(codeBase, code)
		eg.mapData(dataBase, mem.PageSize)
		var regsG [isa.NumRegs]uint64
		regsG[isa.R15] = dataBase
		Golden(eg.phys, eg.as, codeBase, &regsG, 0)

		if regsO != regsG {
			t.Fatalf("seed %d: register divergence\nooo:    %v\ngolden: %v", seed, regsO, regsG)
		}
		for off := uint64(0); off < mem.PageSize-8; off++ {
			if a, bb := eo.read64(dataBase+off), eg.read64(dataBase+off); a != bb {
				t.Fatalf("seed %d: memory divergence at +%#x", seed, off)
			}
		}
	}
}

// TestGoldenBasics sanity-checks the reference interpreter itself.
func TestGoldenBasics(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Movi(isa.RAX, 5)
	b.Movi(isa.RCX, 3)
	b.Imul(isa.RAX, isa.RAX, isa.RCX)
	b.Store(isa.R15, 0, isa.RAX)
	b.Load(isa.RDX, isa.R15, 0)
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	e.mapData(dataBase, mem.PageSize)
	var regs [isa.NumRegs]uint64
	regs[isa.R15] = dataBase
	res := Golden(e.phys, e.as, codeBase, &regs, 0)
	if res.Stop != StopHalt || regs[isa.RDX] != 15 {
		t.Errorf("golden: stop %v rdx %d", res.Stop, regs[isa.RDX])
	}
	// Fault path.
	regs[isa.R15] = 0xdead0000
	b2 := asm.NewBuilder()
	b2.Load(isa.RAX, isa.R15, 0).Halt()
	e.mapCode(codeBase+0x1000, b2.MustAssemble(codeBase+0x1000))
	res = Golden(e.phys, e.as, codeBase+0x1000, &regs, 0)
	if res.Stop != StopFault || res.Fault != mem.FaultNotMapped {
		t.Errorf("golden fault: %v %v", res.Stop, res.Fault)
	}
}
