package pipeline

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/predict"
)

// fig8Env builds the Fig 8 scenario: a store to 0xaa-style address with a
// slow address generation, followed by a dependent chain that encodes the
// transiently loaded value into the cache.
//
//	store [slow(rdi)], r9     ; data 0xdd
//	load  r8, [rsi]           ; rsi == rdi (aliasing) or != (non-aliasing)
//	load  r12, [rbp + r8*64]  ; transmit: touches probe line r8
//	halt
func buildFig8(imuls int) (asm.Stld, []byte) {
	b := asm.NewBuilder()
	b.Movi(isa.R12, 1)
	b.Mov(isa.RBX, isa.RDI)
	for i := 0; i < imuls; i++ {
		b.Imul(isa.RBX, isa.RBX, isa.R12)
	}
	b.Store(isa.RBX, 0, isa.R9)
	b.Load(isa.R8, isa.RSI, 0)
	// transmit = probeBase + value*64
	b.Shli(isa.R13, isa.R8, 6)
	b.Add(isa.R13, isa.R13, isa.RBP)
	b.Load(isa.R14, isa.R13, 0)
	b.Halt()
	return asm.Stld{}, b.MustAssemble(codeBase)
}

// TestFig8SSBPTransient: the SSBP misprediction case (4b in Fig 8). The
// store and load alias; the predictor (untrained) predicts non-aliasing;
// the load transiently reads the OLD memory value 0xcc, and the dependent
// chain caches probeBase + 0xcc*64 — observable after the rollback.
func TestFig8SSBPTransient(t *testing.T) {
	e := newEnv(t, Config{})
	_, code := buildFig8(20)
	e.mapCode(codeBase, code)
	e.mapData(dataBase, mem.PageSize)
	const probeBase = 0x40000
	e.mapData(probeBase, 0x100*64)

	e.write64(dataBase, 0xcc) // the stale value
	var regs [isa.NumRegs]uint64
	regs[isa.RDI] = dataBase
	regs[isa.RSI] = dataBase // aliasing
	regs[isa.R9] = 0xdd
	regs[isa.RBP] = probeBase
	res := e.run(codeBase, &regs)
	if res.Stop != StopHalt {
		t.Fatalf("stop %v", res.Stop)
	}
	// Architecturally the load must see the store's value.
	if regs[isa.R8] != 0xdd {
		t.Fatalf("architectural value %#x, want 0xdd", regs[isa.R8])
	}
	// The G event happened.
	if len(res.Stlds) == 0 || res.Stlds[0].Type != predict.TypeG {
		t.Fatalf("events %v, want leading G", res.Stlds)
	}
	// Transient side effect: the probe line for 0xcc (stale) is cached.
	paCC, _ := e.as.Translate(probeBase+0xcc*64, mem.AccessRead)
	if !e.ch.Cached(paCC) {
		t.Error("transient line for stale value 0xcc not cached")
	}
	// After the rollback the replayed path caches the line for 0xdd too
	// (the architectural execution).
	paDD, _ := e.as.Translate(probeBase+0xdd*64, mem.AccessRead)
	if !e.ch.Cached(paDD) {
		t.Error("architectural line for 0xdd not cached")
	}
}

// TestFig8PSFPTransient: the PSFP misprediction case (4a in Fig 8). The
// store and load do NOT alias, but PSF is trained to forward: the load
// transiently receives the store data 0xdd, and the dependent chain caches
// probeBase + 0xdd*64 before the rollback replays with the memory value.
func TestFig8PSFPTransient(t *testing.T) {
	e := newEnv(t, Config{})
	_, code := buildFig8(20)
	e.mapCode(codeBase, code)
	e.mapData(dataBase, mem.PageSize)
	const probeBase = 0x40000
	e.mapData(probeBase, 0x100*64)
	e.write64(dataBase+0x800, 0xbb) // value at the load's (non-aliasing) address

	run := func(aliasing bool) RunResult {
		var regs [isa.NumRegs]uint64
		regs[isa.RDI] = dataBase
		regs[isa.RSI] = dataBase
		if !aliasing {
			regs[isa.RSI] = dataBase + 0x800
		}
		regs[isa.R9] = 0xdd
		regs[isa.RBP] = probeBase
		res := e.run(codeBase, &regs)
		if regs[isa.R8] == 0 {
			t.Fatal("load returned zero")
		}
		return res
	}
	// Train PSF: one G then aliasing runs until PSF enabled.
	run(true)
	for i := 0; i < 6; i++ {
		run(true)
	}
	// Flush the probe region so only the transient access re-fills it.
	for v := 0; v < 0x100; v++ {
		pa, _ := e.as.Translate(probeBase+uint64(v)*64, mem.AccessRead)
		e.ch.Flush(pa)
	}
	res := run(false) // non-aliasing: PSF forwards 0xdd wrongly -> type D
	foundD := false
	for _, ev := range res.Stlds {
		if ev.Type == predict.TypeD {
			foundD = true
		}
	}
	if !foundD {
		t.Fatalf("no type D event: %v", res.Stlds)
	}
	paDD, _ := e.as.Translate(probeBase+0xdd*64, mem.AccessRead)
	if !e.ch.Cached(paDD) {
		t.Error("transient line for forwarded 0xdd not cached")
	}
}

// TestFig9BranchWindowUpdatesPredictor: an stld executed only on the wrong
// path of a mispredicted branch still updates SSBP/PSFP, and the update
// survives the squash (Vulnerability 4).
func TestFig9BranchWindowUpdatesPredictor(t *testing.T) {
	e := newEnv(t, Config{})
	// if (slow(rcx) != 0) goto skip; -- wrong path contains an aliasing
	// stld. The condition is delayed through a multiply chain so the
	// misprediction window is wide (the attacker's usual cache-miss delay).
	b := asm.NewBuilder()
	b.Movi(isa.R12, 1)
	b.Mov(isa.R11, isa.RCX)
	for i := 0; i < 10; i++ {
		b.Imul(isa.R11, isa.R11, isa.R12)
	}
	b.Jnz(isa.R11, "skip")
	// Wrong path (architecturally executed when rcx==0): slow store + load.
	b.Mov(isa.RBX, isa.RDI)
	for i := 0; i < 8; i++ {
		b.Imul(isa.RBX, isa.RBX, isa.R12)
	}
	b.Store(isa.RBX, 0, isa.R9)
	b.Load(isa.R8, isa.RSI, 0)
	b.Label("skip")
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	e.mapData(dataBase, mem.PageSize)

	// Train the branch not-taken (rcx = 0) so that rcx != 0 mispredicts.
	var regs [isa.NumRegs]uint64
	for i := 0; i < 4; i++ {
		regs = [isa.NumRegs]uint64{}
		regs[isa.RDI] = dataBase
		regs[isa.RSI] = dataBase + 0x800 // non-aliasing during training
		e.run(codeBase, &regs)
	}
	// Reset predictors so only the transient window trains them.
	e.unit.FlushAll()

	// Now run with rcx != 0: the stld executes only transiently, aliasing.
	regs = [isa.NumRegs]uint64{}
	regs[isa.RCX] = 1
	regs[isa.RDI] = dataBase
	regs[isa.RSI] = dataBase // aliasing within the window
	regs[isa.R9] = 0x11
	res := e.run(codeBase, &regs)
	if res.Stop != StopHalt {
		t.Fatalf("stop %v", res.Stop)
	}
	if regs[isa.R8] != 0 {
		t.Fatal("wrong-path load leaked into architectural state")
	}
	var transientEv []StldEvent
	for _, ev := range res.Stlds {
		if ev.Transient {
			transientEv = append(transientEv, ev)
		}
	}
	if len(transientEv) == 0 {
		t.Fatal("no transient stld event inside the branch window")
	}
	// The predictor update survived the squash: SSBP now holds state for the
	// load's entry.
	q := predict.Query{StoreIPA: transientEv[0].StoreIPA, LoadIPA: transientEv[0].LoadIPA}
	c := e.unit.PeekCounters(q)
	if c.Zero() {
		t.Error("transient update was rolled back; Vulnerability 4 not reproduced")
	}
}

// TestFig9FaultyLoadWindow: a faulting load opens a transient window in
// which dependent instructions run and leave cache state.
func TestFig9FaultyLoadWindow(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Load(isa.R8, isa.RDI, 0) // faults (unmapped)
	b.Shli(isa.R13, isa.R8, 6)
	b.Add(isa.R13, isa.R13, isa.RBP)
	b.Load(isa.R14, isa.R13, 0) // transient: touches probeBase + 0
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	const probeBase = 0x40000
	e.mapData(probeBase, 64)

	pa, _ := e.as.Translate(probeBase, mem.AccessRead)
	e.ch.Flush(pa)
	var regs [isa.NumRegs]uint64
	regs[isa.RDI] = 0xdead000 // unmapped
	regs[isa.RBP] = probeBase
	res := e.run(codeBase, &regs)
	if res.Stop != StopFault {
		t.Fatalf("stop %v", res.Stop)
	}
	// AMD semantics: the faulting load forwards zero, so probeBase+0 gets
	// touched transiently.
	if !e.ch.Cached(pa) {
		t.Error("faulty-load transient window left no cache trace")
	}
}

// TestFig9MemorySpeculationWindowUpdatesPredictor: an stld inside the
// transient window of a *memory* misprediction (type G) also updates the
// predictors — the third Fig 9 trigger.
func TestFig9MemWindowUpdatesPredictor(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	// Outer stld: slow store to [rdi], load [rsi] (aliasing -> G rollback).
	b.Movi(isa.R12, 1)
	b.Mov(isa.RBX, isa.RDI)
	for i := 0; i < 20; i++ {
		b.Imul(isa.RBX, isa.RBX, isa.R12)
	}
	b.Store(isa.RBX, 0, isa.R9)
	b.Load(isa.R8, isa.RSI, 0)
	// Inner stld, only in the transient window before the squash: another
	// slow store + aliasing load at different IPAs.
	b.Mov(isa.R15, isa.RDX)
	for i := 0; i < 4; i++ {
		b.Imul(isa.R15, isa.R15, isa.R12)
	}
	b.Store(isa.R15, 0, isa.R9)
	b.Load(isa.R10, isa.RDX, 0)
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	e.mapData(dataBase, mem.PageSize)

	var regs [isa.NumRegs]uint64
	regs[isa.RDI] = dataBase
	regs[isa.RSI] = dataBase // aliasing -> G
	regs[isa.RDX] = dataBase + 0x400
	regs[isa.R9] = 7
	res := e.run(codeBase, &regs)
	if res.Stop != StopHalt {
		t.Fatalf("stop %v", res.Stop)
	}
	transient := 0
	for _, ev := range res.Stlds {
		if ev.Transient {
			transient++
		}
	}
	if transient == 0 {
		t.Error("no transient stld verified inside the memory-speculation window")
	}
}

// TestGWindowConsumesStaleValue reproduces the core of Spectre-CTL's leak
// phase: the bypassed load's stale value steers a dependent load inside the
// window, and the dependent load's own predictor interaction depends on that
// stale value.
func TestGWindowConsumesStaleValue(t *testing.T) {
	e := newEnv(t, Config{})
	b := asm.NewBuilder()
	b.Movi(isa.R12, 1)
	b.Mov(isa.RBX, isa.RDI)
	for i := 0; i < 20; i++ {
		b.Imul(isa.RBX, isa.RBX, isa.R12)
	}
	b.Store(isa.RBX, 0, isa.R9) // store 0xdd to [rdi]
	b.Load(isa.R8, isa.RSI, 0)  // aliasing; stale value = secret pointer
	b.Load(isa.R10, isa.R8, 0)  // dereference the stale value
	b.Halt()
	e.mapCode(codeBase, b.MustAssemble(codeBase))
	e.mapData(dataBase, mem.PageSize)
	// Map the zero page so the architectural replay (dereferencing the
	// store's value 0xdd) does not fault.
	e.mapData(0, mem.PageSize)
	const secretVA = 0x50000
	e.mapData(secretVA, 64)
	e.write64(dataBase, secretVA) // stale content of [rdi]: pointer to secret
	e.write64(secretVA, 0x5ec12e7)

	paSecret, _ := e.as.Translate(secretVA, mem.AccessRead)
	e.ch.Flush(paSecret)

	var regs [isa.NumRegs]uint64
	regs[isa.RDI] = dataBase
	regs[isa.RSI] = dataBase
	regs[isa.R9] = 0xdd
	res := e.run(codeBase, &regs)
	if res.Stop != StopHalt {
		t.Fatalf("stop %v (fault %v at %#x)", res.Stop, res.Fault, res.FaultVA)
	}
	// Architecturally r8 is the store's value 0xdd and the dereference reads
	// the (zero) value at va 0xdd. The essential observation is transient:
	// the secret's cache line was touched via the stale pointer.
	if !e.ch.Cached(paSecret) {
		t.Error("stale-pointer dereference left no cache trace")
	}
}
