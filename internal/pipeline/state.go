package pipeline

import "zenspec/internal/isa"

// storeRec is an in-flight or recently drained store within one run.
type storeRec struct {
	seq      int
	pa       uint64 // data physical address
	va       uint64 // data virtual address
	ipa      uint64 // instruction physical address of the store
	iva      uint64
	oldVal   uint64 // memory value before this store (for transient reads)
	newVal   uint64
	addrTime int64 // when the data address is generated
	dataTime int64 // when the store data is available
	drain    int64 // when the store leaves the store queue
}

// overlap8 reports whether two 8-byte accesses overlap — the aliasing test.
func overlap8(a, b uint64) bool {
	d := a - b
	return d < 8 || -d < 8
}

// ports tracks next-free cycles for each execution port group.
type ports struct {
	alu []int64
	mul []int64
	ld  []int64
	st  []int64
}

func newPorts(cfg Config) ports {
	return ports{
		alu: make([]int64, cfg.ALUPorts),
		mul: make([]int64, cfg.MulPorts),
		ld:  make([]int64, cfg.LoadPorts),
		st:  make([]int64, cfg.StorePorts),
	}
}

// copyFrom overwrites p with src, reusing p's backing arrays when they are
// large enough (they always are after the first use, since port counts are
// fixed per core).
func (p *ports) copyFrom(src *ports) {
	p.alu = append(p.alu[:0], src.alu...)
	p.mul = append(p.mul[:0], src.mul...)
	p.ld = append(p.ld[:0], src.ld...)
	p.st = append(p.st[:0], src.st...)
}

func (p *ports) fill(v int64) {
	for i := range p.alu {
		p.alu[i] = v
	}
	for i := range p.mul {
		p.mul[i] = v
	}
	for i := range p.ld {
		p.ld[i] = v
	}
	for i := range p.st {
		p.st[i] = v
	}
}

// acquire picks the earliest-free port in group, no earlier than ready, and
// books it. It returns the issue time.
func acquire(group []int64, ready int64) int64 {
	best := 0
	for i := 1; i < len(group); i++ {
		if group[i] < group[best] {
			best = i
		}
	}
	issue := ready
	if group[best] > issue {
		issue = group[best]
	}
	group[best] = issue + 1
	return issue
}

// runState is the complete speculative machine state of one run; transient
// episodes deep-copy it and throw the copy away at rollback.
type runState struct {
	regs    [isa.NumRegs]uint64
	regTime [isa.NumRegs]int64
	pc      uint64

	fetchCycle  int64 // cycle the next instruction dispatches in
	fetchedInCy int   // instructions already dispatched this cycle

	retireRing []int64 // retire times of the last ROBSize instructions
	retireLen  int
	retireIdx  int
	lastRetire int64

	sqRing []int64 // drain times of the last SQSize stores
	sqLen  int
	sqIdx  int

	lqRing []int64 // completion times of the last LQSize loads
	lqLen  int
	lqIdx  int

	ports ports

	stores []storeRec

	maxDone      int64 // completion time of everything so far (LFENCE)
	maxMemDone   int64 // completion of memory ops (MFENCE)
	maxStoreDone int64 // completion of stores (SFENCE)
	maxLoadDone  int64 // completion of loads (RDPRU serializes on this)

	seq   int
	insts uint64

	stlds []StldEvent

	// attr is the cycle-attribution record of the instruction currently in
	// exec, reset at dispatch and read by the InstEvent emit sites. It feeds
	// the profiler's top-down stall breakdown and costs a few stores per
	// instruction whether or not anyone listens.
	attr instAttr
}

// instAttr partitions one instruction's lifetime for cycle attribution:
// dispatch→issue (front-end and operand wait), issue→complete (execution),
// with the store-queue disambiguation stall and the rollback-replay share
// called out separately.
type instAttr struct {
	dispatch int64
	issue    int64
	complete int64
	sqStall  int64
	replay   int64
}

// acquireRun returns the core's reusable top-level run state, fully
// re-initialized — every field a fresh allocation would hold is rewritten, so
// reuse is invisible to the simulation.
func (c *Core) acquireRun(entry uint64, regs [isa.NumRegs]uint64) *runState {
	st := c.runSt
	if st == nil {
		st = &runState{
			retireRing: make([]int64, c.cfg.ROBSize),
			sqRing:     make([]int64, c.cfg.SQSize),
			lqRing:     make([]int64, c.cfg.LQSize),
			ports:      newPorts(c.cfg),
		}
		c.runSt = st
	}
	st.regs = regs
	for i := range st.regTime {
		st.regTime[i] = c.cycle
	}
	st.pc = entry
	st.fetchCycle = c.cycle
	st.fetchedInCy = 0
	st.retireLen, st.retireIdx = 0, 0
	st.lastRetire = c.cycle
	st.sqLen, st.sqIdx = 0, 0
	st.lqLen, st.lqIdx = 0, 0
	st.ports.fill(c.cycle)
	st.stores = st.stores[:0]
	st.maxDone = c.cycle
	st.maxMemDone = c.cycle
	st.maxStoreDone = c.cycle
	st.maxLoadDone = c.cycle
	st.seq = 0
	st.insts = 0
	st.stlds = st.stlds[:0]
	st.attr = instAttr{}
	return st
}

// getClone deep-copies st into a pooled episode state. Episodes never nest
// (every episode-opening path returns early inside one), but the pool keeps a
// free list anyway so a future nesting change stays correct. Callers must
// putClone when the episode's events have been copied out.
func (c *Core) getClone(st *runState) *runState {
	var dst *runState
	if n := len(c.epFree); n > 0 {
		dst = c.epFree[n-1]
		c.epFree = c.epFree[:n-1]
	} else {
		dst = &runState{}
	}
	dst.copyFrom(st)
	return dst
}

// putClone returns an episode state to the pool.
func (c *Core) putClone(st *runState) { c.epFree = append(c.epFree, st) }

// copyFrom makes st a deep copy of src, reusing st's backing arrays.
func (st *runState) copyFrom(src *runState) {
	retire, sq, lq := st.retireRing, st.sqRing, st.lqRing
	prts := st.ports
	stores, stlds := st.stores, st.stlds
	*st = *src
	st.retireRing = append(retire[:0], src.retireRing...)
	st.sqRing = append(sq[:0], src.sqRing...)
	st.lqRing = append(lq[:0], src.lqRing...)
	st.ports = prts
	st.ports.copyFrom(&src.ports)
	st.stores = append(stores[:0], src.stores...)
	st.stlds = stlds[:0] // episode events are appended to the parent by the caller
}

// dispatchSlot returns the dispatch time for the next instruction, modeling
// fetch width and the ROB window, and advances the fetch bookkeeping.
func (st *runState) dispatchSlot(cfg *Config) int64 {
	if st.fetchedInCy >= cfg.FetchWidth {
		st.fetchCycle++
		st.fetchedInCy = 0
	}
	d := st.fetchCycle
	if st.retireLen == cfg.ROBSize {
		// The window is full: we cannot dispatch before the oldest retires.
		if oldest := st.retireRing[st.retireIdx]; oldest+1 > d {
			d = oldest + 1
			st.fetchCycle = d
			st.fetchedInCy = 0
		}
	}
	st.fetchedInCy++
	// A fresh attribution record: portless instructions issue and complete
	// at dispatch unless the op overrides the stamps.
	st.attr = instAttr{dispatch: d, issue: d, complete: d}
	return d
}

// redirect moves the fetch point (branch redirect, rollback refetch).
func (st *runState) redirect(pc uint64, when int64) {
	st.pc = pc
	if when > st.fetchCycle {
		st.fetchCycle = when
	}
	st.fetchedInCy = 0
}

// retire records an in-order retirement and returns its time.
func (st *runState) retire(complete int64) int64 {
	st.attr.complete = complete
	t := complete
	if st.lastRetire > t {
		t = st.lastRetire
	}
	st.lastRetire = t
	if st.retireLen < len(st.retireRing) {
		st.retireRing[(st.retireIdx+st.retireLen)%len(st.retireRing)] = t
		st.retireLen++
	} else {
		st.retireRing[st.retireIdx] = t
		st.retireIdx = (st.retireIdx + 1) % len(st.retireRing)
	}
	return t
}

// sqSlot models store-queue occupancy: a new store cannot dispatch before
// the oldest of the last SQSize stores drained.
func (st *runState) sqSlot(d int64) int64 {
	if st.sqLen == len(st.sqRing) {
		if oldest := st.sqRing[st.sqIdx]; oldest > d {
			d = oldest
		}
	}
	return d
}

// lqSlot models load-queue occupancy: a new load cannot dispatch before the
// oldest of the last LQSize loads completed.
func (st *runState) lqSlot(d int64) int64 {
	if st.lqLen == len(st.lqRing) {
		if oldest := st.lqRing[st.lqIdx]; oldest > d {
			d = oldest
		}
	}
	return d
}

func (st *runState) lqPush(done int64) {
	if st.lqLen < len(st.lqRing) {
		st.lqRing[(st.lqIdx+st.lqLen)%len(st.lqRing)] = done
		st.lqLen++
		return
	}
	st.lqRing[st.lqIdx] = done
	st.lqIdx = (st.lqIdx + 1) % len(st.lqRing)
}

func (st *runState) sqPush(drain int64) {
	if st.sqLen < len(st.sqRing) {
		st.sqRing[(st.sqIdx+st.sqLen)%len(st.sqRing)] = drain
		st.sqLen++
		return
	}
	st.sqRing[st.sqIdx] = drain
	st.sqIdx = (st.sqIdx + 1) % len(st.sqRing)
}

// youngestUnresolved returns the youngest older store whose address is not
// yet generated at time t, or nil.
func (st *runState) youngestUnresolved(t int64) *storeRec {
	for i := len(st.stores) - 1; i >= 0; i-- {
		if st.stores[i].addrTime > t {
			return &st.stores[i]
		}
	}
	return nil
}

// youngestAliasing returns the youngest older store overlapping pa that is
// still in the store queue at time t (not yet drained), or nil.
func (st *runState) youngestAliasing(pa uint64, t int64) *storeRec {
	for i := len(st.stores) - 1; i >= 0; i-- {
		s := &st.stores[i]
		if s.drain > t && overlap8(s.pa, pa) {
			return s
		}
	}
	return nil
}

// unresolvedAliasing returns the youngest older store overlapping pa whose
// address is unresolved at time t, and the latest address-generation time
// over all such stores (the point where a conflict is certain to have been
// detected).
func (st *runState) unresolvedAliasing(pa uint64, t int64) (*storeRec, int64) {
	var youngest *storeRec
	var maxAddr int64
	for i := len(st.stores) - 1; i >= 0; i-- {
		s := &st.stores[i]
		if s.addrTime > t && overlap8(s.pa, pa) {
			if youngest == nil {
				youngest = s
			}
			if s.addrTime > maxAddr {
				maxAddr = s.addrTime
			}
		}
	}
	return youngest, maxAddr
}

// allUnresolvedAddrTime returns the latest address-generation time over all
// older stores unresolved at t (what a stalled load waits for), or t if
// there are none.
func (st *runState) allUnresolvedAddrTime(t int64) int64 {
	out := t
	for i := range st.stores {
		if a := st.stores[i].addrTime; a > out {
			out = a
		}
	}
	return out
}

func (st *runState) bumpDone(t int64) {
	if t > st.maxDone {
		st.maxDone = t
	}
}

func (st *runState) bumpMem(t int64) {
	st.bumpDone(t)
	if t > st.maxMemDone {
		st.maxMemDone = t
	}
}
