package pipeline

import (
	"errors"
	"reflect"
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
)

// infiniteLoop is a program that never halts: the cooperative cancel check is
// the only way out short of the instruction limit.
func infiniteLoop() *asm.Builder {
	b := asm.NewBuilder()
	b.Movi(isa.RAX, 1)
	b.Label("spin")
	b.Jnz(isa.RAX, "spin")
	return b
}

func TestStopCancelsRun(t *testing.T) {
	// Fire after a bounded number of polls by piggybacking on the check
	// itself: the loop is the only caller, so a plain counter suffices.
	polls := 0
	e := newEnv(t, Config{Stop: func() bool {
		polls++
		return polls > 3
	}})
	e.mapCode(codeBase, infiniteLoop().MustAssemble(codeBase))
	var regs [isa.NumRegs]uint64
	defer func() {
		p := recover()
		err, ok := p.(error)
		if !ok || !errors.Is(err, ErrCancelled) {
			t.Fatalf("recovered %v, want ErrCancelled", p)
		}
		if polls != 4 {
			t.Errorf("stop polled %d times before firing, want 4", polls)
		}
	}()
	e.core.Run(e.as, codeBase, &regs, 1<<40)
	t.Fatal("run returned despite cancellation")
}

func TestStopFalseDoesNotPerturbRun(t *testing.T) {
	prog := func(cfg Config) RunResult {
		e := newEnv(t, cfg)
		b := asm.NewBuilder()
		b.Movi(isa.RCX, 3000)
		b.Movi(isa.RAX, 0)
		b.Label("loop")
		b.Addi(isa.RAX, isa.RAX, 1)
		b.Subi(isa.RCX, isa.RCX, 1)
		b.Jnz(isa.RCX, "loop")
		b.Halt()
		e.mapCode(codeBase, b.MustAssemble(codeBase))
		var regs [isa.NumRegs]uint64
		return e.run(codeBase, &regs)
	}
	plain := prog(Config{})
	polled := prog(Config{Stop: func() bool { return false }})
	if !reflect.DeepEqual(plain, polled) {
		t.Fatalf("polling Stop changed the run:\n%+v\nvs\n%+v", plain, polled)
	}
}
