package sandbox

import (
	"fmt"
	"sort"

	"zenspec/internal/kernel"
)

// EscapeResult reports a sandbox-escape run.
type EscapeResult struct {
	Secret  []byte
	Leaked  []byte
	Correct int
	// ProbesCompiled is how many JITed functions the collision searches
	// burned (the browser analogue of code-sliding attempts).
	ProbesCompiled int
}

func (r EscapeResult) String() string {
	return fmt.Sprintf("sandbox escape: leaked %d/%d bytes through SSBP with masked memory, no CLFLUSH and a coarse timer (%d probe modules compiled)",
		r.Correct, len(r.Secret), r.ProbesCompiled)
}

// gadget layout constants (heap slot indices).
const (
	gadgetIdx2  = 40  // the slot ld1 reads (and the store sanitizes)
	knownSlot   = 300 // attacker-controlled slot used during training
	heapSlots   = 8192
	delayMuls   = 80 // stands in for the cache-missing index computation
	probeDelays = 12
)

// victimGadget is the Listing 4 pattern: a sanitizing store to heap[idx],
// a load of the same slot (bypassing the store under an SSBP
// misprediction), an unmasked "just sanitized" dereference, and a masked
// covert send.
func victimGadget(b *Builder) {
	b.Const(T5, 1)
	b.Move(T0, Arg0) // idx
	for i := 0; i < delayMuls; i++ {
		b.Mul(T0, T0, T5)
	}
	b.Shl(T0, T0, 3)
	b.Const(T1, 0)
	b.StoreHeap(T0, T1) // heap[idx*8] = 0 (sanitize)

	b.Move(T2, Arg0) // idx2 == idx
	b.Shl(T2, T2, 3)
	b.LoadHeap(T3, T2)      // ld1: stale value under bypass
	b.LoadSanitized(T4, T3) // ld2: the unmasked dereference
	b.And(T4, T4, 0xff)
	b.Shl(T4, T4, 3)
	b.LoadHeap(T2, T4) // ld3: aliases the store iff byte == idx
	b.Return()
}

// probeGadget is the sandboxed stld: a delayed store and an immediate load,
// timed with the coarse timer. Compiled many times, its load slides through
// instruction physical addresses.
func probeGadget(b *Builder) {
	b.Timer(T2)
	b.Const(T5, 1)
	b.Move(T0, Arg0)
	for i := 0; i < probeDelays; i++ {
		b.Mul(T0, T0, T5)
	}
	b.Shl(T0, T0, 3)
	b.Const(T1, 0)
	b.StoreHeap(T0, T1)
	b.Move(T3, Arg1)
	b.Shl(T3, T3, 3)
	b.LoadHeap(T4, T3)
	b.Timer(T0)
	b.Sub(Ret, T0, T2)
	b.Return()
}

// escape carries the run state.
type escape struct {
	env       *Env
	victim    *Module
	ld1Col    *Module
	ld3Col    *Module
	delay     *Module
	threshold uint64
	rngState  uint64
	res       *EscapeResult
}

// dephase runs a variable-length delay loop before a timed read, so
// consecutive measurements do not phase-lock against the quantized timer —
// the standard trick of coarse-timer attackers.
func (e *escape) dephase() {
	e.rngState = e.rngState*6364136223846793005 + 1442695040888963407
	n := (e.rngState >> 33) % 40
	e.delay.Call(n + 1)
}

// delayGadget spins Arg0 iterations.
func delayGadget(b *Builder) {
	b.Move(T0, Arg0)
	b.Label("spin")
	b.AddImm(T0, T0, -1)
	b.JumpZero(T0, "out")
	b.Jump("spin")
	b.Label("out")
	b.Return()
}

// Escape runs the end-to-end sandbox escape: plant a secret outside the
// heap, find SSBP colliders by JIT-compiling probe functions, and leak the
// secret through the predictor covert channel.
func Escape(cfg kernel.Config, secret []byte) (EscapeResult, error) {
	env, err := New(cfg, heapSlots*8)
	if err != nil {
		return EscapeResult{}, err
	}
	res := EscapeResult{Secret: secret}
	secretBase := env.PlantSecret(secret)
	victim, err := env.Compile(victimGadget)
	if err != nil {
		return res, err
	}
	e := &escape{env: env, victim: victim, res: &res, rngState: uint64(cfg.Seed)*2654435761 + 99}
	e.delay, err = env.Compile(delayGadget)
	if err != nil {
		return res, err
	}
	if err := e.calibrate(); err != nil {
		return res, err
	}
	if err := e.findColliders(); err != nil {
		return res, err
	}
	// Arm ld3's entry: saturate C4 through the attacker's own collider,
	// then drain C3 so the next rollback snaps it to 15.
	for i := 0; i < 3; i++ {
		e.drain(e.ld3Col)
		e.callProbe(e.ld3Col, knownSlot+1, knownSlot+1) // aliasing: type G
	}
	e.drain(e.ld3Col)

	for i := range secret {
		res.Leaked = append(res.Leaked, e.leakByte(secretBase+uint64(i)))
	}
	for i := range secret {
		if i < len(res.Leaked) && res.Leaked[i] == secret[i] {
			res.Correct++
		}
	}
	return res, nil
}

// callProbe runs a probe module with a store slot and load slot and returns
// the coarse-timed cycles.
func (e *escape) callProbe(m *Module, storeSlot, loadSlot uint64) uint64 {
	v, err := m.Call(storeSlot, loadSlot)
	if err != nil {
		return 0
	}
	if v > 1<<62 {
		return 0 // signed-negative jittered reading
	}
	return v
}

// probeRead times a non-aliasing probe execution, dephased against the
// timer quantum.
func (e *escape) probeRead(m *Module) uint64 {
	e.dephase()
	return e.callProbe(m, knownSlot+7, knownSlot+9)
}

// calibrate learns the stall-vs-fast threshold on a scratch collider pair
// the attacker fully controls.
func (e *escape) calibrate() error {
	scratch, err := e.env.Compile(probeGadget)
	if err != nil {
		return err
	}
	// The detection floor is the timer's quantum: a dephased stall reading
	// always spans at least one boundary, while a fast reading is usually
	// zero. The smallest nonzero reading over a mixed sample pins it down.
	var readings []uint64
	e.rawDrain(scratch, 40)
	for round := 0; round < 3; round++ {
		e.callProbe(scratch, 5, 5) // aliasing: G (trains the entry)
		for i := 0; i < 8; i++ {
			readings = append(readings, e.probeRead(scratch))
		}
		e.rawDrain(scratch, 40)
	}
	for i := 0; i < 12; i++ {
		readings = append(readings, e.probeRead(scratch))
	}
	sort.Slice(readings, func(i, j int) bool { return readings[i] < readings[j] })
	for _, r := range readings {
		if r > 0 {
			e.threshold = r
			break
		}
	}
	if e.threshold == 0 {
		return fmt.Errorf("sandbox: timer too coarse to calibrate")
	}
	e.rawDrain(scratch, 40)
	return nil
}

// rawDrain drains an entry before the threshold exists: it simply runs the
// probe n times (every stall consumes one C3 step regardless of whether we
// can read it).
func (e *escape) rawDrain(m *Module, n int) {
	for i := 0; i < n; i++ {
		e.callProbe(m, knownSlot+7, knownSlot+9)
	}
}

// slow reads the covert channel. The decisive observation: a fast probe
// (≈11 cycles) can span at most ONE quantum boundary, so it never reads
// 2×quantum or more — while a stalled probe (≈67 cycles) does so on most
// dephased readings. Three readings with any at 2×quantum is therefore a
// zero-false-positive detector; misses are retried by the surrounding
// sweeps.
func (e *escape) slow(m *Module) bool {
	for i := 0; i < 3; i++ {
		if e.probeRead(m) >= 2*e.threshold {
			return true
		}
	}
	return false
}

// drain runs non-aliasing probes until the entry reads fast twice.
func (e *escape) drain(m *Module) {
	fast := 0
	for i := 0; i < 60 && fast < 2; i++ {
		if e.probeRead(m) < e.threshold {
			fast++
		} else {
			fast = 0
		}
	}
}

// findColliders JIT-compiles probe functions until one shares ld1's SSBP
// entry and another shares ld3's — the browser form of code sliding.
func (e *escape) findColliders() error {
	// Train ld1's entry to C3=15 through victim rollbacks (idx==idx2; the
	// planted slot value points at attacker heap data, keeping ld2 benign).
	e.env.WriteHeap(knownSlot*8, 0x11)
	trainLd1 := func() {
		for i := 0; i < 3; i++ {
			e.env.WriteHeap(gadgetIdx2*8, knownSlot*8) // ld2 -> heap[knownSlot]
			e.env.TouchHeap(gadgetIdx2 * 8)
			e.victim.Call(gadgetIdx2)
			if e.ld1Col != nil {
				e.drain(e.ld1Col)
			}
		}
	}
	trainLd1()
	var err error
	e.ld1Col, err = e.search()
	if err != nil {
		return fmt.Errorf("ld1 collider: %v", err)
	}
	e.drain(e.ld1Col)

	// Train ld3's entry: point ld2 at a known byte k and call with idx=k,
	// so ld3 aliases the store and rolls back.
	k := uint64(0x11)
	for i := 0; i < 3; i++ {
		e.env.WriteHeap(k*8, knownSlot*8)
		e.env.TouchHeap(k * 8)
		e.victim.Call(k)
		e.drain(e.ld1Col)
	}
	e.ld3Col, err = e.search()
	if err != nil {
		return fmt.Errorf("ld3 collider: %v", err)
	}
	e.drain(e.ld3Col)
	return nil
}

// search compiles probes until one shares the trained entry, detected with
// the double-quantum reading (see slow): modules whose timed region crosses
// a page boundary read one quantum high every time but can never reach two
// quanta, so only a genuine C3 stall triggers.
func (e *escape) search() (*Module, error) {
	for n := 0; n < 24000; n++ {
		m, err := e.env.Compile(probeGadget)
		if err != nil {
			return nil, err
		}
		e.res.ProbesCompiled++
		if e.slow(m) {
			return m, nil
		}
	}
	return nil, fmt.Errorf("no collision in 24000 modules")
}

// leakByte guesses the secret byte at ptr (an absolute renderer address).
func (e *escape) leakByte(ptr uint64) byte {
	off := ptr - e.env.HeapBase() // what ld2 adds to the heap base
	for sweep := 0; sweep < 2; sweep++ {
		for guess := 0; guess < 256; guess++ {
			e.drain(e.ld1Col)
			e.env.WriteHeap(uint64(guess)*8, off) // plant the OOB pointer
			e.env.TouchHeap(uint64(guess) * 8)    // the plant itself warmed it
			e.victim.Call(uint64(guess))
			if e.slow(e.ld3Col) {
				e.drain(e.ld3Col)
				return byte(guess)
			}
		}
	}
	return 0
}
