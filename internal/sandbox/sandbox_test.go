package sandbox

import (
	"testing"

	"zenspec/internal/kernel"
)

func TestHeapMaskingConfinesArchitecturalReads(t *testing.T) {
	env, err := New(kernel.Config{Seed: 1}, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	env.PlantSecret([]byte{0x5e})
	env.WriteHeap(8, 0x1234)
	// A script that tries to read far outside the heap gets wrapped back in.
	m, err := env.Compile(func(b *Builder) {
		b.Move(T0, Arg0)
		b.LoadHeap(Ret, T0)
		b.Return()
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := m.Call(8)
	if err != nil {
		t.Fatal(err)
	}
	if in != 0x1234 {
		t.Errorf("in-bounds read %#x", in)
	}
	// Index = heap size + 8 wraps to slot 1 (mask), never reaches the secret.
	wrapped, err := m.Call(1<<16 + 8)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped != 0x1234 {
		t.Errorf("out-of-bounds read returned %#x, want the wrapped slot", wrapped)
	}
}

func TestCompileSlidesInstructionAddresses(t *testing.T) {
	env, err := New(kernel.Config{Seed: 1}, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := env.Compile(probeGadget)
	b, _ := env.Compile(probeGadget)
	if a.Entry == b.Entry {
		t.Error("modules share an entry")
	}
	if _, err := a.Call(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Call(1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadHeap(t *testing.T) {
	if _, err := New(kernel.Config{}, 1000); err == nil {
		t.Error("non-power-of-two heap accepted")
	}
	if _, err := New(kernel.Config{}, 0); err == nil {
		t.Error("zero heap accepted")
	}
}

// TestEscape is the headline: sandboxed code — masked memory, no flush
// instruction, coarse timer — leaks renderer memory through SSBP.
func TestEscape(t *testing.T) {
	if testing.Short() {
		t.Skip("escape run is slow")
	}
	secret := []byte{0x5e, 0xc1}
	res, err := Escape(kernel.Config{Seed: 5}, secret)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s (leaked %x)", res, res.Leaked)
	if res.Correct < len(secret) {
		t.Errorf("leaked %x, want %x", res.Leaked, secret)
	}
}
