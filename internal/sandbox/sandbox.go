// Package sandbox models the browser environment of Section V-C2: code is
// produced by a JIT (programmatic builder only — no hand-placed bytes), all
// architectural memory accesses are bounds-masked into a linear heap (the
// WebAssembly memory model), CLFLUSH and syscalls do not exist, and the only
// clock is a constructed coarse timer.
//
// The point of the model is the paper's: none of those restrictions contain
// *transient* execution. A sanitize-then-use gadget is architecturally
// confined to the heap, yet under an SSBP misprediction its dereference runs
// with a stale, attacker-planted out-of-heap pointer — and the verdict comes
// back through predictor timing, with no cache flushing at all.
package sandbox

import (
	"fmt"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/pipeline"
)

// Heap geometry.
const (
	heapVA   = 0x20000000
	codeVA   = 0x10000000
	secretVA = 0x30000000 // "renderer memory": same process, outside the heap
)

// Env is one renderer: a process with a linear heap, a JIT code region and a
// coarse timer.
type Env struct {
	K    *kernel.Kernel
	Proc *kernel.Process
	// HeapSize is a power of two; architectural heap accesses are masked to
	// [0, HeapSize).
	HeapSize uint64

	codeNext uint64
	modCount uint64
	osProc   *kernel.Process
	osEntry  uint64
}

// New boots a renderer. cfg's timer fields default to the browser profile
// (40-cycle quantum) when unset.
func New(cfg kernel.Config, heapSize uint64) (*Env, error) {
	if heapSize == 0 || heapSize&(heapSize-1) != 0 {
		return nil, fmt.Errorf("sandbox: heap size %d is not a power of two", heapSize)
	}
	if cfg.TimerQuantum == 0 {
		cfg.TimerQuantum = 40
	}
	k := kernel.New(cfg)
	p := k.NewProcess("renderer", kernel.DomainUser)
	p.MapData(heapVA, heapSize)
	e := &Env{K: k, Proc: p, HeapSize: heapSize, codeNext: codeVA}
	// The rest of the system: a kernel task scheduled between renderer
	// tasks. Its context switches flush PSFP — renderers never run in
	// isolation, and the attack machinery depends on exactly that.
	e.osProc = k.NewProcess("os", kernel.DomainKernel)
	ob := asm.NewBuilder()
	ob.Nop().Halt()
	const osVA = 0xf000000
	e.osProc.MapCode(osVA, ob.MustAssemble(osVA))
	e.osEntry = osVA
	return e, nil
}

// TouchHeap warms a heap slot's cache line — what an architectural script
// read of that slot does.
func (e *Env) TouchHeap(idx uint64) {
	e.Proc.WarmLine(heapVA + (idx & (e.HeapSize - 8)))
}

// PlantSecret places bytes in renderer memory outside the heap — the data a
// confined script must never read.
func (e *Env) PlantSecret(b []byte) uint64 {
	e.Proc.MapData(secretVA, uint64(len(b))+mem.PageSize)
	e.Proc.WriteBytes(secretVA, b)
	return secretVA
}

// WriteHeap stores a 64-bit value at a heap index (bounds-checked like any
// script write).
func (e *Env) WriteHeap(idx uint64, v uint64) {
	e.Proc.Write64(heapVA+(idx&(e.HeapSize-8)), v)
}

// ReadHeap loads a 64-bit heap value.
func (e *Env) ReadHeap(idx uint64) uint64 {
	return e.Proc.Read64(heapVA + (idx & (e.HeapSize - 8)))
}

// HeapBase returns the heap's virtual base — scripts never see it; gadget
// builders use it to reason about planted pointers.
func (e *Env) HeapBase() uint64 { return heapVA }

// Builder is the JIT surface: a restricted assembler. There is deliberately
// no Clflush, no Syscall, no raw Store/Load — heap accesses go through the
// masking helpers, mirroring WASM linear memory.
type Builder struct {
	a    *asm.Builder
	mask int32
}

// Reg aliases the register type for gadget construction.
type Reg = isa.Reg

// Registers available to sandboxed code (R14/R15 are runtime-reserved).
const (
	Arg0 = isa.RDI
	Arg1 = isa.RSI
	Arg2 = isa.RDX
	Ret  = isa.RAX
	T0   = isa.RCX
	T1   = isa.RBX
	T2   = isa.R8
	T3   = isa.R9
	T4   = isa.R10
	T5   = isa.R11
)

// Const emits dst = imm.
func (b *Builder) Const(dst Reg, imm int32) *Builder { b.a.Movi(dst, imm); return b }

// Move emits dst = src.
func (b *Builder) Move(dst, src Reg) *Builder { b.a.Mov(dst, src); return b }

// Add emits dst = x + y.
func (b *Builder) Add(dst, x, y Reg) *Builder { b.a.Add(dst, x, y); return b }

// AddImm emits dst = x + imm.
func (b *Builder) AddImm(dst, x Reg, imm int32) *Builder { b.a.Addi(dst, x, imm); return b }

// Sub emits dst = x - y.
func (b *Builder) Sub(dst, x, y Reg) *Builder { b.a.Sub(dst, x, y); return b }

// And emits dst = x & imm.
func (b *Builder) And(dst, x Reg, imm int32) *Builder { b.a.Andi(dst, x, imm); return b }

// Shl emits dst = x << imm.
func (b *Builder) Shl(dst, x Reg, imm int32) *Builder { b.a.Shli(dst, x, imm); return b }

// Mul emits dst = x * y (the slow unit — gadgets use it to shape address
// timing, as script code shapes it with dependent arithmetic).
func (b *Builder) Mul(dst, x, y Reg) *Builder { b.a.Imul(dst, x, y); return b }

// Label and branches.
func (b *Builder) Label(name string) *Builder        { b.a.Label(name); return b }
func (b *Builder) Jump(name string) *Builder         { b.a.Jmp(name); return b }
func (b *Builder) JumpZero(r Reg, l string) *Builder { b.a.Jz(r, l); return b }

// LoadHeap emits dst = heap[idx & mask], the bounds-masked linear-memory
// load. idx is clobbered.
func (b *Builder) LoadHeap(dst, idx Reg) *Builder {
	b.a.Andi(idx, idx, b.mask)
	b.a.Add(idx, idx, isa.R15) // R15 = heap base, set by the runtime
	b.a.Load(dst, idx, 0)
	return b
}

// StoreHeap emits heap[idx & mask] = val. idx is clobbered.
func (b *Builder) StoreHeap(idx, val Reg) *Builder {
	b.a.Andi(idx, idx, b.mask)
	b.a.Add(idx, idx, isa.R15)
	b.a.Store(idx, 0, val)
	return b
}

// LoadSanitized emits dst = mem[heapBase + off] WITHOUT re-masking off: the
// victim-gadget pattern where program logic has just sanitized the value at
// that location (a store overwrote it with an in-bounds index), so the JIT
// elides the second mask. Architecturally safe; transiently it is the leak.
func (b *Builder) LoadSanitized(dst, off Reg) *Builder {
	b.a.Add(off, off, isa.R15)
	b.a.Load(dst, off, 0)
	return b
}

// Timer emits dst = coarse timestamp (the constructed browser timer; the
// environment quantizes it).
func (b *Builder) Timer(dst Reg) *Builder { b.a.Rdpru(dst); return b }

// Return ends the function.
func (b *Builder) Return() *Builder { b.a.Halt(); return b }

// Module is a compiled sandboxed function.
type Module struct {
	env   *Env
	Entry uint64
}

// Compile JITs a function. Successive compilations land at successive
// instruction slots, so compiling many copies of one function slides its
// loads through instruction physical addresses — the in-browser equivalent
// of the paper's code sliding.
func (e *Env) Compile(fn func(*Builder)) (*Module, error) {
	b := &Builder{a: asm.NewBuilder(), mask: int32(e.HeapSize - 8)}
	fn(b)
	code, err := b.a.Assemble(e.codeNext)
	if err != nil {
		return nil, fmt.Errorf("sandbox: %v", err)
	}
	entry := e.codeNext
	// Map pages on demand; modules pack tightly (next slot, not next page).
	firstPage := entry &^ uint64(mem.PageMask)
	lastPage := (entry + uint64(len(code))) &^ uint64(mem.PageMask)
	for pg := firstPage; pg <= lastPage; pg += mem.PageSize {
		if _, ok := e.Proc.AS.Lookup(pg); !ok {
			e.Proc.AS.Map(pg, e.K.Phys().AllocFrame(), mem.PermRWX)
		}
	}
	e.Proc.WriteBytes(entry, code)
	e.codeNext += uint64(len(code))
	// Stagger successive modules by a varying number of slots so their
	// instruction addresses sweep the predictor-hash space densely instead
	// of a fixed-stride lattice.
	e.modCount++
	e.codeNext += isa.InstBytes * (e.modCount % 7)
	if rem := e.codeNext % isa.InstBytes; rem != 0 {
		e.codeNext += isa.InstBytes - rem
	}
	return &Module{env: e, Entry: entry}, nil
}

// Call runs the module with up to three arguments and returns Ret. Every
// call is a separate script task: the OS runs in between (flushing PSFP, as
// on real hardware between renderer timeslices).
func (m *Module) Call(args ...uint64) (uint64, error) {
	m.env.osProc.Regs = [isa.NumRegs]uint64{}
	m.env.K.Run(m.env.osProc, m.env.osEntry, 0)
	p := m.env.Proc
	p.Regs = [isa.NumRegs]uint64{}
	p.Regs[isa.R15] = heapVA
	for i, a := range args {
		switch i {
		case 0:
			p.Regs[Arg0] = a
		case 1:
			p.Regs[Arg1] = a
		case 2:
			p.Regs[Arg2] = a
		}
	}
	res := m.env.K.Run(p, m.Entry, 1<<16)
	if res.Stop != pipeline.StopHalt {
		return 0, fmt.Errorf("sandbox: module stopped with %v (fault %v at %#x)",
			res.Stop, res.Fault, res.FaultVA)
	}
	return p.Regs[Ret], nil
}
