package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{
		L1:         LevelConfig{Sets: 2, Ways: 2, Latency: 4},
		L2:         LevelConfig{Sets: 4, Ways: 2, Latency: 12},
		L3:         LevelConfig{Sets: 8, Ways: 4, Latency: 40},
		MemLatency: 200,
	}
}

func TestMissThenHitLatencies(t *testing.T) {
	h := New(DefaultConfig())
	lat, lvl := h.Access(0x1000)
	if lvl != Memory || lat != 200 {
		t.Errorf("first access = %d,%v; want 200,memory", lat, lvl)
	}
	lat, lvl = h.Access(0x1008) // same line
	if lvl != L1 || lat != 4 {
		t.Errorf("second access = %d,%v; want 4,L1", lat, lvl)
	}
}

func TestFlushEvictsEverywhere(t *testing.T) {
	h := New(DefaultConfig())
	h.Access(0x2000)
	if !h.Cached(0x2000) {
		t.Fatal("line should be cached after access")
	}
	h.Flush(0x2010) // same line, different offset
	if h.Cached(0x2000) {
		t.Fatal("flush should remove line from all levels")
	}
	if lat, lvl := h.Access(0x2000); lvl != Memory || lat != 200 {
		t.Errorf("post-flush access = %d,%v; want memory", lat, lvl)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	h := New(small())
	// L1 has 2 sets x 2 ways. Lines mapping to set 0: line addresses with
	// (line>>6)%2==0, i.e. 0x000, 0x080, 0x100, ...
	h.Access(0x000)
	h.Access(0x080)
	h.Access(0x100) // evicts 0x000 from L1
	if h.Contains(0x000, L1) {
		t.Fatal("0x000 should be evicted from L1")
	}
	if !h.Contains(0x000, L2) {
		t.Fatal("0x000 should remain in L2")
	}
	if lat, lvl := h.Access(0x000); lvl != L2 || lat != 12 {
		t.Errorf("access = %d,%v; want 12,L2", lat, lvl)
	}
}

func TestLRUOrder(t *testing.T) {
	h := New(small())
	h.Access(0x000)
	h.Access(0x080)
	h.Access(0x000) // make 0x080 the LRU
	h.Access(0x100) // should evict 0x080
	if !h.Contains(0x000, L1) {
		t.Error("recently-used line evicted")
	}
	if h.Contains(0x080, L1) {
		t.Error("LRU line not evicted")
	}
}

func TestTouchWarmsWithoutCountingAccess(t *testing.T) {
	h := New(DefaultConfig())
	h.Touch(0x3000)
	if h.Stats().Accesses != 0 {
		t.Error("Touch should not count as an access")
	}
	if lat, lvl := h.Access(0x3000); lvl != L1 || lat != 4 {
		t.Errorf("access after touch = %d,%v", lat, lvl)
	}
}

func TestHitLatencyIsNonDestructive(t *testing.T) {
	h := New(DefaultConfig())
	if h.HitLatency(0x4000) != 200 {
		t.Error("cold HitLatency should be memory latency")
	}
	if h.Stats().Accesses != 0 {
		t.Error("HitLatency must not record accesses")
	}
	h.Access(0x4000)
	if h.HitLatency(0x4000) != 4 {
		t.Error("warm HitLatency should be L1 latency")
	}
}

func TestFlushAll(t *testing.T) {
	h := New(small())
	for i := uint64(0); i < 16; i++ {
		h.Access(i * 64)
	}
	h.FlushAll()
	l1, l2, l3 := h.Lines()
	if l1+l2+l3 != 0 {
		t.Errorf("lines after FlushAll = %d,%d,%d", l1, l2, l3)
	}
}

func TestStatsCounting(t *testing.T) {
	h := New(DefaultConfig())
	h.Access(0x1000) // miss
	h.Access(0x1000) // L1 hit
	h.Flush(0x1000)
	s := h.Stats()
	if s.Accesses != 2 || s.Misses != 1 || s.L1Hits != 1 || s.Flushes != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInclusionProperty(t *testing.T) {
	// After any sequence of accesses (no flushes), every L1-resident line is
	// also L2- and L3-resident in this mostly-inclusive model, as long as the
	// outer levels are big enough not to evict.
	h := New(DefaultConfig())
	r := rand.New(rand.NewSource(42))
	lines := make([]uint64, 64)
	for i := range lines {
		lines[i] = uint64(r.Intn(1 << 20))
	}
	for i := 0; i < 2000; i++ {
		h.Access(lines[r.Intn(len(lines))])
	}
	for _, pa := range lines {
		if h.Contains(pa, L1) && (!h.Contains(pa, L2) || !h.Contains(pa, L3)) {
			t.Fatalf("line %#x in L1 but not in outer levels", pa)
		}
	}
}

func TestAccessIdempotentLatency(t *testing.T) {
	// Property: two consecutive accesses to the same address — the second is
	// always an L1 hit.
	f := func(pa uint64) bool {
		h := New(DefaultConfig())
		h.Access(pa)
		lat, lvl := h.Access(pa)
		return lvl == L1 && lat == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(0x1234) != 0x1200 {
		t.Errorf("LineOf(0x1234) = %#x", LineOf(0x1234))
	}
	if LineSize != 64 {
		t.Errorf("LineSize = %d", LineSize)
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{L1: "L1", L2: "L2", L3: "L3", Memory: "memory"} {
		if lvl.String() != want {
			t.Errorf("%v != %q", lvl, want)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-way config")
		}
	}()
	New(Config{L1: LevelConfig{Sets: 1, Ways: 0, Latency: 1},
		L2: LevelConfig{Sets: 1, Ways: 1, Latency: 1},
		L3: LevelConfig{Sets: 1, Ways: 1, Latency: 1}})
}
