// Package cache models a three-level set-associative data cache hierarchy.
//
// The hierarchy tracks only line presence and recency — data always lives in
// physical memory — which is all that timing attacks such as Flush+Reload
// observe. Latencies are configurable per level; the defaults approximate a
// Zen 3 core (L1 4 cycles, L2 12, L3 40, DRAM 200).
package cache

import (
	"fmt"

	"zenspec/internal/obs"
)

// LineShift is log2 of the cache line size (64-byte lines).
const LineShift = 6

// LineSize is the cache line size in bytes.
const LineSize = 1 << LineShift

// LineOf returns the line address (physical address with the offset bits
// cleared) containing pa.
func LineOf(pa uint64) uint64 { return pa >> LineShift << LineShift }

// Level identifies where an access hit.
type Level uint8

// Hit levels.
const (
	L1 Level = iota
	L2
	L3
	Memory
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Memory:
		return "memory"
	}
	return "level?"
}

// LevelConfig describes one cache level.
type LevelConfig struct {
	Sets    int
	Ways    int
	Latency int
}

// Config describes the hierarchy.
type Config struct {
	L1, L2, L3 LevelConfig
	// MemLatency is the DRAM access latency in cycles.
	MemLatency int
}

// DefaultConfig approximates a Zen 3 data-cache hierarchy (32 KiB L1,
// 512 KiB L2, 2 MiB of L3 slice).
func DefaultConfig() Config {
	return Config{
		L1:         LevelConfig{Sets: 64, Ways: 8, Latency: 4},
		L2:         LevelConfig{Sets: 1024, Ways: 8, Latency: 12},
		L3:         LevelConfig{Sets: 4096, Ways: 8, Latency: 40},
		MemLatency: 200,
	}
}

// set is one associative set; lines are ordered most-recently-used first.
type set struct {
	lines []uint64
}

func (s *set) find(line uint64) int {
	for i, l := range s.lines {
		if l == line {
			return i
		}
	}
	return -1
}

func (s *set) touch(i int) {
	line := s.lines[i]
	copy(s.lines[1:i+1], s.lines[:i])
	s.lines[0] = line
}

// insert adds line as MRU, evicting the LRU line if the set is full.
// It returns the evicted line and whether an eviction happened.
func (s *set) insert(line uint64, ways int) (uint64, bool) {
	if len(s.lines) < ways {
		s.lines = append(s.lines, 0)
		copy(s.lines[1:], s.lines)
		s.lines[0] = line
		return 0, false
	}
	victim := s.lines[len(s.lines)-1]
	copy(s.lines[1:], s.lines)
	s.lines[0] = line
	return victim, true
}

func (s *set) remove(line uint64) bool {
	i := s.find(line)
	if i < 0 {
		return false
	}
	s.lines = append(s.lines[:i], s.lines[i+1:]...)
	return true
}

// level is one cache level.
type level struct {
	cfg  LevelConfig
	sets []set
}

func newLevel(cfg LevelConfig) *level {
	return &level{cfg: cfg, sets: make([]set, cfg.Sets)}
}

func (l *level) setOf(line uint64) *set {
	return &l.sets[(line>>LineShift)%uint64(l.cfg.Sets)]
}

func (l *level) lookup(line uint64) bool {
	s := l.setOf(line)
	i := s.find(line)
	if i < 0 {
		return false
	}
	s.touch(i)
	return true
}

func (l *level) fill(line uint64) (uint64, bool) {
	s := l.setOf(line)
	if i := s.find(line); i >= 0 {
		s.touch(i)
		return 0, false
	}
	return s.insert(line, l.cfg.Ways)
}

func (l *level) invalidate(line uint64) bool { return l.setOf(line).remove(line) }

func (l *level) flushAll() {
	for i := range l.sets {
		l.sets[i].lines = l.sets[i].lines[:0]
	}
}

func (l *level) contains(line uint64) bool { return l.setOf(line).find(line) >= 0 }

func (l *level) count() int {
	n := 0
	for i := range l.sets {
		n += len(l.sets[i].lines)
	}
	return n
}

// Stats counts hierarchy events.
type Stats struct {
	Accesses uint64
	L1Hits   uint64
	L2Hits   uint64
	L3Hits   uint64
	Misses   uint64
	Flushes  uint64
}

// Hierarchy is the three-level cache.
type Hierarchy struct {
	cfg   Config
	l1    *level
	l2    *level
	l3    *level
	stats Stats
	bus   *obs.Bus
}

// AttachBus connects the hierarchy to an event bus: line fills, the capacity
// evictions they displace, and explicit flushes surface as obs.CacheEvent.
func (h *Hierarchy) AttachBus(b *obs.Bus) { h.bus = b }

// fillInto fills line into l, reporting the fill and any displaced victim.
func (h *Hierarchy) fillInto(l *level, name string, line uint64) {
	victim, evicted := l.fill(line)
	if h.bus.On(obs.ClassCache) {
		now := h.bus.Now()
		h.bus.Emit(obs.CacheEvent{Cycle: now, Kind: "fill", Level: name, Line: line})
		if evicted {
			h.bus.Emit(obs.CacheEvent{Cycle: now, Kind: "evict", Level: name, Line: line, Victim: victim})
		}
	}
}

// New returns an empty hierarchy.
func New(cfg Config) *Hierarchy {
	for _, lc := range []LevelConfig{cfg.L1, cfg.L2, cfg.L3} {
		if lc.Sets <= 0 || lc.Ways <= 0 {
			panic(fmt.Sprintf("cache: invalid level config %+v", lc))
		}
	}
	return &Hierarchy{cfg: cfg, l1: newLevel(cfg.L1), l2: newLevel(cfg.L2), l3: newLevel(cfg.L3)}
}

// Access performs a load or store access to pa and returns the latency and
// the level that served it. Misses fill all levels (mostly-inclusive).
func (h *Hierarchy) Access(pa uint64) (int, Level) {
	h.stats.Accesses++
	line := LineOf(pa)
	if h.l1.lookup(line) {
		h.stats.L1Hits++
		return h.cfg.L1.Latency, L1
	}
	if h.l2.lookup(line) {
		h.stats.L2Hits++
		h.fillInto(h.l1, "L1", line)
		return h.cfg.L2.Latency, L2
	}
	if h.l3.lookup(line) {
		h.stats.L3Hits++
		h.fillInto(h.l1, "L1", line)
		h.fillInto(h.l2, "L2", line)
		return h.cfg.L3.Latency, L3
	}
	h.stats.Misses++
	h.fillInto(h.l1, "L1", line)
	h.fillInto(h.l2, "L2", line)
	h.fillInto(h.l3, "L3", line)
	return h.cfg.MemLatency, Memory
}

// Touch fills pa's line into all levels without recording an access; used to
// warm caches deterministically in experiments.
func (h *Hierarchy) Touch(pa uint64) {
	line := LineOf(pa)
	h.fillInto(h.l1, "L1", line)
	h.fillInto(h.l2, "L2", line)
	h.fillInto(h.l3, "L3", line)
}

// Flush removes pa's line from every level (CLFLUSH).
func (h *Hierarchy) Flush(pa uint64) {
	h.stats.Flushes++
	line := LineOf(pa)
	h.l1.invalidate(line)
	h.l2.invalidate(line)
	h.l3.invalidate(line)
	if h.bus.On(obs.ClassCache) {
		h.bus.Emit(obs.CacheEvent{Cycle: h.bus.Now(), Kind: "flush", Line: line})
	}
}

// FlushRandom flushes up to n randomly chosen resident lines from the whole
// hierarchy and returns how many were actually flushed. pick(k) must return a
// uniform value in [0, k); the caller supplies it (typically a seeded RNG) so
// eviction noise stays reproducible. Picks that land on an empty set are
// counted against n but flush nothing — sparse caches see less noise, as on
// hardware.
func (h *Hierarchy) FlushRandom(pick func(int) int, n int) int {
	levels := [3]*level{h.l1, h.l2, h.l3}
	flushed := 0
	for i := 0; i < n; i++ {
		l := levels[pick(3)]
		s := &l.sets[pick(l.cfg.Sets)]
		if len(s.lines) == 0 {
			continue
		}
		h.Flush(s.lines[pick(len(s.lines))])
		flushed++
	}
	return flushed
}

// FlushAll empties the hierarchy.
func (h *Hierarchy) FlushAll() {
	h.l1.flushAll()
	h.l2.flushAll()
	h.l3.flushAll()
}

// Contains reports whether pa's line is present at the given level.
func (h *Hierarchy) Contains(pa uint64, lvl Level) bool {
	line := LineOf(pa)
	switch lvl {
	case L1:
		return h.l1.contains(line)
	case L2:
		return h.l2.contains(line)
	case L3:
		return h.l3.contains(line)
	}
	return false
}

// Cached reports whether pa's line is present at any level.
func (h *Hierarchy) Cached(pa uint64) bool {
	line := LineOf(pa)
	return h.l1.contains(line) || h.l2.contains(line) || h.l3.contains(line)
}

// HitLatency returns the latency an access to pa would observe right now,
// without changing any state. Side-channel probes use Access; this is for
// assertions in tests.
func (h *Hierarchy) HitLatency(pa uint64) int {
	line := LineOf(pa)
	switch {
	case h.l1.contains(line):
		return h.cfg.L1.Latency
	case h.l2.contains(line):
		return h.cfg.L2.Latency
	case h.l3.contains(line):
		return h.cfg.L3.Latency
	}
	return h.cfg.MemLatency
}

// Stats returns a copy of the event counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Lines returns the number of resident lines per level, for tests.
func (h *Hierarchy) Lines() (l1, l2, l3 int) {
	return h.l1.count(), h.l2.count(), h.l3.count()
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }
