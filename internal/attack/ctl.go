package attack

import (
	"sort"
	"sync"

	"zenspec/internal/asm"
	"zenspec/internal/harness"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/revng"
)

// Spectre-CTL victim layout. The victim is a separate process; the attacker
// influences array2 and the idx input through the victim's normal request
// interface (modeled as direct writes), exactly as the paper's PoC does.
const (
	ctlVictimVA = 0x1000000
	ctlArray1VA = 0x2000000
	ctlArray2VA = 0x3000000
	ctlIdxVA    = 0x4000000
	ctlSecretVA = 0x5000000
	// ctlKnownSlot is an array2 slot (outside the 0..255 guess range) the
	// attacker points ld2 at during training, so ld3's aliasing is fully
	// under attacker control.
	ctlKnownSlot = 300
)

// buildCTLVictim assembles the Listing 3 gadget:
//
//	array2[idx] = 0;                       // store, address delayed
//	temp = array2[array1[array2[idx2]]];   // ld1 (bypasses), ld2, ld3
//
// idx is loaded from memory (flushed by the attacker); idx2 arrives in RSI.
// Slots are 8 bytes wide.
//
// The gadget is a pure function of package constants, so it is assembled
// once (host-side memoization only — nothing simulated is cached; callers
// copy the bytes into fresh simulated memory per trial).
func buildCTLVictim() []byte {
	ctlVictimOnce.Do(func() { ctlVictimCode = buildCTLVictimCode() })
	return ctlVictimCode
}

var (
	ctlVictimOnce sync.Once
	ctlVictimCode []byte
)

func buildCTLVictimCode() []byte {
	b := asm.NewBuilder()
	b.Movi(isa.R15, ctlIdxVA)
	b.Load(isa.RCX, isa.R15, 0) // idx — slow when flushed
	b.Movi(isa.R12, 1)
	for i := 0; i < 12; i++ {
		b.Imul(isa.RCX, isa.RCX, isa.R12)
	}
	b.Shli(isa.RCX, isa.RCX, 3)
	b.Movi(isa.R13, ctlArray2VA)
	b.Add(isa.RCX, isa.RCX, isa.R13)
	b.Movi(isa.RAX, 0)
	b.Store(isa.RCX, 0, isa.RAX) // array2[idx] = 0
	b.Shli(isa.R14, isa.RSI, 3)
	b.Add(isa.R14, isa.R14, isa.R13)
	b.Load(isa.RDX, isa.R14, 0) // ld1 = array2[idx2] (bypasses the store)
	b.Movi(isa.R11, ctlArray1VA)
	b.Add(isa.RBX, isa.RDX, isa.R11)
	b.Load(isa.R8, isa.RBX, 0) // ld2 = array1[ld1]
	b.Andi(isa.R8, isa.R8, 0xff)
	b.Shli(isa.R9, isa.R8, 3)
	b.Add(isa.R9, isa.R9, isa.R13)
	b.Load(isa.R10, isa.R9, 0) // ld3 = array2[secret] — the SSBP covert send
	b.Halt()
	return b.MustAssemble(ctlVictimVA)
}

// CTLOptions configures the Spectre-CTL run.
type CTLOptions struct {
	// SliderPages for each of the two collision searches.
	SliderPages int
	// ProbeVotes is how many covert-channel probes must all read "stall"
	// before a guess counts as a hit (raised under noisy timers).
	ProbeVotes int
	// Sweeps is how many full 0..255 guess sweeps to run per byte before
	// giving up.
	Sweeps int
	// SearchVotes is how many confirmation probes (all required to read
	// non-fast) the sliding search uses per candidate offset.
	SearchVotes int
	// Votes is how many independent full recoveries each byte gets; the
	// majority wins (ties break toward the smaller value). 1 keeps the
	// single-pass behavior; raise it under fault injection, where a single
	// flipped SSBP entry can fake or mask one probe hit. 0 picks
	// automatically: 1 on a quiet machine, 3 when the config's fault plan
	// injects machine noise.
	Votes int
	// VictimDomain places the victim in another security domain (default
	// user; the paper also demonstrates leaking from kernel threads).
	VictimDomain kernel.Domain
}

type ctlAttack struct {
	l         *revng.Lab
	victim    *kernel.Process
	attacker  *kernel.Process
	ld1Col    *revng.Stld // attacker stld sharing ld1's SSBP entry
	ld3Col    *revng.Stld // attacker stld sharing ld3's SSBP entry
	tickVA    uint64      // trivial attacker program, used to force scheduling
	threshold uint64      // self-calibrated stall-vs-fast median boundary
	opts      CTLOptions
	res       *Result
}

// calibrateChannel measures the stall and fast medians on an attacker-local
// stld whose SSBP entry the attacker trains itself, and places the decision
// threshold between them. This is how browser attackers survive coarse
// jittered timers: repeated self-calibrated measurements instead of single
// cycle counts.
func (a *ctlAttack) calibrateChannel() {
	s := a.l.PlaceStldIn(a.attacker, 0)
	// Three C3=15 trainings, five stall readings each: enough samples that
	// the stall median survives quantization noise.
	var stallReads []uint64
	s.Phi(revng.Seq(7, -1, 7, -1, 7, -1)) // saturate C4, C3=15
	for batch := 0; batch < 3; batch++ {
		if batch > 0 {
			drainUntilFast(s, 60)
			s.Run(true) // C4 is pegged: one aliasing run restores C3=15
		}
		for i := 0; i < 5; i++ {
			stallReads = append(stallReads, s.Run(false).Cycles)
		}
	}
	// Outlier rejection before the median: a fault plan can flip the entry
	// mid-calibration, turning a stall reading into a fast one (or vice
	// versa); MAD filtering keeps those from dragging the estimate.
	stallReads = madFilter(stallReads)
	sort.Slice(stallReads, func(i, j int) bool { return stallReads[i] < stallReads[j] })
	stall := stallReads[len(stallReads)/2]
	drainUntilFast(s, 60)
	// The upper tail of fast readings matters more than their median: under
	// a quantized timer the common "one boundary crossed" reading must stay
	// below the threshold.
	fasts := make([]uint64, 15)
	for i := range fasts {
		fasts[i] = s.Run(false).Cycles
	}
	fasts = madFilter(fasts)
	sort.Slice(fasts, func(i, j int) bool { return fasts[i] < fasts[j] })
	fastHigh := fasts[len(fasts)*9/10] // ~p90
	a.threshold = (stall+fastHigh)/2 + 1
	if a.threshold <= fastHigh {
		a.threshold = fastHigh + 1
	}
	// A rare double-boundary fast reading can push the estimate above the
	// stall median itself, which would blind the channel entirely; stall
	// readings must stay detectable.
	if a.threshold > stall {
		a.threshold = stall
	}
}

// slow reports whether a median over votes reads indicates a trained (C3>0)
// entry.
func (a *ctlAttack) slow(s *revng.Stld, votes int) bool {
	return medianCycles(s, votes) >= a.threshold
}

// tick runs a trivial attacker program so the kernel switches contexts —
// which flushes the victim's PSFP residue and makes the next victim
// invocation speculate from SSBP state alone, as in the real cross-process
// setting where the attacker always runs between victim requests.
func (a *ctlAttack) tick() {
	a.attacker.Regs = [isa.NumRegs]uint64{}
	a.l.K.Run(a.attacker, a.tickVA, 0)
}

// SpectreCTL runs the Section V-C attack: the attacker clears C3 of the
// victim's first load so SSBP mispredicts non-aliasing; the bypassing load
// transiently reads a stale attacker-planted pointer; the third load's SSBP
// entry is updated inside the transient window (C3 jumps to 15 exactly when
// secret == idx), and the attacker reads the verdict back through timing on
// its own colliding store-load pair — no cache channel, no shared memory.
func SpectreCTL(cfg kernel.Config, secret []byte, opts CTLOptions) Result {
	shards := (len(secret) + ctlShardBytes - 1) / ctlShardBytes
	if shards <= 1 {
		return spectreCTLShard(cfg, secret, opts, 0, len(secret))
	}
	parts := harness.Trials(harness.Workers(cfg.Parallelism), shards, func(s int) Result {
		lo := s * ctlShardBytes
		hi := lo + ctlShardBytes
		if hi > len(secret) {
			hi = len(secret)
		}
		return spectreCTLShard(cfg, secret, opts, lo, hi)
	})
	res := Result{Name: "spectre-ctl", Secret: secret}
	for s, p := range parts {
		lo := s * ctlShardBytes
		hi := lo + ctlShardBytes
		if hi > len(secret) {
			hi = len(secret)
		}
		leaked := p.Leaked
		for len(leaked) < hi-lo {
			leaked = append(leaked, 0) // shard without colliders: no signal
		}
		res.Leaked = append(res.Leaked, leaked...)
		res.CollisionAttempts += p.CollisionAttempts
		res.VictimCalls += p.VictimCalls
		res.Cycles += p.Cycles
	}
	finalize(&res)
	return res
}

// ctlShardBytes is the fixed shard width of the parallel leak; like the STL
// shard width it depends only on the secret length, keeping the merged
// result identical at any worker count.
const ctlShardBytes = 32

// spectreCTLShard is one attacker instance (own machine, own calibration and
// collision searches) leaking secret[lo:hi].
func spectreCTLShard(cfg kernel.Config, secret []byte, opts CTLOptions, lo, hi int) Result {
	if opts.SliderPages == 0 {
		opts.SliderPages = 2
	}
	if opts.Votes == 0 && cfg.Faults.MachineActive() {
		// A fault plan without an explicit vote count gets the robust
		// profile by default; pass Votes: 1 to keep the fragile single
		// pass on a noisy machine anyway.
		opts.Votes = 3
	}
	if opts.ProbeVotes == 0 {
		opts.ProbeVotes = 1
		if opts.Votes > 1 {
			// Robust profile: a single jitter-inflated fast reading fakes a
			// hit somewhere in the 256-guess sweep far too often; a median
			// of 5 makes that vanishingly rare (the trained C3 of 15 can
			// afford 5 destructive reads).
			opts.ProbeVotes = 5
		}
	}
	if opts.Sweeps == 0 {
		opts.Sweeps = 2
	}
	if opts.SearchVotes == 0 {
		opts.SearchVotes = 5
	}
	res := Result{Name: "spectre-ctl", Secret: secret[lo:hi]}

	l := revng.NewLab(cfg)
	victim := l.K.NewProcess("victim", opts.VictimDomain)
	victim.MapCode(ctlVictimVA, buildCTLVictim())
	victim.MapData(ctlArray1VA, mem.PageSize)
	victim.MapData(ctlArray2VA, mem.PageSize)
	victim.MapData(ctlIdxVA, mem.PageSize)
	victim.MapData(ctlSecretVA, uint64(len(secret))+mem.PageSize)
	victim.WriteBytes(ctlSecretVA, secret)

	a := &ctlAttack{l: l, victim: victim, attacker: l.P, opts: opts, res: &res}
	const tickVA = 0x7000000
	tb := asm.NewBuilder()
	tb.Nop().Halt()
	l.P.MapCode(tickVA, tb.MustAssemble(tickVA))
	a.tickVA = tickVA
	start := l.K.CPU(0).Core.Cycle()

	a.calibrateChannel()

	// Phase 1 — find SSBP colliders for ld1 and ld3 by code sliding.
	a.findColliders()
	if a.ld1Col == nil || a.ld3Col == nil {
		res.Cycles = l.K.CPU(0).Core.Cycle() - start
		finalize(&res)
		return res
	}

	// Phase 2 — pre-train C4 of ld3's entry to saturation through the
	// attacker's own collider (three hard retrains), then drain C3 so the
	// entry sits armed: the next type-G flips C3 straight to 15.
	a.ld3Col.Phi(revng.Seq(7, -1, 7, -1, 7, -1))
	drainUntilFast(a.ld3Col, 60)

	// Phase 3 — leak byte by byte.
	for i := lo; i < hi; i++ {
		res.Leaked = append(res.Leaked, a.leakByte(uint64(i)))
	}
	res.Cycles = l.K.CPU(0).Core.Cycle() - start
	finalize(&res)
	return res
}

// callVictim performs one victim invocation with the given guess; the
// attacker has planted ptr at array2[guess] and flushed idx's cache line.
func (a *ctlAttack) callVictim(guess uint64, ptr uint64) {
	a.callVictim2(guess, guess, ptr)
}

// callVictim2 invokes the victim with independent store index (idx) and
// first-load index (idx2); idx != idx2 makes the pair non-aliasing, which
// drains a trained C3 one step per call (a stall of type F).
func (a *ctlAttack) callVictim2(idx, idx2 uint64, ptr uint64) {
	v := a.victim
	v.Write64(ctlIdxVA, idx)
	v.Write64(ctlArray2VA+idx2*8, ptr)
	v.WarmLine(ctlArray2VA + idx2*8)
	v.FlushLine(ctlIdxVA)
	v.Regs = [isa.NumRegs]uint64{}
	v.Regs[isa.RSI] = idx2
	a.l.K.Run(v, ctlVictimVA, 0)
}

// findColliders trains each target load's SSBP entry through controlled
// victim executions, then slides attacker code until a probe stalls.
func (a *ctlAttack) findColliders() {
	l := a.l
	// ld1: run the victim three times with idx == idx2 so the bypassing
	// load rolls back (type G) and pushes C3 of ld1's entry to 15. The
	// planted pointer targets array1[0] (benign). The tick between calls
	// forces a context switch, flushing the victim's PSFP residue so each
	// call mispredicts again. Under a noisy timer the search may miss the
	// collision; it is retrained and repeated once.
	// retrain1 restores ld1's entry to a near-saturated state from *any*
	// prior state. The drain phase matters: an aliasing run against an entry
	// with C3>0 *drains* it by one (the PSFP residue is gone after the
	// tick), so retraining blind would weaken a live entry instead of
	// refreshing it. Three aliasing runs at C3=0 then restore C3=15 even
	// when the physical entry itself was evicted (C4 re-saturates first).
	retrain1 := func() {
		for i := 0; i < 16; i++ {
			a.callVictim2(99, 7, 0)
			a.tick()
		}
		for i := 0; i < 3; i++ {
			a.callVictim(7, 0)
			a.tick()
		}
	}
	for attempt := 0; attempt < 3 && a.ld1Col == nil; attempt++ {
		if attempt > 0 {
			// A failed confirmation drained C3; drain it fully through
			// non-aliasing victim calls, then one aliasing call re-saturates
			// it (C4 is already pegged at 3).
			for i := 0; i < 36; i++ {
				a.callVictim2(99, 7, 0)
				a.tick()
			}
		}
		for i := 0; i < 3; i++ {
			a.callVictim(7, 0)
			a.tick()
		}
		slider1 := l.NewSlider(a.attacker, a.opts.SliderPages, asm.BuildStld(asm.StldOptions{}))
		a.ld1Col = a.slideSearch(slider1, a.confirm(retrain1), a.robustOnly(retrain1))
	}
	if a.ld1Col == nil {
		return
	}
	drainUntilFast(a.ld1Col, 60)

	// ld3: plant a pointer into array2 itself at a slot the attacker
	// controls, so ld2 reads an attacker-chosen byte k and ld3 aliases the
	// store exactly when k == idx. Three such runs saturate C4 and set C3.
	k := uint64(0x5a)
	a.victim.Write64(ctlArray2VA+ctlKnownSlot*8, k) // array1[ptr] == k
	ptr := uint64(ctlArray2VA+ctlKnownSlot*8) - ctlArray1VA
	// Same drain-then-retrain discipline as retrain1 above, with one extra
	// wrinkle: every victim call plants its pointer at the invoked slot, so
	// the non-aliasing drain calls overwrite array2[ctlKnownSlot] — the very
	// value ld2 must read for callVictim(k, ptr) to alias on ld3. Re-plant k
	// before the aliasing runs or the "retrain" never retrains anything.
	retrain3 := func() {
		for i := 0; i < 16; i++ {
			a.callVictim2(k+1, ctlKnownSlot, ptr)
			drainUntilFast(a.ld1Col, 60)
		}
		a.victim.Write64(ctlArray2VA+ctlKnownSlot*8, k)
		for i := 0; i < 3; i++ {
			a.callVictim(k, ptr)
			drainUntilFast(a.ld1Col, 60)
		}
	}
	for attempt := 0; attempt < 3 && a.ld3Col == nil; attempt++ {
		if attempt > 0 {
			// Drain ld3's C3 through non-aliasing stalls before retraining.
			for i := 0; i < 36; i++ {
				a.callVictim2(k+1, ctlKnownSlot, ptr)
				drainUntilFast(a.ld1Col, 60)
			}
		}
		a.victim.Write64(ctlArray2VA+ctlKnownSlot*8, k) // drains clobber the slot
		for i := 0; i < 3; i++ {
			a.callVictim(k, ptr)
			drainUntilFast(a.ld1Col, 60) // keep ld1's entry clear
		}
		slider3 := l.NewSlider(a.attacker, a.opts.SliderPages, asm.BuildStld(asm.StldOptions{}))
		a.ld3Col = a.slideSearch(slider3, a.confirm(retrain3), a.robustOnly(retrain3))
	}
}

// confirm builds a functional collision check for the robust profile
// (Votes > 1): drain the candidate's entry through the probe, retrain it
// through the victim, and require the stall to come back. A spuriously
// trained entry (co-resident noise) stalls a probe just as convincingly,
// but only the victim's own entry is restored by a victim run — C4 is
// saturated from training, so one aliasing run flips C3 back to 15. Returns
// nil (no confirmation) outside the robust profile, keeping the clean
// search byte-identical.
func (a *ctlAttack) confirm(retrain func()) func(*revng.Stld) bool {
	if a.opts.Votes <= 1 {
		return nil
	}
	return func(probe *revng.Stld) bool {
		drainUntilFast(probe, 60)
		retrain()
		return a.slow(probe, a.opts.SearchVotes)
	}
}

// robustOnly returns fn under the robust profile (Votes > 1) and nil
// otherwise, keeping the clean code path byte-identical.
func (a *ctlAttack) robustOnly(fn func()) func() {
	if a.opts.Votes <= 1 {
		return nil
	}
	return fn
}

// slideSearch runs the code-sliding loop with vote-based confirmation so a
// single jittered fast reading does not pass as a collision. The target's
// C3 is 15 at search time, so a true collider can afford several confirming
// stall reads. A non-nil confirm additionally validates each candidate
// functionally; a rejected candidate's entry is left drained, so the search
// slides past it instead of restarting.
//
// A non-nil rearm is invoked every 256 offsets to refresh the target's
// entry. The SSBP physical store runs full during a sweep, so every
// co-resident spurious training evicts a random live entry; over the
// thousands of probe runs of one sweep, the target almost surely dies
// before the true collider's offset is reached unless it is periodically
// retrained.
func (a *ctlAttack) slideSearch(slider *revng.Slider, confirm func(*revng.Stld) bool, rearm func()) *revng.Stld {
	for at := 0; at+len(slider.Tmpl().Code) < slider.MaxOffsets(); at++ {
		if rearm != nil && at%256 == 0 && at > 0 {
			rearm()
		}
		a.res.CollisionAttempts++
		probe := slider.Place(at)
		if probe.Run(false).Cycles < a.threshold {
			continue
		}
		if !a.slow(probe, a.opts.SearchVotes) {
			continue
		}
		if confirm == nil || confirm(probe) {
			return probe
		}
	}
	return nil
}

// probeHit reads the covert channel: a slow median on the ld3 collider
// means C3 was set inside the victim's transient window.
func (a *ctlAttack) probeHit() bool {
	return a.slow(a.ld3Col, a.opts.ProbeVotes)
}

// SpectreCTLBrowser runs the Section V-C2 browser variant: the same
// Spectre-CTL machinery, but every timing measurement goes through a
// constructed coarse browser timer (~10 ns quantization with jitter).
// Accuracy and bandwidth degrade accordingly — the paper measured 81.1%
// accuracy at ~170 B/s against 99.97% for the native attack.
func SpectreCTLBrowser(cfg kernel.Config, secret []byte) Result {
	cfg.TimerQuantum = 40 // ~10 ns at 4 GHz
	cfg.TimerJitter = 18
	res := SpectreCTL(cfg, secret, CTLOptions{ProbeVotes: 5, Sweeps: 2, SearchVotes: 10})
	res.Name = "spectre-ctl (browser timer)"
	return res
}

// leakByte recovers one secret byte, majority-voting over Votes independent
// recoveries when the options ask for it (a single flipped SSBP entry can
// fake or mask one probe hit; it cannot fake a majority). Only votes whose
// sweep actually found a hit count: a healthy channel hits at some guess for
// every byte value, so a hitless sweep means the channel died (a spurious
// train de-saturated ld3's C4 or stuck ld1 into predicted aliasing), and
// each robust vote re-arms the channel before sweeping.
func (a *ctlAttack) leakByte(i uint64) byte {
	if a.opts.Votes <= 1 {
		b, _ := a.leakOnce(i)
		return b
	}
	var votes []byte
	for v := 0; v < a.opts.Votes; v++ {
		a.rearm()
		if b, ok := a.leakOnce(i); ok {
			votes = append(votes, b)
		}
	}
	if len(votes) == 0 {
		return 0
	}
	return majorityByte(votes)
}

// rearm restores the covert channel through the attacker's own colliders:
// re-saturate ld3's C4 (three hard retrains) and leave both entries drained,
// exactly the phase 2 state. Co-resident noise can silently overwrite either
// entry's counters; the attacker pays ~40 runs to recover instead of losing
// every remaining byte.
func (a *ctlAttack) rearm() {
	a.ld3Col.Phi(revng.Seq(7, -1, 7, -1, 7, -1))
	drainUntilFast(a.ld3Col, 60)
	drainUntilFast(a.ld1Col, 60)
}

// leakOnce is one full recovery of secret byte i: for each guessed value the
// attacker plants the secret's address, triggers the victim, and asks the
// covert channel whether ld3 aliased the store (secret == guess). ok is
// false when no guess hit in any sweep.
//
// The robust profile re-arms the channel periodically inside the sweep and
// confirms every hit. SSBP's physical store uses random replacement, so each
// co-resident spurious training evicts a random live entry once the store is
// full; losing ld3's entry mid-sweep de-saturates C4 (the recreating type-G
// restarts it at 1) and the true guess then cannot flip C3 — a silent death
// a full sweep hits far too often to ignore. A fault-flipped C3, conversely,
// fakes a hit at whatever guess the sweep happens to be on; only the true
// guess can flip a drained entry back, so one drain-and-replay tells them
// apart.
func (a *ctlAttack) leakOnce(i uint64) (byte, bool) {
	ptr := uint64(ctlSecretVA) + i - ctlArray1VA
	robust := a.opts.Votes > 1
	for sweep := 0; sweep < a.opts.Sweeps; sweep++ {
		if robust && sweep > 0 {
			a.rearm()
		}
		for guess := 0; guess < 256; guess++ {
			if robust && guess > 0 && guess%64 == 0 {
				a.rearm() // bound the blast radius of a mid-sweep eviction
			}
			// ld1's entry must predict non-aliasing for the window to open.
			drainUntilFast(a.ld1Col, 60)
			a.callVictim(uint64(guess), ptr)
			if !a.probeHit() {
				continue
			}
			drainUntilFast(a.ld3Col, 60) // reset the channel
			if robust && !a.confirmHit(uint64(guess), ptr) {
				continue
			}
			return byte(guess), true
		}
	}
	return 0, false
}

// confirmHit replays the victim at a guess that just hit, with the channel
// drained: the true guess flips C3 straight back (C4 is saturated), while a
// hit faked by predictor pollution stays fast.
func (a *ctlAttack) confirmHit(guess, ptr uint64) bool {
	drainUntilFast(a.ld1Col, 60)
	a.callVictim(guess, ptr)
	hit := a.probeHit()
	drainUntilFast(a.ld3Col, 60)
	return hit
}
