package attack

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"zenspec/internal/harness"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/ml"
	"zenspec/internal/revng"
	"zenspec/internal/workload"
)

// FingerprintOptions configures the Fig 11 experiment.
type FingerprintOptions struct {
	// ScanRange is how many SSBP hash values the attacker traverses per
	// probe round. The paper scans all 4096; tests shrink the range (victim
	// sites are placed inside it, which only relabels hash values).
	ScanRange int
	// Rounds is the number of victim-quantum / scan cycles aggregated into
	// one fingerprint vector.
	Rounds int
	// TrainSamples and TestSamples are per model.
	TrainSamples, TestSamples int
	Seed                      int64
}

func (o FingerprintOptions) withDefaults() FingerprintOptions {
	if o.ScanRange == 0 {
		o.ScanRange = 4096
	}
	if o.Rounds == 0 {
		o.Rounds = 6
	}
	if o.TrainSamples == 0 {
		o.TrainSamples = 10
	}
	if o.TestSamples == 0 {
		o.TestSamples = 5
	}
	return o
}

// FingerprintVectorLen is the feature dimension: relative frequencies of
// probed C3 values 1..35, as in the paper's 35-element vectors.
const FingerprintVectorLen = 35

// FingerprintResult is the Fig 11 reproduction.
type FingerprintResult struct {
	Models      []string
	Accuracy    float64
	MeanVectors map[string][]float64
}

func (r FingerprintResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 11 — SSBP fingerprinting of CNN models: SVM accuracy %.1f%%\n", 100*r.Accuracy)
	fmt.Fprintf(&sb, "%-11s", "model")
	for v := 1; v <= 8; v++ {
		fmt.Fprintf(&sb, " v%d=", v)
	}
	sb.WriteString(" (relative frequency of low C3 values)\n")
	var names []string
	for n := range r.MeanVectors {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "%-11s", n)
		for v := 1; v <= 8; v++ {
			fmt.Fprintf(&sb, " %.2f", r.MeanVectors[n][v-1])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// fingerprintSample runs one victim model for `rounds` scheduling quanta on
// a fresh machine, scanning the SSBP entry space after each quantum, and
// returns the aggregated feature vector. Failures surface as errors (not
// panics) so the harness's panic isolation is reserved for genuine bugs.
func fingerprintSample(cfg kernel.Config, model workload.CNNModel, opts FingerprintOptions, seed int64) ([]float64, error) {
	cfg.Seed = seed
	l := revng.NewLab(cfg)
	r := rand.New(rand.NewSource(seed * 2654435761))

	// Victim: the model compiled as a real program — one loop per layer on
	// hash-controlled pages (see fingerprint_victim.go) — run under the
	// scheduler, whose preemptions flush PSFP so the SSBP signature can
	// accumulate.
	victim := l.K.NewProcess("cnn-"+model.Name, kernel.DomainUser)
	victim.MapData(fpVictimData, 4*mem.PageSize)
	victim.WarmLine(fpVictimData)
	victim.WarmLine(fpVictimData + 0x800)
	frameSeq := uint64(1 << 22)
	entry, patBases, err := buildVictimProgram(l, victim, model, opts.ScanRange, r.Intn, &frameSeq)
	if err != nil {
		return nil, fmt.Errorf("attack: building %s victim: %w", model.Name, err)
	}

	// Attacker: one prober per scanned hash value (the paper's attacker
	// walks these with code sliding; direct placement is equivalent).
	probes := make([]*revng.Stld, opts.ScanRange)
	for h := range probes {
		probes[h] = l.PlaceStldHash(uint16(4000+h%96), uint16(h))
	}

	hist := make([]float64, FingerprintVectorLen)
	for round := 0; round < opts.Rounds; round++ {
		// One victim pass with the round's aliasing pattern.
		writePatterns(victim, model, patBases, model.AliasingSchedule(r))
		if err := runVictimQuantum(l, victim, entry, 1500); err != nil {
			return nil, fmt.Errorf("attack: %s quantum %d: %w", model.Name, round, err)
		}
		// Attacker scan: read (destructively) the C3 value of every entry.
		// Only genuine stall-band readings count — a first execution of a
		// cold probe reads slightly slow (front-end misses) without meaning
		// C3 > 0.
		for _, probe := range probes {
			stalls := 0
			fast := 0
			for i := 0; i < 40 && fast < 2; i++ {
				switch probe.Run(false).Class {
				case revng.ClassFast:
					fast++
				case revng.ClassStall, revng.ClassRollback:
					fast = 0
					stalls++
				default: // forward band: front-end noise, ignore
					fast = 0
				}
			}
			if stalls >= 1 && stalls <= FingerprintVectorLen {
				hist[stalls-1]++
			}
		}
	}
	// Per-round rates: how many entries per scan read each C3 value. Unlike
	// a normalized distribution this also keeps the model's activity level
	// (how many sites stay resident) as signal.
	for i := range hist {
		hist[i] /= float64(opts.Rounds)
	}
	return hist, nil
}

// FingerprintSample is one (model, sample) grid cell's outcome: the feature
// vector or the cell's error, rendered as a string so the sample survives a
// JSON round trip through the service journal unchanged.
type FingerprintSample struct {
	Vec []float64 `json:"vec,omitempty"`
	Err string    `json:"err,omitempty"`
}

// FingerprintCells returns the size of the experiment's (model, sample)
// grid: the trial count its range decomposition splits over.
func FingerprintCells(opts FingerprintOptions) int {
	opts = opts.withDefaults()
	return len(workload.CNNModels()) * (opts.TrainSamples + opts.TestSamples)
}

// FingerprintRange computes grid cells [lo, hi). Every cell is a fresh
// machine with a seed derived only from its indices, so a cell's sample is
// independent of which other cells share its range — FingerprintAssemble
// over any partition of the grid reproduces the unsharded experiment
// exactly. The range runs flattened on the harness worker pool.
func FingerprintRange(cfg kernel.Config, opts FingerprintOptions, lo, hi int) []FingerprintSample {
	opts = opts.withDefaults()
	models := workload.CNNModels()
	n := opts.TrainSamples + opts.TestSamples
	return harness.Trials(harness.Workers(cfg.Parallelism), hi-lo, func(i int) FingerprintSample {
		c := lo + i
		mi, s := c/n, c%n
		seed := opts.Seed + int64(mi*1000+s)*7 + 11
		vec, err := fingerprintSample(cfg, models[mi], opts, seed)
		if err != nil {
			return FingerprintSample{Err: err.Error()}
		}
		return FingerprintSample{Vec: vec}
	})
}

// FingerprintAssemble finishes the experiment from the full sample grid in
// cell order: per-model mean vectors, the train/test split, and the SVM
// (which stays serial, seeded from opts). The first failed cell in grid
// order surfaces as the error, exactly as the monolithic run reported it.
func FingerprintAssemble(opts FingerprintOptions, samples []FingerprintSample) (FingerprintResult, error) {
	opts = opts.withDefaults()
	models := workload.CNNModels()
	var res FingerprintResult
	res.MeanVectors = make(map[string][]float64)

	n := opts.TrainSamples + opts.TestSamples
	if len(samples) != len(models)*n {
		return res, fmt.Errorf("attack: fingerprint grid has %d cells, want %d", len(samples), len(models)*n)
	}
	for _, s := range samples {
		if s.Err != "" {
			return res, errors.New(s.Err)
		}
	}

	var trainX, testX [][]float64
	var trainY, testY []int
	for mi, model := range models {
		res.Models = append(res.Models, model.Name)
		mean := make([]float64, FingerprintVectorLen)
		for s := 0; s < n; s++ {
			vec := samples[mi*n+s].Vec
			for i := range mean {
				mean[i] += vec[i] / float64(n)
			}
			if s < opts.TrainSamples {
				trainX = append(trainX, vec)
				trainY = append(trainY, mi)
			} else {
				testX = append(testX, vec)
				testY = append(testY, mi)
			}
		}
		res.MeanVectors[model.Name] = mean
	}
	svm, err := ml.Train(trainX, trainY, len(models), ml.Options{Seed: opts.Seed})
	if err != nil {
		return res, err
	}
	res.Accuracy = svm.Accuracy(testX, testY)
	return res, nil
}

// Fingerprint runs the full Fig 11 experiment: the whole sample grid in one
// range, assembled. Sharded runs split the same grid over FingerprintRange
// calls instead; both paths share the per-cell and assembly code.
func Fingerprint(cfg kernel.Config, opts FingerprintOptions) (FingerprintResult, error) {
	opts = opts.withDefaults()
	return FingerprintAssemble(opts, FingerprintRange(cfg, opts, 0, FingerprintCells(opts)))
}
