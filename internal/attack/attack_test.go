package attack

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"zenspec/internal/kernel"
)

func randSecret(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	s := make([]byte, n)
	r.Read(s)
	return s
}

// TestSpectreSTL reproduces Section V-B: the out-of-place Spectre-STL attack
// leaks victim bytes with near-perfect accuracy after a single code-sliding
// collision search (the paper: 99.95% over 10,000 bytes).
func TestSpectreSTL(t *testing.T) {
	secret := randSecret(9, 24)
	res := SpectreSTL(kernel.Config{Seed: 5}, secret, STLOptions{})
	t.Logf("%s", res)
	if res.Accuracy < 0.95 {
		t.Fatalf("accuracy %.3f, want >= 0.95 (leaked %x want %x)", res.Accuracy, res.Leaked, res.Secret)
	}
	if res.BytesPerSecond <= 0 {
		t.Error("no bandwidth recorded")
	}
	if res.CollisionAttempts == 0 {
		t.Error("no sliding attempts recorded")
	}
}

// TestSpectreSTLZeroBytes: zero-valued secret bytes are recovered through
// the no-hit path.
func TestSpectreSTLZeroBytes(t *testing.T) {
	secret := []byte{0, 0x41, 0, 0x42}
	res := SpectreSTL(kernel.Config{Seed: 7}, secret, STLOptions{})
	if res.Accuracy != 1 {
		t.Fatalf("accuracy %.3f (leaked %x)", res.Accuracy, res.Leaked)
	}
}

// TestSpectreSTLInstrStepSlider: sliding at instruction granularity still
// finds the collision (same-distance pairs collide at aligned offsets).
func TestSpectreSTLInstrStep(t *testing.T) {
	secret := randSecret(11, 8)
	res := SpectreSTL(kernel.Config{Seed: 3}, secret, STLOptions{InstrStep: true})
	if res.Accuracy < 0.9 {
		t.Fatalf("accuracy %.3f with instruction-step sliding", res.Accuracy)
	}
}

// TestSpectreCTL reproduces Section V-C1: the cross-process attack through
// the SSBP covert channel (the paper: 99.97%).
func TestSpectreCTL(t *testing.T) {
	secret := randSecret(3, 16)
	res := SpectreCTL(kernel.Config{Seed: 5}, secret, CTLOptions{})
	t.Logf("%s", res)
	if res.Accuracy < 0.95 {
		t.Fatalf("accuracy %.3f (leaked %x want %x)", res.Accuracy, res.Leaked, res.Secret)
	}
}

// TestSpectreCTLKernelVictim: the same attack works against a kernel-domain
// victim — SSBP does not distinguish security domains (Vulnerability 1).
func TestSpectreCTLKernelVictim(t *testing.T) {
	secret := randSecret(4, 8)
	res := SpectreCTL(kernel.Config{Seed: 6}, secret, CTLOptions{VictimDomain: kernel.DomainKernel})
	if res.Accuracy < 0.95 {
		t.Fatalf("accuracy %.3f against kernel victim", res.Accuracy)
	}
}

// TestSpectreCTLBrowser reproduces Section V-C2: with the coarse jittered
// browser timer the attack still works but degrades (the paper: 81.1% at
// roughly half the native bandwidth).
func TestSpectreCTLBrowser(t *testing.T) {
	secret := randSecret(3, 12)
	browser := SpectreCTLBrowser(kernel.Config{Seed: 5}, secret)
	native := SpectreCTL(kernel.Config{Seed: 5}, secret, CTLOptions{})
	t.Logf("browser: %s", browser)
	t.Logf("native:  %s", native)
	if browser.Accuracy < 0.5 {
		t.Fatalf("browser accuracy %.3f, want a working-but-degraded channel", browser.Accuracy)
	}
	if browser.Accuracy > native.Accuracy {
		t.Errorf("browser accuracy %.3f should not exceed native %.3f", browser.Accuracy, native.Accuracy)
	}
	if browser.BytesPerSecond >= native.BytesPerSecond {
		t.Errorf("browser bandwidth %.0f should be below native %.0f", browser.BytesPerSecond, native.BytesPerSecond)
	}
}

// TestSSBDStopsAttacks is Section VI-A: with SSBD the loads serialize and
// neither attack leaks.
func TestSSBDStopsAttacks(t *testing.T) {
	secret := randSecret(13, 8)
	stl := SpectreSTL(kernel.Config{Seed: 5, SSBD: true}, secret, STLOptions{})
	if stl.Accuracy > 0.2 {
		t.Errorf("Spectre-STL leaked %.0f%% under SSBD", 100*stl.Accuracy)
	}
	ctl := SpectreCTL(kernel.Config{Seed: 5, SSBD: true}, secret, CTLOptions{Sweeps: 1})
	if ctl.Accuracy > 0.2 {
		t.Errorf("Spectre-CTL leaked %.0f%% under SSBD", 100*ctl.Accuracy)
	}
}

// TestPSFDDoesNotStopSTL is the paper's negative result: PSFD set, attack
// still works.
func TestPSFDDoesNotStopSTL(t *testing.T) {
	secret := randSecret(17, 8)
	res := SpectreSTL(kernel.Config{Seed: 5, PSFD: true}, secret, STLOptions{})
	if res.Accuracy < 0.9 {
		t.Fatalf("accuracy %.3f with PSFD; the paper found PSFD ineffective", res.Accuracy)
	}
}

// TestFlushSSBPMitigationStopsCTL: the Section VI-B flush-on-switch
// mitigation kills the cross-process channel.
func TestFlushSSBPMitigationStopsCTL(t *testing.T) {
	secret := randSecret(19, 6)
	res := SpectreCTL(kernel.Config{Seed: 5, FlushSSBPOnSwitch: true}, secret, CTLOptions{Sweeps: 1})
	if res.Accuracy > 0.2 {
		t.Errorf("Spectre-CTL leaked %.0f%% despite SSBP flush on switch", 100*res.Accuracy)
	}
}

// TestSaltMitigationAblation measures the Section VI-B randomized-selection
// proposal in both strengths. The static per-domain salt does NOT stop the
// attack — the sliding search finds colliding offsets empirically, salt or
// not (an ablation finding of this reproduction). Rotating the salt on
// every context switch orphans trained entries and kills the channel.
func TestSaltMitigationAblation(t *testing.T) {
	secret := randSecret(23, 6)
	static := SpectreCTL(kernel.Config{Seed: 5, SaltPerDomain: true}, secret,
		CTLOptions{Sweeps: 1, VictimDomain: kernel.DomainKernel})
	if static.Accuracy < 0.9 {
		t.Logf("note: static salt degraded the attack to %.0f%%", 100*static.Accuracy)
	}
	rotating := SpectreCTL(kernel.Config{Seed: 5, RotateSalt: true}, secret,
		CTLOptions{Sweeps: 1, VictimDomain: kernel.DomainKernel})
	if rotating.Accuracy > 0.2 {
		t.Errorf("Spectre-CTL leaked %.0f%% despite salt rotation", 100*rotating.Accuracy)
	}
	// Control: without mitigation the cross-domain attack succeeds.
	control := SpectreCTL(kernel.Config{Seed: 5}, secret,
		CTLOptions{Sweeps: 1, VictimDomain: kernel.DomainKernel})
	if control.Accuracy < 0.9 {
		t.Errorf("control cross-domain attack only leaked %.0f%%", 100*control.Accuracy)
	}
}

// TestSecureTimerDegradesSTL: quantizing RDPRU far beyond cache-latency
// granularity (the strong secure-timer mitigation) breaks Flush+Reload.
func TestSecureTimerDegradesSTL(t *testing.T) {
	secret := randSecret(29, 8)
	res := SpectreSTL(kernel.Config{Seed: 5, TimerQuantum: 4096}, secret, STLOptions{})
	if res.Accuracy > 0.3 {
		t.Errorf("Spectre-STL leaked %.0f%% with a 4096-cycle timer", 100*res.Accuracy)
	}
}

// TestFingerprint reproduces Fig 11: the SVM separates the six CNN models
// from SSBP fingerprints (the paper: >95.5%).
func TestFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("fingerprinting sweep is slow")
	}
	res, err := Fingerprint(kernel.Config{}, FingerprintOptions{
		ScanRange: 128, Rounds: 14, TrainSamples: 9, TestSamples: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.Accuracy < 0.9 {
		t.Fatalf("fingerprint accuracy %.3f, want >= 0.9", res.Accuracy)
	}
	// Mean vectors must be distinguishable: at least two models differ
	// grossly in their dominant bin.
	if len(res.MeanVectors) != 6 {
		t.Fatalf("%d models fingerprinted", len(res.MeanVectors))
	}
}

// TestResultString covers the report formatting.
func TestResultString(t *testing.T) {
	r := Result{Name: "x", Secret: []byte{1, 2}, Leaked: []byte{1, 3}, Cycles: 4e9}
	finalize(&r)
	if r.Correct != 1 || r.Accuracy != 0.5 {
		t.Errorf("finalize: %+v", r)
	}
	if r.BytesPerSecond <= 0 || r.String() == "" {
		t.Error("report formatting")
	}
	if CyclesToSeconds(4e9) != 1 {
		t.Error("CyclesToSeconds at 4 GHz")
	}
}

// TestSpectreSTLInPlaceBaseline: the classic in-place variant works but
// costs a batch of victim executions per byte, where the out-of-place attack
// needs one — the paper's Section V-B comparison.
func TestSpectreSTLInPlaceBaseline(t *testing.T) {
	secret := randSecret(31, 12)
	inPlace := SpectreSTLInPlace(kernel.Config{Seed: 5}, secret)
	t.Logf("in-place:     %s", inPlace)
	if inPlace.Accuracy < 0.9 {
		t.Fatalf("in-place accuracy %.3f (leaked %x)", inPlace.Accuracy, inPlace.Leaked)
	}
	outOfPlace := SpectreSTL(kernel.Config{Seed: 5}, secret, STLOptions{})
	t.Logf("out-of-place: %s", outOfPlace)
	inCalls := float64(inPlace.VictimCalls) / float64(len(secret))
	outCalls := float64(outOfPlace.VictimCalls) / float64(len(secret))
	if inCalls < 4*outCalls {
		t.Errorf("in-place should need far more victim calls per byte: %.1f vs %.1f", inCalls, outCalls)
	}
}

// TestFingerprintRangeIdentity: assembling the sample grid from range
// shards — any partition, computed in any order — reproduces the monolithic
// Fingerprint result exactly, including the float64 vectors' JSON round
// trip through the service journal. This is fig11's half of the service's
// trial-range sharding contract; the grid is shrunk so the test stays fast.
func TestFingerprintRangeIdentity(t *testing.T) {
	opts := FingerprintOptions{
		ScanRange: 24, Rounds: 2, TrainSamples: 1, TestSamples: 1, Seed: 5,
	}
	cfg := kernel.Config{Parallelism: 1}
	want, wantErr := Fingerprint(cfg, opts)
	n := FingerprintCells(opts)
	if n != 12 {
		t.Fatalf("FingerprintCells = %d, want 12 (6 models x 2 samples)", n)
	}
	for _, k := range []int{2, 3, 4} {
		var samples []FingerprintSample
		for i := 0; i < k; i++ {
			part := FingerprintRange(cfg, opts, i*n/k, (i+1)*n/k)
			// The journal round trip: fragments travel as JSON.
			raw, err := json.Marshal(part)
			if err != nil {
				t.Fatal(err)
			}
			part = nil
			if err := json.Unmarshal(raw, &part); err != nil {
				t.Fatal(err)
			}
			samples = append(samples, part...)
		}
		got, gotErr := FingerprintAssemble(opts, samples)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("split %d: err %v vs monolithic %v", k, gotErr, wantErr)
		}
		a, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("split %d diverged:\n%s\nvs\n%s", k, a, b)
		}
	}
}
