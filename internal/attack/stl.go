package attack

import (
	"sync"

	"zenspec/internal/asm"
	"zenspec/internal/harness"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/revng"
	"zenspec/internal/sidechannel"
)

// Address layout of the Spectre-STL victim (the attack is intra-process:
// out-of-place extends the attack surface within one address space, since
// PSFP is flushed on every context switch).
const (
	stlVictimVA = 0x1000000
	stlArray1VA = 0x2000000
	stlArray2VA = 0x3000000
	stlIdxVA    = 0x4000000
	stlSecretVA = 0x5000000
	stlFRCodeVA = 0x6000000
	// stlStoreIdx is the store's slot during triggers: outside the probed
	// 0..255 range so the store itself does not pollute the channel.
	stlStoreIdx = 256
)

// buildSTLVictim assembles the Listing 2 gadget:
//
//	array2[idx * 4096] = x;                       // store, address delayed
//	temp = array2[array1[array2[0]] * 4096];      // ld1, ld2, ld3
//
// idx is loaded from memory (the attacker flushes its line to delay the
// store's address generation) and x arrives in RDI.
//
// Assembled once (see buildCTLVictim for why host-side memoization is safe).
func buildSTLVictim() []byte {
	stlVictimOnce.Do(func() { stlVictimCode = buildSTLVictimCode() })
	return stlVictimCode
}

var (
	stlVictimOnce sync.Once
	stlVictimCode []byte
)

func buildSTLVictimCode() []byte {
	b := asm.NewBuilder()
	b.Movi(isa.R15, stlIdxVA)
	b.Load(isa.RCX, isa.R15, 0) // idx — slow when flushed
	b.Movi(isa.R12, 1)
	for i := 0; i < 10; i++ {
		b.Imul(isa.RCX, isa.RCX, isa.R12)
	}
	b.Shli(isa.RCX, isa.RCX, 12)
	b.Movi(isa.R13, stlArray2VA)
	b.Add(isa.RCX, isa.RCX, isa.R13)
	b.Store(isa.RCX, 0, isa.RDI) // array2[idx<<12] = x
	b.Load(isa.RDX, isa.R13, 0)  // ld1 = array2[0] (8 bytes after the store)
	b.Movi(isa.R14, stlArray1VA)
	b.Add(isa.RBX, isa.RDX, isa.R14)
	b.Load(isa.R8, isa.RBX, 0) // ld2 = array1[ld1]
	b.Andi(isa.R8, isa.R8, 0xff)
	b.Shli(isa.R9, isa.R8, 12)
	b.Add(isa.R9, isa.R9, isa.R13)
	b.Load(isa.R10, isa.R9, 0) // ld3: encode into a cache line
	b.Halt()
	return b.MustAssemble(stlVictimVA)
}

// STLOptions configures the Spectre-STL attack run.
type STLOptions struct {
	// SliderPages is the code-sliding window (the paper uses 16 pages for a
	// >90% collision rate).
	SliderPages int
	// MaxInstrStep slides at instruction granularity when true (cheaper)
	// instead of byte granularity.
	InstrStep bool
	// Votes is how many independent recoveries each byte gets; the majority
	// wins (ties break toward the smaller value). 1 keeps the
	// single-reading behavior; raise it under fault injection, where an
	// evicted probe line can fake or mask one Flush+Reload hit. 0 picks
	// automatically: 1 on a quiet machine, 3 when the config's fault plan
	// injects machine noise.
	Votes int
	// Retries is how many extra attempts a reading with no probe hit gets
	// before counting as zero; each retry retrains the predictor harder (one
	// extra aliasing run per attempt). 0 means the default of 1 retry.
	Retries int
}

// stlShardBytes is the fixed shard width of the parallel leak: shard count
// is a pure function of the secret length (never of the worker count), so
// the merged result is identical at any parallelism.
const stlShardBytes = 32

// SpectreSTL runs the out-of-place Spectre-STL attack of Section V-B:
// a PSFP collision is found by code sliding, the predictor is trained
// through the attacker's own store-load pair, and each victim execution
// predictively forwards the attacker-chosen x to the victim's load,
// steering a transient secret fetch that is recovered with Flush+Reload.
//
// Long secrets are split into fixed-size shards; each shard is a full
// attacker instance (own machine, own collision search — the setup cost the
// paper reports per attacker) leaking only its byte range. Setup costs and
// cycles are summed over shards.
func SpectreSTL(cfg kernel.Config, secret []byte, opts STLOptions) Result {
	shards := (len(secret) + stlShardBytes - 1) / stlShardBytes
	if shards <= 1 {
		return spectreSTLShard(cfg, secret, opts, 0, len(secret))
	}
	parts := harness.Trials(harness.Workers(cfg.Parallelism), shards, func(s int) Result {
		lo := s * stlShardBytes
		hi := lo + stlShardBytes
		if hi > len(secret) {
			hi = len(secret)
		}
		return spectreSTLShard(cfg, secret, opts, lo, hi)
	})
	res := Result{Name: "out-of-place spectre-stl", Secret: secret}
	for s, p := range parts {
		lo := s * stlShardBytes
		hi := lo + stlShardBytes
		if hi > len(secret) {
			hi = len(secret)
		}
		leaked := p.Leaked
		for len(leaked) < hi-lo {
			leaked = append(leaked, 0) // shard without a collider: no signal
		}
		res.Leaked = append(res.Leaked, leaked...)
		res.CollisionAttempts += p.CollisionAttempts
		res.VictimCalls += p.VictimCalls
		res.Cycles += p.Cycles
	}
	finalize(&res)
	return res
}

// spectreSTLShard is one attacker instance leaking secret[lo:hi]. With
// lo=0, hi=len(secret) it is the whole attack.
func spectreSTLShard(cfg kernel.Config, secret []byte, opts STLOptions, lo, hi int) Result {
	if opts.SliderPages == 0 {
		opts.SliderPages = 16
	}
	if opts.Votes == 0 && cfg.Faults.MachineActive() {
		// A fault plan without an explicit vote count gets the robust
		// profile by default; pass Votes: 1 to keep the fragile single
		// reading on a noisy machine anyway.
		opts.Votes = 3
	}
	if opts.Retries == 0 {
		opts.Retries = 1
		if opts.Votes > 1 {
			opts.Retries = 3
		}
	}
	res := Result{Name: "out-of-place spectre-stl", Secret: secret[lo:hi]}

	l := revng.NewLab(cfg)
	p := l.P
	victim := buildSTLVictim()
	p.MapCode(stlVictimVA, victim)
	p.MapData(stlArray1VA, mem.PageSize)
	p.MapData(stlArray2VA, (stlStoreIdx+2)*mem.PageSize)
	p.MapData(stlIdxVA, mem.PageSize)
	p.MapData(stlSecretVA, uint64(len(secret))+mem.PageSize)
	p.WriteBytes(stlSecretVA, secret)

	fr := sidechannel.New(l.K, p, 0, stlArray2VA, 256, stlFRCodeVA)

	startCycles := l.K.CPU(0).Core.Cycle()

	runVictim := func(x uint64, idx uint64, flushIdx bool) {
		res.VictimCalls++
		p.Write64(stlIdxVA, idx)
		p.WarmLine(stlArray2VA) // ld1's line
		if flushIdx {
			p.FlushLine(stlIdxVA)
		} else {
			p.WarmLine(stlIdxVA)
		}
		p.Regs = [isa.NumRegs]uint64{}
		p.Regs[isa.RDI] = x
		l.K.Run(p, stlVictimVA, 0)
	}

	// leakVia is one transient read through the collider: retrain PSF
	// through the attacker's own pair (drain to a known state, one hard
	// retrain (G), then aliasing runs until predictive forwarding is
	// enabled — C1 below 12; extra runs retrain harder), trigger the
	// victim with the chosen forwarded value x, and recover the encoded
	// byte with Flush+Reload.
	exclude := map[int]bool{0: true} // ld1 keeps array2[0] hot
	var collider *revng.Stld
	leakVia := func(x uint64, extraTrain int) (int, bool) {
		drainUntilFast(collider, 60)
		for j := 0; j < 7+extraTrain; j++ {
			collider.Run(true)
		}
		fr.FlushAll()
		p.Write64(stlArray2VA, 0)
		runVictim(x, stlStoreIdx, true)
		return fr.Recover(exclude)
	}

	// Phase 1 — collision finding: one aliasing victim run trains the
	// victim pair to predict aliasing (C0=4); sliding probes stall exactly
	// when both hashed IPAs match.
	//
	// The robust profile (Votes > 1) hardens the search against co-resident
	// noise: the victim pair is retrained periodically (an evicted PSFP
	// entry silently hides the true collision), every stall must pass a
	// canary self-test (a spuriously trained entry stalls a probe at the
	// wrong offset, and a false collider poisons the whole leak phase), and
	// an exhausted window is rescanned from the top.
	p.Write64(stlArray2VA, 0)
	runVictim(0, 0, true) // idx=0: the store aliases ld1 -> type G trains C0
	step := 1
	if opts.InstrStep {
		step = isa.InstBytes
	}
	slider := l.NewSlider(p, opts.SliderPages, asm.BuildStld(asm.StldOptions{}))
	robust := opts.Votes > 1
	const canaryOff, canaryVal = 64, 0xa5
	passes := 1
	if robust {
		p.WriteBytes(stlArray1VA+canaryOff, []byte{canaryVal})
		passes = 4
	}
	selfTest := func() bool {
		// Leak a byte the attacker planted itself; only the true collider
		// steers the victim's transient fetch to it. The context switch
		// first flushes PSFP — including the victim's self-trained entry,
		// which the periodic refresh keeps alive and which would otherwise
		// carry the canary leak for a false collider — so the only entry
		// left is the one leakVia retrains through the candidate itself.
		l.Tick()
		for attempt := 0; attempt < 2; attempt++ {
			if v, ok := leakVia(canaryOff, attempt); ok && v == canaryVal {
				return true
			}
		}
		return false
	}
	for pass := 0; pass < passes && collider == nil; pass++ {
		if pass > 0 {
			runVictim(0, 0, true)
		}
		for at := 0; at+len(slider.Tmpl().Code) < slider.MaxOffsets(); at += step {
			res.CollisionAttempts++
			if robust && res.CollisionAttempts%64 == 0 {
				runVictim(0, 0, true) // refresh against entry eviction
			}
			probe := slider.Place(at)
			if probe.Run(false).Class != revng.ClassStall {
				continue
			}
			collider = probe
			if !robust || selfTest() {
				break
			}
			collider = nil
			runVictim(0, 0, true) // the failed self-test drained the training
		}
	}
	if collider == nil {
		res.Cycles = l.K.CPU(0).Core.Cycle() - startCycles
		finalize(&res)
		return res
	}

	// Phase 2 — leak, one byte per victim execution. A reading with no probe
	// hit is retried: the first transient walk of a cold page can fall out
	// of the window (TLB misses), and the retry finds it warm — the same
	// retry loop real PoCs carry. Retries retrain one aliasing run harder,
	// recovering entries a fault plan drained between runs.
	readByte := func(i int) (byte, bool) {
		v, ok := 0, false
		for attempt := 0; attempt <= opts.Retries && !ok; attempt++ {
			v, ok = leakVia(stlSecretVA+uint64(i)-stlArray1VA, attempt)
		}
		if !ok {
			v = 0 // no hit outside the polluted slot: the byte was zero
		}
		return byte(v), ok
	}
	for i := lo; i < hi; i++ {
		if opts.Votes <= 1 {
			b, _ := readByte(i)
			res.Leaked = append(res.Leaked, b)
			continue
		}
		// Majority over the votes that actually saw a hit: a spuriously
		// trained SSBP entry on a victim load can suppress the transient
		// window for a dozen consecutive runs (it drains one step per
		// victim execution), so silent votes are the common failure and
		// must not outvote a real reading. A byte with no hit in any vote
		// reads as zero — slot 0 is architecturally excluded, so genuine
		// zero bytes only ever arrive through the no-hit path.
		var votes []byte
		for v := 0; v < opts.Votes; v++ {
			if b, ok := readByte(i); ok {
				votes = append(votes, b)
			}
		}
		if len(votes) == 0 {
			res.Leaked = append(res.Leaked, 0)
			continue
		}
		res.Leaked = append(res.Leaked, majorityByte(votes))
	}
	res.Cycles = l.K.CPU(0).Core.Cycle() - startCycles
	finalize(&res)
	return res
}
