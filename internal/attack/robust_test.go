package attack

import (
	"testing"

	"zenspec/internal/fault"
	"zenspec/internal/kernel"
)

// TestSpectreSTLUnderFaults: with the default fault plan active (timer
// jitter, predictor flips, cache evictions between runs), majority voting
// plus harder retries still recover the full secret. This is the documented
// noise ceiling of the STL attack.
func TestSpectreSTLUnderFaults(t *testing.T) {
	secret := randSecret(21, 16)
	cfg := kernel.Config{Seed: 5, Faults: fault.Default()}
	res := SpectreSTL(cfg, secret, STLOptions{Votes: 3, Retries: 3})
	t.Logf("%s", res)
	if res.Accuracy != 1 {
		t.Fatalf("accuracy %.3f under fault.Default(), want 1.0 (leaked %x want %x)",
			res.Accuracy, res.Leaked, res.Secret)
	}
}

// TestSpectreCTLUnderFaults: the SSBP covert channel survives the default
// fault plan when each byte is majority-voted.
func TestSpectreCTLUnderFaults(t *testing.T) {
	secret := randSecret(23, 8)
	cfg := kernel.Config{Seed: 5, Faults: fault.Default()}
	res := SpectreCTL(cfg, secret, CTLOptions{Votes: 3, Sweeps: 3})
	t.Logf("%s", res)
	if res.Accuracy != 1 {
		t.Fatalf("accuracy %.3f under fault.Default(), want 1.0 (leaked %x want %x)",
			res.Accuracy, res.Leaked, res.Secret)
	}
}

// TestSTLVoteDefaultsMatchSinglePass: Votes<=1 must reproduce the pre-vote
// code path bit for bit on a clean machine — the clean suite's results may
// not shift under the robustness machinery.
func TestSTLVoteDefaultsMatchSinglePass(t *testing.T) {
	secret := randSecret(9, 8)
	a := SpectreSTL(kernel.Config{Seed: 5}, secret, STLOptions{})
	b := SpectreSTL(kernel.Config{Seed: 5}, secret, STLOptions{Votes: 1, Retries: 1})
	if string(a.Leaked) != string(b.Leaked) || a.Cycles != b.Cycles {
		t.Fatalf("explicit defaults diverge from zero options: %x/%d vs %x/%d",
			a.Leaked, a.Cycles, b.Leaked, b.Cycles)
	}
}

func TestMajorityByte(t *testing.T) {
	cases := []struct {
		votes []byte
		want  byte
	}{
		{[]byte{7, 7, 3}, 7},
		{[]byte{3, 7, 7}, 7},
		{[]byte{9, 4}, 4},    // tie -> smallest
		{[]byte{0, 0, 0}, 0}, // no signal
		{[]byte{5}, 5},       // single vote
		{[]byte{2, 1, 2, 1, 1}, 1},
	}
	for _, c := range cases {
		if got := majorityByte(c.votes); got != c.want {
			t.Errorf("majorityByte(%v) = %d, want %d", c.votes, got, c.want)
		}
	}
}

func TestMadFilter(t *testing.T) {
	// A single wild outlier is rejected; the tight cluster survives.
	xs := []uint64{100, 104, 98, 102, 9000, 101}
	got := madFilter(xs)
	for _, v := range got {
		if v == 9000 {
			t.Fatalf("outlier survived: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("filtered set %v, want the 5 clustered readings", got)
	}
	// All-identical readings: MAD is 0, the 64-cycle floor keeps everything.
	same := []uint64{40, 40, 40, 80}
	if got := madFilter(same); len(got) != 4 {
		t.Fatalf("quantization wobble rejected: %v", got)
	}
}
