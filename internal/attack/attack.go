// Package attack implements the paper's Section V exploits against the
// simulated machine: the out-of-place Spectre-STL attack (PSFP), the
// Spectre-CTL attack (SSBP, including the cross-process and browser
// variants), and the SSBP process-fingerprinting side channel.
package attack

import (
	"fmt"
	"sort"

	"zenspec/internal/revng"
)

// NominalGHz converts simulated cycles to wall-clock seconds for bandwidth
// reporting; the paper's machines run at roughly this clock.
const NominalGHz = 4.0

// CyclesToSeconds converts simulated cycles to seconds at the nominal clock.
func CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / (NominalGHz * 1e9)
}

// Result summarizes a leak attack run.
type Result struct {
	Name     string
	Secret   []byte
	Leaked   []byte
	Bytes    int
	Correct  int
	Accuracy float64
	Cycles   int64 // total simulated cycles spent by the attack
	// BytesPerSecond is the leak bandwidth at the nominal 4 GHz clock.
	BytesPerSecond float64
	// CollisionAttempts is the code-sliding cost paid during setup.
	CollisionAttempts int
	// VictimCalls counts victim executions — the axis on which the paper
	// contrasts in-place training ("a lot of" victim runs per byte) with
	// out-of-place training (one victim run per byte).
	VictimCalls int
}

func (r Result) String() string {
	return fmt.Sprintf("%s: leaked %d/%d bytes (%.2f%% accuracy), %.0f B/s at %.0f GHz (setup: %d sliding attempts; %d victim calls)",
		r.Name, r.Correct, r.Bytes, 100*r.Accuracy, r.BytesPerSecond, NominalGHz, r.CollisionAttempts, r.VictimCalls)
}

func finalize(r *Result) {
	r.Bytes = len(r.Secret)
	for i := range r.Secret {
		if i < len(r.Leaked) && r.Leaked[i] == r.Secret[i] {
			r.Correct++
		}
	}
	if r.Bytes > 0 {
		r.Accuracy = float64(r.Correct) / float64(r.Bytes)
	}
	if sec := CyclesToSeconds(r.Cycles); sec > 0 {
		r.BytesPerSecond = float64(r.Bytes) / sec
	}
}

// drainUntilFast runs non-aliasing executions of s until the timing class
// reads fast twice in a row (C3 of the shared entry drained to zero), or
// maxRuns is exhausted. It returns the number of runs used.
func drainUntilFast(s *revng.Stld, maxRuns int) int {
	fast := 0
	for i := 0; i < maxRuns; i++ {
		if s.Run(false).Class == revng.ClassFast {
			fast++
			if fast >= 2 {
				return i + 1
			}
		} else {
			fast = 0
		}
	}
	return maxRuns
}

// medianCycles takes n timing readings of s (non-aliasing runs) and returns
// the median — the amplification primitive noisy-timer attackers rely on.
// Readings are destructive (each stall drains one C3 step), so n must stay
// well below the trained C3 value of 15.
func medianCycles(s *revng.Stld, n int) uint64 {
	v := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		v = append(v, s.Run(false).Cycles)
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v[len(v)/2]
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// madFilter drops outlier readings: anything farther than max(8*MAD, 64)
// cycles from the median, where MAD is the median absolute deviation. Under
// fault injection a flipped SSBP entry or an evicted line yields a reading
// from the wrong timing band entirely; MAD (unlike a standard deviation) is
// itself immune to those, so the cutoff stays anchored to the honest band.
// The 64-cycle floor keeps ordinary quantization wobble from being rejected
// when the honest readings are all identical (MAD = 0).
func madFilter(xs []uint64) []uint64 {
	if len(xs) < 3 {
		return xs
	}
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	med := s[len(s)/2]
	devs := make([]uint64, len(s))
	for i, v := range s {
		devs[i] = absDiff(v, med)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	cut := 8 * devs[len(devs)/2]
	if cut < 64 {
		cut = 64
	}
	out := xs[:0:0]
	for _, v := range xs {
		if absDiff(v, med) <= cut {
			out = append(out, v)
		}
	}
	return out
}

// majorityByte returns the most frequent value among votes; ties break toward
// the smallest value so the result never depends on vote order.
func majorityByte(votes []byte) byte {
	var counts [256]int
	for _, v := range votes {
		counts[v]++
	}
	best := 0
	for v := 1; v < 256; v++ {
		if counts[v] > counts[best] {
			best = v
		}
	}
	return byte(best)
}
