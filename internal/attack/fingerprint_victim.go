package attack

import (
	"fmt"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/predict"
	"zenspec/internal/revng"
	"zenspec/internal/workload"
)

// This file builds the Fig 11 victim as a real program: one loop per model
// layer ("site"), each on its own pair of hash-controlled pages so the
// site's load selects a chosen SSBP entry. The loop reads its aliasing
// pattern for the round from a data array, runs the store-load pair with a
// delayed store address, and chains into the next site. The program runs
// under the kernel scheduler, whose preemptions flush PSFP — which is what
// lets the SSBP signature accumulate.

const (
	fpVictimCode = 0x10000000
	fpVictimData = 0x0a000000 // store/load data addresses
	fpPatternVA  = 0x0b000000 // per-round aliasing patterns
	fpSiteStride = 4 * mem.PageSize
)

// siteBuilder assembles one site's loop: pattern-driven store-load pairs
// with a delayed store address, the STORE in the last slot of page 0 and
// the LOAD in the first slot of page 1 (for hash-controlled placement),
// chaining into the next site (or halting).
func siteBuilder(runs int, patBase, next uint64) *asm.Builder {
	b := asm.NewBuilder()
	b.Movi(isa.R14, int32(runs))
	b.Movi(isa.R11, int32(patBase))
	b.Movi(isa.R12, 1)
	b.Label("loop")
	const bodyFixed = 14
	pad := int(mem.PageSize)/isa.InstBytes - 3 - bodyFixed
	for i := 0; i < pad; i++ {
		b.Nop()
	}
	b.Load(isa.R10, isa.R11, 0)
	b.Movi(isa.R13, 1)
	b.Sub(isa.R13, isa.R13, isa.R10)
	b.Shli(isa.R13, isa.R13, 11)
	b.Add(isa.R13, isa.R13, isa.R15)
	b.Mov(isa.RBX, isa.R15)
	for i := 0; i < 7; i++ {
		b.Imul(isa.RBX, isa.RBX, isa.R12)
	}
	b.Store(isa.RBX, 0, isa.R12)
	b.Load(isa.R9, isa.R13, 0)
	b.Addi(isa.R11, isa.R11, 8)
	b.Subi(isa.R14, isa.R14, 1)
	b.Jnz(isa.R14, "loop")
	if next != 0 {
		b.JmpAbs(next)
	} else {
		b.Halt()
	}
	return b
}

// buildVictimProgram maps the whole model as a chain of site loops in proc,
// with each site's load hash drawn from [0, scanRange). It returns the
// program entry and the per-site pattern bases.
func buildVictimProgram(l *revng.Lab, proc *kernel.Process, m workload.CNNModel,
	scanRange int, rnd func(int) int, frameSeq *uint64) (uint64, []uint64, error) {

	sites := len(m.SiteAliasing)
	patBases := make([]uint64, sites)
	used := map[uint16]bool{}
	proc.MapData(fpPatternVA, uint64(sites*64*8)+mem.PageSize)

	for i := 0; i < sites; i++ {
		patBases[i] = fpPatternVA + uint64(i*64*8)
	}
	// Build back to front so each site knows its successor's entry.
	entries := make([]uint64, sites)
	for i := range entries {
		entries[i] = fpVictimCode + uint64(i)*fpSiteStride
	}
	for i := sites - 1; i >= 0; i-- {
		next := uint64(0)
		if i+1 < sites {
			next = entries[i+1]
		}
		runs := m.SiteRuns[i%len(m.SiteRuns)]
		b := siteBuilder(runs, patBases[i], next)
		code, err := b.Assemble(entries[i])
		if err != nil {
			return 0, nil, err
		}
		// Hash-controlled frames: store ends page 0, load begins page 1.
		var lh uint16
		for {
			lh = uint16(rnd(scanRange))
			if !used[lh] {
				used[lh] = true
				break
			}
		}
		sh := uint16(rnd(predict.HashEntries))
		storeOffHash := predict.Hash48(mem.PageSize - isa.InstBytes)
		f0 := revng.FrameWithHash(*frameSeq, sh^storeOffHash)
		f1 := revng.FrameWithHash(*frameSeq+1, lh)
		f2 := revng.FrameWithHash(*frameSeq+2, uint16(rnd(predict.HashEntries)))
		*frameSeq += 3
		if err := proc.MapCodeFrames(entries[i], code, []uint64{f0, f1, f2}); err != nil {
			return 0, nil, err
		}
	}
	return entries[0], patBases, nil
}

// writePatterns draws this round's aliasing bits into the pattern array.
func writePatterns(proc *kernel.Process, m workload.CNNModel, patBases []uint64, sched [][]bool) {
	for i, runs := range sched {
		for j, aliasing := range runs {
			v := uint64(0)
			if aliasing {
				v = 1
			}
			proc.Write64(patBases[i]+uint64(j*8), v)
		}
	}
}

// runVictimQuantum executes one full pass of the model under the scheduler,
// preempted every `quantum` instructions.
func runVictimQuantum(l *revng.Lab, proc *kernel.Process, entry uint64, quantum uint64) error {
	sched := l.K.NewScheduler(0, quantum)
	proc.Regs = [isa.NumRegs]uint64{}
	proc.Regs[isa.R15] = fpVictimData
	task := sched.Spawn(proc, entry)
	if err := sched.Run(1 << 16); err != nil {
		return err
	}
	if task.State != kernel.TaskDone {
		return fmt.Errorf("attack: victim quantum ended %v (%v at %#x)",
			task.State, task.Result.Fault, task.Result.FaultVA)
	}
	return nil
}
