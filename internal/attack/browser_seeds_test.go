package attack

import (
	"testing"

	"zenspec/internal/kernel"
)

// TestBrowserSeedRobustness: the browser-timer attack must stay functional
// (degraded, not dead) across machine seeds — the paper's 81.1% is a mean
// over a noisy channel.
func TestBrowserSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	var sum float64
	seeds := []int64{5, 42, 7, 99}
	for _, seed := range seeds {
		res := SpectreCTLBrowser(kernel.Config{Seed: seed}, randSecret(3, 8))
		t.Logf("seed=%d: %s", seed, res)
		if res.Accuracy < 0.25 {
			t.Errorf("seed %d: browser channel collapsed (%.0f%%)", seed, 100*res.Accuracy)
		}
		sum += res.Accuracy
	}
	if mean := sum / float64(len(seeds)); mean < 0.5 {
		t.Errorf("mean browser accuracy %.2f, want >= 0.5", mean)
	}
}
