package attack

import (
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/revng"
	"zenspec/internal/sidechannel"
)

// SpectreSTLInPlace is the baseline the paper improves on: classic
// Spectre-STL, where the attacker trains PSFP by repeatedly executing the
// victim function itself with aliasing inputs (idx = 0), instead of through
// an out-of-place collider. Every byte costs a batch of victim executions —
// the cost axis the paper's Section V-B contrasts — and the attack still
// cannot cross a process boundary, since PSFP is flushed on every switch.
func SpectreSTLInPlace(cfg kernel.Config, secret []byte) Result {
	res := Result{Name: "in-place spectre-stl", Secret: secret}

	l := revng.NewLab(cfg)
	p := l.P
	p.MapCode(stlVictimVA, buildSTLVictim())
	p.MapData(stlArray1VA, mem.PageSize)
	p.MapData(stlArray2VA, (stlStoreIdx+2)*mem.PageSize)
	p.MapData(stlIdxVA, mem.PageSize)
	p.MapData(stlSecretVA, uint64(len(secret))+mem.PageSize)
	p.WriteBytes(stlSecretVA, secret)
	fr := sidechannel.New(l.K, p, 0, stlArray2VA, 256, stlFRCodeVA)

	start := l.K.CPU(0).Core.Cycle()
	runVictim := func(x, idx uint64, flushIdx bool) {
		res.VictimCalls++
		p.Write64(stlIdxVA, idx)
		p.WarmLine(stlArray2VA)
		if flushIdx {
			p.FlushLine(stlIdxVA)
		} else {
			p.WarmLine(stlIdxVA)
		}
		p.Regs = [isa.NumRegs]uint64{}
		p.Regs[isa.RDI] = x
		l.K.Run(p, stlVictimVA, 0)
	}

	exclude := map[int]bool{0: true}
	for i := range secret {
		v, ok := 0, false
		for attempt := 0; attempt < 2 && !ok; attempt++ {
			// In-place training: a context switch clears the (possibly
			// blocked) PSFP entry, then aliasing victim executions retrain
			// it until predictive forwarding is enabled — "a lot of
			// victim_function" runs, in the paper's words.
			l.Tick()
			p.Write64(stlArray2VA, 0)
			for j := 0; j < 7; j++ {
				runVictim(0, 0, false) // idx=0: store aliases ld1
			}
			fr.FlushAll()
			p.Write64(stlArray2VA, 0)
			x := stlSecretVA + uint64(i) - stlArray1VA
			runVictim(x, stlStoreIdx, true)
			v, ok = fr.Recover(exclude)
		}
		if !ok {
			v = 0
		}
		res.Leaked = append(res.Leaked, byte(v))
	}
	res.Cycles = l.K.CPU(0).Core.Cycle() - start
	finalize(&res)
	return res
}
