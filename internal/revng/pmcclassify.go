package revng

import (
	"zenspec/internal/pmc"
	"zenspec/internal/predict"
)

// PMCClass is the verdict of the performance-counter classifier: the
// execution type as far as PMC deltas can tell. The S1/S2 split (A vs B,
// E vs F) is invisible to counters — the paper separated those using the
// sequence context — so those pairs share a verdict.
type PMCClass uint8

// PMC classifier verdicts.
const (
	PMCUnknown         PMCClass = iota
	PMCFastBypass               // type H
	PMCBypassRollback           // type G
	PMCForward                  // type C
	PMCForwardRollback          // type D
	PMCStallForward             // type A or B (stalled, then store-to-load forward)
	PMCStallCache               // type E or F (stalled, then cache fill)
)

func (c PMCClass) String() string {
	switch c {
	case PMCFastBypass:
		return "H"
	case PMCBypassRollback:
		return "G"
	case PMCForward:
		return "C"
	case PMCForwardRollback:
		return "D"
	case PMCStallForward:
		return "A|B"
	case PMCStallCache:
		return "E|F"
	}
	return "?"
}

// Matches reports whether the verdict is consistent with a ground-truth
// execution type.
func (c PMCClass) Matches(t predict.ExecType) bool {
	switch c {
	case PMCFastBypass:
		return t == predict.TypeH
	case PMCBypassRollback:
		return t == predict.TypeG
	case PMCForward:
		return t == predict.TypeC
	case PMCForwardRollback:
		return t == predict.TypeD
	case PMCStallForward:
		return t == predict.TypeA || t == predict.TypeB
	case PMCStallCache:
		return t == predict.TypeE || t == predict.TypeF
	}
	return false
}

// ClassifyPMC reads the per-execution PMC delta of one stld the way the
// paper's Fig 2 does:
//
//   - a rollback (pipeline flush) separates D and G from the rest; whether a
//     predictive store forward fired separates D from G;
//   - among the non-rollback types, a PSF event is C, a store-queue stall
//     with a store-to-load forward is A/B, a stall without one is E/F, and
//     no stall at all is H.
func ClassifyPMC(d pmc.Counters) PMCClass {
	rollback := d.Get(pmc.Rollbacks) > 0
	psf := d.Get(pmc.PSFForwards) > 0
	stall := d.Get(pmc.SQStallCycles) > 0
	stlf := d.Get(pmc.StoreToLoadForwarding) > 0
	bypass := d.Get(pmc.Bypasses) > 0
	switch {
	case rollback && psf:
		return PMCForwardRollback
	case rollback:
		return PMCBypassRollback
	case psf:
		return PMCForward
	case stall && stlf:
		return PMCStallForward
	case stall:
		return PMCStallCache
	case bypass:
		return PMCFastBypass
	}
	return PMCUnknown
}

// RunPMC executes the stld once and classifies it from the PMC delta alone.
func (s *Stld) RunPMC(aliasing bool) (Observation, PMCClass) {
	counters := s.lab.K.CPU(s.cpu).Core.PMC()
	before := counters.Snapshot()
	ob := s.Run(aliasing)
	return ob, ClassifyPMC(counters.Delta(before))
}
