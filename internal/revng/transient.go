package revng

import (
	"fmt"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/pipeline"
	"zenspec/internal/predict"
)

// The transient experiments build their own tiny processes; the layout
// mirrors the attacker binaries elsewhere in the package.
const (
	transCodeVA  = 0x400000
	transDataVA  = 0x10000
	transProbeVA = 0x40000
)

// TransientExecResult reproduces Fig 8 (Section IV-C, Vulnerability 3): both
// mispredictions leave a cache trace of a value the program never
// architecturally produced.
type TransientExecResult struct {
	// SSBP misprediction (case 4b): the untrained predictor lets the load
	// bypass an aliasing store, so the STALE memory value steers a dependent
	// load whose line stays cached after the rollback.
	SSBPLeadingG    bool // the bypass was detected and rolled back (type G)
	SSBPArchCorrect bool // architectural result is still the store's value
	SSBPStaleCached bool // probe line of the stale value is cached
	SSBPArchCached  bool // probe line of the architectural value too (replay)
	// PSFP misprediction (case 4a): trained PSF forwards the store data to a
	// NON-aliasing load, caching the forwarded value's probe line.
	PSFPTypeD         bool // wrong forward was detected (type D)
	PSFPForwardCached bool // probe line of the wrongly forwarded value cached
}

// Demonstrated reports whether both Fig 8 windows left their traces.
func (r TransientExecResult) Demonstrated() bool {
	return r.SSBPLeadingG && r.SSBPArchCorrect && r.SSBPStaleCached &&
		r.SSBPArchCached && r.PSFPTypeD && r.PSFPForwardCached
}

func (r TransientExecResult) String() string {
	return fmt.Sprintf("Section IV-C — transient execution windows: SSBP stale-value trace %v (G=%v, arch ok %v, replay cached %v); PSFP forwarded-value trace %v (D=%v)",
		r.SSBPStaleCached, r.SSBPLeadingG, r.SSBPArchCorrect, r.SSBPArchCached,
		r.PSFPForwardCached, r.PSFPTypeD)
}

// buildFig8 assembles the Fig 8 gadget: a store whose address resolves
// slowly (imul chain), an (possibly aliasing) load, and a dependent load
// that encodes the loaded value into the cache.
//
//	store [slow(rdi)], r9
//	load  r8, [rsi]
//	load  r12, [rbp + r8*64]
func buildFig8(imuls int) []byte {
	b := asm.NewBuilder()
	b.Movi(isa.R12, 1)
	b.Mov(isa.RBX, isa.RDI)
	for i := 0; i < imuls; i++ {
		b.Imul(isa.RBX, isa.RBX, isa.R12)
	}
	b.Store(isa.RBX, 0, isa.R9)
	b.Load(isa.R8, isa.RSI, 0)
	b.Shli(isa.R13, isa.R8, 6)
	b.Add(isa.R13, isa.R13, isa.RBP)
	b.Load(isa.R14, isa.R13, 0)
	b.Halt()
	return b.MustAssemble(transCodeVA)
}

// TransientExec runs both Fig 8 experiments on fresh machines.
func TransientExec(cfg kernel.Config) TransientExecResult {
	var res TransientExecResult

	// Case 4b — SSBP misprediction exposes the stale memory value.
	{
		k := kernel.New(cfg)
		p := k.NewProcess("fig8-ssbp", kernel.DomainUser)
		p.MapCode(transCodeVA, buildFig8(20))
		p.MapData(transDataVA, mem.PageSize)
		p.MapData(transProbeVA, 0x100*64)
		p.Write64(transDataVA, 0xcc) // the stale value

		p.Regs = [isa.NumRegs]uint64{}
		p.Regs[isa.RDI] = transDataVA
		p.Regs[isa.RSI] = transDataVA // aliasing
		p.Regs[isa.R9] = 0xdd
		p.Regs[isa.RBP] = transProbeVA
		run := k.Run(p, transCodeVA, 0)
		res.SSBPLeadingG = run.Stop == pipeline.StopHalt &&
			len(run.Stlds) > 0 && run.Stlds[0].Type == predict.TypeG
		res.SSBPArchCorrect = p.Regs[isa.R8] == 0xdd
		if pa, f := p.Translate(transProbeVA+0xcc*64, mem.AccessRead); f == mem.FaultNone {
			res.SSBPStaleCached = k.Caches().Cached(pa)
		}
		if pa, f := p.Translate(transProbeVA+0xdd*64, mem.AccessRead); f == mem.FaultNone {
			res.SSBPArchCached = k.Caches().Cached(pa)
		}
	}

	// Case 4a — trained PSF forwards to a non-aliasing load.
	{
		k := kernel.New(cfg)
		p := k.NewProcess("fig8-psfp", kernel.DomainUser)
		p.MapCode(transCodeVA, buildFig8(20))
		p.MapData(transDataVA, mem.PageSize)
		p.MapData(transProbeVA, 0x100*64)
		p.Write64(transDataVA+0x800, 0xbb) // value at the non-aliasing address

		run := func(aliasing bool) pipeline.RunResult {
			p.Regs = [isa.NumRegs]uint64{}
			p.Regs[isa.RDI] = transDataVA
			p.Regs[isa.RSI] = transDataVA
			if !aliasing {
				p.Regs[isa.RSI] = transDataVA + 0x800
			}
			p.Regs[isa.R9] = 0xdd
			p.Regs[isa.RBP] = transProbeVA
			return k.Run(p, transCodeVA, 0)
		}
		// Train PSF: one G, then aliasing runs until forwarding is enabled.
		for i := 0; i < 7; i++ {
			run(true)
		}
		// Flush the probe region so only the transient access re-fills it.
		for v := uint64(0); v < 0x100; v++ {
			p.FlushLine(transProbeVA + v*64)
		}
		probe := run(false) // PSF wrongly forwards 0xdd -> type D
		for _, ev := range probe.Stlds {
			if ev.Type == predict.TypeD {
				res.PSFPTypeD = true
			}
		}
		if pa, f := p.Translate(transProbeVA+0xdd*64, mem.AccessRead); f == mem.FaultNone {
			res.PSFPForwardCached = k.Caches().Cached(pa)
		}
	}
	return res
}

// TransientUpdateResult reproduces Fig 9 (Section IV-D, Vulnerability 4):
// predictor updates made inside a transient window survive the squash, for
// all three window types the paper lists.
type TransientUpdateResult struct {
	// Branch window: an stld on the wrong path of a mispredicted branch.
	BranchWindowSquashed bool // the wrong-path load never retired
	BranchWindowTrained  bool // yet the predictor kept its update
	// Faulty-load window: dependents of a faulting load run transiently.
	FaultWindowCached bool // the dependent load's line was cached
	// Memory-speculation window: an stld inside a type-G rollback window.
	MemWindowTransient bool // the inner stld was seen transiently
}

// Demonstrated reports whether all three Fig 9 windows behaved as in the
// paper.
func (r TransientUpdateResult) Demonstrated() bool {
	return r.BranchWindowSquashed && r.BranchWindowTrained &&
		r.FaultWindowCached && r.MemWindowTransient
}

func (r TransientUpdateResult) String() string {
	return fmt.Sprintf("Section IV-D — transient predictor updates: branch window squashed %v / trained %v; faulty-load window cached %v; memory window transient %v",
		r.BranchWindowSquashed, r.BranchWindowTrained, r.FaultWindowCached, r.MemWindowTransient)
}

// TransientUpdate runs the three Fig 9 experiments on fresh machines.
func TransientUpdate(cfg kernel.Config) TransientUpdateResult {
	var res TransientUpdateResult

	// Branch window: train not-taken, flush predictors, run taken — the
	// wrong-path aliasing stld must still train SSBP/PSFP.
	{
		k := kernel.New(cfg)
		p := k.NewProcess("fig9-branch", kernel.DomainUser)
		b := asm.NewBuilder()
		b.Movi(isa.R12, 1)
		b.Mov(isa.R11, isa.RCX)
		for i := 0; i < 10; i++ {
			b.Imul(isa.R11, isa.R11, isa.R12)
		}
		b.Jnz(isa.R11, "skip")
		b.Mov(isa.RBX, isa.RDI)
		for i := 0; i < 8; i++ {
			b.Imul(isa.RBX, isa.RBX, isa.R12)
		}
		b.Store(isa.RBX, 0, isa.R9)
		b.Load(isa.R8, isa.RSI, 0)
		b.Label("skip")
		b.Halt()
		p.MapCode(transCodeVA, b.MustAssemble(transCodeVA))
		p.MapData(transDataVA, mem.PageSize)

		for i := 0; i < 4; i++ {
			p.Regs = [isa.NumRegs]uint64{}
			p.Regs[isa.RDI] = transDataVA
			p.Regs[isa.RSI] = transDataVA + 0x800 // non-aliasing in training
			k.Run(p, transCodeVA, 0)
		}
		// Reset predictors so only the transient window trains them.
		k.CPU(0).Unit.FlushAll()

		p.Regs = [isa.NumRegs]uint64{}
		p.Regs[isa.RCX] = 1 // branch mispredicts; stld is wrong-path only
		p.Regs[isa.RDI] = transDataVA
		p.Regs[isa.RSI] = transDataVA // aliasing within the window
		p.Regs[isa.R9] = 0x11
		run := k.Run(p, transCodeVA, 0)
		res.BranchWindowSquashed = run.Stop == pipeline.StopHalt && p.Regs[isa.R8] == 0
		for _, ev := range run.Stlds {
			if !ev.Transient {
				continue
			}
			q := predict.Query{StoreIPA: ev.StoreIPA, LoadIPA: ev.LoadIPA}
			if !k.CPU(0).Unit.PeekCounters(q).Zero() {
				res.BranchWindowTrained = true
			}
		}
	}

	// Faulty-load window: AMD semantics forward zero from a faulting load,
	// so its dependent touches probe line 0 before the fault retires.
	{
		k := kernel.New(cfg)
		p := k.NewProcess("fig9-fault", kernel.DomainUser)
		b := asm.NewBuilder()
		b.Load(isa.R8, isa.RDI, 0) // faults (unmapped)
		b.Shli(isa.R13, isa.R8, 6)
		b.Add(isa.R13, isa.R13, isa.RBP)
		b.Load(isa.R14, isa.R13, 0)
		b.Halt()
		p.MapCode(transCodeVA, b.MustAssemble(transCodeVA))
		p.MapData(transProbeVA, 64)
		p.FlushLine(transProbeVA)

		p.Regs = [isa.NumRegs]uint64{}
		p.Regs[isa.RDI] = 0xdead000 // unmapped
		p.Regs[isa.RBP] = transProbeVA
		run := k.Run(p, transCodeVA, 0)
		if pa, f := p.Translate(transProbeVA, mem.AccessRead); f == mem.FaultNone {
			res.FaultWindowCached = run.Stop == pipeline.StopFault && k.Caches().Cached(pa)
		}
	}

	// Memory-speculation window: an inner stld executed only inside an outer
	// type-G rollback window is still verified (transiently).
	{
		k := kernel.New(cfg)
		p := k.NewProcess("fig9-mem", kernel.DomainUser)
		b := asm.NewBuilder()
		b.Movi(isa.R12, 1)
		b.Mov(isa.RBX, isa.RDI)
		for i := 0; i < 20; i++ {
			b.Imul(isa.RBX, isa.RBX, isa.R12)
		}
		b.Store(isa.RBX, 0, isa.R9)
		b.Load(isa.R8, isa.RSI, 0)
		b.Mov(isa.R15, isa.RDX)
		for i := 0; i < 4; i++ {
			b.Imul(isa.R15, isa.R15, isa.R12)
		}
		b.Store(isa.R15, 0, isa.R9)
		b.Load(isa.R10, isa.RDX, 0)
		b.Halt()
		p.MapCode(transCodeVA, b.MustAssemble(transCodeVA))
		p.MapData(transDataVA, mem.PageSize)

		p.Regs = [isa.NumRegs]uint64{}
		p.Regs[isa.RDI] = transDataVA
		p.Regs[isa.RSI] = transDataVA // aliasing -> G window
		p.Regs[isa.RDX] = transDataVA + 0x400
		p.Regs[isa.R9] = 7
		run := k.Run(p, transCodeVA, 0)
		if run.Stop == pipeline.StopHalt {
			for _, ev := range run.Stlds {
				if ev.Transient {
					res.MemWindowTransient = true
				}
			}
		}
	}
	return res
}
