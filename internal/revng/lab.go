// Package revng is the reverse-engineering toolkit: it reproduces the
// paper's methodology (Sections III and IV) against the simulated machine —
// timing-classified stld sequences (the φ notation), code sliding for
// collision finding, eviction-set probing, and the counter-organization
// experiments of TABLE II.
package revng

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/pipeline"
	"zenspec/internal/predict"
)

// Fold12 XORs the 12-bit groups of v — the hash contribution of a physical
// frame number.
func Fold12(v uint64) uint16 {
	return uint16((v ^ v>>12 ^ v>>24) & 0xfff)
}

// FrameWithHash returns the n-th physical frame number whose hash
// contribution (Fold12) equals t. Distinct n yield distinct frames.
func FrameWithHash(n uint64, t uint16) uint64 {
	g := uint64(t^Fold12(n<<12)) & 0xfff
	return n<<12 | g
}

// TimingClass is what a timing-only attacker can distinguish (the paper's
// Fig 2 levels, collapsed to the attacker's view).
type TimingClass uint8

// Timing classes, ordered by increasing execution time.
const (
	ClassFast     TimingClass = iota // bypass hit (type H)
	ClassForward                     // predictive store forward (type C)
	ClassStall                       // load waited for store address (A/B/E/F)
	ClassRollback                    // pipeline flush (D/G)
)

func (c TimingClass) String() string {
	switch c {
	case ClassFast:
		return "fast"
	case ClassForward:
		return "forward"
	case ClassStall:
		return "stall"
	case ClassRollback:
		return "rollback"
	}
	return "class?"
}

// ClassOf maps a ground-truth execution type to its timing class.
func ClassOf(t predict.ExecType) TimingClass {
	switch t {
	case predict.TypeH:
		return ClassFast
	case predict.TypeC:
		return ClassForward
	case predict.TypeD, predict.TypeG:
		return ClassRollback
	default:
		return ClassStall
	}
}

// Classifier holds calibrated timing thresholds.
type Classifier struct {
	FastMax    uint64 // <= FastMax: ClassFast
	ForwardMax uint64 // <= ForwardMax: ClassForward
	StallMax   uint64 // <= StallMax: ClassStall; above: ClassRollback
}

// Classify maps a cycle measurement to a timing class.
func (c Classifier) Classify(cycles uint64) TimingClass {
	switch {
	case cycles <= c.FastMax:
		return ClassFast
	case cycles <= c.ForwardMax:
		return ClassForward
	case cycles <= c.StallMax:
		return ClassStall
	default:
		return ClassRollback
	}
}

// Observation is one measured stld execution.
type Observation struct {
	Cycles   uint64
	Class    TimingClass
	TrueType predict.ExecType // ground truth from the simulator trace
}

// Lab is the reverse-engineering fixture: a machine, an experiment process,
// and stld placement with full control over instruction physical addresses.
type Lab struct {
	K *kernel.Kernel
	P *kernel.Process

	Cls Classifier

	// faulted is set when the machine runs under an injected fault plan;
	// measurement procedures that are sound on a quiet machine (single-read
	// verdicts, first-stall searches) harden themselves when it is set.
	faulted bool

	nextVA    uint64
	nextFrame uint64
	dataVA    uint64

	tickProc *kernel.Process
	tickVA   uint64
}

// NewLab boots a fresh machine and calibrates the timing classifier.
func NewLab(cfg kernel.Config) *Lab {
	k := kernel.New(cfg)
	p := k.NewProcess("revng", kernel.DomainUser)
	l := &Lab{
		K:         k,
		P:         p,
		faulted:   cfg.Faults.MachineActive(),
		nextVA:    0x400000,
		nextFrame: 1 << 20, // clear of the kernel's sequential allocator
		dataVA:    0x10000,
	}
	p.MapData(l.dataVA, 4*mem.PageSize)
	p.WarmLine(l.dataVA)
	p.WarmLine(l.dataVA + 0x800)
	l.calibrate()
	return l
}

// StoreAddr and LoadAddr return the data addresses used for aliasing and
// non-aliasing runs.
func (l *Lab) StoreAddr() uint64 { return l.dataVA }

// NonAliasAddr is the load address used for non-aliasing runs.
func (l *Lab) NonAliasAddr() uint64 { return l.dataVA + 0x800 }

// Stld is a placed stld instance.
type Stld struct {
	VA        uint64
	Tmpl      asm.Stld
	StoreIPA  uint64
	LoadIPA   uint64
	StoreHash uint16
	LoadHash  uint16

	lab  *Lab
	proc *kernel.Process
	cpu  int
}

// PlaceStld places an stld at a natural (kernel-chosen) location in the
// lab's process and returns it.
func (l *Lab) PlaceStld() *Stld {
	return l.placeIn(l.P, 0, asm.BuildStld(asm.StldOptions{}))
}

// PlaceStldIn places an stld in an arbitrary process / hardware thread.
func (l *Lab) PlaceStldIn(p *kernel.Process, cpu int) *Stld {
	return l.placeIn(p, cpu, asm.BuildStld(asm.StldOptions{}))
}

func (l *Lab) placeIn(p *kernel.Process, cpu int, tmpl asm.Stld) *Stld {
	va := l.nextVA
	l.nextVA += (uint64(len(tmpl.Code))/mem.PageSize + 2) * mem.PageSize
	p.MapCode(va, tmpl.Code)
	return l.finish(p, cpu, va, tmpl)
}

func (l *Lab) finish(p *kernel.Process, cpu int, va uint64, tmpl asm.Stld) *Stld {
	storeIPA, err := p.IPA(va + uint64(tmpl.StoreOff))
	if err != nil {
		panic(err)
	}
	loadIPA, err := p.IPA(va + uint64(tmpl.LoadOff))
	if err != nil {
		panic(err)
	}
	return &Stld{
		VA:        va,
		Tmpl:      tmpl,
		StoreIPA:  storeIPA,
		LoadIPA:   loadIPA,
		StoreHash: predict.Hash48(storeIPA),
		LoadHash:  predict.Hash48(loadIPA),
		lab:       l,
		proc:      p,
		cpu:       cpu,
	}
}

// PlaceStldRandom places an stld at a random byte offset within a page
// backed by a frame with a random hash contribution — the "victim at an
// unknown address" setup of the Fig 7 collision-finding experiments. The
// code is contiguous, so the store/load hash relationship is the natural
// one an attacker can collide with.
func (l *Lab) PlaceStldRandom(rnd func(int) int) *Stld {
	tmpl := asm.BuildStld(asm.StldOptions{})
	f0 := FrameWithHash(l.nextFrame, uint16(rnd(predict.HashEntries)))
	f1 := FrameWithHash(l.nextFrame+1, uint16(rnd(predict.HashEntries)))
	l.nextFrame += 2
	va := l.nextVA
	l.nextVA += 3 * mem.PageSize
	// Map two pages and write the code at a random byte offset.
	pageVA := va &^ uint64(mem.PageMask)
	if err := l.P.MapCodeFrames(pageVA, make([]byte, 2*mem.PageSize), []uint64{f0, f1}); err != nil {
		panic(err)
	}
	off := uint64(rnd(mem.PageSize - 1))
	l.P.WriteBytes(pageVA+off, tmpl.Code)
	return l.finish(l.P, 0, pageVA+off, tmpl)
}

// PlaceStldHash places an stld whose load and store IPAs hash to the given
// values — the PTEditor-grade placement used to build the n_x^y / a_x^y
// variants of TABLE II. The store instruction ends one page and the load
// begins the next, so the two hashes are controlled independently through
// the two frames.
func (l *Lab) PlaceStldHash(storeHash, loadHash uint16) *Stld {
	tmpl := asm.BuildStld(asm.StldOptions{})
	// Pad the start so the STORE occupies the last 8 bytes of page 0.
	pad := (int(mem.PageSize) - isa.InstBytes - tmpl.StoreOff) / isa.InstBytes
	tmpl = asm.BuildStld(asm.StldOptions{PadStart: pad})
	if tmpl.StoreOff != int(mem.PageSize)-isa.InstBytes || tmpl.LoadOff != int(mem.PageSize) {
		panic(fmt.Sprintf("revng: bad stld layout: store %d load %d", tmpl.StoreOff, tmpl.LoadOff))
	}
	storeOffHash := predict.Hash48(uint64(tmpl.StoreOff))
	f0 := FrameWithHash(l.nextFrame, storeHash^storeOffHash)
	f1 := FrameWithHash(l.nextFrame+1, loadHash) // load sits at page offset 0
	l.nextFrame += 2
	va := l.nextVA
	l.nextVA += (uint64(len(tmpl.Code))/mem.PageSize + 2) * mem.PageSize
	if err := l.P.MapCodeFrames(va, tmpl.Code, []uint64{f0, f1}); err != nil {
		panic(err)
	}
	s := l.finish(l.P, 0, va, tmpl)
	if s.StoreHash != storeHash || s.LoadHash != loadHash {
		panic(fmt.Sprintf("revng: hash placement failed: got %#x/%#x want %#x/%#x",
			s.StoreHash, s.LoadHash, storeHash, loadHash))
	}
	return s
}

// Run executes the stld once. aliasing selects the load address equal to the
// store address. It returns the observation (cycles, timing class, ground
// truth).
func (s *Stld) Run(aliasing bool) Observation {
	p := s.proc
	p.Regs = [isa.NumRegs]uint64{}
	p.Regs[isa.RDI] = s.lab.StoreAddr()
	p.Regs[isa.RSI] = s.lab.StoreAddr()
	if !aliasing {
		p.Regs[isa.RSI] = s.lab.NonAliasAddr()
	}
	p.Regs[isa.R9] = 0xdd
	res := s.lab.K.RunOn(s.cpu, p, s.VA, 0)
	if res.Stop != pipeline.StopHalt {
		panic(fmt.Sprintf("revng: stld stopped with %v (fault %v at %#x)", res.Stop, res.Fault, res.FaultVA))
	}
	cyc := p.Regs[isa.RAX]
	if cyc > 1<<62 {
		// A jittered timer can produce a negative difference; attackers
		// interpret the subtraction as signed and clamp to zero.
		cyc = 0
	}
	ob := Observation{Cycles: cyc, Class: s.lab.Cls.Classify(cyc)}
	if len(res.Stlds) > 0 {
		ob.TrueType = res.Stlds[len(res.Stlds)-1].Type
	}
	return ob
}

// Phi runs a whole sequence (false = n, true = a) and returns the
// observations — the paper's φ.
func (s *Stld) Phi(inputs []bool) []Observation {
	out := make([]Observation, len(inputs))
	for i, a := range inputs {
		out[i] = s.Run(a)
	}
	return out
}

// Counters peeks at the combined predictor state of this stld's pair.
func (s *Stld) Counters() predict.Counters {
	unit := s.lab.K.CPU(s.cpu).Unit
	return unit.PeekCounters(predict.Query{StoreIPA: s.StoreIPA, LoadIPA: s.LoadIPA})
}

// calibrate learns the timing thresholds from a throwaway stld, mirroring
// how the paper separates the Fig 2 levels. Medians over several samples
// keep the thresholds usable under jittered timers (the browser profile).
func (l *Lab) calibrate() {
	s := l.PlaceStld()
	median := func(f func() uint64) uint64 {
		var v []uint64
		for i := 0; i < 5; i++ {
			v = append(v, f())
		}
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		return v[len(v)/2]
	}
	drain := func() {
		for i := 0; i < 40; i++ {
			s.Run(false)
		}
	}
	h := median(func() uint64 { drain(); return s.Run(false).Cycles }) // H
	g := median(func() uint64 { drain(); return s.Run(true).Cycles })  // G (rollback)
	e := median(func() uint64 {
		drain()
		s.Run(true)                // G
		return s.Run(false).Cycles // E (stall)
	})
	l.Cls = Classifier{
		FastMax:    h + 2,
		ForwardMax: (h + e) / 2,
		StallMax:   (e + g) / 2,
	}
	drain()
}

// Tick runs a trivial program in a separate scheduler process, forcing a
// context switch — the timer-interrupt preemption that is implicit in any
// measurement on a real OS (and which flushes PSFP).
func (l *Lab) Tick() {
	if l.tickProc == nil {
		l.tickProc = l.K.NewProcess("sched", kernel.DomainKernel)
		b := asm.NewBuilder()
		b.Nop().Halt()
		va := l.nextVA
		l.nextVA += 2 * mem.PageSize
		l.tickProc.MapCode(va, b.MustAssemble(va))
		l.tickVA = va
	}
	l.tickProc.Regs = [isa.NumRegs]uint64{}
	l.K.RunOn(0, l.tickProc, l.tickVA, 0)
}

// ParseSeq parses the paper's textual φ notation, e.g. "7n 1a 7n 1a" or
// "7n,a": each token is an optional count followed by n (non-aliasing) or a
// (aliasing).
func ParseSeq(s string) ([]bool, error) {
	var out []bool
	for _, tok := range strings.Fields(strings.ReplaceAll(s, ",", " ")) {
		kind := tok[len(tok)-1]
		if kind != 'n' && kind != 'a' {
			return nil, fmt.Errorf("revng: token %q must end in n or a", tok)
		}
		count := 1
		if len(tok) > 1 {
			var err error
			count, err = strconv.Atoi(tok[:len(tok)-1])
			if err != nil || count < 0 {
				return nil, fmt.Errorf("revng: bad count in token %q", tok)
			}
		}
		for i := 0; i < count; i++ {
			out = append(out, kind == 'a')
		}
	}
	return out, nil
}

// Seq parses the paper's compact sequence notation: positive counts are
// non-aliasing (n), negative counts are aliasing (a). Seq(7, -1, 7, -1)
// is "(7n, a, 7n, a)".
func Seq(counts ...int) []bool {
	var out []bool
	for _, c := range counts {
		if c >= 0 {
			for i := 0; i < c; i++ {
				out = append(out, false)
			}
		} else {
			for i := 0; i < -c; i++ {
				out = append(out, true)
			}
		}
	}
	return out
}

// Classes extracts the timing classes of a φ result.
func Classes(obs []Observation) []TimingClass {
	out := make([]TimingClass, len(obs))
	for i, o := range obs {
		out[i] = o.Class
	}
	return out
}

// Types extracts the ground-truth types of a φ result.
func Types(obs []Observation) []predict.ExecType {
	out := make([]predict.ExecType, len(obs))
	for i, o := range obs {
		out[i] = o.TrueType
	}
	return out
}

// TypesString renders types as the paper prints them, e.g. "7H 1G 4E 3H".
func TypesString(types []predict.ExecType) string {
	if len(types) == 0 {
		return ""
	}
	out := ""
	run, cur := 0, types[0]
	flush := func() {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%d%s", run, cur)
	}
	for _, t := range types {
		if t == cur {
			run++
			continue
		}
		flush()
		run, cur = 1, t
	}
	flush()
	return out
}
