package revng

import (
	"testing"

	"zenspec/internal/predict"
)

func TestFig2AllEightTypes(t *testing.T) {
	res := Fig2(baseCfg())
	seen := map[predict.ExecType]bool{}
	for _, row := range res.Rows {
		seen[row.Type] = true
	}
	for ty := predict.TypeA; ty <= predict.TypeH; ty++ {
		if !seen[ty] {
			t.Errorf("type %v not observed in repeated (40n,40a)", ty)
		}
	}
}
