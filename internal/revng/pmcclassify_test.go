package revng

import (
	"math/rand"
	"testing"

	"zenspec/internal/predict"
)

// TestPMCClassifierMatchesGroundTruth: over long random sequences, the
// counter-based classifier always agrees with the simulator's ground truth,
// which is the Fig 2 attribution methodology validated end to end.
func TestPMCClassifierMatchesGroundTruth(t *testing.T) {
	l := NewLab(baseCfg())
	s := l.PlaceStld()
	r := rand.New(rand.NewSource(8))
	counts := map[PMCClass]int{}
	for i := 0; i < 400; i++ {
		if i%97 == 0 {
			l.Tick() // occasional preemption diversifies the visited states
		}
		ob, cls := s.RunPMC(r.Intn(2) == 0)
		if !cls.Matches(ob.TrueType) {
			t.Fatalf("step %d: PMC says %v, ground truth %v (%d cycles)",
				i, cls, ob.TrueType, ob.Cycles)
		}
		counts[cls]++
	}
	// Random 50/50 inputs rarely enable PSF (C1 drifts up by +4 per n and
	// only -1 per a), so drive the C and D verdicts with the scripted
	// PSF-enabling sequence.
	for i := 0; i < 40; i++ {
		s.Run(false)
	}
	for _, a := range Seq(7, -1, -6) {
		ob, cls := s.RunPMC(a)
		if !cls.Matches(ob.TrueType) {
			t.Fatalf("scripted: PMC says %v, truth %v", cls, ob.TrueType)
		}
		counts[cls]++
	}
	ob, cls := s.RunPMC(false) // PSF enabled, non-aliasing: type D
	if !cls.Matches(ob.TrueType) {
		t.Fatalf("D step: PMC says %v, truth %v", cls, ob.TrueType)
	}
	counts[cls]++
	// The sweep must have exercised all six distinguishable verdicts.
	for _, want := range []PMCClass{PMCFastBypass, PMCBypassRollback,
		PMCForward, PMCForwardRollback, PMCStallForward, PMCStallCache} {
		if counts[want] == 0 {
			t.Errorf("verdict %v never produced (distribution %v)", want, counts)
		}
	}
}

// TestPMCClassifierSplitsTimingTies: types A/B and E/F share timing but the
// classifier separates the forward-vs-cache distinction that timing alone
// cannot.
func TestPMCClassifierSplitsTimingTies(t *testing.T) {
	l := NewLab(baseCfg())
	s := l.PlaceStld()
	s.Phi(Seq(7, -1))            // predicted aliasing
	obA, clsA := s.RunPMC(true)  // truth aliasing: A (stall + STLF)
	obE, clsE := s.RunPMC(false) // truth non-aliasing: E (stall + cache)
	if clsA != PMCStallForward {
		t.Errorf("aliasing stall classified %v", clsA)
	}
	if clsE != PMCStallCache {
		t.Errorf("non-aliasing stall classified %v", clsE)
	}
	// Their timing classes are both "stall": the PMC adds information.
	if obA.Class != ClassStall && obE.Class != ClassStall {
		t.Errorf("timing classes %v/%v", obA.Class, obE.Class)
	}
}

func TestPMCClassStrings(t *testing.T) {
	for _, c := range []PMCClass{PMCFastBypass, PMCBypassRollback, PMCForward,
		PMCForwardRollback, PMCStallForward, PMCStallCache, PMCUnknown} {
		if c.String() == "" {
			t.Error("empty verdict name")
		}
	}
	if PMCUnknown.Matches(predict.TypeH) {
		t.Error("unknown matches nothing")
	}
}
