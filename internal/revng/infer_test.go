package revng

import "testing"

// TestInferRecoversPaperConstants: the timing-only inference recovers the
// Section III design constants of TABLE I and Fig 5.
func TestInferRecoversPaperConstants(t *testing.T) {
	p := Infer(baseCfg())
	if p.C0Init != 4 {
		t.Errorf("C0 init inferred %d, want 4", p.C0Init)
	}
	if p.RollbacksToSaturate != 3 {
		t.Errorf("C4 limit inferred %d, want 3", p.RollbacksToSaturate)
	}
	if p.C3Saturated != 15 {
		t.Errorf("C3 value inferred %d, want 15", p.C3Saturated)
	}
	// C1 starts at 16 and PSF enables below 12: the 6th aliasing run is the
	// first type C.
	if p.AliasRunsToPSF != 6 {
		t.Errorf("PSF window inferred %d, want 6", p.AliasRunsToPSF)
	}
	if p.PSFPEvictionThreshold != 12 {
		t.Errorf("PSFP capacity inferred %d, want 12", p.PSFPEvictionThreshold)
	}
	if p.String() == "" {
		t.Error("empty report")
	}
}
