package revng

import (
	"testing"

	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/predict"
)

// TestTickFlushesPSFPOnly: the scheduler tick behaves like a real context
// switch — PSFP lost, SSBP kept.
func TestTickFlushesPSFPOnly(t *testing.T) {
	l := NewLab(baseCfg())
	s := l.PlaceStld()
	s.Phi(Seq(7, -1, 7, -1, 7, -1))
	pre := s.Counters()
	if pre.C0 == 0 || pre.C3 != 15 {
		t.Fatalf("training failed: %+v", pre)
	}
	l.Tick()
	// Running the lab process again re-switches; peek BEFORE running.
	c := l.K.CPU(0).Unit.PeekCounters(predict.Query{StoreIPA: s.StoreIPA, LoadIPA: s.LoadIPA})
	if c.C0 != 0 {
		t.Errorf("tick did not flush PSFP: %+v", c)
	}
	if c.C3 != 15 {
		t.Errorf("tick flushed SSBP: %+v", c)
	}
}

// TestPlaceStldRandomValid: random placement yields runnable stlds at
// arbitrary byte offsets with coherent metadata.
func TestPlaceStldRandomValid(t *testing.T) {
	l := NewLab(baseCfg())
	seeds := []int{3, 17, 99, 4095}
	for i, sd := range seeds {
		r := pseudoRand(sd)
		s := l.PlaceStldRandom(r)
		if predict.Hash48(s.LoadIPA) != s.LoadHash {
			t.Errorf("placement %d: hash metadata inconsistent", i)
		}
		ob := s.Run(false)
		if ob.TrueType != predict.TypeH {
			t.Errorf("placement %d: fresh run type %v", i, ob.TrueType)
		}
	}
}

// pseudoRand returns a deterministic rnd(int)int closure.
func pseudoRand(seed int) func(int) int {
	state := uint64(seed)*2654435761 + 1
	return func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
}

// TestClassifierUnderSSBD: with SSBD every execution is a stall; the
// calibration must not produce nonsense thresholds (the classifier's fast
// band just goes unused).
func TestClassifierUnderSSBD(t *testing.T) {
	cfg := baseCfg()
	cfg.SSBD = true
	l := NewLab(cfg)
	s := l.PlaceStld()
	for _, ob := range s.Phi(Seq(3, -3)) {
		if ob.TrueType != predict.TypeE && ob.TrueType != predict.TypeA {
			t.Errorf("SSBD execution type %v", ob.TrueType)
		}
	}
}

// TestLabAddressesAreMapped: the lab's data addresses are mapped in its
// process and distinct.
func TestLabAddresses(t *testing.T) {
	l := NewLab(baseCfg())
	if l.StoreAddr() == l.NonAliasAddr() {
		t.Error("aliasing and non-aliasing addresses must differ")
	}
	if _, f := l.P.AS.Translate(l.StoreAddr(), mem.AccessWrite); f != mem.FaultNone {
		t.Error("store address unmapped")
	}
	if _, f := l.P.AS.Translate(l.NonAliasAddr(), mem.AccessRead); f != mem.FaultNone {
		t.Error("load address unmapped")
	}
}

// TestObservationHelpers: Classes/Types extraction.
func TestObservationHelpers(t *testing.T) {
	obs := []Observation{
		{Cycles: 10, Class: ClassFast, TrueType: predict.TypeH},
		{Cycles: 300, Class: ClassRollback, TrueType: predict.TypeG},
	}
	if cs := Classes(obs); cs[0] != ClassFast || cs[1] != ClassRollback {
		t.Error("Classes")
	}
	if ts := Types(obs); ts[0] != predict.TypeH || ts[1] != predict.TypeG {
		t.Error("Types")
	}
	if ClassOf(predict.TypeB) != ClassStall || ClassOf(predict.TypeC) != ClassForward {
		t.Error("ClassOf")
	}
	for _, c := range []TimingClass{ClassFast, ClassForward, ClassStall, ClassRollback} {
		if c.String() == "" {
			t.Error("class name")
		}
	}
	if TimingClass(99).String() == "" {
		t.Error("unknown class should print")
	}
}

// TestSliderPlacementMetadata: slid instances carry offsets consistent with
// the window base.
func TestSliderPlacementMetadata(t *testing.T) {
	l := NewLab(baseCfg())
	slider := l.NewSlider(l.P, 2, l.PlaceStld().Tmpl)
	for _, at := range []int{0, 1, 4095, 4100} {
		s := slider.Place(at)
		if predict.Hash48(s.LoadIPA) != s.LoadHash {
			t.Errorf("at=%d: inconsistent hash metadata", at)
		}
		if s.Run(false).TrueType != predict.TypeH {
			t.Errorf("at=%d: fresh probe not H", at)
		}
	}
	if slider.MaxOffsets() != 2*mem.PageSize {
		t.Errorf("MaxOffsets %d", slider.MaxOffsets())
	}
}

// TestIsolationResultString covers the report rendering.
func TestIsolationResultString(t *testing.T) {
	res := IsolationResult{Rows: []IsolationRow{
		{Predictor: "SSBP", Train: kernel.DomainUser, Probe: kernel.DomainVM, InPlace: true, Leaked: true},
	}}
	if res.String() == "" {
		t.Error("empty report")
	}
	if !res.Vulnerability1() {
		t.Error("an SSBP cross-domain leak with no PSFP leak is Vulnerability 1")
	}
	// A PSFP leak would falsify it.
	res.Rows = append(res.Rows, IsolationRow{Predictor: "PSFP",
		Train: kernel.DomainUser, Probe: kernel.DomainVM, Leaked: true})
	if res.Vulnerability1() {
		t.Error("a PSFP cross-domain leak contradicts the paper's finding")
	}
}

func TestParseSeq(t *testing.T) {
	in, err := ParseSeq("7n 1a, 2n")
	if err != nil {
		t.Fatal(err)
	}
	want := Seq(7, -1, 2)
	if len(in) != len(want) {
		t.Fatalf("len %d", len(in))
	}
	for i := range want {
		if in[i] != want[i] {
			t.Errorf("step %d", i)
		}
	}
	for _, bad := range []string{"7x", "zn a", "-3n"} {
		if _, err := ParseSeq(bad); err == nil {
			t.Errorf("ParseSeq(%q) should fail", bad)
		}
	}
	if out, err := ParseSeq(""); err != nil || len(out) != 0 {
		t.Error("empty sequence should parse to nothing")
	}
}
