package revng

import (
	"fmt"
	"strings"

	"zenspec/internal/asm"
	"zenspec/internal/harness"
	"zenspec/internal/kernel"
	"zenspec/internal/predict"
)

// SMTModeResult reproduces the Section III-D3 observation: the PSFP eviction
// threshold does not change between SMT and single-thread mode, so the
// predictor resources are duplicated per thread rather than competitively
// shared.
type SMTModeResult struct {
	SMTThreshold    int // smallest eviction-set size that evicts, SMT mode
	SingleThreshold int // same, single-thread mode
}

// Duplicated reports the paper's conclusion: the thresholds match.
func (r SMTModeResult) Duplicated() bool { return r.SMTThreshold == r.SingleThreshold }

func (r SMTModeResult) String() string {
	return fmt.Sprintf("Section III-D3 — PSFP eviction threshold: SMT mode %d, single-thread mode %d (duplicated resources: %v)",
		r.SMTThreshold, r.SingleThreshold, r.Duplicated())
}

// SMTMode measures the PSFP eviction threshold with the machine booted in
// SMT (2 hardware threads) and single-thread mode.
func SMTMode(cfg kernel.Config) SMTModeResult {
	threshold := func(threads int) int {
		for k := 8; k <= 16; k++ {
			tcfg := cfg
			tcfg.SMTThreads = threads
			if fig5PSFPTrial(tcfg, new(harness.Arena), k, 1) == 1 {
				return k
			}
		}
		return -1
	}
	return SMTModeResult{SMTThreshold: threshold(2), SingleThreshold: threshold(1)}
}

// AddrLeakResult demonstrates the second Section V-D side channel: the
// selection hash mixes physical-frame bits into an attacker-observable
// value, so an unprivileged process can learn physical-address relations
// between its own pages — information the kernel does not expose.
type AddrLeakResult struct {
	Pages     int
	Recovered int // page pairs whose frame-fold XOR was recovered correctly
}

func (r AddrLeakResult) String() string {
	return fmt.Sprintf("Section V-D — physical-address relation leak: recovered frame-fold XOR for %d/%d page pairs",
		r.Recovered, r.Pages)
}

// AddrLeak runs the experiment: the attacker trains one SSBP entry through a
// reference stld, then finds the colliding byte offset inside each of its
// executable pages. Since hash(frame<<12 | offset) = Fold12(frame) ^ offset
// for in-page offsets, the colliding offsets reveal Fold12(Fi) ^ Fold12(Fj)
// for every page pair — 12 bits of virtual-to-physical mapping information
// per pair, recovered without any privilege.
func AddrLeak(cfg kernel.Config, pages int) AddrLeakResult {
	res := AddrLeakResult{}

	type pageInfo struct {
		ok     bool
		offset int    // colliding byte offset of the LOAD instruction
		pfn    uint64 // ground truth
	}
	tmpl := asm.BuildStld(asm.StldOptions{})
	// Pages share the lab's sequential frame allocator, so trial p replays
	// the single-machine experiment up to its own page on a fresh machine:
	// sliders 0..p-1 are allocated (never probed) purely to reproduce the
	// frames page p would have received, then only page p is searched. That
	// keeps the result identical at any worker count.
	perPage := harness.Trials(harness.Workers(cfg.Parallelism), pages, func(p int) pageInfo {
		l := NewLab(cfg)
		// Reference entry with a known (to the experiment; unknown to the
		// attacker) hash.
		target := l.PlaceStld()
		var slider *Slider
		for q := 0; q <= p; q++ {
			slider = l.NewSlider(l.P, 1, tmpl)
		}
		target.Phi(Seq(7, -1, 7, -1, 7, -1)) // train C3=15
		_, found, ok := slider.SSBPCollisionSearch(target, 1)
		if !ok {
			return pageInfo{}
		}
		// The attacker observes the colliding load's page offset.
		loadVA := found.VA + uint64(found.Tmpl.LoadOff)
		ipa, err := l.P.IPA(loadVA)
		if err != nil {
			return pageInfo{}
		}
		return pageInfo{ok: true, offset: int(ipa & 0xfff), pfn: ipa >> 12}
	})
	var infos []pageInfo
	for _, in := range perPage {
		if in.ok {
			infos = append(infos, in)
		}
	}
	// For each pair (i, j): offset_i ^ offset_j == Fold12(Fi) ^ Fold12(Fj).
	for i := 0; i < len(infos); i++ {
		for j := i + 1; j < len(infos); j++ {
			res.Pages++
			leaked := uint16(infos[i].offset^infos[j].offset) & 0xfff
			truth := Fold12(infos[i].pfn) ^ Fold12(infos[j].pfn)
			if leaked == truth {
				res.Recovered++
			}
		}
	}
	return res
}

// AblationPoint is one configuration of a design-choice sweep.
type AblationPoint struct {
	Value     int
	Threshold int // PSFP eviction threshold measured at this configuration
}

// PSFPSizeAblation sweeps the PSFP capacity and re-measures the Fig 5
// eviction threshold — the experiment that would have localized the "12" if
// the hardware were configurable.
func PSFPSizeAblation(cfg kernel.Config, sizes []int) []AblationPoint {
	var out []AblationPoint
	for _, size := range sizes {
		tcfg := cfg
		tcfg.PredictorConfig = predict.Config{PSFPSize: size}
		threshold := -1
		for k := 1; k <= size+6; k++ {
			if fig5PSFPTrial(tcfg, new(harness.Arena), k, 1) == 1 {
				threshold = k
				break
			}
		}
		out = append(out, AblationPoint{Value: size, Threshold: threshold})
	}
	return out
}

// SSBPWaysAblation sweeps the SSBP physical capacity and re-measures the
// Fig 5 eviction rates at set sizes 16 and 32 — showing how the modeled
// 10-way store was fitted to the paper's curve.
func SSBPWaysAblation(cfg kernel.Config, ways []int, trials int) []SSBPWaysPoint {
	var out []SSBPWaysPoint
	for _, w := range ways {
		rate := func(k int) float64 {
			ev := 0
			for t := 0; t < trials; t++ {
				tcfg := cfg
				tcfg.Seed = cfg.Seed + int64(t*131+w)
				tcfg.PredictorConfig = predict.Config{SSBPWays: w}
				ev += fig5SSBPTrial(tcfg, new(harness.Arena), k, t)
			}
			return float64(ev) / float64(trials)
		}
		out = append(out, SSBPWaysPoint{Ways: w, RateAt16: rate(16), RateAt32: rate(32)})
	}
	return out
}

// SSBPWaysPoint is one configuration of the SSBP capacity sweep.
type SSBPWaysPoint struct {
	Ways     int
	RateAt16 float64
	RateAt32 float64
}

// AblationString renders a sweep.
func AblationString(name string, points []AblationPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s ablation:\n", name)
	for _, p := range points {
		fmt.Fprintf(&sb, "  %s=%d -> eviction threshold %d\n", name, p.Value, p.Threshold)
	}
	return sb.String()
}
