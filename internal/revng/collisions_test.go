package revng

import "testing"

func TestFig4StrideXOR(t *testing.T) {
	res := Fig4(baseCfg(), 5)
	if res.Pairs == 0 {
		t.Fatal("no colliding pairs mined")
	}
	if res.StrideXORok != res.Pairs {
		t.Errorf("%d/%d pairs satisfy the stride-12 XOR property, want all", res.StrideXORok, res.Pairs)
	}
	if res.String() == "" {
		t.Error("empty report")
	}
}

func TestFig5EvictionCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("eviction curves are slow")
	}
	res := Fig5(baseCfg(), nil, []int{8, 11, 12, 16, 32}, 12)
	point := func(ps []EvictionPoint, size int) float64 {
		for _, p := range ps {
			if p.SetSize == size {
				return p.Rate
			}
		}
		t.Fatalf("size %d missing", size)
		return 0
	}
	// PSFP: sharp step between 11 and 12.
	if r := point(res.PSFP, 8); r != 0 {
		t.Errorf("PSFP eviction at 8 = %v, want 0", r)
	}
	if r := point(res.PSFP, 11); r != 0 {
		t.Errorf("PSFP eviction at 11 = %v, want 0", r)
	}
	if r := point(res.PSFP, 12); r != 1 {
		t.Errorf("PSFP eviction at 12 = %v, want 1", r)
	}
	// SSBP: gradual, >50% at 16, high at 32.
	if r := point(res.SSBP, 16); r <= 0.4 {
		t.Errorf("SSBP eviction at 16 = %v, want > 0.4", r)
	}
	if r := point(res.SSBP, 32); r < 0.7 {
		t.Errorf("SSBP eviction at 32 = %v, want >= 0.7", r)
	}
	if a, b := point(res.SSBP, 8), point(res.SSBP, 32); a >= b {
		t.Errorf("SSBP curve not increasing: %v at 8, %v at 32", a, b)
	}
	if res.String() == "" {
		t.Error("empty report")
	}
}

func TestFig7CollisionFinding(t *testing.T) {
	if testing.Short() {
		t.Skip("collision sweeps are slow")
	}
	res := Fig7(baseCfg(), 8, 4)
	if len(res.SSBPAttempts) < 6 {
		t.Fatalf("only %d/8 SSBP searches succeeded", len(res.SSBPAttempts))
	}
	// Attempts are bounded by the constructive-existence proof: at most 4096
	// per page, and with byte sliding the window is 2 pages.
	for _, a := range res.SSBPAttempts {
		if a <= 0 || a > 2*4096 {
			t.Errorf("attempts %d out of range", a)
		}
	}
	if res.SSBPMean < 200 || res.SSBPMean > 5000 {
		t.Errorf("SSBP mean attempts %.0f implausible (paper: ~2200)", res.SSBPMean)
	}
	// PSFP: equal distance mostly findable; different distance mostly not.
	if res.PSFPSameDistanceFound < res.PSFPSameDistanceTried-1 {
		t.Errorf("same-distance PSFP collisions: %d/%d", res.PSFPSameDistanceFound, res.PSFPSameDistanceTried)
	}
	if res.PSFPDiffDistanceFound != 0 {
		t.Errorf("different-distance PSFP collisions: %d/%d, want 0",
			res.PSFPDiffDistanceFound, res.PSFPDiffDistanceTried)
	}
	if res.String() == "" {
		t.Error("empty report")
	}
}
