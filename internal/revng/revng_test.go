package revng

import (
	"testing"

	"zenspec/internal/kernel"
	"zenspec/internal/predict"
)

func baseCfg() kernel.Config { return kernel.Config{Seed: 42} }

func TestFrameWithHash(t *testing.T) {
	seen := map[uint64]bool{}
	for n := uint64(0); n < 200; n++ {
		for _, target := range []uint16{0, 0x123, 0xfff} {
			f := FrameWithHash(n, target)
			if Fold12(f) != target {
				t.Fatalf("FrameWithHash(%d, %#x) folds to %#x", n, target, Fold12(f))
			}
			if seen[f] {
				t.Fatalf("frame %#x duplicated", f)
			}
			seen[f] = true
			// The frame's hash contribution must survive the page shift.
			if predict.Hash48(f<<12) != target {
				t.Fatalf("Hash48(frame<<12) = %#x, want %#x", predict.Hash48(f<<12), target)
			}
		}
	}
}

func TestPlaceStldHashControlsBothHashes(t *testing.T) {
	l := NewLab(baseCfg())
	for _, tc := range [][2]uint16{{0x111, 0x222}, {0, 0}, {0xfff, 0x001}} {
		s := l.PlaceStldHash(tc[0], tc[1])
		if s.StoreHash != tc[0] || s.LoadHash != tc[1] {
			t.Errorf("placed hashes %#x/%#x, want %#x/%#x", s.StoreHash, s.LoadHash, tc[0], tc[1])
		}
	}
}

func TestClassifierSeparatesClasses(t *testing.T) {
	l := NewLab(baseCfg())
	s := l.PlaceStld()
	// Every observation's timing class must agree with the ground truth.
	for i, ob := range s.Phi(Seq(1, -1, 7, -1, -6, 1, 10)) {
		if ob.Class != ClassOf(ob.TrueType) {
			t.Errorf("step %d: class %v but true type %v (%d cycles)", i, ob.Class, ob.TrueType, ob.Cycles)
		}
	}
}

func TestPhiThroughLabMatchesPaper(t *testing.T) {
	l := NewLab(baseCfg())
	s := l.PlaceStld()
	obs := s.Phi(Seq(1, -1, 7))
	got := TypesString(Types(obs))
	if got != "1H 1G 4E 3H" {
		t.Errorf("φ(n,a,7n) = %s, want 1H 1G 4E 3H", got)
	}
}

func TestTypesString(t *testing.T) {
	types := []predict.ExecType{predict.TypeH, predict.TypeH, predict.TypeG, predict.TypeE}
	if got := TypesString(types); got != "2H 1G 1E" {
		t.Errorf("TypesString = %q", got)
	}
	if TypesString(nil) != "" {
		t.Error("empty TypesString")
	}
}

func TestSeq(t *testing.T) {
	s := Seq(2, -1, 1)
	want := []bool{false, false, true, false}
	if len(s) != len(want) {
		t.Fatalf("len %d", len(s))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("Seq[%d] = %v", i, s[i])
		}
	}
}

func TestFig2(t *testing.T) {
	res := Fig2(baseCfg())
	if res.TimingAgree < 0.999 {
		t.Errorf("timing agreement %.3f, want ~1 in a deterministic sim", res.TimingAgree)
	}
	byType := map[predict.ExecType]Fig2Row{}
	for _, row := range res.Rows {
		byType[row.Type] = row
	}
	// (40n,40a)x2 must produce at least H, G, E and the trained aliasing
	// types; rollback rows must exceed 240 cycles.
	for _, want := range []predict.ExecType{predict.TypeH, predict.TypeG, predict.TypeE} {
		if byType[want].Count == 0 {
			t.Errorf("type %v not observed: %v", want, res.Rows)
		}
	}
	if g := byType[predict.TypeG]; g.MeanCycles < 240 {
		t.Errorf("G mean %d, want > 240", g.MeanCycles)
	}
	// Rollback types refetch: more ITLB hits than the fast type.
	hRow, gRow := byType[predict.TypeH], byType[predict.TypeG]
	if gRow.PMCPerExec["L1 TLB Hits for Instruction Fetch 4K"] <= hRow.PMCPerExec["L1 TLB Hits for Instruction Fetch 4K"] {
		t.Error("rollback type should show extra instruction fetches")
	}
	if res.String() == "" {
		t.Error("empty report")
	}
}

func TestTable1StateMachineMatches(t *testing.T) {
	res := Table1(baseCfg(), 30, 48)
	if res.MatchRate < 0.998 {
		t.Errorf("match rate %.4f, want >= 0.998 (the paper's bound)", res.MatchRate)
	}
	if res.String() == "" {
		t.Error("empty report")
	}
}

func TestTable2Dependences(t *testing.T) {
	res := Table2(baseCfg())
	want := map[string][2]bool{ // {store, load}
		"C0": {true, true},
		"C1": {true, true},
		"C2": {true, true},
		"C3": {false, true},
		"C4": {false, true},
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		w := want[row.Counter]
		if row.DependsOnStore != w[0] || row.DependsOnLoad != w[1] {
			t.Errorf("%s: store=%v load=%v, want %v/%v (%v)",
				row.Counter, row.DependsOnStore, row.DependsOnLoad, w[0], w[1], row.Observed)
		}
	}
	if res.String() == "" {
		t.Error("empty report")
	}
}

func TestSliderFindsSSBPCollision(t *testing.T) {
	l := NewLab(baseCfg())
	target := l.PlaceStldHash(0x321, 0x654)
	slider := l.NewSlider(l.P, 2, target.Tmpl)
	attempts, found, ok := slider.SSBPCollisionSearch(target, 1)
	if !ok {
		t.Fatal("no collision found in 2 pages")
	}
	if found.LoadHash != target.LoadHash {
		t.Errorf("found load hash %#x, target %#x", found.LoadHash, target.LoadHash)
	}
	if found.LoadIPA == target.LoadIPA {
		t.Error("collision must be at a different IPA (out-of-place)")
	}
	if attempts <= 0 || attempts > 2*4096 {
		t.Errorf("attempts = %d", attempts)
	}
}

func TestIsolationMatrix(t *testing.T) {
	res := Isolation(baseCfg())
	if !res.Vulnerability1() {
		t.Fatalf("Vulnerability 1 not reproduced:\n%s", res)
	}
	for _, row := range res.Rows {
		if row.Predictor == "PSFP" && row.Leaked {
			t.Errorf("PSFP leaked %v->%v (in-place=%v); the paper found it isolated",
				row.Train, row.Probe, row.InPlace)
		}
		if row.Predictor == "SSBP" && !row.Leaked {
			t.Errorf("SSBP did not leak %v->%v (in-place=%v); the paper found it leaks",
				row.Train, row.Probe, row.InPlace)
		}
	}
}

func TestIsolationWithSSBPFlushMitigation(t *testing.T) {
	cfg := baseCfg()
	cfg.FlushSSBPOnSwitch = true
	res := Isolation(cfg)
	for _, row := range res.Rows {
		if row.Leaked {
			t.Errorf("%s leaked %v->%v with flush-on-switch mitigation", row.Predictor, row.Train, row.Probe)
		}
	}
}
