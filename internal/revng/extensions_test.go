package revng

import "testing"

// TestSMTModeDuplication reproduces Section III-D3: the PSFP eviction
// threshold is the same in SMT and single-thread mode, indicating duplicated
// (not competitively shared) predictor resources.
func TestSMTModeDuplication(t *testing.T) {
	res := SMTMode(baseCfg())
	if res.SMTThreshold != 12 || res.SingleThreshold != 12 {
		t.Errorf("thresholds %d/%d, want 12/12", res.SMTThreshold, res.SingleThreshold)
	}
	if !res.Duplicated() {
		t.Error("resources should read as duplicated")
	}
	if res.String() == "" {
		t.Error("empty report")
	}
}

// TestAddrLeak reproduces the Section V-D observation that the selection
// hash leaks physical-address information: every recovered page-pair XOR
// matches the ground-truth frame folds.
func TestAddrLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("page sweep is slow")
	}
	res := AddrLeak(baseCfg(), 4)
	if res.Pages < 3 {
		t.Fatalf("only %d page pairs measured", res.Pages)
	}
	if res.Recovered != res.Pages {
		t.Errorf("recovered %d/%d frame-fold XORs", res.Recovered, res.Pages)
	}
}

// TestPSFPSizeAblation: the eviction threshold tracks the configured PSFP
// capacity exactly — the design parameter the Fig 5 experiment pins down.
func TestPSFPSizeAblation(t *testing.T) {
	points := PSFPSizeAblation(baseCfg(), []int{4, 8, 12, 16})
	for _, p := range points {
		if p.Threshold != p.Value {
			t.Errorf("PSFP size %d: threshold %d, want %d", p.Value, p.Threshold, p.Value)
		}
	}
	if AblationString("psfp-size", points) == "" {
		t.Error("empty report")
	}
}

// TestSSBPWaysAblation: the eviction curve tracks the configured physical
// capacity — larger stores evict later (the Fig 5 fitting knob).
func TestSSBPWaysAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity sweep is slow")
	}
	points := SSBPWaysAblation(baseCfg(), []int{6, 10, 20}, 10)
	if len(points) != 3 {
		t.Fatalf("points: %d", len(points))
	}
	// Rates at a fixed set size fall as capacity grows.
	if !(points[0].RateAt16 >= points[1].RateAt16 && points[1].RateAt16 >= points[2].RateAt16) {
		t.Errorf("eviction@16 not monotone in capacity: %+v", points)
	}
	// The default 10-way store matches the paper's anchors.
	if points[1].RateAt16 <= 0.3 {
		t.Errorf("10-way eviction@16 = %v, want the paper's >50%% ballpark", points[1].RateAt16)
	}
	if points[1].RateAt32 < 0.7 {
		t.Errorf("10-way eviction@32 = %v, want ~90%%", points[1].RateAt32)
	}
}
