package revng

import (
	"fmt"
	"strings"

	"zenspec/internal/harness"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
)

// IsolationRow is one cell of the Section IV-A experiment matrix: predictor
// state is trained in one security domain and probed from another.
type IsolationRow struct {
	Predictor string // "PSFP" or "SSBP"
	Train     kernel.Domain
	Probe     kernel.Domain
	InPlace   bool // shared executable page (in-place) vs hash collision (out-of-place)
	Leaked    bool // the probe observed the trained state
}

// IsolationResult is the full matrix.
type IsolationResult struct {
	Rows []IsolationRow
}

// Vulnerability1 reports whether the matrix exhibits the paper's
// Vulnerability 1: SSBP leaks across at least one domain pair while PSFP
// does not.
func (r IsolationResult) Vulnerability1() bool {
	ssbpLeaks, psfpLeaks := false, false
	for _, row := range r.Rows {
		if row.Train == row.Probe {
			continue
		}
		if row.Predictor == "SSBP" && row.Leaked {
			ssbpLeaks = true
		}
		if row.Predictor == "PSFP" && row.Leaked {
			psfpLeaks = true
		}
	}
	return ssbpLeaks && !psfpLeaks
}

func (r IsolationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Section IV-A — predictor isolation between security domains\n")
	fmt.Fprintf(&sb, "%-6s %-8s %-8s %-10s %s\n", "pred", "train", "probe", "placement", "leaked")
	for _, row := range r.Rows {
		place := "out-of-place"
		if row.InPlace {
			place = "in-place"
		}
		fmt.Fprintf(&sb, "%-6s %-8s %-8s %-10s %v\n", row.Predictor, row.Train, row.Probe, place, row.Leaked)
	}
	fmt.Fprintf(&sb, "Vulnerability 1 reproduced: %v\n", r.Vulnerability1())
	return sb.String()
}

// PrepData maps and warms the lab's data region in an arbitrary process so
// its stld runs are cache-hit bound like the lab process's.
func (l *Lab) PrepData(p *kernel.Process) {
	p.MapData(l.dataVA, 4*mem.PageSize)
	p.WarmLine(l.StoreAddr())
	p.WarmLine(l.NonAliasAddr())
}

// Isolation runs the full Section IV-A matrix over the three security
// domains, in-place (shared executable page) and out-of-place (an stld at a
// different IPA whose hash collides). Every cell is an independent machine,
// so the matrix runs on the harness worker pool in a fixed cell order.
func Isolation(cfg kernel.Config) IsolationResult {
	type spec struct {
		pred         string
		train, probe kernel.Domain
		inPlace      bool
	}
	var specs []spec
	domains := []kernel.Domain{kernel.DomainUser, kernel.DomainVM, kernel.DomainKernel}
	for _, train := range domains {
		for _, probe := range domains {
			if train == probe {
				continue
			}
			for _, inPlace := range []bool{true, false} {
				specs = append(specs,
					spec{"PSFP", train, probe, inPlace},
					spec{"SSBP", train, probe, inPlace})
			}
		}
	}
	rows := harness.Trials(harness.Workers(cfg.Parallelism), len(specs), func(i int) IsolationRow {
		s := specs[i]
		return isolationTrial(cfg, s.pred, s.train, s.probe, s.inPlace)
	})
	return IsolationResult{Rows: rows}
}

func isolationTrial(cfg kernel.Config, pred string, train, probe kernel.Domain, inPlace bool) IsolationRow {
	l := NewLab(cfg)
	victim := l.K.NewProcess("victim", train)
	attacker := l.K.NewProcess("attacker", probe)
	l.PrepData(victim)
	l.PrepData(attacker)

	// Victim stld, placed with controlled hashes so the out-of-place
	// attacker can collide deterministically.
	vStld := l.PlaceStldHashIn(victim, 0x0aa, 0x0bb)

	var aStld *Stld
	if inPlace {
		// Shared executable page: same IPA (possibly different IVA).
		const shareVA = 0x7700000
		if err := attacker.MmapShared(shareVA, victim, vStld.VA&^uint64(mem.PageMask),
			uint64(len(vStld.Tmpl.Code)), mem.PermR|mem.PermX); err != nil {
			panic(err)
		}
		off := vStld.VA & uint64(mem.PageMask)
		aStld = l.finish(attacker, 0, shareVA+off, vStld.Tmpl)
	} else {
		// Out-of-place: the attacker's own stld at a colliding hash.
		aStld = l.PlaceStldHashIn(attacker, 0x0aa, 0x0bb)
	}

	// Train in the victim domain.
	if pred == "PSFP" {
		vStld.Phi(Seq(7, -1)) // C0=4, C3=0
	} else {
		vStld.Phi(Seq(7, -1, 7, -1, 7, -1)) // C3=15
	}

	// Probe from the attacker domain: any stall among the first probes means
	// the trained state is visible.
	obs := aStld.Phi(Seq(4))
	leaked := false
	for _, o := range obs {
		if o.Class == ClassStall {
			leaked = true
		}
	}
	return IsolationRow{Predictor: pred, Train: train, Probe: probe, InPlace: inPlace, Leaked: leaked}
}

// PlaceStldHashIn is PlaceStldHash for an arbitrary process: the frames are
// allocated through the lab process and shared into p at the same VA.
func (l *Lab) PlaceStldHashIn(p *kernel.Process, storeHash, loadHash uint16) *Stld {
	s := l.PlaceStldHash(storeHash, loadHash)
	if p == l.P {
		return s
	}
	// Re-map the same frames into the target process at the same VA.
	if err := p.MmapShared(s.VA&^uint64(mem.PageMask), l.P, s.VA&^uint64(mem.PageMask),
		uint64(len(s.Tmpl.Code)), mem.PermR|mem.PermX); err != nil {
		panic(err)
	}
	return l.finish(p, 0, s.VA, s.Tmpl)
}
