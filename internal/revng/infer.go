package revng

import (
	"fmt"
	"strings"

	"zenspec/internal/harness"
	"zenspec/internal/kernel"
)

// InferredParams are the design constants of Section III, recovered from
// timing observations alone — the condensed form of the paper's iterative
// state-machine fitting. Each field corresponds to a number the paper had to
// discover without documentation.
type InferredParams struct {
	// C0Init is how many stalls follow a single rollback before the pair
	// reads fast again (the paper: C0 is set to 4 by a type G).
	C0Init int
	// C3Saturated is the stall count after the predictor's hard retrain
	// threshold is crossed (the paper: C3 jumps to 15 when C4 reaches 3).
	C3Saturated int
	// RollbacksToSaturate is how many rollbacks it takes before the long
	// drain appears (the paper: C4 counts to 3).
	RollbacksToSaturate int
	// AliasRunsToPSF is how many aliasing executions enable predictive
	// store forwarding from a trained state (C1: 16 down past 12).
	AliasRunsToPSF int
	// PSFPEvictionThreshold is the smallest eviction set that always evicts
	// a trained entry (the paper: 12).
	PSFPEvictionThreshold int
}

func (p InferredParams) String() string {
	var sb strings.Builder
	sb.WriteString("Inferred predictor parameters (from timing alone):\n")
	fmt.Fprintf(&sb, "  stalls after one rollback (C0 init)        %d\n", p.C0Init)
	fmt.Fprintf(&sb, "  rollbacks until hard retrain (C4 limit)    %d\n", p.RollbacksToSaturate)
	fmt.Fprintf(&sb, "  stalls after hard retrain (C3 value)       %d\n", p.C3Saturated)
	fmt.Fprintf(&sb, "  aliasing runs to enable PSF (C1 window)    %d\n", p.AliasRunsToPSF)
	fmt.Fprintf(&sb, "  PSFP eviction threshold (capacity)         %d\n", p.PSFPEvictionThreshold)
	return sb.String()
}

// Infer recovers the predictor's design constants the way Section III-B
// does: drive chosen sequences, observe only timing classes, and count.
func Infer(cfg kernel.Config) InferredParams {
	var out InferredParams
	l := NewLab(cfg)

	// C0Init: one rollback, then count stalls until fast.
	s := l.PlaceStld()
	s.Run(true) // G
	out.C0Init = countStallsUntilFast(s, 40)

	// RollbacksToSaturate and C3Saturated: repeat (rollback, drain) and
	// watch for the drain length to jump.
	s2 := l.PlaceStld()
	base := -1
	for round := 1; round <= 8; round++ {
		s2.Run(true) // G (from a drained state)
		n := countStallsUntilFast(s2, 64)
		if base == -1 {
			base = n
			continue
		}
		if n > base+4 {
			out.RollbacksToSaturate = round
			// The long drain includes the C0 component; the C3 value is the
			// total stall count observed.
			out.C3Saturated = n
			break
		}
	}

	// AliasRunsToPSF: train, then count aliasing runs until the timing
	// drops to the forward level.
	s3 := l.PlaceStld()
	s3.Phi(Seq(7, -1)) // trained, PSF off (C1=16)
	for i := 1; i <= 16; i++ {
		if s3.Run(true).Class == ClassForward {
			out.AliasRunsToPSF = i
			break
		}
	}

	// PSFP capacity: the Fig 5 step.
	for k := 2; k <= 24; k++ {
		if fig5PSFPTrial(cfg, new(harness.Arena), k, 1) == 1 {
			out.PSFPEvictionThreshold = k
			break
		}
	}
	return out
}

// countStallsUntilFast counts consecutive non-fast runs before two fast
// reads in a row, bounded by maxRuns.
func countStallsUntilFast(s *Stld, maxRuns int) int {
	stalls, fast := 0, 0
	for i := 0; i < maxRuns && fast < 2; i++ {
		if s.Run(false).Class == ClassFast {
			fast++
		} else {
			fast = 0
			stalls++
		}
	}
	return stalls
}
