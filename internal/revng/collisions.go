package revng

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"zenspec/internal/asm"
	"zenspec/internal/harness"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/predict"
)

// Slider implements the paper's code-sliding technique (Fig 3): stld machine
// code is copied into executable pages at successive byte offsets, and each
// placement is probed for a predictor collision with a trained target.
type Slider struct {
	lab   *Lab
	proc  *kernel.Process
	tmpl  asm.Stld
	va    uint64 // base of the sliding window
	pages int
}

// NewSlider maps `pages` executable pages (kernel-chosen frames, as an
// unprivileged attacker would get) to slide stld code through.
func (l *Lab) NewSlider(p *kernel.Process, pages int, tmpl asm.Stld) *Slider {
	va := l.nextVA
	size := uint64(pages+1) * mem.PageSize // +1 so slid code may spill over
	l.nextVA += size + mem.PageSize
	// Executable and writable: the attacker fills it with stld copies.
	for off := uint64(0); off < size; off += mem.PageSize {
		p.AS.Map(va+off, l.K.Phys().AllocFrame(), mem.PermRWX)
	}
	return &Slider{lab: l, proc: p, tmpl: tmpl, va: va, pages: pages}
}

// Place writes the stld at byte offset `at` within the sliding window and
// returns a runnable instance.
func (s *Slider) Place(at int) *Stld {
	va := s.va + uint64(at)
	s.proc.WriteBytes(va, s.tmpl.Code)
	inst := s.lab.finish(s.proc, 0, va, s.tmpl)
	return inst
}

// MaxOffsets returns the number of byte positions available.
func (s *Slider) MaxOffsets() int { return s.pages * mem.PageSize }

// Tmpl returns the stld template being slid.
func (s *Slider) Tmpl() asm.Stld { return s.tmpl }

// SSBPCollisionSearch slides until it finds an stld whose load shares the
// target's SSBP entry, detected purely by timing: the target is trained to
// C3=15, so a colliding prober stalls (type F) where a non-colliding one is
// fast (type H). It returns the number of attempts, or ok=false if the
// window is exhausted.
func (s *Slider) SSBPCollisionSearch(target *Stld, step int) (attempts int, found *Stld, ok bool) {
	if step <= 0 {
		step = 1
	}
	target.Phi(Seq(7, -1, 7, -1, 7, -1)) // C3=15, C4=3
	for at := 0; at+len(s.tmpl.Code) < s.MaxOffsets(); at += step {
		attempts++
		probe := s.Place(at)
		ob := probe.Run(false)
		if ob.Class == ClassStall {
			if s.confirmSSBP(target, probe) {
				return attempts, probe, true
			}
		}
	}
	return attempts, nil, false
}

// confirmSSBP separates a true SSBP collision from a spuriously trained
// probe entry when the machine runs under fault injection (always true on a
// quiet machine, keeping the clean search untouched). Only a collider
// shares the target's entry, so after draining the probe to fast, a target
// retrain brings the stall back for the collider alone.
func (s *Slider) confirmSSBP(target, probe *Stld) bool {
	if !s.lab.faulted {
		return true
	}
	for i := 0; i < 40 && probe.Run(false).Class != ClassFast; i++ {
	}
	target.Phi(Seq(7, -1, 7, -1, 7, -1))
	return probe.Run(false).Class == ClassStall
}

// PSFPCollisionSearch slides until it finds an stld selecting the target's
// PSFP entry (both store and load hashes must match). The target is trained
// with a single (7n, a) — C0=4 with C3 still 0 — so a colliding prober
// stalls while everything else is fast.
func (s *Slider) PSFPCollisionSearch(target *Stld, step int) (attempts int, found *Stld, ok bool) {
	if step <= 0 {
		step = 1
	}
	target.Phi(Seq(7, -1)) // C0=4, C3=0 (first G leaves C4=1)
	// Under fault injection the target's PSFP entry has a lifetime of ~1/
	// PSFPEvictRate run boundaries — far shorter than a multi-page sweep —
	// so the search refreshes it periodically, and every stall candidate is
	// cross-examined against a canary (see confirmPSFP). The canary shares
	// only the target's load hash: it selects the target's SSBP entry but
	// can never select its PSFP entry.
	var canary *Stld
	if s.lab.faulted {
		canary = s.lab.PlaceStldHash(target.StoreHash^0x5a5, target.LoadHash)
	}
	for at := 0; at+len(s.tmpl.Code) < s.MaxOffsets(); at += step {
		if canary != nil && attempts%64 == 0 && attempts > 0 {
			// Drain the SSBP side first so the refresh below can only be
			// predicted through C0: a correctly predicted aliasing run
			// (type B) keeps C0 alive without the rollback whose G would
			// ratchet C4 toward saturation; a G happens only when an
			// injected eviction actually killed the entry.
			for i := 0; i < 20 && canary.Run(false).Class != ClassFast; i++ {
			}
			target.Run(true)
		}
		attempts++
		probe := s.Place(at)
		ob := probe.Run(false)
		if ob.Class == ClassStall {
			if s.confirmPSFP(target, probe, canary) {
				return attempts, probe, true
			}
		}
	}
	return attempts, nil, false
}

// confirmPSFP is the PSFP analog of confirmSSBP: drain the probe's entry,
// refresh the target's, and require the stall back. Without it, every
// spuriously trained pair in the window reads as a "collision" — at
// fault-plan rates that is near-certain over a 16-page sliding search. The
// canary (nil on a quiet machine, where the raw stall is trusted) is the
// search's load-hash-only stld, used to silence the SSBP entry: fault-
// forced retrain rollbacks eventually saturate the target's C4 and arm
// C3=15, after which every probe sharing just the load hash stalls exactly
// like a PSFP collider — only a stall the canary cannot drain away is C0's.
func (s *Slider) confirmPSFP(target, probe, canary *Stld) bool {
	if canary == nil {
		return true
	}
	// A stall here may come from the probe's own spuriously trained SSBP
	// entry (C3 up to 15), not just a PSFP C0 — drain long enough for both.
	for i := 0; i < 40 && probe.Run(false).Class != ClassFast; i++ {
	}
	// Drain the SSBP side, refresh C0 (type B if alive, G if lost), drain
	// the SSBP side again (the G may have armed C3), then re-probe: only
	// the target's PSFP C0 can stall the probe now.
	for i := 0; i < 20 && canary.Run(false).Class != ClassFast; i++ {
	}
	target.Run(true)
	for i := 0; i < 20 && canary.Run(false).Class != ClassFast; i++ {
	}
	return probe.Run(false).Class == ClassStall
}

// Fig4Result demonstrates the hash's mathematical characteristics: for every
// colliding pair found by sliding, the XOR of the two load IPAs folds to
// zero at bit stride 12.
type Fig4Result struct {
	Pairs       int
	StrideXORok int
}

// Fig4 mines colliding load-IPA pairs with the slider and checks the
// stride-12 XOR property. Targets are independent machines, so they run on
// the harness worker pool.
func Fig4(cfg kernel.Config, targets int) Fig4Result {
	type cell struct{ pair, xorOK bool }
	cells := harness.Trials(harness.Workers(cfg.Parallelism), targets, func(int) cell {
		l := NewLab(cfg)
		target := l.PlaceStld()
		slider := l.NewSlider(l.P, 2, asm.BuildStld(asm.StldOptions{}))
		_, found, ok := slider.SSBPCollisionSearch(target, 1)
		if !ok {
			return cell{}
		}
		return cell{pair: true, xorOK: Fold12(target.LoadIPA^found.LoadIPA) == 0}
	})
	var res Fig4Result
	for _, c := range cells {
		if c.pair {
			res.Pairs++
		}
		if c.xorOK {
			res.StrideXORok++
		}
	}
	return res
}

func (r Fig4Result) String() string {
	return fmt.Sprintf("Fig 4 — %d/%d colliding pairs have stride-12 XOR folding to zero", r.StrideXORok, r.Pairs)
}

// EvictionPoint is one (set size, eviction rate) sample of Fig 5.
type EvictionPoint struct {
	SetSize int
	Rate    float64
}

// Fig5Result reproduces Fig 5: eviction rate versus eviction-set size for
// PSFP and SSBP.
type Fig5Result struct {
	PSFP []EvictionPoint
	SSBP []EvictionPoint
}

// Fig5 measures the eviction curves. PSFP shows a sharp step between 11 and
// 12; SSBP rises gradually past 50% at 16 and ~90% at 32. Every (size,
// trial) cell is an independent machine with a seed derived only from the
// cell, so the grid runs flattened on the harness worker pool.
func Fig5(cfg kernel.Config, pool *harness.ArenaPool, sizes []int, trials int) Fig5Result {
	type cell struct{ psfp, ssbp int }
	cells := harness.TrialsArena(pool, harness.Workers(cfg.Parallelism), len(sizes)*trials, func(c int, a *harness.Arena) cell {
		k, trial := sizes[c/trials], c%trials
		tcfg := cfg
		tcfg.Seed = cfg.Seed + int64(trial*1000+k)
		return cell{fig5PSFPTrial(tcfg, a, k, trial), fig5SSBPTrial(tcfg, a, k, trial)}
	})
	var res Fig5Result
	for si, k := range sizes {
		evPSFP, evSSBP := 0, 0
		for trial := 0; trial < trials; trial++ {
			evPSFP += cells[si*trials+trial].psfp
			evSSBP += cells[si*trials+trial].ssbp
		}
		res.PSFP = append(res.PSFP, EvictionPoint{k, float64(evPSFP) / float64(trials)})
		res.SSBP = append(res.SSBP, EvictionPoint{k, float64(evSSBP) / float64(trials)})
	}
	return res
}

// fig5PSFPTrial follows the paper's protocol: train a base entry, clear the
// shared C3 through a same-load-hash drainer, prime with k random-hash
// stlds, and probe with (5n): stalls mean the base survived.
func fig5PSFPTrial(cfg kernel.Config, a *harness.Arena, k, trial int) int {
	l := NewLab(cfg)
	r := rand.New(rand.NewSource(int64(trial)*7919 + int64(k)))
	base := l.PlaceStldHash(0x0f0, 0x0e0)
	drainer := l.PlaceStldHash(0x0f1, 0x0e0) // same load hash, other store hash
	base.Phi(Seq(7, -1, 7, -1, 7, -1))       // C0=4, C3=15
	drainer.Phi(Seq(40))                     // clears C3 without touching base PSFP
	used := a.BoolMap32()
	used[0x0f000e0] = true
	used[0x0f100e0] = true
	for i := 0; i < k; i++ {
		var sh, lh uint16
		for {
			sh, lh = uint16(r.Intn(predict.HashEntries)), uint16(r.Intn(predict.HashEntries))
			key := uint32(sh)<<16 | uint32(lh)
			if !used[key] && lh != 0x0e0 {
				used[key] = true
				break
			}
		}
		prime := l.PlaceStldHash(sh, lh)
		prime.Run(true) // one G allocates the PSFP entry
	}
	obs := base.Phi(Seq(5))
	stalls := 0
	for _, o := range obs {
		if o.Class == ClassStall {
			stalls++
		}
	}
	if stalls == 0 {
		return 1 // evicted
	}
	return 0
}

// fig5SSBPTrial trains the base SSBP entry to C3=15, primes k random
// entries, and probes: a fast first probe means the entry was evicted.
func fig5SSBPTrial(cfg kernel.Config, a *harness.Arena, k, trial int) int {
	l := NewLab(cfg)
	r := rand.New(rand.NewSource(int64(trial)*104729 + int64(k)))
	base := l.PlaceStldHash(0x0f0, 0x0e0)
	base.Phi(Seq(7, -1, 7, -1, 7, -1)) // C3=15
	// Drain C0 so the probe outcome depends on C3 only (the F runs also
	// drain C3 a little; plenty remains).
	for i := 0; i < 4; i++ {
		base.Run(false)
	}
	used := a.BoolMap32()
	used[0x0e0] = true
	for i := 0; i < k; i++ {
		var lh uint16
		for {
			lh = uint16(r.Intn(predict.HashEntries))
			if !used[uint32(lh)] {
				used[uint32(lh)] = true
				break
			}
		}
		prime := l.PlaceStldHash(uint16(r.Intn(predict.HashEntries)), lh)
		prime.Run(true) // G allocates the SSBP entry
	}
	// First run re-warms the ITLB (the priming walked many code pages);
	// the second run is the measurement. Both leave the C3 verdict intact:
	// an evicted entry reads fast twice, a surviving one stalls twice.
	base.Run(false)
	if !l.faulted {
		ob := base.Run(false)
		if ob.Class == ClassFast {
			return 1 // evicted
		}
		return 0
	}
	// Under a fault plan a single reading against the two-cycle-wide fast
	// boundary is hopeless: injected timer jitter alone is wider than that.
	// Take the minimum of three readings (cancels additive jitter; a
	// surviving entry stalls all three, its C3 is ~11 here) and split at the
	// forward/stall boundary, which sits tens of cycles clear of both sides.
	best := base.Run(false).Cycles
	for i := 0; i < 2; i++ {
		if c := base.Run(false).Cycles; c < best {
			best = c
		}
	}
	if best <= l.Cls.ForwardMax {
		return 1 // evicted
	}
	return 0
}

func (r Fig5Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig 5 — eviction rate vs eviction-set size\n")
	fmt.Fprintf(&sb, "%6s %8s %8s\n", "size", "PSFP", "SSBP")
	for i := range r.PSFP {
		fmt.Fprintf(&sb, "%6d %7.0f%% %7.0f%%\n", r.PSFP[i].SetSize, 100*r.PSFP[i].Rate, 100*r.SSBP[i].Rate)
	}
	return sb.String()
}

// Fig7Result reproduces Fig 7: the distribution of collision-finding
// attempts for SSBP and the distance dependence for PSFP.
type Fig7Result struct {
	SSBPAttempts []int // per-trial attempts
	SSBPMean     float64
	// SSBPHistogram buckets the attempts into 512-attempt bins (the paper
	// plots the distribution; ours is bounded by 4096 per page).
	SSBPHistogram []int
	// PSFP: attempts by distance delta (attacker distance - victim distance,
	// in bytes); -1 attempts means not found within the window.
	PSFPSameDistanceFound int
	PSFPSameDistanceTried int
	PSFPDiffDistanceFound int
	PSFPDiffDistanceTried int
}

// Fig7 runs the collision-finding measurements. SSBP trials and PSFP trials
// are each independent machines seeded from the trial index, so both grids
// run on the harness worker pool; the distribution statistics are folded in
// trial order afterwards.
func Fig7(cfg kernel.Config, ssbpTrials, psfpTrials int) Fig7Result {
	workers := harness.Workers(cfg.Parallelism)

	// SSBP: byte-granular sliding through fresh attacker pages, random
	// victim placement.
	type ssbpCell struct {
		attempts int
		ok       bool
	}
	ssbp := harness.Trials(workers, ssbpTrials, func(trial int) ssbpCell {
		tcfg := cfg
		tcfg.Seed = cfg.Seed + int64(trial)
		l := NewLab(tcfg)
		r := rand.New(rand.NewSource(int64(trial)*31 + 7))
		target := l.PlaceStldRandom(r.Intn)
		slider := l.NewSlider(l.P, 2, asm.BuildStld(asm.StldOptions{}))
		attempts, _, ok := slider.SSBPCollisionSearch(target, 1)
		return ssbpCell{attempts, ok}
	})
	var res Fig7Result
	for _, c := range ssbp {
		if c.ok {
			res.SSBPAttempts = append(res.SSBPAttempts, c.attempts)
		}
	}
	var sum int
	res.SSBPHistogram = make([]int, 17)
	for _, a := range res.SSBPAttempts {
		sum += a
		bin := a / 512
		if bin >= len(res.SSBPHistogram) {
			bin = len(res.SSBPHistogram) - 1
		}
		res.SSBPHistogram[bin]++
	}
	if len(res.SSBPAttempts) > 0 {
		res.SSBPMean = float64(sum) / float64(len(res.SSBPAttempts))
	}

	// PSFP: same vs different store→load distance, byte-granular sliding
	// over 16 pages (the paper's configuration, achieving >90% success for
	// equal distances). Both placements of one trial share the trial's RNG,
	// so they stay inside one closure.
	type psfpCell struct{ same, diff bool }
	psfp := harness.Trials(workers, psfpTrials, func(trial int) psfpCell {
		tcfg := cfg
		tcfg.Seed = cfg.Seed + 10_000 + int64(trial)
		// Same distance.
		l := NewLab(tcfg)
		r := rand.New(rand.NewSource(int64(trial)*17 + 3))
		target := l.PlaceStldRandom(r.Intn)
		slider := l.NewSlider(l.P, 16, asm.BuildStld(asm.StldOptions{}))
		var c psfpCell
		_, _, c.same = slider.PSFPCollisionSearch(target, 1)
		// Different distance: the attacker's stld has extra padding between
		// the store and the load.
		l2 := NewLab(tcfg)
		target2 := l2.PlaceStldRandom(r.Intn)
		slider2 := l2.NewSlider(l2.P, 16, asm.BuildStld(asm.StldOptions{PadBetween: 3}))
		_, _, c.diff = slider2.PSFPCollisionSearch(target2, 1)
		return c
	})
	for _, c := range psfp {
		res.PSFPSameDistanceTried++
		if c.same {
			res.PSFPSameDistanceFound++
		}
		res.PSFPDiffDistanceTried++
		if c.diff {
			res.PSFPDiffDistanceFound++
		}
	}
	return res
}

func (r Fig7Result) String() string {
	var sb strings.Builder
	att := append([]int(nil), r.SSBPAttempts...)
	sort.Ints(att)
	median := 0
	if len(att) > 0 {
		median = att[len(att)/2]
	}
	fmt.Fprintf(&sb, "Fig 7 — SSBP collision attempts: %d trials, mean %.0f, median %d (bound 4096 per page set)\n",
		len(r.SSBPAttempts), r.SSBPMean, median)
	sb.WriteString("Fig 7 — attempts distribution (bins of 512): ")
	for i, n := range r.SSBPHistogram {
		if n > 0 {
			fmt.Fprintf(&sb, "[%d-%d):%d ", i*512, (i+1)*512, n)
		}
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "Fig 7 — PSFP collisions: same distance %d/%d found; different distance %d/%d found\n",
		r.PSFPSameDistanceFound, r.PSFPSameDistanceTried,
		r.PSFPDiffDistanceFound, r.PSFPDiffDistanceTried)
	return sb.String()
}
