package revng

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"zenspec/internal/harness"
	"zenspec/internal/kernel"
	"zenspec/internal/pmc"
	"zenspec/internal/predict"
)

// Fig2Row summarizes one execution type observed in the Fig 2 experiment.
type Fig2Row struct {
	Type       predict.ExecType
	Class      TimingClass
	Count      int
	MeanCycles uint64
	PMCPerExec map[string]float64
	MinCycles  uint64
	MaxCycles  uint64
}

// Fig2Result is the reproduction of Fig 2: the time distribution and PMC
// signature of the store-load pair in repeated (40n, 40a) sequences.
type Fig2Result struct {
	Rows        []Fig2Row
	TimingAgree float64 // fraction of executions whose timing class matches ground truth
}

// Fig2 runs the paper's Fig 2 experiment: repeated (40n,40a) sequences, one
// timing and PMC sample per stld execution, grouped by ground-truth type.
// Four repetitions saturate C4 so the S2 states (types B and F) appear
// alongside the rest.
func Fig2(cfg kernel.Config) Fig2Result {
	l := NewLab(cfg)
	s := l.PlaceStld()
	type sample struct {
		ob  Observation
		pmc pmc.Counters
	}
	var samples []sample
	counters := l.K.CPU(0).Core.PMC()
	for i, a := range Seq(40, -40, 40, -40, 40, -40, 40, -40) {
		if i > 0 && i%100 == 0 {
			// Occasional timer-interrupt preemption, implicit in real
			// measurements: flushes PSFP, releasing the pair from the block
			// state so the later repetitions exercise the C3-driven (S2)
			// types too.
			l.Tick()
		}
		before := counters.Snapshot()
		ob := s.Run(a)
		samples = append(samples, sample{ob, counters.Delta(before)})
	}
	// Final phase, covering the S2 stall type F: from a drained state, train
	// C3 to 15 with the (7n,a)x3 sequence, lose C0 to a context switch, then
	// probe with non-aliasing pairs — each one stalls on SSBP state alone.
	l.Tick()
	for i := 0; i < 40; i++ {
		s.Run(false) // drain whatever the blocks left behind
	}
	for _, a := range Seq(7, -1, 7, -1, 7, -1) {
		before := counters.Snapshot()
		ob := s.Run(a)
		samples = append(samples, sample{ob, counters.Delta(before)})
	}
	l.Tick()
	for _, a := range Seq(17) {
		before := counters.Snapshot()
		ob := s.Run(a)
		samples = append(samples, sample{ob, counters.Delta(before)})
	}
	byType := map[predict.ExecType][]sample{}
	agree := 0
	for _, sm := range samples {
		byType[sm.ob.TrueType] = append(byType[sm.ob.TrueType], sm)
		if sm.ob.Class == ClassOf(sm.ob.TrueType) {
			agree++
		}
	}
	events := []pmc.Event{pmc.SQStallCycles, pmc.StoreToLoadForwarding,
		pmc.LdDispatch, pmc.ITLBHit4K, pmc.RetiredOps}
	var res Fig2Result
	res.TimingAgree = float64(agree) / float64(len(samples))
	var keys []predict.ExecType
	for t := range byType {
		keys = append(keys, t)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, t := range keys {
		ss := byType[t]
		row := Fig2Row{Type: t, Class: ClassOf(t), Count: len(ss),
			PMCPerExec: map[string]float64{}, MinCycles: ^uint64(0)}
		var sum uint64
		for _, sm := range ss {
			sum += sm.ob.Cycles
			if sm.ob.Cycles < row.MinCycles {
				row.MinCycles = sm.ob.Cycles
			}
			if sm.ob.Cycles > row.MaxCycles {
				row.MaxCycles = sm.ob.Cycles
			}
			for _, ev := range events {
				row.PMCPerExec[ev.String()] += float64(sm.pmc.Get(ev))
			}
		}
		row.MeanCycles = sum / uint64(len(ss))
		for k := range row.PMCPerExec {
			row.PMCPerExec[k] /= float64(len(ss))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func (r Fig2Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 2 — execution types of (40n,40a)x4; timing/ground-truth agreement %.1f%%\n", 100*r.TimingAgree)
	fmt.Fprintf(&sb, "%-4s %-9s %5s %8s %8s %8s\n", "type", "class", "count", "mean", "min", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-4s %-9s %5d %8d %8d %8d\n",
			row.Type, row.Class, row.Count, row.MeanCycles, row.MinCycles, row.MaxCycles)
	}
	return sb.String()
}

// Table1Result validates the TABLE I state machine: the fraction of random
// sequences whose pipeline-observed types match the pure state-machine
// prediction (the paper reports >99.8%).
type Table1Result struct {
	Sequences int
	Steps     int
	Matched   int
	MatchRate float64
}

// table1Chunk is how many random sequences share one lab in Table1. Lab
// calibration costs hundreds of stld runs, so per-sequence labs would be
// dominated by setup; per-chunk labs amortize it while still exposing
// parallelism.
const table1Chunk = 10

// Table1 replays random n/a sequences through the pipeline and through the
// bare TABLE I state machine and compares every step. All seeding derives
// from cfg.Seed: sequences are partitioned into fixed-size chunks, and each
// chunk gets its own lab and an RNG derived from (cfg.Seed, "table1",
// chunk), so the validation is reproducible at any worker count.
func Table1(cfg kernel.Config, sequences, length int) Table1Result {
	chunks := (sequences + table1Chunk - 1) / table1Chunk
	type part struct{ steps, matched int }
	parts := harness.Trials(harness.Workers(cfg.Parallelism), chunks, func(chunk int) part {
		l := NewLab(cfg)
		r := rand.New(rand.NewSource(harness.TrialSeed(cfg.Seed, "table1", chunk)))
		n := table1Chunk
		if rem := sequences - chunk*table1Chunk; rem < n {
			n = rem
		}
		var p part
		for i := 0; i < n; i++ {
			s := l.PlaceStld()
			ref := predict.Counters{}
			for j := 0; j < length; j++ {
				aliasing := r.Intn(2) == 0
				var refType predict.ExecType
				ref, refType = ref.Update(aliasing)
				ob := s.Run(aliasing)
				p.steps++
				if ob.TrueType == refType && ClassOf(refType) == ob.Class {
					p.matched++
				}
			}
		}
		return p
	})
	res := Table1Result{Sequences: sequences}
	for _, p := range parts {
		res.Steps += p.steps
		res.Matched += p.matched
	}
	if res.Steps > 0 {
		res.MatchRate = float64(res.Matched) / float64(res.Steps)
	}
	return res
}

func (r Table1Result) String() string {
	return fmt.Sprintf("TABLE I — state machine models %d/%d steps of %d random sequences (%.2f%%)",
		r.Matched, r.Steps, r.Sequences, 100*r.MatchRate)
}

// Table2Row is one counter-organization experiment.
type Table2Row struct {
	Counter        string
	Observed       []string // per-phase observed type strings
	DependsOnStore bool
	DependsOnLoad  bool
}

// Table2Result reproduces TABLE II's conclusions: which counters are
// selected by the store IPA and which by the load IPA.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs the counter-organization experiments. Each uses two stld
// variants: one sharing only the load hash with the base (a_x', written
// a_0^1 in the paper) and one sharing only the store hash (a_1^0).
func Table2(cfg kernel.Config) Table2Result {
	var res Table2Result

	// C0/C1/C2 (PSFP): train the base pair, then check that a variant with a
	// different store hash does NOT see the trained state (depends on store
	// IPA), and a variant with a different load hash does not either
	// (depends on load IPA).
	psfpDep := func(counter string) Table2Row {
		l := NewLab(cfg)
		base := l.PlaceStldHash(0x100, 0x200)
		sameLoad := l.PlaceStldHash(0x101, 0x200)  // different store hash
		sameStore := l.PlaceStldHash(0x100, 0x201) // different load hash
		base.Phi(Seq(7, -1))                       // sets C0=4, C1=16, C2=2 on the base entry
		row := Table2Row{Counter: counter}
		cBase := base.Counters()
		cSameLoad := sameLoad.Counters()
		cSameStore := sameStore.Counters()
		// The PSFP part must be private to the (store, load) pair.
		row.DependsOnStore = cSameLoad.C0 != cBase.C0 || cSameLoad.C1 != cBase.C1 || cSameLoad.C2 != cBase.C2
		row.DependsOnLoad = cSameStore.C0 != cBase.C0 || cSameStore.C1 != cBase.C1 || cSameStore.C2 != cBase.C2
		row.Observed = []string{
			fmt.Sprintf("base C0=%d C1=%d C2=%d", cBase.C0, cBase.C1, cBase.C2),
			fmt.Sprintf("store' C0=%d C1=%d C2=%d", cSameLoad.C0, cSameLoad.C1, cSameLoad.C2),
			fmt.Sprintf("load' C0=%d C1=%d C2=%d", cSameStore.C0, cSameStore.C1, cSameStore.C2),
		}
		return row
	}
	res.Rows = append(res.Rows, psfpDep("C0"), psfpDep("C1"), psfpDep("C2"))

	// C3/C4 (SSBP): train C3=15 on the base, then observe that an stld with
	// the same load hash but different store hash shares it (independent of
	// the store IPA), while a different load hash does not.
	ssbpDep := func(counter string) Table2Row {
		l := NewLab(cfg)
		base := l.PlaceStldHash(0x300, 0x400)
		sameLoad := l.PlaceStldHash(0x301, 0x400)
		sameStore := l.PlaceStldHash(0x300, 0x401)
		base.Phi(Seq(7, -1, 7, -1, 7, -1)) // C3=15, C4=3
		cBase := base.Counters()
		cSameLoad := sameLoad.Counters()
		cSameStore := sameStore.Counters()
		row := Table2Row{Counter: counter}
		row.DependsOnStore = cSameLoad.C3 != cBase.C3 || cSameLoad.C4 != cBase.C4
		row.DependsOnLoad = cSameStore.C3 != cBase.C3 || cSameStore.C4 != cBase.C4
		// The attacker-visible confirmation, as in the paper: probing the
		// same-load variant shows stall (F) types.
		obs := sameLoad.Phi(Seq(6))
		row.Observed = []string{
			fmt.Sprintf("base C3=%d C4=%d", cBase.C3, cBase.C4),
			fmt.Sprintf("store' probe: %s", TypesString(Types(obs))),
			fmt.Sprintf("load' C3=%d C4=%d", cSameStore.C3, cSameStore.C4),
		}
		return row
	}
	res.Rows = append(res.Rows, ssbpDep("C3"), ssbpDep("C4"))
	return res
}

func (r Table2Result) String() string {
	var sb strings.Builder
	sb.WriteString("TABLE II — counter organization\n")
	fmt.Fprintf(&sb, "%-8s %-11s %-10s observations\n", "counter", "store IPA", "load IPA")
	for _, row := range r.Rows {
		dep := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		fmt.Fprintf(&sb, "%-8s %-11s %-10s %s\n", row.Counter, dep(row.DependsOnStore), dep(row.DependsOnLoad),
			strings.Join(row.Observed, " | "))
	}
	return sb.String()
}
