// Package pmc models the performance monitor counters used in Fig 2 of the
// paper to attribute execution-time differences to microarchitectural
// behaviour.
package pmc

import (
	"fmt"
	"sort"
	"strings"
)

// Event identifies a monitored event. The first five are the Fig 2 events;
// the rest are simulator-side events useful for the experiment reports.
type Event uint8

// Events.
const (
	// SQStallCycles is "Dynamic Tokens Dispatch for SQ Stall Cycles": cycles
	// a load spends stalled waiting for an older store's address.
	SQStallCycles Event = iota
	// StoreToLoadForwarding counts loads served from the store queue.
	StoreToLoadForwarding
	// LdDispatch counts load dispatches (re-dispatch after a rollback counts
	// again, which is how Fig 2 separates D/G from the rest).
	LdDispatch
	// ITLBHit4K is "L1 TLB Hits for Instruction Fetch 4K".
	ITLBHit4K
	// RetiredOps counts retired instructions.
	RetiredOps
	// Rollbacks counts pipeline flushes due to memory-speculation
	// mispredictions.
	Rollbacks
	// BranchMispredicts counts branch-direction mispredictions.
	BranchMispredicts
	// PSFForwards counts predictive store forwards (before store address
	// generation).
	PSFForwards
	// Bypasses counts loads that speculatively bypassed unresolved stores.
	Bypasses
	numEvents
)

var names = [...]string{
	SQStallCycles:         "Dynamic Tokens Dispatch for SQ Stall Cycles",
	StoreToLoadForwarding: "Store to Load Forwarding",
	LdDispatch:            "Ld Dispatch",
	ITLBHit4K:             "L1 TLB Hits for Instruction Fetch 4K",
	RetiredOps:            "Retired Ops",
	Rollbacks:             "Rollbacks",
	BranchMispredicts:     "Branch Mispredicts",
	PSFForwards:           "Predictive Store Forwards",
	Bypasses:              "Speculative Store Bypasses",
}

// keys are the stable machine-readable identifiers of the events, used as
// metrics-registry suffixes ("pmc.<key>") and profile column names. Keys and
// names must stay in lockstep with the event list; an exhaustiveness test
// fails the build when one lags.
var keys = [...]string{
	SQStallCycles:         "sq_stall_cycles",
	StoreToLoadForwarding: "stlf",
	LdDispatch:            "ld_dispatch",
	ITLBHit4K:             "itlb_hit_4k",
	RetiredOps:            "retired_ops",
	Rollbacks:             "rollbacks",
	BranchMispredicts:     "branch_mispredicts",
	PSFForwards:           "psf_forwards",
	Bypasses:              "bypasses",
}

func (e Event) String() string {
	if int(e) < len(names) {
		return names[e]
	}
	return fmt.Sprintf("event?%d", uint8(e))
}

// Key returns the event's stable snake_case identifier (metrics keys, profile
// columns); empty for out-of-range values.
func (e Event) Key() string {
	if int(e) < len(keys) {
		return keys[e]
	}
	return ""
}

// Events returns every defined event in declaration order.
func Events() []Event {
	out := make([]Event, NumEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// NumEvents is the number of defined events.
const NumEvents = int(numEvents)

// Counters is a set of event counters. The zero value is ready to use.
type Counters struct {
	counts [numEvents]uint64
}

// Add increments an event by n.
func (c *Counters) Add(e Event, n uint64) { c.counts[e] += n }

// Inc increments an event by one.
func (c *Counters) Inc(e Event) { c.counts[e]++ }

// Get returns an event count.
func (c *Counters) Get(e Event) uint64 { return c.counts[e] }

// Reset zeroes all counters.
func (c *Counters) Reset() { c.counts = [numEvents]uint64{} }

// Snapshot returns a copy of the current counts.
func (c *Counters) Snapshot() Counters { return Counters{counts: c.counts} }

// Delta returns the per-event difference c - prev, the usual way PMCs are
// read around a measured region.
func (c *Counters) Delta(prev Counters) Counters {
	var d Counters
	for i := range c.counts {
		d.counts[i] = c.counts[i] - prev.counts[i]
	}
	return d
}

// String formats non-zero counters, sorted by event name.
func (c Counters) String() string {
	type kv struct {
		name string
		v    uint64
	}
	var rows []kv
	for e := Event(0); e < numEvents; e++ {
		if c.counts[e] != 0 {
			rows = append(rows, kv{e.String(), c.counts[e]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	var sb strings.Builder
	for i, r := range rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%d", r.name, r.v)
	}
	return sb.String()
}
