package pmc

import (
	"strings"
	"testing"
)

func TestAddIncGet(t *testing.T) {
	var c Counters
	c.Inc(RetiredOps)
	c.Add(RetiredOps, 4)
	c.Add(SQStallCycles, 10)
	if c.Get(RetiredOps) != 5 {
		t.Errorf("RetiredOps = %d", c.Get(RetiredOps))
	}
	if c.Get(SQStallCycles) != 10 {
		t.Errorf("SQStallCycles = %d", c.Get(SQStallCycles))
	}
	if c.Get(LdDispatch) != 0 {
		t.Error("untouched counter nonzero")
	}
}

func TestDelta(t *testing.T) {
	var c Counters
	c.Add(LdDispatch, 3)
	before := c.Snapshot()
	c.Add(LdDispatch, 7)
	c.Inc(Rollbacks)
	d := c.Delta(before)
	if d.Get(LdDispatch) != 7 || d.Get(Rollbacks) != 1 {
		t.Errorf("delta = %v", d)
	}
	if before.Get(LdDispatch) != 3 {
		t.Error("snapshot mutated")
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.Inc(PSFForwards)
	c.Reset()
	if c.Get(PSFForwards) != 0 {
		t.Error("reset failed")
	}
}

func TestString(t *testing.T) {
	var c Counters
	c.Add(StoreToLoadForwarding, 2)
	c.Inc(Bypasses)
	s := c.String()
	if !strings.Contains(s, "Store to Load Forwarding=2") {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(s, "Speculative Store Bypasses=1") {
		t.Errorf("String = %q", s)
	}
	if strings.Contains(s, "Retired") {
		t.Error("zero counters should be omitted")
	}
}

func TestEventNames(t *testing.T) {
	for e := Event(0); int(e) < NumEvents; e++ {
		if e.String() == "" || strings.HasPrefix(e.String(), "event?") {
			t.Errorf("event %d has no name", e)
		}
	}
	if Event(200).String() == "" {
		t.Error("unknown event should still print")
	}
}

// TestEventKeysExhaustive is the names/keys lockstep gate: every event must
// carry a unique snake_case key alongside its display name, and Events()
// must cover the full space. Adding an event without extending both tables
// fails here (and so fails CI).
func TestEventKeysExhaustive(t *testing.T) {
	evs := Events()
	if len(evs) != NumEvents {
		t.Fatalf("Events returned %d, want %d", len(evs), NumEvents)
	}
	seen := map[string]bool{}
	for _, e := range evs {
		k := e.Key()
		if k == "" {
			t.Errorf("event %q has no key", e)
			continue
		}
		if seen[k] {
			t.Errorf("key %q duplicated", k)
		}
		seen[k] = true
		if strings.ToLower(k) != k || strings.ContainsAny(k, " -.") {
			t.Errorf("key %q is not snake_case", k)
		}
	}
	if Event(200).Key() != "" {
		t.Error("out-of-range event should have an empty key")
	}
}
