package service

import "errors"

// Typed sentinels of the /v1 job API. The server renders each as a
// structured {"error": ..., "code": ...} JSON body; Client maps the code
// straight back to the sentinel, so errors.Is works identically against an
// in-process *Daemon and a remote daemon across the wire.
var (
	// ErrDraining is returned by Submit and Lease once a shutdown has begun.
	ErrDraining = errors.New("service: daemon is draining")
	// ErrJobNotFound is returned for job IDs the daemon has never seen (or
	// has archived away).
	ErrJobNotFound = errors.New("service: job not found")
	// ErrLeaseNotFound is returned for lease tokens the daemon does not hold:
	// expired and revoked leases, tokens from a daemon incarnation that
	// crashed, or plain garbage. A worker seeing it must abandon the shard —
	// another lease owns it now.
	ErrLeaseNotFound = errors.New("service: lease not found")
	// ErrJobFailed wraps a terminal job's own error; Client.Wait returns it
	// when the awaited job finishes in the failed state.
	ErrJobFailed = errors.New("service: job failed")
	// ErrDaemonUnavailable wraps transport-level failures (connection
	// refused, reset): the daemon is down or restarting, not rejecting the
	// request. Client.Wait polls through it.
	ErrDaemonUnavailable = errors.New("service: daemon unavailable")
	// ErrAPIVersion is returned when the server's GET /v1/meta disagrees with
	// the client's expected API version (or is absent entirely).
	ErrAPIVersion = errors.New("service: api version mismatch")
)
