//go:build race

package service

// raceEnabled reports whether this test binary was built with -race; the
// kill-resume test trades its long-pole experiment for a shorter one there.
const raceEnabled = true
