package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zenspec/internal/fault"
	"zenspec/internal/harness"
)

// rangeRegistry registers one rangeable experiment (trial values derived from
// TrialSeed, merge sums them) plus one plain whole-shard experiment, so a
// split submission mixes trial-range and whole shards exactly like a real
// suite would.
func rangeRegistry(trials int) *harness.Registry {
	reg := fakeRegistry("plain")
	type frag struct {
		Vals []int64 `json:"vals"`
	}
	reg.Register(harness.Experiment{
		ID: "rsum", Title: "range sum", Paper: "test fixture", Tags: []string{"fake"},
		Range: &harness.RangeSpec{
			Trials: func(harness.Ctx) int { return trials },
			Run: func(ctx harness.Ctx, lo, hi int) ([]byte, error) {
				var vals []int64
				for tr := lo; tr < hi; tr++ {
					vals = append(vals, harness.TrialSeed(ctx.Config.Seed, "rsum", tr)%9973)
				}
				return json.Marshal(frag{Vals: vals})
			},
			Merge: func(ctx harness.Ctx, frags []harness.Fragment) harness.Report {
				var sum int64
				for _, f := range frags {
					var p frag
					if err := json.Unmarshal(f.Data, &p); err != nil {
						return harness.Report{Status: harness.StatusFailed, Error: err.Error()}
					}
					for _, v := range p.Vals {
						sum += v
					}
				}
				var r harness.Report
				r.Add("sum", float64(sum), 0, 1e18)
				return r
			},
		},
	})
	return reg
}

// TestWorkersDrainSplitJob is the tentpole at service level: a job split into
// trial-range shards, drained concurrently by two pull workers, merges to the
// byte-identical StableJSON of a direct unsharded registry run.
func TestWorkersDrainSplitJob(t *testing.T) {
	reg := rangeRegistry(12)
	d, err := Open(Config{Dir: t.TempDir(), Registry: reg, Workers: 0, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	spec := JobSpec{Seed: 11, Split: 4}
	id, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	// rsum splits 4 ways; plain has no range decomposition and stays whole.
	if st.Total != 5 {
		t.Fatalf("split job has %d shards, want 5: %+v", st.Total, st.Shards)
	}
	ranged := 0
	for _, s := range st.Shards {
		if s.ID == "plain" {
			continue
		}
		ranged++
	}
	if ranged != 4 {
		t.Fatalf("rsum cut into %d range shards, want 4", ranged)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := NewWorker(d, WorkerConfig{
			Name: fmt.Sprintf("w%d", i+1), Registry: reg, Poll: 20 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	st = waitStatus(t, d, id, JobStatus.Terminal, "split job drain")
	cancel()
	wg.Wait()
	if st.State != JobDone || st.Done != 5 {
		t.Fatalf("split job finished %+v", st)
	}

	rep, err := d.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := reg.Run(shardRunCtx(spec, fault.Plan{}, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("split-drained report differs from direct run:\n%s\nvs\n%s", got, want)
	}
}

// TestRemoteWorkerSurvivesAbandon exercises the full wire path: workers pull
// leases over /v1 through the Client; one is killed mid-shard, the daemon
// revokes its silent lease, and a second worker finishes the job.
func TestRemoteWorkerSurvivesAbandon(t *testing.T) {
	var gate atomic.Int64
	reg := spinRegistry("spin", &gate)
	d, err := Open(Config{Dir: t.TempDir(), Registry: reg, Workers: 0, Lease: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()
	c := &Client{Base: base}

	id, err := c.Submit(JobSpec{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Worker 1 leases the spinning shard, then dies mid-run.
	ctx1, cancel1 := context.WithCancel(context.Background())
	w1 := NewWorker(&Client{Base: base}, WorkerConfig{
		Name: "doomed", Registry: reg, Poll: 20 * time.Millisecond, Heartbeat: 30 * time.Millisecond,
	})
	done1 := make(chan error, 1)
	go func() { done1 <- w1.Run(ctx1) }()
	waitStatus(t, d, id, func(st JobStatus) bool { return st.Shards[0].State == ShardRunning }, "lease pickup")
	cancel1()
	if err := <-done1; !errors.Is(err, context.Canceled) {
		t.Fatalf("killed worker returned %v", err)
	}
	// Worker 2 picks the shard back up once the abandoned lease expires; the
	// gate makes the retried attempt return immediately.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	w2 := NewWorker(&Client{Base: base}, WorkerConfig{
		Name: "survivor", Registry: reg, Poll: 20 * time.Millisecond, Heartbeat: 30 * time.Millisecond,
	})
	go w2.Run(ctx2)
	st, err := c.Wait(context.Background(), id, 10*time.Millisecond)
	if err != nil || st.State != JobDone {
		t.Fatalf("job after abandon/retry = %+v, %v", st, err)
	}
}

// TestArchivedJobGC: terminal jobs beyond KeepJobs are archived — durably
// gone across a crash — while live jobs and the newest terminal ones survive
// replay intact, and the segmented WAL compacts along the way.
func TestArchivedJobGC(t *testing.T) {
	dir := t.TempDir()
	reg := fakeRegistry("a")
	cfg := Config{Dir: dir, Registry: reg, Workers: 0, KeepJobs: 2, SegmentBytes: 512}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The live job's shard is leased and held, so it cannot finish and must
	// never be archived.
	liveID, err := d.Submit(JobSpec{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	liveLease, err := d.Lease("holder", 0)
	if err != nil || liveLease == nil || liveLease.Job != liveID {
		t.Fatalf("live lease = %+v, %v", liveLease, err)
	}
	var rep harness.Report
	rep.Add("seed", 1, 0, 1e9)
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := d.Submit(JobSpec{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		l, err := d.Lease("drainer", 0)
		if err != nil || l == nil || l.Job != id {
			t.Fatalf("lease for %s = %+v, %v", id, l, err)
		}
		if err := d.Complete(l.Token, Completion{Partial: &harness.PartialReport{Report: &rep}}); err != nil {
			t.Fatal(err)
		}
	}
	// 5 terminal jobs against KeepJobs=2: the oldest 3 are archived.
	for _, id := range ids[:3] {
		if _, err := d.Status(id); !errors.Is(err, ErrJobNotFound) {
			t.Fatalf("archived job %s still present: %v", id, err)
		}
	}
	if jobs := d.Jobs(); len(jobs) != 3 {
		t.Fatalf("daemon retains %d jobs, want 3 (1 live + 2 terminal)", len(jobs))
	}
	if _, err := d.Status(liveID); err != nil {
		t.Fatalf("live job archived: %v", err)
	}

	// Crash and replay: the archive records are durable, the live job's shard
	// is re-queued, and the retained terminal jobs come back whole.
	d.Kill()
	d2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Shutdown(context.Background())
	for _, id := range ids[:3] {
		if _, err := d2.Status(id); !errors.Is(err, ErrJobNotFound) {
			t.Fatalf("archived job %s resurrected by replay: %v", id, err)
		}
	}
	for _, id := range ids[3:] {
		st, err := d2.Status(id)
		if err != nil || st.State != JobDone {
			t.Fatalf("retained job %s replayed as %+v, %v", id, st, err)
		}
	}
	st, err := d2.Status(liveID)
	if err != nil || st.State == JobDone || st.Shards[0].State != ShardPending {
		t.Fatalf("live job replayed as %+v, %v", st, err)
	}
	// Finish it on the successor daemon.
	l, err := d2.Lease("finisher", 0)
	if err != nil || l == nil || l.Job != liveID {
		t.Fatalf("post-replay lease = %+v, %v", l, err)
	}
	if err := d2.Complete(l.Token, Completion{Partial: &harness.PartialReport{Report: &rep}}); err != nil {
		t.Fatal(err)
	}
	// Now terminal — and, as the oldest terminal job of three against
	// KeepJobs=2, immediately archived by the same GC it was immune to while
	// live.
	if _, err := d2.Status(liveID); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("finished oldest job not archived: %v", err)
	}
	if jobs := d2.Jobs(); len(jobs) != 2 {
		t.Fatalf("daemon retains %d jobs, want KeepJobs=2", len(jobs))
	}
}
