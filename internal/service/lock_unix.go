//go:build unix

package service

import (
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive non-blocking advisory lock on f, held for the
// life of the descriptor. flock semantics are exactly the crash-safety the
// journal wants: the lock dies with the process, so a kill -9'd daemon never
// wedges its successor, while two *live* daemons can never share a journal
// (concurrent appenders would interleave frames and corrupt each other's
// supposedly-durable records).
func lockFile(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("journal %s is locked by another running daemon: %w", f.Name(), err)
	}
	return nil
}
