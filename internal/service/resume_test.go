package service

import (
	"bytes"
	"context"
	"testing"
	"time"

	"zenspec/internal/fault"
	"zenspec/internal/harness"
	"zenspec/internal/harness/suite"
	"zenspec/internal/kernel"
	"zenspec/internal/pipeline"
)

// TestKillResumeByteIdentity is the acceptance contract of the service: a
// job killed mid-execution (the daemon crashes between shard completions)
// and resumed by a fresh daemon over the same journal produces a merged
// SuiteReport whose StableJSON is byte-identical to an uninterrupted direct
// run — at 1, 2 and 8 workers. It runs against the real experiment registry,
// with profiles on, so the journaled Report/prof.Snapshot fragments must
// round-trip exactly through the WAL's JSON.
func TestKillResumeByteIdentity(t *testing.T) {
	// fig7 is the long pole (hundreds of ms in quick mode), giving the kill
	// a wide mid-flight window after the fast shards before it complete.
	// Under the race detector everything runs ~20x slower, so fig5 (a
	// quarter of fig7's wall clock) plays the long pole instead.
	ids := []string{"fig2", "table1", "table2", "fig4", "fig7"}
	if raceEnabled {
		ids = []string{"fig2", "table1", "table2", "fig4", "fig5"}
	}
	reg := suite.Registry()
	spec := JobSpec{Seed: 42, Quick: true, Only: ids, Profile: true}

	// The uninterrupted baseline, with the exact context a worker gives one
	// shard (shardCtx): same seed, same quick mode, same pipeline geometry.
	direct, err := reg.Run(harness.Ctx{
		Config: kernel.Config{Seed: spec.Seed, Parallelism: 1, Pipeline: pipeline.Config{SQSize: 48}},
		Quick:  spec.Quick, Profile: spec.Profile,
	}, ids)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.StableJSON()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(map[int]string{1: "1worker", 2: "2workers", 8: "8workers"}[workers], func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{Dir: dir, Registry: reg, Workers: workers, Lease: 5 * time.Second}
			d, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			id, err := d.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			// Kill as soon as at least one shard completion is journaled but
			// the job is still in flight — the crash window the WAL protects.
			midFlight := false
			deadline := time.Now().Add(60 * time.Second)
			for time.Now().Before(deadline) {
				st, err := d.Status(id)
				if err != nil {
					t.Fatal(err)
				}
				if st.Terminal() {
					break
				}
				if st.Done >= 1 {
					midFlight = true
					break
				}
				time.Sleep(time.Millisecond)
			}
			d.Kill()
			if !midFlight {
				t.Log("job finished before the kill landed; resume path not exercised this run")
			}

			// Restart over the same journal; the resumed daemon replays the
			// completed shards and reruns only the rest.
			d2, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Shutdown(context.Background())
			if st, err := d2.Status(id); err != nil {
				t.Fatal(err)
			} else if midFlight && st.Done == 0 {
				t.Errorf("journaled completions lost across the crash: %+v", st)
			}
			st := waitStatus(t, d2, id, JobStatus.Terminal, "resumed job")
			if st.State != JobDone {
				t.Fatalf("resumed job %+v", st)
			}
			rep, err := d2.Report(id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.StableJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("resumed report differs from uninterrupted run (workers=%d):\n%s\nvs\n%s",
					workers, got, want)
			}
		})
	}
}

// TestKillResumeSplitByteIdentity is the same crash contract with the
// scale-out path in play: the job is cut into trial-range shards (Split),
// the daemon is killed once at least one range completion is journaled, and
// the resumed daemon's merged report must still match an uninterrupted,
// unsharded direct run byte for byte — replayed partial fragments and
// re-leased ranges included. fault-harness is the rangeable long pole here
// (32 quick trials across 3 range shards); fig2/table1 ride along as whole
// shards so the mix matches a real split submission.
func TestKillResumeSplitByteIdentity(t *testing.T) {
	reg := suite.Registry()
	ids := []string{"fig2", "table1", "fault-harness"}
	spec := JobSpec{Seed: 42, Quick: true, Only: ids, Split: 3}

	direct, err := reg.Run(shardRunCtx(spec, fault.Plan{}, 1), ids)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.StableJSON()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := Config{Dir: dir, Registry: reg, Workers: 2, Lease: 5 * time.Second}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 5 { // fig2 + table1 whole, fault-harness in 3 ranges
		t.Fatalf("split submission produced %d shards, want 5: %+v", st.Total, st.Shards)
	}
	midFlight := false
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := d.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Terminal() {
			break
		}
		if st.Done >= 1 {
			midFlight = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	d.Kill()
	if !midFlight {
		t.Log("job finished before the kill landed; resume path not exercised this run")
	}

	d2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Shutdown(context.Background())
	st = waitStatus(t, d2, id, JobStatus.Terminal, "resumed split job")
	if st.State != JobDone {
		t.Fatalf("resumed split job %+v", st)
	}
	rep, err := d2.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed split report differs from direct unsharded run:\n%s\nvs\n%s", got, want)
	}
}
