//go:build !unix

package service

import "os"

// lockFile is a no-op where flock is unavailable; keeping one daemon per
// state directory is on the operator there.
func lockFile(*os.File) error { return nil }
