package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"zenspec/internal/asm"
	"zenspec/internal/harness"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
)

// bootRegistry registers one experiment that actually simulates a bounded
// program, so profile-enabled jobs carry real samples through the journal.
func bootRegistry(id string) *harness.Registry {
	reg := harness.NewRegistry()
	reg.Register(harness.Experiment{
		ID: id, Title: "boot " + id, Paper: "test fixture", Tags: []string{"fake"},
		Run: func(ctx harness.Ctx) harness.Report {
			k := kernel.New(ctx.Config)
			p := k.NewProcess("boot", kernel.DomainUser)
			b := asm.NewBuilder()
			b.Movi(isa.RAX, 1)
			b.Label("spin")
			b.Jnz(isa.RAX, "spin")
			p.MapCode(0x400000, b.MustAssemble(0x400000))
			res := k.Run(p, 0x400000, 2000) // stops at the instruction limit
			var r harness.Report
			r.Add("insts", float64(res.Insts), 1, 1e9)
			return r
		},
	})
	return reg
}

func TestServerEndToEnd(t *testing.T) {
	reg := bootRegistry("boot")
	d, err := Open(Config{Dir: t.TempDir(), Registry: reg, Workers: 1, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	c := &Client{Base: base}

	// Liveness and readiness.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}

	// Submit through the client, watch the NDJSON stream to completion.
	spec := JobSpec{Seed: 5, Profile: true}
	id, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	watch, err := http.Get(base + "/jobs/" + id + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	var lastLine JobStatus
	lines := 0
	sc := bufio.NewScanner(watch.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &lastLine); err != nil {
			t.Fatalf("watch line %d: %v (%q)", lines, err, sc.Text())
		}
		lines++
	}
	watch.Body.Close()
	if lines == 0 || !lastLine.Terminal() {
		t.Fatalf("watch streamed %d lines, last %+v", lines, lastLine)
	}

	st, err := c.Wait(context.Background(), id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("job %+v", st)
	}

	// The fetched stable report matches a direct run of the same spec.
	got, err := c.StableReport(id)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := reg.Run(shardRunCtx(spec, d.tab.jobs[id].plan, d.cfg.Parallelism), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := direct.StableJSON()
	if !bytes.Equal(got, want) {
		t.Fatalf("fetched stable report differs from direct run:\n%s\nvs\n%s", got, want)
	}

	// Status, list, text report, merged profile.
	if cst, err := c.Status(id); err != nil || cst.ID != id {
		t.Fatalf("client status %+v err %v", cst, err)
	}
	if rep, err := c.Report(id); err != nil || len(rep.Experiments) != 1 {
		t.Fatalf("client report %+v err %v", rep, err)
	}
	if txt, err := c.TextReport(id); err != nil || !strings.Contains(txt, "boot") {
		t.Fatalf("text report %q err %v", txt, err)
	}
	resp, err := http.Get(base + "/jobs/" + id + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(prof) == 0 {
		t.Fatalf("profile endpoint status %d, %d bytes", resp.StatusCode, len(prof))
	}

	// The queue gauges ride the telemetry plane on the same mux.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"zenspec_service_queue_depth",
		"zenspec_service_leases_active",
		"zenspec_service_jobs_active",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Unknown jobs and bad specs map to typed client errors, not 500s — the
	// structured {"error", "code"} body carries the sentinel across the wire.
	if _, err := c.Status("ghost"); !errors.Is(err, ErrJobNotFound) || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown job error = %v", err)
	}
	if _, err := c.Submit(JobSpec{Only: []string{"nope"}}); !errors.Is(err, harness.ErrUnknownExperiment) || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad submit error = %v", err)
	}

	// The meta endpoint names the protocol and the registered experiments.
	meta, err := c.Meta()
	if err != nil || meta.APIVersion != APIVersion || len(meta.Experiments) != 1 || meta.Experiments[0] != "boot" {
		t.Fatalf("meta = %+v, %v", meta, err)
	}

	// A client pinned to a version the daemon does not speak fails typed.
	strict := &Client{Base: base, APIVersion: "v2"}
	if _, err := strict.Status(id); !errors.Is(err, ErrAPIVersion) {
		t.Fatalf("version-mismatch error = %v", err)
	}

	// Every job route answers at both /v1 and its legacy alias.
	for _, path := range []string{
		"/jobs", "/v1/jobs",
		"/jobs/" + id, "/v1/jobs/" + id,
		"/jobs/" + id + "/report", "/v1/jobs/" + id + "/report",
		"/healthz", "/v1/healthz",
		"/readyz", "/v1/readyz",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s status %d", path, resp.StatusCode)
		}
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d.Ready() {
		t.Fatal("daemon ready after server shutdown")
	}
}

// flakyTransport fails the first n round-trips at the transport level —
// what a client sees while the daemon is down between crash and restart.
type flakyTransport struct{ fails atomic.Int32 }

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if f.fails.Add(-1) >= 0 {
		return nil, errors.New("connection refused")
	}
	return http.DefaultTransport.RoundTrip(r)
}

func TestWaitPollsThroughOutage(t *testing.T) {
	reg := bootRegistry("boot")
	d, err := Open(Config{Dir: t.TempDir(), Registry: reg, Workers: 1, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	flaky := &flakyTransport{}
	flaky.fails.Store(3)
	c := &Client{Base: "http://" + addr.String(), HTTP: &http.Client{Transport: flaky}}
	id, err := d.Submit(JobSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The first three polls hit the dead-daemon window; Wait rides them out.
	st, err := c.Wait(context.Background(), id, time.Millisecond)
	if err != nil || st.State != JobDone {
		t.Fatalf("Wait through outage = %+v, %v", st, err)
	}
	// API-level errors still fail fast: an unknown job is typed, not a retry.
	if _, err := c.Wait(context.Background(), "ghost", time.Millisecond); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("unknown-job wait error = %v", err)
	}
}
