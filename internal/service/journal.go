package service

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"zenspec/internal/harness"
)

// The journal is a write-ahead log of job state transitions, one
// length-framed, checksummed JSON record per transition:
//
//	"ZSJ1" | payload length (uint32 LE) | CRC-32/IEEE of payload | payload
//
// Records are fsynced as they are appended, so a record either made it to
// disk whole or is a detectably broken tail. The log is segmented: appends go
// to the newest wal-NNNNNN.seg file, a segment exceeding the size limit is
// sealed and a fresh one started, and a compaction (triggered by segment
// count, and by the clean-shutdown checkpoint) writes the live state's
// snapshot into a new segment and deletes the older ones — so the WAL on disk
// stays bounded by the snapshot size plus a few segments, however long the
// daemon lives. Opening the journal replays every intact record across all
// segments in order and truncates the newest segment at its first broken
// record — a crash mid-append loses at most the record being written, never
// the records before it. Because apply is idempotent, a crash between a
// compaction snapshot and the deletion of the segments it summarizes replays
// both without harm.
//
// A single exclusive flock on wal.lock guards the directory: two live
// daemons can never interleave appends, while the lock dies with a kill -9'd
// process so a crashed daemon never wedges its successor. A legacy
// single-file journal.wal (the pre-segmentation layout) is adopted as the
// oldest segment on first open.

// Record types. A submit record carries the full spec plus the resolved
// shard list (so replay does not depend on the live registry); shard records
// carry the completed PartialReport fragment or the terminal error; job
// records mark the derived terminal state (redundant with the shard records,
// kept for journal legibility — apply tolerates their absence and their
// duplication alike); an archive record retires a terminal job from the
// table, so the next compaction drops it from disk.
const (
	recSubmit      = "submit"
	recShardDone   = "shard_done"
	recShardFailed = "shard_failed"
	recJobDone     = "job_done"
	recJobFailed   = "job_failed"
	recJobArchive  = "job_archive"
)

type record struct {
	Type string   `json:"type"`
	Job  string   `json:"job,omitempty"`
	Spec *JobSpec `json:"spec,omitempty"`
	// Trace is the submit record's observability correlation ID: minted by
	// the daemon at submission and journaled with the job, so a resumed job
	// keeps its trace identity across restarts. Legacy journals without it
	// replay fine — the job simply has no trace.
	Trace string `json:"trace,omitempty"`
	// Defs is the submit record's shard list; Shards is its legacy pre-/v1
	// form (whole-experiment IDs), still replayed.
	Defs   []ShardRef `json:"defs,omitempty"`
	Shards []string   `json:"shards,omitempty"`
	Shard  string     `json:"shard,omitempty"`
	// Partial is a shard-done record's fragment; Report is its legacy
	// whole-shard form, still replayed.
	Partial *harness.PartialReport `json:"partial,omitempty"`
	Report  *harness.Report        `json:"report,omitempty"`
	Error   string                 `json:"error,omitempty"`
}

var journalMagic = [4]byte{'Z', 'S', 'J', '1'}

// maxRecordSize bounds one record's payload; a longer length field can only
// come from corruption.
const maxRecordSize = 256 << 20

// defaultSegmentBytes is the segment size limit when the config leaves it 0.
const defaultSegmentBytes = 4 << 20

// compactSegments is the segment count that triggers a compaction: the WAL
// never holds more than this many segments for long.
const compactSegments = 4

const (
	lockName   = "wal.lock"
	legacyName = "journal.wal"
)

func segName(seq int) string { return fmt.Sprintf("wal-%06d.seg", seq) }

// journal is the open segmented WAL handle, positioned for appending to the
// newest segment.
type journal struct {
	dir    string
	lock   *os.File
	f      *os.File // active (newest) segment
	seq    int      // active segment's sequence number
	size   int64    // active segment's intact size
	limit  int64    // segment size limit; exceeded appends seal the segment
	sealed []int    // sequence numbers of the sealed (read-only) segments

	// Observability hooks, set by the daemon after openJournal and invoked
	// under the daemon's lock (every append happens there). All are optional.
	onAppend     func(rec *record, dur time.Duration) // after a durable append; dur covers write+fsync
	onRotate     func(seq int)                        // after a segment seal
	onCheckpoint func(recs int, dur time.Duration)    // after a successful compaction
}

// openJournal locks dir, adopts a legacy single-file journal if present,
// replays every intact record across all segments in order (healing a corrupt
// tail of the newest segment by truncation), and returns the handle
// positioned for appends.
func openJournal(dir string, limit int64) (*journal, []record, error) {
	if limit <= 0 {
		limit = defaultSegmentBytes
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: open journal lock: %w", err)
	}
	if err := lockFile(lock); err != nil {
		lock.Close()
		return nil, nil, fmt.Errorf("service: %w", err)
	}
	fail := func(err error) (*journal, []record, error) {
		lock.Close()
		return nil, nil, err
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return fail(fmt.Errorf("service: list journal segments: %w", err))
	}
	// Adopt the pre-segmentation single-file layout as the oldest segment.
	if _, err := os.Stat(filepath.Join(dir, legacyName)); err == nil {
		seq := 1
		if len(seqs) > 0 {
			seq = seqs[0] - 1 // older than everything segmented
		}
		if err := os.Rename(filepath.Join(dir, legacyName), filepath.Join(dir, segName(seq))); err != nil {
			return fail(fmt.Errorf("service: adopt legacy journal: %w", err))
		}
		seqs = append([]int{seq}, seqs...)
	}
	if len(seqs) == 0 {
		seqs = []int{1}
		f, err := os.OpenFile(filepath.Join(dir, segName(1)), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fail(fmt.Errorf("service: create journal segment: %w", err))
		}
		f.Close()
	}
	var recs []record
	j := &journal{dir: dir, lock: lock, limit: limit}
	for i, seq := range seqs {
		f, err := os.OpenFile(filepath.Join(dir, segName(seq)), os.O_RDWR, 0o644)
		if err != nil {
			return fail(fmt.Errorf("service: open journal segment: %w", err))
		}
		segRecs, good, err := scanRecords(f)
		if err != nil {
			f.Close()
			return fail(fmt.Errorf("service: scan journal segment %d: %w", seq, err))
		}
		recs = append(recs, segRecs...)
		if i < len(seqs)-1 {
			// A sealed segment with a damaged tail loses its trailing records;
			// replay continues with the later segments (and the compaction
			// snapshot they open with, when one exists) — apply heals forward.
			f.Close()
			j.sealed = append(j.sealed, seq)
			continue
		}
		// The newest segment is the append target: heal its tail in place.
		if fi, err := f.Stat(); err == nil && fi.Size() > good {
			if err := f.Truncate(good); err != nil {
				f.Close()
				return fail(fmt.Errorf("service: heal journal tail: %w", err))
			}
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return fail(fmt.Errorf("service: seek journal: %w", err))
		}
		j.f, j.seq, j.size = f, seq, good
	}
	return j, recs, nil
}

// listSegments returns the existing segment sequence numbers in ascending
// order.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		var seq int
		if n, err := fmt.Sscanf(e.Name(), "wal-%06d.seg", &seq); n == 1 && err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// segments returns how many segment files the journal currently spans — the
// daemon's compaction trigger.
func (j *journal) segments() int { return len(j.sealed) + 1 }

// scanRecords reads records from the start of f, returning the intact prefix
// and the offset where it ends. Framing or checksum damage stops the scan
// without error — the caller truncates there (or, for sealed segments,
// simply moves on). Only real I/O errors are returned.
func scanRecords(f *os.File) ([]record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	br := bufio.NewReader(f)
	var recs []record
	var off int64
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, off, nil // clean end, or a torn header
			}
			return nil, 0, err
		}
		if [4]byte(hdr[:4]) != journalMagic {
			return recs, off, nil
		}
		n := binary.LittleEndian.Uint32(hdr[4:8])
		sum := binary.LittleEndian.Uint32(hdr[8:12])
		if n > maxRecordSize {
			return recs, off, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, off, nil // torn payload
			}
			return nil, 0, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, nil
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += int64(len(hdr)) + int64(n)
	}
}

func frame(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 12+len(payload))
	copy(buf, journalMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(payload))
	copy(buf[12:], payload)
	return buf, nil
}

// rotate seals the active segment and starts the next one.
func (j *journal) rotate() error {
	next, err := os.OpenFile(filepath.Join(j.dir, segName(j.seq+1)), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: rotate journal segment: %w", err)
	}
	j.f.Close()
	j.sealed = append(j.sealed, j.seq)
	j.f, j.seq, j.size = next, j.seq+1, 0
	if j.onRotate != nil {
		j.onRotate(j.seq)
	}
	return nil
}

// append writes one record and fsyncs: when append returns nil the
// transition is durable. An append that would push the active segment past
// the size limit seals it and starts a new segment first.
func (j *journal) append(rec record) error {
	buf, err := frame(rec)
	if err != nil {
		return fmt.Errorf("service: journal record: %w", err)
	}
	if j.size > 0 && j.size+int64(len(buf)) > j.limit {
		if err := j.rotate(); err != nil {
			return err
		}
	}
	start := time.Now()
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("service: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal sync: %w", err)
	}
	j.size += int64(len(buf))
	if j.onAppend != nil {
		j.onAppend(&rec, time.Since(start))
	}
	return nil
}

// checkpoint compacts the WAL to the given records (the live state's
// snapshot): they are written into a fresh segment, fsynced, and only then
// are the older segments deleted. A crash before the deletes replays old
// history followed by the (possibly torn) snapshot — idempotent apply folds
// both to the same state — so the compaction is crash-safe at every step.
// The directory lock is held throughout; it is never dropped mid-swap.
func (j *journal) checkpoint(recs []record) error {
	start := time.Now()
	path := filepath.Join(j.dir, segName(j.seq+1))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	w := bufio.NewWriter(f)
	var size int64
	for _, rec := range recs {
		buf, err := frame(rec)
		if err == nil {
			var n int
			n, err = w.Write(buf)
			size += int64(n)
		}
		if err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("service: checkpoint: %w", err)
		}
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	// The snapshot is durable: retire every older segment, the active one
	// included.
	j.f.Close()
	for _, seq := range append(j.sealed, j.seq) {
		os.Remove(filepath.Join(j.dir, segName(seq)))
	}
	j.sealed = nil
	j.f, j.seq, j.size = f, j.seq+1, size
	if j.onCheckpoint != nil {
		j.onCheckpoint(len(recs), time.Since(start))
	}
	return nil
}

// close closes the handles without compacting (the crash-simulation path:
// appended records are already durable). Closing the lock file releases the
// flock.
func (j *journal) close() error {
	err := j.f.Close()
	if lerr := j.lock.Close(); err == nil {
		err = lerr
	}
	return err
}
