package service

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"zenspec/internal/harness"
)

// The journal is a write-ahead log of job state transitions, one
// length-framed, checksummed JSON record per transition:
//
//	"ZSJ1" | payload length (uint32 LE) | CRC-32/IEEE of payload | payload
//
// Records are fsynced as they are appended, so a record either made it to
// disk whole or is a detectably broken tail. Opening the journal replays
// every intact record and truncates the file at the first broken one — the
// same self-healing discipline as the PR 6 summary cache's "SCE1" entries,
// applied to an append-only log: a crash mid-append loses at most the record
// being written, never the records before it.

// Record types. A submit record carries the full spec plus the resolved
// shard list (so replay does not depend on the live registry); shard records
// carry the completed Report fragment or the terminal error; job records
// mark the derived terminal state (redundant with the shard records, kept
// for journal legibility — apply tolerates their absence and their
// duplication alike).
const (
	recSubmit      = "submit"
	recShardDone   = "shard_done"
	recShardFailed = "shard_failed"
	recJobDone     = "job_done"
	recJobFailed   = "job_failed"
)

type record struct {
	Type   string          `json:"type"`
	Job    string          `json:"job,omitempty"`
	Spec   *JobSpec        `json:"spec,omitempty"`
	Shards []string        `json:"shards,omitempty"`
	Shard  string          `json:"shard,omitempty"`
	Report *harness.Report `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}

var journalMagic = [4]byte{'Z', 'S', 'J', '1'}

// maxRecordSize bounds one record's payload; a longer length field can only
// come from corruption.
const maxRecordSize = 256 << 20

// journal is the open WAL handle, positioned for appending.
type journal struct {
	path string
	f    *os.File
}

// openJournal opens (creating if absent) the journal at path, replays every
// intact record, and self-heals a corrupt tail by truncating the file at the
// last intact record before returning the handle positioned for appends.
func openJournal(path string) (*journal, []record, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: open journal: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("service: %w", err)
	}
	recs, good, err := scanRecords(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("service: scan journal: %w", err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("service: heal journal tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("service: seek journal: %w", err)
	}
	return &journal{path: path, f: f}, recs, nil
}

// scanRecords reads records from the start of f, returning the intact prefix
// and the offset where it ends. Framing or checksum damage stops the scan
// without error — the caller truncates there. Only real I/O errors are
// returned.
func scanRecords(f *os.File) ([]record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	br := bufio.NewReader(f)
	var recs []record
	var off int64
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, off, nil // clean end, or a torn header
			}
			return nil, 0, err
		}
		if [4]byte(hdr[:4]) != journalMagic {
			return recs, off, nil
		}
		n := binary.LittleEndian.Uint32(hdr[4:8])
		sum := binary.LittleEndian.Uint32(hdr[8:12])
		if n > maxRecordSize {
			return recs, off, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, off, nil // torn payload
			}
			return nil, 0, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, nil
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += int64(len(hdr)) + int64(n)
	}
}

func frame(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 12+len(payload))
	copy(buf, journalMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(payload))
	copy(buf[12:], payload)
	return buf, nil
}

// append writes one record and fsyncs: when append returns nil the
// transition is durable.
func (j *journal) append(rec record) error {
	buf, err := frame(rec)
	if err != nil {
		return fmt.Errorf("service: journal record: %w", err)
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("service: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal sync: %w", err)
	}
	return nil
}

// checkpoint atomically replaces the journal with the given records (the
// clean-shutdown compaction: tmp + fsync + rename, like the summary cache's
// Put). The compacted file becomes the new locked handle — the journal lock
// is never dropped, so a successor daemon starting during the checkpoint
// cannot open the journal until this process closes it or exits.
func (j *journal) checkpoint(recs []record) error {
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range recs {
		buf, err := frame(rec)
		if err == nil {
			_, err = w.Write(buf)
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("service: checkpoint: %w", err)
		}
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err == nil {
		err = lockFile(f)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	j.f.Close()
	j.f = f
	return nil
}

// close closes the handle without compacting (the crash-simulation path:
// appended records are already durable).
func (j *journal) close() error { return j.f.Close() }
