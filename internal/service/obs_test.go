package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"zenspec/internal/svcobs"
)

// perfettoDoc mirrors the Chrome trace-event JSON the trace endpoint serves,
// just deep enough for assertions.
type perfettoDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		PID   int            `json:"pid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestSplitJobStitchedTrace is the observability tentpole at service level: a
// split job drained by two remote workers over /v1 must yield one stitched
// trace — daemon spans and both workers' shipped spans under a single
// correlation ID — whose span tree covers every shard of the job.
func TestSplitJobStitchedTrace(t *testing.T) {
	reg := rangeRegistry(12)
	d, err := Open(Config{Dir: t.TempDir(), Registry: reg, Workers: 0,
		Lease: 10 * time.Second, Obs: svcobs.New(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	srv := NewServer(d)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()

	c := &Client{Base: base}
	id, err := c.Submit(JobSpec{Seed: 11, Split: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := NewWorker(&Client{Base: base}, WorkerConfig{
			Name: fmt.Sprintf("w%d", i+1), Registry: reg, Poll: 20 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	st := waitStatus(t, d, id, JobStatus.Terminal, "split job drain")
	cancel()
	wg.Wait()
	if st.State != JobDone {
		t.Fatalf("split job finished %+v", st)
	}
	if st.Trace == "" {
		t.Fatal("terminal job status carries no trace ID")
	}

	// The stitched trace, fetched over the wire like a human would.
	raw, err := c.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// One Perfetto process per actor, the daemon pinned first; both workers
	// shipped spans home, so both appear.
	actors := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" && ev.Name == "process_name" {
			actors[ev.Args["name"].(string)] = ev.PID
		}
	}
	if actors[svcobs.ActorDaemon] != 1 {
		t.Fatalf("daemon actor not pinned as pid 1: %v", actors)
	}
	for _, w := range []string{"w1", "w2"} {
		if _, ok := actors[svcobs.ActorWorker(w)]; !ok {
			t.Fatalf("worker %s shipped no spans into the trace; actors %v", w, actors)
		}
	}

	// The span tree covers every shard: a worker-side run span and a
	// daemon-side lease span per shard, plus the job umbrella span.
	names := map[string]bool{}
	leases := 0
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
		if ev.Name == "lease" && ev.Phase == "B" {
			leases++
		}
	}
	for _, s := range st.Shards {
		if !names["run "+s.ID] {
			t.Fatalf("trace has no run span for shard %s; names %v", s.ID, names)
		}
	}
	if leases < st.Total {
		t.Fatalf("trace has %d lease spans for %d shards", leases, st.Total)
	}
	if !names["job "+id] {
		t.Fatal("trace has no job umbrella span")
	}

	// Per-experiment wall-clock distributions land in the final status for
	// the split-factor scheduler: every shard's journaled wall clock rolls up.
	if len(st.Timings) == 0 {
		t.Fatal("terminal status has no per-experiment timings")
	}
	ti, ok := st.Timings["rsum"]
	if !ok || ti.Shards != 4 {
		t.Fatalf("rsum timings = %+v, want 4 shards", st.Timings)
	}
	if ti.MinMS > ti.MeanMS || ti.MeanMS > ti.MaxMS || ti.TotalMS < ti.MaxMS {
		t.Fatalf("rsum timing stats inconsistent: %+v", ti)
	}
}

// drainWithWorkers runs one split job to completion on n in-process pull
// workers and returns the daemon's stable metrics snapshot and the job's
// StableJSON report.
func drainWithWorkers(t *testing.T, n int, obs bool) (snapshot, report []byte) {
	t.Helper()
	reg := rangeRegistry(12)
	cfg := Config{Dir: t.TempDir(), Registry: reg, Workers: 0, Lease: 10 * time.Second}
	if obs {
		cfg.Obs = svcobs.New(nil)
	}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	id, err := d.Submit(JobSpec{Seed: 11, Split: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := NewWorker(d, WorkerConfig{
			Name: fmt.Sprintf("w%d", i+1), Registry: reg, Poll: 20 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	st := waitStatus(t, d, id, JobStatus.Terminal, "metrics drain")
	cancel()
	wg.Wait()
	if st.State != JobDone {
		t.Fatalf("drain with %d workers finished %+v", n, st)
	}
	rep, err := d.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := rep.StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	return d.Obs().Metrics().StableSnapshot(), sj
}

// TestStableMetricsAcrossWorkerCounts pins the volatile-vs-stable metric
// discipline: the deterministic projection of the service metrics registry is
// byte-identical however many workers drain the job, and the job's StableJSON
// is byte-identical with observability on or off.
func TestStableMetricsAcrossWorkerCounts(t *testing.T) {
	snap1, rep1 := drainWithWorkers(t, 1, true)
	snap2, rep2 := drainWithWorkers(t, 2, true)
	snap8, rep8 := drainWithWorkers(t, 8, true)
	if len(snap1) == 0 {
		t.Fatal("stable snapshot is empty")
	}
	if !bytes.Equal(snap1, snap2) || !bytes.Equal(snap1, snap8) {
		t.Fatalf("stable snapshots differ across worker counts:\n1: %s\n2: %s\n8: %s", snap1, snap2, snap8)
	}
	// The snapshot must carry the deterministic series the scheduler reads...
	for _, want := range []string{
		`shard_wall_ms_count{exp="rsum"} 4`,
		`shard_wall_ms_count{exp="plain"} 1`,
		"leases_granted_total 5",
		`shards_completed_total{exp="rsum"} 4`,
		"queue_wait_ms_count 5",
		"jobs_completed_total 1",
	} {
		if !strings.Contains(string(snap1), want) {
			t.Fatalf("stable snapshot missing %q:\n%s", want, snap1)
		}
	}
	// ...and none of the host-timing series marked volatile.
	for _, banned := range []string{"fsync_ms", "lease_rtt_ms", "journal_"} {
		if strings.Contains(string(snap1), banned) {
			t.Fatalf("volatile series %q leaked into the stable snapshot:\n%s", banned, snap1)
		}
	}
	if !bytes.Equal(rep1, rep2) || !bytes.Equal(rep1, rep8) {
		t.Fatal("job StableJSON differs across worker counts")
	}
	_, repOff := drainWithWorkers(t, 2, false)
	if !bytes.Equal(rep1, repOff) {
		t.Fatalf("observability changed the report bytes:\n on: %s\noff: %s", rep1, repOff)
	}
}

// TestReadyzDrainingObserved: the draining readiness response is itself an
// observable event — a 503 from /readyz increments the (volatile) probe
// counter and the drain is logged.
func TestReadyzDrainingObserved(t *testing.T) {
	d, err := Open(Config{Dir: t.TempDir(), Registry: fakeRegistry("a"),
		Workers: 0, Obs: svcobs.New(nil)})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain = %d", resp.StatusCode)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d", resp.StatusCode)
	}
	if got := d.Obs().Metrics().Counter("readyz_draining_total", ""); got != 1 {
		t.Fatalf("readyz_draining_total = %d, want 1", got)
	}
}

// TestTraceSurvivesRestart: the correlation ID is journaled with the job, so
// a daemon killed after submit resumes the job under the same trace and the
// post-restart drain still produces a renderable span tree.
func TestTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Config{Dir: dir, Registry: fakeRegistry("a"), Workers: 0,
		Obs: svcobs.New(nil)})
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Submit(JobSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace == "" {
		t.Fatal("submitted job has no trace ID")
	}
	d.Kill() // crash before anything ran

	d2, err := Open(Config{Dir: dir, Registry: fakeRegistry("a"), Workers: 1,
		Lease: time.Second, Obs: svcobs.New(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Shutdown(context.Background())
	st2 := waitStatus(t, d2, id, JobStatus.Terminal, "post-restart drain")
	if st2.Trace != st.Trace {
		t.Fatalf("trace ID changed across restart: %q vs %q", st2.Trace, st.Trace)
	}
	raw, err := d2.TracePerfetto(id)
	if err != nil {
		t.Fatal(err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("post-restart trace is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "run a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-restart trace has no run span for the replayed shard")
	}
}
