//go:build unix

package service

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestJournalSingleOwner: two live daemons must never share a journal —
// concurrent appenders would interleave frames and corrupt the WAL. The
// second open fails while the first holds the flock, and succeeds again the
// moment the first shuts down (flock also dies with a kill -9'd process, so
// a crashed daemon never wedges its successor).
func TestJournalSingleOwner(t *testing.T) {
	dir := t.TempDir()
	j1, _, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(dir, 0); err == nil ||
		!strings.Contains(err.Error(), "locked by another running daemon") {
		t.Fatalf("second open = %v, want lock error", err)
	}
	if err := j1.close(); err != nil {
		t.Fatal(err)
	}
	j2, _, err := openJournal(dir, 0)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	j2.close()
}

// TestDaemonSingleOwner covers the same contract end to end, including the
// checkpoint path: compaction swaps the journal file under the lock, and the
// directory stays exclusively owned until Shutdown returns.
func TestDaemonSingleOwner(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Registry: fakeRegistry("a"), Workers: 1, Lease: time.Second}
	d1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("concurrent Open = %v, want lock error", err)
	}
	if err := d1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(cfg)
	if err != nil {
		t.Fatalf("open after shutdown: %v", err)
	}
	d2.Shutdown(context.Background())
}
