package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"zenspec/internal/fault"
	"zenspec/internal/harness"
	"zenspec/internal/svcobs"
)

// Completion is one shard attempt's outcome, handed back under its lease
// token — the body of POST /v1/leases/{token}/complete. Spans carries the
// worker's wall-clock trace spans for the attempt; the daemon stitches them
// into the job's trace by correlation ID, which is how a remote worker's
// execution shows up inside the daemon's Perfetto timeline.
type Completion struct {
	Partial *harness.PartialReport `json:"partial,omitempty"`
	Error   string                 `json:"error,omitempty"`
	Overrun bool                   `json:"overrun,omitempty"`
	Spans   []svcobs.Span          `json:"spans,omitempty"`
}

// LeaseSource is the pull side of the job API: claim a shard, keep its lease
// alive, hand back the result. *Daemon implements it in-process; *Client
// implements it over /v1, so the daemon's own pool and remote zenspec-worker
// processes are the same consumer pointed at different transports.
type LeaseSource interface {
	// Lease claims the next pending shard, blocking up to wait. (nil, nil)
	// means nothing was available; ErrDraining means the source is shutting
	// down and will hand out no more work.
	Lease(worker string, wait time.Duration) (*Lease, error)
	// Heartbeat extends the lease and reports trial progress.
	// ErrLeaseNotFound means the lease was revoked: abandon the shard.
	Heartbeat(token string, trialsDone, trialsTotal int) error
	// Complete hands back the shard attempt's outcome.
	Complete(token string, c Completion) error
}

// WorkerConfig configures one Worker.
type WorkerConfig struct {
	// Name identifies the worker to the daemon (bookkeeping only). Defaults
	// to "worker".
	Name string
	// Registry supplies the experiments; it must register the IDs the daemon
	// hands out, or those shards fail with harness.ErrUnknownExperiment.
	Registry *harness.Registry
	// Parallelism is the shard's inner trial-loop parallelism; 0 means 1.
	// Results are byte-identical at any value.
	Parallelism int
	// Poll is how long each Lease call blocks waiting for work; 0 means 2s.
	Poll time.Duration
	// Heartbeat is the keepalive interval; 0 derives TTL/3 from each lease.
	Heartbeat time.Duration
	// ExitOnDrain makes Run return nil when the source reports ErrDraining
	// (the in-process pool's shutdown path). Remote workers leave it false and
	// ride out daemon restarts instead.
	ExitOnDrain bool
	// Backoff and MaxBackoff shape the retry delay after a transport outage;
	// defaults 100ms and 5s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Logger receives one structured record per lease event (claimed, done,
	// failed, abandoned) with consistent job/shard/lease/worker/attempt/trace
	// fields. Nil means silent.
	Logger *slog.Logger
}

// Worker pulls leases from a source and runs the shards on its own registry:
// the execution half of the service, with the scheduling half left entirely
// to the daemon. A worker that dies mid-shard simply stops heartbeating —
// the daemon re-leases the shard, and determinism makes the rerun identical.
type Worker struct {
	src LeaseSource
	cfg WorkerConfig
}

// NewWorker builds a worker over the given lease source.
func NewWorker(src LeaseSource, cfg WorkerConfig) *Worker {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Logger == nil {
		cfg.Logger = svcobs.Discard()
	}
	if cfg.Registry == nil {
		panic("service: WorkerConfig.Registry is required")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 2 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	return &Worker{src: src, cfg: cfg}
}

// Run pulls and executes leases until ctx is cancelled (returning ctx's
// error) or — with ExitOnDrain — the source drains (returning nil).
// Transport outages are ridden out with jittered exponential backoff: a
// remote worker started before its daemon, or surviving a daemon restart,
// reconnects by itself.
func (w *Worker) Run(ctx context.Context) error {
	outages := 0
	bo := fault.Backoff{Base: w.cfg.Backoff, Max: w.cfg.MaxBackoff, Key: "worker/" + w.cfg.Name}
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		l, err := w.src.Lease(w.cfg.Name, w.cfg.Poll)
		switch {
		case err == nil && l == nil:
			outages = 0 // idle poll: the source is healthy, just empty
		case err == nil:
			outages = 0
			w.execute(ctx, l)
		case errors.Is(err, ErrDraining) && w.cfg.ExitOnDrain:
			return nil
		default:
			// Draining (for a persistent worker) and transport failures alike:
			// back off and try again.
			if !sleepCtx(ctx, bo.Delay(outages)) {
				return ctx.Err()
			}
			outages++
		}
	}
}

// execute runs one leased shard: cancel flag threaded into the machines,
// lease heartbeats carrying trial progress, per-shard deadline enforcement,
// and the completion handshake. The attempt's wall-clock span rides back to
// the daemon inside the Completion, stitched into the job's trace there.
func (w *Worker) execute(ctx context.Context, l *Lease) {
	lg := w.cfg.Logger.With(
		"worker", w.cfg.Name, "job", l.Job, "shard", l.Shard.ID(),
		"lease", l.Token, "attempt", l.Attempt, "trace", l.Trace)
	lg.Info("lease claimed")
	actor := svcobs.ActorWorker(w.cfg.Name)
	span := func(name string, start time.Time, args map[string]any) svcobs.Span {
		return svcobs.Span{
			Trace: l.Trace, Actor: actor, Track: l.Shard.ID(), Name: name,
			Phase: "X", StartUS: start.UnixMicro(),
			DurUS: time.Since(start).Microseconds(), Args: args,
		}
	}
	plan, err := fault.Parse(l.Spec.Faults)
	if err != nil {
		lg.Error("shard failed", "error", "faults: "+err.Error())
		w.complete(ctx, l, Completion{Error: fmt.Sprintf("faults: %v", err)})
		return
	}
	rctx := shardRunCtx(l.Spec, plan, w.cfg.Parallelism)

	// Local cancellation composed with the daemon's in-process revocation
	// flag when present; remote workers learn of revocation from Heartbeat.
	cancel := new(atomic.Bool)
	stop := cancel.Load
	if l.cancel != nil {
		remote := l.cancel
		stop = func() bool { return cancel.Load() || remote.Load() }
	}
	rctx.Config.Pipeline.Stop = stop

	var done64, total64 atomic.Int64
	rctx.TrialProgress = func(done, total int) {
		done64.Store(int64(done))
		total64.Store(int64(total))
	}

	hb := w.cfg.Heartbeat
	if hb <= 0 {
		hb = l.TTL / 3
	}
	if hb <= 0 {
		hb = time.Second
	}
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ctx.Done():
				cancel.Store(true)
				return
			case <-t.C:
				if err := w.src.Heartbeat(l.Token, int(done64.Load()), int(total64.Load())); errors.Is(err, ErrLeaseNotFound) {
					// Revoked: another lease owns the shard. Stop burning CPU.
					cancel.Store(true)
					return
				}
			}
		}
	}()

	var overrun atomic.Bool
	if l.Spec.Deadline > 0 {
		timer := time.AfterFunc(l.Spec.Deadline, func() {
			overrun.Store(true)
			cancel.Store(true)
		})
		defer timer.Stop()
	}

	runStart := time.Now()
	p, runErr := w.cfg.Registry.RunTrialRange(rctx, l.Shard.Exp, l.Shard.Lo, l.Shard.Hi)
	close(hbStop)
	hbWG.Wait()
	if ctx.Err() != nil {
		lg.Warn("lease abandoned", "reason", "worker stopping")
		return // abandoned: the lease expires and the daemon re-leases
	}
	comp := Completion{Partial: &p, Overrun: overrun.Load()}
	outcome := "done"
	if runErr != nil {
		comp.Partial, comp.Error = nil, runErr.Error()
		outcome = "failed"
		lg.Error("shard failed", "error", comp.Error, "overrun", comp.Overrun,
			"wall_ms", time.Since(runStart).Milliseconds())
	} else {
		lg.Info("shard done", "wall_ms", time.Since(runStart).Milliseconds())
	}
	comp.Spans = append(comp.Spans, span("run "+l.Shard.ID(), runStart, map[string]any{
		"worker": w.cfg.Name, "attempt": l.Attempt, "outcome": outcome, "overrun": comp.Overrun,
	}))
	w.complete(ctx, l, comp)
}

// complete hands the outcome back, retrying transient failures so one
// dropped connection does not discard a finished shard. ErrLeaseNotFound and
// ErrDraining are terminal: the result has no home anymore.
func (w *Worker) complete(ctx context.Context, l *Lease, c Completion) {
	bo := fault.Backoff{Base: w.cfg.Backoff, Max: w.cfg.MaxBackoff, Key: "complete/" + w.cfg.Name}
	for attempt := 0; attempt < 5; attempt++ {
		err := w.src.Complete(l.Token, c)
		if err == nil || errors.Is(err, ErrLeaseNotFound) || errors.Is(err, ErrDraining) {
			return
		}
		if !sleepCtx(ctx, bo.Delay(attempt)) {
			return
		}
	}
}

// sleepCtx sleeps d unless ctx is cancelled first; it reports whether the
// caller should continue.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
