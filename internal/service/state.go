// Package service is the zenspecd robustness layer: a durable, crash-safe
// job queue over the experiment harness. Suite jobs are journaled to a
// write-ahead log at submission, split into shards — one experiment, or one
// trial range [lo, hi) of a rangeable experiment — and executed by lease-pull
// workers (the daemon's in-process pool and remote zenspec-worker processes
// are the same consumer). Per-shard PartialReport fragments are persisted
// idempotently as they complete. A daemon killed at any point replays the
// journal on the next Open and resumes exactly the shards that had not
// completed; because every trial is deterministic in (seed, experiment,
// trial), the resumed job's merged StableJSON is byte-identical to an
// uninterrupted run's at any shard split and any worker count.
package service

import (
	"fmt"
	"time"

	"zenspec/internal/fault"
	"zenspec/internal/harness"
)

// JobSpec is what a client submits: the same knobs cmd/experiments takes on
// its command line, plus service-side scheduling parameters.
type JobSpec struct {
	// Seed is the experiment seed; with Quick and Only it fully determines
	// every shard's Report.
	Seed  int64 `json:"seed"`
	Quick bool  `json:"quick,omitempty"`
	// Only selects experiment IDs (nil means the whole registry), resolved
	// against the registry at submission and journaled explicitly so a replay
	// does not depend on the registry staying unchanged.
	Only []string `json:"only,omitempty"`
	// Faults is a fault-plan spec in fault.Parse syntax ("", "none", "mild",
	// "default", "harsh", or inline JSON).
	Faults string `json:"faults,omitempty"`
	// Metrics and Profile request the per-experiment micro/profile sections,
	// exactly like the cmd/experiments flags.
	Metrics bool `json:"metrics,omitempty"`
	Profile bool `json:"profile,omitempty"`
	// Split asks the daemon to cut each rangeable experiment into up to this
	// many trial-range shards, so several workers (or machines) drain one
	// experiment concurrently. 0 or 1 keeps whole-experiment shards;
	// experiments without a range decomposition always stay whole. The merged
	// report is byte-identical at any Split.
	Split int `json:"split,omitempty"`
	// Priority orders the queue: higher-priority jobs' shards are leased
	// first; ties go to submission order.
	Priority int `json:"priority,omitempty"`
	// Deadline bounds one shard attempt's wall clock (nanoseconds in JSON).
	// An overrunning attempt is cooperatively cancelled and retried with
	// deterministic backoff, up to Retries times; exhausting the budget fails
	// the shard. Zero means unbounded.
	Deadline time.Duration `json:"deadline,omitempty"`
	// Retries is the per-shard retry budget for deadline overruns.
	Retries int `json:"retries,omitempty"`
}

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Shard states.
const (
	ShardPending = "pending"
	ShardRunning = "running"
	ShardDone    = "done"
	ShardFailed  = "failed"
)

// ShardRef names one unit of leased work: an experiment, or the trial range
// [Lo, Hi) of one. Lo == Hi == 0 means the whole experiment (the harness's
// whole-shard convention).
type ShardRef struct {
	Exp string `json:"exp"`
	Lo  int    `json:"lo,omitempty"`
	Hi  int    `json:"hi,omitempty"`
}

// Whole reports whether the ref names the whole experiment.
func (r ShardRef) Whole() bool { return r.Lo == 0 && r.Hi == 0 }

// ID renders the shard's stable identifier: the bare experiment ID for a
// whole-experiment shard, "exp[lo:hi]" for a trial range.
func (r ShardRef) ID() string {
	if r.Whole() {
		return r.Exp
	}
	return fmt.Sprintf("%s[%d:%d]", r.Exp, r.Lo, r.Hi)
}

// shard is the in-memory execution state of one unit of a job. Lease and
// attempt bookkeeping is volatile by design: a crash loses leases, and replay
// simply re-queues every unresolved shard.
type shard struct {
	def     ShardRef
	id      string // def.ID(), precomputed
	state   string
	attempt int // deadline-overrun retries consumed
	lease   string
	// notBefore delays re-leasing after a retry: the deterministic backoff
	// window.
	notBefore   time.Time
	trialsDone  int
	trialsTotal int
	err         string
	// wallMS is the completed shard's host wall clock, lifted from its
	// journaled PartialReport — the raw material of the per-experiment timing
	// distributions a split-factor scheduler consumes. Host-dependent, so it
	// never feeds the merged report.
	wallMS float64
	// enqueuedAt is when the shard last became pending (submission, retry,
	// revocation — or journal replay, where the reopen moment is the truthful
	// start of its wait); it feeds the queue-wait observability only.
	enqueuedAt time.Time
}

// job is one submitted suite with its shard table.
type job struct {
	id  string
	seq int // submission order, the priority tiebreak
	// trace is the job's observability correlation ID (journaled with the
	// submit record; empty for jobs from legacy journals).
	trace  string
	spec   JobSpec
	plan   fault.Plan
	state  string
	err    string
	exps   []string // experiment order = registry selection order at submit time
	order  []string // shard IDs in lease order
	shards map[string]*shard
	// partials holds completed shard fragments, keyed by shard ID; the
	// coordinator assembles them commutatively (MergeTrialRanges per
	// experiment, then Assemble) into the SuiteReport.
	partials map[string]*harness.PartialReport
	// merged memoizes fully-assembled per-experiment reports. A done shard's
	// partial never changes (first completion wins), so once every shard of
	// an experiment resolved done its merged report is final.
	merged map[string]harness.Report
}

func (j *job) active() bool { return j.state == JobQueued || j.state == JobRunning }

func (j *job) nextPending(now time.Time) *shard {
	for _, id := range j.order {
		if s := j.shards[id]; s.state == ShardPending && !now.Before(s.notBefore) {
			return s
		}
	}
	return nil
}

func (j *job) counts() (done, failed, total int) {
	for _, s := range j.shards {
		switch s.state {
		case ShardDone:
			done++
		case ShardFailed:
			failed++
		}
	}
	return done, failed, len(j.shards)
}

// expComplete reports whether every shard of the experiment resolved done.
func (j *job) expComplete(exp string) bool {
	any := false
	for _, id := range j.order {
		if s := j.shards[id]; s.def.Exp == exp {
			any = true
			if s.state != ShardDone {
				return false
			}
		}
	}
	return any
}

// finalize moves the job to its terminal state once every shard resolved.
func (j *job) finalize() {
	done, failed, total := j.counts()
	if done+failed < total {
		return
	}
	if failed > 0 {
		j.state = JobFailed
		if j.err == "" {
			for _, id := range j.order {
				if s := j.shards[id]; s.state == ShardFailed {
					j.err = fmt.Sprintf("shard %s: %s", s.id, s.err)
					break
				}
			}
		}
		return
	}
	j.state = JobDone
}

// ShardStatus is the public per-shard view.
type ShardStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Attempt int    `json:"attempt,omitempty"`
	// TrialsDone/TrialsTotal stream the running shard's trial-loop progress
	// (zero for experiments that do not report it).
	TrialsDone  int    `json:"trials_done,omitempty"`
	TrialsTotal int    `json:"trials_total,omitempty"`
	Error       string `json:"error,omitempty"`
	// WallMS is the done shard's host wall clock (from its journaled
	// fragment). Host-dependent: present in status views only, never in the
	// merged report's StableJSON.
	WallMS float64 `json:"wall_ms,omitempty"`
}

// ExpTiming summarizes one experiment's completed-shard wall-clock
// distribution within a job — the observed-timing surface a split-factor
// scheduler reads back to size the next submission's Split.
type ExpTiming struct {
	Shards  int     `json:"shards"`
	TotalMS float64 `json:"total_ms"`
	MinMS   float64 `json:"min_ms"`
	MaxMS   float64 `json:"max_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// JobStatus is the public job view served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string  `json:"id"`
	State string  `json:"state"`
	Spec  JobSpec `json:"spec"`
	// Trace is the job's observability correlation ID; its stitched Perfetto
	// trace is served at GET /v1/jobs/{id}/trace while the daemon holds it.
	Trace  string        `json:"trace,omitempty"`
	Done   int           `json:"done"`
	Failed int           `json:"failed,omitempty"`
	Total  int           `json:"total"`
	Shards []ShardStatus `json:"shards"`
	// Timings is the per-experiment wall-clock distribution over completed
	// shards, persisted via the journaled shard fragments (it survives
	// restarts) and keyed by experiment ID.
	Timings map[string]ExpTiming `json:"timings,omitempty"`
	Error   string               `json:"error,omitempty"`
}

func (j *job) status() JobStatus {
	done, failed, total := j.counts()
	st := JobStatus{
		ID: j.id, State: j.state, Spec: j.spec, Trace: j.trace,
		Done: done, Failed: failed, Total: total, Error: j.err,
	}
	for _, id := range j.order {
		s := j.shards[id]
		st.Shards = append(st.Shards, ShardStatus{
			ID: s.id, State: s.state, Attempt: s.attempt,
			TrialsDone: s.trialsDone, TrialsTotal: s.trialsTotal, Error: s.err,
			WallMS: s.wallMS,
		})
		if s.state == ShardDone {
			if st.Timings == nil {
				st.Timings = map[string]ExpTiming{}
			}
			t := st.Timings[s.def.Exp]
			if t.Shards == 0 || s.wallMS < t.MinMS {
				t.MinMS = s.wallMS
			}
			if s.wallMS > t.MaxMS {
				t.MaxMS = s.wallMS
			}
			t.Shards++
			t.TotalMS += s.wallMS
			t.MeanMS = t.TotalMS / float64(t.Shards)
			st.Timings[s.def.Exp] = t
		}
	}
	return st
}

// Terminal reports whether the job reached a final state.
func (s JobStatus) Terminal() bool { return s.State == JobDone || s.State == JobFailed }

// jobTable is the replayable state: everything in it is a pure fold of the
// journal records, so replaying a journal reconstructs it exactly. apply is
// idempotent — duplicate records (possible when a crash lands between a
// record's fsync and the next state read, or when a compaction snapshot
// replays after the history it summarizes) are no-ops.
type jobTable struct {
	jobs  map[string]*job
	order []string
	seq   int
}

func newJobTable() *jobTable {
	return &jobTable{jobs: map[string]*job{}}
}

// submitDefs resolves a submit record's shard list: Defs when present, the
// legacy pre-/v1 whole-experiment Shards list otherwise.
func submitDefs(rec record) []ShardRef {
	if len(rec.Defs) > 0 {
		return rec.Defs
	}
	defs := make([]ShardRef, 0, len(rec.Shards))
	for _, id := range rec.Shards {
		defs = append(defs, ShardRef{Exp: id})
	}
	return defs
}

// donePartial resolves a shard-done record's fragment: Partial when present,
// the legacy whole-shard Report otherwise.
func donePartial(rec record) *harness.PartialReport {
	if rec.Partial != nil {
		return rec.Partial
	}
	if rec.Report != nil {
		return &harness.PartialReport{Exp: rec.Shard, Report: rec.Report}
	}
	return nil
}

// apply folds one journal record into the table. Unknown job or shard
// references (a journal from a newer layout, or records orphaned by manual
// edits) are skipped rather than fatal: the journal heals forward.
func (t *jobTable) apply(rec record) {
	switch rec.Type {
	case recSubmit:
		if rec.Spec == nil || rec.Job == "" {
			return
		}
		if _, dup := t.jobs[rec.Job]; dup {
			return
		}
		t.seq++
		j := &job{
			id: rec.Job, seq: t.seq, trace: rec.Trace, spec: *rec.Spec, state: JobQueued,
			shards:   map[string]*shard{},
			partials: map[string]*harness.PartialReport{},
			merged:   map[string]harness.Report{},
		}
		now := time.Now() // volatile queue-wait origin, not replayed state
		seenExp := map[string]bool{}
		for _, def := range submitDefs(rec) {
			id := def.ID()
			if _, dup := j.shards[id]; dup {
				continue
			}
			j.shards[id] = &shard{def: def, id: id, state: ShardPending, enqueuedAt: now}
			j.order = append(j.order, id)
			if !seenExp[def.Exp] {
				seenExp[def.Exp] = true
				j.exps = append(j.exps, def.Exp)
			}
		}
		if plan, err := fault.Parse(j.spec.Faults); err != nil {
			j.state = JobFailed
			j.err = err.Error()
		} else {
			j.plan = plan
		}
		if len(j.shards) == 0 && j.state == JobQueued {
			j.state = JobDone
		}
		t.jobs[rec.Job] = j
		t.order = append(t.order, rec.Job)
	case recShardDone:
		j := t.jobs[rec.Job]
		p := donePartial(rec)
		if j == nil || p == nil {
			return
		}
		s := j.shards[rec.Shard]
		if s == nil || s.state == ShardDone || s.state == ShardFailed {
			return // idempotent: the first completion wins
		}
		s.state = ShardDone
		s.lease = ""
		s.wallMS = p.WallMS
		j.partials[rec.Shard] = p
		if j.state == JobQueued {
			j.state = JobRunning
		}
		j.finalize()
	case recShardFailed:
		j := t.jobs[rec.Job]
		if j == nil {
			return
		}
		s := j.shards[rec.Shard]
		if s == nil || s.state == ShardDone || s.state == ShardFailed {
			return
		}
		s.state = ShardFailed
		s.lease = ""
		s.err = rec.Error
		if j.state == JobQueued {
			j.state = JobRunning
		}
		j.finalize()
	case recJobDone:
		if j := t.jobs[rec.Job]; j != nil && j.active() {
			j.state = JobDone
		}
	case recJobFailed:
		if j := t.jobs[rec.Job]; j != nil && j.active() {
			j.state = JobFailed
			if j.err == "" {
				j.err = rec.Error
			}
		}
	case recJobArchive:
		j := t.jobs[rec.Job]
		if j == nil || j.active() {
			return // never archive live work
		}
		delete(t.jobs, rec.Job)
		for i, id := range t.order {
			if id == rec.Job {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
	}
}

// records renders the table back into a minimal equivalent journal — the
// snapshot a compaction or clean-shutdown checkpoint writes. Archived jobs
// are simply absent.
func (t *jobTable) records() []record {
	var out []record
	for _, id := range t.order {
		j := t.jobs[id]
		spec := j.spec
		defs := make([]ShardRef, 0, len(j.order))
		for _, sid := range j.order {
			defs = append(defs, j.shards[sid].def)
		}
		out = append(out, record{Type: recSubmit, Job: j.id, Trace: j.trace, Spec: &spec, Defs: defs})
		for _, sid := range j.order {
			s := j.shards[sid]
			switch s.state {
			case ShardDone:
				out = append(out, record{Type: recShardDone, Job: j.id, Shard: sid, Partial: j.partials[sid]})
			case ShardFailed:
				out = append(out, record{Type: recShardFailed, Job: j.id, Shard: sid, Error: s.err})
			}
		}
		switch j.state {
		case JobDone:
			out = append(out, record{Type: recJobDone, Job: j.id})
		case JobFailed:
			out = append(out, record{Type: recJobFailed, Job: j.id, Error: j.err})
		}
	}
	return out
}
