// Package service is the zenspecd robustness layer: a durable, crash-safe
// job queue over the experiment harness. Suite jobs are journaled to a
// write-ahead log at submission, executed shard by shard (one shard = one
// experiment, the unit whose Report is independent of everything else that
// runs), and their per-shard Report fragments are persisted idempotently as
// they complete. A daemon killed at any point replays the journal on the next
// Open and resumes exactly the shards that had not completed; because every
// shard is deterministic in (seed, experiment, trial), the resumed job's
// merged StableJSON is byte-identical to an uninterrupted run's.
package service

import (
	"fmt"
	"time"

	"zenspec/internal/fault"
	"zenspec/internal/harness"
)

// JobSpec is what a client submits: the same knobs cmd/experiments takes on
// its command line, plus service-side scheduling parameters.
type JobSpec struct {
	// Seed is the experiment seed; with Quick and Only it fully determines
	// every shard's Report.
	Seed  int64 `json:"seed"`
	Quick bool  `json:"quick,omitempty"`
	// Only selects experiment IDs (nil means the whole registry), resolved
	// against the registry at submission and journaled explicitly so a replay
	// does not depend on the registry staying unchanged.
	Only []string `json:"only,omitempty"`
	// Faults is a fault-plan spec in fault.Parse syntax ("", "none", "mild",
	// "default", "harsh", or inline JSON).
	Faults string `json:"faults,omitempty"`
	// Metrics and Profile request the per-experiment micro/profile sections,
	// exactly like the cmd/experiments flags.
	Metrics bool `json:"metrics,omitempty"`
	Profile bool `json:"profile,omitempty"`
	// Priority orders the queue: higher-priority jobs' shards are leased
	// first; ties go to submission order.
	Priority int `json:"priority,omitempty"`
	// Deadline bounds one shard attempt's wall clock (nanoseconds in JSON).
	// An overrunning attempt is cooperatively cancelled and retried with
	// deterministic backoff, up to Retries times; exhausting the budget fails
	// the shard. Zero means unbounded.
	Deadline time.Duration `json:"deadline,omitempty"`
	// Retries is the per-shard retry budget for deadline overruns.
	Retries int `json:"retries,omitempty"`
}

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Shard states.
const (
	ShardPending = "pending"
	ShardRunning = "running"
	ShardDone    = "done"
	ShardFailed  = "failed"
)

// shard is the in-memory execution state of one experiment of a job. Lease
// and attempt bookkeeping is volatile by design: a crash loses leases, and
// replay simply re-queues every unresolved shard.
type shard struct {
	id      string
	state   string
	attempt int // deadline-overrun retries consumed
	lease   int64
	// notBefore delays re-leasing after a retry: the deterministic backoff
	// window.
	notBefore   time.Time
	trialsDone  int
	trialsTotal int
	err         string
}

// job is one submitted suite with its shard table.
type job struct {
	id     string
	seq    int // submission order, the priority tiebreak
	spec   JobSpec
	plan   fault.Plan
	state  string
	err    string
	order  []string // shard order = registry selection order at submit time
	shards map[string]*shard
	// reports holds completed shard reports, keyed by experiment ID; the
	// coordinator assembles them commutatively into the SuiteReport.
	reports map[string]harness.Report
}

func (j *job) active() bool { return j.state == JobQueued || j.state == JobRunning }

func (j *job) nextPending(now time.Time) *shard {
	for _, id := range j.order {
		if s := j.shards[id]; s.state == ShardPending && !now.Before(s.notBefore) {
			return s
		}
	}
	return nil
}

func (j *job) counts() (done, failed, total int) {
	for _, s := range j.shards {
		switch s.state {
		case ShardDone:
			done++
		case ShardFailed:
			failed++
		}
	}
	return done, failed, len(j.shards)
}

// finalize moves the job to its terminal state once every shard resolved.
func (j *job) finalize() {
	done, failed, total := j.counts()
	if done+failed < total {
		return
	}
	if failed > 0 {
		j.state = JobFailed
		if j.err == "" {
			for _, id := range j.order {
				if s := j.shards[id]; s.state == ShardFailed {
					j.err = fmt.Sprintf("shard %s: %s", id, s.err)
					break
				}
			}
		}
		return
	}
	j.state = JobDone
}

// ShardStatus is the public per-shard view.
type ShardStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Attempt int    `json:"attempt,omitempty"`
	// TrialsDone/TrialsTotal stream the running shard's trial-loop progress
	// (zero for experiments that do not report it).
	TrialsDone  int    `json:"trials_done,omitempty"`
	TrialsTotal int    `json:"trials_total,omitempty"`
	Error       string `json:"error,omitempty"`
}

// JobStatus is the public job view served by GET /jobs/{id}.
type JobStatus struct {
	ID     string        `json:"id"`
	State  string        `json:"state"`
	Spec   JobSpec       `json:"spec"`
	Done   int           `json:"done"`
	Failed int           `json:"failed,omitempty"`
	Total  int           `json:"total"`
	Shards []ShardStatus `json:"shards"`
	Error  string        `json:"error,omitempty"`
}

func (j *job) status() JobStatus {
	done, failed, total := j.counts()
	st := JobStatus{
		ID: j.id, State: j.state, Spec: j.spec,
		Done: done, Failed: failed, Total: total, Error: j.err,
	}
	for _, id := range j.order {
		s := j.shards[id]
		st.Shards = append(st.Shards, ShardStatus{
			ID: s.id, State: s.state, Attempt: s.attempt,
			TrialsDone: s.trialsDone, TrialsTotal: s.trialsTotal, Error: s.err,
		})
	}
	return st
}

// Terminal reports whether the job reached a final state.
func (s JobStatus) Terminal() bool { return s.State == JobDone || s.State == JobFailed }

// jobTable is the replayable state: everything in it is a pure fold of the
// journal records, so replaying a journal reconstructs it exactly. apply is
// idempotent — duplicate records (possible when a crash lands between a
// record's fsync and the next state read) are no-ops.
type jobTable struct {
	jobs  map[string]*job
	order []string
	seq   int
}

func newJobTable() *jobTable {
	return &jobTable{jobs: map[string]*job{}}
}

// apply folds one journal record into the table. Unknown job or shard
// references (a journal from a newer layout, or records orphaned by manual
// edits) are skipped rather than fatal: the journal heals forward.
func (t *jobTable) apply(rec record) {
	switch rec.Type {
	case recSubmit:
		if rec.Spec == nil || rec.Job == "" {
			return
		}
		if _, dup := t.jobs[rec.Job]; dup {
			return
		}
		t.seq++
		j := &job{
			id: rec.Job, seq: t.seq, spec: *rec.Spec, state: JobQueued,
			order: rec.Shards, shards: map[string]*shard{},
			reports: map[string]harness.Report{},
		}
		for _, id := range rec.Shards {
			j.shards[id] = &shard{id: id, state: ShardPending}
		}
		if plan, err := fault.Parse(j.spec.Faults); err != nil {
			j.state = JobFailed
			j.err = err.Error()
		} else {
			j.plan = plan
		}
		if len(j.shards) == 0 && j.state == JobQueued {
			j.state = JobDone
		}
		t.jobs[rec.Job] = j
		t.order = append(t.order, rec.Job)
	case recShardDone:
		j := t.jobs[rec.Job]
		if j == nil || rec.Report == nil {
			return
		}
		s := j.shards[rec.Shard]
		if s == nil || s.state == ShardDone || s.state == ShardFailed {
			return // idempotent: the first completion wins
		}
		s.state = ShardDone
		s.lease = 0
		j.reports[rec.Shard] = *rec.Report
		if j.state == JobQueued {
			j.state = JobRunning
		}
		j.finalize()
	case recShardFailed:
		j := t.jobs[rec.Job]
		if j == nil {
			return
		}
		s := j.shards[rec.Shard]
		if s == nil || s.state == ShardDone || s.state == ShardFailed {
			return
		}
		s.state = ShardFailed
		s.lease = 0
		s.err = rec.Error
		if j.state == JobQueued {
			j.state = JobRunning
		}
		j.finalize()
	case recJobDone:
		if j := t.jobs[rec.Job]; j != nil && j.active() {
			j.state = JobDone
		}
	case recJobFailed:
		if j := t.jobs[rec.Job]; j != nil && j.active() {
			j.state = JobFailed
			if j.err == "" {
				j.err = rec.Error
			}
		}
	}
}

// records renders the table back into a minimal equivalent journal — the
// checkpoint a clean shutdown compacts to.
func (t *jobTable) records() []record {
	var out []record
	for _, id := range t.order {
		j := t.jobs[id]
		spec := j.spec
		out = append(out, record{Type: recSubmit, Job: j.id, Spec: &spec, Shards: j.order})
		for _, sid := range j.order {
			s := j.shards[sid]
			switch s.state {
			case ShardDone:
				rep := j.reports[sid]
				out = append(out, record{Type: recShardDone, Job: j.id, Shard: sid, Report: &rep})
			case ShardFailed:
				out = append(out, record{Type: recShardFailed, Job: j.id, Shard: sid, Error: s.err})
			}
		}
		switch j.state {
		case JobDone:
			out = append(out, record{Type: recJobDone, Job: j.id})
		case JobFailed:
			out = append(out, record{Type: recJobFailed, Job: j.id, Error: j.err})
		}
	}
	return out
}
