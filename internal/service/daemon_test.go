package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"zenspec/internal/asm"
	"zenspec/internal/harness"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/svcobs"
)

// fakeRegistry builds a registry of trivial deterministic experiments: each
// report carries the seed so merged output is checkable, and each boots
// nothing, so tests stay fast.
func fakeRegistry(ids ...string) *harness.Registry {
	reg := harness.NewRegistry()
	for _, id := range ids {
		id := id
		reg.Register(harness.Experiment{
			ID: id, Title: "fake " + id, Paper: "test fixture", Tags: []string{"fake"},
			Run: func(ctx harness.Ctx) harness.Report {
				var r harness.Report
				r.Add("seed", float64(ctx.Config.Seed), 0, 1e9)
				r.Detail = fmt.Sprintf("%s@%d", id, ctx.Config.Seed)
				return r
			},
		})
	}
	return reg
}

// spinRegistry registers one experiment that simulates forever until the
// cooperative cancel flag stops it — plus optionally a gate: once gate is
// nonzero the experiment returns immediately (to test retry-then-succeed).
func spinRegistry(id string, gate *atomic.Int64) *harness.Registry {
	reg := harness.NewRegistry()
	reg.Register(harness.Experiment{
		ID: id, Title: "spinner", Paper: "test fixture", Tags: []string{"fake"},
		Run: func(ctx harness.Ctx) harness.Report {
			var r harness.Report
			if gate != nil && gate.Add(1) > 1 {
				r.Add("ok", 1, 1, 1)
				return r
			}
			k := kernel.New(ctx.Config)
			p := k.NewProcess("spin", kernel.DomainUser)
			b := asm.NewBuilder()
			b.Movi(isa.RAX, 1)
			b.Label("spin")
			b.Jnz(isa.RAX, "spin")
			p.MapCode(0x400000, b.MustAssemble(0x400000))
			k.Run(p, 0x400000, 1<<40)
			r.Add("ok", 1, 1, 1)
			return r
		},
	})
	return reg
}

func waitStatus(t *testing.T, d *Daemon, id string, pred func(JobStatus) bool, what string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := d.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; status %+v", what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	reg := fakeRegistry("a", "b", "c")
	d, err := Open(Config{Dir: t.TempDir(), Registry: reg, Workers: 2, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Seed: 42}
	id, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, d, id, JobStatus.Terminal, "job completion")
	if st.State != JobDone || st.Done != 3 {
		t.Fatalf("job finished %+v", st)
	}
	got, err := d.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	want, err := reg.Run(harness.Ctx{Config: shardRunCtx(spec, d.tab.jobs[id].plan, d.cfg.Parallelism).Config, Quick: spec.Quick}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := got.StableJSON()
	wb, _ := want.StableJSON()
	if !bytes.Equal(gb, wb) {
		t.Fatalf("service report differs from direct run:\n%s\nvs\n%s", gb, wb)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	d, err := Open(Config{Dir: t.TempDir(), Registry: fakeRegistry("a"), Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	if _, err := d.Submit(JobSpec{Only: []string{"nope"}}); !errors.Is(err, harness.ErrUnknownExperiment) {
		t.Fatalf("unknown experiment error = %v", err)
	}
	if _, err := d.Submit(JobSpec{Faults: "{broken"}); err == nil {
		t.Fatal("bad fault plan accepted")
	}
	if _, err := d.Status("ghost"); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("unknown job error = %v", err)
	}
}

// TestReplayDeregisteredExperiment: a journaled job referencing an
// experiment the registry no longer has must fail that shard with the typed
// error — job marked failed, no panic, other shards unaffected.
func TestReplayDeregisteredExperiment(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Config{Dir: dir, Registry: fakeRegistry("a", "b"), Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Submit(JobSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d.Kill() // crash before anything ran

	d2, err := Open(Config{Dir: dir, Registry: fakeRegistry("a"), Workers: 1, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Shutdown(context.Background())
	st := waitStatus(t, d2, id, JobStatus.Terminal, "replayed job")
	if st.State != JobFailed {
		t.Fatalf("job state %q, want failed: %+v", st.State, st)
	}
	if !strings.Contains(st.Error, "unknown experiment") {
		t.Fatalf("job error %q does not carry the typed cause", st.Error)
	}
	byID := map[string]ShardStatus{}
	for _, s := range st.Shards {
		byID[s.ID] = s
	}
	if byID["a"].State != ShardDone {
		t.Fatalf("surviving shard a: %+v", byID["a"])
	}
	if byID["b"].State != ShardFailed || !strings.Contains(byID["b"].Error, "unknown experiment") {
		t.Fatalf("deregistered shard b: %+v", byID["b"])
	}
	// The partial report still assembles, with the failed shard skipped.
	rep, err := d2.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "a" {
		t.Fatalf("partial report experiments: %+v", rep.Experiments)
	}
}

// TestLeaseExpiryRequeues: a lease that stops heartbeating (its worker died)
// is revoked by the monitor, its zombie run is cancelled, its shard is
// re-queued, and a completion arriving on the stale token is discarded.
func TestLeaseExpiryRequeues(t *testing.T) {
	d, err := Open(Config{Dir: t.TempDir(), Registry: fakeRegistry("a"), Workers: 0, Lease: 30 * time.Millisecond, Obs: svcobs.New(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	id, err := d.Submit(JobSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Lease by hand, as a worker would, then never heartbeat.
	li, err := d.Lease("zombie", 0)
	if err != nil || li == nil {
		t.Fatalf("no lease available: %v", err)
	}
	waitStatus(t, d, id, func(st JobStatus) bool { return st.Shards[0].State == ShardPending }, "lease revocation")
	if !li.cancel.Load() {
		t.Fatal("revoked lease's run was not cancelled")
	}
	// The revocation is an observable event: counted globally and attributed
	// to the abandoned shard's experiment.
	if got := d.Obs().Metrics().Counter("lease_revocations_total", ""); got != 1 {
		t.Fatalf("lease_revocations_total = %d, want 1", got)
	}
	if got := d.Obs().Metrics().Counter("shards_abandoned_total", svcobs.Label("exp", "a")); got != 1 {
		t.Fatalf(`shards_abandoned_total{exp="a"} = %d, want 1`, got)
	}
	// The stale completion must be refused: the token is gone and the shard
	// stays pending.
	var rep harness.Report
	rep.Add("stale", 1, 1, 1)
	p := &harness.PartialReport{Report: &rep}
	if err := d.Complete(li.Token, Completion{Partial: p}); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("stale completion = %v, want ErrLeaseNotFound", err)
	}
	st, err := d.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards[0].State != ShardPending || st.Done != 0 {
		t.Fatalf("stale completion applied: %+v", st)
	}
	// A stale heartbeat likewise tells the worker its lease is gone.
	if err := d.Heartbeat(li.Token, 1, 2); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("stale heartbeat = %v, want ErrLeaseNotFound", err)
	}
	// A fresh lease owns the shard and completes it for real.
	li2, err := d.Lease("healthy", 0)
	if err != nil || li2 == nil {
		t.Fatalf("re-lease failed: %v, %+v", err, li2)
	}
	if li2.Token == li.Token {
		t.Fatal("re-lease reused the revoked token")
	}
	if err := d.Complete(li2.Token, Completion{Partial: p}); err != nil {
		t.Fatal(err)
	}
	st, _ = d.Status(id)
	if st.State != JobDone {
		t.Fatalf("job after real completion: %+v", st)
	}
}

// TestPriorityOrdersLeases: shards of a higher-priority job are leased ahead
// of an earlier-submitted lower-priority one.
func TestPriorityOrdersLeases(t *testing.T) {
	d, err := Open(Config{Dir: t.TempDir(), Registry: fakeRegistry("a"), Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	low, err := d.Submit(JobSpec{Seed: 1, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	high, err := d.Submit(JobSpec{Seed: 2, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	first, err := d.Lease("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := d.Lease("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if first == nil || first.Job != high {
		t.Fatalf("first lease went to %+v, want high-priority %s", first, high)
	}
	if second == nil || second.Job != low {
		t.Fatalf("second lease went to %+v, want %s", second, low)
	}
}

// TestDeadlineRetryThenSuccess: the first attempt overruns its per-shard
// deadline and is cooperatively cancelled; the deterministic backoff elapses
// and the retry succeeds.
func TestDeadlineRetryThenSuccess(t *testing.T) {
	var gate atomic.Int64
	d, err := Open(Config{
		Dir: t.TempDir(), Registry: spinRegistry("spin", &gate),
		Workers: 1, Lease: time.Second, Backoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	id, err := d.Submit(JobSpec{Seed: 3, Deadline: 50 * time.Millisecond, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, d, id, JobStatus.Terminal, "retried job")
	if st.State != JobDone {
		t.Fatalf("job %+v", st)
	}
	if st.Shards[0].Attempt == 0 {
		t.Fatalf("no retry recorded: %+v", st.Shards[0])
	}
}

// TestDeadlineRetriesExhausted: a shard that overruns every attempt fails
// permanently with the deadline error, and the job fails with it.
func TestDeadlineRetriesExhausted(t *testing.T) {
	d, err := Open(Config{
		Dir: t.TempDir(), Registry: spinRegistry("spin", nil),
		Workers: 1, Lease: time.Second, Backoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	id, err := d.Submit(JobSpec{Seed: 3, Deadline: 40 * time.Millisecond, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, d, id, JobStatus.Terminal, "exhausted job")
	if st.State != JobFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("job %+v", st)
	}
	if !strings.Contains(st.Shards[0].Error, "2 attempts") {
		t.Fatalf("shard error %q does not count attempts", st.Shards[0].Error)
	}
}

// TestShutdownDrainsAndCheckpoints: Shutdown lets queued work finish, then
// compacts the journal; a reopened daemon sees the completed job without
// replaying per-append history, and Submit after drain is refused.
func TestShutdownDrainsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	reg := fakeRegistry("a", "b")
	d, err := Open(Config{Dir: dir, Registry: reg, Workers: 1, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Submit(JobSpec{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, d, id, JobStatus.Terminal, "job completion")
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(JobSpec{Seed: 1}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown = %v, want ErrDraining", err)
	}
	if d.Ready() {
		t.Fatal("daemon still ready after shutdown")
	}
	d2, err := Open(Config{Dir: dir, Registry: reg, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Shutdown(context.Background())
	st, err := d2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Done != 2 {
		t.Fatalf("checkpointed job replayed as %+v", st)
	}
}
