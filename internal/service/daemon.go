package service

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"zenspec/internal/fault"
	"zenspec/internal/harness"
	"zenspec/internal/kernel"
	"zenspec/internal/pipeline"
	"zenspec/internal/prof"
	"zenspec/internal/svcobs"
)

// APIVersion is the daemon's wire protocol version, served by GET /v1/meta
// and asserted by Client before its first real request.
const APIVersion = "v1"

// defaultKeepJobs bounds how many terminal (done or failed) jobs the daemon
// retains before archiving the oldest; see Config.KeepJobs.
const defaultKeepJobs = 256

// Config configures a Daemon.
type Config struct {
	// Dir is the daemon's durable state directory (created if absent); the
	// journal lives under it as wal-*.seg segments guarded by wal.lock.
	Dir string
	// Registry supplies the experiments; nil panics — callers pass
	// suite.Registry() (cmd/zenspecd does) or a test registry.
	Registry *harness.Registry
	// Workers is the in-process shard worker pool size; 0 runs no workers (a
	// queue-only daemon whose shards are drained entirely by remote
	// zenspec-worker processes, or by tests driving leases by hand).
	Workers int
	// Parallelism is each shard's inner trial-loop parallelism (the
	// kernel.Config knob); 0 means 1, keeping worker count and machine count
	// aligned. Results are byte-identical at any value.
	Parallelism int
	// Lease is the shard lease TTL; a lease not heartbeaten within it is
	// revoked and its shard re-queued. 0 means 5s.
	Lease time.Duration
	// Backoff and MaxBackoff shape the deterministic retry delay after a
	// deadline overrun; defaults 100ms and 5s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// SegmentBytes is the journal segment size limit — an append pushing the
	// active segment past it seals the segment and starts a new one, and the
	// daemon compacts once enough segments pile up. 0 means 4MiB.
	SegmentBytes int64
	// KeepJobs bounds how many terminal jobs the daemon retains: beyond it the
	// oldest terminal jobs are archived (journaled, then dropped at the next
	// compaction), so a long-lived daemon's state stays bounded. 0 means 256;
	// negative keeps everything.
	KeepJobs int
	// Obs is the service observability hub: job-lifecycle traces, the
	// zenspec_service_* metrics on /metrics, and the daemon's structured log.
	// Nil disables all three (every emission site is nil-safe). Observability
	// is strictly off the report path: job StableJSON is byte-identical with
	// Obs set or nil.
	Obs *svcobs.Hub
}

// Lease is one granted unit of work: run the shard — RunTrialRange(Shard.Exp,
// Shard.Lo, Shard.Hi) under the spec's configuration — heartbeat the token
// before TTL elapses, and Complete with the resulting PartialReport. The
// same struct serves the in-process pool and the remote /v1/leases wire.
type Lease struct {
	Token string        `json:"token"`
	Job   string        `json:"job"`
	Shard ShardRef      `json:"shard"`
	Spec  JobSpec       `json:"spec"`
	TTL   time.Duration `json:"ttl"`
	// Trace is the job's observability correlation ID: the worker tags its
	// log records and attempt spans with it, so a remote attempt stitches
	// into the daemon's trace. Empty when the job predates tracing.
	Trace string `json:"trace,omitempty"`
	// Attempt numbers this lease's shard attempt (1-based).
	Attempt int `json:"attempt,omitempty"`
	// cancel is the daemon-side revocation flag, wired in-process only; remote
	// workers learn of revocation from Heartbeat returning ErrLeaseNotFound.
	cancel *atomic.Bool
}

// leaseInfo is the daemon's ledger entry for one outstanding lease. The
// cancel flag is shared with the in-process worker's pipeline.Config.Stop, so
// revoking a lease actually stops the simulation rather than orphaning it.
type leaseInfo struct {
	token  string
	worker string
	jobID  string
	shard  string
	expiry time.Time
	cancel *atomic.Bool
	// Observability bookkeeping: the job's trace, the shard's experiment and
	// attempt number, the grant time (lease round-trip = grant to first
	// heartbeat), and whether that first heartbeat arrived.
	trace        string
	exp          string
	attempt      int
	grantedAt    time.Time
	sawHeartbeat bool
}

// Meta is the daemon's self-description, served by GET /v1/meta.
type Meta struct {
	APIVersion  string   `json:"api_version"`
	GoVersion   string   `json:"go_version"`
	Revision    string   `json:"revision,omitempty"`
	Experiments []string `json:"experiments"`
}

// Daemon is the zenspecd core: the journaled job table, the lease ledger and
// the in-process worker pool (itself just a lease consumer, interchangeable
// with remote zenspec-worker processes). All public methods are safe for
// concurrent use.
type Daemon struct {
	cfg Config
	reg *harness.Registry
	tel *prof.Telemetry
	obs *svcobs.Hub  // nil when observability is off; all uses are nil-safe
	log *slog.Logger // never nil (discard logger when obs is off)
	// epoch is this daemon incarnation's token prefix: a token minted before a
	// crash can never collide with a successor's, so a worker completing
	// against a restarted daemon gets ErrLeaseNotFound, not silent corruption.
	epoch int64

	mu       sync.Mutex
	cond     *sync.Cond
	jnl      *journal
	tab      *jobTable
	leases   map[string]*leaseInfo
	nextID   int
	nextTok  int64
	draining bool
	killed   bool
	closed   bool

	stop    chan struct{}
	workers sync.WaitGroup
	monitor sync.WaitGroup
}

// Open replays the journal under cfg.Dir (healing a corrupt tail), resumes
// every unfinished job at shard granularity, and starts the worker pool.
func Open(cfg Config) (*Daemon, error) {
	if cfg.Registry == nil {
		panic("service: Config.Registry is required")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 5 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	jnl, recs, err := openJournal(cfg.Dir, cfg.SegmentBytes)
	if err != nil {
		return nil, err
	}
	tab := newJobTable()
	for _, rec := range recs {
		tab.apply(rec)
	}
	d := &Daemon{
		cfg:    cfg,
		reg:    cfg.Registry,
		tel:    prof.NewTelemetry(),
		obs:    cfg.Obs,
		log:    cfg.Obs.Logger(),
		epoch:  time.Now().UnixNano(),
		jnl:    jnl,
		tab:    tab,
		leases: map[string]*leaseInfo{},
		nextID: len(tab.order) + tab.seq,
		stop:   make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	d.initObs()
	d.tel.RegisterGauge("service_queue_depth", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		n := 0
		for _, id := range d.tab.order {
			j := d.tab.jobs[id]
			if !j.active() {
				continue
			}
			for _, s := range j.shards {
				if s.state == ShardPending {
					n++
				}
			}
		}
		return float64(n)
	})
	d.tel.RegisterGauge("service_leases_active", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.leases))
	})
	d.tel.RegisterGauge("service_jobs_active", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		n := 0
		for _, j := range d.tab.jobs {
			if j.active() {
				n++
			}
		}
		return float64(n)
	})
	d.mu.Lock()
	d.gcLocked()
	d.mu.Unlock()
	d.publishProgress()
	d.monitor.Add(1)
	go d.monitorLoop()
	for i := 0; i < cfg.Workers; i++ {
		w := NewWorker(d, WorkerConfig{
			Name:        fmt.Sprintf("local-%d", i+1),
			Registry:    cfg.Registry,
			Parallelism: cfg.Parallelism,
			Poll:        time.Hour,
			Heartbeat:   cfg.Lease / 3,
			ExitOnDrain: true,
		})
		d.workers.Add(1)
		go func() {
			defer d.workers.Done()
			w.Run(context.Background())
		}()
	}
	return d, nil
}

// initObs wires the observability plane: metric descriptions and volatility
// marks, the zenspec_service_* collector on the telemetry /metrics endpoint,
// and the journal's timing hooks. Every emission is nil-safe, so a daemon
// opened without Config.Obs pays one nil check per event and nothing else.
func (d *Daemon) initObs() {
	m := d.obs.Metrics()
	m.Describe("jobs_submitted_total", "Jobs accepted by Submit.")
	m.Describe("jobs_completed_total", "Jobs that finalized done.")
	m.Describe("jobs_failed_total", "Jobs that finalized failed.")
	m.Describe("jobs_archived_total", "Terminal jobs archived past the retention bound.")
	m.Describe("shards_completed_total", "Shard attempts that completed with a report, by experiment.")
	m.Describe("shards_retried_total", "Shard attempts requeued after a deadline overrun, by experiment.")
	m.Describe("shards_failed_total", "Shards that resolved failed, by experiment.")
	m.Describe("shards_abandoned_total", "Running shards requeued by a lease revocation, by experiment.")
	m.Describe("leases_granted_total", "Shard leases handed out.")
	m.Describe("lease_revocations_total", "Leases revoked after missing heartbeats.")
	m.Describe("journal_rotations_total", "Journal segment seals.")
	m.Describe("journal_checkpoints_total", "Journal compactions.")
	m.Describe("readyz_draining_total", "Readiness probes answered 503 while draining.")
	m.Describe("watch_requests_total", "NDJSON watch streams served.")
	m.Describe("shard_wall_ms", "Completed shard wall clock in ms, by experiment.")
	m.Describe("queue_wait_ms", "Shard wait from enqueue to lease grant in ms.")
	m.Describe("lease_rtt_ms", "Lease grant to first heartbeat in ms.")
	m.Describe("fsync_ms", "Journal record write+fsync latency in ms.")
	m.Describe("checkpoint_ms", "Journal compaction latency in ms.")
	m.Describe("watch_fanout", "Status snapshots emitted per watch stream.")
	// Host-timing-shaped series: their very observation counts depend on
	// heartbeat races, segment boundaries and probe cadence, so they are
	// excluded from the deterministic StableSnapshot the cross-worker
	// identity tests compare.
	m.MarkVolatile("lease_rtt_ms", "fsync_ms", "checkpoint_ms",
		"journal_rotations_total", "journal_checkpoints_total",
		"readyz_draining_total", "watch_requests_total", "watch_fanout")
	d.tel.RegisterCollector("service", m.WritePrometheus)

	// Journal hooks run under d.mu (every append does); a submit record's
	// job is not in the table yet, so prefer the record's own trace.
	d.jnl.onAppend = func(rec *record, dur time.Duration) {
		m.Observe("fsync_ms", float64(dur.Microseconds())/1000)
		trace := rec.Trace
		if trace == "" && rec.Job != "" {
			if j := d.tab.jobs[rec.Job]; j != nil {
				trace = j.trace
			}
		}
		if trace != "" {
			d.obs.Traces().Span(trace, svcobs.ActorDaemon, "journal", "fsync "+rec.Type,
				time.Now().Add(-dur), dur, nil)
		}
	}
	d.jnl.onRotate = func(seq int) {
		m.Inc("journal_rotations_total", 1)
		d.log.Info("journal segment rotated", "segment", seq)
	}
	d.jnl.onCheckpoint = func(recs int, dur time.Duration) {
		m.Inc("journal_checkpoints_total", 1)
		m.Observe("checkpoint_ms", float64(dur.Microseconds())/1000)
		d.log.Info("journal checkpointed", "records", recs, "ms", dur.Milliseconds())
	}
}

// spanX records one completed daemon-actor span on the job's trace.
func (d *Daemon) spanX(trace, track, name string, start time.Time, args map[string]any) {
	d.obs.Traces().Span(trace, svcobs.ActorDaemon, track, name, start, time.Since(start), args)
}

// Obs returns the daemon's observability hub (nil when disabled).
func (d *Daemon) Obs() *svcobs.Hub { return d.obs }

// TracePerfetto renders the job's stitched daemon+worker trace as Chrome
// trace-event JSON (GET /v1/jobs/{id}/trace). Jobs without a trace — tracing
// disabled, a legacy journal, or a trace already evicted — return an error.
func (d *Daemon) TracePerfetto(id string) ([]byte, error) {
	d.mu.Lock()
	j := d.tab.jobs[id]
	if j == nil {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w %q", ErrJobNotFound, id)
	}
	trace := j.trace
	d.mu.Unlock()
	if d.obs == nil || trace == "" {
		return nil, fmt.Errorf("service: job %q has no trace (observability disabled?)", id)
	}
	return d.obs.Traces().Perfetto(trace)
}

// Telemetry returns the daemon's telemetry hub (queue gauges pre-registered)
// for mounting on the service mux.
func (d *Daemon) Telemetry() *prof.Telemetry { return d.tel }

// Meta describes this daemon: API version, build, and the experiments its
// registry can run.
func (d *Daemon) Meta() Meta {
	m := Meta{APIVersion: APIVersion, GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				m.Revision = s.Value
			}
		}
	}
	for _, e := range d.reg.All() {
		m.Experiments = append(m.Experiments, e.ID)
	}
	return m
}

// shardRunCtx lowers a job spec onto the harness context one shard runs with.
// The pipeline SQSize mirrors the facade's default so service reports are
// byte-identical to cmd/experiments runs of the same spec; parallelism only
// changes wall clock, never bytes.
func shardRunCtx(spec JobSpec, plan fault.Plan, parallelism int) harness.Ctx {
	if parallelism <= 0 {
		parallelism = 1
	}
	return harness.Ctx{
		Config: kernel.Config{
			Seed:        spec.Seed,
			Faults:      plan,
			Parallelism: parallelism,
			Pipeline:    pipeline.Config{SQSize: 48},
		},
		Quick:   spec.Quick,
		Metrics: spec.Metrics,
		Profile: spec.Profile,
	}
}

// Submit validates the spec against the live registry, cuts it into shards
// (trial ranges when the spec asks for a split and the experiment is
// rangeable), journals the job, and queues it. The returned ID is stable
// across restarts.
func (d *Daemon) Submit(spec JobSpec) (string, error) {
	exps, err := d.reg.Select(spec.Only, "")
	if err != nil {
		return "", err // wraps harness.ErrUnknownExperiment
	}
	plan, err := fault.Parse(spec.Faults)
	if err != nil {
		return "", fmt.Errorf("service: faults: %w", err)
	}
	ctx := shardRunCtx(spec, plan, d.cfg.Parallelism)
	defs := make([]ShardRef, 0, len(exps))
	for _, e := range exps {
		if spec.Split > 1 {
			if n, err := d.reg.Trials(ctx, e.ID); err == nil && n >= 2 {
				k := spec.Split
				if k > n {
					k = n
				}
				for i := 0; i < k; i++ {
					defs = append(defs, ShardRef{Exp: e.ID, Lo: i * n / k, Hi: (i + 1) * n / k})
				}
				continue
			}
		}
		defs = append(defs, ShardRef{Exp: e.ID})
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining || d.killed || d.closed {
		return "", ErrDraining
	}
	d.nextID++
	id := fmt.Sprintf("job-%d", d.nextID)
	for d.tab.jobs[id] != nil {
		d.nextID++
		id = fmt.Sprintf("job-%d", d.nextID)
	}
	// The correlation ID is minted here and journaled with the job: it is
	// stable across restarts, unique across daemon incarnations (the epoch),
	// and carried in every lease so remote workers stitch into it.
	trace := ""
	if d.obs.Enabled() {
		trace = fmt.Sprintf("%s.%x", id, d.epoch)
	}
	rec := record{Type: recSubmit, Job: id, Trace: trace, Spec: &spec, Defs: defs}
	if err := d.jnl.append(rec); err != nil {
		return "", err
	}
	d.tab.apply(rec)
	d.obs.Metrics().Inc("jobs_submitted_total", 1)
	d.obs.Traces().Begin(trace, svcobs.ActorDaemon, "job", "job "+id,
		map[string]any{"job": id, "shards": len(defs), "split": spec.Split, "seed": spec.Seed})
	d.log.Info("job submitted", "job", id, "trace", trace,
		"shards", len(defs), "experiments", len(exps), "split", spec.Split)
	d.compactLocked()
	d.publishProgress()
	d.cond.Broadcast()
	return id, nil
}

// Status returns the public view of one job.
func (d *Daemon) Status(id string) (JobStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j := d.tab.jobs[id]
	if j == nil {
		return JobStatus{}, fmt.Errorf("%w %q", ErrJobNotFound, id)
	}
	return j.status(), nil
}

// Jobs lists every known job in submission order.
func (d *Daemon) Jobs() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobStatus, 0, len(d.tab.order))
	for _, id := range d.tab.order {
		out = append(out, d.tab.jobs[id].status())
	}
	return out
}

// Report assembles the job's merged SuiteReport from its completed shard
// fragments — the same suite an uninterrupted Registry.Run would have
// produced once every shard is done, with skipped stubs for shards still
// outstanding (the partial-report view of a running or failed job).
// Per-experiment merges are memoized: a done shard's fragment never changes,
// so once every shard of an experiment resolved its merged report is final.
func (d *Daemon) Report(id string) (harness.SuiteReport, error) {
	d.mu.Lock()
	j := d.tab.jobs[id]
	if j == nil {
		d.mu.Unlock()
		return harness.SuiteReport{}, fmt.Errorf("%w %q", ErrJobNotFound, id)
	}
	spec, plan := j.spec, j.plan
	merged := make(map[string]harness.Report, len(j.exps))
	type pending struct {
		exp   string
		parts []harness.PartialReport
	}
	var todo []pending
	for _, exp := range j.exps {
		if r, ok := j.merged[exp]; ok {
			merged[exp] = r
			continue
		}
		if !j.expComplete(exp) {
			continue
		}
		var parts []harness.PartialReport
		for _, sid := range j.order {
			if s := j.shards[sid]; s.def.Exp == exp {
				if p := j.partials[sid]; p != nil {
					parts = append(parts, *p)
				}
			}
		}
		todo = append(todo, pending{exp: exp, parts: parts})
	}
	d.mu.Unlock()

	ctx := shardRunCtx(spec, plan, d.cfg.Parallelism)
	for _, p := range todo {
		r, err := d.reg.MergeTrialRanges(ctx, p.exp, p.parts)
		if err != nil {
			r = harness.Report{ID: p.exp, Status: harness.StatusFailed, Error: err.Error()}
		}
		merged[p.exp] = r
	}

	d.mu.Lock()
	if jj := d.tab.jobs[id]; jj != nil {
		for _, p := range todo {
			if _, ok := jj.merged[p.exp]; !ok {
				jj.merged[p.exp] = merged[p.exp]
			}
		}
	}
	d.mu.Unlock()
	return d.reg.Assemble(ctx, spec.Only, merged)
}

// Lease claims the next pending shard, blocking up to wait for one to become
// available. A nil Lease with a nil error means the wait elapsed with nothing
// to do (poll again); ErrDraining means the daemon is shutting down and will
// hand out no more work. worker names the claimant for bookkeeping only.
func (d *Daemon) Lease(worker string, wait time.Duration) (*Lease, error) {
	deadline := time.Now().Add(wait)
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.draining || d.killed || d.closed {
			return nil, ErrDraining
		}
		now := time.Now()
		if li := d.leaseLocked(now, worker); li != nil {
			j := d.tab.jobs[li.jobID]
			s := j.shards[li.shard]
			return &Lease{
				Token: li.token, Job: li.jobID, Shard: s.def,
				Spec: j.spec, TTL: d.cfg.Lease, cancel: li.cancel,
				Trace: li.trace, Attempt: li.attempt,
			}, nil
		}
		remaining := deadline.Sub(now)
		if remaining <= 0 {
			return nil, nil
		}
		// cond has no timed wait: arm a wakeup for the deadline (or the next
		// retry-backoff expiry, whichever the monitor notices first).
		t := time.AfterFunc(remaining, d.cond.Broadcast)
		d.cond.Wait()
		t.Stop()
	}
}

// leaseLocked leases the next pending shard of the best active job: highest
// priority first, then submission order. Shards inside their retry-backoff
// window are skipped.
func (d *Daemon) leaseLocked(now time.Time, worker string) *leaseInfo {
	var best *job
	var bestShard *shard
	for _, id := range d.tab.order {
		j := d.tab.jobs[id]
		if !j.active() {
			continue
		}
		s := j.nextPending(now)
		if s == nil {
			continue
		}
		if best == nil || j.spec.Priority > best.spec.Priority {
			best, bestShard = j, s
		}
	}
	if best == nil {
		return nil
	}
	d.nextTok++
	li := &leaseInfo{
		token:  fmt.Sprintf("t%x-%d", d.epoch, d.nextTok),
		worker: worker, jobID: best.id, shard: bestShard.id,
		expiry: now.Add(d.cfg.Lease), cancel: new(atomic.Bool),
		trace: best.trace, exp: bestShard.def.Exp,
		attempt: bestShard.attempt + 1, grantedAt: now,
	}
	bestShard.state = ShardRunning
	bestShard.lease = li.token
	if best.state == JobQueued {
		best.state = JobRunning
	}
	d.leases[li.token] = li
	d.obs.Metrics().Inc("leases_granted_total", 1)
	if !bestShard.enqueuedAt.IsZero() {
		wait := now.Sub(bestShard.enqueuedAt)
		d.obs.Metrics().Observe("queue_wait_ms", float64(wait.Microseconds())/1000)
		d.obs.Traces().Span(li.trace, svcobs.ActorDaemon, bestShard.id, "queue-wait",
			bestShard.enqueuedAt, wait, nil)
	}
	d.obs.Traces().Begin(li.trace, svcobs.ActorDaemon, bestShard.id, "lease",
		map[string]any{"token": li.token, "worker": worker, "attempt": li.attempt})
	d.log.Info("lease granted", "job", best.id, "shard", bestShard.id,
		"lease", li.token, "worker", worker, "attempt", li.attempt, "trace", li.trace)
	return li
}

// Heartbeat extends a live lease and records trial progress (when total > 0).
// ErrLeaseNotFound tells the worker its lease was revoked — another lease
// owns the shard now, and the worker must abandon its run. Heartbeats are
// honored while draining: in-flight shards finish under their leases.
func (d *Daemon) Heartbeat(token string, trialsDone, trialsTotal int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	li := d.leases[token]
	if li == nil {
		return ErrLeaseNotFound
	}
	li.expiry = time.Now().Add(d.cfg.Lease)
	if !li.sawHeartbeat {
		// Grant-to-first-heartbeat is the lease round-trip: scheduler lock,
		// wire, and worker startup, before any simulation work.
		li.sawHeartbeat = true
		d.obs.Metrics().Observe("lease_rtt_ms", float64(time.Since(li.grantedAt).Microseconds())/1000)
	}
	if j := d.tab.jobs[li.jobID]; j != nil {
		if s := j.shards[li.shard]; s != nil && s.lease == token && trialsTotal > 0 {
			s.trialsDone, s.trialsTotal = trialsDone, trialsTotal
		}
	}
	return nil
}

// Complete applies a finished shard attempt under its lease token: journal +
// state transition for a durable outcome, deterministic retry scheduling for
// a deadline overrun, ErrLeaseNotFound for tokens the daemon no longer holds
// (revoked, or minted by a crashed predecessor). The partial's shard
// coordinates are overridden from the lease's own definition, so a confused
// worker cannot mislabel a fragment. The completion's worker spans are
// stitched into the job's trace under its own correlation ID.
func (d *Daemon) Complete(token string, comp Completion) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	li := d.leases[token]
	if li == nil {
		return ErrLeaseNotFound
	}
	delete(d.leases, token)
	j := d.tab.jobs[li.jobID]
	if j == nil {
		return nil
	}
	s := j.shards[li.shard]
	if s == nil || s.lease != token || s.state != ShardRunning {
		return nil
	}
	if d.killed {
		return nil // crash simulation: the result dies with the process
	}
	if j.trace != "" && len(comp.Spans) > 0 {
		// The trace ID is authoritative daemon-side: a worker cannot file
		// spans under someone else's trace.
		for i := range comp.Spans {
			comp.Spans[i].Trace = j.trace
		}
		d.obs.Traces().Add(comp.Spans...)
	}
	p, errText, overrun := comp.Partial, comp.Error, comp.Overrun
	lg := d.log.With("job", j.id, "shard", s.id, "lease", token,
		"worker", li.worker, "attempt", li.attempt, "trace", j.trace)
	endLease := func(outcome string) {
		d.obs.Traces().End(j.trace, svcobs.ActorDaemon, s.id, "lease",
			map[string]any{"outcome": outcome})
	}
	switch {
	case overrun && s.attempt < j.spec.Retries:
		// Deadline overrun with retry budget left: back off deterministically
		// — the delay is a pure function of (seed, job/shard, attempt), so a
		// replayed schedule is reproducible. Checked before errText because a
		// cancelled ranged run surfaces its cancellation as an error too.
		b := fault.Backoff{
			Base: d.cfg.Backoff, Max: d.cfg.MaxBackoff,
			Seed: j.spec.Seed, Key: j.id + "/" + s.id,
		}
		delay := b.Delay(s.attempt)
		s.attempt++
		s.state = ShardPending
		s.lease = ""
		s.notBefore = time.Now().Add(delay)
		s.enqueuedAt = time.Now()
		endLease("retry")
		d.obs.Metrics().IncL("shards_retried_total", svcobs.Label("exp", s.def.Exp), 1)
		d.obs.Traces().Span(j.trace, svcobs.ActorDaemon, s.id, "backoff",
			time.Now(), delay, map[string]any{"attempt": s.attempt, "delay_ms": delay.Milliseconds()})
		lg.Warn("shard overran deadline, retrying", "delay_ms", delay.Milliseconds(),
			"retries_left", j.spec.Retries-s.attempt)
	case overrun:
		endLease("failed")
		d.obs.Metrics().IncL("shards_failed_total", svcobs.Label("exp", s.def.Exp), 1)
		lg.Error("shard failed", "error", "deadline overrun, retry budget exhausted")
		d.resolveLocked(j, s, record{
			Type: recShardFailed, Job: j.id, Shard: s.id,
			Error: fmt.Sprintf("%v after %d attempts", harness.ErrDeadline, s.attempt+1),
		})
	case errText != "":
		// Permanent infrastructure failure (e.g. the experiment was
		// deregistered between submit and replay): the shard fails with the
		// error's text, the job will finalize failed.
		endLease("failed")
		d.obs.Metrics().IncL("shards_failed_total", svcobs.Label("exp", s.def.Exp), 1)
		lg.Error("shard failed", "error", errText)
		d.resolveLocked(j, s, record{Type: recShardFailed, Job: j.id, Shard: s.id, Error: errText})
	case p == nil:
		endLease("failed")
		d.obs.Metrics().IncL("shards_failed_total", svcobs.Label("exp", s.def.Exp), 1)
		lg.Error("shard failed", "error", "shard completed without a report")
		d.resolveLocked(j, s, record{Type: recShardFailed, Job: j.id, Shard: s.id, Error: "shard completed without a report"})
	default:
		// A completed shard — including one whose Report says the experiment
		// failed its bands or panicked: direct suite runs include those
		// reports too, and byte-identity demands we keep them.
		pp := *p
		pp.Exp, pp.Lo, pp.Hi = s.def.Exp, s.def.Lo, s.def.Hi
		endLease("done")
		d.obs.Metrics().IncL("shards_completed_total", svcobs.Label("exp", s.def.Exp), 1)
		d.obs.Metrics().ObserveL("shard_wall_ms", svcobs.Label("exp", s.def.Exp), pp.WallMS)
		lg.Info("shard done", "wall_ms", int64(pp.WallMS))
		d.resolveLocked(j, s, record{Type: recShardDone, Job: j.id, Shard: s.id, Partial: &pp})
	}
	d.compactLocked()
	d.publishProgress()
	d.cond.Broadcast()
	return nil
}

// resolveLocked journals a terminal shard record, applies it, journals the
// job's own terminal record when the shard was the last one out, and archives
// old terminal jobs past the retention bound.
func (d *Daemon) resolveLocked(j *job, s *shard, rec record) {
	wasActive := j.active()
	if err := d.jnl.append(rec); err != nil {
		// A failed append means the outcome is not durable; leave the shard
		// pending so it reruns (deterministically identical) rather than
		// recording state the journal cannot replay.
		s.state = ShardPending
		s.lease = ""
		return
	}
	d.tab.apply(rec)
	if wasActive && !j.active() {
		term := record{Type: recJobDone, Job: j.id}
		if j.state == JobFailed {
			term = record{Type: recJobFailed, Job: j.id, Error: j.err}
		}
		d.jnl.append(term)
		d.obs.Traces().End(j.trace, svcobs.ActorDaemon, "job", "job "+j.id,
			map[string]any{"state": j.state})
		if j.state == JobFailed {
			d.obs.Metrics().Inc("jobs_failed_total", 1)
			d.log.Error("job failed", "job", j.id, "trace", j.trace, "error", j.err)
		} else {
			d.obs.Metrics().Inc("jobs_completed_total", 1)
			d.log.Info("job done", "job", j.id, "trace", j.trace)
		}
		d.gcLocked()
	}
}

// gcLocked archives the oldest terminal jobs beyond the retention bound. The
// archive record makes the drop durable; the data itself leaves disk at the
// next compaction, which snapshots the table without the archived jobs.
func (d *Daemon) gcLocked() {
	keep := d.cfg.KeepJobs
	if keep < 0 {
		return
	}
	if keep == 0 {
		keep = defaultKeepJobs
	}
	terminal := 0
	for _, j := range d.tab.jobs {
		if !j.active() {
			terminal++
		}
	}
	for terminal > keep {
		victim := ""
		for _, id := range d.tab.order {
			if !d.tab.jobs[id].active() {
				victim = id
				break
			}
		}
		if victim == "" {
			return
		}
		trace := d.tab.jobs[victim].trace
		rec := record{Type: recJobArchive, Job: victim}
		if err := d.jnl.append(rec); err != nil {
			return
		}
		d.tab.apply(rec)
		d.obs.Metrics().Inc("jobs_archived_total", 1)
		d.obs.Traces().Drop(trace)
		d.log.Info("job archived", "job", victim, "trace", trace)
		terminal--
	}
}

// compactLocked rewrites the journal as the live table's snapshot once enough
// segments have accumulated, bounding the WAL's disk footprint. A failed
// compaction is harmless — the appended history is still durable and the
// next trigger retries.
func (d *Daemon) compactLocked() {
	if d.jnl.segments() >= compactSegments {
		d.jnl.checkpoint(d.tab.records())
	}
}

// monitorLoop revokes expired leases: the dead worker's shard goes back to
// pending (its zombie simulation, if any, is cooperatively cancelled) and
// the pool is woken. It also wakes waiters whose retry-backoff windows may
// have elapsed.
func (d *Daemon) monitorLoop() {
	defer d.monitor.Done()
	tick := d.cfg.Lease / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case now := <-t.C:
			d.mu.Lock()
			woke := false
			for tok, li := range d.leases {
				if now.Before(li.expiry) {
					continue
				}
				li.cancel.Store(true)
				delete(d.leases, tok)
				d.obs.Metrics().Inc("lease_revocations_total", 1)
				d.obs.Traces().End(li.trace, svcobs.ActorDaemon, li.shard, "lease",
					map[string]any{"outcome": "revoked", "worker": li.worker})
				d.log.Warn("lease revoked", "job", li.jobID, "shard", li.shard,
					"lease", tok, "worker", li.worker, "attempt", li.attempt,
					"trace", li.trace, "reason", "heartbeat deadline missed")
				if j := d.tab.jobs[li.jobID]; j != nil {
					if s := j.shards[li.shard]; s != nil && s.lease == tok && s.state == ShardRunning {
						s.state = ShardPending
						s.lease = ""
						s.enqueuedAt = now
						d.obs.Metrics().IncL("shards_abandoned_total", svcobs.Label("exp", s.def.Exp), 1)
					}
				}
				woke = true
			}
			if woke || d.anyBackoffReady(now) {
				d.cond.Broadcast()
			}
			d.mu.Unlock()
		}
	}
}

func (d *Daemon) anyBackoffReady(now time.Time) bool {
	for _, id := range d.tab.order {
		j := d.tab.jobs[id]
		if j.active() && j.nextPending(now) != nil {
			return true
		}
	}
	return false
}

// publishProgress pushes aggregate shard progress to the telemetry plane.
// Callers hold d.mu (or, in Open, exclusive access).
func (d *Daemon) publishProgress() {
	done, total := 0, 0
	current := ""
	for _, id := range d.tab.order {
		j := d.tab.jobs[id]
		dn, fl, tot := j.counts()
		done += dn + fl
		total += tot
		if j.active() {
			for _, sid := range j.order {
				if j.shards[sid].state == ShardRunning && current == "" {
					current = j.id + "/" + sid
				}
			}
		}
	}
	d.tel.Progress(done, total, current)
}

// Ready reports whether the daemon is accepting submissions (the /readyz
// verdict).
func (d *Daemon) Ready() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.draining && !d.killed && !d.closed
}

// Shutdown drains gracefully: no new leases are handed out, in-flight shards
// run to completion (their results are journaled as usual; remote workers'
// heartbeats and completions stay honored), and the journal is compacted to
// a clean checkpoint. If ctx expires first, in-flight shards are
// cooperatively cancelled and the journal is closed uncompacted — still a
// consistent crash-equivalent state — and ctx's error is returned.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.draining = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.log.Info("draining", "reason", "shutdown requested")

	drained := make(chan struct{})
	go func() {
		d.workers.Wait()
		close(drained)
	}()
	var timedOut bool
	select {
	case <-drained:
	case <-ctx.Done():
		timedOut = true
		d.mu.Lock()
		d.killed = true
		for _, li := range d.leases {
			li.cancel.Store(true)
		}
		d.cond.Broadcast()
		d.mu.Unlock()
		<-drained
	}
	close(d.stop)
	d.monitor.Wait()

	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	if timedOut {
		d.jnl.close()
		return ctx.Err()
	}
	err := d.jnl.checkpoint(d.tab.records())
	// checkpoint keeps the compacted segment open (and the directory flock
	// held) so the journal is never unlocked mid-swap; release it now that the
	// daemon is done.
	d.jnl.close()
	return err
}

// Kill simulates a crash (the in-process stand-in for kill -9): in-flight
// shards are cancelled and their results discarded, nothing is checkpointed,
// and the journal is abandoned exactly as a dying process would leave it —
// every fsynced record intact, everything after the last one lost. Open on
// the same directory resumes from there.
func (d *Daemon) Kill() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.killed = true
	for _, li := range d.leases {
		li.cancel.Store(true)
	}
	d.cond.Broadcast()
	d.mu.Unlock()

	d.workers.Wait()
	close(d.stop)
	d.monitor.Wait()

	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.jnl.close()
}
