package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"zenspec/internal/fault"
	"zenspec/internal/harness"
	"zenspec/internal/kernel"
	"zenspec/internal/pipeline"
	"zenspec/internal/prof"
)

// ErrDraining is returned by Submit once a shutdown has begun.
var ErrDraining = errors.New("service: daemon is draining")

// ErrUnknownJob is returned for job IDs the daemon has never seen.
var ErrUnknownJob = errors.New("service: unknown job")

// Config configures a Daemon.
type Config struct {
	// Dir is the daemon's durable state directory (created if absent); the
	// journal lives at Dir/journal.wal.
	Dir string
	// Registry supplies the experiments; nil panics — callers pass
	// suite.Registry() (cmd/zenspecd does) or a test registry.
	Registry *harness.Registry
	// Workers is the shard worker pool size; 0 runs no workers (a queue-only
	// daemon, useful for tests that drive leases by hand).
	Workers int
	// Parallelism is each shard's inner trial-loop parallelism (the
	// kernel.Config knob); 0 means 1, keeping worker count and machine count
	// aligned. Results are byte-identical at any value.
	Parallelism int
	// Lease is the shard lease TTL; a lease not heartbeaten within it is
	// revoked and its shard re-queued. 0 means 5s.
	Lease time.Duration
	// Backoff and MaxBackoff shape the deterministic retry delay after a
	// deadline overrun; defaults 100ms and 5s.
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// leaseInfo tracks one outstanding shard lease. The cancel flag is wired
// into every machine the shard boots (pipeline.Config.Stop), so revoking a
// lease actually stops the simulation rather than orphaning it.
type leaseInfo struct {
	token  int64
	jobID  string
	shard  string
	expiry time.Time
	cancel *atomic.Bool
}

// Daemon is the zenspecd core: the journaled job table, the worker pool and
// the lease monitor. All public methods are safe for concurrent use.
type Daemon struct {
	cfg Config
	reg *harness.Registry
	tel *prof.Telemetry

	mu       sync.Mutex
	cond     *sync.Cond
	jnl      *journal
	tab      *jobTable
	leases   map[int64]*leaseInfo
	nextID   int
	nextTok  int64
	draining bool
	killed   bool
	closed   bool

	stop    chan struct{}
	workers sync.WaitGroup
	monitor sync.WaitGroup
}

// Open replays the journal under cfg.Dir (healing a corrupt tail), resumes
// every unfinished job at shard granularity, and starts the worker pool.
func Open(cfg Config) (*Daemon, error) {
	if cfg.Registry == nil {
		panic("service: Config.Registry is required")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 5 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	jnl, recs, err := openJournal(filepath.Join(cfg.Dir, "journal.wal"))
	if err != nil {
		return nil, err
	}
	tab := newJobTable()
	for _, rec := range recs {
		tab.apply(rec)
	}
	d := &Daemon{
		cfg:    cfg,
		reg:    cfg.Registry,
		tel:    prof.NewTelemetry(),
		jnl:    jnl,
		tab:    tab,
		leases: map[int64]*leaseInfo{},
		nextID: len(tab.order),
		stop:   make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	d.tel.RegisterGauge("service.queue_depth", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		n := 0
		for _, id := range d.tab.order {
			j := d.tab.jobs[id]
			if !j.active() {
				continue
			}
			for _, s := range j.shards {
				if s.state == ShardPending {
					n++
				}
			}
		}
		return float64(n)
	})
	d.tel.RegisterGauge("service.leases_active", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.leases))
	})
	d.tel.RegisterGauge("service.jobs_active", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		n := 0
		for _, j := range d.tab.jobs {
			if j.active() {
				n++
			}
		}
		return float64(n)
	})
	d.publishProgress()
	d.monitor.Add(1)
	go d.monitorLoop()
	for i := 0; i < cfg.Workers; i++ {
		d.workers.Add(1)
		go d.workerLoop()
	}
	return d, nil
}

// Telemetry returns the daemon's telemetry hub (queue gauges pre-registered)
// for mounting on the service mux.
func (d *Daemon) Telemetry() *prof.Telemetry { return d.tel }

// Submit validates the spec against the live registry, journals the job, and
// queues its shards. The returned ID is stable across restarts.
func (d *Daemon) Submit(spec JobSpec) (string, error) {
	exps, err := d.reg.Select(spec.Only, "")
	if err != nil {
		return "", err // wraps harness.ErrUnknownExperiment
	}
	if _, err := fault.Parse(spec.Faults); err != nil {
		return "", fmt.Errorf("service: faults: %w", err)
	}
	shards := make([]string, len(exps))
	for i, e := range exps {
		shards[i] = e.ID
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining || d.killed || d.closed {
		return "", ErrDraining
	}
	d.nextID++
	id := fmt.Sprintf("job-%d", d.nextID)
	for d.tab.jobs[id] != nil {
		d.nextID++
		id = fmt.Sprintf("job-%d", d.nextID)
	}
	rec := record{Type: recSubmit, Job: id, Spec: &spec, Shards: shards}
	if err := d.jnl.append(rec); err != nil {
		return "", err
	}
	d.tab.apply(rec)
	d.publishProgress()
	d.cond.Broadcast()
	return id, nil
}

// Status returns the public view of one job.
func (d *Daemon) Status(id string) (JobStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j := d.tab.jobs[id]
	if j == nil {
		return JobStatus{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// Jobs lists every known job in submission order.
func (d *Daemon) Jobs() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobStatus, 0, len(d.tab.order))
	for _, id := range d.tab.order {
		out = append(out, d.tab.jobs[id].status())
	}
	return out
}

// Report assembles the job's merged SuiteReport from its completed shard
// fragments — the same suite an uninterrupted Registry.Run would have
// produced once every shard is done, with skipped stubs for shards still
// outstanding (the partial-report view of a running or failed job).
func (d *Daemon) Report(id string) (harness.SuiteReport, error) {
	d.mu.Lock()
	j := d.tab.jobs[id]
	if j == nil {
		d.mu.Unlock()
		return harness.SuiteReport{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	spec := j.spec
	plan := j.plan
	reports := make(map[string]harness.Report, len(j.reports))
	for k, v := range j.reports {
		reports[k] = v
	}
	d.mu.Unlock()
	return d.reg.Assemble(d.shardCtx(spec, plan), spec.Only, reports)
}

// shardCtx lowers a job spec onto the harness context a worker runs one
// shard with. The pipeline SQSize mirrors the facade's default so service
// reports are byte-identical to cmd/experiments runs of the same spec.
func (d *Daemon) shardCtx(spec JobSpec, plan fault.Plan) harness.Ctx {
	return harness.Ctx{
		Config: kernel.Config{
			Seed:        spec.Seed,
			Faults:      plan,
			Parallelism: d.cfg.Parallelism,
			Pipeline:    pipeline.Config{SQSize: 48},
		},
		Quick:   spec.Quick,
		Metrics: spec.Metrics,
		Profile: spec.Profile,
	}
}

// acquire blocks until a shard lease is available, the daemon drains, or it
// is killed; nil means the worker should exit.
func (d *Daemon) acquire() *leaseInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.draining || d.killed {
			return nil
		}
		if li := d.leaseLocked(time.Now()); li != nil {
			return li
		}
		d.cond.Wait()
	}
}

// leaseLocked leases the next pending shard of the best active job: highest
// priority first, then submission order. Shards inside their retry-backoff
// window are skipped.
func (d *Daemon) leaseLocked(now time.Time) *leaseInfo {
	var best *job
	var bestShard *shard
	for _, id := range d.tab.order {
		j := d.tab.jobs[id]
		if !j.active() {
			continue
		}
		s := j.nextPending(now)
		if s == nil {
			continue
		}
		if best == nil || j.spec.Priority > best.spec.Priority {
			best, bestShard = j, s
		}
	}
	if best == nil {
		return nil
	}
	d.nextTok++
	li := &leaseInfo{
		token: d.nextTok, jobID: best.id, shard: bestShard.id,
		expiry: now.Add(d.cfg.Lease), cancel: new(atomic.Bool),
	}
	bestShard.state = ShardRunning
	bestShard.lease = li.token
	if best.state == JobQueued {
		best.state = JobRunning
	}
	d.leases[li.token] = li
	return li
}

// heartbeat extends a live lease and records trial progress; stale tokens
// (revoked leases) are ignored.
func (d *Daemon) heartbeat(token int64, trialsDone, trialsTotal int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	li := d.leases[token]
	if li == nil {
		return
	}
	li.expiry = time.Now().Add(d.cfg.Lease)
	if j := d.tab.jobs[li.jobID]; j != nil {
		if s := j.shards[li.shard]; s != nil && s.lease == token {
			if trialsTotal > 0 {
				s.trialsDone, s.trialsTotal = trialsDone, trialsTotal
			}
		}
	}
}

// monitorLoop revokes expired leases: the dead worker's shard goes back to
// pending (its zombie simulation, if any, is cooperatively cancelled) and
// the pool is woken. It also wakes waiters whose retry-backoff windows may
// have elapsed.
func (d *Daemon) monitorLoop() {
	defer d.monitor.Done()
	tick := d.cfg.Lease / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case now := <-t.C:
			d.mu.Lock()
			woke := false
			for tok, li := range d.leases {
				if now.Before(li.expiry) {
					continue
				}
				li.cancel.Store(true)
				delete(d.leases, tok)
				if j := d.tab.jobs[li.jobID]; j != nil {
					if s := j.shards[li.shard]; s != nil && s.lease == tok && s.state == ShardRunning {
						s.state = ShardPending
						s.lease = 0
					}
				}
				woke = true
			}
			if woke || d.anyBackoffReady(now) {
				d.cond.Broadcast()
			}
			d.mu.Unlock()
		}
	}
}

func (d *Daemon) anyBackoffReady(now time.Time) bool {
	for _, id := range d.tab.order {
		j := d.tab.jobs[id]
		if j.active() && j.nextPending(now) != nil {
			return true
		}
	}
	return false
}

func (d *Daemon) workerLoop() {
	defer d.workers.Done()
	for {
		li := d.acquire()
		if li == nil {
			return
		}
		d.execute(li)
	}
}

// execute runs one leased shard to completion: cancel flag threaded into the
// machines, lease heartbeats from both the trial loop and a keepalive
// ticker, per-shard deadline enforcement, and the completion protocol.
func (d *Daemon) execute(li *leaseInfo) {
	d.mu.Lock()
	j := d.tab.jobs[li.jobID]
	if j == nil {
		delete(d.leases, li.token)
		d.mu.Unlock()
		return
	}
	spec, plan := j.spec, j.plan
	d.mu.Unlock()

	ctx := d.shardCtx(spec, plan)
	ctx.Config.Pipeline.Stop = li.cancel.Load
	ctx.TrialProgress = func(done, total int) { d.heartbeat(li.token, done, total) }

	// Keepalive: the worker goroutine itself is alive even when the shard's
	// experiment reports no trial progress.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(d.cfg.Lease / 3)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				d.heartbeat(li.token, 0, 0)
			}
		}
	}()

	var overrun atomic.Bool
	if spec.Deadline > 0 {
		timer := time.AfterFunc(spec.Deadline, func() {
			overrun.Store(true)
			li.cancel.Store(true)
		})
		defer timer.Stop()
	}
	rep, err := d.reg.RunShard(ctx, li.shard)
	close(hbStop)
	hbWG.Wait()
	d.complete(li, rep, err, overrun.Load())
}

// complete applies a finished shard attempt: journal + state transition for
// a durable outcome, retry scheduling for a deadline overrun, silent discard
// for stale leases and killed daemons.
func (d *Daemon) complete(li *leaseInfo, rep harness.Report, err error, overrun bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.leases, li.token)
	j := d.tab.jobs[li.jobID]
	if j == nil {
		return
	}
	s := j.shards[li.shard]
	if s == nil || s.lease != li.token || s.state != ShardRunning {
		return // lease was revoked; a fresh lease owns this shard now
	}
	if d.killed {
		return // crash simulation: the result dies with the process
	}
	switch {
	case err != nil:
		// Permanent infrastructure failure (e.g. the experiment was
		// deregistered between submit and replay): the shard fails with the
		// typed error's text, the job will finalize failed.
		d.resolveLocked(j, s, record{Type: recShardFailed, Job: j.id, Shard: s.id, Error: err.Error()})
	case overrun && s.attempt < j.spec.Retries:
		// Deadline overrun with retry budget left: back off deterministically
		// — the delay is a pure function of (seed, job/shard, attempt), so a
		// replayed schedule is reproducible.
		b := fault.Backoff{
			Base: d.cfg.Backoff, Max: d.cfg.MaxBackoff,
			Seed: j.spec.Seed, Key: j.id + "/" + s.id,
		}
		delay := b.Delay(s.attempt)
		s.attempt++
		s.state = ShardPending
		s.lease = 0
		s.notBefore = time.Now().Add(delay)
	case overrun:
		d.resolveLocked(j, s, record{
			Type: recShardFailed, Job: j.id, Shard: s.id,
			Error: fmt.Sprintf("%v after %d attempts", harness.ErrDeadline, s.attempt+1),
		})
	default:
		// A completed shard — including one whose Report says the experiment
		// failed its bands or panicked: direct suite runs include those
		// reports too, and byte-identity demands we keep them.
		d.resolveLocked(j, s, record{Type: recShardDone, Job: j.id, Shard: s.id, Report: &rep})
	}
	d.publishProgress()
	d.cond.Broadcast()
}

// resolveLocked journals a terminal shard record, applies it, and journals
// the job's own terminal record when the shard was the last one out.
func (d *Daemon) resolveLocked(j *job, s *shard, rec record) {
	wasActive := j.active()
	if err := d.jnl.append(rec); err != nil {
		// A failed append means the outcome is not durable; leave the shard
		// pending so it reruns (deterministically identical) rather than
		// recording state the journal cannot replay.
		s.state = ShardPending
		s.lease = 0
		return
	}
	d.tab.apply(rec)
	if wasActive && !j.active() {
		term := record{Type: recJobDone, Job: j.id}
		if j.state == JobFailed {
			term = record{Type: recJobFailed, Job: j.id, Error: j.err}
		}
		d.jnl.append(term)
	}
}

// publishProgress pushes aggregate shard progress to the telemetry plane.
func (d *Daemon) publishProgress() {
	done, total := 0, 0
	current := ""
	for _, id := range d.tab.order {
		j := d.tab.jobs[id]
		dn, fl, tot := j.counts()
		done += dn + fl
		total += tot
		if j.active() {
			for _, sid := range j.order {
				if j.shards[sid].state == ShardRunning && current == "" {
					current = j.id + "/" + sid
				}
			}
		}
	}
	d.tel.Progress(done, total, current)
}

// Ready reports whether the daemon is accepting submissions (the /readyz
// verdict).
func (d *Daemon) Ready() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.draining && !d.killed && !d.closed
}

// Shutdown drains gracefully: no new leases are handed out, in-flight shards
// run to completion (their results are journaled as usual), and the journal
// is compacted to a clean checkpoint. If ctx expires first, in-flight shards
// are cooperatively cancelled and the journal is closed uncompacted — still
// a consistent crash-equivalent state — and ctx's error is returned.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.draining = true
	d.cond.Broadcast()
	d.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		d.workers.Wait()
		close(drained)
	}()
	var timedOut bool
	select {
	case <-drained:
	case <-ctx.Done():
		timedOut = true
		d.mu.Lock()
		d.killed = true
		for _, li := range d.leases {
			li.cancel.Store(true)
		}
		d.cond.Broadcast()
		d.mu.Unlock()
		<-drained
	}
	close(d.stop)
	d.monitor.Wait()

	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	if timedOut {
		d.jnl.close()
		return ctx.Err()
	}
	err := d.jnl.checkpoint(d.tab.records())
	// checkpoint keeps the compacted file open (and flock-ed) so the journal
	// is never unlocked mid-swap; release it now that the daemon is done.
	d.jnl.close()
	return err
}

// Kill simulates a crash (the in-process stand-in for kill -9): in-flight
// shards are cancelled and their results discarded, nothing is checkpointed,
// and the journal is abandoned exactly as a dying process would leave it —
// every fsynced record intact, everything after the last one lost. Open on
// the same directory resumes from there.
func (d *Daemon) Kill() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.killed = true
	for _, li := range d.leases {
		li.cancel.Store(true)
	}
	d.cond.Broadcast()
	d.mu.Unlock()

	d.workers.Wait()
	close(d.stop)
	d.monitor.Wait()

	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.jnl.close()
}
