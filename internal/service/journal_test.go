package service

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"zenspec/internal/harness"
)

func testRecords() []record {
	spec := &JobSpec{Seed: 42, Quick: true}
	rep := &harness.Report{ID: "a", Title: "A", Pass: true, Status: harness.StatusClean}
	return []record{
		{Type: recSubmit, Job: "job-1", Spec: spec, Defs: []ShardRef{{Exp: "a"}, {Exp: "b", Lo: 0, Hi: 4}}},
		{Type: recShardDone, Job: "job-1", Shard: "a", Partial: &harness.PartialReport{Exp: "a", Report: rep}},
		{Type: recShardFailed, Job: "job-1", Shard: "b[0:4]", Error: "boom"},
	}
}

func writeTestJournal(t *testing.T, dir string, recs []record) {
	t.Helper()
	j, got, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh journal has %d records", len(got))
	}
	for _, rec := range recs {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
}

// segPaths lists the journal's segment files in sequence order.
func segPaths(t *testing.T, dir string) []string {
	t.Helper()
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(seqs))
	for i, seq := range seqs {
		paths[i] = filepath.Join(dir, segName(seq))
	}
	return paths
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testRecords()
	writeTestJournal(t, dir, want)
	j, got, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed records differ:\n%+v\nwant\n%+v", got, want)
	}
}

// TestJournalTruncatedTail: a crash mid-append leaves a torn final record;
// reopening must recover every record before it, heal the segment by
// truncating the tail, and leave the journal appendable.
func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	writeTestJournal(t, dir, testRecords())
	path := segPaths(t, dir)[0]
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	j, got, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d records from torn journal, want 2", len(got))
	}
	// The tail was healed: appending works and a clean reopen sees 3 records.
	if err := j.append(record{Type: recJobDone, Job: "job-1"}); err != nil {
		t.Fatal(err)
	}
	j.close()
	j, got, err = openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if len(got) != 3 || got[2].Type != recJobDone {
		t.Fatalf("healed journal replayed %d records: %+v", len(got), got)
	}
}

// TestJournalCorruptTail: a bit flip inside the final record's payload fails
// its checksum; the scan must stop there, keeping the intact prefix.
func TestJournalCorruptTail(t *testing.T) {
	dir := t.TempDir()
	writeTestJournal(t, dir, testRecords())
	path := segPaths(t, dir)[0]
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j, got, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if len(got) != 2 {
		t.Fatalf("recovered %d records past a checksum failure, want 2", len(got))
	}
}

// TestJournalGarbageSegment: a segment that is not a journal at all replays
// as empty and self-heals to a clean file.
func TestJournalGarbageSegment(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, segName(1))
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, got, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if len(got) != 0 {
		t.Fatalf("garbage segment replayed %d records", len(got))
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("garbage tail not healed: size %d, err %v", fi.Size(), err)
	}
}

// TestJournalLegacyMigration: a pre-segmentation journal.wal single file is
// adopted as the oldest segment on open — same records, new layout, no data
// loss.
func TestJournalLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	want := testRecords()
	f, err := os.Create(filepath.Join(dir, legacyName))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range want {
		buf, err := frame(rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	j, got, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("migrated journal differs:\n%+v\nwant\n%+v", got, want)
	}
	if _, err := os.Stat(filepath.Join(dir, legacyName)); !os.IsNotExist(err) {
		t.Fatalf("legacy journal.wal still present after migration: %v", err)
	}
	if paths := segPaths(t, dir); len(paths) != 1 {
		t.Fatalf("migration produced %d segments, want 1", len(paths))
	}
	// The migrated journal is appendable like any other.
	if err := j.append(record{Type: recJobDone, Job: "job-1"}); err != nil {
		t.Fatal(err)
	}
}

// TestJournalSegmentRotation: sustained appends past the size limit seal
// segments and start new ones; a reopen replays every record across the
// boundary in order.
func TestJournalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	var want []record
	for i := 0; i < 40; i++ {
		rec := record{Type: recShardDone, Job: "job-1", Shard: segName(i)}
		want = append(want, rec)
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if j.segments() < 3 {
		t.Fatalf("journal spans %d segments after 40 appends at a 256-byte limit", j.segments())
	}
	j.close()
	if paths := segPaths(t, dir); len(paths) < 3 {
		t.Fatalf("only %d segment files on disk", len(paths))
	}
	j, got, err := openJournal(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rotation lost records: replayed %d, want %d", len(got), len(want))
	}
}

// TestJournalCorruptSealedTail: damage to a sealed (rotated) segment's tail
// loses only its trailing records — every record of the later segments still
// replays, and the journal stays appendable.
func TestJournalCorruptSealedTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	var want []record
	for i := 0; i < 40; i++ {
		rec := record{Type: recShardDone, Job: "job-1", Shard: segName(i)}
		want = append(want, rec)
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.close()
	paths := segPaths(t, dir)
	if len(paths) < 3 {
		t.Fatalf("need >=3 segments, have %d", len(paths))
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(paths[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j, got, err := openJournal(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one record (the corrupted segment's last) is lost; later
	// segments contribute everything, in order.
	if len(got) >= len(want) || len(got) < len(want)-3 {
		t.Fatalf("replayed %d records, want a bit under %d", len(got), len(want))
	}
	tail := want[len(want)-1]
	if got[len(got)-1].Shard != tail.Shard {
		t.Fatalf("later segments' records lost: last replayed %q, want %q", got[len(got)-1].Shard, tail.Shard)
	}
	if err := j.append(record{Type: recJobDone, Job: "job-1"}); err != nil {
		t.Fatal(err)
	}
	j.close()
}

func TestJournalCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, rec := range recs {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate appends happen in real logs; the checkpoint drops them.
	if err := j.append(recs[1]); err != nil {
		t.Fatal(err)
	}
	if j.segments() < 2 {
		t.Fatalf("appends did not rotate: %d segments", j.segments())
	}
	if err := j.checkpoint(recs); err != nil {
		t.Fatal(err)
	}
	if j.segments() != 1 {
		t.Fatalf("checkpoint left %d segments, want 1", j.segments())
	}
	if paths := segPaths(t, dir); len(paths) != 1 {
		t.Fatalf("checkpoint left %d segment files, want 1", len(paths))
	}
	// checkpoint keeps the directory lock; release it before reopening.
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	j2, got, err := openJournal(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("checkpointed journal differs:\n%+v\nwant\n%+v", got, recs)
	}
}

// TestApplyDuplicateShardDone: duplicate completion records — possible when
// a crash lands between an append and the next read of state — must apply
// idempotently: the first fragment wins and counts once.
func TestApplyDuplicateShardDone(t *testing.T) {
	tab := newJobTable()
	spec := &JobSpec{Seed: 1}
	tab.apply(record{Type: recSubmit, Job: "job-1", Spec: spec, Defs: []ShardRef{{Exp: "a"}, {Exp: "b"}}})
	first := &harness.PartialReport{Exp: "a", Report: &harness.Report{ID: "a", Detail: "first", Status: harness.StatusClean}}
	second := &harness.PartialReport{Exp: "a", Report: &harness.Report{ID: "a", Detail: "second", Status: harness.StatusClean}}
	tab.apply(record{Type: recShardDone, Job: "job-1", Shard: "a", Partial: first})
	tab.apply(record{Type: recShardDone, Job: "job-1", Shard: "a", Partial: second})
	j := tab.jobs["job-1"]
	done, failed, total := j.counts()
	if done != 1 || failed != 0 || total != 2 {
		t.Fatalf("duplicate shard_done double-counted: done=%d failed=%d total=%d", done, failed, total)
	}
	if j.partials["a"].Report.Detail != "first" {
		t.Fatalf("duplicate shard_done overwrote the first fragment: %q", j.partials["a"].Report.Detail)
	}
	if j.state != JobRunning {
		t.Fatalf("job state %q, want running", j.state)
	}
	// A duplicate failure for an already-done shard is likewise ignored.
	tab.apply(record{Type: recShardFailed, Job: "job-1", Shard: "a", Error: "late"})
	if j.shards["a"].state != ShardDone {
		t.Fatal("late shard_failed overrode a completed shard")
	}
	// Records referencing unknown jobs or shards are skipped, not fatal.
	tab.apply(record{Type: recShardDone, Job: "ghost", Shard: "a", Partial: first})
	tab.apply(record{Type: recShardDone, Job: "job-1", Shard: "ghost", Partial: first})
}

// TestApplyLegacyRecords: pre-/v1 journals carried whole-experiment shard ID
// lists and bare Reports; they must still replay into the sharded table.
func TestApplyLegacyRecords(t *testing.T) {
	tab := newJobTable()
	tab.apply(record{Type: recSubmit, Job: "job-1", Spec: &JobSpec{Seed: 1}, Shards: []string{"a", "b"}})
	rep := &harness.Report{ID: "a", Detail: "legacy", Status: harness.StatusClean}
	tab.apply(record{Type: recShardDone, Job: "job-1", Shard: "a", Report: rep})
	j := tab.jobs["job-1"]
	if j == nil || len(j.shards) != 2 {
		t.Fatalf("legacy submit replayed %+v", j)
	}
	p := j.partials["a"]
	if p == nil || !p.Whole() || p.Exp != "a" || p.Report.Detail != "legacy" {
		t.Fatalf("legacy shard_done replayed %+v", p)
	}
	tab.apply(record{Type: recShardDone, Job: "job-1", Shard: "b",
		Partial: &harness.PartialReport{Exp: "b", Report: &harness.Report{ID: "b"}}})
	if j.state != JobDone {
		t.Fatalf("mixed legacy/v1 job state %q, want done", j.state)
	}
}

// TestApplyJobArchive: an archive record drops a terminal job from the table
// — and is refused for a live one.
func TestApplyJobArchive(t *testing.T) {
	tab := newJobTable()
	tab.apply(record{Type: recSubmit, Job: "job-1", Spec: &JobSpec{Seed: 1}, Defs: []ShardRef{{Exp: "a"}}})
	// Archiving a live job is a no-op.
	tab.apply(record{Type: recJobArchive, Job: "job-1"})
	if tab.jobs["job-1"] == nil {
		t.Fatal("live job was archived")
	}
	tab.apply(record{Type: recShardDone, Job: "job-1", Shard: "a",
		Partial: &harness.PartialReport{Exp: "a", Report: &harness.Report{ID: "a"}}})
	tab.apply(record{Type: recJobArchive, Job: "job-1"})
	if tab.jobs["job-1"] != nil || len(tab.order) != 0 {
		t.Fatalf("terminal job not archived: %+v order %v", tab.jobs["job-1"], tab.order)
	}
	// The archive survives a snapshot round trip: records() omits the job.
	if recs := tab.records(); len(recs) != 0 {
		t.Fatalf("archived job still in snapshot: %+v", recs)
	}
}
