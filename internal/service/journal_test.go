package service

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"zenspec/internal/harness"
)

func testRecords() []record {
	spec := &JobSpec{Seed: 42, Quick: true}
	rep := &harness.Report{ID: "a", Title: "A", Pass: true, Status: harness.StatusClean}
	return []record{
		{Type: recSubmit, Job: "job-1", Spec: spec, Shards: []string{"a", "b"}},
		{Type: recShardDone, Job: "job-1", Shard: "a", Report: rep},
		{Type: recShardFailed, Job: "job-1", Shard: "b", Error: "boom"},
	}
}

func writeJournal(t *testing.T, path string, recs []record) {
	t.Helper()
	j, got, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh journal has %d records", len(got))
	}
	for _, rec := range recs {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	want := testRecords()
	writeJournal(t, path, want)
	j, got, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed records differ:\n%+v\nwant\n%+v", got, want)
	}
}

// TestJournalTruncatedTail: a crash mid-append leaves a torn final record;
// reopening must recover every record before it, heal the file by truncating
// the tail, and leave the journal appendable.
func TestJournalTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	writeJournal(t, path, testRecords())
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	j, got, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d records from torn journal, want 2", len(got))
	}
	// The tail was healed: appending works and a clean reopen sees 3 records.
	if err := j.append(record{Type: recJobDone, Job: "job-1"}); err != nil {
		t.Fatal(err)
	}
	j.close()
	j, got, err = openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if len(got) != 3 || got[2].Type != recJobDone {
		t.Fatalf("healed journal replayed %d records: %+v", len(got), got)
	}
}

// TestJournalCorruptTail: a bit flip inside the final record's payload fails
// its checksum; the scan must stop there, keeping the intact prefix.
func TestJournalCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	writeJournal(t, path, testRecords())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j, got, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if len(got) != 2 {
		t.Fatalf("recovered %d records past a checksum failure, want 2", len(got))
	}
}

// TestJournalGarbageFile: a journal that is not a journal at all replays as
// empty and self-heals to a clean file.
func TestJournalGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, got, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if len(got) != 0 {
		t.Fatalf("garbage file replayed %d records", len(got))
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("garbage tail not healed: size %d, err %v", fi.Size(), err)
	}
}

func TestJournalCheckpointCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, rec := range recs {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate appends happen in real logs; the checkpoint drops them.
	if err := j.append(recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := j.checkpoint(recs); err != nil {
		t.Fatal(err)
	}
	// checkpoint re-locks the compacted file; release it before reopening.
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	j2, got, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("checkpointed journal differs:\n%+v\nwant\n%+v", got, recs)
	}
}

// TestApplyDuplicateShardDone: duplicate completion records — possible when
// a crash lands between an append and the next read of state — must apply
// idempotently: the first report wins and counts once.
func TestApplyDuplicateShardDone(t *testing.T) {
	tab := newJobTable()
	spec := &JobSpec{Seed: 1}
	tab.apply(record{Type: recSubmit, Job: "job-1", Spec: spec, Shards: []string{"a", "b"}})
	first := &harness.Report{ID: "a", Detail: "first", Status: harness.StatusClean}
	second := &harness.Report{ID: "a", Detail: "second", Status: harness.StatusClean}
	tab.apply(record{Type: recShardDone, Job: "job-1", Shard: "a", Report: first})
	tab.apply(record{Type: recShardDone, Job: "job-1", Shard: "a", Report: second})
	j := tab.jobs["job-1"]
	done, failed, total := j.counts()
	if done != 1 || failed != 0 || total != 2 {
		t.Fatalf("duplicate shard_done double-counted: done=%d failed=%d total=%d", done, failed, total)
	}
	if j.reports["a"].Detail != "first" {
		t.Fatalf("duplicate shard_done overwrote the first report: %q", j.reports["a"].Detail)
	}
	if j.state != JobRunning {
		t.Fatalf("job state %q, want running", j.state)
	}
	// A duplicate failure for an already-done shard is likewise ignored.
	tab.apply(record{Type: recShardFailed, Job: "job-1", Shard: "a", Error: "late"})
	if j.shards["a"].state != ShardDone {
		t.Fatal("late shard_failed overrode a completed shard")
	}
	// Records referencing unknown jobs or shards are skipped, not fatal.
	tab.apply(record{Type: recShardDone, Job: "ghost", Shard: "a", Report: first})
	tab.apply(record{Type: recShardDone, Job: "job-1", Shard: "ghost", Report: first})
}
