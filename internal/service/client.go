package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"zenspec/internal/harness"
)

// Client is the zenspecd /v1 API client, used by cmd/experiments -submit,
// cmd/zenspec-worker, and the verify.sh smokes. It implements LeaseSource,
// so a Worker pointed at a Client is a remote pull worker.
//
// Before the first real request the client fetches GET /v1/meta once and
// asserts the daemon speaks its API version; a daemon that cannot answer
// (pre-/v1 build, or the wrong service entirely) fails every call with
// ErrAPIVersion rather than misparsing responses. Error responses carry a
// machine-readable code that is mapped back onto the package's typed
// sentinels, so errors.Is works identically in-process and over the wire.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8787".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// APIVersion is the protocol the client insists on; empty means the
	// package's own APIVersion ("v1").
	APIVersion string

	mu       sync.Mutex
	verified bool
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// roundTrip performs one request. Transport failures wrap
// ErrDaemonUnavailable; error responses are decoded into their sentinel; a
// 204 returns (nil, nil).
func (c *Client) roundTrip(method, path string, in any) ([]byte, error) {
	var body io.Reader
	if in != nil {
		payload, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, c.url(path), body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDaemonUnavailable, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDaemonUnavailable, err)
	}
	if resp.StatusCode == http.StatusNoContent {
		return nil, nil
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, decodeErr(method, path, resp.Status, raw)
	}
	if raw == nil {
		raw = []byte{}
	}
	return raw, nil
}

// decodeErr turns an error response into the matching sentinel (when the
// body carries a known code) or a plain service error.
func decodeErr(method, path, status string, raw []byte) error {
	msg := strings.TrimSpace(string(raw))
	var ae apiError
	if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
		msg = ae.Error
	}
	var sentinel error
	switch ae.Code {
	case "job_not_found":
		sentinel = ErrJobNotFound
	case "lease_not_found":
		sentinel = ErrLeaseNotFound
	case "draining":
		sentinel = ErrDraining
	case "unknown_experiment":
		sentinel = harness.ErrUnknownExperiment
	}
	if sentinel != nil {
		return fmt.Errorf("%w: %s %s: %s: %s", sentinel, method, path, status, msg)
	}
	return fmt.Errorf("service: %s %s: %s: %s", method, path, status, msg)
}

// ensureVersion performs the one-time /v1/meta handshake. A transport
// failure leaves the check pending (the next call retries); a daemon that
// answers with the wrong version — or cannot answer at all — is ErrAPIVersion.
func (c *Client) ensureVersion() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.verified {
		return nil
	}
	raw, err := c.roundTrip("GET", "/v1/meta", nil)
	if err != nil {
		if errors.Is(err, ErrDaemonUnavailable) {
			return err
		}
		return fmt.Errorf("%w: %v", ErrAPIVersion, err)
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("%w: bad meta response: %v", ErrAPIVersion, err)
	}
	want := c.APIVersion
	if want == "" {
		want = APIVersion
	}
	if m.APIVersion != want {
		return fmt.Errorf("%w: daemon speaks %q, client requires %q", ErrAPIVersion, m.APIVersion, want)
	}
	c.verified = true
	return nil
}

// request is roundTrip behind the version handshake — every public call goes
// through it.
func (c *Client) request(method, path string, in any) ([]byte, error) {
	if err := c.ensureVersion(); err != nil {
		return nil, err
	}
	return c.roundTrip(method, path, in)
}

// Meta fetches the daemon's self-description.
func (c *Client) Meta() (Meta, error) {
	raw, err := c.request("GET", "/v1/meta", nil)
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return Meta{}, fmt.Errorf("service: meta response: %w", err)
	}
	return m, nil
}

// Submit posts a job and returns its ID.
func (c *Client) Submit(spec JobSpec) (string, error) {
	raw, err := c.request("POST", "/v1/jobs", spec)
	if err != nil {
		return "", err
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return "", fmt.Errorf("service: submit response: %w", err)
	}
	return out.ID, nil
}

// Status fetches one job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	raw, err := c.request("GET", "/v1/jobs/"+id, nil)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return JobStatus{}, fmt.Errorf("service: status response: %w", err)
	}
	return st, nil
}

// Wait polls until the job reaches a terminal state or ctx expires. A job
// that finishes failed returns its status and an error wrapping ErrJobFailed.
//
// Outages (connection refused, reset — anything wrapping
// ErrDaemonUnavailable) are tolerated and polled through: the job is
// journaled server-side, so a daemon that crashes and restarts mid-wait
// resumes it and this poll loop picks it back up. Only definitive API errors
// (ErrJobNotFound and kin) fail the wait.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		switch {
		case err == nil && st.Terminal():
			if st.State == JobFailed {
				return st, fmt.Errorf("%w: %s", ErrJobFailed, st.Error)
			}
			return st, nil
		case err != nil && !errors.Is(err, ErrDaemonUnavailable):
			return JobStatus{}, err
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Report fetches the merged SuiteReport.
func (c *Client) Report(id string) (harness.SuiteReport, error) {
	raw, err := c.request("GET", "/v1/jobs/"+id+"/report", nil)
	if err != nil {
		return harness.SuiteReport{}, err
	}
	var rep harness.SuiteReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return harness.SuiteReport{}, fmt.Errorf("service: report response: %w", err)
	}
	return rep, nil
}

// StableReport fetches the report in canonical StableJSON form, byte-
// comparable with a direct cmd/experiments -stable run of the same spec.
func (c *Client) StableReport(id string) ([]byte, error) {
	return c.request("GET", "/v1/jobs/"+id+"/report?stable=1", nil)
}

// TextReport fetches the terminal rendering of the report.
func (c *Client) TextReport(id string) (string, error) {
	raw, err := c.request("GET", "/v1/jobs/"+id+"/report?text=1", nil)
	return string(raw), err
}

// Lease claims the next pending shard over the wire; (nil, nil) means
// nothing was available within the wait window. Part of LeaseSource.
func (c *Client) Lease(worker string, wait time.Duration) (*Lease, error) {
	raw, err := c.request("POST", "/v1/leases", struct {
		Worker string `json:"worker"`
		WaitMS int64  `json:"wait_ms"`
	}{worker, wait.Milliseconds()})
	if err != nil || raw == nil {
		return nil, err
	}
	var l Lease
	if err := json.Unmarshal(raw, &l); err != nil {
		return nil, fmt.Errorf("service: lease response: %w", err)
	}
	return &l, nil
}

// Heartbeat keeps a lease alive and streams trial progress. Part of
// LeaseSource.
func (c *Client) Heartbeat(token string, trialsDone, trialsTotal int) error {
	_, err := c.request("POST", "/v1/leases/"+token+"/heartbeat", struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	}{trialsDone, trialsTotal})
	return err
}

// Complete hands a finished shard back under its lease token, attempt spans
// included. Part of LeaseSource.
func (c *Client) Complete(token string, comp Completion) error {
	_, err := c.request("POST", "/v1/leases/"+token+"/complete", comp)
	return err
}

// Trace fetches the job's stitched Perfetto trace (Chrome trace-event JSON).
func (c *Client) Trace(id string) ([]byte, error) {
	return c.request("GET", "/v1/jobs/"+id+"/trace", nil)
}
