package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"zenspec/internal/harness"
)

// Client is a minimal zenspecd API client, used by cmd/experiments -submit
// and the verify.sh smoke.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8787".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

func (c *Client) get(path string) ([]byte, error) {
	resp, err := c.http().Get(c.url(path))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// Submit posts a job and returns its ID.
func (c *Client) Submit(spec JobSpec) (string, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Post(c.url("/jobs"), "application/json", bytes.NewReader(payload))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("service: submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return "", fmt.Errorf("service: submit response: %w", err)
	}
	return out.ID, nil
}

// Status fetches one job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	body, err := c.get("/jobs/" + id)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return JobStatus{}, fmt.Errorf("service: status response: %w", err)
	}
	return st, nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
//
// Transport errors (connection refused, reset) are tolerated and polled
// through: the job is journaled server-side, so a daemon that crashes and
// restarts mid-wait resumes it and this poll loop picks it back up. Only
// HTTP-level errors (404 unknown job) fail the wait — the base URL itself
// was already proven reachable by Submit.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		var transport *url.Error
		switch {
		case err == nil && st.Terminal():
			return st, nil
		case err != nil && !errors.As(err, &transport):
			return JobStatus{}, err
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Report fetches the merged SuiteReport.
func (c *Client) Report(id string) (harness.SuiteReport, error) {
	body, err := c.get("/jobs/" + id + "/report")
	if err != nil {
		return harness.SuiteReport{}, err
	}
	var rep harness.SuiteReport
	if err := json.Unmarshal(body, &rep); err != nil {
		return harness.SuiteReport{}, fmt.Errorf("service: report response: %w", err)
	}
	return rep, nil
}

// StableReport fetches the report in canonical StableJSON form, byte-
// comparable with a direct cmd/experiments -stable run of the same spec.
func (c *Client) StableReport(id string) ([]byte, error) {
	return c.get("/jobs/" + id + "/report?stable=1")
}

// TextReport fetches the terminal rendering of the report.
func (c *Client) TextReport(id string) (string, error) {
	body, err := c.get("/jobs/" + id + "/report?text=1")
	return string(body), err
}
