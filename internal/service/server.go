package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"zenspec/internal/harness"
)

// Server is the zenspecd HTTP front end: a JSON job API mounted beside the
// daemon's telemetry plane (Prometheus /metrics with the queue gauges, live
// /progress, /profile, host pprof).
//
//	POST /jobs              submit a JobSpec, returns {"id": "job-N"}
//	GET  /jobs              list all jobs
//	GET  /jobs/{id}         one job's status
//	GET  /jobs/{id}/watch   NDJSON stream of status snapshots until terminal
//	GET  /jobs/{id}/report  merged SuiteReport (?stable=1 for StableJSON,
//	                        ?text=1 for the terminal rendering)
//	GET  /jobs/{id}/profile merged simulated-machine profile, pprof protobuf
//	GET  /healthz           liveness (200 while the process serves)
//	GET  /readyz            readiness (503 once draining)
type Server struct {
	d   *Daemon
	srv *http.Server
}

// NewServer wraps a daemon.
func NewServer(d *Daemon) *Server { return &Server{d: d} }

// Handler builds the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/watch", s.handleWatch)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/profile", s.handleProfile)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.d.Ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("/", s.d.Telemetry().Handler())
	return mux
}

// Serve binds addr (":0" picks a free port) and serves in the background.
func (s *Server) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return ln.Addr(), nil
}

// Shutdown drains the HTTP server, then the daemon (in-flight shards finish
// and the journal is checkpointed), both bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	var httpErr error
	if s.srv != nil {
		httpErr = s.srv.Shutdown(ctx)
	}
	if err := s.d.Shutdown(ctx); err != nil {
		return err
	}
	return httpErr
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownJob), errors.Is(err, harness.ErrUnknownExperiment):
		code = http.StatusNotFound
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.d.Submit(spec)
	if err != nil {
		if errors.Is(err, harness.ErrUnknownExperiment) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.fail(w, err)
		return
	}
	writeJSON(w, struct {
		ID string `json:"id"`
	}{id})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Jobs []JobStatus `json:"jobs"`
	}{s.d.Jobs()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.d.Status(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, st)
}

// handleWatch streams NDJSON status snapshots — one line per state change,
// plus an initial one — until the job reaches a terminal state or the client
// goes away.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.d.Status(id)
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var last []byte
	emit := func(st JobStatus) bool {
		line, _ := json.Marshal(st)
		if string(line) == string(last) {
			return true
		}
		last = line
		if err := enc.Encode(st); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(st) {
		return
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for !st.Terminal() {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
		st, err = s.d.Status(id)
		if err != nil || !emit(st) {
			return
		}
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, err := s.d.Report(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	switch {
	case r.URL.Query().Get("stable") != "":
		b, err := rep.StableJSON()
		if err != nil {
			s.fail(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	case r.URL.Query().Get("text") != "":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rep.Text())
	default:
		b, err := rep.JSON()
		if err != nil {
			s.fail(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	}
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	rep, err := s.d.Report(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	snap := rep.Profile()
	if snap == nil {
		http.Error(w, "job has no profile (submit with \"profile\": true)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="zenspec-job.pb.gz"`)
	snap.WritePprof(w)
}
