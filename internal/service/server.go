package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"zenspec/internal/harness"
)

// Server is the zenspecd HTTP front end: the versioned /v1 JSON job API
// mounted beside the daemon's telemetry plane (Prometheus /metrics with the
// queue gauges, live /progress, /profile, host pprof).
//
//	GET  /v1/meta                         API version, build, experiment list
//	POST /v1/jobs                         submit a JobSpec, returns {"id": "job-N"}
//	GET  /v1/jobs                         list all jobs
//	GET  /v1/jobs/{id}                    one job's status
//	GET  /v1/jobs/{id}/watch              NDJSON stream of status snapshots until terminal
//	GET  /v1/jobs/{id}/report             merged SuiteReport (?stable=1 for StableJSON,
//	                                      ?text=1 for the terminal rendering)
//	GET  /v1/jobs/{id}/profile            merged simulated-machine profile, pprof protobuf
//	GET  /v1/jobs/{id}/trace              stitched daemon+worker Perfetto trace
//	                                      (Chrome trace-event JSON; 404 without tracing)
//	POST /v1/leases                       claim a shard lease ({"worker", "wait_ms"};
//	                                      204 when nothing is pending)
//	POST /v1/leases/{token}/heartbeat     keep a lease alive ({"done", "total"})
//	POST /v1/leases/{token}/complete      hand back a shard ({"partial", "error", "overrun"})
//	GET  /v1/healthz                      liveness (200 while the process serves)
//	GET  /v1/readyz                       readiness (503 once draining)
//
// Errors come back as {"error": "...", "code": "..."} JSON bodies; Client
// maps the code to the package's typed sentinels. The job and health
// endpoints are also mounted at their pre-/v1 paths (POST /jobs, ...) as
// deprecated aliases for one release; the lease surface is /v1-only.
type Server struct {
	d   *Daemon
	srv *http.Server
}

// NewServer wraps a daemon.
func NewServer(d *Daemon) *Server { return &Server{d: d} }

// Handler builds the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// handle mounts a job-API route under /v1 and at its legacy pre-/v1 path.
	handle := func(pattern string, h http.HandlerFunc) {
		method, path, _ := strings.Cut(pattern, " ")
		mux.HandleFunc(method+" /v1"+path, h)
		mux.HandleFunc(pattern, h)
	}
	handle("POST /jobs", s.handleSubmit)
	handle("GET /jobs", s.handleList)
	handle("GET /jobs/{id}", s.handleStatus)
	handle("GET /jobs/{id}/watch", s.handleWatch)
	handle("GET /jobs/{id}/report", s.handleReport)
	handle("GET /jobs/{id}/profile", s.handleProfile)
	handle("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	handle("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.d.Ready() {
			// A draining daemon answering probes is an event worth seeing:
			// without it, an operator only infers the drain from re-leases.
			s.d.Obs().Metrics().Inc("readyz_draining_total", 1)
			s.d.log.Warn("readiness probe while draining", "remote", r.RemoteAddr)
			writeError(w, http.StatusServiceUnavailable, "draining", "daemon is draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /v1/meta", s.handleMeta)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/leases", s.handleLease)
	mux.HandleFunc("POST /v1/leases/{token}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/leases/{token}/complete", s.handleComplete)
	mux.Handle("/", s.d.Telemetry().Handler())
	return mux
}

// Serve binds addr (":0" picks a free port) and serves in the background.
func (s *Server) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return ln.Addr(), nil
}

// Shutdown drains the HTTP server, then the daemon (in-flight shards finish
// and the journal is checkpointed), both bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	var httpErr error
	if s.srv != nil {
		httpErr = s.srv.Shutdown(ctx)
	}
	if err := s.d.Shutdown(ctx); err != nil {
		return err
	}
	return httpErr
}

// apiError is the wire shape of every error response. Code is machine-
// readable; Client maps it back to the package sentinels so errors.Is works
// across the wire.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: msg, Code: code})
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.Is(err, ErrJobNotFound):
		status, code = http.StatusNotFound, "job_not_found"
	case errors.Is(err, ErrLeaseNotFound):
		status, code = http.StatusNotFound, "lease_not_found"
	case errors.Is(err, harness.ErrUnknownExperiment):
		status, code = http.StatusNotFound, "unknown_experiment"
	case errors.Is(err, ErrDraining):
		status, code = http.StatusServiceUnavailable, "draining"
	}
	writeError(w, status, code, err.Error())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleMeta(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.d.Meta())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad spec: "+err.Error())
		return
	}
	id, err := s.d.Submit(spec)
	if err != nil {
		if errors.Is(err, harness.ErrUnknownExperiment) {
			writeError(w, http.StatusBadRequest, "unknown_experiment", err.Error())
			return
		}
		s.fail(w, err)
		return
	}
	writeJSON(w, struct {
		ID string `json:"id"`
	}{id})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Jobs []JobStatus `json:"jobs"`
	}{s.d.Jobs()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.d.Status(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, st)
}

// handleLease claims the next pending shard for a remote worker. The server
// caps the long-poll window well below typical client timeouts so a drain
// never wedges behind parked lease requests; an empty claim is 204, not an
// error — the worker just polls again.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Worker string `json:"worker"`
		WaitMS int64  `json:"wait_ms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad lease request: "+err.Error())
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if max := 5 * time.Second; wait > max {
		wait = max
	}
	l, err := s.d.Lease(req.Worker, wait)
	if err != nil {
		s.fail(w, err)
		return
	}
	if l == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, l)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad heartbeat: "+err.Error())
		return
	}
	if err := s.d.Heartbeat(r.PathValue("token"), req.Done, req.Total); err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req Completion
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad completion: "+err.Error())
		return
	}
	if err := s.d.Complete(r.PathValue("token"), req); err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleTrace serves the job's stitched daemon+worker Perfetto trace. The
// route is /v1-only, like the lease surface.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	b, err := s.d.TracePerfetto(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrJobNotFound) {
			s.fail(w, err)
			return
		}
		writeError(w, http.StatusNotFound, "no_trace", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handleWatch streams NDJSON status snapshots — one line per state change,
// plus an initial one — until the job reaches a terminal state or the client
// goes away.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.d.Status(id)
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.d.Obs().Metrics().Inc("watch_requests_total", 1)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var last []byte
	emitted := 0
	defer func() {
		// Fan-out: how many snapshot lines this stream pushed before ending.
		s.d.Obs().Metrics().Observe("watch_fanout", float64(emitted))
	}()
	emit := func(st JobStatus) bool {
		line, _ := json.Marshal(st)
		if string(line) == string(last) {
			return true
		}
		last = line
		if err := enc.Encode(st); err != nil {
			return false
		}
		emitted++
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(st) {
		return
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for !st.Terminal() {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
		st, err = s.d.Status(id)
		if err != nil || !emit(st) {
			return
		}
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, err := s.d.Report(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	switch {
	case r.URL.Query().Get("stable") != "":
		b, err := rep.StableJSON()
		if err != nil {
			s.fail(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	case r.URL.Query().Get("text") != "":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rep.Text())
	default:
		b, err := rep.JSON()
		if err != nil {
			s.fail(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	}
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	rep, err := s.d.Report(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	snap := rep.Profile()
	if snap == nil {
		writeError(w, http.StatusNotFound, "bad_request", "job has no profile (submit with \"profile\": true)")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="zenspec-job.pb.gz"`)
	snap.WritePprof(w)
}
