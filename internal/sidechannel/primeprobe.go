package sidechannel

import (
	"fmt"

	"zenspec/internal/cache"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
)

// PrimeProbe is the classic no-shared-memory cache channel: the attacker
// fills (primes) a cache set with its own lines, lets the victim run, and
// re-times its own lines (probes) — a slow probe means the victim touched a
// line mapping to the monitored set. It needs neither CLFLUSH nor any
// shared pages, only knowledge of set-index bits.
type PrimeProbe struct {
	K   *kernel.Kernel
	P   *kernel.Process
	CPU int

	bufVA     uint64
	ways      int
	setStride uint64
	timerVA   uint64
	threshold uint64
}

// NewPrimeProbe maps the attacker's priming buffer and timing routine.
// The monitored structure is the L1 set (fastest signal); the buffer spans
// enough lines to prime any L1 set.
func NewPrimeProbe(k *kernel.Kernel, p *kernel.Process, cpu int, bufVA, codeVA uint64) *PrimeProbe {
	cfg := k.Caches().Config()
	pp := &PrimeProbe{
		K: k, P: p, CPU: cpu,
		bufVA:     bufVA,
		ways:      cfg.L1.Ways,
		setStride: uint64(cfg.L1.Sets) * cache.LineSize,
		timerVA:   codeVA,
	}
	// ways+1 lines per set-congruence class; sequential physical frames give
	// every class.
	span := uint64(pp.ways+2) * pp.setStride
	p.MapData(bufVA, span+mem.PageSize)
	// Map the timing routine (reusing the FlushReload code path).
	New(k, p, cpu, bufVA, 1, codeVA)
	pp.calibrate()
	return pp
}

// calibrate distinguishes an L1 hit from the next-level hit: the attacker
// times a line, self-evicts it from L1 by walking its own congruent lines,
// and times it again. The threshold sits between the two readings.
func (pp *PrimeProbe) calibrate() {
	base := pp.bufVA
	pp.time(base) // pull in (and warm the code path)
	l1 := pp.time(base)
	// Self-evict: touch `ways` other congruent lines.
	for i := 1; i <= pp.ways; i++ {
		pp.time(base + uint64(i)*pp.setStride)
	}
	l2 := pp.time(base)
	pp.threshold = (l1 + l2) / 2
	if pp.threshold <= l1 {
		pp.threshold = l1 + 1
	}
}

// linesFor returns the attacker lines congruent with pa's L1 set.
func (pp *PrimeProbe) linesFor(pa uint64) ([]uint64, error) {
	target := pa % pp.setStride
	var out []uint64
	for i := uint64(0); len(out) < pp.ways; i++ {
		va := pp.bufVA + i*cache.LineSize
		cpa, f := pp.P.AS.Translate(va, mem.AccessRead)
		if f != mem.FaultNone {
			return nil, fmt.Errorf("sidechannel: priming buffer too small")
		}
		if cpa%pp.setStride == target {
			out = append(out, va)
		}
	}
	return out, nil
}

// Prime fills the set that pa maps to with attacker lines.
func (pp *PrimeProbe) Prime(pa uint64) error {
	lines, err := pp.linesFor(pa)
	if err != nil {
		return err
	}
	for _, va := range lines {
		pp.time(va) // architectural loads pull the lines in
	}
	return nil
}

// Probe re-times the attacker lines for pa's set and reports how many now
// miss — nonzero means the victim displaced something.
func (pp *PrimeProbe) Probe(pa uint64) (int, error) {
	lines, err := pp.linesFor(pa)
	if err != nil {
		return 0, err
	}
	misses := 0
	for _, va := range lines {
		if pp.time(va) >= pp.threshold {
			misses++
		}
	}
	return misses, nil
}

// time measures one load through the simulated CPU.
func (pp *PrimeProbe) time(va uint64) uint64 {
	fr := FlushReload{K: pp.K, P: pp.P, CPU: pp.CPU, codeVA: pp.timerVA}
	return fr.Time(va)
}

// Threshold returns the hit/miss boundary.
func (pp *PrimeProbe) Threshold() uint64 { return pp.threshold }
