// Package sidechannel implements the cache covert channels the paper's
// attacks use to recover transiently accessed data: Flush+Reload [50] over
// the simulated cache hierarchy, with an RDPRU-timed reload loop running on
// the simulated CPU (so timer mitigations degrade it realistically).
package sidechannel

import (
	"fmt"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/obs"
	"zenspec/internal/pipeline"
)

// FlushReload probes a region of `entries` slots, each one page apart (the
// paper's array2[value * 4096] encoding), and recovers which slot a victim
// touched.
type FlushReload struct {
	K       *kernel.Kernel
	P       *kernel.Process
	CPU     int
	ProbeVA uint64
	Entries int
	Stride  uint64

	codeVA    uint64
	threshold uint64
	hitsBuf   []int // reused by Reload across sweeps
}

// New maps the timing routine into p and calibrates the hit/miss threshold.
// The probe region itself must already be mapped (it is usually the victim's
// array, shared with or reachable by the attacker).
func New(k *kernel.Kernel, p *kernel.Process, cpu int, probeVA uint64, entries int, codeVA uint64) *FlushReload {
	f := &FlushReload{
		K: k, P: p, CPU: cpu,
		ProbeVA: probeVA, Entries: entries, Stride: mem.PageSize,
		codeVA: codeVA,
	}
	b := asm.NewBuilder()
	b.Rdpru(isa.R10)
	b.Load(isa.R8, isa.RDI, 0)
	b.Rdpru(isa.R11)
	b.Sub(isa.RAX, isa.R11, isa.R10)
	b.Halt()
	p.MapCode(codeVA, b.MustAssemble(codeVA))
	f.calibrate()
	return f
}

// Time measures one access to va on the simulated CPU.
func (f *FlushReload) Time(va uint64) uint64 {
	f.P.Regs = [isa.NumRegs]uint64{}
	f.P.Regs[isa.RDI] = va
	res := f.K.RunOn(f.CPU, f.P, f.codeVA, 0)
	if res.Stop != pipeline.StopHalt {
		panic(fmt.Sprintf("sidechannel: timing routine stopped with %v", res.Stop))
	}
	return f.P.Regs[isa.RAX]
}

func (f *FlushReload) calibrate() {
	va := f.ProbeVA
	f.P.WarmLine(va)
	f.Time(va) // warm the code path / ITLB
	// Median of three readings per class: a single stray eviction (fault
	// injection) or jittered timer reading must not skew the threshold for
	// the whole run. The line state is re-forced before every reading, and
	// the slot ends flushed either way.
	var hits, misses [3]uint64
	for i := range hits {
		f.P.WarmLine(va)
		hits[i] = f.Time(va)
	}
	for i := range misses {
		f.P.FlushLine(va)
		misses[i] = f.Time(va)
	}
	f.P.FlushLine(va)
	hit := median3(hits)
	miss := median3(misses)
	f.threshold = (hit + miss) / 2
	if f.threshold <= hit {
		f.threshold = hit + 1
	}
}

// median3 returns the middle of three values.
func median3(v [3]uint64) uint64 {
	a, b, c := v[0], v[1], v[2]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// Threshold returns the calibrated hit/miss boundary in cycles.
func (f *FlushReload) Threshold() uint64 { return f.threshold }

// slot returns the address of probe slot v.
func (f *FlushReload) slot(v int) uint64 { return f.ProbeVA + uint64(v)*f.Stride }

// FlushAll evicts every probe slot (the Flush phase).
//
// Every slot is flushed unconditionally even when its line is already absent:
// cache.Flush counts the flush in the hierarchy's statistics and emits a
// cache event per probed line, so skipping "redundant" flush passes would
// change the metrics reports and recorded traces for an identical attack.
func (f *FlushReload) FlushAll() {
	for v := 0; v < f.Entries; v++ {
		f.P.FlushLine(f.slot(v))
	}
}

// emitProbe reports one timed slot's verdict on the machine's event bus.
func (f *FlushReload) emitProbe(slot int, va, t uint64, hit bool) {
	bus := f.K.Bus()
	if bus.On(obs.ClassProbe) {
		bus.Emit(obs.ProbeEvent{
			CPU: f.CPU, Cycle: bus.Now(), Slot: slot, VA: va,
			Cycles: t, Threshold: f.threshold, Hit: hit,
		})
	}
}

// Reload times every slot and returns the indices that hit (the Reload
// phase). The scan itself refills lines, so each round must FlushAll first.
// The returned slice is reused by the next Reload on this FlushReload; copy
// it to retain hits across sweeps.
func (f *FlushReload) Reload() []int {
	hits := f.hitsBuf[:0]
	for v := 0; v < f.Entries; v++ {
		va := f.slot(v)
		t := f.Time(va)
		hit := t < f.threshold
		f.emitProbe(v, va, t, hit)
		if hit {
			hits = append(hits, v)
		}
	}
	f.hitsBuf = hits
	return hits
}

// Recover runs Reload and returns the best candidate, ignoring the indices
// in exclude (slots known to be architecturally polluted). ok is false when
// no non-excluded slot hit.
func (f *FlushReload) Recover(exclude map[int]bool) (int, bool) {
	best, bestTime := -1, ^uint64(0)
	for v := 0; v < f.Entries; v++ {
		if exclude[v] {
			continue
		}
		va := f.slot(v)
		t := f.Time(va)
		hit := t < f.threshold
		f.emitProbe(v, va, t, hit)
		if hit && t < bestTime {
			best, bestTime = v, t
		}
	}
	return best, best >= 0
}
