package sidechannel

import (
	"testing"

	"zenspec/internal/kernel"
	"zenspec/internal/mem"
)

func TestPrimeProbeDetectsVictimAccess(t *testing.T) {
	k := kernel.New(kernel.Config{Seed: 1})
	attacker := k.NewProcess("attacker", kernel.DomainUser)
	victim := k.NewProcess("victim", kernel.DomainUser)
	const victimVA = 0x5000000
	victim.MapData(victimVA, mem.PageSize)
	vpa, _ := victim.AS.Translate(victimVA, mem.AccessRead)

	pp := NewPrimeProbe(k, attacker, 0, 0x2000000, 0x400000)

	// Prime, victim idle, probe: no misses.
	if err := pp.Prime(vpa); err != nil {
		t.Fatal(err)
	}
	misses, err := pp.Probe(vpa)
	if err != nil {
		t.Fatal(err)
	}
	if misses != 0 {
		t.Errorf("idle probe saw %d misses", misses)
	}

	// Prime, victim touches its line, probe: at least one miss.
	if err := pp.Prime(vpa); err != nil {
		t.Fatal(err)
	}
	victim.WarmLine(victimVA) // the victim access
	misses, err = pp.Probe(vpa)
	if err != nil {
		t.Fatal(err)
	}
	if misses == 0 {
		t.Error("victim access went undetected")
	}
	if pp.Threshold() == 0 {
		t.Error("threshold not calibrated")
	}
}

func TestPrimeProbeDistinguishesSets(t *testing.T) {
	k := kernel.New(kernel.Config{Seed: 1})
	attacker := k.NewProcess("attacker", kernel.DomainUser)
	victim := k.NewProcess("victim", kernel.DomainUser)
	const victimVA = 0x5000000
	victim.MapData(victimVA, 2*mem.PageSize)
	paA, _ := victim.AS.Translate(victimVA, mem.AccessRead)
	paB, _ := victim.AS.Translate(victimVA+2048, mem.AccessRead) // different L1 set

	pp := NewPrimeProbe(k, attacker, 0, 0x2000000, 0x400000)
	if err := pp.Prime(paA); err != nil {
		t.Fatal(err)
	}
	if err := pp.Prime(paB); err != nil {
		t.Fatal(err)
	}
	victim.WarmLine(victimVA + 2048) // touch set B only
	missesA, _ := pp.Probe(paA)
	missesB, _ := pp.Probe(paB)
	if missesB == 0 {
		t.Error("touched set not detected")
	}
	if missesA != 0 {
		t.Errorf("untouched set reported %d misses", missesA)
	}
}
