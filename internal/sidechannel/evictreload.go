package sidechannel

import (
	"fmt"

	"zenspec/internal/cache"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
)

// EvictReload is the clflush-free variant of the cache covert channel — the
// one browser attackers must use when CLFLUSH is unavailable, and the
// channel the paper's Section V-C2 replaces with SSBP probing. Instead of
// flushing, each probe slot is evicted by walking an eviction set: enough
// same-set lines to push the slot out of every cache level.
type EvictReload struct {
	*FlushReload
	evictVA   uint64
	evictWays int
	levels    cache.Config
}

// NewEvictReload builds the channel: probe slots as in FlushReload, plus an
// eviction buffer large enough to evict any L3 set.
func NewEvictReload(k *kernel.Kernel, p *kernel.Process, cpu int, probeVA uint64, entries int, codeVA uint64) *EvictReload {
	fr := New(k, p, cpu, probeVA, entries, codeVA)
	cfg := k.Caches().Config()
	e := &EvictReload{
		FlushReload: fr,
		evictVA:     0x70000000,
		evictWays:   cfg.L3.Ways + 1,
		levels:      cfg,
	}
	// The eviction buffer must span enough pages that every L3 set can be
	// filled: ways+1 lines per set, sets*lineSize apart.
	span := uint64(e.evictWays) * uint64(cfg.L3.Sets) * cache.LineSize
	p.MapData(e.evictVA, span+mem.PageSize)
	return e
}

// Evict pushes va's line out of the hierarchy by touching ways+1 lines that
// map to the same L3 set (the inclusive hierarchy evicts the inner copies
// with it). It uses host-side warms for the eviction set — the timing of
// the eviction itself is not part of the measurement.
func (e *EvictReload) Evict(va uint64) error {
	pa, f := e.P.AS.Translate(va, mem.AccessRead)
	if f != mem.FaultNone {
		return fmt.Errorf("sidechannel: evict target unmapped: %v", f)
	}
	setStride := uint64(e.levels.L3.Sets) * cache.LineSize
	target := pa % setStride // set-selecting bits
	count := 0
	for i := uint64(0); count < e.evictWays; i++ {
		candidate := e.evictVA + i*cache.LineSize
		cpa, f := e.P.AS.Translate(candidate, mem.AccessRead)
		if f != mem.FaultNone {
			return fmt.Errorf("sidechannel: eviction buffer too small")
		}
		if cpa%setStride != target {
			continue
		}
		// A real attacker loads these; driving each through the pipeline
		// would work identically but slowly, so the harness touches the
		// hierarchy directly.
		e.K.Caches().Access(cpa)
		count++
	}
	if count < e.evictWays {
		return fmt.Errorf("sidechannel: found only %d/%d eviction lines", count, e.evictWays)
	}
	return nil
}

// EvictAll evicts every probe slot (the Evict phase).
func (e *EvictReload) EvictAll() error {
	for v := 0; v < e.Entries; v++ {
		if err := e.Evict(e.slot(v)); err != nil {
			return err
		}
	}
	return nil
}
