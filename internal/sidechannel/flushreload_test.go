package sidechannel

import (
	"testing"

	"zenspec/internal/kernel"
	"zenspec/internal/mem"
)

func setup(t *testing.T, cfg kernel.Config) (*kernel.Kernel, *kernel.Process, *FlushReload) {
	t.Helper()
	k := kernel.New(cfg)
	p := k.NewProcess("fr", kernel.DomainUser)
	const probeVA = 0x2000000
	p.MapData(probeVA, 256*mem.PageSize)
	fr := New(k, p, 0, probeVA, 256, 0x400000)
	return k, p, fr
}

func TestCalibration(t *testing.T) {
	_, _, fr := setup(t, kernel.Config{Seed: 1})
	if fr.Threshold() == 0 {
		t.Fatal("threshold not calibrated")
	}
	// A warm line must time under the threshold, a flushed one over it.
	va := fr.ProbeVA + 5*fr.Stride
	fr.P.WarmLine(va)
	if got := fr.Time(va); got >= fr.Threshold() {
		t.Errorf("warm line timed %d >= threshold %d", got, fr.Threshold())
	}
	fr.P.FlushLine(va)
	if got := fr.Time(va); got < fr.Threshold() {
		t.Errorf("flushed line timed %d < threshold %d", got, fr.Threshold())
	}
}

func TestFlushReloadRecoversTouchedSlot(t *testing.T) {
	_, p, fr := setup(t, kernel.Config{Seed: 1})
	for _, secret := range []int{0, 7, 128, 255} {
		fr.FlushAll()
		// "Victim" touches one slot.
		p.WarmLine(fr.ProbeVA + uint64(secret)*fr.Stride)
		got, ok := fr.Recover(nil)
		if !ok || got != secret {
			t.Errorf("recovered %d (ok=%v), want %d", got, ok, secret)
		}
	}
}

func TestReloadListsAllHits(t *testing.T) {
	_, p, fr := setup(t, kernel.Config{Seed: 1})
	fr.FlushAll()
	p.WarmLine(fr.ProbeVA + 3*fr.Stride)
	p.WarmLine(fr.ProbeVA + 9*fr.Stride)
	hits := fr.Reload()
	want := map[int]bool{3: true, 9: true}
	if len(hits) != 2 || !want[hits[0]] || !want[hits[1]] {
		t.Errorf("hits = %v, want {3, 9}", hits)
	}
}

func TestRecoverExcludes(t *testing.T) {
	_, p, fr := setup(t, kernel.Config{Seed: 1})
	fr.FlushAll()
	p.WarmLine(fr.ProbeVA + 0*fr.Stride) // polluted slot
	p.WarmLine(fr.ProbeVA + 42*fr.Stride)
	got, ok := fr.Recover(map[int]bool{0: true})
	if !ok || got != 42 {
		t.Errorf("recovered %d, want 42", got)
	}
	// Nothing but excluded slots hot -> not ok.
	fr.FlushAll()
	p.WarmLine(fr.ProbeVA)
	if _, ok := fr.Recover(map[int]bool{0: true}); ok {
		t.Error("recover should fail with only excluded hits")
	}
}

func TestCoarseTimerDegradesChannel(t *testing.T) {
	// With the secure-timer mitigation the hit/miss gap can vanish; the
	// channel must at minimum calibrate without panicking, and with a very
	// coarse quantum the threshold collapses.
	_, p, fr := setup(t, kernel.Config{Seed: 1, TimerQuantum: 512})
	fr.FlushAll()
	p.WarmLine(fr.ProbeVA + 9*fr.Stride)
	// Either recovery fails or it is unreliable; we only require that the
	// code path works.
	fr.Recover(nil)
}
