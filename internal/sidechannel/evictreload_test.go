package sidechannel

import (
	"testing"

	"zenspec/internal/kernel"
	"zenspec/internal/mem"
)

func setupER(t *testing.T) (*kernel.Process, *EvictReload) {
	t.Helper()
	k := kernel.New(kernel.Config{Seed: 1})
	p := k.NewProcess("er", kernel.DomainUser)
	const probeVA = 0x2000000
	p.MapData(probeVA, 64*mem.PageSize)
	return p, NewEvictReload(k, p, 0, probeVA, 64, 0x400000)
}

func TestEvictRemovesLine(t *testing.T) {
	p, er := setupER(t)
	va := er.ProbeVA + 5*er.Stride
	p.WarmLine(va)
	if got := er.Time(va); got >= er.Threshold() {
		t.Fatalf("warm line timed %d", got)
	}
	if err := er.Evict(va); err != nil {
		t.Fatal(err)
	}
	if got := er.Time(va); got < er.Threshold() {
		t.Errorf("evicted line timed %d < threshold %d", got, er.Threshold())
	}
}

func TestEvictReloadRecovers(t *testing.T) {
	p, er := setupER(t)
	for _, secret := range []int{3, 17, 63} {
		if err := er.EvictAll(); err != nil {
			t.Fatal(err)
		}
		p.WarmLine(er.ProbeVA + uint64(secret)*er.Stride)
		got, ok := er.Recover(nil)
		if !ok || got != secret {
			t.Errorf("recovered %d (ok=%v), want %d", got, ok, secret)
		}
	}
}

func TestEvictUnmappedFails(t *testing.T) {
	_, er := setupER(t)
	if err := er.Evict(0xdead0000); err == nil {
		t.Error("evicting an unmapped address should fail")
	}
}
