package asm

import (
	"fmt"
	"strconv"
	"strings"

	"zenspec/internal/isa"
)

// Parse assembles text source into a Builder. The syntax is one instruction
// per line:
//
//	; comment
//	loop:                     ; label
//	movi rax, 42
//	add  rax, rax, rcx
//	load rdx, [rsi+8]
//	store [rdi-16], rax
//	jnz  rax, loop
//	halt
//
// Registers use the amd64 names (rax..r15); immediates are decimal or 0x
// hex; branch targets are labels.
func Parse(src string) (*Builder, error) {
	b := NewBuilder()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %v", lineNo+1, err)
		}
	}
	return b, nil
}

// MustParse panics on parse errors; for static program text in tests and
// examples.
func MustParse(src string) *Builder {
	b, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return b
}

var regNames = map[string]isa.Reg{
	"rax": isa.RAX, "rcx": isa.RCX, "rdx": isa.RDX, "rbx": isa.RBX,
	"rsp": isa.RSP, "rbp": isa.RBP, "rsi": isa.RSI, "rdi": isa.RDI,
	"r8": isa.R8, "r9": isa.R9, "r10": isa.R10, "r11": isa.R11,
	"r12": isa.R12, "r13": isa.R13, "r14": isa.R14, "r15": isa.R15,
}

func parseReg(s string) (isa.Reg, error) {
	r, ok := regNames[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, fmt.Errorf("unknown register %q", s)
	}
	return r, nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(v), nil
}

// parseMem parses "[reg]", "[reg+imm]" or "[reg-imm]".
func parseMem(s string) (isa.Reg, int32, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	imm, err := parseImm(inner[sep:])
	if err != nil {
		return 0, 0, err
	}
	return r, imm, nil
}

func parseLine(b *Builder, line string) error {
	if strings.HasSuffix(line, ":") {
		name := strings.TrimSuffix(line, ":")
		if name == "" {
			return fmt.Errorf("empty label")
		}
		b.Label(name)
		return nil
	}
	var op, rest string
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		op, rest = line[:i], strings.TrimSpace(line[i+1:])
	} else {
		op = line
	}
	op = strings.ToLower(op)
	args := splitArgs(rest)

	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	switch op {
	case "nop":
		b.Nop()
	case "halt":
		b.Halt()
	case "syscall":
		b.Syscall()
	case "mfence":
		b.Mfence()
	case "lfence":
		b.Lfence()
	case "sfence":
		b.Sfence()
	case "movi":
		if err := need(2); err != nil {
			return err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		b.Movi(dst, imm)
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		src, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.Mov(dst, src)
	case "add", "sub", "and", "or", "xor", "shl", "shr", "imul":
		if err := need(3); err != nil {
			return err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		a, err := parseReg(args[1])
		if err != nil {
			return err
		}
		// Third operand: register or immediate (immediate selects the -i form).
		if c, err2 := parseReg(args[2]); err2 == nil {
			switch op {
			case "add":
				b.Add(dst, a, c)
			case "sub":
				b.Sub(dst, a, c)
			case "and":
				b.And(dst, a, c)
			case "or":
				b.Or(dst, a, c)
			case "xor":
				b.Xor(dst, a, c)
			case "shl":
				b.Shl(dst, a, c)
			case "shr":
				b.Shr(dst, a, c)
			case "imul":
				b.Imul(dst, a, c)
			}
			return nil
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return err
		}
		switch op {
		case "add":
			b.Addi(dst, a, imm)
		case "sub":
			b.Subi(dst, a, imm)
		case "and":
			b.Andi(dst, a, imm)
		case "or":
			b.Ori(dst, a, imm)
		case "xor":
			b.Xori(dst, a, imm)
		case "shl":
			b.Shli(dst, a, imm)
		case "shr":
			b.Shri(dst, a, imm)
		case "imul":
			return fmt.Errorf("imul needs a register third operand")
		}
	case "load":
		if err := need(2); err != nil {
			return err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.Load(dst, base, off)
	case "store":
		if err := need(2); err != nil {
			return err
		}
		base, off, err := parseMem(args[0])
		if err != nil {
			return err
		}
		src, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.Store(base, off, src)
	case "clflush":
		if err := need(1); err != nil {
			return err
		}
		base, off, err := parseMem(args[0])
		if err != nil {
			return err
		}
		b.Clflush(base, off)
	case "rdpru":
		if err := need(1); err != nil {
			return err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.Rdpru(dst)
	case "jmp":
		if err := need(1); err != nil {
			return err
		}
		b.Jmp(args[0])
	case "jz", "jnz":
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if op == "jz" {
			b.Jz(r, args[1])
		} else {
			b.Jnz(r, args[1])
		}
	default:
		return fmt.Errorf("unknown mnemonic %q", op)
	}
	return nil
}

// splitArgs splits on commas outside brackets.
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	last := 0
	for i, c := range s {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[last:i]))
				last = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[last:]))
	return out
}
