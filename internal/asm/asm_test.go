package asm

import (
	"strings"
	"testing"

	"zenspec/internal/isa"
)

func TestBuilderAssemblesArith(t *testing.T) {
	b := NewBuilder()
	b.Movi(isa.RAX, 7).Movi(isa.RCX, 3).Add(isa.RDX, isa.RAX, isa.RCX).Halt()
	code, err := b.Assemble(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 4*isa.InstBytes {
		t.Fatalf("code size %d, want %d", len(code), 4*isa.InstBytes)
	}
	in := isa.Decode(code[2*isa.InstBytes:])
	want := isa.Inst{Op: isa.ADD, Dst: isa.RDX, Src1: isa.RAX, Src2: isa.RCX}
	if in != want {
		t.Errorf("inst 2 = %v, want %v", in, want)
	}
}

func TestLabelsResolveToAbsoluteAddresses(t *testing.T) {
	b := NewBuilder()
	b.Movi(isa.RAX, 3)
	b.Label("loop")
	b.Subi(isa.RAX, isa.RAX, 1)
	b.Jnz(isa.RAX, "loop")
	b.Halt()
	base := uint64(0x400000)
	code, err := b.Assemble(base)
	if err != nil {
		t.Fatal(err)
	}
	jnz := isa.Decode(code[2*isa.InstBytes:])
	if jnz.Op != isa.JNZ {
		t.Fatalf("inst 2 is %v, want jnz", jnz)
	}
	wantTarget := int32(base + 1*isa.InstBytes)
	if jnz.Imm != wantTarget {
		t.Errorf("jnz target %#x, want %#x", jnz.Imm, wantTarget)
	}
}

func TestUndefinedLabelErrors(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere").Halt()
	if _, err := b.Assemble(0); err == nil {
		t.Fatal("expected error for undefined label")
	}
}

func TestDuplicateLabelErrors(t *testing.T) {
	b := NewBuilder()
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Assemble(0); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestLabelOffset(t *testing.T) {
	b := NewBuilder()
	b.Nop().Nop().Label("here").Halt()
	off, ok := b.LabelOffset("here")
	if !ok || off != 2*isa.InstBytes {
		t.Errorf("LabelOffset = %d,%v; want %d,true", off, ok, 2*isa.InstBytes)
	}
	if _, ok := b.LabelOffset("missing"); ok {
		t.Error("missing label reported present")
	}
}

func TestEveryEmitterEncodesItsOpcode(t *testing.T) {
	b := NewBuilder()
	b.Movi(isa.RAX, 1)
	b.Mov(isa.RAX, isa.RCX)
	b.Add(isa.RAX, isa.RCX, isa.RDX)
	b.Sub(isa.RAX, isa.RCX, isa.RDX)
	b.And(isa.RAX, isa.RCX, isa.RDX)
	b.Or(isa.RAX, isa.RCX, isa.RDX)
	b.Xor(isa.RAX, isa.RCX, isa.RDX)
	b.Shl(isa.RAX, isa.RCX, isa.RDX)
	b.Shr(isa.RAX, isa.RCX, isa.RDX)
	b.Addi(isa.RAX, isa.RCX, 1)
	b.Subi(isa.RAX, isa.RCX, 1)
	b.Andi(isa.RAX, isa.RCX, 1)
	b.Ori(isa.RAX, isa.RCX, 1)
	b.Xori(isa.RAX, isa.RCX, 1)
	b.Shli(isa.RAX, isa.RCX, 1)
	b.Shri(isa.RAX, isa.RCX, 1)
	b.Imul(isa.RAX, isa.RCX, isa.RDX)
	b.Load(isa.RAX, isa.RCX, 0)
	b.Store(isa.RCX, 0, isa.RAX)
	b.Rdpru(isa.RAX)
	b.Clflush(isa.RCX, 0)
	b.Mfence()
	b.Lfence()
	b.Sfence()
	b.Nop()
	b.Syscall()
	b.JmpAbs(0x1000)
	b.Halt()
	want := []isa.Op{isa.MOVI, isa.MOV, isa.ADD, isa.SUB, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.ADDI, isa.SUBI, isa.ANDI, isa.ORI,
		isa.XORI, isa.SHLI, isa.SHRI, isa.IMUL, isa.LOAD, isa.STORE,
		isa.RDPRU, isa.CLFLUSH, isa.MFENCE, isa.LFENCE, isa.SFENCE, isa.NOP,
		isa.SYSCALL, isa.JMP, isa.HALT}
	code := b.MustAssemble(0)
	for i, w := range want {
		got := isa.Decode(code[i*isa.InstBytes:])
		if got.Op != w {
			t.Errorf("inst %d: op %v, want %v", i, got.Op, w)
		}
	}
}

func TestDisassemble(t *testing.T) {
	b := NewBuilder()
	b.Movi(isa.RAX, 5).Halt()
	lines := Disassemble(b.MustAssemble(0x400000), 0x400000)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "movi rax, 5") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], "0x400008") {
		t.Errorf("line 1 missing address: %q", lines[1])
	}
}

func TestBuildStldLayout(t *testing.T) {
	s := BuildStld(StldOptions{})
	if s.StoreOff%isa.InstBytes != 0 || s.LoadOff%isa.InstBytes != 0 {
		t.Fatal("offsets not instruction-aligned")
	}
	st := isa.Decode(s.Code[s.StoreOff:])
	ld := isa.Decode(s.Code[s.LoadOff:])
	if st.Op != isa.STORE {
		t.Errorf("StoreOff points at %v", st)
	}
	if ld.Op != isa.LOAD {
		t.Errorf("LoadOff points at %v", ld)
	}
	if s.Distance() != isa.InstBytes {
		t.Errorf("default distance %d, want %d", s.Distance(), isa.InstBytes)
	}
	// 20 imuls by default.
	imuls := 0
	for off := 0; off+isa.InstBytes <= len(s.Code); off += isa.InstBytes {
		if isa.Decode(s.Code[off:]).Op == isa.IMUL {
			imuls++
		}
	}
	if imuls != DefaultImuls {
		t.Errorf("%d imuls, want %d", imuls, DefaultImuls)
	}
}

func TestBuildStldPadding(t *testing.T) {
	s := BuildStld(StldOptions{Imuls: 4, PadStart: 3, PadBetween: 5})
	if got := s.Distance(); got != 6*isa.InstBytes {
		t.Errorf("distance %d, want %d", got, 6*isa.InstBytes)
	}
	if isa.Decode(s.Code[s.StoreOff:]).Op != isa.STORE {
		t.Error("StoreOff misplaced with padding")
	}
	if isa.Decode(s.Code[s.LoadOff:]).Op != isa.LOAD {
		t.Error("LoadOff misplaced with padding")
	}
	// Start padding moves the store by 3 nops relative to the unpadded
	// build; PadBetween does not move the store.
	base := BuildStld(StldOptions{Imuls: 4})
	if s.StoreOff != base.StoreOff+3*isa.InstBytes {
		t.Errorf("store offset %d, want %d", s.StoreOff, base.StoreOff+3*isa.InstBytes)
	}
	// The leading NOPs really are at the start.
	for i := 0; i < 3; i++ {
		if isa.Decode(s.Code[i*isa.InstBytes:]).Op != isa.NOP {
			t.Errorf("inst %d is not a NOP", i)
		}
	}
}
