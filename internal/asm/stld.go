package asm

import (
	"sync"

	"zenspec/internal/isa"
)

// Stld describes an assembled instance of the paper's Listing 1
// microbenchmark: a store-load pair whose store address generation is delayed
// by a chain of IMULs, bracketed by RDPRU timer reads.
//
// Calling convention (mirroring the paper's amd64 function):
//
//	RDI — store data address
//	RSI — load data address
//	R9  — store data value
//	RAX — (out) elapsed cycles between the two RDPRU reads
//	R8  — (out) the loaded value
//
// StoreOff and LoadOff are the byte offsets of the STORE and LOAD
// instructions relative to the start of the code; adding them to the mapped
// base yields the instruction virtual addresses, and translating those yields
// the IPAs that select PSFP and SSBP entries.
type Stld struct {
	Code     []byte
	StoreOff int // byte offset of the STORE instruction
	LoadOff  int // byte offset of the LOAD instruction
}

// StldOptions configures BuildStld.
type StldOptions struct {
	// Imuls is the length of the multiply chain delaying the store's address
	// generation. The paper uses 20. Zero means 20.
	Imuls int
	// PadStart inserts this many NOPs before everything else, moving the
	// store-load pair within the page without changing its behaviour — the
	// knob used to control instruction physical addresses. (Padding must
	// precede the timer read and the multiply chain: NOPs between the chain
	// and the store would delay the store's dispatch past its own address
	// computation and no speculation would occur.)
	PadStart int
	// PadBetween inserts this many NOPs between the STORE and the LOAD,
	// changing the store→load IPA distance (Section IV-B's "distance").
	PadBetween int
}

// DefaultImuls is the paper's multiply-chain length.
const DefaultImuls = 20

// stldCache memoizes BuildStld per options. Assembly is a pure host-side
// function of the options — it touches no simulated machine state — so
// memoizing it cannot perturb any simulated outcome; it only removes the
// cost of re-assembling the same template thousands of times per experiment
// (one placement loop rebuilds it per probe). Callers must treat the
// returned Code as read-only; every existing caller only copies it into
// simulated memory.
var stldCache sync.Map // StldOptions → Stld

// BuildStld assembles an stld microbenchmark instance. The result is
// memoized per options; Code is shared and must not be mutated.
func BuildStld(opts StldOptions) Stld {
	if v, ok := stldCache.Load(opts); ok {
		return v.(Stld)
	}
	s := buildStld(opts)
	stldCache.Store(opts, s)
	return s
}

func buildStld(opts StldOptions) Stld {
	imuls := opts.Imuls
	if imuls == 0 {
		imuls = DefaultImuls
	}
	b := NewBuilder()
	for i := 0; i < opts.PadStart; i++ {
		b.Nop()
	}
	b.Rdpru(isa.R10)
	b.Movi(isa.R12, 1)
	b.Mov(isa.RBX, isa.RDI)
	for i := 0; i < imuls; i++ {
		b.Imul(isa.RBX, isa.RBX, isa.R12)
	}
	storeOff := b.Offset()
	b.Store(isa.RBX, 0, isa.R9)
	for i := 0; i < opts.PadBetween; i++ {
		b.Nop()
	}
	loadOff := b.Offset()
	b.Load(isa.R8, isa.RSI, 0)
	b.Rdpru(isa.R11)
	b.Sub(isa.RAX, isa.R11, isa.R10)
	b.Halt()
	// The stld body contains no label-relative branches, so any base works;
	// assemble position-independent at 0.
	return Stld{Code: b.MustAssemble(0), StoreOff: storeOff, LoadOff: loadOff}
}

// Distance returns the byte distance between the load and store instructions,
// the quantity that must match between two stlds for a PSFP collision to be
// findable (Section IV-B2).
func (s Stld) Distance() int { return s.LoadOff - s.StoreOff }
