// Package asm provides a small programmatic assembler for the micro-ISA.
//
// Programs are built with a fluent Builder, resolved against an absolute base
// virtual address, and emitted as raw bytes ready to be mapped into a
// process. Because the paper's code-sliding technique places the same machine
// code at arbitrary byte offsets inside a page, Assemble works for any base
// address, not just instruction-aligned ones.
package asm

import (
	"fmt"

	"zenspec/internal/isa"
)

// Builder accumulates instructions and labels and assembles them into machine
// code. The zero value is ready to use.
type Builder struct {
	insts  []isa.Inst
	labels map[string]int // label -> instruction index
	// fixups are instructions whose Imm must be patched with a label address.
	fixups map[int]string // instruction index -> label
	err    error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

func (b *Builder) emit(in isa.Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

// Label defines a label at the current position. Defining the same label
// twice is an error reported by Assemble.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.err = fmt.Errorf("asm: duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.insts)
	return b
}

// Movi emits dst = imm.
func (b *Builder) Movi(dst isa.Reg, imm int32) *Builder {
	return b.emit(isa.Inst{Op: isa.MOVI, Dst: dst, Imm: imm})
}

// Mov emits dst = src.
func (b *Builder) Mov(dst, src isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.MOV, Dst: dst, Src1: src})
}

// Add emits dst = a + c.
func (b *Builder) Add(dst, a, c isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.ADD, Dst: dst, Src1: a, Src2: c})
}

// Sub emits dst = a - c.
func (b *Builder) Sub(dst, a, c isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.SUB, Dst: dst, Src1: a, Src2: c})
}

// And emits dst = a & c.
func (b *Builder) And(dst, a, c isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.AND, Dst: dst, Src1: a, Src2: c})
}

// Or emits dst = a | c.
func (b *Builder) Or(dst, a, c isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.OR, Dst: dst, Src1: a, Src2: c})
}

// Xor emits dst = a ^ c.
func (b *Builder) Xor(dst, a, c isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.XOR, Dst: dst, Src1: a, Src2: c})
}

// Shl emits dst = a << c.
func (b *Builder) Shl(dst, a, c isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.SHL, Dst: dst, Src1: a, Src2: c})
}

// Shr emits dst = a >> c (logical).
func (b *Builder) Shr(dst, a, c isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.SHR, Dst: dst, Src1: a, Src2: c})
}

// Addi emits dst = a + imm.
func (b *Builder) Addi(dst, a isa.Reg, imm int32) *Builder {
	return b.emit(isa.Inst{Op: isa.ADDI, Dst: dst, Src1: a, Imm: imm})
}

// Subi emits dst = a - imm.
func (b *Builder) Subi(dst, a isa.Reg, imm int32) *Builder {
	return b.emit(isa.Inst{Op: isa.SUBI, Dst: dst, Src1: a, Imm: imm})
}

// Andi emits dst = a & imm.
func (b *Builder) Andi(dst, a isa.Reg, imm int32) *Builder {
	return b.emit(isa.Inst{Op: isa.ANDI, Dst: dst, Src1: a, Imm: imm})
}

// Ori emits dst = a | imm.
func (b *Builder) Ori(dst, a isa.Reg, imm int32) *Builder {
	return b.emit(isa.Inst{Op: isa.ORI, Dst: dst, Src1: a, Imm: imm})
}

// Xori emits dst = a ^ imm.
func (b *Builder) Xori(dst, a isa.Reg, imm int32) *Builder {
	return b.emit(isa.Inst{Op: isa.XORI, Dst: dst, Src1: a, Imm: imm})
}

// Shli emits dst = a << imm.
func (b *Builder) Shli(dst, a isa.Reg, imm int32) *Builder {
	return b.emit(isa.Inst{Op: isa.SHLI, Dst: dst, Src1: a, Imm: imm})
}

// Shri emits dst = a >> imm (logical).
func (b *Builder) Shri(dst, a isa.Reg, imm int32) *Builder {
	return b.emit(isa.Inst{Op: isa.SHRI, Dst: dst, Src1: a, Imm: imm})
}

// Imul emits dst = a * c (3-cycle latency on the core).
func (b *Builder) Imul(dst, a, c isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.IMUL, Dst: dst, Src1: a, Src2: c})
}

// Load emits dst = mem[base+off].
func (b *Builder) Load(dst, base isa.Reg, off int32) *Builder {
	return b.emit(isa.Inst{Op: isa.LOAD, Dst: dst, Src1: base, Imm: off})
}

// Store emits mem[base+off] = data.
func (b *Builder) Store(base isa.Reg, off int32, data isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.STORE, Src1: base, Src2: data, Imm: off})
}

// Rdpru emits dst = cycle counter.
func (b *Builder) Rdpru(dst isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.RDPRU, Dst: dst})
}

// Clflush emits a cache-line flush of mem[base+off].
func (b *Builder) Clflush(base isa.Reg, off int32) *Builder {
	return b.emit(isa.Inst{Op: isa.CLFLUSH, Src1: base, Imm: off})
}

// Mfence emits a full memory fence.
func (b *Builder) Mfence() *Builder { return b.emit(isa.Inst{Op: isa.MFENCE}) }

// Lfence emits a load fence / speculation barrier.
func (b *Builder) Lfence() *Builder { return b.emit(isa.Inst{Op: isa.LFENCE}) }

// Sfence emits a store fence.
func (b *Builder) Sfence() *Builder { return b.emit(isa.Inst{Op: isa.SFENCE}) }

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(isa.Inst{Op: isa.NOP}) }

// Syscall emits a trap into the kernel model.
func (b *Builder) Syscall() *Builder { return b.emit(isa.Inst{Op: isa.SYSCALL}) }

// Halt emits the stop instruction used to return from a called routine.
func (b *Builder) Halt() *Builder { return b.emit(isa.Inst{Op: isa.HALT}) }

// Jmp emits an unconditional jump to the label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups[len(b.insts)] = label
	return b.emit(isa.Inst{Op: isa.JMP})
}

// Jz emits a jump to label when r == 0.
func (b *Builder) Jz(r isa.Reg, label string) *Builder {
	b.fixups[len(b.insts)] = label
	return b.emit(isa.Inst{Op: isa.JZ, Src1: r})
}

// Jnz emits a jump to label when r != 0.
func (b *Builder) Jnz(r isa.Reg, label string) *Builder {
	b.fixups[len(b.insts)] = label
	return b.emit(isa.Inst{Op: isa.JNZ, Src1: r})
}

// JmpAbs emits an unconditional jump to an absolute virtual address.
func (b *Builder) JmpAbs(va uint64) *Builder {
	return b.emit(isa.Inst{Op: isa.JMP, Imm: int32(va)})
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// Size returns the assembled size in bytes.
func (b *Builder) Size() int { return len(b.insts) * isa.InstBytes }

// Offset returns the byte offset from the start of the program at which the
// next instruction will be placed.
func (b *Builder) Offset() int { return b.Size() }

// LabelOffset returns the byte offset of a previously defined label.
func (b *Builder) LabelOffset(name string) (int, bool) {
	idx, ok := b.labels[name]
	if !ok {
		return 0, false
	}
	return idx * isa.InstBytes, true
}

// Assemble resolves labels against the given base virtual address and returns
// the machine code.
func (b *Builder) Assemble(base uint64) ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	out := make([]byte, len(b.insts)*isa.InstBytes)
	for i, in := range b.insts {
		if label, ok := b.fixups[i]; ok {
			idx, defined := b.labels[label]
			if !defined {
				return nil, fmt.Errorf("asm: undefined label %q", label)
			}
			in.Imm = int32(base + uint64(idx*isa.InstBytes))
		}
		in.Encode(out[i*isa.InstBytes:])
	}
	return out, nil
}

// MustAssemble is Assemble that panics on error; it is intended for
// statically-known-correct programs in tests and examples.
func (b *Builder) MustAssemble(base uint64) []byte {
	code, err := b.Assemble(base)
	if err != nil {
		panic(err)
	}
	return code
}

// Disassemble decodes code into instruction strings, one per instruction,
// annotated with the virtual address of each.
func Disassemble(code []byte, base uint64) []string {
	var out []string
	for off := 0; off+isa.InstBytes <= len(code); off += isa.InstBytes {
		in := isa.Decode(code[off:])
		out = append(out, fmt.Sprintf("%#x: %s", base+uint64(off), in))
	}
	return out
}
