package asm

import "testing"

// FuzzParse: the text assembler never panics on arbitrary input, and
// whatever it accepts must assemble.
func FuzzParse(f *testing.F) {
	f.Add("movi rax, 42\nhalt")
	f.Add("loop:\nsub rcx, rcx, 1\njnz rcx, loop")
	f.Add("load rax, [rsi+8]\nstore [rdi-8], rax")
	f.Add("; comment only")
	f.Add("bogus garbage !!!")
	f.Add("movi rax 42")
	f.Add("jmp")
	f.Fuzz(func(t *testing.T, src string) {
		b, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := b.Assemble(0x400000); err != nil {
			// Undefined labels are the one legitimate assemble-time error.
			if !contains(err.Error(), "label") {
				t.Fatalf("accepted source failed to assemble: %v", err)
			}
		}
	})
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
