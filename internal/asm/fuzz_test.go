package asm

import "testing"

// FuzzParse: the text assembler never panics on arbitrary input, and
// whatever it accepts must assemble.
func FuzzParse(f *testing.F) {
	f.Add("movi rax, 42\nhalt")
	f.Add("loop:\nsub rcx, rcx, 1\njnz rcx, loop")
	f.Add("load rax, [rsi+8]\nstore [rdi-8], rax")
	f.Add("; comment only")
	f.Add("bogus garbage !!!")
	f.Add("movi rax 42")
	f.Add("jmp")
	// Paper Listing 2 shape: slow store address, bypassing load, dependent
	// chain transmitting through the cache.
	f.Add("movi r12, 1\nmov rbx, rdi\nimul rbx, rbx, r12\nimul rbx, rbx, r12\n" +
		"store [rbx], r9\nload r8, [rsi]\nshl r13, r8, 6\nadd r13, r13, rbp\n" +
		"load r14, [r13]\nhalt")
	// Paper Listing 3 shape: the double-dereference STL gadget — the bypassed
	// load yields a pointer that is dereferenced and transmitted.
	f.Add("store [rcx], rax\nload rdx, [r14]\nadd rbx, rdx, r11\nload r8, [rbx]\n" +
		"and r8, r8, 0xff\nshl r9, r8, 3\nadd r9, r9, r13\nload r10, [r9]\nhalt")
	// Spectre-CTL shape: a guard branch over a secret load and its transmitter.
	f.Add("jnz rdi, out\nload rdx, [rsi]\nand rdx, rdx, 0x3f\nshl rdx, rdx, 6\n" +
		"add rdx, rdx, rbp\nload r8, [rdx]\nout:\nhalt")
	f.Fuzz(func(t *testing.T, src string) {
		b, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := b.Assemble(0x400000); err != nil {
			// Undefined labels are the one legitimate assemble-time error.
			if !contains(err.Error(), "label") {
				t.Fatalf("accepted source failed to assemble: %v", err)
			}
		}
	})
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
