package asm

import (
	"strings"
	"testing"

	"zenspec/internal/isa"
)

func TestParseBasicProgram(t *testing.T) {
	b, err := Parse(`
		; a comment
		movi rax, 42        ; trailing comment
		movi rcx, 0x10
		add  rdx, rax, rcx
		sub  rdx, rdx, 2
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	code := b.MustAssemble(0x400000)
	want := []isa.Inst{
		{Op: isa.MOVI, Dst: isa.RAX, Imm: 42},
		{Op: isa.MOVI, Dst: isa.RCX, Imm: 16},
		{Op: isa.ADD, Dst: isa.RDX, Src1: isa.RAX, Src2: isa.RCX},
		{Op: isa.SUBI, Dst: isa.RDX, Src1: isa.RDX, Imm: 2},
		{Op: isa.HALT},
	}
	for i, w := range want {
		got := isa.Decode(code[i*isa.InstBytes:])
		if got != w {
			t.Errorf("inst %d: %v, want %v", i, got, w)
		}
	}
}

func TestParseMemoryOperands(t *testing.T) {
	b := MustParse(`
		load  rax, [rsi]
		load  rbx, [rsi+8]
		store [rdi-16], rax
		clflush [rbx+64]
		halt
	`)
	code := b.MustAssemble(0)
	checks := []isa.Inst{
		{Op: isa.LOAD, Dst: isa.RAX, Src1: isa.RSI},
		{Op: isa.LOAD, Dst: isa.RBX, Src1: isa.RSI, Imm: 8},
		{Op: isa.STORE, Src1: isa.RDI, Src2: isa.RAX, Imm: -16},
		{Op: isa.CLFLUSH, Src1: isa.RBX, Imm: 64},
	}
	for i, w := range checks {
		if got := isa.Decode(code[i*isa.InstBytes:]); got != w {
			t.Errorf("inst %d: %v, want %v", i, got, w)
		}
	}
}

func TestParseLabelsAndBranches(t *testing.T) {
	b := MustParse(`
		movi rcx, 5
	loop:
		sub rcx, rcx, 1
		jnz rcx, loop
		jmp end
		nop
	end:
		halt
	`)
	code := b.MustAssemble(0x1000)
	jnz := isa.Decode(code[2*isa.InstBytes:])
	if jnz.Op != isa.JNZ || jnz.Imm != 0x1000+1*isa.InstBytes {
		t.Errorf("jnz = %v", jnz)
	}
	jmp := isa.Decode(code[3*isa.InstBytes:])
	if jmp.Op != isa.JMP || jmp.Imm != 0x1000+5*isa.InstBytes {
		t.Errorf("jmp = %v", jmp)
	}
}

func TestParseAllMnemonics(t *testing.T) {
	b := MustParse(`
		nop
		mfence
		lfence
		sfence
		syscall
		rdpru r10
		mov rax, rbx
		and rax, rax, 0xff
		or  rax, rax, rcx
		xor rax, rax, rax
		shl rax, rax, 3
		shr rax, rax, rcx
		imul rax, rax, rcx
		halt
	`)
	if b.Len() != 14 {
		t.Errorf("%d instructions", b.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus rax",
		"movi zax, 1",
		"movi rax",
		"movi rax, xyz",
		"load rax, rsi",
		"load rax, [zax]",
		"store [rdi], 5",
		"imul rax, rbx, 7",
		"jnz rax",
		":",
		"add rax, rbx",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	// Errors carry the line number.
	_, err := Parse("nop\nnop\nbogus")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v should name line 3", err)
	}
}

func TestParsedProgramRoundTripsThroughBuilder(t *testing.T) {
	// The text form and the fluent form of the stld must produce identical
	// machine code.
	text := MustParse(`
		rdpru r10
		movi r12, 1
		mov  rbx, rdi
		imul rbx, rbx, r12
		store [rbx], r9
		load r8, [rsi]
		rdpru r11
		sub rax, r11, r10
		halt
	`).MustAssemble(0)
	fluent := NewBuilder()
	fluent.Rdpru(isa.R10).Movi(isa.R12, 1).Mov(isa.RBX, isa.RDI)
	fluent.Imul(isa.RBX, isa.RBX, isa.R12)
	fluent.Store(isa.RBX, 0, isa.R9)
	fluent.Load(isa.R8, isa.RSI, 0)
	fluent.Rdpru(isa.R11)
	fluent.Sub(isa.RAX, isa.R11, isa.R10)
	fluent.Halt()
	want := fluent.MustAssemble(0)
	if len(text) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(text), len(want))
	}
	for i := range text {
		if text[i] != want[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}
