package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"zenspec/internal/obs"
	"zenspec/internal/prof"
)

// RangeSpec decomposes an experiment into independent trials so the zenspecd
// service can split one experiment across shards (and machines). The contract
// mirrors the per-trial seed derivation that already makes suite reports
// deterministic: trial i's fragment contribution may depend only on (ctx, i),
// never on which other trials ran in the same range. Under that contract
// Merge over any partition of [0, Trials) — including the trivial one-range
// partition the unsharded path uses — produces the same Report byte for byte.
type RangeSpec struct {
	// Trials returns the number of independent trials at this ctx (quick mode
	// typically shrinks it). It must be a pure function of ctx.
	Trials func(ctx Ctx) int
	// Run computes trials [lo, hi) and returns their fragment, a JSON
	// document Merge understands. Per-trial failures must be encoded in the
	// fragment (so the merged report reproduces the unsharded error handling
	// exactly); the error return is for infrastructure faults only and fails
	// the whole range.
	Run func(ctx Ctx, lo, hi int) ([]byte, error)
	// Merge folds a full, ordered partition of [0, Trials) into the
	// experiment's Report body (metrics, detail, trouble). The harness fills
	// in identity fields, status default, Micro/Profile and the verdict, the
	// same way it does for a plain Run experiment.
	Merge func(ctx Ctx, frags []Fragment) Report
}

// Fragment is one range's carried result, as produced by RangeSpec.Run.
type Fragment struct {
	Lo, Hi int
	Data   []byte
}

// PartialReport is the durable unit of a sharded experiment: the outcome of
// RunTrialRange over one trial range, including the range's share of the
// metrics/profile observations. A whole-experiment shard (the only shape
// available to experiments without a RangeSpec) carries the finished Report
// instead of a fragment.
type PartialReport struct {
	Exp string `json:"exp"`
	// Lo/Hi delimit the trial range; a whole-experiment partial leaves them
	// zero and sets Report.
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
	// Frag is the RangeSpec.Run fragment of a trial-range partial.
	Frag json.RawMessage `json:"frag,omitempty"`
	// Report is the finished report of a whole-experiment partial.
	Report *Report `json:"report,omitempty"`
	// Micro and Profile are the range's observer snapshots; both fold
	// commutatively, so MergeTrialRanges reassembles the exact snapshots an
	// unsharded run would have taken.
	Micro   *obs.MetricsSnapshot `json:"micro,omitempty"`
	Profile *prof.Snapshot       `json:"profile,omitempty"`
	// WallMS is this range's host wall clock; the merged report's WallMS is
	// the sum (total compute cost, not makespan). StableJSON zeroes it.
	WallMS float64 `json:"wall_ms,omitempty"`
}

// Whole reports whether the partial carries a finished whole-experiment
// report rather than a trial-range fragment.
func (p PartialReport) Whole() bool { return p.Report != nil }

// Trials returns the trial count an experiment's RangeSpec would split over
// at this ctx, or 0 for experiments without one (their only shard shape is
// the whole experiment). Unknown ids are errors, as in Select.
func (r *Registry) Trials(ctx Ctx, id string) (int, error) {
	e, ok := r.Get(id)
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownExperiment, id)
	}
	if e.Range == nil {
		return 0, nil
	}
	return e.Range.Trials(ctx), nil
}

// RunTrialRange executes trials [lo, hi) of one experiment and returns the
// durable partial. The convention lo == hi == 0 means the whole experiment —
// the only legal shape for experiments without a RangeSpec, and exactly
// RunShard for those that have one (the unsharded path funnels through the
// same Run+Merge, which is what makes any split byte-identical). A non-empty
// range gets its own fresh metrics/profile registries, so the partial carries
// precisely its trials' share of the observations.
func (r *Registry) RunTrialRange(ctx Ctx, id string, lo, hi int) (PartialReport, error) {
	e, ok := r.Get(id)
	if !ok {
		return PartialReport{}, fmt.Errorf("%w %q", ErrUnknownExperiment, id)
	}
	if lo == 0 && hi == 0 {
		rep, err := r.RunShard(ctx, id)
		if err != nil {
			return PartialReport{}, err
		}
		return PartialReport{Exp: id, Report: &rep, WallMS: rep.WallMS}, nil
	}
	if e.Range == nil {
		return PartialReport{}, fmt.Errorf("harness: experiment %q has no trial-range decomposition", id)
	}
	if n := e.Range.Trials(ctx); lo < 0 || hi > n || lo >= hi {
		return PartialReport{}, fmt.Errorf("harness: bad trial range [%d, %d) for %q (%d trials)", lo, hi, id, n)
	}
	if ctx.Arenas == nil {
		ctx.Arenas = NewArenaPool()
	}
	runtime.GC() // keep range timing debt-free, like runOne
	start := time.Now()
	ectx := ctx
	var mc *obs.Metrics
	if ctx.Metrics {
		mc = obs.NewMetrics()
		ectx.Config.Observer = obs.Multi(ectx.Config.Observer, mc)
	}
	var pp *prof.Profile
	if ctx.Profile {
		pp = prof.New()
		ectx.Config.Observer = obs.Multi(ectx.Config.Observer, pp)
	}
	frag, err := runRangeIsolated(e, ectx, lo, hi)
	if err != nil {
		return PartialReport{}, err
	}
	p := PartialReport{Exp: id, Lo: lo, Hi: hi, Frag: frag}
	if mc != nil {
		p.Micro = mc.Snapshot()
	}
	if pp != nil {
		p.Profile = pp.Snapshot()
	}
	p.WallMS = float64(time.Since(start).Microseconds()) / 1000
	return p, nil
}

// runRangeIsolated runs one range with panic isolation; unlike a whole
// experiment (whose panic becomes a failed Report), a dying range is an
// infrastructure error — the service retries or fails the shard.
func runRangeIsolated(e Experiment, ctx Ctx, lo, hi int) (frag []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			frag, err = nil, fmt.Errorf("harness: range [%d, %d) of %q panicked: %v", lo, hi, e.ID, p)
		}
	}()
	return e.Range.Run(ctx, lo, hi)
}

// MergeTrialRanges assembles one experiment's finished Report from its
// partials. A single whole-experiment partial passes through unchanged; a
// set of trial-range partials must tile [0, Trials) exactly (supplied in any
// order — the merge sorts by Lo) and is folded through RangeSpec.Merge with
// the same post-processing runOne applies, so the result is byte-identical
// to the unsharded report.
func (r *Registry) MergeTrialRanges(ctx Ctx, id string, parts []PartialReport) (Report, error) {
	e, ok := r.Get(id)
	if !ok {
		return Report{}, fmt.Errorf("%w %q", ErrUnknownExperiment, id)
	}
	if len(parts) == 0 {
		return Report{}, fmt.Errorf("harness: no partials for %q", id)
	}
	if len(parts) == 1 && parts[0].Whole() {
		return *parts[0].Report, nil
	}
	if e.Range == nil {
		return Report{}, fmt.Errorf("harness: experiment %q has no trial-range decomposition", id)
	}
	sorted := append([]PartialReport(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	n := e.Range.Trials(ctx)
	next := 0
	frags := make([]Fragment, 0, len(sorted))
	var micro *obs.MetricsSnapshot
	var profile *prof.Snapshot
	var wall float64
	for _, p := range sorted {
		if p.Whole() || p.Lo != next || p.Hi <= p.Lo {
			return Report{}, fmt.Errorf("harness: partials for %q do not tile [0, %d): got [%d, %d) at offset %d", id, n, p.Lo, p.Hi, next)
		}
		next = p.Hi
		frags = append(frags, Fragment{Lo: p.Lo, Hi: p.Hi, Data: p.Frag})
		if p.Micro != nil {
			if micro == nil {
				micro = &obs.MetricsSnapshot{}
			}
			micro.Merge(p.Micro)
		}
		if p.Profile != nil {
			if profile == nil {
				profile = &prof.Snapshot{}
			}
			profile.Merge(p.Profile)
		}
		wall += p.WallMS
	}
	if next != n {
		return Report{}, fmt.Errorf("harness: partials for %q cover [0, %d), want [0, %d)", id, next, n)
	}
	rep := e.Range.Merge(ctx, frags)
	rep.ID = e.ID
	rep.Title = e.Title
	rep.Paper = e.Paper
	if rep.Status == "" {
		rep.Status = StatusClean
	}
	if micro != nil {
		rep.Micro = micro
	}
	if profile != nil {
		rep.Profile = profile
	}
	rep.Pass = rep.computePass()
	rep.WallMS = wall
	return rep, nil
}
