// Package harness is the unified experiment infrastructure shared by the
// CLIs and tests: a deterministic parallel trial runner, the per-trial seed
// derivation, an experiment registry covering DESIGN.md's per-experiment
// index, and consolidated report types rendered as text and JSON from one
// source of truth.
//
// Determinism is the design constraint. A trial's outcome may depend only on
// the run configuration and its own trial index, never on goroutine
// scheduling: the runner gives every trial its own result slot, every trial
// boots its own Machine, and every randomized trial derives its RNG from
// (seed, experiment ID, trial index). A suite report is therefore
// byte-identical at any worker count.
package harness

import (
	"encoding/binary"
	"hash/fnv"
	"runtime"
)

// Workers resolves a Parallelism knob to an effective worker count: values
// above zero are taken literally, anything else means GOMAXPROCS.
func Workers(parallelism int) int {
	if parallelism > 0 {
		return parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Trials runs fn over trials 0..n-1 on at most workers goroutines and
// returns the results in trial order. A non-positive n yields an empty
// result (callers computing trial counts from user input must not panic the
// pool). fn must not share mutable state between trials (each trial boots
// its own Machine); under that contract the output is identical to the
// serial loop at any worker count — including when the adaptive serial
// fallback (see TrialsArena) decides goroutine dispatch is not worth it.
func Trials[T any](workers, n int, fn func(trial int) T) []T {
	return TrialsArena(nil, workers, n, func(i int, _ *Arena) T { return fn(i) })
}

// TrialSeed derives the RNG seed of one trial from the run seed, the
// experiment ID and the trial index (FNV-1a over all three), decorrelating
// trials while keeping every one reproducible in isolation.
func TrialSeed(seed int64, id string, trial int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(id))
	binary.LittleEndian.PutUint64(buf[:], uint64(trial))
	h.Write(buf[:])
	return int64(h.Sum64() & (1<<63 - 1))
}
