package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Arena is a per-worker scratch allocator for host-side temporaries inside
// trial bodies: buffers that live only for one trial and would otherwise be
// reallocated tens of thousands of times per experiment. Buffers come back
// zeroed (maps come back empty), so a trial cannot observe what an earlier
// trial on the same worker left behind — reuse is invisible to the
// simulation, which is what keeps the determinism contract intact.
//
// An Arena is not safe for concurrent use; TrialsArena hands each worker its
// own. Simulated machine state (labs, processes, frames) must never be
// pooled here: trials boot fresh machines by contract.
type Arena struct {
	bytes []byte
	ints  []int
	u64s  []uint64
	f64s  []float64
	m32   map[uint32]bool
	mint  map[int]bool
}

// Bytes returns a zeroed scratch slice of length n, valid until this
// Arena's next Bytes call.
func (a *Arena) Bytes(n int) []byte {
	if cap(a.bytes) < n {
		a.bytes = make([]byte, n)
	}
	a.bytes = a.bytes[:n]
	clear(a.bytes)
	return a.bytes
}

// Ints returns a zeroed scratch slice of length n, valid until this Arena's
// next Ints call.
func (a *Arena) Ints(n int) []int {
	if cap(a.ints) < n {
		a.ints = make([]int, n)
	}
	a.ints = a.ints[:n]
	clear(a.ints)
	return a.ints
}

// Uint64s returns a zeroed scratch slice of length n, valid until this
// Arena's next Uint64s call.
func (a *Arena) Uint64s(n int) []uint64 {
	if cap(a.u64s) < n {
		a.u64s = make([]uint64, n)
	}
	a.u64s = a.u64s[:n]
	clear(a.u64s)
	return a.u64s
}

// Float64s returns a zeroed scratch slice of length n, valid until this
// Arena's next Float64s call.
func (a *Arena) Float64s(n int) []float64 {
	if cap(a.f64s) < n {
		a.f64s = make([]float64, n)
	}
	a.f64s = a.f64s[:n]
	clear(a.f64s)
	return a.f64s
}

// BoolMap32 returns an empty scratch set keyed by uint32, valid until this
// Arena's next BoolMap32 call.
func (a *Arena) BoolMap32() map[uint32]bool {
	if a.m32 == nil {
		a.m32 = make(map[uint32]bool)
	}
	clear(a.m32)
	return a.m32
}

// BoolMapInt returns an empty scratch set keyed by int, valid until this
// Arena's next BoolMapInt call.
func (a *Arena) BoolMapInt() map[int]bool {
	if a.mint == nil {
		a.mint = make(map[int]bool)
	}
	clear(a.mint)
	return a.mint
}

// ArenaPool recycles arenas across experiments of one suite run, so the
// scratch capacity grown by one experiment's trials serves the next. The
// zero value is unusable; a nil pool is allowed everywhere and means "fresh
// arenas, no recycling".
type ArenaPool struct {
	mu   sync.Mutex
	free []*Arena
}

// NewArenaPool returns an empty pool.
func NewArenaPool() *ArenaPool { return &ArenaPool{} }

func (p *ArenaPool) get() *Arena {
	if p == nil {
		return &Arena{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free = p.free[:n-1]
		return a
	}
	return &Arena{}
}

func (p *ArenaPool) put(a *Arena) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, a)
	p.mu.Unlock()
}

// serialCutoff is the measured cost of the first trial below which the
// parallel path falls back to the serial loop. Dispatching goroutines over
// trials cheaper than the scheduler's own overhead makes experiments slower
// at -parallel N than at -parallel 1 (the suite benchmark showed 0.7×
// "speedups" on the cheapest grids); results are unaffected either way,
// because a trial's outcome depends only on its index.
const serialCutoff = 200 * time.Microsecond

// TrialsArena is Trials with a per-worker scratch Arena passed to every
// trial. Arenas come from pool (nil means fresh ones) and return to it when
// the run finishes.
//
// Two adaptive fallbacks keep "more workers" from ever meaning "slower",
// without changing a single result (a trial's outcome depends only on its
// index, so the scheduling path is invisible): workers are clamped to
// GOMAXPROCS — trials are pure compute, and goroutines beyond the
// scheduler's processors only add context-switch overhead — and the
// parallel path times trial 0 first, running everything serially when one
// trial is cheaper than goroutine dispatch (see serialCutoff).
func TrialsArena[T any](pool *ArenaPool, workers, n int, fn func(trial int, a *Arena) T) []T {
	if n <= 0 {
		return []T{}
	}
	out := make([]T, n)
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		a := pool.get()
		for i := range out {
			out[i] = fn(i, a)
		}
		pool.put(a)
		return out
	}
	a := pool.get()
	start := time.Now()
	out[0] = fn(0, a)
	if n == 1 || time.Since(start) < serialCutoff {
		for i := 1; i < n; i++ {
			out[i] = fn(i, a)
		}
		pool.put(a)
		return out
	}
	pool.put(a)
	var next atomic.Int64
	next.Store(1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			wa := pool.get()
			defer pool.put(wa)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i, wa)
			}
		}()
	}
	wg.Wait()
	return out
}
