package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"zenspec/internal/kernel"
	"zenspec/internal/obs"
	"zenspec/internal/prof"
)

// ErrUnknownExperiment is returned (wrapped, with the offending ID) when a
// selection names an experiment the registry does not have.
var ErrUnknownExperiment = errors.New("unknown experiment")

// Ctx carries the run parameters into an experiment. Config is the lowered
// machine configuration (mitigation posture, seed, parallelism); Quick
// selects reduced trial counts for smoke runs.
type Ctx struct {
	Config kernel.Config
	Quick  bool
	// Metrics attaches a per-experiment obs.Metrics registry to every machine
	// the experiment boots and surfaces the snapshot as Report.Micro. The
	// registry folds commutatively, so the snapshot is deterministic at any
	// worker count.
	Metrics bool
	// Profile attaches a per-experiment prof.Profile to every machine the
	// experiment boots and surfaces the snapshot as Report.Profile. Like
	// Metrics, accumulation is commutative, so the snapshot is deterministic
	// at any worker count.
	Profile bool
	// Progress, when non-nil, is called as the suite advances: once before
	// each experiment with the count of experiments already finished and the
	// ID about to run, and once after the last with done == total. It feeds
	// live telemetry; leave nil when nothing is watching.
	Progress func(done, total int, id string)
	// TrialProgress, when non-nil, is called by ResilientTrials after every
	// finished trial with the completed count and the trial total of the
	// current loop. Completion order is scheduling-dependent, so the hook is
	// observational only (per-shard progress streaming, worker lease
	// heartbeats); it must tolerate concurrent calls and must never feed
	// back into results.
	TrialProgress func(done, total int)
	// Completed, when non-nil, is called with every finished experiment
	// report, in completion order, from RunShard and RunTagged alike. It is
	// how a partial suite survives an interrupted run: the caller accumulates
	// reports as they land and can assemble a checkpoint at any time.
	Completed func(Report)
	// Arenas recycles per-worker scratch arenas (TrialsArena) across the
	// suite's experiments. RunTagged installs one automatically; a nil pool
	// still works everywhere and just forgoes recycling.
	Arenas *ArenaPool
}

// Workers resolves the context's Parallelism knob.
func (c Ctx) Workers() int { return Workers(c.Config.Parallelism) }

// Experiment is one row of DESIGN.md's per-experiment index: a stable ID,
// the paper's headline expectation, and a Run function producing a Report
// whose metrics carry pass bands.
type Experiment struct {
	ID    string
	Title string
	Paper string
	Tags  []string
	Run   func(ctx Ctx) Report
	// Range, when non-nil, decomposes the experiment into independent trials
	// so the service can split it across shards; Run must then be nil — the
	// unsharded path runs the whole [0, Trials) range through the same
	// Run+Merge pair, which is what makes any split byte-identical.
	Range *RangeSpec
}

// HasTag reports whether the experiment carries tag.
func (e Experiment) HasTag(tag string) bool {
	for _, t := range e.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Registry is an ordered experiment collection; registration order is
// report order.
type Registry struct {
	exps []Experiment
	byID map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]int{}}
}

// Register adds an experiment; duplicate or empty IDs are programming
// errors, as is anything but exactly one of Run and Range (two execution
// paths for one experiment would inevitably drift apart).
func (r *Registry) Register(e Experiment) {
	if e.ID == "" {
		panic("harness: experiment needs an ID")
	}
	if (e.Run == nil) == (e.Range == nil) {
		panic("harness: experiment " + e.ID + " needs exactly one of Run and Range")
	}
	if e.Range != nil && (e.Range.Trials == nil || e.Range.Run == nil || e.Range.Merge == nil) {
		panic("harness: experiment " + e.ID + " has an incomplete RangeSpec")
	}
	if _, dup := r.byID[e.ID]; dup {
		panic("harness: duplicate experiment ID " + e.ID)
	}
	r.byID[e.ID] = len(r.exps)
	r.exps = append(r.exps, e)
}

// All returns the experiments in registration order.
func (r *Registry) All() []Experiment {
	out := make([]Experiment, len(r.exps))
	copy(out, r.exps)
	return out
}

// Get looks up an experiment by ID.
func (r *Registry) Get(id string) (Experiment, bool) {
	i, ok := r.byID[id]
	if !ok {
		return Experiment{}, false
	}
	return r.exps[i], true
}

// Select resolves a subset: explicit IDs win (reported in registry order),
// otherwise a tag filter, otherwise everything. Unknown IDs are errors.
func (r *Registry) Select(ids []string, tag string) ([]Experiment, error) {
	if len(ids) > 0 {
		idx := make([]int, 0, len(ids))
		for _, id := range ids {
			i, ok := r.byID[id]
			if !ok {
				return nil, fmt.Errorf("%w %q (see -list)", ErrUnknownExperiment, id)
			}
			idx = append(idx, i)
		}
		sort.Ints(idx)
		out := make([]Experiment, 0, len(idx))
		for j, i := range idx {
			if j > 0 && idx[j-1] == i {
				continue
			}
			out = append(out, r.exps[i])
		}
		return out, nil
	}
	var out []Experiment
	for _, e := range r.exps {
		if tag == "" || e.HasTag(tag) {
			out = append(out, e)
		}
	}
	return out, nil
}

// Run executes the selected experiments (nil ids means all) and assembles
// the suite report. Experiments run one after another; parallelism lives in
// each experiment's trial loop, bounded by ctx.Config.Parallelism.
func (r *Registry) Run(ctx Ctx, ids []string) (SuiteReport, error) {
	return r.RunTagged(ctx, ids, "")
}

// RunTagged is Run with an additional tag filter applied when ids is empty.
func (r *Registry) RunTagged(ctx Ctx, ids []string, tag string) (SuiteReport, error) {
	exps, err := r.Select(ids, tag)
	if err != nil {
		return SuiteReport{}, err
	}
	if ctx.Arenas == nil {
		ctx.Arenas = NewArenaPool()
	}
	suite := SuiteReport{
		Seed:        ctx.Config.Seed,
		Quick:       ctx.Quick,
		Parallelism: Workers(ctx.Config.Parallelism),
	}
	if ctx.Config.Faults.Active() {
		plan := ctx.Config.Faults
		suite.Faults = &plan
	}
	for i, e := range exps {
		if ctx.Progress != nil {
			ctx.Progress(i, len(exps), e.ID)
		}
		suite.Experiments = append(suite.Experiments, runOne(e, ctx))
	}
	if ctx.Progress != nil {
		ctx.Progress(len(exps), len(exps), "")
	}
	return suite, nil
}

// runOne executes a single experiment exactly as one RunTagged iteration
// would: fresh metrics/profile registries, panic isolation, verdict and wall
// clock. Both the sequential suite runner and the service's shard workers
// funnel through it, which is what makes a shard-merged suite byte-identical
// to an uninterrupted run.
func runOne(e Experiment, ctx Ctx) Report {
	// Collect the previous experiment's garbage outside the timed region:
	// one experiment's heap debt must not inflate the next one's wall clock
	// (results are unaffected either way — WallMS is excluded from the
	// stable report).
	runtime.GC()
	start := time.Now()
	ectx := ctx
	var mc *obs.Metrics
	if ctx.Metrics {
		// A fresh registry per experiment, composed with any caller
		// observer; the experiment's machines subscribe it at boot.
		mc = obs.NewMetrics()
		ectx.Config.Observer = obs.Multi(ectx.Config.Observer, mc)
	}
	var pp *prof.Profile
	if ctx.Profile {
		// Likewise one profile per experiment, shared by all its trials.
		pp = prof.New()
		ectx.Config.Observer = obs.Multi(ectx.Config.Observer, pp)
	}
	rep := runIsolated(e, ectx)
	rep.ID = e.ID
	rep.Title = e.Title
	rep.Paper = e.Paper
	if rep.Status == "" {
		rep.Status = StatusClean
	}
	if mc != nil {
		rep.Micro = mc.Snapshot()
	}
	if pp != nil {
		rep.Profile = pp.Snapshot()
	}
	rep.Pass = rep.computePass()
	rep.WallMS = float64(time.Since(start).Microseconds()) / 1000
	if ctx.Completed != nil {
		ctx.Completed(rep)
	}
	return rep
}

// RunShard executes exactly one experiment and returns its finished report —
// the unit of work the zenspecd service journals, retries and merges. The
// report depends only on (ctx, id), never on which other experiments ran
// before or alongside it, so independently produced shard reports assemble
// into the same suite an uninterrupted Run would have written. An unknown id
// returns ErrUnknownExperiment (wrapped).
func (r *Registry) RunShard(ctx Ctx, id string) (Report, error) {
	e, ok := r.Get(id)
	if !ok {
		return Report{}, fmt.Errorf("%w %q", ErrUnknownExperiment, id)
	}
	if ctx.Arenas == nil {
		ctx.Arenas = NewArenaPool()
	}
	return runOne(e, ctx), nil
}

// Assemble builds the SuiteReport an uninterrupted Run over the same
// selection would have produced, from independently produced per-experiment
// reports (keyed by experiment ID, supplied in any order — the merge is
// commutative because the selection fixes report order). Experiments of the
// selection missing from reports are emitted as skipped stubs, which is what
// an interrupted run's checkpoint contains; when every report is present the
// result is byte-identical to Run's. Unknown IDs in the selection are
// errors, exactly as in Run.
func (r *Registry) Assemble(ctx Ctx, ids []string, reports map[string]Report) (SuiteReport, error) {
	exps, err := r.Select(ids, "")
	if err != nil {
		return SuiteReport{}, err
	}
	suite := SuiteReport{
		Seed:        ctx.Config.Seed,
		Quick:       ctx.Quick,
		Parallelism: Workers(ctx.Config.Parallelism),
	}
	if ctx.Config.Faults.Active() {
		plan := ctx.Config.Faults
		suite.Faults = &plan
	}
	for _, e := range exps {
		rep, ok := reports[e.ID]
		if !ok {
			rep = Report{ID: e.ID, Title: e.Title, Paper: e.Paper, Status: StatusSkipped}
		}
		suite.Experiments = append(suite.Experiments, rep)
	}
	return suite, nil
}

// runIsolated runs one experiment with panic isolation: a dying experiment
// yields a failed report instead of killing the whole suite. A rangeable
// experiment runs its whole [0, Trials) range through the same Run+Merge the
// sharded path uses, so both paths share one body.
func runIsolated(e Experiment, ctx Ctx) (rep Report) {
	defer func() {
		if p := recover(); p != nil {
			rep = Report{
				Status: StatusFailed,
				Error:  fmt.Sprintf("experiment panicked: %v", p),
			}
		}
	}()
	if e.Range != nil {
		n := e.Range.Trials(ctx)
		frag, err := e.Range.Run(ctx, 0, n)
		if err != nil {
			return Report{
				Status: StatusFailed,
				Error:  fmt.Sprintf("experiment range failed: %v", err),
			}
		}
		return e.Range.Merge(ctx, []Fragment{{Lo: 0, Hi: n, Data: frag}})
	}
	return e.Run(ctx)
}
