package harness

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"zenspec/internal/asm"
	"zenspec/internal/fault"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
)

func TestTrialsNegativeN(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		got := Trials(4, n, func(i int) int { panic("must not run") })
		if len(got) != 0 {
			t.Fatalf("Trials(4, %d) ran %d trials", n, len(got))
		}
	}
}

func TestAttemptSeedContract(t *testing.T) {
	// Attempt 0 is exactly the pre-retry trial seed: a clean resilient run is
	// bit-identical to the plain harness.
	if AttemptSeed(5, "exp", 3, 0) != TrialSeed(5, "exp", 3) {
		t.Fatal("attempt 0 diverges from TrialSeed")
	}
	// Retries rederive distinct seeds per attempt.
	seen := map[int64]int{}
	for a := 0; a < 8; a++ {
		seen[AttemptSeed(5, "exp", 3, a)]++
	}
	if len(seen) != 8 {
		t.Fatalf("attempt seeds collide: %d distinct of 8", len(seen))
	}
}

// resilientRun is one configuration of the accounting test, shared by the
// worker-determinism check below.
func resilientRun(workers int) ([]int, TrialStats) {
	ctx := Ctx{Config: kernel.Config{Seed: 11, Parallelism: workers, Faults: fault.Plan{
		TrialErrorRate: 0.2,
		TrialPanicRate: 0.1,
	}}}
	pol := TrialPolicy{Retries: 3}
	return ResilientTrials(ctx, "acct", pol, 40, func(_ Ctx, trial, attempt int, seed int64) (int, error) {
		if trial%7 == 0 && attempt == 0 {
			return 0, fmt.Errorf("flaky trial %d", trial)
		}
		if trial%13 == 5 {
			panic(fmt.Sprintf("dying trial %d", trial))
		}
		return trial*1000 + attempt, nil
	})
}

func TestResilientTrialsAccounting(t *testing.T) {
	vals, stats := resilientRun(1)
	if stats.Trials != 40 {
		t.Fatalf("trials %d, want 40", stats.Trials)
	}
	if stats.Attempts <= 40 {
		t.Fatalf("attempts %d, want > trials with retries in play", stats.Attempts)
	}
	if stats.Retried == 0 || stats.Injected == 0 || stats.Recovered == 0 {
		t.Fatalf("provenance not recorded: %+v", stats)
	}
	if !stats.Degraded() {
		t.Fatal("stats not degraded despite faults")
	}
	// Trials 5, 18, 31 panic on every attempt: they fail, contribute their
	// zero value, and the first one's error is carried.
	if stats.Failed != 3 {
		t.Fatalf("failed %d, want 3: %+v", stats.Failed, stats)
	}
	if stats.FirstError == "" {
		t.Fatal("no FirstError recorded")
	}
	for _, trial := range []int{5, 18, 31} {
		if vals[trial] != 0 {
			t.Fatalf("failed trial %d leaked value %d", trial, vals[trial])
		}
	}
	// A surviving trial's value reveals which attempt succeeded; attempt
	// indices must be deterministic, not scheduling-dependent.
	if vals[7]/1000 != 7 {
		t.Fatalf("trial 7 value %d", vals[7])
	}
}

func TestResilientTrialsDeterministicAcrossWorkers(t *testing.T) {
	v1, s1 := resilientRun(1)
	for _, w := range []int{2, 8} {
		v, s := resilientRun(w)
		if !reflect.DeepEqual(v, v1) || s != s1 {
			t.Fatalf("workers=%d diverged from serial:\n%v %+v\nvs\n%v %+v", w, v, s, v1, s1)
		}
	}
}

func TestResilientTrialsCleanPlanIsPlainTrials(t *testing.T) {
	ctx := Ctx{Config: kernel.Config{Seed: 3, Parallelism: 1}}
	vals, stats := ResilientTrials(ctx, "clean", TrialPolicy{Retries: 2}, 10,
		func(_ Ctx, trial, attempt int, seed int64) (int64, error) { return seed, nil })
	if stats.Degraded() || stats.Attempts != 10 {
		t.Fatalf("clean run degraded: %+v", stats)
	}
	for i, v := range vals {
		if v != TrialSeed(3, "clean", i) {
			t.Fatalf("trial %d got seed %d, want TrialSeed", i, v)
		}
	}
}

func TestResilientTrialsDeadline(t *testing.T) {
	ctx := Ctx{Config: kernel.Config{Seed: 1, Parallelism: 1}}
	pol := TrialPolicy{Deadline: 5 * time.Millisecond}
	_, stats := ResilientTrials(ctx, "slow", pol, 2, func(_ Ctx, trial, attempt int, seed int64) (int, error) {
		if trial == 1 {
			time.Sleep(300 * time.Millisecond)
		}
		return trial, nil
	})
	if stats.Overruns == 0 || stats.Failed != 1 {
		t.Fatalf("deadline not enforced: %+v", stats)
	}
	if !errors.Is(ErrDeadline, ErrDeadline) {
		t.Fatal("sentinel sanity")
	}
}

// TestDeadlineCancelsSimulation is the goroutine-leak regression test: an
// attempt that overruns its deadline used to keep simulating detached forever
// (runGuarded returned, the worker goroutine spun on). With the cooperative
// cancel flag threaded into pipeline.Config.Stop, the runaway machine panics
// out of its run and the goroutine count returns to baseline.
func TestDeadlineCancelsSimulation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx := Ctx{Config: kernel.Config{Seed: 1, Parallelism: 1}}
	pol := TrialPolicy{Deadline: 30 * time.Millisecond}
	_, stats := ResilientTrials(ctx, "runaway", pol, 1,
		func(actx Ctx, trial, attempt int, seed int64) (int, error) {
			// An infinite simulated loop: nothing but the cancel flag (booted
			// into the machine through actx.Config) can end this run.
			k := kernel.New(actx.Config)
			p := k.NewProcess("spin", kernel.DomainUser)
			b := asm.NewBuilder()
			b.Movi(isa.RAX, 1)
			b.Label("spin")
			b.Jnz(isa.RAX, "spin")
			p.MapCode(0x400000, b.MustAssemble(0x400000))
			k.Run(p, 0x400000, 1<<40)
			return 1, nil
		})
	if stats.Overruns != 1 || stats.Failed != 1 {
		t.Fatalf("deadline not enforced on runaway trial: %+v", stats)
	}
	// Goleak-style accounting: the detached goroutine must terminate once the
	// cancel check fires — poll with a generous grace period.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at start, %d after grace period",
				baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSeedCollisions(t *testing.T) {
	if dups := SeedCollisions(5, []string{"a", "b", "c"}, 1000); len(dups) != 0 {
		t.Fatalf("unexpected collisions: %v", dups)
	}
	// Identical IDs must collide on every trial — the detector works.
	if dups := SeedCollisions(5, []string{"same", "same"}, 3); len(dups) != 3 {
		t.Fatalf("duplicate IDs yielded %d collisions, want 3", len(dups))
	}
}
