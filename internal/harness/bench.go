package harness

import (
	"bytes"
	"encoding/json"
	"runtime"
	"runtime/debug"
)

// BenchEntry is one experiment's serial-vs-parallel wall time.
type BenchEntry struct {
	ID         string  `json:"id"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// BenchReport records a serial-vs-parallel timing comparison of the suite,
// plus the host shape the numbers were taken on. Deterministic is true when
// the two runs produced byte-identical StableJSON — the bench doubles as an
// end-to-end determinism check.
type BenchReport struct {
	Seed  int64 `json:"seed"`
	Quick bool  `json:"quick"`
	// Host shape and build provenance: without these a committed speedup
	// table cannot be compared against a rerun. Revision comes from the
	// build info's VCS stamp (empty for `go run` of a dirty tree without
	// stamping); Dirty marks uncommitted changes at build time.
	Cores           int          `json:"cores"`
	Workers         int          `json:"workers"`
	GoMaxProcs      int          `json:"gomaxprocs"`
	GoVersion       string       `json:"go_version"`
	Revision        string       `json:"revision,omitempty"`
	Dirty           bool         `json:"dirty,omitempty"`
	Deterministic   bool         `json:"deterministic"`
	TotalSerialMS   float64      `json:"total_serial_ms"`
	TotalParallelMS float64      `json:"total_parallel_ms"`
	Speedup         float64      `json:"speedup"`
	Experiments     []BenchEntry `json:"experiments"`
}

// Bench runs the selected experiments twice — once with one worker, once
// with ctx's own parallelism — and reports per-experiment wall times, the
// overall speedup, and whether the two runs agreed byte for byte.
func (r *Registry) Bench(ctx Ctx, ids []string) (BenchReport, error) {
	serialCtx := ctx
	serialCtx.Config.Parallelism = 1
	serial, err := r.Run(serialCtx, ids)
	if err != nil {
		return BenchReport{}, err
	}
	parallel, err := r.Run(ctx, ids)
	if err != nil {
		return BenchReport{}, err
	}
	sj, err := serial.StableJSON()
	if err != nil {
		return BenchReport{}, err
	}
	pj, err := parallel.StableJSON()
	if err != nil {
		return BenchReport{}, err
	}
	rep := BenchReport{
		Seed:          serial.Seed,
		Quick:         serial.Quick,
		Cores:         runtime.NumCPU(),
		Workers:       parallel.Parallelism,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		GoVersion:     runtime.Version(),
		Deterministic: bytes.Equal(sj, pj),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				rep.Revision = kv.Value
			case "vcs.modified":
				rep.Dirty = kv.Value == "true"
			}
		}
	}
	for i := range serial.Experiments {
		s := serial.Experiments[i]
		p := parallel.Experiments[i]
		e := BenchEntry{ID: s.ID, SerialMS: s.WallMS, ParallelMS: p.WallMS}
		if p.WallMS > 0 {
			e.Speedup = s.WallMS / p.WallMS
		}
		rep.TotalSerialMS += s.WallMS
		rep.TotalParallelMS += p.WallMS
		rep.Experiments = append(rep.Experiments, e)
	}
	if rep.TotalParallelMS > 0 {
		rep.Speedup = rep.TotalSerialMS / rep.TotalParallelMS
	}
	return rep, nil
}

// JSON renders the bench report indented.
func (b BenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}
