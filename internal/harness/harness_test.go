package harness

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"zenspec/internal/kernel"
)

func TestTrialsOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got := Trials(workers, 23, func(trial int) int { return trial * trial })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d trial %d: got %d want %d", workers, i, v, i*i)
			}
		}
	}
	if got := Trials(4, 0, func(int) int { return 1 }); len(got) != 0 {
		t.Fatalf("n=0: got %v", got)
	}
}

func TestTrialsMatchesSerialWithDerivedRNG(t *testing.T) {
	// The contract in one test: trials that derive their RNG from the trial
	// index produce identical output at any worker count.
	run := func(workers int) []float64 {
		return Trials(workers, 50, func(trial int) float64 {
			r := rand.New(rand.NewSource(TrialSeed(42, "unit", trial)))
			sum := 0.0
			for i := 0; i < 100; i++ {
				sum += r.Float64()
			}
			return sum
		})
	}
	serial := run(1)
	for _, workers := range []int{2, 8, 32} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d diverged from serial", workers)
		}
	}
}

func TestTrialSeedDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, id := range []string{"fig5", "fig7", "table1"} {
		for trial := 0; trial < 100; trial++ {
			s := TrialSeed(7, id, trial)
			if s < 0 {
				t.Fatalf("negative seed for %s/%d", id, trial)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s/%d vs %s", id, trial, prev)
			}
			seen[s] = id
		}
	}
	if TrialSeed(7, "fig5", 0) == TrialSeed(8, "fig5", 0) {
		t.Fatal("seed must depend on the run seed")
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit parallelism must be honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("defaulted parallelism must be at least 1")
	}
}

func TestReportBandsAndPass(t *testing.T) {
	reg := NewRegistry()
	reg.Register(Experiment{
		ID:    "demo",
		Title: "demo experiment",
		Tags:  []string{"unit"},
		Run: func(ctx Ctx) Report {
			var r Report
			r.Add("inside", 0.5, 0.0, 1.0)
			r.AddBool("flag", true, true)
			return r
		},
	})
	reg.Register(Experiment{
		ID: "broken",
		Run: func(ctx Ctx) Report {
			var r Report
			r.Add("outside", 2.0, 0.0, 1.0)
			return r
		},
	})

	suite, err := reg.Run(Ctx{Config: kernel.Config{Seed: 9}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Experiments) != 2 {
		t.Fatalf("want 2 experiments, got %d", len(suite.Experiments))
	}
	if !suite.Experiments[0].Pass || suite.Experiments[1].Pass {
		t.Fatalf("pass flags wrong: %+v", suite.Experiments)
	}
	if suite.AllPass() {
		t.Fatal("suite with a failing experiment must not AllPass")
	}
	if got := suite.Failed(); len(got) != 1 || got[0] != "broken" {
		t.Fatalf("Failed() = %v", got)
	}

	only, err := reg.Run(Ctx{Config: kernel.Config{Seed: 9}}, []string{"demo"})
	if err != nil {
		t.Fatal(err)
	}
	if !only.AllPass() || len(only.Experiments) != 1 {
		t.Fatalf("subset run wrong: %+v", only)
	}
	if _, err := reg.Run(Ctx{}, []string{"nope"}); err == nil {
		t.Fatal("unknown ID must error")
	}

	tagged, err := reg.RunTagged(Ctx{}, nil, "unit")
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged.Experiments) != 1 || tagged.Experiments[0].ID != "demo" {
		t.Fatalf("tag filter wrong: %+v", tagged.Experiments)
	}
}

func TestStableJSONMasksHostFields(t *testing.T) {
	a := SuiteReport{
		Seed:        1,
		Parallelism: 1,
		Experiments: []Report{{ID: "x", Pass: true, WallMS: 12.5}},
	}
	b := a
	b.Parallelism = 8
	b.Experiments = []Report{{ID: "x", Pass: true, WallMS: 99.9}}
	aj, err := a.StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("StableJSON must mask wall time and worker count:\n%s\n%s", aj, bj)
	}
	if a.Experiments[0].WallMS != 12.5 {
		t.Fatal("StableJSON must not mutate the original report")
	}
}
