package harness

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"zenspec/internal/fault"
	"zenspec/internal/obs"
)

// TrialPolicy controls how the resilient trial runner treats a misbehaving
// trial: how many extra attempts it gets and how long a single attempt may
// run before being abandoned.
type TrialPolicy struct {
	// Retries is the number of extra attempts after a failed one; 0 means a
	// single attempt per trial.
	Retries int
	// Deadline bounds one attempt's wall-clock time; 0 disables the guard.
	// A timed-out attempt counts as failed, and its machine is cancelled
	// cooperatively: the deadline guard sets the attempt's stop flag, the
	// simulation loop polls it (pipeline.Config.Stop) and abandons the run,
	// so an overrun trial's goroutine terminates shortly after the deadline
	// instead of simulating detached forever.
	Deadline time.Duration
}

// Injected fault sentinels, also matched by the degraded-report tests.
var (
	// ErrInjectedError is the forced trial failure of a fault plan.
	ErrInjectedError = errors.New("injected trial error")
	// ErrInjectedPanic is the panic value a fault plan throws into a trial.
	ErrInjectedPanic = errors.New("injected trial panic")
	// ErrDeadline marks an attempt that overran its deadline (real or
	// injected).
	ErrDeadline = errors.New("trial deadline overrun")
)

// TrialStats is the failure provenance of one resilient trial loop — what a
// degraded-but-passing report carries so a reader can tell a clean run from
// one that fought through faults.
type TrialStats struct {
	Trials    int `json:"trials"`
	Attempts  int `json:"attempts"`            // total attempts across all trials
	Retried   int `json:"retried,omitempty"`   // trials that needed more than one attempt
	Recovered int `json:"recovered,omitempty"` // panics recovered by trial isolation
	Overruns  int `json:"overruns,omitempty"`  // deadline overruns (real or injected)
	Injected  int `json:"injected,omitempty"`  // attempts the fault plan sabotaged
	Failed    int `json:"failed,omitempty"`    // trials that exhausted every attempt
	// FirstError is the first failing trial's last error, for the report.
	FirstError string `json:"first_error,omitempty"`
}

// Degraded reports whether the loop saw any trouble at all.
func (s TrialStats) Degraded() bool {
	return s.Retried > 0 || s.Recovered > 0 || s.Overruns > 0 || s.Injected > 0 || s.Failed > 0
}

// Merge folds o — the stats of the trial range immediately after s's — into
// s. Every field is a sum except FirstError, which keeps the earliest trial's
// error; folding per-range stats in range order therefore reproduces exactly
// the stats one loop over the union of the ranges would have produced, which
// is what keeps sharded reports byte-identical to unsharded ones.
func (s *TrialStats) Merge(o TrialStats) {
	s.Trials += o.Trials
	s.Attempts += o.Attempts
	s.Retried += o.Retried
	s.Recovered += o.Recovered
	s.Overruns += o.Overruns
	s.Injected += o.Injected
	s.Failed += o.Failed
	if s.FirstError == "" {
		s.FirstError = o.FirstError
	}
}

func (s *TrialStats) merge(o trialOutcome) {
	s.Trials++
	s.Attempts += o.attempts
	if o.attempts > 1 {
		s.Retried++
	}
	s.Recovered += o.recovered
	s.Overruns += o.overruns
	s.Injected += o.injected
	if o.err != nil {
		s.Failed++
		if s.FirstError == "" {
			s.FirstError = o.err.Error()
		}
	}
}

// trialOutcome is one trial's provenance, aggregated in trial order after
// the parallel loop so the stats are identical at any worker count.
type trialOutcome struct {
	attempts  int
	recovered int
	overruns  int
	injected  int
	err       error // nil once an attempt succeeded
}

// AttemptSeed derives the RNG seed of one retry attempt. Attempt 0 is
// exactly TrialSeed — a clean run is bit-identical to the pre-retry harness —
// and each retry rederives a fresh, decorrelated seed, so a trial that failed
// on noise does not replay the same unlucky stream.
func AttemptSeed(seed int64, id string, trial, attempt int) int64 {
	if attempt == 0 {
		return TrialSeed(seed, id, trial)
	}
	return TrialSeed(TrialSeed(seed, id, trial)+int64(attempt), id+"#retry", attempt)
}

// ResilientTrials runs fn over trials 0..n-1 like Trials, adding per-trial
// panic isolation, an optional per-attempt deadline with cooperative
// cancellation, bounded retries with attempt-indexed seeds, and the ctx
// fault plan's injected trial faults. A trial that exhausts its attempts
// contributes its zero value and is counted in the stats instead of killing
// the suite.
//
// fn receives a per-attempt context whose Config carries the attempt's
// cancellation hook (machines booted from actx.Config stop simulating when
// the attempt overruns pol.Deadline) and the attempt's derived seed; fn must
// boot machines from actx.Config and base all randomness on seed. Under that
// contract the results and stats are identical at any worker count. When
// ctx.TrialProgress is non-nil it is called after every finished trial with
// the completed count; completion order is scheduling-dependent, so the hook
// is observational only (live progress streaming, lease heartbeats) and
// must be safe for concurrent calls.
func ResilientTrials[T any](ctx Ctx, id string, pol TrialPolicy, n int, fn func(actx Ctx, trial, attempt int, seed int64) (T, error)) ([]T, TrialStats) {
	return ResilientTrialRange(ctx, id, pol, 0, n, fn)
}

// ResilientTrialRange is ResilientTrials over the trial subrange [lo, hi):
// the unit the service's trial-range shards execute. Trial t of the range is
// trial t of the full loop — same attempt seeds, same injected faults — so
// concatenating the value slices of a partition of [0, n) and folding the
// per-range stats in range order (TrialStats.Merge) reproduces exactly what
// one ResilientTrials call over [0, n) returns. ctx.TrialProgress reports
// progress against the range's own size.
func ResilientTrialRange[T any](ctx Ctx, id string, pol TrialPolicy, lo, hi int, fn func(actx Ctx, trial, attempt int, seed int64) (T, error)) ([]T, TrialStats) {
	plan := ctx.Config.Faults
	// Trial-level injections have no machine (and so no bus) to report on;
	// they go straight to the suite observer. Observers attached to parallel
	// trial loops must tolerate concurrent HandleEvent calls (obs.Metrics
	// does), and the commutative fold keeps results worker-count independent.
	emitTrialFault := func(kind string, trial, attempt int) {
		if o := ctx.Config.Observer; o != nil {
			o.HandleEvent(obs.FaultEvent{
				Kind: kind, Count: 1,
				Experiment: id, Trial: trial, Attempt: attempt,
			})
		}
	}
	type slot struct {
		val T
		out trialOutcome
	}
	n := hi - lo
	if n < 0 {
		n = 0
	}
	var completed atomic.Int64
	slots := Trials(ctx.Workers(), n, func(i int) slot {
		trial := lo + i
		var s slot
		defer func() {
			if ctx.TrialProgress != nil {
				ctx.TrialProgress(int(completed.Add(1)), n)
			}
		}()
		for attempt := 0; attempt <= pol.Retries; attempt++ {
			s.out.attempts++
			var err error
			switch plan.TrialFaultAt(id, trial, attempt) {
			case fault.TrialError:
				s.out.injected++
				emitTrialFault("trial-error", trial, attempt)
				err = ErrInjectedError
			case fault.TrialOverrun:
				s.out.injected++
				s.out.overruns++
				emitTrialFault("trial-overrun", trial, attempt)
				err = ErrDeadline
			case fault.TrialPanic:
				s.out.injected++
				emitTrialFault("trial-panic", trial, attempt)
				_, err = runGuarded(pol.Deadline, nil, func() (T, error) { panic(ErrInjectedPanic) })
				if errors.Is(err, errRecovered) {
					s.out.recovered++
				}
			default:
				seed := AttemptSeed(ctx.Config.Seed, id, trial, attempt)
				// Each attempt owns a cancel flag; the deadline guard raises
				// it and machines booted from actx.Config poll it. Polling a
				// flag that never fires does not perturb the simulation, so
				// a clean resilient run stays bit-identical to Trials.
				actx := ctx
				var cancel *atomic.Bool
				if pol.Deadline > 0 {
					cancel = new(atomic.Bool)
					// Compose with any caller-installed Stop (e.g. the
					// service's shard-level cancel) instead of replacing it.
					if prev := actx.Config.Pipeline.Stop; prev != nil {
						actx.Config.Pipeline.Stop = func() bool { return cancel.Load() || prev() }
					} else {
						actx.Config.Pipeline.Stop = cancel.Load
					}
				}
				s.val, err = runGuarded(pol.Deadline, cancel, func() (T, error) { return fn(actx, trial, attempt, seed) })
				if errors.Is(err, errRecovered) {
					s.out.recovered++
				}
				if errors.Is(err, ErrDeadline) {
					s.out.overruns++
				}
			}
			s.out.err = err
			if err == nil {
				return s
			}
		}
		var zero T
		s.val = zero // a failed trial must not leak a partial attempt's value
		return s
	})
	out := make([]T, n)
	var stats TrialStats
	for i, s := range slots {
		out[i] = s.val
		stats.merge(s.out)
	}
	return out, stats
}

// errRecovered wraps a recovered panic so callers can count it.
var errRecovered = errors.New("recovered panic")

// runGuarded runs one attempt with panic isolation and, when deadline > 0, a
// wall-clock guard. On overrun the attempt's result is discarded and cancel
// (when non-nil) is raised, so a simulation polling it through
// pipeline.Config.Stop panics with pipeline.ErrCancelled, the recover guard
// absorbs it, and the goroutine exits shortly after the deadline instead of
// leaking.
func runGuarded[T any](deadline time.Duration, cancel *atomic.Bool, fn func() (T, error)) (T, error) {
	if deadline <= 0 {
		return runRecovering(fn)
	}
	type result struct {
		val T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := runRecovering(fn)
		ch <- result{v, err}
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.val, r.err
	case <-timer.C:
		if cancel != nil {
			cancel.Store(true)
		}
		var zero T
		return zero, fmt.Errorf("%w after %v", ErrDeadline, deadline)
	}
}

// runRecovering converts a panic in fn into an error wrapping errRecovered.
func runRecovering[T any](fn func() (T, error)) (val T, err error) {
	defer func() {
		if p := recover(); p != nil {
			var zero T
			val = zero
			err = fmt.Errorf("%w: %v", errRecovered, p)
		}
	}()
	return fn()
}

// SeedCollisions scans every (id, trial) pair over the given IDs and trial
// count and returns a sorted description of any TrialSeed collisions — the
// sanity check the suite runs over all registered experiment IDs.
func SeedCollisions(seed int64, ids []string, trials int) []string {
	seen := make(map[int64]string, len(ids)*trials)
	var dups []string
	for _, id := range ids {
		for t := 0; t < trials; t++ {
			s := TrialSeed(seed, id, t)
			key := fmt.Sprintf("%s/%d", id, t)
			if prev, dup := seen[s]; dup {
				dups = append(dups, fmt.Sprintf("%s collides with %s (seed %d)", key, prev, s))
			} else {
				seen[s] = key
			}
		}
	}
	sort.Strings(dups)
	return dups
}
