package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"zenspec/internal/fault"
	"zenspec/internal/kernel"
)

// rangeTestRegistry registers one rangeable experiment built on
// ResilientTrialRange: trial values are the derived attempt seeds, the merge
// sums them, and the active fault plan injects retries/failures so the
// TrialStats fold is exercised too.
func rangeTestRegistry(trials int) *Registry {
	reg := NewRegistry()
	pol := TrialPolicy{Retries: 2}
	type frag struct {
		Vals  []int64    `json:"vals"`
		Stats TrialStats `json:"stats"`
	}
	reg.Register(Experiment{
		ID: "range-sum", Title: "range sum", Paper: "synthetic",
		Range: &RangeSpec{
			Trials: func(Ctx) int { return trials },
			Run: func(ctx Ctx, lo, hi int) ([]byte, error) {
				vals, stats := ResilientTrialRange(ctx, "range-sum", pol, lo, hi,
					func(_ Ctx, trial, attempt int, seed int64) (int64, error) { return seed % 9973, nil })
				return json.Marshal(frag{Vals: vals, Stats: stats})
			},
			Merge: func(ctx Ctx, frags []Fragment) Report {
				var sum int64
				var stats TrialStats
				for _, f := range frags {
					var part frag
					if err := json.Unmarshal(f.Data, &part); err != nil {
						return Report{Status: StatusFailed, Error: err.Error()}
					}
					for _, v := range part.Vals {
						sum += v
					}
					stats.Merge(part.Stats)
				}
				var r Report
				r.Add("sum", float64(sum), 0, float64(9973*trials))
				r.Add("trials", float64(stats.Trials), float64(trials), float64(trials))
				r.RecordTrials(stats)
				return r
			},
		},
	})
	return reg
}

// splitRanges cuts [0, n) into k even ranges, the same arithmetic the
// service uses.
func splitRanges(n, k int) [][2]int {
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, [2]int{i * n / k, (i + 1) * n / k})
	}
	return out
}

// TestRangeSplitByteIdentity is the tentpole contract at harness level: a
// rangeable experiment merged from any partition of its trial range — with
// metrics on and a fault plan injecting retries — marshals byte-identically
// to the unsharded run.
func TestRangeSplitByteIdentity(t *testing.T) {
	const trials = 24
	reg := rangeTestRegistry(trials)
	ctx := Ctx{
		Config:  kernel.Config{Seed: 7, Parallelism: 2, Faults: fault.Default()},
		Metrics: true,
	}
	want, err := reg.RunShard(ctx, "range-sum")
	if err != nil {
		t.Fatal(err)
	}
	if want.Trouble == nil || !want.Trouble.Degraded() {
		t.Fatalf("fault plan injected nothing; the stats fold is untested: %+v", want.Trouble)
	}
	want.WallMS = 0
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 5, trials} {
		var parts []PartialReport
		for _, r := range splitRanges(trials, k) {
			p, err := reg.RunTrialRange(ctx, "range-sum", r[0], r[1])
			if err != nil {
				t.Fatalf("split %d range %v: %v", k, r, err)
			}
			parts = append(parts, p)
		}
		// Deliberately merge out of order: MergeTrialRanges must sort.
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		got, err := reg.MergeTrialRanges(ctx, "range-sum", parts)
		if err != nil {
			t.Fatalf("split %d: %v", k, err)
		}
		got.WallMS = 0
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("split %d differs from unsharded run:\n%s\nvs\n%s", k, gotJSON, wantJSON)
		}
	}
}

// TestRangeWholeConvention: lo == hi == 0 means the whole experiment; the
// partial carries the finished report and passes through the merge intact.
func TestRangeWholeConvention(t *testing.T) {
	reg := rangeTestRegistry(8)
	ctx := Ctx{Config: kernel.Config{Seed: 3, Parallelism: 1}}
	p, err := reg.RunTrialRange(ctx, "range-sum", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Whole() || p.Report.ID != "range-sum" {
		t.Fatalf("whole-experiment partial malformed: %+v", p)
	}
	merged, err := reg.MergeTrialRanges(ctx, "range-sum", []PartialReport{p})
	if err != nil {
		t.Fatal(err)
	}
	want, err := reg.RunShard(ctx, "range-sum")
	if err != nil {
		t.Fatal(err)
	}
	merged.WallMS, want.WallMS = 0, 0
	a, _ := json.Marshal(merged)
	b, _ := json.Marshal(want)
	if !bytes.Equal(a, b) {
		t.Fatalf("whole partial diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestRangeErrors covers the contract's edges: unknown experiments, ranges
// outside [0, Trials), non-rangeable experiments, and partials that do not
// tile the trial space.
func TestRangeErrors(t *testing.T) {
	reg := rangeTestRegistry(8)
	reg.Register(Experiment{
		ID: "plain", Title: "plain", Paper: "synthetic",
		Run: func(Ctx) Report { return Report{} },
	})
	ctx := Ctx{Config: kernel.Config{Seed: 1}}

	if _, err := reg.Trials(ctx, "ghost"); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("Trials(ghost) = %v, want ErrUnknownExperiment", err)
	}
	if n, err := reg.Trials(ctx, "plain"); err != nil || n != 0 {
		t.Errorf("Trials(plain) = %d, %v, want 0, nil", n, err)
	}
	if n, err := reg.Trials(ctx, "range-sum"); err != nil || n != 8 {
		t.Errorf("Trials(range-sum) = %d, %v, want 8, nil", n, err)
	}
	if _, err := reg.RunTrialRange(ctx, "ghost", 0, 0); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("RunTrialRange(ghost) = %v, want ErrUnknownExperiment", err)
	}
	if _, err := reg.RunTrialRange(ctx, "plain", 0, 4); err == nil {
		t.Error("ranged run of a non-rangeable experiment must fail")
	}
	for _, bad := range [][2]int{{-1, 4}, {4, 4}, {6, 4}, {0, 9}} {
		if _, err := reg.RunTrialRange(ctx, "range-sum", bad[0], bad[1]); err == nil {
			t.Errorf("range %v accepted", bad)
		}
	}
	// A whole-experiment partial still runs a non-rangeable experiment.
	if p, err := reg.RunTrialRange(ctx, "plain", 0, 0); err != nil || !p.Whole() {
		t.Errorf("whole-shard run of plain = %+v, %v", p, err)
	}

	p1, err := reg.RunTrialRange(ctx, "range-sum", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.MergeTrialRanges(ctx, "range-sum", []PartialReport{p1}); err == nil {
		t.Error("merge of a partial tiling must fail")
	}
	p2, err := reg.RunTrialRange(ctx, "range-sum", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.MergeTrialRanges(ctx, "range-sum", []PartialReport{p1, p1, p2}); err == nil {
		t.Error("merge of overlapping partials must fail")
	}
	if _, err := reg.MergeTrialRanges(ctx, "range-sum", nil); err == nil {
		t.Error("merge of no partials must fail")
	}
}
