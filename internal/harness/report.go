package harness

import (
	"encoding/json"
	"fmt"
	"strings"

	"zenspec/internal/fault"
	"zenspec/internal/obs"
	"zenspec/internal/prof"
)

// Experiment status values: clean (no trouble), degraded (faults or retries
// happened but the experiment produced a full report), failed (the
// experiment itself died and was isolated).
const (
	StatusClean    = "clean"
	StatusDegraded = "degraded"
	StatusFailed   = "failed"
	// StatusSkipped marks an experiment a partial suite never ran: the stub
	// an interrupted run's checkpoint (or a still-executing service job's
	// partial report) carries in place of the real report.
	StatusSkipped = "skipped"
)

// Metric is one named measurement compared against the paper's expectation
// band; the band is inclusive on both ends.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Pass  bool    `json:"pass"`
}

// Report is the outcome of one registry experiment: its headline metrics
// with pass bands, the experiment's own text rendering, and wall time.
type Report struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Paper   string   `json:"paper"`
	Metrics []Metric `json:"metrics"`
	Pass    bool     `json:"pass"`
	Detail  string   `json:"detail,omitempty"`
	// Status is the failure-provenance verdict: clean, degraded (retries,
	// recovered panics or injected faults happened on the way to a full
	// report) or failed (the experiment died; Pass is forced false).
	Status string `json:"status,omitempty"`
	// Trouble carries the trial-level provenance behind a degraded status.
	Trouble *TrialStats `json:"trouble,omitempty"`
	// Error is the terminal error of a failed experiment.
	Error string `json:"error,omitempty"`
	// Micro carries the per-experiment microarchitectural metrics snapshot
	// when the run was started with metrics collection (Ctx.Metrics); its
	// content is deterministic, so it participates in StableJSON.
	Micro *obs.MetricsSnapshot `json:"micro,omitempty"`
	// Profile carries the per-experiment cycle-attribution profile when the
	// run was started with profiling (Ctx.Profile). Like Micro it is
	// deterministic at any worker count and participates in StableJSON.
	Profile *prof.Snapshot `json:"profile,omitempty"`
	// WallMS is host wall-clock time. It is the one host-dependent field;
	// StableJSON zeroes it so reports can be compared across worker counts.
	WallMS float64 `json:"wall_ms"`
}

// RecordTrials attaches a resilient trial loop's provenance to the report;
// a degraded loop degrades the report's status.
func (r *Report) RecordTrials(s TrialStats) {
	if r.Trouble == nil {
		r.Trouble = &TrialStats{}
	}
	r.Trouble.Trials += s.Trials
	r.Trouble.Attempts += s.Attempts
	r.Trouble.Retried += s.Retried
	r.Trouble.Recovered += s.Recovered
	r.Trouble.Overruns += s.Overruns
	r.Trouble.Injected += s.Injected
	r.Trouble.Failed += s.Failed
	if r.Trouble.FirstError == "" {
		r.Trouble.FirstError = s.FirstError
	}
	if r.Trouble.Degraded() && r.Status != StatusFailed {
		r.Status = StatusDegraded
	}
}

// Degraded reports whether the experiment fought through faults or retries.
func (r Report) Degraded() bool { return r.Status == StatusDegraded }

// Add records a metric with its inclusive pass band [min, max].
func (r *Report) Add(name string, value, min, max float64) {
	r.Metrics = append(r.Metrics, Metric{
		Name:  name,
		Value: value,
		Min:   min,
		Max:   max,
		Pass:  value >= min && value <= max,
	})
}

// AddBool records a boolean expectation as a 0/1 metric that must equal want.
func (r *Report) AddBool(name string, got, want bool) {
	v, w := 0.0, 0.0
	if got {
		v = 1
	}
	if want {
		w = 1
	}
	r.Add(name, v, w, w)
}

func (r *Report) computePass() bool {
	if r.Status == StatusFailed {
		return false
	}
	for _, m := range r.Metrics {
		if !m.Pass {
			return false
		}
	}
	return true
}

// SuiteReport is one consolidated run of selected registry experiments plus
// the parameters that produced it.
type SuiteReport struct {
	Seed        int64 `json:"seed"`
	Quick       bool  `json:"quick"`
	Parallelism int   `json:"parallelism"`
	// Faults echoes the active fault plan so a degraded report documents
	// what it survived; omitted for clean runs.
	Faults      *fault.Plan `json:"faults,omitempty"`
	Experiments []Report    `json:"experiments"`
}

// Degraded lists the IDs of experiments that fought through faults or
// retries (independent of whether they still passed their bands).
func (s SuiteReport) Degraded() []string {
	var ids []string
	for _, r := range s.Experiments {
		if r.Degraded() || r.Status == StatusFailed {
			ids = append(ids, r.ID)
		}
	}
	return ids
}

// AllPass reports whether every experiment landed inside its paper band.
func (s SuiteReport) AllPass() bool {
	for _, r := range s.Experiments {
		if !r.Pass {
			return false
		}
	}
	return true
}

// Failed lists the IDs of experiments outside their bands.
func (s SuiteReport) Failed() []string {
	var ids []string
	for _, r := range s.Experiments {
		if !r.Pass {
			ids = append(ids, r.ID)
		}
	}
	return ids
}

// Profile merges the per-experiment profiles into one suite-level snapshot
// (nil when no experiment carried one). The merge is order-independent up to
// its final sort, so the aggregate inherits each profile's worker-count
// determinism.
func (s SuiteReport) Profile() *prof.Snapshot {
	var out *prof.Snapshot
	for _, r := range s.Experiments {
		if r.Profile == nil {
			continue
		}
		if out == nil {
			out = &prof.Snapshot{}
		}
		out.Merge(r.Profile)
	}
	return out
}

// JSON renders the suite report indented.
func (s SuiteReport) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// StableJSON renders the suite with host-dependent fields (wall times and
// the resolved worker count) zeroed: the canonical form that two runs of the
// same seed must reproduce byte for byte at any parallelism.
func (s SuiteReport) StableJSON() ([]byte, error) {
	c := s
	c.Parallelism = 0
	c.Experiments = make([]Report, len(s.Experiments))
	copy(c.Experiments, s.Experiments)
	for i := range c.Experiments {
		c.Experiments[i].WallMS = 0
	}
	return json.MarshalIndent(c, "", "  ")
}

// Text renders the consolidated text report: one section per experiment with
// its detail block, metric bands, and verdict.
func (s SuiteReport) Text() string {
	var b strings.Builder
	var totalMS float64
	for _, r := range s.Experiments {
		fmt.Fprintf(&b, "===== %s — %s =====\n", r.ID, r.Title)
		if r.Paper != "" {
			fmt.Fprintf(&b, "paper: %s\n", r.Paper)
		}
		if r.Detail != "" {
			b.WriteString(strings.TrimRight(r.Detail, "\n"))
			b.WriteByte('\n')
		}
		for _, m := range r.Metrics {
			mark := "ok"
			if !m.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(&b, "  %-28s %8.3f  band [%g, %g]  %s\n",
				m.Name, m.Value, m.Min, m.Max, mark)
		}
		if r.Error != "" {
			fmt.Fprintf(&b, "  error: %s\n", r.Error)
		}
		if r.Micro != nil {
			b.WriteString(r.Micro.Text())
		}
		if r.Profile != nil {
			fmt.Fprintf(&b, "  profile (top 10 of %d sites, %d cycles):\n", len(r.Profile.Samples), r.Profile.TotalCycles)
			b.WriteString(r.Profile.Text(10))
		}
		if t := r.Trouble; t != nil && t.Degraded() {
			fmt.Fprintf(&b, "  trials %d, attempts %d (retried %d, recovered %d, overruns %d, injected %d, failed %d)\n",
				t.Trials, t.Attempts, t.Retried, t.Recovered, t.Overruns, t.Injected, t.Failed)
		}
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		if r.Status == StatusDegraded {
			verdict += " (degraded)"
		}
		fmt.Fprintf(&b, "%s (%.2fs)\n\n", verdict, r.WallMS/1000)
		totalMS += r.WallMS
	}
	passed := 0
	for _, r := range s.Experiments {
		if r.Pass {
			passed++
		}
	}
	fmt.Fprintf(&b, "suite: %d/%d experiments in paper band; seed %d; workers %d; total %.2fs\n",
		passed, len(s.Experiments), s.Seed, s.Parallelism, totalMS/1000)
	return b.String()
}
